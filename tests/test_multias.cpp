#include "multias/multias.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/algorithms.h"
#include "net/network.h"

namespace cold {
namespace {

MultiAsConfig small_config() {
  MultiAsConfig cfg;
  cfg.num_cities = 20;
  cfg.num_ases = 3;
  cfg.presence_probability = 0.6;
  cfg.min_presence = 4;
  cfg.costs = CostParams{10, 1, 4e-4, 10};
  cfg.ga.population = 20;
  cfg.ga.generations = 15;
  return cfg;
}

TEST(ChoosePeering, SingleCheapPointWhenInterconnectExpensive) {
  // Two shared cities; demand concentrated near city 0. With a huge
  // interconnect cost, only the best single point is chosen.
  const std::vector<Point> cities{{0, 0}, {1, 0}, {0.1, 0}};
  const std::vector<std::size_t> shared{0, 1};
  const std::vector<std::pair<std::size_t, double>> demand{{2, 100.0}};
  const auto peers = choose_peering_cities(cities, shared, demand, 1e9, 1.0);
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers.front(), 0u);
}

TEST(ChoosePeering, CheapInterconnectsSpread) {
  // Demand at both ends; free interconnects -> take both shared cities.
  const std::vector<Point> cities{{0, 0}, {10, 0}};
  const std::vector<std::size_t> shared{0, 1};
  const std::vector<std::pair<std::size_t, double>> demand{{0, 50.0},
                                                           {1, 50.0}};
  const auto peers = choose_peering_cities(cities, shared, demand, 0.0, 1.0);
  EXPECT_EQ(peers.size(), 2u);
}

TEST(ChoosePeering, EmptySharedReturnsEmpty) {
  EXPECT_TRUE(choose_peering_cities({{0, 0}}, {}, {{0, 1.0}}, 1.0, 1.0).empty());
}

TEST(ChoosePeering, HigherK4FewerPeers) {
  // Spread demand over several cities; raising the interconnect cost can
  // only shrink the chosen set.
  std::vector<Point> cities;
  std::vector<std::size_t> shared;
  std::vector<std::pair<std::size_t, double>> demand;
  for (std::size_t i = 0; i < 6; ++i) {
    cities.push_back({static_cast<double>(i), 0.0});
    shared.push_back(i);
    demand.emplace_back(i, 10.0);
  }
  const auto cheap = choose_peering_cities(cities, shared, demand, 0.1, 1.0);
  const auto pricey = choose_peering_cities(cities, shared, demand, 20.0, 1.0);
  EXPECT_GE(cheap.size(), pricey.size());
  EXPECT_GE(pricey.size(), 1u);
}

TEST(MultiAs, StructureIsConsistent) {
  const MultiAsResult r = synthesize_multi_as(small_config(), 1);
  EXPECT_EQ(r.cities.size(), 20u);
  EXPECT_EQ(r.ases.size(), 3u);
  for (const AsNetwork& asn : r.ases) {
    EXPECT_GE(asn.cities.size(), 4u);
    EXPECT_EQ(asn.cities.size(), asn.network.num_pops());
    EXPECT_NO_THROW(validate_network(asn.network));
    // City mapping is within range and duplicate-free.
    std::set<std::size_t> unique(asn.cities.begin(), asn.cities.end());
    EXPECT_EQ(unique.size(), asn.cities.size());
    for (std::size_t c : asn.cities) EXPECT_LT(c, 20u);
    // PoP coordinates match their cities.
    for (std::size_t i = 0; i < asn.cities.size(); ++i) {
      EXPECT_DOUBLE_EQ(asn.network.locations[i].x, r.cities[asn.cities[i]].x);
    }
  }
}

TEST(MultiAs, InterconnectsAreInSharedCities) {
  const MultiAsResult r = synthesize_multi_as(small_config(), 2);
  for (const Interconnect& ic : r.interconnects) {
    ASSERT_LT(ic.as_a, r.ases.size());
    ASSERT_LT(ic.as_b, r.ases.size());
    const auto& ca = r.ases[ic.as_a].cities;
    const auto& cb = r.ases[ic.as_b].cities;
    EXPECT_NE(std::find(ca.begin(), ca.end(), ic.city), ca.end());
    EXPECT_NE(std::find(cb.begin(), cb.end(), ic.city), cb.end());
    EXPECT_GE(ic.demand, 0.0);
  }
}

TEST(MultiAs, EveryPairPeeredOrRecordedUnpeered) {
  const MultiAsResult r = synthesize_multi_as(small_config(), 3);
  for (std::size_t a = 0; a < r.ases.size(); ++a) {
    for (std::size_t b = a + 1; b < r.ases.size(); ++b) {
      const bool has_ic = std::any_of(
          r.interconnects.begin(), r.interconnects.end(),
          [&](const Interconnect& ic) {
            return ic.as_a == a && ic.as_b == b;
          });
      const bool unpeered = std::any_of(
          r.unpeered.begin(), r.unpeered.end(), [&](const auto& p) {
            return p.first == a && p.second == b;
          });
      EXPECT_TRUE(has_ic || unpeered) << a << "," << b;
      EXPECT_FALSE(has_ic && unpeered);
    }
  }
}

TEST(MultiAs, Deterministic) {
  const MultiAsResult a = synthesize_multi_as(small_config(), 11);
  const MultiAsResult b = synthesize_multi_as(small_config(), 11);
  ASSERT_EQ(a.interconnects.size(), b.interconnects.size());
  for (std::size_t i = 0; i < a.interconnects.size(); ++i) {
    EXPECT_EQ(a.interconnects[i].city, b.interconnects[i].city);
  }
  for (std::size_t as = 0; as < a.ases.size(); ++as) {
    EXPECT_TRUE(a.ases[as].network.topology == b.ases[as].network.topology);
  }
}

TEST(MultiAs, Validates) {
  MultiAsConfig bad = small_config();
  bad.num_ases = 1;
  EXPECT_THROW(synthesize_multi_as(bad, 1), std::invalid_argument);
  bad = small_config();
  bad.min_presence = 50;
  EXPECT_THROW(synthesize_multi_as(bad, 1), std::invalid_argument);
  bad = small_config();
  bad.presence_probability = 0.0;
  EXPECT_THROW(synthesize_multi_as(bad, 1), std::invalid_argument);
}

}  // namespace
}  // namespace cold
