#include "net/network.h"

#include <gtest/gtest.h>

#include "geom/distance.h"
#include "geom/point_process.h"
#include "graph/algorithms.h"
#include "traffic/gravity.h"
#include "util/rng.h"

namespace cold {
namespace {

Network make_test_network(double overprovision = 1.0) {
  const std::vector<Point> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const std::vector<double> pops{10, 20, 30, 40};
  return build_network(g, pts, pops, gravity_matrix(pops), overprovision);
}

TEST(BuildNetwork, PopulatesAllFields) {
  const Network net = make_test_network();
  EXPECT_EQ(net.num_pops(), 4u);
  EXPECT_EQ(net.num_links(), 4u);
  EXPECT_EQ(net.lengths.rows(), 4u);
  EXPECT_EQ(net.routing.rows(), 4u);
  for (const Link& l : net.links) {
    EXPECT_GT(l.length, 0.0);
    EXPECT_GT(l.load, 0.0);
    EXPECT_DOUBLE_EQ(l.capacity, l.load);  // overprovision = 1
  }
  EXPECT_NO_THROW(validate_network(net));
}

TEST(BuildNetwork, OverprovisionScalesCapacity) {
  const Network net = make_test_network(1.5);
  for (const Link& l : net.links) {
    EXPECT_DOUBLE_EQ(l.capacity, 1.5 * l.load);
  }
  EXPECT_NEAR(net.max_utilization(), 1.0 / 1.5, 1e-12);
  EXPECT_NO_THROW(validate_network(net));
}

TEST(BuildNetwork, RejectsDisconnectedTopology) {
  const std::vector<Point> pts{{0, 0}, {1, 0}, {2, 0}};
  Topology g(3);
  g.add_edge(0, 1);
  const std::vector<double> pops{1, 1, 1};
  EXPECT_THROW(build_network(g, pts, pops, gravity_matrix(pops)),
               std::invalid_argument);
}

TEST(BuildNetwork, RejectsShapeMismatch) {
  const std::vector<Point> pts{{0, 0}, {1, 0}};
  Topology g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(build_network(g, pts, {1.0}, gravity_matrix({1.0, 1.0})),
               std::invalid_argument);
  EXPECT_THROW(
      build_network(g, pts, {1.0, 1.0}, gravity_matrix({1.0, 1.0, 1.0})),
      std::invalid_argument);
}

TEST(BuildNetwork, RejectsUnderProvision) {
  const std::vector<Point> pts{{0, 0}, {1, 0}};
  Topology g(2);
  g.add_edge(0, 1);
  const std::vector<double> pops{1, 1};
  EXPECT_THROW(build_network(g, pts, pops, gravity_matrix(pops), 0.5),
               std::invalid_argument);
}

TEST(Network, LinkCapacityLookup) {
  const Network net = make_test_network(2.0);
  EXPECT_GT(net.link_capacity(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(net.link_capacity(0, 1), net.link_capacity(1, 0));
  EXPECT_THROW(net.link_capacity(0, 2), std::invalid_argument);
}

TEST(Network, LoadsAreConsistentWithDemands) {
  // Total link load * length == demand-weighted shortest path length; and
  // every link's load is bounded by the total offered traffic.
  const Network net = make_test_network();
  const double total = total_traffic(net.traffic);
  for (const Link& l : net.links) {
    EXPECT_LE(l.load, total + 1e-9);
  }
}

TEST(ValidateNetwork, DetectsTampering) {
  Network net = make_test_network();
  net.links[0].capacity *= 2.0;  // break capacity invariant
  EXPECT_THROW(validate_network(net), std::logic_error);

  Network net2 = make_test_network();
  net2.links[0].load = -1.0;
  EXPECT_THROW(validate_network(net2), std::logic_error);

  Network net3 = make_test_network();
  net3.populations.pop_back();
  EXPECT_THROW(validate_network(net3), std::logic_error);
}

TEST(ValidateNetwork, DetectsBrokenRouting) {
  Network net = make_test_network();
  // Point a next-hop at a non-adjacent node.
  net.routing(0, 2) = 2;  // 0 and 2 are not adjacent in the ring
  EXPECT_THROW(validate_network(net), std::logic_error);
}

TEST(BuildNetwork, LargerRandomInstanceValidates) {
  Rng rng(7);
  const std::size_t n = 30;
  const auto pts = UniformProcess().sample(n, Rectangle(), rng);
  std::vector<double> pops;
  for (std::size_t i = 0; i < n; ++i) pops.push_back(rng.exponential(30.0));
  Topology g(n);
  connect_components(g, distance_matrix(pts));  // random tree via repair
  const Network net =
      build_network(g, pts, pops, gravity_matrix(pops), 1.25);
  EXPECT_NO_THROW(validate_network(net));
  EXPECT_EQ(net.num_links(), n - 1);
}

}  // namespace
}  // namespace cold
