#include "dk/degree_sequence.h"

#include <gtest/gtest.h>

#include "dk/dk_series.h"
#include "util/rng.h"

namespace cold {
namespace {

TEST(IsGraphical, KnownSequences) {
  EXPECT_TRUE(is_graphical({1, 1}));
  EXPECT_TRUE(is_graphical({2, 2, 2}));          // triangle
  EXPECT_TRUE(is_graphical({3, 3, 3, 3}));       // K4
  EXPECT_TRUE(is_graphical({4, 1, 1, 1, 1}));    // star
  EXPECT_TRUE(is_graphical({}));                 // empty
  EXPECT_TRUE(is_graphical({0, 0, 0}));          // edgeless
}

TEST(IsGraphical, RejectsBadSequences) {
  EXPECT_FALSE(is_graphical({1}));               // odd sum
  EXPECT_FALSE(is_graphical({3, 1}));            // degree >= n
  EXPECT_FALSE(is_graphical({-1, 1}));           // negative
  EXPECT_FALSE(is_graphical({3, 3, 1, 1}));      // fails Erdos-Gallai
  EXPECT_FALSE(is_graphical({2, 2, 1}));         // odd sum
}

TEST(HavelHakimi, RealizesExactDegrees) {
  const std::vector<int> degrees{3, 2, 2, 2, 1};
  const Topology g = havel_hakimi(degrees);
  for (std::size_t v = 0; v < degrees.size(); ++v) {
    EXPECT_EQ(g.degree(v), degrees[v]);
  }
}

TEST(HavelHakimi, StarAndClique) {
  const Topology star = havel_hakimi({4, 1, 1, 1, 1});
  EXPECT_EQ(star.degree(0), 4);
  const Topology k4 = havel_hakimi({3, 3, 3, 3});
  EXPECT_EQ(k4.num_edges(), 6u);
}

TEST(HavelHakimi, ThrowsOnNonGraphical) {
  EXPECT_THROW(havel_hakimi({3, 1}), std::invalid_argument);
  EXPECT_THROW(havel_hakimi({1, 1, 1}), std::invalid_argument);
}

TEST(HavelHakimi, EdgelessSequence) {
  const Topology g = havel_hakimi({0, 0, 0, 0});
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_nodes(), 4u);
}

TEST(SampleWithDegrees, PreservesOneK) {
  Rng rng(1);
  const std::vector<int> degrees{4, 3, 3, 2, 2, 2, 1, 1};
  const Topology reference = havel_hakimi(degrees);
  for (int trial = 0; trial < 5; ++trial) {
    const Topology g = sample_with_degrees(degrees, rng);
    EXPECT_TRUE(dk_distribution(reference, 1) == dk_distribution(g, 1));
    for (std::size_t v = 0; v < degrees.size(); ++v) {
      EXPECT_EQ(g.degree(v), degrees[v]);
    }
  }
}

TEST(SampleWithDegrees, ProducesVariety) {
  Rng rng(2);
  const std::vector<int> degrees{2, 2, 2, 2, 2, 2, 2, 2, 2, 2};
  const Topology a = sample_with_degrees(degrees, rng);
  const Topology b = sample_with_degrees(degrees, rng);
  // Two samples of a 2-regular sequence on 10 nodes almost surely differ.
  EXPECT_GT(Topology::edge_difference(a, b), 0u);
}

TEST(SampleWithDegrees, RandomGraphicalSequencesRoundTrip) {
  // Fuzz: degrees harvested from random graphs are graphical by
  // construction and must realize exactly.
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Topology g(12);
    for (NodeId i = 0; i < 12; ++i) {
      for (NodeId j = i + 1; j < 12; ++j) {
        if (rng.bernoulli(0.3)) g.add_edge(i, j);
      }
    }
    std::vector<int> degrees = g.degrees();
    ASSERT_TRUE(is_graphical(degrees));
    const Topology h = havel_hakimi(degrees);
    for (std::size_t v = 0; v < degrees.size(); ++v) {
      EXPECT_EQ(h.degree(v), degrees[v]);
    }
  }
}

}  // namespace
}  // namespace cold
