#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace cold {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(7, 0), b(7, 1);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 5.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(5);
  std::vector<int> counts(7, 0);
  const int trials = 70000;
  for (int i = 0; i < trials; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / 7.0, trials / 7.0 * 0.1);
  }
}

TEST(Rng, UniformIndexThrowsOnZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, ExponentialMean) {
  Rng rng(6);
  double sum = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) sum += rng.exponential(30.0);
  EXPECT_NEAR(sum / trials, 30.0, 1.0);
}

TEST(Rng, ExponentialPositive) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, ParetoMeanMatchesRequest) {
  Rng rng(8);
  double sum = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) sum += rng.pareto_with_mean(1.5, 30.0);
  // Heavy tail: generous tolerance.
  EXPECT_NEAR(sum / trials, 30.0, 4.0);
}

TEST(Rng, ParetoMinimumIsScale) {
  Rng rng(9);
  const double scale = 30.0 * 0.5 / 1.5;  // mean * (alpha-1)/alpha
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto_with_mean(1.5, 30.0), scale);
  }
}

TEST(Rng, ParetoRejectsAlphaBelowOne) {
  Rng rng(10);
  EXPECT_THROW(rng.pareto_with_mean(1.0, 30.0), std::invalid_argument);
}

TEST(Rng, GeometricMeanOneAtHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) sum += rng.geometric(0.5);
  // Failures before first success with p = 0.5: mean (1-p)/p = 1.
  EXPECT_NEAR(sum / trials, 1.0, 0.05);
}

TEST(Rng, GeometricEdgeCases) {
  Rng rng(12);
  EXPECT_EQ(rng.geometric(1.0), 0);
  EXPECT_THROW(rng.geometric(0.0), std::invalid_argument);
  EXPECT_THROW(rng.geometric(1.5), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, ss = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    const double x = rng.normal();
    sum += x;
    ss += x * x;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.02);
  EXPECT_NEAR(ss / trials, 1.0, 0.03);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(14);
  for (double mean : {3.0, 50.0}) {
    double sum = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) sum += rng.poisson(mean);
    EXPECT_NEAR(sum / trials, mean, mean * 0.05);
  }
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, PermutationIsBijection) {
  Rng rng(15);
  const auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(16);
  std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, WeightedIndexRejectsDegenerate) {
  Rng rng(17);
  std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zero), std::invalid_argument);
  std::vector<double> neg{1.0, -1.0};
  EXPECT_THROW(rng.weighted_index(neg), std::invalid_argument);
}

TEST(Rng, SpawnProducesIndependentChild) {
  Rng parent(18);
  Rng child = parent.spawn();
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

}  // namespace
}  // namespace cold
