#include "graph/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "zoo/zoo.h"

namespace cold {
namespace {

Topology path_graph(std::size_t n) {
  Topology g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(AverageDegree, KnownGraphs) {
  EXPECT_DOUBLE_EQ(average_degree(Topology::complete(5)), 4.0);
  // Tree on n nodes: 2 - 2/n (the paper quotes this minimum).
  EXPECT_DOUBLE_EQ(average_degree(path_graph(10)), 2.0 - 2.0 / 10.0);
  EXPECT_DOUBLE_EQ(average_degree(Topology(3)), 0.0);
  EXPECT_DOUBLE_EQ(average_degree(Topology(0)), 0.0);
}

TEST(DegreeCv, StarIsHighRegularIsZero) {
  EXPECT_DOUBLE_EQ(degree_cv(Topology::complete(6)), 0.0);
  // Star on 20 nodes: mean = 2*19/20, population sd computed directly.
  const Topology star = Topology::star(20, 0);
  const double mean = 2.0 * 19.0 / 20.0;
  double ss = (19.0 - mean) * (19.0 - mean) + 19.0 * (1.0 - mean) * (1.0 - mean);
  const double expect = std::sqrt(ss / 20.0) / mean;
  EXPECT_NEAR(degree_cv(star), expect, 1e-12);
  EXPECT_GT(degree_cv(star), 2.0);  // the paper's "CVND near 2" regime
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(Topology::complete(7)), 1);
  EXPECT_EQ(diameter(path_graph(6)), 5);
  EXPECT_EQ(diameter(Topology::star(9, 0)), 2);
  EXPECT_EQ(diameter(Topology(1)), 0);
}

TEST(Diameter, DisconnectedIsMinusOne) {
  Topology g(4);
  g.add_edge(0, 1);
  EXPECT_EQ(diameter(g), -1);
}

TEST(AveragePathLength, PathGraph) {
  // Path 0-1-2: distances 1,2,1 (ordered pairs double them) -> mean 4/3.
  EXPECT_NEAR(average_path_length(path_graph(3)), 4.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(average_path_length(Topology(3)), 0.0);
}

TEST(Triangles, Counts) {
  EXPECT_EQ(count_triangles(Topology::complete(4)), 4u);
  EXPECT_EQ(count_triangles(path_graph(5)), 0u);
  EXPECT_EQ(count_triangles(Topology::complete(5)), 10u);
}

TEST(GlobalClustering, BoundaryValues) {
  EXPECT_DOUBLE_EQ(global_clustering(Topology::complete(6)), 1.0);
  EXPECT_DOUBLE_EQ(global_clustering(path_graph(5)), 0.0);
  EXPECT_DOUBLE_EQ(global_clustering(Topology(3)), 0.0);
}

TEST(GlobalClustering, TriangleWithPendant) {
  // Triangle 0-1-2 plus pendant 3 on 0. Triples: C(3,2)+C(2,2)*2 = 3+1+1=5;
  // triangles = 1 -> GCC = 3/5.
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_NEAR(global_clustering(g), 0.6, 1e-12);
}

TEST(LocalClustering, MatchesManualComputation) {
  Topology g(4);  // triangle + pendant on node 0
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  // c0 = 1/3 (neighbours 1,2,3; one of three possible links), c1 = c2 = 1,
  // c3 = 0 (degree 1). Mean = (1/3 + 1 + 1 + 0) / 4.
  EXPECT_NEAR(average_local_clustering(g), (1.0 / 3.0 + 2.0) / 4.0, 1e-12);
}

TEST(Assortativity, StarIsNegative) {
  EXPECT_LT(assortativity(Topology::star(10, 0)), -0.99);
}

TEST(Assortativity, RegularGraphDegenerate) {
  EXPECT_DOUBLE_EQ(assortativity(Topology::complete(5)), 0.0);
}

TEST(SmaxRatio, CliqueIsMaximal) {
  EXPECT_NEAR(smax_ratio(Topology::complete(5)), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(smax_ratio(Topology(4)), 0.0);
}

TEST(SmaxRatio, StarVsMixedStructure) {
  // A star's s is forced (every edge touches the hub), so ratio is 1;
  // a path lets high-degree nodes avoid each other, so ratio < 1.
  EXPECT_NEAR(smax_ratio(Topology::star(8, 0)), 1.0, 1e-9);
  EXPECT_LT(smax_ratio(path_graph(8)), 1.0);
}

TEST(NodeBetweenness, StarCentreCarriesEverything) {
  const auto nb = node_betweenness(Topology::star(6, 2));
  // Centre mediates all C(5,2) = 10 pairs; leaves mediate none.
  EXPECT_NEAR(nb[2], 10.0, 1e-9);
  EXPECT_NEAR(nb[0], 0.0, 1e-9);
}

TEST(NodeBetweenness, PathInteriorDominates) {
  const auto nb = node_betweenness(path_graph(5));
  // Node 2 (middle) mediates pairs {0,1}x{3,4} -> 4.
  EXPECT_NEAR(nb[2], 4.0, 1e-9);
  EXPECT_NEAR(nb[0], 0.0, 1e-9);
  EXPECT_GT(nb[1], 0.0);
}

TEST(EdgeBetweenness, PathEdgesScaleWithCut) {
  const Topology g = path_graph(4);
  const auto eb = edge_betweenness(g);
  const auto edges = g.edges();
  ASSERT_EQ(eb.size(), 3u);
  // Edge (1,2) cuts the path 2|2: carries 4 pairs; end edges carry 3.
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (edges[i] == (Edge{1, 2})) {
      EXPECT_NEAR(eb[i], 4.0, 1e-9);
    } else {
      EXPECT_NEAR(eb[i], 3.0, 1e-9);
    }
  }
}

TEST(DegreeHistogram, Counts) {
  const auto h = degree_histogram(Topology::star(5, 0));
  ASSERT_EQ(h.size(), 5u);
  EXPECT_EQ(h[1], 4u);
  EXPECT_EQ(h[4], 1u);
  EXPECT_EQ(h[2], 0u);
}

TEST(ComputeMetrics, ConsistentSummary) {
  const TopologyMetrics m = compute_metrics(Topology::star(12, 3));
  EXPECT_EQ(m.nodes, 12u);
  EXPECT_EQ(m.edges, 11u);
  EXPECT_TRUE(m.connected);
  EXPECT_EQ(m.diameter, 2);
  EXPECT_EQ(m.hubs, 1u);
  EXPECT_EQ(m.leaves, 11u);
  EXPECT_DOUBLE_EQ(m.global_clustering, 0.0);
}

TEST(ComputeMetrics, DisconnectedGraphFlagged) {
  Topology g(4);
  g.add_edge(0, 1);
  const TopologyMetrics m = compute_metrics(g);
  EXPECT_FALSE(m.connected);
  EXPECT_EQ(m.diameter, -1);
}

TEST(Metrics, ZooSpansTheDocumentedRanges) {
  // The synthetic zoo must reproduce the ranges the paper quotes from [16]:
  // some networks with CVND > 1 (upper tail near 2), most GCC below 0.25.
  std::size_t high_cv = 0, low_gcc = 0, total = 0;
  double max_cv = 0.0;
  for (const ZooEntry& z : synthetic_zoo()) {
    const TopologyMetrics m = compute_metrics(z.topology);
    EXPECT_TRUE(m.connected) << z.name;
    ++total;
    if (m.degree_cv > 1.0) ++high_cv;
    if (m.global_clustering < 0.25) ++low_gcc;
    max_cv = std::max(max_cv, m.degree_cv);
  }
  EXPECT_GE(high_cv, total / 10);          // >= ~10% with CVND > 1
  EXPECT_GE(low_gcc * 10, total * 8);      // >= 80% with GCC < 0.25
  EXPECT_GT(max_cv, 1.8);                  // tail reaches ~2
}

}  // namespace
}  // namespace cold
