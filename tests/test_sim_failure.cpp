#include "sim/failure.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/synthesizer.h"
#include "traffic/gravity.h"

namespace cold {
namespace {

// Square ring with a diagonal shortcut; symmetric unit populations.
Network ring_network() {
  const std::vector<Point> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const std::vector<double> pops{10, 10, 10, 10};
  return build_network(g, pts, pops, gravity_matrix(pops), 1.0);
}

Network tree_network() {
  const std::vector<Point> pts{{0, 0}, {1, 0}, {2, 0}};
  Topology g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const std::vector<double> pops{10, 10, 10};
  return build_network(g, pts, pops, gravity_matrix(pops), 1.0);
}

TEST(LinkFailure, RingSurvivesWithReroute) {
  const Network net = ring_network();
  const FailureImpact impact = simulate_link_failure(net, Edge{0, 1});
  EXPECT_FALSE(impact.disconnected);
  EXPECT_DOUBLE_EQ(impact.traffic_disconnected, 0.0);
  EXPECT_GT(impact.traffic_rerouted, 0.0);
  EXPECT_GT(impact.worst_stretch, 1.0);
  // Demand 0<->1 must now take the 3-hop path: stretch 3.
  EXPECT_NEAR(impact.worst_stretch, 3.0, 1e-9);
}

TEST(LinkFailure, TreeDisconnects) {
  const Network net = tree_network();
  const FailureImpact impact = simulate_link_failure(net, Edge{0, 1});
  EXPECT_TRUE(impact.disconnected);
  // Demands 0<->1 and 0<->2 stranded: 4 of 6 ordered demand units... each
  // pair is 100 (10*10), ordered doubles it: stranded = 4*100, total 600.
  EXPECT_NEAR(impact.traffic_disconnected, 400.0, 1e-9);
  EXPECT_NEAR(impact.total_traffic, 600.0, 1e-9);
}

TEST(LinkFailure, RerouteOverloadsSurvivors) {
  const Network net = ring_network();
  const FailureImpact impact = simulate_link_failure(net, Edge{0, 1});
  // Capacities were sized exactly to the pre-failure loads, so rerouted
  // traffic must overload at least one surviving link.
  EXPECT_GT(impact.max_utilization, 1.0);
  EXPECT_GE(impact.overloaded_links, 1u);
}

TEST(LinkFailure, ValidatesLink) {
  const Network net = ring_network();
  EXPECT_THROW(simulate_link_failure(net, Edge{0, 2}), std::invalid_argument);
}

TEST(PopFailure, TransitReroutesEndpointWrittenOff) {
  const Network net = ring_network();
  const FailureImpact impact = simulate_pop_failure(net, 1);
  EXPECT_FALSE(impact.disconnected);  // remaining nodes still connected
  // Demands to/from PoP 1 are excluded from the total.
  EXPECT_NEAR(impact.total_traffic, 600.0, 1e-9);  // 3 remaining pairs x2 x100
}

TEST(PopFailure, HubFailureStrandsLeaves) {
  // Star: losing the hub strands everything.
  const std::vector<Point> pts{{0.5, 0.5}, {0, 0}, {1, 0}, {1, 1}};
  const Topology g = Topology::star(4, 0);
  const std::vector<double> pops{10, 10, 10, 10};
  const Network net = build_network(g, pts, pops, gravity_matrix(pops));
  const FailureImpact impact = simulate_pop_failure(net, 0);
  EXPECT_TRUE(impact.disconnected);
  EXPECT_NEAR(impact.traffic_disconnected, impact.total_traffic, 1e-9);
  EXPECT_THROW(simulate_pop_failure(net, 9), std::out_of_range);
}

TEST(Sweep, CoversEveryLink) {
  const Network net = ring_network();
  const auto sweep = single_link_failure_sweep(net);
  EXPECT_EQ(sweep.size(), net.num_links());
  for (const FailureImpact& f : sweep) {
    EXPECT_FALSE(f.disconnected);  // ring tolerates any single failure
  }
}

TEST(Sweep, SummaryAggregates) {
  const Network ring = ring_network();
  const FailureSweepSummary s = summarize_sweep(single_link_failure_sweep(ring));
  EXPECT_EQ(s.scenarios, 4u);
  EXPECT_EQ(s.disconnecting, 0u);
  EXPECT_GT(s.mean_rerouted_fraction, 0.0);
  EXPECT_GE(s.worst_stretch, 3.0);

  const Network tree = tree_network();
  const FailureSweepSummary t = summarize_sweep(single_link_failure_sweep(tree));
  EXPECT_EQ(t.disconnecting, 2u);  // every tree link strands traffic
}

TEST(Sweep, SynthesizedNetworkEndToEnd) {
  SynthesisConfig cfg;
  cfg.context.num_pops = 12;
  cfg.costs = CostParams{5, 1, 6e-4, 0};
  cfg.ga.population = 24;
  cfg.ga.generations = 20;
  const Synthesizer synth(cfg);
  const Network net = synth.synthesize(3).network;
  const auto sweep = single_link_failure_sweep(net);
  const FailureSweepSummary s = summarize_sweep(sweep);
  EXPECT_EQ(s.scenarios, net.num_links());
  // Totals must be conserved per scenario.
  for (const FailureImpact& f : sweep) {
    EXPECT_LE(f.traffic_disconnected + f.traffic_rerouted,
              f.total_traffic + 1e-9);
  }
}

TEST(Summary, EmptySweep) {
  const FailureSweepSummary s = summarize_sweep({});
  EXPECT_EQ(s.scenarios, 0u);
  EXPECT_DOUBLE_EQ(s.mean_rerouted_fraction, 0.0);
}

}  // namespace
}  // namespace cold
