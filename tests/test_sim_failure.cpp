#include "sim/failure.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/synthesizer.h"
#include "traffic/gravity.h"

namespace cold {
namespace {

// Square ring with a diagonal shortcut; symmetric unit populations.
Network ring_network() {
  const std::vector<Point> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const std::vector<double> pops{10, 10, 10, 10};
  return build_network(g, pts, pops, gravity_matrix(pops), 1.0);
}

Network tree_network() {
  const std::vector<Point> pts{{0, 0}, {1, 0}, {2, 0}};
  Topology g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const std::vector<double> pops{10, 10, 10};
  return build_network(g, pts, pops, gravity_matrix(pops), 1.0);
}

TEST(LinkFailure, RingSurvivesWithReroute) {
  const Network net = ring_network();
  const FailureImpact impact = simulate_link_failure(net, Edge{0, 1});
  EXPECT_FALSE(impact.disconnected);
  EXPECT_DOUBLE_EQ(impact.traffic_disconnected, 0.0);
  EXPECT_GT(impact.traffic_rerouted, 0.0);
  EXPECT_GT(impact.worst_stretch, 1.0);
  // Demand 0<->1 must now take the 3-hop path: stretch 3.
  EXPECT_NEAR(impact.worst_stretch, 3.0, 1e-9);
}

TEST(LinkFailure, TreeDisconnects) {
  const Network net = tree_network();
  const FailureImpact impact = simulate_link_failure(net, Edge{0, 1});
  EXPECT_TRUE(impact.disconnected);
  // Demands 0<->1 and 0<->2 stranded: 4 of 6 ordered demand units... each
  // pair is 100 (10*10), ordered doubles it: stranded = 4*100, total 600.
  EXPECT_NEAR(impact.traffic_disconnected, 400.0, 1e-9);
  EXPECT_NEAR(impact.total_traffic, 600.0, 1e-9);
}

TEST(LinkFailure, RerouteOverloadsSurvivors) {
  const Network net = ring_network();
  const FailureImpact impact = simulate_link_failure(net, Edge{0, 1});
  // Capacities were sized exactly to the pre-failure loads, so rerouted
  // traffic must overload at least one surviving link.
  EXPECT_GT(impact.max_utilization, 1.0);
  EXPECT_GE(impact.overloaded_links, 1u);
}

TEST(LinkFailure, ValidatesLink) {
  const Network net = ring_network();
  EXPECT_THROW(simulate_link_failure(net, Edge{0, 2}), std::invalid_argument);
}

TEST(PopFailure, TransitReroutesEndpointWrittenOff) {
  const Network net = ring_network();
  const FailureImpact impact = simulate_pop_failure(net, 1);
  EXPECT_FALSE(impact.disconnected);  // remaining nodes still connected
  // Demands to/from PoP 1 are excluded from the total.
  EXPECT_NEAR(impact.total_traffic, 600.0, 1e-9);  // 3 remaining pairs x2 x100
}

TEST(PopFailure, HubFailureStrandsLeaves) {
  // Star: losing the hub strands everything.
  const std::vector<Point> pts{{0.5, 0.5}, {0, 0}, {1, 0}, {1, 1}};
  const Topology g = Topology::star(4, 0);
  const std::vector<double> pops{10, 10, 10, 10};
  const Network net = build_network(g, pts, pops, gravity_matrix(pops));
  const FailureImpact impact = simulate_pop_failure(net, 0);
  EXPECT_TRUE(impact.disconnected);
  EXPECT_NEAR(impact.traffic_disconnected, impact.total_traffic, 1e-9);
  EXPECT_THROW(simulate_pop_failure(net, 9), std::out_of_range);
}

TEST(Sweep, CoversEveryLink) {
  const Network net = ring_network();
  const auto sweep = single_link_failure_sweep(net);
  EXPECT_EQ(sweep.size(), net.num_links());
  for (const FailureImpact& f : sweep) {
    EXPECT_FALSE(f.disconnected);  // ring tolerates any single failure
  }
}

TEST(Sweep, SummaryAggregates) {
  const Network ring = ring_network();
  const FailureSweepSummary s = summarize_sweep(single_link_failure_sweep(ring));
  EXPECT_EQ(s.scenarios, 4u);
  EXPECT_EQ(s.disconnecting, 0u);
  EXPECT_GT(s.mean_rerouted_fraction, 0.0);
  EXPECT_GE(s.worst_stretch, 3.0);

  const Network tree = tree_network();
  const FailureSweepSummary t = summarize_sweep(single_link_failure_sweep(tree));
  EXPECT_EQ(t.disconnecting, 2u);  // every tree link strands traffic
}

TEST(Sweep, SynthesizedNetworkEndToEnd) {
  SynthesisConfig cfg;
  cfg.context.num_pops = 12;
  cfg.costs = CostParams{5, 1, 6e-4, 0};
  cfg.ga.population = 24;
  cfg.ga.generations = 20;
  const Synthesizer synth(cfg);
  const Network net = synth.synthesize(3).network;
  const auto sweep = single_link_failure_sweep(net);
  const FailureSweepSummary s = summarize_sweep(sweep);
  EXPECT_EQ(s.scenarios, net.num_links());
  // Totals must be conserved per scenario.
  for (const FailureImpact& f : sweep) {
    EXPECT_LE(f.traffic_disconnected + f.traffic_rerouted,
              f.total_traffic + 1e-9);
  }
}

TEST(Summary, EmptySweep) {
  const FailureSweepSummary s = summarize_sweep({});
  EXPECT_EQ(s.scenarios, 0u);
  EXPECT_DOUBLE_EQ(s.mean_rerouted_fraction, 0.0);
}

TEST(MultiLinkFailure, SplitsRingIntoTwoComponents) {
  const Network net = ring_network();
  // Two opposite ring links: {0,1} and {2,3} leave components {1,2}, {3,0}.
  const FailureImpact impact =
      simulate_multi_link_failure(net, {Edge{0, 1}, Edge{2, 3}});
  EXPECT_TRUE(impact.disconnected);
  // Only 1<->2 and 3<->0 survive: 4 of 12 ordered pairs, each demand 100.
  EXPECT_NEAR(impact.traffic_disconnected, 800.0, 1e-9);
  EXPECT_NEAR(impact.total_traffic, 1200.0, 1e-9);
}

TEST(MultiLinkFailure, MatchesSingleLinkForOneLink) {
  const Network net = ring_network();
  const FailureImpact one = simulate_link_failure(net, Edge{1, 2});
  const FailureImpact multi = simulate_multi_link_failure(net, {Edge{1, 2}});
  EXPECT_EQ(one.disconnected, multi.disconnected);
  EXPECT_EQ(one.traffic_disconnected, multi.traffic_disconnected);
  EXPECT_EQ(one.traffic_rerouted, multi.traffic_rerouted);
  EXPECT_EQ(one.mean_stretch, multi.mean_stretch);
  EXPECT_EQ(one.worst_stretch, multi.worst_stretch);
  EXPECT_EQ(one.max_utilization, multi.max_utilization);
}

TEST(MultiLinkFailure, RejectsAbsentAndDuplicateLinks) {
  const Network net = ring_network();
  EXPECT_THROW(simulate_multi_link_failure(net, {Edge{0, 2}}),
               std::invalid_argument);
  EXPECT_THROW(simulate_multi_link_failure(net, {Edge{0, 1}, Edge{0, 1}}),
               std::invalid_argument);
}

TEST(LinkFailure, ZeroDemandPairsAreIgnored) {
  // A demand matrix with zero entries (every pair touching PoP 1): those
  // pairs must not show up in the offered-load total nor in the
  // disconnection accounting.
  const std::vector<Point> pts{{0, 0}, {1, 0}, {2, 0}};
  Topology g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const std::vector<double> pops{10, 10, 10};
  TrafficMatrix tm = TrafficMatrix::square(3, 0.0);
  tm(0, 2) = 100.0;
  tm(2, 0) = 100.0;
  const Network net = build_network(g, pts, pops, tm, 1.0);

  const FailureImpact impact = simulate_link_failure(net, Edge{0, 1});
  // Only 0<->2 carries demand (100 each direction); both directions strand.
  EXPECT_NEAR(impact.total_traffic, 200.0, 1e-9);
  EXPECT_TRUE(impact.disconnected);
  EXPECT_NEAR(impact.traffic_disconnected, 200.0, 1e-9);
}

TEST(LinkFailure, ZeroLengthEdgeRerouteHasUnitStretch) {
  // Two co-located PoPs (distance 0) in a triangle with a third. Failing
  // the zero-length link reroutes its demand over a strictly longer path,
  // but the stretch ratio is undefined (before == 0) and pinned to 1.0.
  const std::vector<Point> pts{{0, 0}, {0, 0}, {1, 0}};
  Topology g(3);
  g.add_edge(0, 1);  // length 0
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const std::vector<double> pops{10, 10, 10};
  const Network net = build_network(g, pts, pops, gravity_matrix(pops), 1.0);

  const FailureImpact zero_len = simulate_link_failure(net, Edge{0, 1});
  EXPECT_FALSE(zero_len.disconnected);
  EXPECT_GT(zero_len.traffic_rerouted, 0.0);  // 0<->1 detours via 2
  EXPECT_DOUBLE_EQ(zero_len.worst_stretch, 1.0);
  EXPECT_DOUBLE_EQ(zero_len.mean_stretch, 1.0);

  // Failing 0-2 reroutes 0<->2 via the zero-length edge at identical total
  // length, which is not a detour at all — nothing counts as rerouted.
  const FailureImpact via_zero = simulate_link_failure(net, Edge{0, 2});
  EXPECT_FALSE(via_zero.disconnected);
  EXPECT_DOUBLE_EQ(via_zero.traffic_rerouted, 0.0);
  EXPECT_DOUBLE_EQ(via_zero.worst_stretch, 1.0);
}

TEST(PopFailure, ArticulationHubSplitsThePath) {
  // Path 0-1-2-3-4: PoP 2 is an articulation point. Its failure writes off
  // demands touching 2 and strands all {0,1} <-> {3,4} transit.
  const std::vector<Point> pts{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}};
  Topology g(5);
  for (NodeId u = 0; u + 1 < 5; ++u) g.add_edge(u, u + 1);
  const std::vector<double> pops{10, 10, 10, 10, 10};
  const Network net = build_network(g, pts, pops, gravity_matrix(pops), 1.0);

  const FailureImpact impact = simulate_pop_failure(net, 2);
  EXPECT_TRUE(impact.disconnected);
  // 12 ordered pairs among {0,1,3,4}; the 8 crossing the cut strand.
  EXPECT_NEAR(impact.total_traffic, 1200.0, 1e-9);
  EXPECT_NEAR(impact.traffic_disconnected, 800.0, 1e-9);
  // The survivors (0<->1, 3<->4) keep their direct links: no reroute.
  EXPECT_DOUBLE_EQ(impact.traffic_rerouted, 0.0);
}

TEST(Sweep, DisconnectedSeedCountsBaselineUnreachableAsDisconnected) {
  // Intended behavior, pinned: sweeping a network whose *intact* topology
  // is already disconnected counts baseline-unreachable demand as
  // disconnected in every scenario (dam_tree has no path — whether the
  // failure caused that is not distinguished), and the load/utilization
  // comparison is skipped entirely (route_loads reports unroutable), so
  // max_utilization stays 0. build_network rejects disconnected seeds, so
  // the Network is assembled by hand.
  const std::vector<Point> pts{{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  Topology g(4);
  g.add_edge(0, 1);  // component {0, 1}
  g.add_edge(2, 3);  // component {2, 3}
  const std::vector<double> pops{10, 10, 10, 10};

  Network net;
  net.topology = g;
  net.locations = pts;
  net.populations = pops;
  net.traffic = gravity_matrix(pops);
  net.lengths = DistanceProvider::from_points(pts);
  for (const Edge& e : g.edges()) {
    Link link;
    link.edge = e;
    link.length = net.lengths(e.u, e.v);
    link.load = 0.0;
    link.capacity = 1.0;
    net.links.push_back(link);
  }

  const auto sweep = single_link_failure_sweep(net);
  ASSERT_EQ(sweep.size(), 2u);
  for (const FailureImpact& f : sweep) {
    EXPECT_TRUE(f.disconnected);
    EXPECT_NEAR(f.total_traffic, 1200.0, 1e-9);
    // 8 cross-component ordered pairs were never routable; the failed
    // link strands its own component's pair (2 more ordered demands).
    EXPECT_NEAR(f.traffic_disconnected, 1000.0, 1e-9);
    EXPECT_DOUBLE_EQ(f.max_utilization, 0.0);
    EXPECT_EQ(f.overloaded_links, 0u);
  }
}

}  // namespace
}  // namespace cold
