// Equivalence and determinism suite for the resilience evaluation engine
// (cost/resilience.h) and the `--objective resilient` weighted-sum GA.
//
// The engine's contract is exactness: every per-scenario FailureImpact it
// produces by *repairing* the candidate's retained shortest-path trees
// (update_shortest_path_tree deletion path) must be bit-identical to
// sim/failure's fresh recomputation, on every graph — bridge-heavy sparse
// graphs where single failures disconnect, and near-clique graphs where
// equal-length alternatives storm the tie-breaking. On top of that the
// resilient objective must keep the GA's trajectory bit-identical across
// thread counts, cache modes, the delta engine and dedup, and a weight of
// zero must reproduce the plain objective's costs exactly.
#include "cost/resilience.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "baselines/erdos_renyi.h"
#include "core/context.h"
#include "core/synthesizer.h"
#include "cost/cost_cache.h"
#include "cost/evaluator.h"
#include "cost/shared_cost_cache.h"
#include "ga/repair.h"
#include "graph/algorithms.h"
#include "graph/connectivity.h"
#include "net/network.h"
#include "net/routing.h"
#include "sim/failure.h"

namespace cold {
namespace {

Context small_context(std::uint64_t seed, std::size_t pops) {
  ContextConfig cfg;
  cfg.num_pops = pops;
  Rng rng(seed);
  return generate_context(cfg, rng);
}

/// Bridge-heavy candidate: sparse G(n, p) stitched connected, so most links
/// are bridges and many single failures disconnect demand.
Topology bridge_heavy(std::size_t n, Rng& rng, const Context& ctx) {
  Topology g = erdos_renyi_gnp(n, 0.08, rng);
  repair_connectivity(g, ctx.distances);
  return g;
}

/// Near-clique candidate: dense G(n, p) — failures reroute over many
/// equal-length alternatives, stressing deterministic tie-breaking.
Topology near_clique(std::size_t n, Rng& rng, const Context& ctx) {
  Topology g = erdos_renyi_gnp(n, 0.9, rng);
  repair_connectivity(g, ctx.distances);
  return g;
}

/// Memberwise exact comparison: the contract is bit-identity, so every
/// double compares with ==, not a tolerance.
void expect_impact_eq(const FailureImpact& a, const FailureImpact& b,
                      const std::string& what) {
  EXPECT_EQ(a.disconnected, b.disconnected) << what;
  EXPECT_EQ(a.traffic_disconnected, b.traffic_disconnected) << what;
  EXPECT_EQ(a.traffic_rerouted, b.traffic_rerouted) << what;
  EXPECT_EQ(a.total_traffic, b.total_traffic) << what;
  EXPECT_EQ(a.mean_stretch, b.mean_stretch) << what;
  EXPECT_EQ(a.worst_stretch, b.worst_stretch) << what;
  EXPECT_EQ(a.max_utilization, b.max_utilization) << what;
  EXPECT_EQ(a.overloaded_links, b.overloaded_links) << what;
}

// ---------------------------------------------------------------------------
// Scenario enumeration: a pure function of (topology, config).
// ---------------------------------------------------------------------------

TEST(FailureScenarios, SinglesAreTheLexEdgeList) {
  const Context ctx = small_context(3, 10);
  Rng rng(3);
  const Topology g = bridge_heavy(10, rng, ctx);
  ResilienceConfig cfg;
  cfg.enabled = true;
  const auto scenarios = enumerate_failure_scenarios(g, cfg);
  const std::vector<Edge> edges = g.edges();
  ASSERT_EQ(scenarios.size(), edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    ASSERT_EQ(scenarios[i].size(), 1u);
    EXPECT_EQ(scenarios[i][0], edges[i]);
  }
}

TEST(FailureScenarios, DoubleSamplingIsDeterministicAndValid) {
  const Context ctx = small_context(4, 10);
  Rng rng(4);
  const Topology g = near_clique(10, rng, ctx);
  ResilienceConfig cfg;
  cfg.enabled = true;
  cfg.scenarios = FailureScenarioSet::kDoubleSampled;
  cfg.double_samples = 8;
  const auto a = enumerate_failure_scenarios(g, cfg);
  const auto b = enumerate_failure_scenarios(g, cfg);
  EXPECT_EQ(a, b);  // same (g, config) -> same list, always
  const std::size_t m = g.edges().size();
  ASSERT_EQ(a.size(), m + 8);
  for (std::size_t i = m; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), 2u);
    EXPECT_TRUE(g.has_edge(a[i][0].u, a[i][0].v));
    EXPECT_TRUE(g.has_edge(a[i][1].u, a[i][1].v));
    EXPECT_NE(a[i][0], a[i][1]);  // two distinct links per scenario
  }
}

TEST(FailureScenarios, FewerThanTwoEdgesYieldsNoDoubles) {
  Topology g(2);
  g.add_edge(0, 1);
  ResilienceConfig cfg;
  cfg.enabled = true;
  cfg.scenarios = FailureScenarioSet::kDoubleSampled;
  cfg.double_samples = 8;
  EXPECT_EQ(enumerate_failure_scenarios(g, cfg).size(), 1u);
}

// ---------------------------------------------------------------------------
// The tentpole property: delta-repaired sweeps are bit-identical to fresh
// sim/failure recomputation, per scenario and per field, on 80 random
// graphs (40 seeds x {bridge-heavy, near-clique}).
// ---------------------------------------------------------------------------

class SweepEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

void check_sweep_matches_reference(const Topology& g, const Context& ctx,
                                   const std::string& family) {
  ResilienceConfig cfg;
  cfg.enabled = true;
  cfg.scenarios = FailureScenarioSet::kDoubleSampled;
  cfg.double_samples = 6;
  cfg.overprovision = 1.25;

  // The candidate's own routing: loads size the capacities, retained trees
  // feed the delta repairs (the Evaluator hands the engine exactly these).
  EdgeLoads base_loads;
  RoutingWorkspace ws;
  std::vector<ShortestPathTree> base_trees;
  ASSERT_TRUE(route_loads_retained(g, ctx.distances, ctx.traffic, base_loads,
                                   base_trees, ws));

  // Reference: assemble the Network sim/failure scores and recompute every
  // scenario from scratch.
  const Network net = build_network(g, ctx.locations, ctx.populations,
                                    ctx.traffic, cfg.overprovision);
  const auto scenarios = enumerate_failure_scenarios(g, cfg);
  ASSERT_FALSE(scenarios.empty());

  ResilienceSummary summaries[2];
  for (const bool use_delta : {true, false}) {
    cfg.use_delta = use_delta;
    ResilienceEngine engine(ctx.distances, ctx.traffic, cfg);
    std::vector<FailureImpact> per_scenario;
    // Retained-tree path (what the Evaluator drives) on the delta pass,
    // engine-computed base trees on the fresh pass: both must agree with
    // the reference, so both agree with each other.
    summaries[use_delta ? 0 : 1] = engine.assess(
        g, use_delta ? &base_trees : nullptr, base_loads, &per_scenario);
    ASSERT_EQ(per_scenario.size(), scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const FailureImpact ref = simulate_multi_link_failure(net, scenarios[i]);
      expect_impact_eq(per_scenario[i], ref,
                       family + " scenario " + std::to_string(i) +
                           (use_delta ? " (delta)" : " (fresh)"));
    }
    const ResilienceStats& stats = engine.stats();
    EXPECT_EQ(stats.sweeps, 1u);
    EXPECT_EQ(stats.scenarios, scenarios.size());
    if (use_delta) {
      EXPECT_GT(stats.delta_repairs, 0u);
    } else {
      EXPECT_EQ(stats.delta_repairs, 0u);
      EXPECT_GT(stats.fresh_trees, 0u);
    }
  }
  EXPECT_TRUE(summaries[0] == summaries[1]) << family;
}

TEST_P(SweepEquivalence, DeltaRepairedSweepMatchesFreshRecomputation) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 11;
  const Context ctx = small_context(seed, n);
  Rng rng(seed ^ 0xabcdef);
  check_sweep_matches_reference(bridge_heavy(n, rng, ctx), ctx, "bridge");
  check_sweep_matches_reference(near_clique(n, rng, ctx), ctx, "clique");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepEquivalence,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{41}));

// ---------------------------------------------------------------------------
// Weighted-sum semantics.
// ---------------------------------------------------------------------------

TEST(ResilientObjective, ZeroWeightReproducesPlainCostsExactly) {
  const Context ctx = small_context(9, 12);
  Evaluator plain(ctx.distances, ctx.traffic, CostParams{});
  EvalEngineConfig engine;
  engine.resilience.enabled = true;
  engine.resilience.weight = 0.0;
  Evaluator resilient(ctx.distances, ctx.traffic, CostParams{}, engine);

  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    Topology g = erdos_renyi_gnp(12, 0.2, rng);
    repair_connectivity(g, ctx.distances);
    const CostBreakdown a = plain.evaluate(g).breakdown;
    const CostBreakdown b = resilient.evaluate(g).breakdown;
    EXPECT_EQ(b.resilience, 0.0);  // 0 * finite penalty, exactly
    EXPECT_EQ(a.total(), b.total());
  }
}

TEST(ResilientObjective, PositiveWeightChargesThePenalty) {
  const Context ctx = small_context(10, 10);
  EvalEngineConfig engine;
  engine.resilience.enabled = true;
  engine.resilience.weight = 2.5;
  Evaluator eval(ctx.distances, ctx.traffic, CostParams{}, engine);

  // A tree disconnects under every single-link failure: the penalty is
  // strictly positive and the weighted term shows up in the total.
  const Topology tree = minimum_spanning_tree(ctx.distances);
  const CostBreakdown b = eval.evaluate(tree).breakdown;
  EXPECT_GT(b.resilience_summary.disconnected_fraction, 0.0);
  EXPECT_EQ(b.resilience_summary.scenarios, tree.edges().size());
  const double penalty = b.resilience_summary.penalty();
  EXPECT_TRUE(std::isfinite(penalty));
  EXPECT_EQ(b.resilience, 2.5 * penalty);
  EXPECT_GT(b.total(), b.existence + b.length + b.bandwidth + b.node - 1e-12);
}

// ---------------------------------------------------------------------------
// Cache-key separation: plain and resilient breakdowns of the same topology
// must never conflate, in either cache implementation.
// ---------------------------------------------------------------------------

TEST(CacheSalt, PrivateCacheSeparatesObjectives) {
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EvalCacheConfig cfg;
  cfg.enabled = true;
  CostCache cache(cfg);
  CostBreakdown plain;
  plain.existence = 1.0;
  CostBreakdown resilient = plain;
  resilient.resilience = 7.0;

  cache.insert(g, plain, /*salt=*/0);
  EXPECT_EQ(cache.find(g, /*salt=*/0x5a5a), nullptr);  // salted probe misses
  cache.insert(g, resilient, /*salt=*/0x5a5a);
  const CostBreakdown* a = cache.find(g, 0);
  const CostBreakdown* b = cache.find(g, 0x5a5a);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->resilience, 0.0);
  EXPECT_EQ(b->resilience, 7.0);
}

TEST(CacheSalt, SharedCacheSeparatesObjectives) {
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EvalCacheConfig cfg;
  cfg.enabled = true;
  cfg.shared = true;
  SharedCostCache cache(cfg);
  CostBreakdown stored;
  stored.existence = 3.0;
  cache.insert(g, stored, /*salt=*/0x77);

  CostBreakdown out;
  EXPECT_FALSE(cache.find(g, out, /*salt=*/0));
  EXPECT_FALSE(cache.find(g, out, /*salt=*/0x78));
  ASSERT_TRUE(cache.find(g, out, /*salt=*/0x77));
  EXPECT_EQ(out.existence, 3.0);
}

TEST(CacheSalt, EvaluatorSaltsDependOnTheResilienceConfig) {
  const Context ctx = small_context(2, 8);
  Evaluator plain(ctx.distances, ctx.traffic, CostParams{});
  EXPECT_EQ(plain.cache_salt(), 0u);

  EvalEngineConfig engine;
  engine.resilience.enabled = true;
  engine.resilience.weight = 1.0;
  Evaluator a(ctx.distances, ctx.traffic, CostParams{}, engine);
  EXPECT_NE(a.cache_salt(), 0u);

  engine.resilience.weight = 2.0;
  Evaluator b(ctx.distances, ctx.traffic, CostParams{}, engine);
  EXPECT_NE(b.cache_salt(), a.cache_salt());  // weight enters the salt

  engine.resilience.use_delta = false;  // perf knob: must NOT move the salt
  Evaluator c(ctx.distances, ctx.traffic, CostParams{}, engine);
  EXPECT_EQ(c.cache_salt(), b.cache_salt());
}

// ---------------------------------------------------------------------------
// Trajectory invariance: the resilient GA follows one trajectory for every
// engine configuration and thread count.
// ---------------------------------------------------------------------------

SynthesisConfig resilient_config() {
  SynthesisConfig cfg;
  cfg.context.num_pops = 10;
  cfg.ga.population = 16;
  cfg.ga.generations = 5;
  cfg.engine.resilience.enabled = true;
  cfg.engine.resilience.weight = 1.5;
  return cfg;
}

TEST(ResilientObjective, TrajectoryInvariantAcrossEngineConfigs) {
  std::vector<double> reference;
  double reference_cost = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const int cache_mode : {0, 1, 2}) {  // off | private | shared
      for (const bool dsssp : {false, true}) {
        for (const bool dedup : {false, true}) {
          SynthesisConfig cfg = resilient_config();
          cfg.ga.parallel.num_threads = threads;
          cfg.engine.cache.enabled = cache_mode != 0;
          cfg.engine.cache.shared = cache_mode == 2;
          cfg.engine.delta.mode = dsssp ? DsspMode::kOn : DsspMode::kOff;
          cfg.ga.dedup = dedup;
          const SynthesisResult r = Synthesizer(cfg).synthesize(7);
          const std::string what =
              "threads=" + std::to_string(threads) +
              " cache=" + std::to_string(cache_mode) +
              " dsssp=" + std::to_string(dsssp) +
              " dedup=" + std::to_string(dedup);
          if (reference.empty()) {
            reference = r.ga.best_cost_history;
            reference_cost = r.ga.best_cost;
            ASSERT_FALSE(reference.empty());
          } else {
            EXPECT_EQ(r.ga.best_cost_history, reference) << what;
            EXPECT_EQ(r.ga.best_cost, reference_cost) << what;
          }
          EXPECT_GT(r.resilience.sweeps, 0u) << what;
        }
      }
    }
  }

  // One high-thread-count spot check on the most featureful combination.
  SynthesisConfig cfg = resilient_config();
  cfg.ga.parallel.num_threads = 8;
  cfg.engine.cache.enabled = true;
  cfg.engine.cache.shared = true;
  cfg.engine.delta.mode = DsspMode::kOn;
  cfg.ga.dedup = true;
  const SynthesisResult r = Synthesizer(cfg).synthesize(7);
  EXPECT_EQ(r.ga.best_cost_history, reference);
  EXPECT_EQ(r.ga.best_cost, reference_cost);
}

TEST(ResilientObjective, SynthesizerValidatesTheConfig) {
  SynthesisConfig bad = resilient_config();
  bad.engine.resilience.weight = -1.0;
  EXPECT_THROW(Synthesizer{bad}, std::invalid_argument);
  bad.engine.resilience.weight =
      std::numeric_limits<double>::infinity();
  EXPECT_THROW(Synthesizer{bad}, std::invalid_argument);

  SynthesisConfig zero_samples = resilient_config();
  zero_samples.engine.resilience.scenarios =
      FailureScenarioSet::kDoubleSampled;
  zero_samples.engine.resilience.double_samples = 0;
  EXPECT_THROW(Synthesizer{zero_samples}, std::invalid_argument);

  // The sweep's capacities track the Network the run would provision.
  SynthesisConfig sync = resilient_config();
  sync.overprovision = 1.5;
  const Synthesizer synth(sync);
  EXPECT_EQ(synth.config().engine.resilience.overprovision, 1.5);
}

}  // namespace
}  // namespace cold
