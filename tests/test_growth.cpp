#include "growth/growth.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/distance.h"
#include "graph/algorithms.h"
#include "traffic/gravity.h"

namespace cold {
namespace {

Network small_base() {
  SynthesisConfig cfg;
  cfg.context.num_pops = 10;
  cfg.costs = CostParams{10, 1, 4e-4, 10};
  cfg.ga.population = 24;
  cfg.ga.generations = 20;
  const Synthesizer synth(cfg);
  return synth.synthesize(1).network;
}

GrowthConfig small_growth() {
  GrowthConfig cfg;
  cfg.new_pops = 4;
  cfg.costs = CostParams{10, 1, 4e-4, 10};
  cfg.ga.population = 24;
  cfg.ga.generations = 20;
  return cfg;
}

TEST(GrowthEvaluator, ChargesForRemovedInstalledLinks) {
  const std::vector<Point> pts{{0, 0}, {1, 0}, {2, 0}};
  const auto lengths = distance_matrix(pts);
  const auto traffic = gravity_matrix({1.0, 1.0, 1.0});
  const CostParams costs{10, 1, 0, 0};
  const std::vector<Edge> installed{{0, 1}, {1, 2}};

  GrowthEvaluator keep(lengths, traffic, costs, installed, 1.0);
  Topology full(3);
  full.add_edge(0, 1);
  full.add_edge(1, 2);
  // Keeping both installed links: plain cost, no charge.
  Evaluator plain(lengths, traffic, costs);
  EXPECT_DOUBLE_EQ(keep.cost(full), plain.cost(full));

  // Dropping installed link (1,2) and bridging 0-2 directly: plain cost of
  // the new graph + decommission charge (k0 + k1*1 = 11).
  Topology alt(3);
  alt.add_edge(0, 1);
  alt.add_edge(0, 2);
  EXPECT_DOUBLE_EQ(keep.cost(alt), plain.cost(alt) + 11.0);
}

TEST(GrowthEvaluator, InfeasibleStaysInfinite) {
  const std::vector<Point> pts{{0, 0}, {1, 0}, {2, 0}};
  GrowthEvaluator eval(distance_matrix(pts), gravity_matrix({1, 1, 1}),
                       CostParams{}, {{0, 1}}, 1.0);
  Topology g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(std::isinf(eval.cost(g)));
}

TEST(GrowNetwork, AddsPopsAndStaysValid) {
  const Network base = small_base();
  const GrowthResult r = grow_network(base, small_growth(), 7);
  EXPECT_EQ(r.network.num_pops(), base.num_pops() + 4);
  EXPECT_NO_THROW(validate_network(r.network));
  // Original PoPs keep their coordinates.
  for (std::size_t v = 0; v < base.num_pops(); ++v) {
    EXPECT_DOUBLE_EQ(r.network.locations[v].x, base.locations[v].x);
    EXPECT_DOUBLE_EQ(r.network.locations[v].y, base.locations[v].y);
  }
  EXPECT_EQ(r.links_kept + r.links_removed, base.num_links());
  EXPECT_EQ(r.network.num_links(), r.links_kept + r.links_added);
}

TEST(GrowNetwork, PopulationGrowthApplied) {
  const Network base = small_base();
  GrowthConfig cfg = small_growth();
  cfg.population_growth = 2.0;
  const GrowthResult r = grow_network(base, cfg, 7);
  for (std::size_t v = 0; v < base.num_pops(); ++v) {
    EXPECT_DOUBLE_EQ(r.network.populations[v], 2.0 * base.populations[v]);
  }
}

TEST(GrowNetwork, ExpensiveDecommissionPreservesPlant) {
  const Network base = small_base();
  GrowthConfig cfg = small_growth();
  cfg.decommission_factor = 1e9;  // effectively frozen plant
  const GrowthResult r = grow_network(base, cfg, 9);
  EXPECT_EQ(r.links_removed, 0u);
  for (const Edge& e : base.topology.edges()) {
    EXPECT_TRUE(r.network.topology.has_edge(e.u, e.v));
  }
}

TEST(GrowNetwork, FreeDecommissionAllowsRestructuring) {
  // With no decommission charge, growth is greenfield re-optimization: the
  // result must cost no more than the frozen-plant result under the plain
  // cost model.
  const Network base = small_base();
  GrowthConfig frozen = small_growth();
  frozen.decommission_factor = 1e9;
  GrowthConfig free = small_growth();
  free.decommission_factor = 0.0;
  const GrowthResult r_frozen = grow_network(base, frozen, 11);
  const GrowthResult r_free = grow_network(base, free, 11);

  Evaluator plain(r_free.context.distances, r_free.context.traffic,
                  free.costs);
  EXPECT_LE(plain.cost(r_free.network.topology),
            plain.cost(r_frozen.network.topology) + 1e-9);
}

TEST(GrowNetwork, Deterministic) {
  const Network base = small_base();
  const GrowthResult a = grow_network(base, small_growth(), 42);
  const GrowthResult b = grow_network(base, small_growth(), 42);
  EXPECT_TRUE(a.network.topology == b.network.topology);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(GrowNetwork, Validates) {
  const Network base = small_base();
  GrowthConfig bad = small_growth();
  bad.population_growth = 0.0;
  EXPECT_THROW(grow_network(base, bad, 1), std::invalid_argument);
}

TEST(GrowNetwork, ZeroNewPopsJustReoptimizes) {
  const Network base = small_base();
  GrowthConfig cfg = small_growth();
  cfg.new_pops = 0;
  const GrowthResult r = grow_network(base, cfg, 5);
  EXPECT_EQ(r.network.num_pops(), base.num_pops());
  EXPECT_NO_THROW(validate_network(r.network));
}

}  // namespace
}  // namespace cold
