#include "graph/topology.h"

#include <gtest/gtest.h>

namespace cold {
namespace {

TEST(Edge, MakeEdgeCanonicalizes) {
  const Edge e = make_edge(5, 2);
  EXPECT_EQ(e.u, 2u);
  EXPECT_EQ(e.v, 5u);
  EXPECT_THROW(make_edge(3, 3), std::invalid_argument);
}

TEST(Topology, EmptyGraph) {
  const Topology g(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.degree(0), 0);
}

TEST(Topology, AddRemoveEdge) {
  Topology g(4);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));  // idempotent, symmetric
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(1), 0);
}

TEST(Topology, RejectsSelfLoopAndOutOfRange) {
  Topology g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 3), std::out_of_range);
  EXPECT_THROW(g.remove_edge(3, 0), std::out_of_range);
}

TEST(Topology, CompleteGraph) {
  const Topology g = Topology::complete(5);
  EXPECT_EQ(g.num_edges(), 10u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(Topology, Star) {
  const Topology g = Topology::star(6, 2);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(2), 5);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.num_core_nodes(), 1u);
  EXPECT_EQ(g.num_leaf_nodes(), 5u);
  EXPECT_THROW(Topology::star(3, 5), std::invalid_argument);
}

TEST(Topology, FromEdges) {
  const Topology g = Topology::from_edges(4, {{0, 1}, {1, 2}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 2u);  // duplicate collapsed
  EXPECT_THROW(Topology::from_edges(2, {{0, 5}}), std::invalid_argument);
}

TEST(Topology, EdgesAreCanonicalAndSorted) {
  Topology g(4);
  g.add_edge(3, 1);
  g.add_edge(2, 0);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{0, 2}));
  EXPECT_EQ(edges[1], (Edge{1, 3}));
}

TEST(Topology, Neighbors) {
  Topology g(5);
  g.add_edge(2, 0);
  g.add_edge(2, 4);
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 4u);
  EXPECT_THROW(g.neighbors(9), std::out_of_range);
}

TEST(Topology, CoreAndLeafCounts) {
  Topology g(5);  // path 0-1-2-3, isolated 4
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_EQ(g.num_core_nodes(), 2u);  // 1 and 2
  EXPECT_EQ(g.num_leaf_nodes(), 2u);  // 0 and 3 (4 has degree 0)
}

TEST(Topology, ClearEdges) {
  Topology g = Topology::complete(4);
  g.clear_edges();
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(Topology, EdgeDifference) {
  Topology a(4), b(4);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  EXPECT_EQ(Topology::edge_difference(a, b), 2u);
  EXPECT_EQ(Topology::edge_difference(a, a), 0u);
  EXPECT_THROW(Topology::edge_difference(a, Topology(3)),
               std::invalid_argument);
}

TEST(Topology, EqualityIsStructural) {
  Topology a(3), b(3);
  a.add_edge(0, 1);
  b.add_edge(0, 1);
  EXPECT_TRUE(a == b);
  b.add_edge(1, 2);
  EXPECT_FALSE(a == b);
}

TEST(Topology, SetEdge) {
  Topology g(3);
  g.set_edge(0, 2, true);
  EXPECT_TRUE(g.has_edge(0, 2));
  g.set_edge(0, 2, false);
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Topology, RowPointerMatchesHasEdge) {
  Topology g(4);
  g.add_edge(1, 3);
  const std::uint8_t* r = g.row(1);
  EXPECT_EQ(r[3], 1);
  EXPECT_EQ(r[0], 0);
}

TEST(Topology, AdjacencyListsStaySorted) {
  Topology g(6);
  g.add_edge(3, 5);
  g.add_edge(3, 0);
  g.add_edge(3, 4);
  const std::vector<NodeId> want{0, 4, 5};
  EXPECT_EQ(g.adjacency(3), want);
  g.remove_edge(3, 4);
  const std::vector<NodeId> after{0, 5};
  EXPECT_EQ(g.adjacency(3), after);
  EXPECT_TRUE(g.adjacency(1).empty());
}

TEST(TopologyFingerprint, EmptyIsZeroAndOrderIndependent) {
  EXPECT_EQ(Topology(7).fingerprint(), 0u);
  Topology a(5), b(5);
  a.add_edge(0, 1);
  a.add_edge(2, 3);
  b.add_edge(2, 3);
  b.add_edge(0, 1);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), 0u);
}

TEST(TopologyFingerprint, EdgeKeyCanonicalizesEndpoints) {
  EXPECT_EQ(Topology::edge_key(2, 7), Topology::edge_key(7, 2));
  EXPECT_NE(Topology::edge_key(0, 1), Topology::edge_key(0, 2));
}

TEST(TopologyFingerprint, AddRemoveRoundTrips) {
  Topology g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const std::uint64_t before = g.fingerprint();
  g.add_edge(4, 5);
  EXPECT_NE(g.fingerprint(), before);
  g.remove_edge(4, 5);
  EXPECT_EQ(g.fingerprint(), before);
  g.set_edge(2, 3, true);
  g.set_edge(2, 3, false);
  EXPECT_EQ(g.fingerprint(), before);
}

TEST(TopologyFingerprint, FromEdgesMatchesIncremental) {
  Topology inc(8);
  inc.add_edge(6, 7);
  inc.add_edge(0, 3);
  inc.add_edge(2, 5);
  const Topology bulk = Topology::from_edges(8, {{2, 5}, {6, 7}, {0, 3}});
  EXPECT_EQ(inc.fingerprint(), bulk.fingerprint());
  // Stateless keys: a fresh instance with the same edges agrees too.
  EXPECT_EQ(Topology::from_edges(8, {{0, 3}, {2, 5}, {6, 7}}).fingerprint(),
            inc.fingerprint());
}

TEST(TopologyFingerprint, CopySemanticsAndClear) {
  Topology g = Topology::complete(5);
  const Topology copy = g;
  EXPECT_EQ(copy.fingerprint(), g.fingerprint());
  g.remove_edge(0, 1);
  EXPECT_NE(copy.fingerprint(), g.fingerprint());  // copy is independent
  g.clear_edges();
  EXPECT_EQ(g.fingerprint(), 0u);
  EXPECT_EQ(g.adjacency(0).size(), 0u);
}

TEST(TopologyFingerprint, DistinguishesEdgeSetsOfEqualSize) {
  const Topology a = Topology::from_edges(4, {{0, 1}, {2, 3}});
  const Topology b = Topology::from_edges(4, {{0, 2}, {1, 3}});
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

}  // namespace
}  // namespace cold
