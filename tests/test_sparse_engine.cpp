// Sparse-primary engine guarantees: the dense view is a backend choice, not
// an identity — forcing either backend yields byte-identical timing-free run
// reports; EdgeLoads matches the dense loads matrix bit-for-bit; streamed
// ensemble aggregation folds to the same bits as a post-hoc pass over
// retained runs; and city-scale synthesis (n = 2000) completes without any
// quadratic adjacency object.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/erdos_renyi.h"
#include "core/ensemble.h"
#include "core/synthesizer.h"
#include "geom/distance.h"
#include "geom/point_process.h"
#include "graph/algorithms.h"
#include "net/routing.h"
#include "telemetry/report.h"
#include "traffic/gravity.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cold {
namespace {

/// Restores the dense-view auto threshold on scope exit, so a failing test
/// cannot leak a forced backend into the rest of the suite.
class ThresholdGuard {
 public:
  explicit ThresholdGuard(std::size_t n)
      : saved_(Topology::dense_auto_threshold()) {
    Topology::set_dense_auto_threshold(n);
  }
  ~ThresholdGuard() { Topology::set_dense_auto_threshold(saved_); }
  ThresholdGuard(const ThresholdGuard&) = delete;
  ThresholdGuard& operator=(const ThresholdGuard&) = delete;

 private:
  std::size_t saved_;
};

SynthesisConfig tiny_config(std::size_t n, std::size_t threads,
                            DsspMode dsssp) {
  SynthesisConfig cfg;
  cfg.context.num_pops = n;
  cfg.costs = CostParams{10, 1, 4e-4, 10};
  cfg.ga.population = 8;
  cfg.ga.generations = 4;
  cfg.ga.parallel.num_threads = threads;
  cfg.engine.delta.mode = dsssp;
  cfg.seed_with_heuristics = false;  // keep n = 200 fast
  return cfg;
}

std::string timing_free_report(const SynthesisConfig& cfg,
                               std::uint64_t seed) {
  JsonReportSink sink;
  SynthesisConfig with_observer = cfg;
  with_observer.observer = &sink;
  Synthesizer(with_observer).synthesize(seed);
  return run_report_to_json(sink.report(), /*include_timing=*/false);
}

// The tentpole acceptance gate: for every (n, threads, dsssp) cell, a run
// forced onto the sparse backend produces a byte-identical timing-free
// report to the same run forced onto the dense backend.
TEST(SparseVsDense, ByteIdenticalTimingFreeReports) {
  for (const std::size_t n : {24u, 80u, 200u}) {
    for (const std::size_t threads : {1u, 4u}) {
      for (const DsspMode dsssp : {DsspMode::kOff, DsspMode::kOn}) {
        const SynthesisConfig cfg = tiny_config(n, threads, dsssp);
        std::string dense, sparse;
        {
          ThresholdGuard force_dense(4096);
          dense = timing_free_report(cfg, /*seed=*/42);
        }
        {
          ThresholdGuard force_sparse(0);
          sparse = timing_free_report(cfg, /*seed=*/42);
        }
        EXPECT_EQ(dense, sparse)
            << "backend divergence at n=" << n << " threads=" << threads
            << " dsssp=" << static_cast<int>(dsssp);
      }
    }
  }
}

// City-scale smoke synthesis: n = 2000 is far above the dense auto
// threshold, so no n^2 adjacency object ever exists; the whole pipeline
// (context, GA with repair, routing, assembly) must run sparse end-to-end.
TEST(SparseVsDense, SmokeSynthesisAtN2000) {
  SynthesisConfig cfg;
  cfg.context.num_pops = 2000;
  cfg.costs = CostParams{10, 1, 4e-4, 10};
  cfg.ga.population = 6;
  cfg.ga.generations = 2;
  // The full-mesh seed has ~2M edges at this scale; routing it once costs
  // more than the rest of the smoke run combined. Sparse candidates only.
  cfg.ga.include_clique_seed = false;
  cfg.seed_with_heuristics = false;
  const SynthesisResult r = Synthesizer(cfg).synthesize(1);
  EXPECT_FALSE(r.network.topology.has_dense_view());
  EXPECT_EQ(r.network.topology.num_nodes(), 2000u);
  EXPECT_TRUE(is_connected(r.network.topology));
  EXPECT_GT(r.cost.total(), 0.0);
  EXPECT_NO_THROW(validate_network(r.network));
}

TEST(EdgeLoads, MatchesDenseRouteLoadsBitForBit) {
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 16;
    const auto pts = UniformProcess().sample(n, Rectangle(), rng);
    const auto len = distance_matrix(pts);
    Topology g = erdos_renyi_gnp(n, 0.3, rng);
    connect_components(g, len);
    std::vector<double> pops;
    for (std::size_t i = 0; i < n; ++i) pops.push_back(rng.exponential(30.0));
    const auto traffic = gravity_matrix(pops);

    Matrix<double> dense;
    RoutingWorkspace ws;
    ASSERT_TRUE(route_loads_dense(g, len, traffic, dense, ws));

    EdgeLoads sparse;
    RoutingWorkspace ws2;
    ASSERT_TRUE(route_loads(g, len, traffic, sparse, ws2));

    ASSERT_EQ(sparse.num_edges(), g.num_edges());
    for (const Edge& e : g.edges()) {
      // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the contract is bit-identity.
      EXPECT_EQ(sparse.at(e.u, e.v), dense(e.u, e.v));
      EXPECT_EQ(sparse.at(e.v, e.u), sparse.at(e.u, e.v));
    }
    Matrix<double> scattered;
    sparse.scatter(scattered);
    EXPECT_TRUE(scattered == dense);
  }
}

TEST(EdgeLoads, ValueOrderIsLexicographicEdgeOrder) {
  Topology g(5);
  g.add_edge(3, 4);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(0, 4);
  EdgeLoads loads;
  loads.build(g);
  const std::vector<Edge> edges = g.edges();
  ASSERT_EQ(loads.num_edges(), edges.size());
  for (std::size_t k = 0; k < edges.size(); ++k) {
    EXPECT_EQ(loads.index_of(edges[k].u, edges[k].v), k);
    EXPECT_EQ(loads.index_of(edges[k].v, edges[k].u), k);
  }
}

// Streamed Welford fold over the run stream == post-hoc fold over the
// retained per-run values, bit for bit (same values, same order, same pure
// FP recurrence).
TEST(EnsembleAccumulator, FoldMatchesPostHocAggregation) {
  SynthesisConfig cfg;
  cfg.context.num_pops = 10;
  cfg.costs = CostParams{10, 1, 4e-4, 10};
  cfg.ga.population = 16;
  cfg.ga.generations = 10;
  const Synthesizer synth(cfg);
  const EnsembleResult e = generate_ensemble(synth, 6, /*base_seed=*/50);
  ASSERT_TRUE(e.acc.retains_runs());
  ASSERT_EQ(e.num_runs(), 6u);

  MetricAggregate avg_degree, diameter, best_cost;
  for (std::size_t i = 0; i < e.num_runs(); ++i) {
    avg_degree.fold(e.acc.metrics()[i].avg_degree);
    diameter.fold(static_cast<double>(e.acc.metrics()[i].diameter));
    best_cost.fold(e.runs()[i].ga.best_cost);
  }
  const EnsembleAggregates& a = e.aggregates();
  EXPECT_EQ(a.runs, 6u);
  EXPECT_FALSE(a.streamed);
  EXPECT_EQ(a.avg_degree.mean, avg_degree.mean);
  EXPECT_EQ(a.avg_degree.m2, avg_degree.m2);
  EXPECT_EQ(a.avg_degree.min, avg_degree.min);
  EXPECT_EQ(a.avg_degree.max, avg_degree.max);
  EXPECT_EQ(a.diameter.mean, diameter.mean);
  EXPECT_EQ(a.diameter.m2, diameter.m2);
  EXPECT_EQ(a.best_cost.mean, best_cost.mean);
  EXPECT_EQ(a.best_cost.min, best_cost.min);
}

// The streamed path folds the same runs in the same (seed) order, so its
// aggregates are bit-identical to the retained path's — only the retention
// differs.
TEST(EnsembleAccumulator, StreamedAggregatesMatchRetained) {
  SynthesisConfig cfg;
  cfg.context.num_pops = 10;
  cfg.costs = CostParams{10, 1, 4e-4, 10};
  cfg.ga.population = 16;
  cfg.ga.generations = 10;
  const Synthesizer synth(cfg);

  EnsembleOptions retained;
  retained.count = 5;
  retained.base_seed = 30;
  retained.retain = RetainMode::kRetainAll;
  EnsembleOptions streamed = retained;
  streamed.retain = RetainMode::kStreamed;

  const EnsembleResult r = generate_ensemble(synth, retained);
  const EnsembleResult s = generate_ensemble(synth, streamed);

  const EnsembleAggregates& ra = r.aggregates();
  const EnsembleAggregates& sa = s.aggregates();
  EXPECT_EQ(ra.runs, sa.runs);
  EXPECT_TRUE(sa.streamed);
  EXPECT_FALSE(ra.streamed);
  const auto expect_same = [](const MetricAggregate& x,
                              const MetricAggregate& y) {
    EXPECT_EQ(x.count, y.count);
    EXPECT_EQ(x.mean, y.mean);
    EXPECT_EQ(x.m2, y.m2);
    EXPECT_EQ(x.min, y.min);
    EXPECT_EQ(x.max, y.max);
  };
  expect_same(ra.avg_degree, sa.avg_degree);
  expect_same(ra.diameter, sa.diameter);
  expect_same(ra.clustering, sa.clustering);
  expect_same(ra.degree_cv, sa.degree_cv);
  expect_same(ra.hubs, sa.hubs);
  expect_same(ra.assortativity, sa.assortativity);
  expect_same(ra.best_cost, sa.best_cost);
  // The streamed CIs (normal approximation) must bracket their mean.
  EXPECT_LE(s.stats.avg_degree.lo, s.stats.avg_degree.mean);
  EXPECT_GE(s.stats.avg_degree.hi, s.stats.avg_degree.mean);
}

TEST(EnsembleAccumulator, StreamedModeRetainsNothingAndThrowsOnRuns) {
  SynthesisConfig cfg;
  cfg.context.num_pops = 8;
  cfg.costs = CostParams{10, 1, 4e-4, 10};
  cfg.ga.population = 12;
  cfg.ga.generations = 6;
  const Synthesizer synth(cfg);

  EnsembleOptions opts;
  opts.count = 6;
  opts.base_seed = 200;
  opts.retain = RetainMode::kStreamed;
  opts.reservoir = 3;
  const EnsembleResult e = generate_ensemble(synth, opts);

  EXPECT_EQ(e.num_runs(), 6u);
  EXPECT_FALSE(e.acc.retains_runs());
  EXPECT_THROW(e.runs(), std::logic_error);
  EXPECT_THROW(e.acc.metrics(), std::logic_error);
  EXPECT_EQ(e.acc.sample().size(), 3u);  // reservoir holds min(cap, count)
  EXPECT_FALSE(e.pairwise_checked);
  EXPECT_TRUE(e.all_distinct);  // hash-based in streamed mode
  for (const SynthesisResult& r : e.acc.sample()) {
    EXPECT_EQ(r.network.topology.num_nodes(), 8u);
  }
}

TEST(EnsembleAccumulator, AutoModeSwitchesAtThreshold) {
  EXPECT_EQ(kRetainAutoThreshold, 1024u);
  // Below/at the threshold kAuto retains (legacy behavior); the streamed
  // switch itself is exercised with explicit kStreamed above — running
  // 1025 syntheses here would be wasteful.
  SynthesisConfig cfg;
  cfg.context.num_pops = 8;
  cfg.costs = CostParams{10, 1, 4e-4, 10};
  cfg.ga.population = 12;
  cfg.ga.generations = 6;
  const EnsembleResult e = generate_ensemble(Synthesizer(cfg), 3, 9);
  EXPECT_TRUE(e.acc.retains_runs());
  EXPECT_TRUE(e.pairwise_checked);
}

// The v6 report block round-trips the aggregates exactly, and timing-free
// serialization keeps them (they are logical content).
TEST(EnsembleAggregatesReport, RoundTripsThroughJson) {
  SynthesisConfig cfg;
  cfg.context.num_pops = 8;
  cfg.costs = CostParams{10, 1, 4e-4, 10};
  cfg.ga.population = 12;
  cfg.ga.generations = 6;
  JsonReportSink sink;
  cfg.observer = &sink;
  const Synthesizer synth(cfg);
  generate_ensemble(synth, 4, /*base_seed=*/77);

  ASSERT_TRUE(sink.report().has_ensemble_aggregates);
  const EnsembleAggregates& a = sink.report().ensemble_aggregates;
  EXPECT_EQ(a.runs, 4u);

  for (const bool timing : {true, false}) {
    const RunReport parsed =
        run_report_from_json(run_report_to_json(sink.report(), timing));
    ASSERT_TRUE(parsed.has_ensemble_aggregates) << "timing=" << timing;
    const EnsembleAggregates& p = parsed.ensemble_aggregates;
    EXPECT_EQ(p.runs, a.runs);
    EXPECT_EQ(p.streamed, a.streamed);
    EXPECT_EQ(p.avg_degree.count, a.avg_degree.count);
    EXPECT_EQ(p.avg_degree.mean, a.avg_degree.mean);
    EXPECT_EQ(p.avg_degree.m2, a.avg_degree.m2);
    EXPECT_EQ(p.best_cost.min, a.best_cost.min);
    EXPECT_EQ(p.best_cost.max, a.best_cost.max);
  }
}

TEST(NormalQuantile, MatchesKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.841344746068543), 1.0, 1e-9);
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace cold
