// Tests for capacity planning (sim/capacity) and k-shortest paths
// (graph/k_shortest).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "graph/k_shortest.h"
#include "sim/capacity.h"
#include "traffic/gravity.h"

namespace cold {
namespace {

Network square_network(double overprovision = 2.0) {
  const std::vector<Point> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const std::vector<double> pops{10, 10, 10, 10};
  return build_network(g, pts, pops, gravity_matrix(pops), overprovision);
}

TEST(Capacity, MultiplierEqualsOverprovision) {
  // Uniform scaling: capacity = O * load on every link, so the max
  // multiplier is exactly O.
  for (double o : {1.0, 1.5, 3.0}) {
    const Network net = square_network(o);
    EXPECT_NEAR(max_traffic_multiplier(net), o, 1e-9);
  }
}

TEST(Capacity, HeadroomSortedWorstFirst) {
  Network net = square_network(2.0);
  net.links[2].capacity *= 0.5;  // tighten one link by hand
  const auto ranking = headroom_ranking(net);
  ASSERT_EQ(ranking.size(), 4u);
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(ranking[i - 1].utilization, ranking[i].utilization);
  }
  EXPECT_EQ(ranking.front().edge, net.links[2].edge);
}

TEST(Capacity, ZeroCapacityLoadedLinkIsInfinitelyConstrained) {
  Network net = square_network(1.0);
  net.links[0].capacity = 0.0;
  const auto ranking = headroom_ranking(net);
  EXPECT_TRUE(std::isinf(ranking.front().utilization));
}

TEST(Capacity, RequiredCapacitiesScaleLinearly) {
  const Network net = square_network(1.0);
  const auto need = required_capacities(net, 3.0, 1.5);
  ASSERT_EQ(need.size(), net.links.size());
  for (std::size_t i = 0; i < need.size(); ++i) {
    EXPECT_NEAR(need[i], 4.5 * net.links[i].load, 1e-9);
  }
  EXPECT_THROW(required_capacities(net, -1.0), std::invalid_argument);
  EXPECT_THROW(required_capacities(net, 1.0, 0.5), std::invalid_argument);
}

// --------------------------------------------------------------------------

Matrix<double> unit_lengths(std::size_t n) {
  Matrix<double> len = Matrix<double>::square(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) len(i, i) = 0.0;
  return len;
}

TEST(KShortest, RingHasExactlyTwoSimplePaths) {
  Topology ring(4);
  ring.add_edge(0, 1);
  ring.add_edge(1, 2);
  ring.add_edge(2, 3);
  ring.add_edge(3, 0);
  const auto paths = k_shortest_paths(ring, unit_lengths(4), 0, 2, 5);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_DOUBLE_EQ(paths[0].length, 2.0);
  EXPECT_DOUBLE_EQ(paths[1].length, 2.0);
  EXPECT_NE(paths[0].nodes, paths[1].nodes);
}

TEST(KShortest, OrderedByLength) {
  // Square plus diagonal: 0-2 direct (1.2), around (2.0 each way).
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  g.add_edge(0, 2);
  Matrix<double> len = unit_lengths(4);
  len(0, 2) = len(2, 0) = 1.2;
  const auto paths = k_shortest_paths(g, len, 0, 2, 3);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_DOUBLE_EQ(paths[0].length, 1.2);
  ASSERT_EQ(paths[0].nodes.size(), 2u);
  EXPECT_DOUBLE_EQ(paths[1].length, 2.0);
  EXPECT_DOUBLE_EQ(paths[2].length, 2.0);
  for (const auto& p : paths) {
    EXPECT_EQ(p.nodes.front(), 0u);
    EXPECT_EQ(p.nodes.back(), 2u);
  }
}

TEST(KShortest, PathsAreSimple) {
  Topology g = Topology::complete(6);
  Matrix<double> len = unit_lengths(6);
  const auto paths = k_shortest_paths(g, len, 0, 5, 10);
  EXPECT_EQ(paths.size(), 10u);
  for (const auto& p : paths) {
    std::set<NodeId> seen(p.nodes.begin(), p.nodes.end());
    EXPECT_EQ(seen.size(), p.nodes.size()) << "loop in path";
  }
  // Lengths non-decreasing.
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].length, paths[i - 1].length - 1e-12);
  }
}

TEST(KShortest, UnreachableAndValidation) {
  Topology g(3);
  g.add_edge(0, 1);
  const auto paths = k_shortest_paths(g, unit_lengths(3), 0, 2, 3);
  EXPECT_TRUE(paths.empty());
  EXPECT_THROW(k_shortest_paths(g, unit_lengths(3), 0, 0, 3),
               std::invalid_argument);
  EXPECT_THROW(k_shortest_paths(g, unit_lengths(3), 0, 2, 0),
               std::invalid_argument);
  EXPECT_THROW(k_shortest_paths(g, unit_lengths(3), 0, 9, 1),
               std::out_of_range);
}

TEST(KShortest, KLargerThanPathCount) {
  Topology path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  const auto paths = k_shortest_paths(path, unit_lengths(3), 0, 2, 10);
  EXPECT_EQ(paths.size(), 1u);  // only one simple path exists
}

TEST(DisjointPair, RingYieldsBothSides) {
  Topology ring(4);
  ring.add_edge(0, 1);
  ring.add_edge(1, 2);
  ring.add_edge(2, 3);
  ring.add_edge(3, 0);
  const auto pair = disjoint_path_pair(ring, unit_lengths(4), 0, 2);
  ASSERT_EQ(pair.size(), 2u);
  // Paths must be link-disjoint.
  std::set<Edge> first_links;
  for (std::size_t i = 0; i + 1 < pair[0].nodes.size(); ++i) {
    first_links.insert(make_edge(pair[0].nodes[i], pair[0].nodes[i + 1]));
  }
  for (std::size_t i = 0; i + 1 < pair[1].nodes.size(); ++i) {
    EXPECT_EQ(first_links.count(make_edge(pair[1].nodes[i],
                                          pair[1].nodes[i + 1])),
              0u);
  }
}

TEST(DisjointPair, TreeHasNoSecondPath) {
  Topology path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  const auto pair = disjoint_path_pair(path, unit_lengths(3), 0, 2);
  EXPECT_EQ(pair.size(), 1u);
}

}  // namespace
}  // namespace cold
