// Tests for the parallel evaluation engine: the thread pool itself,
// Evaluator cloning/stat merging, and the headline guarantee that thread
// count never changes results — only wall-clock.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/context.h"
#include "core/ensemble.h"
#include "core/synthesizer.h"
#include "cost/evaluator.h"
#include "ga/genetic.h"
#include "util/thread_pool.h"

namespace cold {
namespace {

TEST(ParallelConfig, ResolvesThreads) {
  ParallelConfig p;
  EXPECT_GE(p.resolved_threads(), 1u);  // 0 = hardware, at least 1
  p.num_threads = 1;
  EXPECT_EQ(p.resolved_threads(), 1u);
  p.num_threads = 7;
  EXPECT_EQ(p.resolved_threads(), 7u);
}

TEST(ThreadPool, ExecutesEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::vector<int> hits(1000, 0);
    pool.parallel_for(0, hits.size(),
                      [&](std::size_t i, std::size_t) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, SupportsSubranges) {
  ThreadPool pool(4);
  std::vector<int> hits(10, 0);
  pool.parallel_for(3, 7, [&](std::size_t i, std::size_t) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], (i >= 3 && i < 7) ? 1 : 0) << i;
  }
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, WorkerIdsIndexPerThreadScratch) {
  ThreadPool pool(4);
  std::vector<std::size_t> per_worker(pool.size(), 0);
  pool.parallel_for(0, 200, [&](std::size_t, std::size_t w) {
    ASSERT_LT(w, per_worker.size());
    ++per_worker[w];  // safe iff w uniquely identifies the executing thread
  });
  EXPECT_EQ(std::accumulate(per_worker.begin(), per_worker.end(), 0u), 200u);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.parallel_for(0, 20, [&](std::size_t, std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50 * 20);
}

TEST(ThreadPool, PropagatesExceptions) {
  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(0, 100,
                          [&](std::size_t i, std::size_t) {
                            if (i == 17) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // The pool survives a throwing job.
    std::atomic<int> n{0};
    pool.parallel_for(0, 8, [&](std::size_t, std::size_t) { ++n; });
    EXPECT_EQ(n.load(), 8);
  }
}

TEST(ThreadPool, RunTasksBatch) {
  ThreadPool pool(4);
  std::vector<int> done(6, 0);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < done.size(); ++i) {
    tasks.push_back([&done, i] { done[i] = static_cast<int>(i) + 1; });
  }
  pool.run_tasks(tasks);
  for (std::size_t i = 0; i < done.size(); ++i) {
    EXPECT_EQ(done[i], static_cast<int>(i) + 1);
  }
}

Evaluator make_evaluator(std::size_t n, CostParams params,
                         std::uint64_t seed = 1) {
  ContextConfig cfg;
  cfg.num_pops = n;
  Rng rng(seed);
  const Context ctx = generate_context(cfg, rng);
  return Evaluator(ctx.distances, ctx.traffic, params);
}

TEST(EvaluatorClone, SharesContextOwnsScratch) {
  Evaluator eval = make_evaluator(10, CostParams{10, 1, 4e-4, 10});
  Evaluator copy = eval.clone();
  // Shared immutable context: the provider/CSR value copies alias one core
  // (no deep copy of the matrices).
  EXPECT_TRUE(copy.lengths().shares_core_with(eval.lengths()));
  EXPECT_TRUE(copy.traffic().shares_core_with(eval.traffic()));
  // Identical scoring.
  const Topology mesh = Topology::complete(10);
  EXPECT_DOUBLE_EQ(copy.cost(mesh), eval.cost(mesh));
  // Private scratch: the clone's loads are its own object.
  EXPECT_NE(&copy.last_loads(), &eval.last_loads());
}

TEST(EvaluatorClone, CountsMergeExactly) {
  Evaluator eval = make_evaluator(8, CostParams{10, 1, 4e-4, 10});
  const Topology mesh = Topology::complete(8);
  eval.cost(mesh);
  Evaluator a = eval.clone();
  Evaluator b = eval.clone();
  EXPECT_EQ(a.evaluations(), 0u);  // clones start fresh
  a.cost(mesh);
  a.cost(mesh);
  b.cost(mesh);
  EXPECT_EQ(eval.evaluations(), 1u);  // clones count separately
  eval.merge_stats(a);
  eval.merge_stats(b);
  EXPECT_EQ(eval.evaluations(), 4u);
  // Merging is a transfer, not a copy: repeating it adds nothing.
  eval.merge_stats(a);
  EXPECT_EQ(eval.evaluations(), 4u);
  EXPECT_EQ(a.evaluations(), 0u);
}

GaConfig parallel_ga(std::size_t threads) {
  GaConfig cfg;
  cfg.population = 32;
  cfg.generations = 12;
  cfg.parallel.num_threads = threads;
  return cfg;
}

TEST(RunGa, ThreadCountDoesNotChangeResults) {
  const GaResult ref = [&] {
    Evaluator eval = make_evaluator(14, CostParams{10, 1, 4e-4, 10});
    Rng rng(11);
    return run_ga(eval, parallel_ga(1), rng);
  }();
  for (const std::size_t threads : {2u, 8u}) {
    Evaluator eval = make_evaluator(14, CostParams{10, 1, 4e-4, 10});
    Rng rng(11);
    const GaResult r = run_ga(eval, parallel_ga(threads), rng);
    EXPECT_DOUBLE_EQ(r.best_cost, ref.best_cost) << threads;
    EXPECT_TRUE(r.best == ref.best) << threads;
    ASSERT_EQ(r.best_cost_history.size(), ref.best_cost_history.size());
    for (std::size_t g = 0; g < r.best_cost_history.size(); ++g) {
      EXPECT_EQ(r.best_cost_history[g], ref.best_cost_history[g])
          << "thread count " << threads << ", generation " << g;
    }
    ASSERT_EQ(r.final_costs.size(), ref.final_costs.size());
    for (std::size_t i = 0; i < r.final_costs.size(); ++i) {
      EXPECT_EQ(r.final_costs[i], ref.final_costs[i]) << threads;
      EXPECT_TRUE(r.final_population[i] == ref.final_population[i]) << threads;
    }
    // Exact statistics, aggregated across workers after the join.
    EXPECT_EQ(r.evaluations, ref.evaluations) << threads;
    EXPECT_EQ(r.repairs, ref.repairs) << threads;
    EXPECT_EQ(r.links_repaired, ref.links_repaired) << threads;
  }
}

TEST(RunGa, CloneEvaluationsFoldIntoPrimary) {
  // All scoring work done on per-thread clones must be reflected in the
  // caller's Evaluator once run_ga returns.
  for (const std::size_t threads : {1u, 4u}) {
    Evaluator eval = make_evaluator(10, CostParams{10, 1, 4e-4, 10});
    Rng rng(3);
    const GaResult r = run_ga(eval, parallel_ga(threads), rng);
    EXPECT_EQ(eval.evaluations(), r.evaluations) << threads;
  }
}

SynthesisConfig small_synthesis(std::size_t ensemble_threads) {
  SynthesisConfig cfg;
  cfg.context.num_pops = 10;
  cfg.costs = CostParams{10, 1, 4e-4, 10};
  cfg.ga.population = 16;
  cfg.ga.generations = 8;
  cfg.ga.parallel.num_threads = 1;
  cfg.parallel.num_threads = ensemble_threads;
  return cfg;
}

TEST(Ensemble, ThreadCountDoesNotChangeResults) {
  const Synthesizer seq(small_synthesis(1));
  const EnsembleResult ref = generate_ensemble(seq, 6, /*base_seed=*/5);
  for (const std::size_t threads : {3u, 8u}) {
    const Synthesizer par(small_synthesis(threads));
    const EnsembleResult r = generate_ensemble(par, 6, /*base_seed=*/5);
    ASSERT_EQ(r.num_runs(), ref.num_runs());
    for (std::size_t i = 0; i < r.num_runs(); ++i) {
      EXPECT_TRUE(r.runs()[i].network.topology == ref.runs()[i].network.topology)
          << "run " << i << ", " << threads << " threads";
      EXPECT_EQ(r.runs()[i].ga.best_cost, ref.runs()[i].ga.best_cost);
      EXPECT_TRUE(r.runs()[i].network.traffic == ref.runs()[i].network.traffic);
    }
    // Aggregates (incl. bootstrap CIs, drawn sequentially after the join).
    EXPECT_EQ(r.stats.avg_degree.mean, ref.stats.avg_degree.mean);
    EXPECT_EQ(r.stats.avg_degree.lo, ref.stats.avg_degree.lo);
    EXPECT_EQ(r.stats.avg_degree.hi, ref.stats.avg_degree.hi);
    EXPECT_EQ(r.stats.diameter.mean, ref.stats.diameter.mean);
    EXPECT_EQ(r.min_pairwise_edge_difference,
              ref.min_pairwise_edge_difference);
    EXPECT_EQ(r.all_distinct, ref.all_distinct);
  }
}

TEST(Ensemble, SweepMetricsThreadCountInvariant) {
  const Synthesizer seq(small_synthesis(1));
  const auto ref = sweep_metrics(seq, 5, /*base_seed=*/9);
  const Synthesizer par(small_synthesis(4));
  const auto r = sweep_metrics(par, 5, /*base_seed=*/9);
  ASSERT_EQ(r.size(), ref.size());
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i].avg_degree, ref[i].avg_degree) << i;
    EXPECT_EQ(r[i].diameter, ref[i].diameter) << i;
    EXPECT_EQ(r[i].global_clustering, ref[i].global_clustering) << i;
    EXPECT_EQ(r[i].degree_cv, ref[i].degree_cv) << i;
  }
}

TEST(Ensemble, GaLevelParallelismAlsoInvariant) {
  // Single synthesize() call: the GA's own knob active, ensemble knob idle.
  SynthesisConfig cfg = small_synthesis(1);
  cfg.ga.parallel.num_threads = 1;
  const SynthesisResult ref = Synthesizer(cfg).synthesize(42);
  cfg.ga.parallel.num_threads = 6;
  const SynthesisResult r = Synthesizer(cfg).synthesize(42);
  EXPECT_TRUE(r.network.topology == ref.network.topology);
  EXPECT_EQ(r.ga.best_cost, ref.ga.best_cost);
  EXPECT_EQ(r.ga.best_cost_history, ref.ga.best_cost_history);
}

}  // namespace
}  // namespace cold
