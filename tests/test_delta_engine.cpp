// Evaluator-level tests for the delta evaluation engine (cost/delta_state.h
// + the --dsssp path in cost/evaluator.cpp): retained-parent matching,
// bit-identity with full sweeps over GA-like mutation chains, counter
// semantics, clone/merge behaviour, and the cache interaction.
#include "cost/delta_state.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/context.h"
#include "cost/evaluator.h"
#include "ga/genetic.h"
#include "graph/algorithms.h"
#include "util/rng.h"

namespace cold {
namespace {

const CostParams kCosts{10.0, 1.0, 4e-4, 10.0};

Context small_context(std::size_t n, std::uint64_t seed) {
  ContextConfig cfg;
  cfg.num_pops = n;
  Rng rng(seed);
  return generate_context(cfg, rng);
}

EvalEngineConfig delta_on() {
  EvalEngineConfig engine;
  engine.delta.mode = DsspMode::kOn;
  return engine;
}

/// Flips one random non-self edge of `g`, returning the flipped edge.
Edge flip_random_edge(Topology& g, Rng& rng) {
  const std::size_t n = g.num_nodes();
  while (true) {
    const NodeId a = rng.uniform_index(n);
    const NodeId b = rng.uniform_index(n);
    if (a == b) continue;
    g.set_edge(a, b, !g.has_edge(a, b));
    return make_edge(a, b);
  }
}

// The engine's contract: along a chain of small mutations — exactly the
// shape GA variation produces — hinted delta evaluation returns the same
// breakdown, bit for bit, as an engine-free evaluator.
TEST(DeltaEngine, BitIdenticalToFullSweepsOverMutationChain) {
  const Context ctx = small_context(14, 1);
  Evaluator delta(ctx.distances, ctx.traffic, kCosts, delta_on());
  Evaluator plain(ctx.distances, ctx.traffic, kCosts);

  Rng rng(2);
  Topology g = Topology::complete(14);
  ASSERT_EQ(delta.cost(g), plain.cost(g));  // first eval: fallback, retained
  for (int step = 0; step < 60; ++step) {
    const std::uint64_t parent_fp = g.fingerprint();
    flip_random_edge(g, rng);
    if (step % 2 == 0) flip_random_edge(g, rng);  // crossover-sized diffs too
    delta.set_parent_hint(parent_fp);
    const CostBreakdown want = plain.breakdown(g);
    const CostBreakdown got = delta.breakdown(g);
    ASSERT_EQ(got.feasible, want.feasible);
    ASSERT_EQ(got.total(), want.total());  // exact, no tolerance
    ASSERT_EQ(got.existence, want.existence);
    ASSERT_EQ(got.bandwidth, want.bandwidth);
  }
  // The chain stays within max_diff_edges of the previous topology, so
  // nearly every evaluation must be served incrementally.
  EXPECT_GT(delta.delta_stats().hits, 40u);
  EXPECT_GT(delta.delta_stats().vertices_resettled, 0u);
  EXPECT_EQ(delta.delta_stats().hits + delta.delta_stats().fallbacks,
            delta.evaluations());
}

TEST(DeltaEngine, FirstEvaluationFallsBackThenChildHits) {
  const Context ctx = small_context(10, 3);
  Evaluator eval(ctx.distances, ctx.traffic, kCosts, delta_on());
  Topology g = Topology::complete(10);
  eval.cost(g);  // nothing retained yet
  EXPECT_EQ(eval.delta_stats().fallbacks, 1u);
  EXPECT_EQ(eval.delta_stats().hits, 0u);
  ASSERT_NE(eval.delta_store(), nullptr);
  EXPECT_EQ(eval.delta_store()->size(), 1u);

  const std::uint64_t parent_fp = g.fingerprint();
  g.remove_edge(0, 1);
  eval.set_parent_hint(parent_fp);
  eval.cost(g);
  EXPECT_EQ(eval.delta_stats().hits, 1u);
  EXPECT_EQ(eval.delta_stats().fallbacks, 1u);
  EXPECT_EQ(eval.delta_store()->size(), 2u);
}

TEST(DeltaEngine, MissingOrWrongHintIsHarmless) {
  const Context ctx = small_context(10, 4);
  Evaluator eval(ctx.distances, ctx.traffic, kCosts, delta_on());
  Evaluator plain(ctx.distances, ctx.traffic, kCosts);
  Topology g = Topology::complete(10);
  eval.cost(g);

  // No hint: the MRU probe still finds the parent.
  g.remove_edge(2, 3);
  EXPECT_EQ(eval.cost(g), plain.cost(g));
  EXPECT_EQ(eval.delta_stats().hits, 1u);

  // A bogus hint matches no slot; the probe falls through to MRU order and
  // the result is still exact.
  g.remove_edge(4, 5);
  eval.set_parent_hint(0xdeadbeefdeadbeefULL);
  EXPECT_EQ(eval.cost(g), plain.cost(g));
  EXPECT_EQ(eval.delta_stats().hits, 2u);
}

TEST(DeltaEngine, InfeasibleResultsAreNeverRetained) {
  const Context ctx = small_context(8, 5);
  Evaluator eval(ctx.distances, ctx.traffic, kCosts, delta_on());
  const Topology disconnected = Topology::from_edges(8, {{0, 1}, {2, 3}});
  EXPECT_FALSE(eval.breakdown(disconnected).feasible);
  ASSERT_NE(eval.delta_store(), nullptr);
  EXPECT_EQ(eval.delta_store()->size(), 0u);  // slot stayed free

  // A feasible parent, then a child mutation that disconnects the graph:
  // the hit path must also refuse to retain the infeasible child.
  Topology ring = Topology::from_edges(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}});
  ASSERT_TRUE(eval.breakdown(ring).feasible);
  EXPECT_EQ(eval.delta_store()->size(), 1u);
  const std::uint64_t parent_fp = ring.fingerprint();
  ring.remove_edge(0, 1);  // breaks the cycle into a path: still connected
  ring.remove_edge(4, 5);  // now two components
  eval.set_parent_hint(parent_fp);
  EXPECT_FALSE(eval.breakdown(ring).feasible);
  EXPECT_EQ(eval.delta_store()->size(), 1u);
}

TEST(DeltaEngine, CloneOwnsPrivateStoreAndMergeFoldsStats) {
  const Context ctx = small_context(10, 6);
  Evaluator eval(ctx.distances, ctx.traffic, kCosts, delta_on());
  Topology g = Topology::complete(10);
  eval.cost(g);

  Evaluator worker = eval.clone();
  ASSERT_NE(worker.delta_store(), nullptr);
  EXPECT_NE(worker.delta_store(), eval.delta_store());
  EXPECT_EQ(worker.delta_store()->size(), 0u);  // retained states not copied
  EXPECT_EQ(worker.delta_stats(), DeltaStats{});

  worker.cost(g);  // fallback in the worker (its store is empty)
  g.remove_edge(0, 1);
  worker.set_parent_hint(Topology::complete(10).fingerprint());
  worker.cost(g);  // hit against the worker's own retained state
  EXPECT_EQ(worker.delta_stats().fallbacks, 1u);
  EXPECT_EQ(worker.delta_stats().hits, 1u);

  eval.merge_stats(worker);
  EXPECT_EQ(eval.delta_stats().fallbacks, 2u);
  EXPECT_EQ(eval.delta_stats().hits, 1u);
  EXPECT_GT(eval.delta_stats().vertices_resettled, 0u);
  // Transfer semantics, like the cache counters: merging twice is safe.
  EXPECT_EQ(worker.delta_stats(), DeltaStats{});
  eval.merge_stats(worker);
  EXPECT_EQ(eval.delta_stats().fallbacks, 2u);
}

TEST(DeltaEngine, CacheHitKeepsRetainedStateWarm) {
  // With the memo cache in front, repeat evaluations skip routing — but
  // they must re-stamp the retained state so it is not the LRU victim when
  // the ring wraps (touch-on-cache-hit).
  const Context ctx = small_context(10, 7);
  EvalEngineConfig engine = delta_on();
  engine.cache.enabled = true;
  engine.delta.retained_states = 2;  // clamp floor: exactly two slots
  Evaluator eval(ctx.distances, ctx.traffic, kCosts, engine);
  Evaluator plain(ctx.distances, ctx.traffic, kCosts);

  Topology parent = Topology::complete(10);
  eval.cost(parent);                 // retained in slot A
  Topology other = parent;
  other.remove_edge(5, 6);
  eval.cost(other);                  // retained in slot B
  eval.cost(parent);                 // cache hit: routing skipped, A touched
  EXPECT_EQ(eval.cache_stats().hits, 1u);

  Topology third = parent;
  third.remove_edge(7, 8);
  eval.cost(third);  // evicts B (LRU), not the freshly-touched A

  Topology child = parent;
  child.remove_edge(0, 1);
  eval.set_parent_hint(parent.fingerprint());
  const std::uint64_t hits_before = eval.delta_stats().hits;
  EXPECT_EQ(eval.cost(child), plain.cost(child));
  EXPECT_EQ(eval.delta_stats().hits, hits_before + 1);
}

TEST(DeltaEngine, AutoModeFollowsNodeThreshold) {
  DeltaConfig cfg;
  cfg.mode = DsspMode::kAuto;
  EXPECT_FALSE(cfg.enabled(cfg.auto_threshold - 1));
  EXPECT_TRUE(cfg.enabled(cfg.auto_threshold));

  EvalEngineConfig engine;
  engine.delta.mode = DsspMode::kAuto;
  const Context below = small_context(engine.delta.auto_threshold - 1, 8);
  const Context above = small_context(engine.delta.auto_threshold, 8);
  Evaluator small(below.distances, below.traffic, kCosts, engine);
  Evaluator large(above.distances, above.traffic, kCosts, engine);
  EXPECT_EQ(small.delta_store(), nullptr);
  EXPECT_NE(large.delta_store(), nullptr);
}

TEST(RoutingStateStore, HintedSlotIsProbedFirst) {
  RoutingStateStore store(8);
  std::vector<Topology> parents;
  for (NodeId v = 1; v <= 6; ++v) {
    Topology g = Topology::complete(8);
    g.remove_edge(0, v);
    RoutingState& slot = store.begin_fill(nullptr);
    slot.topology = g;
    store.commit(slot, g);
    parents.push_back(g);
  }
  // The oldest parent is beyond the kMaxProbes MRU window, so only the
  // hint can reach it.
  Topology child = parents.front();
  child.remove_edge(1, 2);
  std::vector<Edge> added, removed;
  RoutingState* m = store.match(child, parents.front().fingerprint(),
                                /*max_diff=*/4, added, removed);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->fingerprint, parents.front().fingerprint());
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(added.size(), 0u);
}

TEST(RoutingStateStore, MatchRespectsDiffBoundAndBeginFillSparesParent) {
  RoutingStateStore store(2);
  Topology parent = Topology::complete(6);
  RoutingState& slot = store.begin_fill(nullptr);
  slot.topology = parent;
  store.commit(slot, parent);

  Topology far = Topology::from_edges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4},
                                          {4, 5}});
  std::vector<Edge> added, removed;
  EXPECT_EQ(store.match(far, 0, /*max_diff=*/2, added, removed), nullptr);

  Topology child = parent;
  child.remove_edge(0, 1);
  RoutingState* m = store.match(child, 0, 2, added, removed);
  ASSERT_NE(m, nullptr);
  // While the parent is being read, begin_fill must pick the other slot
  // even though the parent might be the LRU one.
  RoutingState& fill = store.begin_fill(m);
  EXPECT_NE(&fill, m);
}

}  // namespace
}  // namespace cold
