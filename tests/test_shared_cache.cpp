// Tests for the shared cross-worker cost cache and the engine-wide
// determinism contract it must uphold.
//
// Three layers:
//   1. SharedCostCache unit behavior (verified hits, collision rejection,
//      LRU eviction, counter conservation).
//   2. A multi-threaded stress test hammering colliding shards — meant to
//      run under TSan as well as the regular suites.
//   3. The engine's headline property: GA trajectories, best-cost
//      histories, and timing-free telemetry (canonical traces + JSON
//      reports) are byte-identical across {no cache, private cache, shared
//      cache} x {dedup on/off} x {1, 2, 4, 8 threads}.
#include "cost/shared_cost_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/context.h"
#include "core/synthesizer.h"
#include "cost/cost_cache.h"
#include "cost/evaluator.h"
#include "telemetry/report.h"
#include "telemetry/sinks.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"

namespace cold {
namespace {

CostBreakdown feasible_breakdown(double existence) {
  CostBreakdown b;
  b.feasible = true;
  b.existence = existence;
  return b;
}

const CostParams kCosts{10.0, 1.0, 4e-4, 10.0};

// ---------------------------------------------------------------------------
// SharedCostCache unit behavior.
// ---------------------------------------------------------------------------

TEST(SharedCostCache, MissThenVerifiedHit) {
  SharedCostCache cache(EvalCacheConfig{true, 256, true});
  const Topology g = Topology::from_edges(4, {{0, 1}, {1, 2}});
  CostBreakdown out;
  EXPECT_FALSE(cache.find(g, out));
  cache.insert(g, feasible_breakdown(20.0));
  ASSERT_TRUE(cache.find(g, out));
  EXPECT_TRUE(out.feasible);
  EXPECT_DOUBLE_EQ(out.existence, 20.0);
  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SharedCostCache, VerificationRejectsEqualFingerprintDifferentGraph) {
  // Same edge set on different node counts XORs to the same fingerprint;
  // full verification must still reject the lookup.
  SharedCostCache cache(EvalCacheConfig{true, 256, true});
  const Topology a = Topology::from_edges(4, {{0, 1}});
  const Topology b = Topology::from_edges(5, {{0, 1}});
  ASSERT_EQ(a.fingerprint(), b.fingerprint());
  cache.insert(a, feasible_breakdown(1.0));
  CostBreakdown out;
  EXPECT_FALSE(cache.find(b, out));
  ASSERT_TRUE(cache.find(a, out));
  EXPECT_DOUBLE_EQ(out.existence, 1.0);
}

TEST(SharedCostCache, OverwritesInPlace) {
  SharedCostCache cache(EvalCacheConfig{true, 256, true});
  const Topology g = Topology::from_edges(3, {{0, 1}});
  cache.insert(g, feasible_breakdown(1.0));
  cache.insert(g, feasible_breakdown(2.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().inserts, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  CostBreakdown out;
  ASSERT_TRUE(cache.find(g, out));
  EXPECT_DOUBLE_EQ(out.existence, 2.0);
}

TEST(SharedCostCache, EvictionKeepsConservationInvariants) {
  // The minimum geometry is 64 shards x 1 set x 4 ways = 256 entries;
  // inserting every single-edge topology of K_70 (2415 distinct graphs)
  // must evict, stay within capacity, and keep size == inserts - evictions
  // (all graphs distinct, so no overwrites).
  SharedCostCache cache(EvalCacheConfig{true, 64, true});
  ASSERT_EQ(cache.capacity(), 256u);
  std::size_t inserted = 0;
  for (NodeId u = 0; u < 70; ++u) {
    for (NodeId v = u + 1; v < 70; ++v) {
      cache.insert(Topology::from_edges(70, {{u, v}}),
                   feasible_breakdown(static_cast<double>(inserted)));
      ++inserted;
    }
  }
  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.inserts, inserted);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_EQ(cache.size(), stats.inserts - stats.evictions);
}

// ---------------------------------------------------------------------------
// Concurrency stress — run under TSan in CI.
// ---------------------------------------------------------------------------

TEST(SharedCostCacheStress, EightThreadsOnCollidingShards) {
  // Small capacity forces constant eviction churn: 512 distinct topologies
  // compete for 256 ways. Each topology's identity is encoded in its stored
  // breakdown, so any cross-entry corruption (a hit returning another
  // graph's value) is detected exactly.
  SharedCostCache cache(EvalCacheConfig{true, 64, true});
  constexpr std::size_t kGraphs = 512;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 10'000;

  std::vector<Topology> graphs;
  graphs.reserve(kGraphs);
  for (std::size_t i = 0; i < kGraphs; ++i) {
    const NodeId u = static_cast<NodeId>(i / 32);
    const NodeId v = static_cast<NodeId>(32 + i % 32);
    graphs.push_back(Topology::from_edges(64, {{u, v}}));
  }

  std::atomic<std::size_t> finds{0};
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      std::size_t local_finds = 0;
      for (std::size_t op = 0; op < kOpsPerThread; ++op) {
        const std::size_t i = rng.uniform_index(kGraphs);
        CostBreakdown out;
        ++local_finds;
        if (cache.find(graphs[i], out)) {
          if (out.existence != static_cast<double>(i)) ++mismatches;
        } else {
          cache.insert(graphs[i], feasible_breakdown(static_cast<double>(i)));
        }
        if (op % 1024 == 0) {
          (void)cache.stats();  // aggregate reads race-free mid-churn
          (void)cache.size();
        }
      }
      finds += local_finds;
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0u);
  const EvalCacheStats stats = cache.stats();
  // Per-shard counters are updated under the shard lock, so conservation is
  // exact even under maximal interleaving.
  EXPECT_EQ(stats.hits + stats.misses, finds.load());
  EXPECT_EQ(stats.inserts, stats.misses);  // every miss inserted exactly once
  EXPECT_LE(stats.evictions, stats.inserts);
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);  // churn actually happened
}

// ---------------------------------------------------------------------------
// Evaluator integration: clones share one cache.
// ---------------------------------------------------------------------------

Context small_context(std::size_t n, std::uint64_t seed) {
  ContextConfig cfg;
  cfg.num_pops = n;
  Rng rng(seed);
  return generate_context(cfg, rng);
}

TEST(SharedEvaluatorCache, CloneHitsOnPrimaryInsert) {
  const Context ctx = small_context(8, 5);
  EvalEngineConfig engine;
  engine.cache.enabled = true;
  engine.cache.shared = true;
  Evaluator eval(ctx.distances, ctx.traffic, kCosts, engine);
  ASSERT_NE(eval.shared_cache(), nullptr);
  const Topology g = Topology::complete(8);

  eval.cost(g);  // miss; fills the shared cache
  Evaluator worker = eval.clone();
  EXPECT_EQ(worker.shared_cache(), eval.shared_cache());
  worker.cost(g);  // cross-instance hit — impossible with private caches
  EXPECT_EQ(worker.cache_stats().hits, 1u);
  EXPECT_EQ(worker.cache_stats().misses, 0u);

  eval.merge_stats(worker);
  const EvalCacheStats stats = eval.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.hits + stats.misses, eval.evaluations());
}

TEST(SharedEvaluatorCache, SharedResultsAreBitIdentical) {
  const Context ctx = small_context(10, 6);
  EvalEngineConfig engine;
  engine.cache.enabled = true;
  engine.cache.shared = true;
  Evaluator shared_a(ctx.distances, ctx.traffic, kCosts, engine);
  Evaluator shared_b = shared_a.clone();
  Evaluator plain(ctx.distances, ctx.traffic, kCosts);

  Rng rng(3);
  Topology g = Topology::complete(10);
  for (int step = 0; step < 40; ++step) {
    const NodeId u = rng.uniform_index(10);
    const NodeId v = (u + 1 + rng.uniform_index(9)) % 10;
    g.set_edge(u, v, !g.has_edge(u, v));
    const CostBreakdown want = plain.breakdown(g);
    // Alternate which instance evaluates first: whoever comes second should
    // often hit the shared entry, and must match exactly either way.
    Evaluator& first = (step % 2 == 0) ? shared_a : shared_b;
    Evaluator& second = (step % 2 == 0) ? shared_b : shared_a;
    ASSERT_EQ(first.breakdown(g).total(), want.total());
    ASSERT_EQ(second.breakdown(g).total(), want.total());
    ASSERT_EQ(second.breakdown(g).existence, want.existence);
    ASSERT_EQ(second.breakdown(g).bandwidth, want.bandwidth);
  }
  shared_a.merge_stats(shared_b);
  const EvalCacheStats stats = shared_a.cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.hits + stats.misses, shared_a.evaluations());
}

// ---------------------------------------------------------------------------
// The headline property: engine configuration is invisible in timing-free
// telemetry and in the optimization trajectory.
// ---------------------------------------------------------------------------

struct ComboOutput {
  std::string trace;
  std::string report;
  std::vector<double> history;
  double best_cost = 0.0;
  std::size_t evaluations = 0;
};

ComboOutput run_combo(std::size_t pops, std::uint64_t seed, int cache_mode,
                      bool dedup, std::size_t threads, bool heuristics) {
  SynthesisConfig cfg;
  cfg.context.num_pops = pops;
  cfg.seed_with_heuristics = heuristics;
  cfg.ga.population = 10;
  cfg.ga.generations = 3;
  cfg.ga.dedup = dedup;
  cfg.ga.parallel.num_threads = threads;
  cfg.engine.cache.enabled = cache_mode != 0;
  cfg.engine.cache.shared = cache_mode == 2;

  TraceSink trace;
  JsonReportSink report;
  MultiObserver multi;
  multi.add(&trace);
  multi.add(&report);
  cfg.observer = &multi;

  const SynthesisResult r = Synthesizer(cfg).synthesize(seed);
  ComboOutput out;
  out.trace = trace.canonical(/*include_timing=*/false);
  out.report = run_report_to_json(report.report(), /*include_timing=*/false);
  out.history = r.ga.best_cost_history;
  out.best_cost = r.ga.best_cost;
  out.evaluations = r.ga.evaluations;
  return out;
}

TEST(EngineDeterminism, TracesInvariantAcrossCacheDedupAndThreads) {
  // >= 50 random trials; each runs all 24 engine combinations and demands
  // byte-identical timing-free telemetry. Most trials skip heuristic
  // seeding to keep the suite fast; a handful keep it on so the heuristics
  // phase is covered too.
  constexpr int kTrials = 55;
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::size_t pops = 8 + trial % 5;
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(trial);
    const bool heuristics = trial >= kTrials - 5;

    const ComboOutput reference =
        run_combo(pops, seed, /*cache_mode=*/0, /*dedup=*/false,
                  /*threads=*/1, heuristics);
    ASSERT_FALSE(reference.trace.empty());
    for (const int cache_mode : {0, 1, 2}) {
      for (const bool dedup : {false, true}) {
        for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
          if (cache_mode == 0 && !dedup && threads == 1) continue;
          const ComboOutput got =
              run_combo(pops, seed, cache_mode, dedup, threads, heuristics);
          const std::string label =
              "trial=" + std::to_string(trial) +
              " cache=" + std::to_string(cache_mode) +
              " dedup=" + std::to_string(dedup) +
              " threads=" + std::to_string(threads);
          ASSERT_EQ(got.trace, reference.trace) << label;
          ASSERT_EQ(got.report, reference.report) << label;
          ASSERT_EQ(got.history, reference.history) << label;
          ASSERT_EQ(got.best_cost, reference.best_cost) << label;
          ASSERT_EQ(got.evaluations, reference.evaluations) << label;
        }
      }
    }
  }
}

}  // namespace
}  // namespace cold
