#include "abc/abc.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cold {
namespace {

AbcConfig fast_abc(std::size_t draws = 30, double epsilon = 0.5) {
  AbcConfig cfg;
  cfg.num_draws = draws;
  cfg.epsilon = epsilon;
  cfg.ga.population = 16;
  cfg.ga.generations = 10;
  return cfg;
}

TEST(AbcSummary, DistanceIsMetricLike) {
  AbcSummary a{2.5, 5.0, 0.1, 1.0};
  AbcSummary b{2.5, 5.0, 0.1, 1.0};
  EXPECT_DOUBLE_EQ(abc_distance(a, b), 0.0);
  AbcSummary c{3.5, 5.0, 0.1, 1.0};
  EXPECT_GT(abc_distance(a, c), 0.0);
  EXPECT_DOUBLE_EQ(abc_distance(a, c), abc_distance(c, a));
}

TEST(AbcSummary, OfMetrics) {
  const TopologyMetrics m = compute_metrics(Topology::star(10, 0));
  const AbcSummary s = AbcSummary::of(m);
  EXPECT_DOUBLE_EQ(s.avg_degree, m.avg_degree);
  EXPECT_DOUBLE_EQ(s.diameter, 2.0);
}

TEST(AbcEstimate, RunsAndRecordsAllDraws) {
  const Topology target = Topology::star(10, 0);
  const AbcResult r = abc_estimate(target, fast_abc(10), 1);
  EXPECT_EQ(r.draws.size(), 10u);
  for (const AbcDraw& d : r.draws) {
    EXPECT_GE(d.distance, 0.0);
    EXPECT_DOUBLE_EQ(d.params.k1, 1.0);
    EXPECT_GT(d.params.k0, 0.0);
  }
  EXPECT_EQ(r.accepted.size(),
            static_cast<std::size_t>(
                std::lround(r.acceptance_rate * r.draws.size())));
}

TEST(AbcEstimate, DeterministicGivenSeed) {
  const Topology target = Topology::star(8, 0);
  const AbcResult a = abc_estimate(target, fast_abc(6), 7);
  const AbcResult b = abc_estimate(target, fast_abc(6), 7);
  ASSERT_EQ(a.draws.size(), b.draws.size());
  for (std::size_t i = 0; i < a.draws.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.draws[i].distance, b.draws[i].distance);
    EXPECT_DOUBLE_EQ(a.draws[i].params.k2, b.draws[i].params.k2);
  }
}

TEST(AbcEstimate, AcceptedDrawsAreWithinEpsilon) {
  const Topology target = Topology::star(10, 0);
  const AbcConfig cfg = fast_abc(25, 0.8);
  const AbcResult r = abc_estimate(target, cfg, 2);
  for (const AbcDraw& d : r.accepted) {
    EXPECT_LE(d.distance, cfg.epsilon);
    EXPECT_TRUE(d.accepted);
  }
}

TEST(AbcEstimate, HubbyTargetFavoursHighK3) {
  // A pure star (CVND > 2) should only be matched by draws with a
  // substantial hub cost; the accepted k3 should exceed the prior median.
  const Topology target = Topology::star(12, 0);
  AbcConfig cfg = fast_abc(60, 0.6);
  const AbcResult r = abc_estimate(target, cfg, 3);
  if (!r.accepted.empty()) {
    double log_k3 = 0.0;
    for (const AbcDraw& d : r.accepted) {
      log_k3 += std::log(std::max(d.params.k3, cfg.prior.k3_floor));
    }
    log_k3 /= static_cast<double>(r.accepted.size());
    const double prior_median = std::sqrt(cfg.prior.k3_lo * cfg.prior.k3_hi);
    EXPECT_GT(std::exp(log_k3), prior_median);
    EXPECT_GT(r.posterior_mean.k3, 0.0);
  } else {
    GTEST_SKIP() << "no accepted draws at this budget";
  }
}

TEST(AbcEstimate, Validates) {
  EXPECT_THROW(abc_estimate(Topology(2), fast_abc(), 1),
               std::invalid_argument);
  AbcConfig zero = fast_abc();
  zero.num_draws = 0;
  EXPECT_THROW(abc_estimate(Topology::star(8, 0), zero, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace cold
