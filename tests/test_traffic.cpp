#include <gtest/gtest.h>

#include <cmath>

#include "traffic/gravity.h"
#include "traffic/population.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cold {
namespace {

TEST(ExponentialPopulation, MeanAndPositivity) {
  Rng rng(1);
  const auto pops = ExponentialPopulation(30.0).sample(20000, rng);
  for (double p : pops) EXPECT_GT(p, 0.0);
  EXPECT_NEAR(summarize(pops).mean, 30.0, 1.0);
  EXPECT_THROW(ExponentialPopulation(0.0), std::invalid_argument);
}

TEST(ParetoPopulation, HeavierTailThanExponential) {
  Rng rng_a(2), rng_b(2);
  const auto exp_pops = ExponentialPopulation(30.0).sample(20000, rng_a);
  const auto par_pops = ParetoPopulation(10.0 / 9.0, 30.0).sample(20000, rng_b);
  // Compare 99.9th percentile: the alpha = 10/9 Pareto dwarfs exponential.
  EXPECT_GT(quantile(par_pops, 0.999), 2.0 * quantile(exp_pops, 0.999));
}

TEST(ParetoPopulation, Alpha15MeanApproximatelyCorrect) {
  Rng rng(3);
  const auto pops = ParetoPopulation(1.5, 30.0).sample(300000, rng);
  EXPECT_NEAR(summarize(pops).mean, 30.0, 4.0);
  EXPECT_THROW(ParetoPopulation(0.9, 30.0), std::invalid_argument);
}

TEST(UniformPopulation, Constant) {
  Rng rng(4);
  const auto pops = UniformPopulation(5.0).sample(10, rng);
  for (double p : pops) EXPECT_DOUBLE_EQ(p, 5.0);
  EXPECT_THROW(UniformPopulation(-1.0), std::invalid_argument);
}

TEST(GravityMatrix, ProductForm) {
  const TrafficMatrix tm = gravity_matrix({2.0, 3.0, 5.0});
  EXPECT_DOUBLE_EQ(tm(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(tm(0, 2), 10.0);
  EXPECT_DOUBLE_EQ(tm(1, 2), 15.0);
  EXPECT_DOUBLE_EQ(tm(1, 0), tm(0, 1));
  EXPECT_DOUBLE_EQ(tm(1, 1), 0.0);
}

TEST(GravityMatrix, ScaleApplies) {
  GravityOptions opt;
  opt.scale = 0.5;
  const TrafficMatrix tm = gravity_matrix({2.0, 4.0}, opt);
  EXPECT_DOUBLE_EQ(tm(0, 1), 4.0);
}

TEST(GravityMatrix, NormalizeTotal) {
  GravityOptions opt;
  opt.normalize_total = 100.0;
  const TrafficMatrix tm = gravity_matrix({1.0, 2.0, 3.0}, opt);
  EXPECT_NEAR(total_traffic(tm), 100.0, 1e-9);
}

TEST(GravityMatrix, RejectsNonPositivePopulations) {
  EXPECT_THROW(gravity_matrix({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(gravity_matrix({1.0, -2.0}), std::invalid_argument);
}

TEST(GravityMatrix, RowSumsProportionalToPopulation) {
  // Gravity model: PoP i's total traffic = p_i * (sum_j p_j - p_i) * scale.
  const std::vector<double> pops{1.0, 2.0, 3.0, 4.0};
  const TrafficMatrix tm = gravity_matrix(pops);
  const auto per_pop = traffic_per_pop(tm);
  const double total = 10.0;
  for (std::size_t i = 0; i < pops.size(); ++i) {
    EXPECT_NEAR(per_pop[i], pops[i] * (total - pops[i]), 1e-9);
  }
}

TEST(ValidateTrafficMatrix, CatchesViolations) {
  TrafficMatrix ok = gravity_matrix({1.0, 2.0});
  EXPECT_NO_THROW(validate_traffic_matrix(ok));

  TrafficMatrix diag = ok;
  diag(0, 0) = 1.0;
  EXPECT_THROW(validate_traffic_matrix(diag), std::invalid_argument);

  TrafficMatrix asym = ok;
  asym(0, 1) += 1.0;
  EXPECT_THROW(validate_traffic_matrix(asym), std::invalid_argument);

  TrafficMatrix neg = ok;
  neg(0, 1) = neg(1, 0) = -1.0;
  EXPECT_THROW(validate_traffic_matrix(neg), std::invalid_argument);

  TrafficMatrix rect(2, 3, 0.0);
  EXPECT_THROW(validate_traffic_matrix(rect), std::invalid_argument);
}

TEST(TotalTraffic, SumsOrderedPairs) {
  const TrafficMatrix tm = gravity_matrix({1.0, 2.0, 3.0});
  // Unordered products: 2 + 3 + 6 = 11; ordered doubles it.
  EXPECT_DOUBLE_EQ(total_traffic(tm), 22.0);
}

}  // namespace
}  // namespace cold
