#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include "geom/distance.h"
#include "geom/point_process.h"
#include "util/rng.h"

namespace cold {
namespace {

Topology path_graph(std::size_t n) {
  Topology g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(ConnectedComponents, LabelsComponents) {
  Topology g(5);
  g.add_edge(0, 1);
  g.add_edge(3, 4);
  const auto labels = connected_components(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(num_components(g), 3u);
}

TEST(ConnectedComponents, EmptyAndSingle) {
  EXPECT_EQ(num_components(Topology(0)), 0u);
  EXPECT_EQ(num_components(Topology(1)), 1u);
  EXPECT_TRUE(is_connected(Topology(1)));
  EXPECT_TRUE(is_connected(Topology(0)));
}

TEST(IsConnected, DetectsConnectivity) {
  EXPECT_TRUE(is_connected(path_graph(6)));
  EXPECT_TRUE(is_connected(Topology::complete(4)));
  Topology g = path_graph(6);
  g.remove_edge(2, 3);
  EXPECT_FALSE(is_connected(g));
}

TEST(Mst, TreeOnCollinearPoints) {
  // Points on a line: MST must be the path in coordinate order.
  const std::vector<Point> pts{{0, 0}, {1, 0}, {2, 0}, {3.5, 0}};
  const Topology mst = minimum_spanning_tree(distance_matrix(pts));
  EXPECT_EQ(mst.num_edges(), 3u);
  EXPECT_TRUE(mst.has_edge(0, 1));
  EXPECT_TRUE(mst.has_edge(1, 2));
  EXPECT_TRUE(mst.has_edge(2, 3));
}

TEST(Mst, AlwaysSpanningTree) {
  Rng rng(1);
  const auto pts = UniformProcess().sample(40, Rectangle(), rng);
  const Topology mst = minimum_spanning_tree(distance_matrix(pts));
  EXPECT_EQ(mst.num_edges(), 39u);
  EXPECT_TRUE(is_connected(mst));
}

TEST(Mst, MatchesKruskalTotalWeight) {
  Rng rng(2);
  const auto pts = UniformProcess().sample(25, Rectangle(), rng);
  const auto d = distance_matrix(pts);
  const Topology prim = minimum_spanning_tree(d);
  const auto kruskal = minimum_spanning_forest(Topology::complete(25), d);
  double w_prim = 0.0, w_kruskal = 0.0;
  for (const Edge& e : prim.edges()) w_prim += d(e.u, e.v);
  for (const Edge& e : kruskal) w_kruskal += d(e.u, e.v);
  EXPECT_NEAR(w_prim, w_kruskal, 1e-9);
}

TEST(Mst, SingleNodeAndValidation) {
  EXPECT_EQ(minimum_spanning_tree(Matrix<double>::square(1)).num_edges(), 0u);
  EXPECT_THROW(minimum_spanning_tree(Matrix<double>()), std::invalid_argument);
}

TEST(MinimumSpanningForest, RespectsGraphEdges) {
  // Two components: forest has one tree per component.
  Topology g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  Matrix<double> w = Matrix<double>::square(5, 1.0);
  w(0, 2) = 5.0;
  w(2, 0) = 5.0;
  const auto forest = minimum_spanning_forest(g, w);
  EXPECT_EQ(forest.size(), 3u);  // 2 + 1 edges
  for (const Edge& e : forest) EXPECT_FALSE(e.u == 0 && e.v == 2);
}

TEST(ConnectComponents, RepairsWithShortestLinks) {
  // Two clusters far apart; the repair should use the closest pair (2,3).
  const std::vector<Point> pts{{0, 0}, {0, 1}, {0, 2}, {9.5, 2}, {10, 1}};
  Topology g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const std::size_t added = connect_components(g, distance_matrix(pts));
  EXPECT_EQ(added, 1u);
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_TRUE(is_connected(g));
}

TEST(ConnectComponents, NoOpWhenConnected) {
  Topology g = path_graph(4);
  const auto d = Matrix<double>::square(4, 1.0);
  EXPECT_EQ(connect_components(g, d), 0u);
}

TEST(ConnectComponents, HandlesAllIsolatedNodes) {
  Rng rng(3);
  const auto pts = UniformProcess().sample(12, Rectangle(), rng);
  Topology g(12);
  const std::size_t added = connect_components(g, distance_matrix(pts));
  EXPECT_EQ(added, 11u);
  EXPECT_TRUE(is_connected(g));
}

TEST(ConnectComponents, UsesMstOverComponents) {
  // Three singleton components on a line: repair should chain them, not star.
  const std::vector<Point> pts{{0, 0}, {1, 0}, {2, 0}};
  Topology g(3);
  connect_components(g, distance_matrix(pts));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(BfsHops, DistancesAndUnreachable) {
  Topology g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto h = bfs_hops(g, 0);
  EXPECT_EQ(h[0], 0);
  EXPECT_EQ(h[1], 1);
  EXPECT_EQ(h[2], 2);
  EXPECT_EQ(h[3], -1);
  EXPECT_THROW(bfs_hops(g, 7), std::out_of_range);
}

TEST(UnionFind, MergesAndCounts) {
  UnionFind uf(4);
  EXPECT_EQ(uf.num_sets(), 4u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.num_sets(), 2u);
  EXPECT_EQ(uf.find(0), uf.find(1));
  EXPECT_NE(uf.find(0), uf.find(2));
}

}  // namespace
}  // namespace cold
