#include "graph/spectral.h"

#include <gtest/gtest.h>

#include <cmath>

#include "zoo/zoo.h"

namespace cold {
namespace {

constexpr double kPi = 3.14159265358979323846;

Topology path_graph(std::size_t n) {
  Topology g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(AlgebraicConnectivity, CompleteGraphIsN) {
  const SpectralResult r = algebraic_connectivity(Topology::complete(6));
  EXPECT_NEAR(r.algebraic_connectivity, 6.0, 1e-6);
}

TEST(AlgebraicConnectivity, PathClosedForm) {
  // lambda_2(P_n) = 2 (1 - cos(pi/n)).
  for (std::size_t n : {4, 8, 12}) {
    const SpectralResult r = algebraic_connectivity(path_graph(n));
    const double expect = 2.0 * (1.0 - std::cos(kPi / static_cast<double>(n)));
    EXPECT_NEAR(r.algebraic_connectivity, expect, 1e-5) << n;
  }
}

TEST(AlgebraicConnectivity, RingClosedForm) {
  // lambda_2(C_n) = 2 (1 - cos(2 pi / n)).
  const SpectralResult r = algebraic_connectivity(zoo_ring(10));
  const double expect = 2.0 * (1.0 - std::cos(2.0 * kPi / 10.0));
  EXPECT_NEAR(r.algebraic_connectivity, expect, 1e-5);
}

TEST(AlgebraicConnectivity, StarIsOne) {
  // lambda_2(K_{1,n-1}) = 1.
  const SpectralResult r = algebraic_connectivity(Topology::star(9, 0));
  EXPECT_NEAR(r.algebraic_connectivity, 1.0, 1e-5);
}

TEST(AlgebraicConnectivity, DisconnectedIsZero) {
  Topology g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const SpectralResult r = algebraic_connectivity(g);
  EXPECT_DOUBLE_EQ(r.algebraic_connectivity, 0.0);
  EXPECT_TRUE(r.converged);
}

TEST(AlgebraicConnectivity, OrdersRobustness) {
  // Denser/better-connected graphs have higher lambda_2.
  const double tree = algebraic_connectivity(path_graph(10)).algebraic_connectivity;
  const double ring = algebraic_connectivity(zoo_ring(10)).algebraic_connectivity;
  const double mesh =
      algebraic_connectivity(Topology::complete(10)).algebraic_connectivity;
  EXPECT_LT(tree, ring);
  EXPECT_LT(ring, mesh);
}

TEST(AlgebraicConnectivity, FiedlerIsOrthogonalToConstant) {
  const SpectralResult r = algebraic_connectivity(zoo_ring_with_chords(12, 2));
  double sum = 0.0;
  for (double v : r.fiedler) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-6);
}

TEST(SpectralPartition, SplitsTheDumbbell) {
  // Two cliques joined by one edge: the Fiedler cut must separate them.
  const Topology g = zoo_dumbbell(5);
  const auto side = spectral_partition(g);
  for (NodeId v = 1; v < 5; ++v) EXPECT_EQ(side[v], side[0]);
  for (NodeId v = 6; v < 10; ++v) EXPECT_EQ(side[v], side[5]);
  EXPECT_NE(side[0], side[5]);
}

TEST(SpectralPartition, RejectsDisconnected) {
  Topology g(4);
  g.add_edge(0, 1);
  EXPECT_THROW(spectral_partition(g), std::invalid_argument);
}

}  // namespace
}  // namespace cold
