// Matrix-free evaluation context guarantees: recomputing distances on
// demand from coordinates, and walking gravity traffic in compressed row
// form, are backend choices, not identities — every (n, threads, dsssp)
// cell produces byte-identical timing-free run reports with the dense
// matrices materialized or absent; compressed traffic stores the dense
// entries bit-for-bit (zero rows included); and the opt-in --traffic-topk
// truncation stays symmetric, renormalized, and visible in the report.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/erdos_renyi.h"
#include "core/ensemble.h"
#include "core/synthesizer.h"
#include "cost/evaluator.h"
#include "geom/distance.h"
#include "geom/point_process.h"
#include "graph/algorithms.h"
#include "net/routing.h"
#include "telemetry/report.h"
#include "traffic/gravity.h"
#include "util/rng.h"

namespace cold {
namespace {

/// Restores DistanceProvider's dense-view auto threshold on scope exit, so
/// a failing test cannot leak a forced backend into the rest of the suite.
class DistanceThresholdGuard {
 public:
  explicit DistanceThresholdGuard(std::size_t n)
      : saved_(DistanceProvider::dense_auto_threshold()) {
    DistanceProvider::set_dense_auto_threshold(n);
  }
  ~DistanceThresholdGuard() {
    DistanceProvider::set_dense_auto_threshold(saved_);
  }
  DistanceThresholdGuard(const DistanceThresholdGuard&) = delete;
  DistanceThresholdGuard& operator=(const DistanceThresholdGuard&) = delete;

 private:
  std::size_t saved_;
};

SynthesisConfig tiny_config(std::size_t n, std::size_t threads,
                            DsspMode dsssp) {
  SynthesisConfig cfg;
  cfg.context.num_pops = n;
  cfg.costs = CostParams{10, 1, 4e-4, 10};
  cfg.ga.population = 8;
  cfg.ga.generations = 4;
  cfg.ga.parallel.num_threads = threads;
  cfg.engine.delta.mode = dsssp;
  cfg.seed_with_heuristics = false;  // keep n = 200 fast
  return cfg;
}

std::string timing_free_report(const SynthesisConfig& cfg,
                               std::uint64_t seed) {
  JsonReportSink sink;
  SynthesisConfig with_observer = cfg;
  with_observer.observer = &sink;
  Synthesizer(with_observer).synthesize(seed);
  return run_report_to_json(sink.report(), /*include_timing=*/false);
}

// The tentpole acceptance gate: for every (n, threads, dsssp) cell, a run
// whose distances are recomputed per lookup (no dense matrix anywhere)
// produces a byte-identical timing-free report to the same run with the
// n^2 matrix materialized.
TEST(MatrixFree, OnDemandDistancesByteIdenticalReports) {
  for (const std::size_t n : {24u, 80u, 200u}) {
    for (const std::size_t threads : {1u, 4u}) {
      for (const DsspMode dsssp : {DsspMode::kOff, DsspMode::kOn}) {
        const SynthesisConfig cfg = tiny_config(n, threads, dsssp);
        std::string dense, on_demand;
        {
          DistanceThresholdGuard materialize(4096);
          dense = timing_free_report(cfg, /*seed=*/42);
        }
        {
          DistanceThresholdGuard matrix_free(0);
          on_demand = timing_free_report(cfg, /*seed=*/42);
        }
        EXPECT_EQ(dense, on_demand)
            << "distance backend divergence at n=" << n
            << " threads=" << threads << " dsssp=" << static_cast<int>(dsssp);
      }
    }
  }
}

// A matrix-free provider answers every pairwise lookup and every whole-row
// view with the exact doubles the materialized matrix holds.
TEST(MatrixFree, ProviderLookupsMatchDenseMatrixBitForBit) {
  Rng rng(11);
  const std::size_t n = 60;
  const auto pts = UniformProcess().sample(n, Rectangle(), rng);
  const Matrix<double> dense = distance_matrix(pts);

  DistanceThresholdGuard matrix_free(0);
  const DistanceProvider provider = DistanceProvider::from_points(pts);
  ASSERT_FALSE(provider.has_dense());
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = provider.row_view(i);  // LRU tile path
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(provider(i, j), dense(i, j)) << i << "," << j;
      EXPECT_EQ(row[j], dense(i, j)) << i << "," << j;
    }
  }
  // Revisit rows after the 8-row tile cache has evicted them.
  for (std::size_t i = 0; i < n; i += 7) {
    EXPECT_EQ(provider.row_view(i)[n - 1], dense(i, n - 1));
  }
}

// Compressing the dense gravity matrix stores its nonzero entries verbatim,
// and the direct CSR builder produces the same bits without the n^2
// intermediate.
TEST(MatrixFree, CompressedTrafficMatchesDenseBitForBit) {
  Rng rng(3);
  std::vector<double> pops;
  for (std::size_t i = 0; i < 40; ++i) pops.push_back(rng.exponential(30.0));
  GravityOptions opts;
  opts.scale = 10.0;
  const TrafficMatrix dense = gravity_matrix(pops, opts);
  const CompressedTraffic compressed(dense);
  const CompressedTraffic direct = gravity_traffic(pops, opts);

  EXPECT_TRUE(compressed == direct);
  double row_sum_check = 0.0;
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    row_sum_check = 0.0;
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      EXPECT_EQ(compressed(i, j), dense(i, j)) << i << "," << j;
      EXPECT_EQ(direct(i, j), dense(i, j)) << i << "," << j;
      row_sum_check += dense(i, j);
    }
    EXPECT_EQ(direct.row_total(i), row_sum_check) << i;
  }
  EXPECT_EQ(direct.total(), total_traffic(dense));
  EXPECT_EQ(direct.topk(), 0u);
}

// Normalized totals go through the same canonical accumulation order, so
// the direct builder stays bit-identical under normalize_total too.
TEST(MatrixFree, CompressedTrafficMatchesDenseUnderNormalization) {
  Rng rng(5);
  std::vector<double> pops;
  for (std::size_t i = 0; i < 25; ++i) pops.push_back(rng.exponential(50.0));
  GravityOptions opts;
  opts.scale = 3.0;
  opts.normalize_total = 1000.0;
  const CompressedTraffic compressed(gravity_matrix(pops, opts));
  const CompressedTraffic direct = gravity_traffic(pops, opts);
  EXPECT_TRUE(compressed == direct);
}

// Edge case: a PoP with no demand at all. Its CSR row is empty, its totals
// are exact zeros, and routing over the compressed form matches the dense
// loads bit-for-bit (the zero row contributes nothing to either).
TEST(MatrixFree, ZeroDemandRowRoutesIdentically) {
  const std::size_t n = 8;
  const NodeId mute = 3;  // carries no demand in either direction
  TrafficMatrix tm = TrafficMatrix::square(n, 0.0);
  Rng rng(17);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (i == mute || j == mute) continue;
      const double t = rng.exponential(5.0);
      tm(i, j) = t;
      tm(j, i) = t;
    }
  }
  const CompressedTraffic ct(tm);
  EXPECT_EQ(ct.row_span(mute).len, 0u);
  EXPECT_EQ(ct.row_total(mute), 0.0);
  EXPECT_EQ(ct(mute, 0), 0.0);

  const auto pts = UniformProcess().sample(n, Rectangle(), rng);
  const auto len = distance_matrix(pts);
  Topology g = erdos_renyi_gnp(n, 0.4, rng);
  connect_components(g, len);

  Matrix<double> dense_loads;
  RoutingWorkspace ws;
  ASSERT_TRUE(route_loads_dense(g, len, ct, dense_loads, ws));
  EdgeLoads sparse_loads;
  RoutingWorkspace ws2;
  ASSERT_TRUE(route_loads(g, len, ct, sparse_loads, ws2));
  for (const Edge& edge : g.edges()) {
    EXPECT_EQ(sparse_loads.at(edge.u, edge.v), dense_loads(edge.u, edge.v));
  }

  // The evaluator accepts the zero-row matrix through both entry forms.
  Evaluator a(len, tm, CostParams{10, 1, 4e-4, 10});
  Evaluator b(DistanceProvider::from_points(pts), ct,
              CostParams{10, 1, 4e-4, 10});
  EXPECT_EQ(a.cost(g), b.cost(g));
}

// --traffic-topk: each PoP keeps its K largest demands, the union with the
// transpose keeps the matrix symmetric, and renormalization restores the
// exact model's offered load.
TEST(MatrixFree, TopkTruncationSymmetricAndRenormalized) {
  Rng rng(23);
  std::vector<double> pops;
  for (std::size_t i = 0; i < 30; ++i) pops.push_back(rng.exponential(40.0));
  GravityOptions exact_opts;
  exact_opts.scale = 2.0;
  const CompressedTraffic exact = gravity_traffic(pops, exact_opts);

  GravityOptions topk_opts = exact_opts;
  topk_opts.topk = 4;
  const CompressedTraffic truncated = gravity_traffic(pops, topk_opts);

  EXPECT_EQ(truncated.topk(), 4u);
  EXPECT_LT(truncated.nnz(), exact.nnz());
  EXPECT_NO_THROW(validate_traffic_matrix(truncated));  // incl. symmetry
  EXPECT_NEAR(truncated.total(), exact.total(),
              1e-9 * exact.total());  // renormalized offered load
  // Every row keeps at least its own K picks.
  for (std::size_t i = 0; i < truncated.rows(); ++i) {
    EXPECT_GE(truncated.row_span(i).len, 4u) << i;
  }
  // K >= n-1 degenerates to the exact matrix.
  GravityOptions full_opts = exact_opts;
  full_opts.topk = pops.size() - 1;
  EXPECT_TRUE(gravity_traffic(pops, full_opts) == exact);
}

// The truncation is logical content: the run block of the report records it.
TEST(MatrixFree, ReportRecordsTrafficTopk) {
  SynthesisConfig cfg = tiny_config(24, 1, DsspMode::kOff);
  cfg.context.gravity.topk = 6;
  JsonReportSink sink;
  cfg.observer = &sink;
  Synthesizer(cfg).synthesize(9);
  EXPECT_EQ(sink.report().traffic_topk, 6u);
  const RunReport parsed = run_report_from_json(
      run_report_to_json(sink.report(), /*include_timing=*/false));
  EXPECT_EQ(parsed.traffic_topk, 6u);
}

// --exemplars: a streamed ensemble's reservoir surfaces as the report's
// ensemble_exemplars block — deterministic, seed-addressed, and identical
// for any thread count.
TEST(MatrixFree, EnsembleExemplarsDeterministicAndRoundTrip) {
  SynthesisConfig cfg = tiny_config(10, 1, DsspMode::kOff);
  cfg.ga.population = 8;
  cfg.ga.generations = 3;
  JsonReportSink sink;
  cfg.observer = &sink;
  EnsembleOptions opts;
  opts.count = 8;
  opts.base_seed = 5;
  opts.retain = RetainMode::kStreamed;
  opts.reservoir = 3;
  const EnsembleResult e = generate_ensemble(Synthesizer(cfg), opts);

  const std::vector<EnsembleExemplar> exemplars = e.acc.exemplars();
  ASSERT_EQ(exemplars.size(), 3u);
  ASSERT_TRUE(sink.report().has_ensemble_exemplars);
  EXPECT_EQ(sink.report().ensemble_exemplars.reservoir, 3u);
  ASSERT_EQ(sink.report().ensemble_exemplars.exemplars.size(), 3u);
  for (std::size_t k = 0; k < exemplars.size(); ++k) {
    // Exemplars are seed-addressed: seed = base_seed + index, so any one of
    // them can be replayed with synthesize(seed).
    EXPECT_EQ(exemplars[k].seed, opts.base_seed + exemplars[k].index);
    EXPECT_EQ(exemplars[k].num_pops, 10u);
    EXPECT_GT(exemplars[k].num_links, 0u);
    if (k > 0) EXPECT_LT(exemplars[k - 1].index, exemplars[k].index);
    const EnsembleExemplar& in_report =
        sink.report().ensemble_exemplars.exemplars[k];
    EXPECT_EQ(in_report.seed, exemplars[k].seed);
    EXPECT_EQ(in_report.best_cost, exemplars[k].best_cost);
  }

  // Byte-identical timing-free report for any thread count, and the block
  // survives a JSON round trip.
  const std::string report_seq =
      run_report_to_json(sink.report(), /*include_timing=*/false);
  SynthesisConfig par = cfg;
  par.parallel.num_threads = 4;
  JsonReportSink par_sink;
  par.observer = &par_sink;
  generate_ensemble(Synthesizer(par), opts);
  EXPECT_EQ(run_report_to_json(par_sink.report(), /*include_timing=*/false),
            report_seq);
  const RunReport parsed = run_report_from_json(report_seq);
  ASSERT_TRUE(parsed.has_ensemble_exemplars);
  EXPECT_EQ(parsed.ensemble_exemplars.exemplars.size(), 3u);
  EXPECT_EQ(parsed.ensemble_exemplars.exemplars[0].seed,
            sink.report().ensemble_exemplars.exemplars[0].seed);
}

}  // namespace
}  // namespace cold
