#include "heuristics/hub_heuristics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/context.h"
#include "geom/distance.h"
#include "graph/algorithms.h"

namespace cold {
namespace {

Evaluator make_evaluator(std::size_t n, CostParams params,
                         std::uint64_t seed = 1) {
  ContextConfig cfg;
  cfg.num_pops = n;
  Rng rng(seed);
  const Context ctx = generate_context(cfg, rng);
  return Evaluator(ctx.distances, ctx.traffic, params);
}

TEST(HubHeuristics, AllStrategiesReturnConnectedFiniteCost) {
  Evaluator eval = make_evaluator(20, CostParams{10, 1, 4e-4, 10});
  Rng rng(2);
  for (const HeuristicResult& r : run_all_heuristics(eval, rng)) {
    EXPECT_TRUE(is_connected(r.topology)) << r.name;
    EXPECT_TRUE(std::isfinite(r.cost)) << r.name;
    EXPECT_EQ(r.topology.num_nodes(), 20u) << r.name;
  }
}

TEST(HubHeuristics, ReportedCostMatchesEvaluator) {
  Evaluator eval = make_evaluator(15, CostParams{10, 1, 1e-4, 0});
  Rng rng(3);
  for (const HeuristicResult& r : run_all_heuristics(eval, rng)) {
    EXPECT_NEAR(r.cost, eval.cost(r.topology), 1e-9) << r.name;
  }
}

TEST(HubHeuristics, HighHubCostYieldsStar) {
  // With a huge k3, a single hub must win: exactly one core node.
  Evaluator eval = make_evaluator(12, CostParams{10, 1, 1e-5, 1e6});
  Rng rng(4);
  for (const HeuristicResult& r : run_all_heuristics(eval, rng)) {
    EXPECT_EQ(r.topology.num_core_nodes(), 1u) << r.name;
    EXPECT_EQ(r.topology.num_edges(), 11u) << r.name;
  }
}

TEST(HubHeuristics, HighBandwidthCostGrowsHubs) {
  // Large k2 rewards direct links: the hub set should grow well past 1.
  Evaluator eval = make_evaluator(15, CostParams{1, 1, 0.5, 0});
  Rng rng(5);
  const auto r =
      run_hub_heuristic(eval, HubStrategy::kComplete, rng);
  EXPECT_GT(r.topology.num_core_nodes(), 5u);
}

TEST(HubHeuristics, CompleteStrategyHubsFormClique) {
  Evaluator eval = make_evaluator(15, CostParams{5, 1, 1e-3, 20});
  Rng rng(6);
  const auto r = run_hub_heuristic(eval, HubStrategy::kComplete, rng);
  // Every pair of core nodes must be directly linked.
  std::vector<NodeId> cores;
  for (NodeId v = 0; v < 15; ++v) {
    if (r.topology.degree(v) > 1) cores.push_back(v);
  }
  for (std::size_t i = 0; i < cores.size(); ++i) {
    for (std::size_t j = i + 1; j < cores.size(); ++j) {
      EXPECT_TRUE(r.topology.has_edge(cores[i], cores[j]));
    }
  }
}

TEST(HubHeuristics, MstStrategyHubsFormTree) {
  Evaluator eval = make_evaluator(15, CostParams{5, 1, 1e-3, 20});
  Rng rng(7);
  const auto r = run_hub_heuristic(eval, HubStrategy::kMst, rng);
  // Whole topology is hubs-tree + leaf links: total edges = n - 1.
  EXPECT_EQ(r.topology.num_edges(), 14u);
  EXPECT_TRUE(is_connected(r.topology));
}

TEST(HubHeuristics, RandomGreedyMorePermutationsNeverWorse) {
  Evaluator eval1 = make_evaluator(15, CostParams{10, 1, 4e-4, 10});
  Evaluator eval2 = make_evaluator(15, CostParams{10, 1, 4e-4, 10});
  HubHeuristicOptions few, many;
  few.num_permutations = 1;
  many.num_permutations = 8;
  Rng rng1(8), rng2(8);
  const auto r_few =
      run_hub_heuristic(eval1, HubStrategy::kRandomGreedy, rng1, few);
  const auto r_many =
      run_hub_heuristic(eval2, HubStrategy::kRandomGreedy, rng2, many);
  EXPECT_LE(r_many.cost, r_few.cost + 1e-9);
}

TEST(HubHeuristics, TwoNodeNetwork) {
  ContextConfig cfg;
  cfg.num_pops = 2;
  Rng ctx_rng(9);
  const Context ctx = generate_context(cfg, ctx_rng);
  Evaluator eval(ctx.distances, ctx.traffic, CostParams{});
  Rng rng(9);
  const auto r = run_hub_heuristic(eval, HubStrategy::kComplete, rng);
  EXPECT_EQ(r.topology.num_edges(), 1u);
}

TEST(HubHeuristics, RejectsTrivialInstances) {
  Evaluator eval(Matrix<double>::square(1, 0.0), Matrix<double>::square(1, 0.0),
                 CostParams{});
  Rng rng(10);
  EXPECT_THROW(run_hub_heuristic(eval, HubStrategy::kMst, rng),
               std::invalid_argument);
}

TEST(BuildHubTopology, LeavesAttachToNearestHub) {
  const std::vector<Point> pts{{0, 0}, {10, 0}, {1, 0}, {9, 0}};
  const auto d = distance_matrix(pts);
  const Topology g = build_hub_topology(4, {0, 1}, {make_edge(0, 1)}, d);
  EXPECT_TRUE(g.has_edge(0, 2));  // 2 closer to hub 0
  EXPECT_TRUE(g.has_edge(1, 3));  // 3 closer to hub 1
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(BuildHubTopology, Validates) {
  const auto d = Matrix<double>::square(3, 1.0);
  EXPECT_THROW(build_hub_topology(3, {}, {}, d), std::invalid_argument);
  EXPECT_THROW(build_hub_topology(3, {0}, {make_edge(1, 2)}, d),
               std::invalid_argument);
  EXPECT_THROW(build_hub_topology(3, {5}, {}, d), std::invalid_argument);
}

TEST(HubStrategy, NamesAreStable) {
  EXPECT_EQ(to_string(HubStrategy::kRandomGreedy), "random greedy");
  EXPECT_EQ(to_string(HubStrategy::kComplete), "complete");
  EXPECT_EQ(to_string(HubStrategy::kMst), "mst");
  EXPECT_EQ(to_string(HubStrategy::kGreedyAttachment), "greedy attachment");
  EXPECT_EQ(all_hub_strategies().size(), 4u);
}

}  // namespace
}  // namespace cold
