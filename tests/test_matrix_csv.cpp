#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.h"
#include "util/matrix.h"

namespace cold {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix<int> m(2, 3, 7);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 7);
  m(0, 1) = 42;
  EXPECT_EQ(m.at(0, 1), 42);
}

TEST(Matrix, AtBoundsChecks) {
  Matrix<double> m = Matrix<double>::square(2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
}

TEST(Matrix, FillAndEquality) {
  Matrix<double> a = Matrix<double>::square(3, 1.0);
  Matrix<double> b = Matrix<double>::square(3, 2.0);
  EXPECT_FALSE(a == b);
  b.fill(1.0);
  EXPECT_TRUE(a == b);
}

TEST(Matrix, DefaultIsEmpty) {
  Matrix<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(Table, AlignedPrint) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b"), static_cast<long long>(42)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"k"});
  t.add_row({std::string("a,b")});
  t.add_row({std::string("say \"hi\"")});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RowWidthValidation) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, FormatCellVariants) {
  EXPECT_EQ(format_cell(std::string("x")), "x");
  EXPECT_EQ(format_cell(static_cast<long long>(-3)), "-3");
  EXPECT_EQ(format_cell(2.5), "2.5");
}

}  // namespace
}  // namespace cold
