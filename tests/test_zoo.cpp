#include "zoo/zoo.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.h"
#include "graph/metrics.h"

namespace cold {
namespace {

TEST(Zoo, AllEntriesConnectedAndNamed) {
  const auto zoo = synthetic_zoo();
  EXPECT_GE(zoo.size(), 35u);
  std::set<std::string> names;
  for (const ZooEntry& z : zoo) {
    EXPECT_TRUE(is_connected(z.topology)) << z.name;
    EXPECT_GE(z.topology.num_nodes(), 5u) << z.name;
    EXPECT_LE(z.topology.num_nodes(), 60u) << z.name;
    names.insert(z.name);
  }
  EXPECT_EQ(names.size(), zoo.size());  // unique names
}

TEST(Zoo, Deterministic) {
  const auto a = synthetic_zoo();
  const auto b = synthetic_zoo();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].topology == b[i].topology) << a[i].name;
  }
}

TEST(ZooStar, Structure) {
  const Topology s = zoo_star(10);
  EXPECT_EQ(s.num_edges(), 9u);
  EXPECT_EQ(s.num_core_nodes(), 1u);
  EXPECT_THROW(zoo_star(2), std::invalid_argument);
}

TEST(ZooDoubleStar, TwoHubs) {
  const Topology s = zoo_double_star(10);
  EXPECT_EQ(s.num_core_nodes(), 2u);
  EXPECT_TRUE(s.has_edge(0, 1));
  EXPECT_TRUE(is_connected(s));
}

TEST(ZooMultiHub, HubRingPlusLeaves) {
  const Topology s = zoo_multi_hub(20, 4);
  EXPECT_TRUE(is_connected(s));
  EXPECT_EQ(s.num_core_nodes(), 4u);
  EXPECT_EQ(s.num_leaf_nodes(), 16u);
  EXPECT_THROW(zoo_multi_hub(5, 5), std::invalid_argument);
}

TEST(ZooRing, TwoRegular) {
  const Topology r = zoo_ring(8);
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(r.degree(v), 2);
  EXPECT_EQ(diameter(r), 4);
}

TEST(ZooRingWithChords, ChordsShrinkDiameter) {
  const Topology plain = zoo_ring(20);
  const Topology chorded = zoo_ring_with_chords(20, 4);
  EXPECT_LT(diameter(chorded), diameter(plain));
  EXPECT_EQ(chorded.num_edges(), 24u);
}

TEST(ZooBalancedTree, IsTree) {
  const Topology t = zoo_balanced_tree(15, 2);
  EXPECT_EQ(t.num_edges(), 14u);
  EXPECT_TRUE(is_connected(t));
  EXPECT_DOUBLE_EQ(global_clustering(t), 0.0);
}

TEST(ZooPartialMesh, ConnectedAtAnyDensity) {
  for (double p : {0.0, 0.05, 0.3}) {
    const Topology m = zoo_partial_mesh(20, p, 99);
    EXPECT_TRUE(is_connected(m)) << p;
  }
}

TEST(ZooLadder, Structure) {
  const Topology l = zoo_ladder(10);
  EXPECT_EQ(l.num_edges(), 4u + 4u + 5u);  // rails + rungs
  EXPECT_TRUE(is_connected(l));
  EXPECT_THROW(zoo_ladder(7), std::invalid_argument);
}

TEST(ZooDumbbell, HighClusteringSmallNetwork) {
  const Topology d = zoo_dumbbell(5);
  EXPECT_EQ(d.num_nodes(), 10u);
  EXPECT_TRUE(is_connected(d));
  EXPECT_GT(global_clustering(d), 0.5);
}

TEST(Zoo, CvndTailReachesTwo) {
  // The distributional property Fig 8a needs: a visible CVND > 1 tail.
  double max_cv = 0.0;
  std::size_t over_one = 0;
  const auto zoo = synthetic_zoo();
  for (const ZooEntry& z : zoo) {
    const double cv = degree_cv(z.topology);
    max_cv = std::max(max_cv, cv);
    if (cv > 1.0) ++over_one;
  }
  EXPECT_GT(max_cv, 1.9);
  EXPECT_GE(over_one * 100, zoo.size() * 10);  // at least ~10%
  EXPECT_LE(over_one * 100, zoo.size() * 40);  // but a minority
}

}  // namespace
}  // namespace cold
