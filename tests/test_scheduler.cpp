// Tests for affinity scheduling: the thread pool's assigned-queue mode
// (work stealing, steal-counter conservation) and the GA-level guarantee
// that routing offspring by retained parent state changes delta hit rates
// and wall-clock only — trajectories stay bit-identical for any
// {affinity, thread count, dsssp} combination.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/context.h"
#include "cost/evaluator.h"
#include "ga/genetic.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cold {
namespace {

/// Deals `total` indices into `queues` queues round-robin with a skew: queue
/// 0 gets every index divisible by 3 as well, so assignments are uneven but
/// every index appears in exactly one queue.
std::vector<std::vector<std::size_t>> skewed_queues(std::size_t total,
                                                    std::size_t queues) {
  std::vector<std::vector<std::size_t>> q(queues);
  for (std::size_t i = 0; i < total; ++i) {
    q[i % 3 == 0 ? 0 : i % queues].push_back(i);
  }
  return q;
}

TEST(ParallelForAssigned, ExecutesEveryQueuedIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const auto queues = skewed_queues(500, pool.size());
    std::vector<int> hits(500, 0);
    StealStats stats;
    pool.parallel_for_assigned(
        queues, [&](std::size_t i, std::size_t) { ++hits[i]; }, &stats);
    for (int h : hits) EXPECT_EQ(h, 1);
    // Conservation: every queued index was executed by exactly one worker,
    // and a worker can only have stolen items it executed.
    ASSERT_EQ(stats.executed.size(), pool.size());
    ASSERT_EQ(stats.stolen.size(), pool.size());
    EXPECT_EQ(stats.total_executed(), 500u);
    for (std::size_t w = 0; w < pool.size(); ++w) {
      EXPECT_LE(stats.stolen[w], stats.executed[w]) << w;
    }
  }
}

TEST(ParallelForAssigned, ForcedContentionOneQueueOwnsEverything) {
  // All items on worker 0's queue — the worst-case assignment affinity can
  // produce (every retained parent on one worker). Idle workers must steal
  // rather than wait. Worker 0 blocks on its first item until some other
  // worker has run one, so at least one steal is guaranteed, and the
  // assignment still cannot serialize the job.
  ThreadPool pool(4);
  const std::size_t total = 64;
  std::vector<std::vector<std::size_t>> queues(pool.size());
  for (std::size_t i = 0; i < total; ++i) queues[0].push_back(i);

  std::vector<int> hits(total, 0);
  std::atomic<bool> other_worker_ran{false};
  StealStats stats;
  pool.parallel_for_assigned(
      queues,
      [&](std::size_t i, std::size_t w) {
        ++hits[i];
        if (w != 0) {
          other_worker_ran.store(true, std::memory_order_release);
        } else {
          while (!other_worker_ran.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        }
      },
      &stats);

  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(stats.total_executed(), total);
  EXPECT_GT(stats.total_stolen(), 0u);
  // Everything a worker other than 0 ran came off worker 0's queue.
  for (std::size_t w = 1; w < pool.size(); ++w) {
    EXPECT_EQ(stats.stolen[w], stats.executed[w]) << w;
  }
  EXPECT_EQ(stats.stolen[0], 0u);  // its own queue is never a steal
}

TEST(ParallelForAssigned, InlinePoolRunsOnCaller) {
  ThreadPool pool(1);
  std::vector<std::vector<std::size_t>> queues(1);
  for (std::size_t i = 0; i < 20; ++i) queues[0].push_back(i);
  std::vector<int> hits(20, 0);
  StealStats stats;
  pool.parallel_for_assigned(
      queues,
      [&](std::size_t i, std::size_t w) {
        EXPECT_EQ(w, 0u);
        ++hits[i];
      },
      &stats);
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(stats.total_executed(), 20u);
  EXPECT_EQ(stats.total_stolen(), 0u);
}

TEST(ParallelForAssigned, ValidatesQueueCount) {
  ThreadPool pool(2);
  std::vector<std::vector<std::size_t>> wrong(1);
  EXPECT_THROW(
      pool.parallel_for_assigned(wrong, [](std::size_t, std::size_t) {}),
      std::invalid_argument);
}

TEST(ParallelForAssigned, EmptyQueuesAreANoOp) {
  ThreadPool pool(3);
  std::vector<std::vector<std::size_t>> queues(pool.size());
  StealStats stats;
  pool.parallel_for_assigned(
      queues, [](std::size_t, std::size_t) { FAIL(); }, &stats);
  EXPECT_EQ(stats.total_executed(), 0u);
}

TEST(ParallelForAssigned, PropagatesExceptionsAndSurvives) {
  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const auto queues = skewed_queues(100, pool.size());
    EXPECT_THROW(pool.parallel_for_assigned(queues,
                                            [&](std::size_t i, std::size_t) {
                                              if (i == 17) {
                                                throw std::runtime_error(
                                                    "boom");
                                              }
                                            }),
                 std::runtime_error);
    // The pool survives a throwing assigned job and runs plain jobs after.
    std::atomic<int> n{0};
    pool.parallel_for(0, 8, [&](std::size_t, std::size_t) { ++n; });
    EXPECT_EQ(n.load(), 8);
  }
}

Evaluator make_evaluator(std::size_t n, const EvalEngineConfig& engine,
                         std::uint64_t seed = 21) {
  ContextConfig cfg;
  cfg.num_pops = n;
  Rng rng(seed);
  const Context ctx = generate_context(cfg, rng);
  return Evaluator(ctx.distances, ctx.traffic, CostParams{10, 1, 4e-4, 10},
                   engine);
}

GaRunOptions scheduler_ga(std::size_t threads, bool affinity) {
  GaRunOptions options;
  options.config.population = 24;
  options.config.generations = 10;
  options.config.parallel.num_threads = threads;
  options.config.affinity = affinity;
  return options;
}

// The headline exactness property: affinity routing (and the steal
// interleaving it allows) never changes GA trajectories — for any thread
// count, with the delta engine on or off. The reference is the fully
// sequential, affinity-off, delta-off run.
TEST(AffinityScheduling, TrajectoriesAreBitIdenticalAcrossAllCombinations) {
  const GaResult ref = [] {
    Evaluator eval = make_evaluator(14, EvalEngineConfig{});
    Rng rng(19);
    return run_ga(eval, rng, scheduler_ga(1, false));
  }();

  for (const bool affinity : {false, true}) {
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      for (const DsspMode mode : {DsspMode::kOff, DsspMode::kOn}) {
        EvalEngineConfig engine;
        engine.delta.mode = mode;
        Evaluator eval = make_evaluator(14, engine);
        Rng rng(19);
        const GaResult r = run_ga(eval, rng, scheduler_ga(threads, affinity));
        const auto label = ::testing::Message()
                           << "affinity=" << affinity << " threads=" << threads
                           << " dsssp=" << (mode == DsspMode::kOn);
        EXPECT_EQ(r.best_cost, ref.best_cost) << label;
        EXPECT_TRUE(r.best == ref.best) << label;
        ASSERT_EQ(r.best_cost_history.size(), ref.best_cost_history.size())
            << label;
        for (std::size_t g = 0; g < r.best_cost_history.size(); ++g) {
          EXPECT_EQ(r.best_cost_history[g], ref.best_cost_history[g])
              << label << " generation " << g;
        }
        ASSERT_EQ(r.final_costs.size(), ref.final_costs.size()) << label;
        for (std::size_t i = 0; i < r.final_costs.size(); ++i) {
          EXPECT_EQ(r.final_costs[i], ref.final_costs[i]) << label;
        }
        EXPECT_EQ(r.evaluations, ref.evaluations) << label;
        EXPECT_EQ(r.repairs, ref.repairs) << label;
      }
    }
  }
}

// The per-worker delta split is snapshotted before the clone merge, so it
// must sum to exactly the primary's merged aggregate.
TEST(AffinityScheduling, WorkerDeltaSplitSumsToAggregate) {
  EvalEngineConfig engine;
  engine.delta.mode = DsspMode::kOn;
  Evaluator eval = make_evaluator(14, engine);
  Rng rng(23);
  const GaResult r = run_ga(eval, rng, scheduler_ga(4, true));

  ASSERT_EQ(r.worker_delta.size(), 4u);
  DeltaStats sum;
  for (const DeltaStats& w : r.worker_delta) {
    sum.hits += w.hits;
    sum.fallbacks += w.fallbacks;
    sum.vertices_resettled += w.vertices_resettled;
  }
  const DeltaStats& merged = eval.delta_stats();
  EXPECT_EQ(sum.hits, merged.hits);
  EXPECT_EQ(sum.fallbacks, merged.fallbacks);
  EXPECT_EQ(sum.vertices_resettled, merged.vertices_resettled);
  // Every scored offspring either hit the delta path or fell back.
  EXPECT_GT(sum.hits + sum.fallbacks, 0u);
}

// Without a delta engine there is no state to be affine to: the scorer
// reports no per-worker split and no steals, even with affinity requested.
TEST(AffinityScheduling, InactiveWithoutDeltaEngine) {
  Evaluator eval = make_evaluator(12, EvalEngineConfig{});
  Rng rng(29);
  const GaResult r = run_ga(eval, rng, scheduler_ga(4, true));
  EXPECT_TRUE(r.worker_delta.empty());
  EXPECT_EQ(r.steals, 0u);
}

}  // namespace
}  // namespace cold
