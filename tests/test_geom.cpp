#include <gtest/gtest.h>

#include <cmath>

#include "geom/distance.h"
#include "geom/point.h"
#include "geom/point_process.h"
#include "geom/region.h"

namespace cold {
namespace {

TEST(Point, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Rectangle, DefaultIsUnitSquare) {
  const Rectangle r;
  EXPECT_DOUBLE_EQ(r.width(), 1.0);
  EXPECT_DOUBLE_EQ(r.height(), 1.0);
  EXPECT_DOUBLE_EQ(r.area(), 1.0);
}

TEST(Rectangle, AspectRatioPreservesUnitArea) {
  const Rectangle r = Rectangle::with_aspect_ratio(4.0);
  EXPECT_NEAR(r.area(), 1.0, 1e-12);
  EXPECT_NEAR(r.width() / r.height(), 4.0, 1e-12);
  EXPECT_THROW(Rectangle::with_aspect_ratio(0.0), std::invalid_argument);
}

TEST(Rectangle, ContainsAndClamp) {
  const Rectangle r(2.0, 1.0);
  EXPECT_TRUE(r.contains({1.0, 0.5}));
  EXPECT_FALSE(r.contains({2.5, 0.5}));
  const Point c = r.clamp({-1.0, 3.0});
  EXPECT_DOUBLE_EQ(c.x, 0.0);
  EXPECT_DOUBLE_EQ(c.y, 1.0);
}

TEST(Rectangle, DiameterIsDiagonal) {
  EXPECT_DOUBLE_EQ(Rectangle(3.0, 4.0).diameter(), 5.0);
}

TEST(Rectangle, RejectsNonPositive) {
  EXPECT_THROW(Rectangle(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Rectangle(1.0, -2.0), std::invalid_argument);
}

TEST(UniformProcess, PointsInRegionAndCorrectCount) {
  Rng rng(1);
  const Rectangle region(2.0, 0.5);
  const auto pts = UniformProcess().sample(200, region, rng);
  ASSERT_EQ(pts.size(), 200u);
  for (const Point& p : pts) EXPECT_TRUE(region.contains(p));
}

TEST(UniformProcess, CoversTheRegion) {
  Rng rng(2);
  const Rectangle region;
  const auto pts = UniformProcess().sample(2000, region, rng);
  // Each quadrant should get roughly a quarter of the points.
  int q = 0;
  for (const Point& p : pts) {
    if (p.x < 0.5 && p.y < 0.5) ++q;
  }
  EXPECT_NEAR(q, 500, 120);
}

TEST(ClusteredProcess, PointsInRegion) {
  Rng rng(3);
  const Rectangle region;
  const auto pts = ClusteredProcess(4, 0.05).sample(300, region, rng);
  ASSERT_EQ(pts.size(), 300u);
  for (const Point& p : pts) EXPECT_TRUE(region.contains(p));
}

TEST(ClusteredProcess, IsBurstierThanUniform) {
  // Mean nearest-neighbour distance is much smaller for clustered points.
  Rng rng_u(4), rng_c(4);
  const Rectangle region;
  const auto uniform = UniformProcess().sample(150, region, rng_u);
  const auto clustered = ClusteredProcess(3, 0.02).sample(150, region, rng_c);
  auto mean_nn = [](const std::vector<Point>& pts) {
    double total = 0.0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      double best = 1e9;
      for (std::size_t j = 0; j < pts.size(); ++j) {
        if (i != j) best = std::min(best, distance(pts[i], pts[j]));
      }
      total += best;
    }
    return total / static_cast<double>(pts.size());
  };
  EXPECT_LT(mean_nn(clustered), 0.5 * mean_nn(uniform));
}

TEST(ClusteredProcess, Validates) {
  EXPECT_THROW(ClusteredProcess(0, 0.1), std::invalid_argument);
  EXPECT_THROW(ClusteredProcess(3, 0.0), std::invalid_argument);
}

TEST(FixedLocations, ReturnsPrefixAndValidates) {
  Rng rng(5);
  FixedLocations fixed({{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}});
  const auto two = fixed.sample(2, Rectangle(), rng);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_DOUBLE_EQ(two[1].x, 0.3);
  EXPECT_THROW(fixed.sample(4, Rectangle(), rng), std::invalid_argument);
}

TEST(FixedLocations, RejectsOutOfRegion) {
  Rng rng(6);
  FixedLocations fixed({{5.0, 5.0}});
  EXPECT_THROW(fixed.sample(1, Rectangle(), rng), std::invalid_argument);
}

TEST(DistanceMatrix, SymmetricZeroDiagonal) {
  const std::vector<Point> pts{{0, 0}, {3, 4}, {6, 8}};
  const auto d = distance_matrix(pts);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 10.0);
  EXPECT_DOUBLE_EQ(d(1, 2), 5.0);
}

TEST(DistanceMatrix, TriangleInequality) {
  Rng rng(7);
  const auto pts = UniformProcess().sample(20, Rectangle(), rng);
  const auto d = distance_matrix(pts);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 20; ++j) {
      for (std::size_t k = 0; k < 20; ++k) {
        EXPECT_LE(d(i, j), d(i, k) + d(k, j) + 1e-12);
      }
    }
  }
}

TEST(NearestPoint, HonoursExclusionsAndTies) {
  const std::vector<Point> pts{{0, 0}, {1, 0}, {2, 0}};
  std::vector<bool> excl{false, false, false};
  EXPECT_EQ(nearest_point(pts, {0.9, 0.0}, excl), 1u);
  excl[1] = true;
  EXPECT_EQ(nearest_point(pts, {0.9, 0.0}, excl), 0u);
  excl = {true, true, true};
  EXPECT_EQ(nearest_point(pts, {0.9, 0.0}, excl), pts.size());
  // Tie at equal distance: lowest index wins.
  EXPECT_EQ(nearest_point(pts, {0.5, 0.0}, {false, false, false}), 0u);
}

}  // namespace
}  // namespace cold
