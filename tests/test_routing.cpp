#include "net/routing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "baselines/erdos_renyi.h"
#include "geom/distance.h"
#include "geom/point_process.h"
#include "graph/algorithms.h"
#include "traffic/gravity.h"
#include "util/rng.h"

namespace cold {
namespace {

TEST(RouteLoads, PathGraphAccumulates) {
  // Path 0-1-2 with unit demands between all pairs. Link (0,1) carries
  // demands 0<->1 and 0<->2 in both directions: 4 units.
  Topology g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Matrix<double> len = Matrix<double>::square(3, 1.0);
  Matrix<double> traffic = Matrix<double>::square(3, 1.0);
  for (int i = 0; i < 3; ++i) traffic(i, i) = 0.0;
  Matrix<double> loads;
  RoutingWorkspace ws;
  ASSERT_TRUE(route_loads_dense(g, len, traffic, loads, ws));
  EXPECT_DOUBLE_EQ(loads(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(loads(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(loads(1, 0), loads(0, 1));  // symmetric
  EXPECT_DOUBLE_EQ(loads(0, 2), 0.0);          // no such link
}

TEST(RouteLoads, DisconnectedReturnsFalse) {
  Topology g(3);
  g.add_edge(0, 1);
  Matrix<double> len = Matrix<double>::square(3, 1.0);
  Matrix<double> traffic = gravity_matrix({1.0, 1.0, 1.0});
  Matrix<double> loads;
  RoutingWorkspace ws;
  EXPECT_FALSE(route_loads_dense(g, len, traffic, loads, ws));
}

TEST(RouteLoads, AgreesWithExplicitPathAccumulation) {
  // Cross-check the O(n+m) tree aggregation against brute-force per-pair
  // path walks on random geometric instances.
  Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 12;
    const auto pts = UniformProcess().sample(n, Rectangle(), rng);
    const auto len = distance_matrix(pts);
    Topology g = erdos_renyi_gnp(n, 0.3, rng);
    connect_components(g, len);
    std::vector<double> pops;
    for (std::size_t i = 0; i < n; ++i) pops.push_back(rng.exponential(30.0));
    const auto traffic = gravity_matrix(pops);

    Matrix<double> loads;
    RoutingWorkspace ws;
    ASSERT_TRUE(route_loads_dense(g, len, traffic, loads, ws));

    Matrix<double> expected = Matrix<double>::square(n, 0.0);
    for (NodeId s = 0; s < n; ++s) {
      const auto tree = shortest_path_tree(g, len, s);
      for (NodeId t = 0; t < n; ++t) {
        if (s == t) continue;
        const auto path = tree.path_to(t);
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          expected(path[i], path[i + 1]) += traffic(s, t);
          expected(path[i + 1], path[i]) += traffic(s, t);
        }
      }
    }
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        EXPECT_NEAR(loads(i, j), expected(i, j), 1e-6);
      }
    }
  }
}

TEST(RouteLoads, TotalLoadLengthEqualsDemandWeightedLength) {
  // sum_links l_i * w_i must equal sum_pairs t(s,t) * dist(s,t) (eq. 1).
  Rng rng(2);
  const std::size_t n = 15;
  const auto pts = UniformProcess().sample(n, Rectangle(), rng);
  const auto len = distance_matrix(pts);
  Topology g = erdos_renyi_gnp(n, 0.3, rng);
  connect_components(g, len);
  std::vector<double> pops;
  for (std::size_t i = 0; i < n; ++i) pops.push_back(rng.exponential(30.0));
  const auto traffic = gravity_matrix(pops);

  Matrix<double> loads;
  RoutingWorkspace ws;
  ASSERT_TRUE(route_loads_dense(g, len, traffic, loads, ws));
  double lhs = 0.0;
  for (const Edge& e : g.edges()) lhs += len(e.u, e.v) * loads(e.u, e.v);
  const double rhs = total_demand_weighted_length(g, len, traffic);
  EXPECT_NEAR(lhs, rhs, 1e-6 * rhs);
}

TEST(TotalDemandWeightedLength, InfiniteWhenDisconnected) {
  Topology g(3);
  g.add_edge(0, 1);
  Matrix<double> len = Matrix<double>::square(3, 1.0);
  const auto traffic = gravity_matrix({1.0, 1.0, 1.0});
  EXPECT_EQ(total_demand_weighted_length(g, len, traffic),
            std::numeric_limits<double>::infinity());
}

TEST(RoutingMatrix, NextHopsFollowShortestPaths) {
  Topology g(4);  // square with one diagonal: 0-1, 1-2, 2-3, 3-0, 0-2
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  g.add_edge(0, 2);
  Matrix<double> len = Matrix<double>::square(4, 1.0);
  len(0, 2) = len(2, 0) = 1.2;  // diagonal slightly longer than 1 hop
  const auto next = routing_matrix(g, len);
  EXPECT_EQ(next(0, 0), 0u);
  EXPECT_EQ(next(0, 2), 2u);  // direct (1.2) beats 2 hops (2.0)
  EXPECT_EQ(next(1, 3), 0u);  // 1-0-3 (2.0) vs 1-2-3 (2.0): tie -> lower parent id
  const auto path = route_path(next, 1, 3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], 0u);
}

// Property test: on ~100 random connected geometric graphs, the loads the
// tree aggregation reports equal what walking every demand's next-hop route
// (routing_matrix + route_path) deposits on each link — for both
// shortest-path solvers, which must also agree with each other exactly.
TEST(RouteLoads, MatchesRoutePathWalksOnRandomGraphs) {
  Rng rng(42);
  RoutingWorkspace ws;
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 6 + rng.uniform_index(19);
    const auto pts = UniformProcess().sample(n, Rectangle(), rng);
    const auto len = distance_matrix(pts);
    Topology g = erdos_renyi_gnp(n, 0.05 + 0.4 * rng.uniform(), rng);
    connect_components(g, len);
    std::vector<double> pops;
    for (std::size_t i = 0; i < n; ++i) pops.push_back(rng.exponential(30.0));
    const auto traffic = gravity_matrix(pops);

    Matrix<double> loads_dense, loads_sparse;
    ASSERT_TRUE(route_loads_dense(g, len, traffic, loads_dense, ws,
                            SpAlgorithm::kDense));
    ASSERT_TRUE(route_loads_dense(g, len, traffic, loads_sparse, ws,
                            SpAlgorithm::kSparse));
    const auto next = routing_matrix(g, len, ws);

    Matrix<double> walked = Matrix<double>::square(n, 0.0);
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId t = 0; t < n; ++t) {
        if (s == t) continue;
        const auto path = route_path(next, s, t);
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          walked(path[i], path[i + 1]) += traffic(s, t);
          walked(path[i + 1], path[i]) += traffic(s, t);
        }
      }
    }
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        // Both solvers pick identical trees, so their loads are bitwise
        // equal; the walk accumulates in a different order, so compare it
        // with a tolerance.
        ASSERT_EQ(loads_dense(i, j), loads_sparse(i, j));
        ASSERT_NEAR(loads_dense(i, j), walked(i, j),
                    1e-9 * std::max(1.0, walked(i, j)));
      }
    }
  }
}

TEST(RoutingWorkspaceOverloads, MatchAllocatingWrappers) {
  Rng rng(3);
  const std::size_t n = 14;
  const auto pts = UniformProcess().sample(n, Rectangle(), rng);
  const auto len = distance_matrix(pts);
  Topology g = erdos_renyi_gnp(n, 0.25, rng);
  connect_components(g, len);
  std::vector<double> pops;
  for (std::size_t i = 0; i < n; ++i) pops.push_back(rng.exponential(30.0));
  const auto traffic = gravity_matrix(pops);

  RoutingWorkspace ws;
  // Same workspace reused across calls and entry points: results must not
  // depend on leftover scratch state.
  EXPECT_EQ(total_demand_weighted_length(g, len, traffic, ws),
            total_demand_weighted_length(g, len, traffic));
  const auto with_ws = routing_matrix(g, len, ws);
  const auto wrapper = routing_matrix(g, len);
  EXPECT_TRUE(with_ws == wrapper);
  EXPECT_EQ(total_demand_weighted_length(g, len, traffic, ws),
            total_demand_weighted_length(g, len, traffic, ws,
                                         SpAlgorithm::kSparse));
}

TEST(RoutingMatrix, ThrowsOnDisconnected) {
  Topology g(3);
  g.add_edge(0, 1);
  Matrix<double> len = Matrix<double>::square(3, 1.0);
  EXPECT_THROW(routing_matrix(g, len), std::invalid_argument);
}

TEST(RoutePath, ValidatesNodes) {
  Matrix<NodeId> next = Matrix<NodeId>::square(2, 0);
  next(0, 0) = 0;
  next(1, 1) = 1;
  next(0, 1) = 1;
  next(1, 0) = 0;
  EXPECT_THROW(route_path(next, 0, 5), std::out_of_range);
  const auto p = route_path(next, 0, 1);
  ASSERT_EQ(p.size(), 2u);
}

}  // namespace
}  // namespace cold
