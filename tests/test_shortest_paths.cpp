#include "graph/shortest_paths.h"

#include <gtest/gtest.h>

#include <limits>

#include "baselines/erdos_renyi.h"
#include "geom/distance.h"
#include "geom/point_process.h"
#include "graph/algorithms.h"
#include "util/rng.h"

namespace cold {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ShortestPathTree, SimplePath) {
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  Matrix<double> len = Matrix<double>::square(4, 1.0);
  const auto tree = shortest_path_tree(g, len, 0);
  EXPECT_DOUBLE_EQ(tree.dist[3], 3.0);
  EXPECT_EQ(tree.hops[3], 3);
  EXPECT_EQ(tree.parent[3], 2u);
  const auto path = tree.path_to(3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 3u);
}

TEST(ShortestPathTree, PrefersShorterDetour) {
  // Direct link 0-2 of length 10 vs 0-1-2 of length 2+2.
  Topology g(3);
  g.add_edge(0, 2);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Matrix<double> len = Matrix<double>::square(3, 0.0);
  len(0, 2) = len(2, 0) = 10.0;
  len(0, 1) = len(1, 0) = 2.0;
  len(1, 2) = len(2, 1) = 2.0;
  const auto tree = shortest_path_tree(g, len, 0);
  EXPECT_DOUBLE_EQ(tree.dist[2], 4.0);
  EXPECT_EQ(tree.parent[2], 1u);
}

TEST(ShortestPathTree, TieBreaksByHopsThenId) {
  // Two equal-length routes 0->3: via 1 (2 hops) and via 1-2 (3 hops with
  // zero-length segment). Fewer hops must win.
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  Matrix<double> len = Matrix<double>::square(4, 1.0);
  len(1, 3) = len(3, 1) = 1.0;
  len(1, 2) = len(2, 1) = 0.5;
  len(2, 3) = len(3, 2) = 0.5;
  const auto tree = shortest_path_tree(g, len, 0);
  EXPECT_DOUBLE_EQ(tree.dist[3], 2.0);
  EXPECT_EQ(tree.hops[3], 2);
  EXPECT_EQ(tree.parent[3], 1u);
}

TEST(ShortestPathTree, UnreachableNodes) {
  Topology g(3);
  g.add_edge(0, 1);
  Matrix<double> len = Matrix<double>::square(3, 1.0);
  const auto tree = shortest_path_tree(g, len, 0);
  EXPECT_EQ(tree.dist[2], kInf);
  EXPECT_EQ(tree.hops[2], -1);
  EXPECT_TRUE(tree.path_to(2).empty());
  EXPECT_EQ(tree.order.size(), 2u);
}

TEST(ShortestPathTree, SettlingOrderIsByDistance) {
  Rng rng(1);
  const auto pts = UniformProcess().sample(20, Rectangle(), rng);
  const auto len = distance_matrix(pts);
  Topology g = erdos_renyi_gnp(20, 0.3, rng);
  connect_components(g, len);
  const auto tree = shortest_path_tree(g, len, 0);
  ASSERT_EQ(tree.order.size(), 20u);
  for (std::size_t i = 1; i < tree.order.size(); ++i) {
    EXPECT_LE(tree.dist[tree.order[i - 1]], tree.dist[tree.order[i]]);
  }
}

TEST(ShortestPathTree, AgreesWithFloydWarshall) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts = UniformProcess().sample(15, Rectangle(), rng);
    const auto len = distance_matrix(pts);
    Topology g = erdos_renyi_gnp(15, 0.25, rng);
    connect_components(g, len);
    const auto fw = floyd_warshall(g, len);
    for (NodeId s = 0; s < 15; ++s) {
      const auto tree = shortest_path_tree(g, len, s);
      for (NodeId t = 0; t < 15; ++t) {
        EXPECT_NEAR(tree.dist[t], fw(s, t), 1e-9);
      }
    }
  }
}

TEST(ShortestPathTree, ValidatesInput) {
  Topology g(3);
  Matrix<double> bad(2, 3, 1.0);
  ShortestPathTree tree;
  EXPECT_THROW(shortest_path_tree(g, bad, 0, tree), std::invalid_argument);
  Matrix<double> len = Matrix<double>::square(3, 1.0);
  EXPECT_THROW(shortest_path_tree(g, len, 5, tree), std::out_of_range);
}

TEST(SpAlgorithm, SelectionFollowsDensity) {
  // Trees and m ~ n graphs at realistic synthesis sizes go sparse...
  EXPECT_EQ(select_sp_algorithm(100, 110), SpAlgorithm::kSparse);
  EXPECT_EQ(select_sp_algorithm(200, 260), SpAlgorithm::kSparse);
  // ...near-cliques and tiny instances stay on the dense scan.
  EXPECT_EQ(select_sp_algorithm(100, 100 * 99 / 2), SpAlgorithm::kDense);
  EXPECT_EQ(select_sp_algorithm(1, 0), SpAlgorithm::kDense);
  EXPECT_EQ(select_sp_algorithm(8, 10), SpAlgorithm::kDense);
}

// The engine's core determinism claim: the heap solver reproduces the dense
// scan bit for bit — dist, hops, parent AND settle order — on arbitrary
// connected and disconnected graphs, dense and sparse alike.
TEST(SpAlgorithm, SparseIsBitIdenticalToDense) {
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 5 + rng.uniform_index(45);
    const auto pts = UniformProcess().sample(n, Rectangle(), rng);
    const auto len = distance_matrix(pts);
    const double p = 0.05 + 0.5 * rng.uniform();
    Topology g = erdos_renyi_gnp(n, p, rng);
    if (trial % 3 != 0) connect_components(g, len);  // keep some disconnected
    ShortestPathTree dense, sparse;
    for (NodeId s = 0; s < n; ++s) {
      shortest_path_tree(g, len, s, dense, SpAlgorithm::kDense);
      shortest_path_tree(g, len, s, sparse, SpAlgorithm::kSparse);
      ASSERT_EQ(dense.order, sparse.order);
      ASSERT_EQ(dense.parent, sparse.parent);
      ASSERT_EQ(dense.hops, sparse.hops);
      for (NodeId t = 0; t < n; ++t) {
        // Exact equality, not near: both solvers add the same doubles in
        // the same order along every chosen path.
        ASSERT_EQ(dense.dist[t], sparse.dist[t]);
      }
    }
  }
}

TEST(SpAlgorithm, SparseHandlesEqualLengthTies) {
  // Unit lengths maximize (dist, hops) collisions; the composite key and
  // smallest-parent rule must still agree with the dense scan.
  Rng rng(11);
  const std::size_t n = 24;
  Matrix<double> len = Matrix<double>::square(n, 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    Topology g = erdos_renyi_gnp(n, 0.2, rng);
    connect_components(g, len);
    for (NodeId s = 0; s < n; ++s) {
      const auto dense = shortest_path_tree(g, len, s, SpAlgorithm::kDense);
      const auto sparse = shortest_path_tree(g, len, s, SpAlgorithm::kSparse);
      ASSERT_EQ(dense.order, sparse.order);
      ASSERT_EQ(dense.parent, sparse.parent);
    }
  }
}

TEST(FloydWarshall, DisconnectedIsInfinite) {
  Topology g(3);
  g.add_edge(0, 1);
  Matrix<double> len = Matrix<double>::square(3, 1.0);
  const auto fw = floyd_warshall(g, len);
  EXPECT_EQ(fw(0, 2), kInf);
  EXPECT_DOUBLE_EQ(fw(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(fw(2, 2), 0.0);
}

TEST(AllPairsHops, MatchesBfs) {
  Topology g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 4);
  const auto hops = all_pairs_hops(g);
  EXPECT_EQ(hops(0, 3), 3);
  EXPECT_EQ(hops(4, 3), 4);
  EXPECT_EQ(hops(2, 2), 0);
  // Symmetry for undirected graphs.
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = 0; j < 5; ++j) EXPECT_EQ(hops(i, j), hops(j, i));
  }
}

}  // namespace
}  // namespace cold
