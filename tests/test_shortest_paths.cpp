#include "graph/shortest_paths.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "baselines/erdos_renyi.h"
#include "geom/distance.h"
#include "geom/point_process.h"
#include "graph/algorithms.h"
#include "util/rng.h"

namespace cold {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ShortestPathTree, SimplePath) {
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  Matrix<double> len = Matrix<double>::square(4, 1.0);
  const auto tree = shortest_path_tree(g, len, 0);
  EXPECT_DOUBLE_EQ(tree.dist[3], 3.0);
  EXPECT_EQ(tree.hops[3], 3);
  EXPECT_EQ(tree.parent[3], 2u);
  const auto path = tree.path_to(3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 3u);
}

TEST(ShortestPathTree, PrefersShorterDetour) {
  // Direct link 0-2 of length 10 vs 0-1-2 of length 2+2.
  Topology g(3);
  g.add_edge(0, 2);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Matrix<double> len = Matrix<double>::square(3, 0.0);
  len(0, 2) = len(2, 0) = 10.0;
  len(0, 1) = len(1, 0) = 2.0;
  len(1, 2) = len(2, 1) = 2.0;
  const auto tree = shortest_path_tree(g, len, 0);
  EXPECT_DOUBLE_EQ(tree.dist[2], 4.0);
  EXPECT_EQ(tree.parent[2], 1u);
}

TEST(ShortestPathTree, TieBreaksByHopsThenId) {
  // Two equal-length routes 0->3: via 1 (2 hops) and via 1-2 (3 hops with
  // zero-length segment). Fewer hops must win.
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  Matrix<double> len = Matrix<double>::square(4, 1.0);
  len(1, 3) = len(3, 1) = 1.0;
  len(1, 2) = len(2, 1) = 0.5;
  len(2, 3) = len(3, 2) = 0.5;
  const auto tree = shortest_path_tree(g, len, 0);
  EXPECT_DOUBLE_EQ(tree.dist[3], 2.0);
  EXPECT_EQ(tree.hops[3], 2);
  EXPECT_EQ(tree.parent[3], 1u);
}

TEST(ShortestPathTree, UnreachableNodes) {
  Topology g(3);
  g.add_edge(0, 1);
  Matrix<double> len = Matrix<double>::square(3, 1.0);
  const auto tree = shortest_path_tree(g, len, 0);
  EXPECT_EQ(tree.dist[2], kInf);
  EXPECT_EQ(tree.hops[2], -1);
  EXPECT_TRUE(tree.path_to(2).empty());
  EXPECT_EQ(tree.order.size(), 2u);
}

TEST(ShortestPathTree, SettlingOrderIsByDistance) {
  Rng rng(1);
  const auto pts = UniformProcess().sample(20, Rectangle(), rng);
  const auto len = distance_matrix(pts);
  Topology g = erdos_renyi_gnp(20, 0.3, rng);
  connect_components(g, len);
  const auto tree = shortest_path_tree(g, len, 0);
  ASSERT_EQ(tree.order.size(), 20u);
  for (std::size_t i = 1; i < tree.order.size(); ++i) {
    EXPECT_LE(tree.dist[tree.order[i - 1]], tree.dist[tree.order[i]]);
  }
}

TEST(ShortestPathTree, AgreesWithFloydWarshall) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts = UniformProcess().sample(15, Rectangle(), rng);
    const auto len = distance_matrix(pts);
    Topology g = erdos_renyi_gnp(15, 0.25, rng);
    connect_components(g, len);
    const auto fw = floyd_warshall(g, len);
    for (NodeId s = 0; s < 15; ++s) {
      const auto tree = shortest_path_tree(g, len, s);
      for (NodeId t = 0; t < 15; ++t) {
        EXPECT_NEAR(tree.dist[t], fw(s, t), 1e-9);
      }
    }
  }
}

TEST(ShortestPathTree, ValidatesInput) {
  Topology g(3);
  Matrix<double> bad(2, 3, 1.0);
  ShortestPathTree tree;
  EXPECT_THROW(shortest_path_tree(g, bad, 0, tree), std::invalid_argument);
  Matrix<double> len = Matrix<double>::square(3, 1.0);
  EXPECT_THROW(shortest_path_tree(g, len, 5, tree), std::out_of_range);
}

TEST(SpAlgorithm, SelectionFollowsDensity) {
  // Trees and m ~ n graphs at realistic synthesis sizes go sparse...
  EXPECT_EQ(select_sp_algorithm(100, 110), SpAlgorithm::kSparse);
  EXPECT_EQ(select_sp_algorithm(200, 260), SpAlgorithm::kSparse);
  // ...near-cliques and tiny instances stay on the dense scan.
  EXPECT_EQ(select_sp_algorithm(100, 100 * 99 / 2), SpAlgorithm::kDense);
  EXPECT_EQ(select_sp_algorithm(1, 0), SpAlgorithm::kDense);
  EXPECT_EQ(select_sp_algorithm(8, 10), SpAlgorithm::kDense);
}

// The engine's core determinism claim: the heap solver reproduces the dense
// scan bit for bit — dist, hops, parent AND settle order — on arbitrary
// connected and disconnected graphs, dense and sparse alike.
TEST(SpAlgorithm, SparseIsBitIdenticalToDense) {
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 5 + rng.uniform_index(45);
    const auto pts = UniformProcess().sample(n, Rectangle(), rng);
    const auto len = distance_matrix(pts);
    const double p = 0.05 + 0.5 * rng.uniform();
    Topology g = erdos_renyi_gnp(n, p, rng);
    if (trial % 3 != 0) connect_components(g, len);  // keep some disconnected
    ShortestPathTree dense, sparse;
    for (NodeId s = 0; s < n; ++s) {
      shortest_path_tree(g, len, s, dense, SpAlgorithm::kDense);
      shortest_path_tree(g, len, s, sparse, SpAlgorithm::kSparse);
      ASSERT_EQ(dense.order, sparse.order);
      ASSERT_EQ(dense.parent, sparse.parent);
      ASSERT_EQ(dense.hops, sparse.hops);
      for (NodeId t = 0; t < n; ++t) {
        // Exact equality, not near: both solvers add the same doubles in
        // the same order along every chosen path.
        ASSERT_EQ(dense.dist[t], sparse.dist[t]);
      }
    }
  }
}

TEST(SpAlgorithm, SparseHandlesEqualLengthTies) {
  // Unit lengths maximize (dist, hops) collisions; the composite key and
  // smallest-parent rule must still agree with the dense scan.
  Rng rng(11);
  const std::size_t n = 24;
  Matrix<double> len = Matrix<double>::square(n, 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    Topology g = erdos_renyi_gnp(n, 0.2, rng);
    connect_components(g, len);
    for (NodeId s = 0; s < n; ++s) {
      const auto dense = shortest_path_tree(g, len, s, SpAlgorithm::kDense);
      const auto sparse = shortest_path_tree(g, len, s, SpAlgorithm::kSparse);
      ASSERT_EQ(dense.order, sparse.order);
      ASSERT_EQ(dense.parent, sparse.parent);
    }
  }
}

// The blocked dense kernel must reproduce the original scalar scan bit for
// bit — dist, hops, parent AND settle order — including around zero-length
// edges, where the settled-skip-is-redundant argument does its work (a
// zero-length relaxation of a settled node ties on dist and must lose on
// hops, never updating).
TEST(SpAlgorithm, BlockedDenseIsBitIdenticalToReference) {
  Rng rng(13);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 5 + rng.uniform_index(90);
    const auto pts = UniformProcess().sample(n, Rectangle(), rng);
    auto len = distance_matrix(pts);
    if (trial % 2 == 0) {
      // Sprinkle zero-length edges to force (dist, hops, id) tie-breaks.
      for (std::size_t z = 0; z < n / 2; ++z) {
        const NodeId u = rng.uniform_index(n);
        const NodeId v = rng.uniform_index(n);
        len(u, v) = len(v, u) = 0.0;
      }
    }
    const double p = 0.05 + 0.5 * rng.uniform();
    Topology g = erdos_renyi_gnp(n, p, rng);
    if (trial % 3 != 0) connect_components(g, len);
    ShortestPathTree blocked, reference;
    for (NodeId s = 0; s < n; ++s) {
      shortest_path_tree(g, len, s, blocked, SpAlgorithm::kDense);
      shortest_path_tree_reference(g, len, s, reference);
      ASSERT_EQ(blocked.order, reference.order) << "n=" << n << " s=" << s;
      ASSERT_EQ(blocked.parent, reference.parent);
      ASSERT_EQ(blocked.hops, reference.hops);
      for (NodeId t = 0; t < n; ++t) {
        ASSERT_EQ(blocked.dist[t], reference.dist[t]);
      }
    }
  }
}

// Batched sweeps are a pure scheduling change: trees[i] must equal the
// per-source call bit for bit, for both solvers, at every block width —
// including partial final blocks and single-source batches.
TEST(SpAlgorithm, BatchMatchesPerSourceCalls) {
  Rng rng(17);
  for (const SpAlgorithm algo : {SpAlgorithm::kDense, SpAlgorithm::kSparse}) {
    for (int trial = 0; trial < 12; ++trial) {
      const std::size_t n = 3 + rng.uniform_index(40);
      const auto pts = UniformProcess().sample(n, Rectangle(), rng);
      const auto len = distance_matrix(pts);
      Topology g = erdos_renyi_gnp(n, 0.05 + 0.4 * rng.uniform(), rng);
      if (trial % 4 != 0) connect_components(g, len);

      std::vector<NodeId> sources(n);
      for (NodeId s = 0; s < n; ++s) sources[s] = s;
      std::vector<ShortestPathTree> batch(n);
      shortest_path_tree_batch(g, len, sources.data(), n, batch.data(), algo);

      ShortestPathTree single;
      for (NodeId s = 0; s < n; ++s) {
        shortest_path_tree(g, len, s, single, algo);
        ASSERT_EQ(batch[s].source, single.source);
        ASSERT_EQ(batch[s].order, single.order) << "n=" << n << " s=" << s;
        ASSERT_EQ(batch[s].parent, single.parent);
        ASSERT_EQ(batch[s].hops, single.hops);
        for (NodeId t = 0; t < n; ++t) {
          ASSERT_EQ(batch[s].dist[t], single.dist[t]);
        }
      }

      // A partial block (width < kSpSourceBlock) and repeated sources.
      const NodeId dup[3] = {0, n - 1, 0};
      ShortestPathTree trees[3];
      shortest_path_tree_batch(g, len, dup, 3, trees, algo);
      for (int i = 0; i < 3; ++i) {
        shortest_path_tree(g, len, dup[i], single, algo);
        ASSERT_EQ(trees[i].order, single.order);
        ASSERT_EQ(trees[i].dist, single.dist);
      }
    }
  }
}

TEST(SpAlgorithm, BatchValidatesInput) {
  Topology g(3);
  Matrix<double> len = Matrix<double>::square(3, 1.0);
  const NodeId bad[1] = {7};
  ShortestPathTree tree;
  EXPECT_THROW(shortest_path_tree_batch(g, len, bad, 1, &tree),
               std::out_of_range);
  Matrix<double> wrong(2, 3, 1.0);
  const NodeId ok[1] = {0};
  EXPECT_THROW(shortest_path_tree_batch(g, wrong, ok, 1, &tree),
               std::invalid_argument);
}

TEST(FloydWarshall, DisconnectedIsInfinite) {
  Topology g(3);
  g.add_edge(0, 1);
  Matrix<double> len = Matrix<double>::square(3, 1.0);
  const auto fw = floyd_warshall(g, len);
  EXPECT_EQ(fw(0, 2), kInf);
  EXPECT_DOUBLE_EQ(fw(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(fw(2, 2), 0.0);
}

TEST(AllPairsHops, MatchesBfs) {
  Topology g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 4);
  const auto hops = all_pairs_hops(g);
  EXPECT_EQ(hops(0, 3), 3);
  EXPECT_EQ(hops(4, 3), 4);
  EXPECT_EQ(hops(2, 2), 0);
  // Symmetry for undirected graphs.
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = 0; j < 5; ++j) EXPECT_EQ(hops(i, j), hops(j, i));
  }
}

void expect_tree_identical(const ShortestPathTree& got,
                           const ShortestPathTree& want) {
  ASSERT_EQ(got.order, want.order);
  ASSERT_EQ(got.parent, want.parent);
  ASSERT_EQ(got.hops, want.hops);
  ASSERT_EQ(got.dist.size(), want.dist.size());
  for (std::size_t t = 0; t < want.dist.size(); ++t) {
    // Exact equality: the incremental update must add the same doubles in
    // the same order as the fresh sweeps along every chosen path.
    ASSERT_EQ(got.dist[t], want.dist[t]) << "node " << t;
  }
}

// The tentpole property: across random graphs and random single/multi-edge
// flip sequences, incremental repair is bit-identical — dist, hops, parent,
// settle order — to fresh dense AND sparse sweeps. Trees are chained (each
// update starts from the previous incremental result), so any drift
// compounds and gets caught. Every third trial uses unit lengths to force
// (dist, hops) tie storms through the composite-key logic.
TEST(UpdateShortestPathTree, BitIdenticalToFreshSweepsUnderRandomFlips) {
  Rng rng(2024);
  SpUpdateWorkspace ws;
  ShortestPathTree dense, sparse;
  std::size_t zero_resettle_updates = 0;
  for (int trial = 0; trial < 110; ++trial) {
    const std::size_t n = 6 + rng.uniform_index(30);
    Matrix<double> len;
    if (trial % 3 == 0) {
      len = Matrix<double>::square(n, 1.0);
    } else {
      const auto pts = UniformProcess().sample(n, Rectangle(), rng);
      len = distance_matrix(pts);
    }
    Topology g = erdos_renyi_gnp(n, 0.08 + 0.3 * rng.uniform(), rng);
    connect_components(g, len);
    std::vector<ShortestPathTree> trees(n);
    for (NodeId s = 0; s < n; ++s) shortest_path_tree(g, len, s, trees[s]);

    for (int op = 0; op < 8; ++op) {
      std::vector<Edge> inserted, removed;
      const std::size_t flips = 1 + rng.uniform_index(3);
      for (std::size_t f = 0; f < flips; ++f) {
        const NodeId a = rng.uniform_index(n);
        const NodeId b = rng.uniform_index(n);
        if (a == b) continue;
        const Edge e = make_edge(a, b);
        // One flip per pair per op, so the diff lists stay consistent.
        if (std::find(inserted.begin(), inserted.end(), e) !=
                inserted.end() ||
            std::find(removed.begin(), removed.end(), e) != removed.end()) {
          continue;
        }
        if (g.remove_edge(a, b)) {
          removed.push_back(e);
        } else {
          g.add_edge(a, b);
          inserted.push_back(e);
        }
      }
      for (NodeId s = 0; s < n; ++s) {
        const SpUpdateResult r = update_shortest_path_tree(
            g, len, inserted, removed, trees[s], ws, 2 * n + 1);
        ASSERT_TRUE(r.applied);
        if (r.resettled == 0) ++zero_resettle_updates;
        shortest_path_tree(g, len, s, dense, SpAlgorithm::kDense);
        shortest_path_tree(g, len, s, sparse, SpAlgorithm::kSparse);
        expect_tree_identical(trees[s], dense);
        expect_tree_identical(trees[s], sparse);
      }
    }
  }
  // Many sources are untouched by a local flip — the engine's whole point.
  EXPECT_GT(zero_resettle_updates, 0u);
}

TEST(UpdateShortestPathTree, NonTreeEdgeRemovalTouchesNothing) {
  // Cycle 0-1-2-3-0, unit lengths, source 0: node 2 routes via parent 1
  // (smallest-id tie-break), so edge (2,3) is on no chosen path.
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  Matrix<double> len = Matrix<double>::square(4, 1.0);
  ShortestPathTree tree = shortest_path_tree(g, len, 0);
  ASSERT_EQ(tree.parent[2], 1u);
  const ShortestPathTree before = tree;
  g.remove_edge(2, 3);
  SpUpdateWorkspace ws;
  const SpUpdateResult r =
      update_shortest_path_tree(g, len, {}, {{2, 3}}, tree, ws, 9);
  EXPECT_TRUE(r.applied);
  EXPECT_EQ(r.resettled, 0u);
  expect_tree_identical(tree, before);
}

TEST(UpdateShortestPathTree, InsertWithEqualKeySmallerIdUpdatesParentOnly) {
  // 3 reaches 0 via 2 with key (2, 2); inserting (1, 3) offers the same key
  // from the smaller-id neighbour 1 — parent flips, nothing ripples.
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  Matrix<double> len = Matrix<double>::square(4, 1.0);
  ShortestPathTree tree = shortest_path_tree(g, len, 0);
  ASSERT_EQ(tree.parent[3], 2u);
  g.add_edge(1, 3);
  SpUpdateWorkspace ws;
  const SpUpdateResult r =
      update_shortest_path_tree(g, len, {{1, 3}}, {}, tree, ws, 9);
  EXPECT_TRUE(r.applied);
  EXPECT_EQ(r.resettled, 0u);
  EXPECT_EQ(tree.parent[3], 1u);
  expect_tree_identical(tree, shortest_path_tree(g, len, 0));
}

TEST(UpdateShortestPathTree, DeleteDisconnectsSubtree) {
  // Removing the bridge 1-2 of the path 0-1-2-3 orphans {2, 3} for good.
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  Matrix<double> len = Matrix<double>::square(4, 1.0);
  ShortestPathTree tree = shortest_path_tree(g, len, 0);
  g.remove_edge(1, 2);
  SpUpdateWorkspace ws;
  const SpUpdateResult r =
      update_shortest_path_tree(g, len, {}, {{1, 2}}, tree, ws, 9);
  EXPECT_TRUE(r.applied);
  EXPECT_EQ(r.resettled, 2u);
  EXPECT_EQ(tree.dist[2], kInf);
  EXPECT_EQ(tree.dist[3], kInf);
  expect_tree_identical(tree, shortest_path_tree(g, len, 0));
}

TEST(UpdateShortestPathTree, CutoffSignalsFallback) {
  // max_resettled = 0 means any touched label aborts the update.
  Topology g(5);
  for (NodeId v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1);
  Matrix<double> len = Matrix<double>::square(5, 1.0);
  ShortestPathTree tree = shortest_path_tree(g, len, 0);
  g.remove_edge(2, 3);
  SpUpdateWorkspace ws;
  const SpUpdateResult r =
      update_shortest_path_tree(g, len, {}, {{2, 3}}, tree, ws, 0);
  EXPECT_FALSE(r.applied);
  EXPECT_GT(r.resettled, 0u);
}

}  // namespace
}  // namespace cold
