#include "graph/connectivity.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "util/rng.h"
#include "zoo/zoo.h"

namespace cold {
namespace {

Topology path_graph(std::size_t n) {
  Topology g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(Bridges, EveryTreeEdgeIsABridge) {
  const Topology p = path_graph(6);
  EXPECT_EQ(find_bridges(p).size(), 5u);
  const Topology s = Topology::star(7, 0);
  EXPECT_EQ(find_bridges(s).size(), 6u);
}

TEST(Bridges, CycleHasNone) {
  EXPECT_TRUE(find_bridges(zoo_ring(8)).empty());
  EXPECT_TRUE(find_bridges(Topology::complete(5)).empty());
}

TEST(Bridges, BridgeBetweenCycles) {
  // Two triangles joined by one edge: exactly that edge is a bridge.
  Topology g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(3, 5);
  g.add_edge(2, 3);
  const auto bridges = find_bridges(g);
  ASSERT_EQ(bridges.size(), 1u);
  EXPECT_EQ(bridges.front(), (Edge{2, 3}));
}

TEST(Bridges, DisconnectedGraphHandled) {
  Topology g(5);
  g.add_edge(0, 1);
  g.add_edge(3, 4);
  EXPECT_EQ(find_bridges(g).size(), 2u);
}

TEST(ArticulationPoints, PathInterior) {
  const auto aps = find_articulation_points(path_graph(5));
  ASSERT_EQ(aps.size(), 3u);  // nodes 1, 2, 3
  EXPECT_EQ(aps[0], 1u);
  EXPECT_EQ(aps[2], 3u);
}

TEST(ArticulationPoints, StarCentre) {
  const auto aps = find_articulation_points(Topology::star(6, 2));
  ASSERT_EQ(aps.size(), 1u);
  EXPECT_EQ(aps.front(), 2u);
}

TEST(ArticulationPoints, BiconnectedGraphHasNone) {
  EXPECT_TRUE(find_articulation_points(zoo_ring(7)).empty());
  EXPECT_TRUE(find_articulation_points(Topology::complete(5)).empty());
}

TEST(ArticulationPoints, JoinedTriangles) {
  Topology g(5);  // two triangles sharing node 2
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(2, 4);
  const auto aps = find_articulation_points(g);
  ASSERT_EQ(aps.size(), 1u);
  EXPECT_EQ(aps.front(), 2u);
}

TEST(EdgeConnectivity, KnownValues) {
  EXPECT_EQ(edge_connectivity(path_graph(5)), 1u);
  EXPECT_EQ(edge_connectivity(zoo_ring(6)), 2u);
  EXPECT_EQ(edge_connectivity(Topology::complete(5)), 4u);
  EXPECT_EQ(edge_connectivity(zoo_ladder(8)), 2u);
}

TEST(EdgeConnectivity, DegenerateCases) {
  EXPECT_EQ(edge_connectivity(Topology(1)), 0u);
  Topology disconnected(4);
  disconnected.add_edge(0, 1);
  EXPECT_EQ(edge_connectivity(disconnected), 0u);
}

TEST(EdgeConnectivity, BoundedByMinDegree) {
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    Topology g(12);
    for (NodeId i = 0; i < 12; ++i) {
      for (NodeId j = i + 1; j < 12; ++j) {
        if (rng.bernoulli(0.35)) g.add_edge(i, j);
      }
    }
    if (!is_connected(g)) continue;
    int min_deg = 12;
    for (NodeId v = 0; v < 12; ++v) min_deg = std::min(min_deg, g.degree(v));
    EXPECT_LE(edge_connectivity(g), static_cast<std::size_t>(min_deg));
    EXPECT_GE(edge_connectivity(g), 1u);
  }
}

TEST(SurvivesFailures, MatchesBridgeSemantics) {
  const Topology g = zoo_ring(6);
  EXPECT_TRUE(survives_failures(g, {Edge{0, 1}}));
  EXPECT_FALSE(survives_failures(g, {Edge{0, 1}, Edge{3, 4}}));
  const Topology p = path_graph(4);
  EXPECT_FALSE(survives_failures(p, {Edge{1, 2}}));
}

TEST(AnalyzeResilience, TreeVsRing) {
  const ResilienceReport tree = analyze_resilience(path_graph(6));
  EXPECT_EQ(tree.bridges, 5u);
  EXPECT_EQ(tree.edge_connectivity, 1u);
  EXPECT_DOUBLE_EQ(tree.single_link_failure_disconnect_rate, 1.0);

  const ResilienceReport ring = analyze_resilience(zoo_ring(6));
  EXPECT_EQ(ring.bridges, 0u);
  EXPECT_EQ(ring.edge_connectivity, 2u);
  EXPECT_DOUBLE_EQ(ring.single_link_failure_disconnect_rate, 0.0);
}

TEST(AnalyzeResilience, BridgesConsistentWithEdgeConnectivity) {
  // Any graph with a bridge has edge connectivity exactly 1.
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    Topology g(10);
    for (NodeId i = 0; i < 10; ++i) {
      for (NodeId j = i + 1; j < 10; ++j) {
        if (rng.bernoulli(0.25)) g.add_edge(i, j);
      }
    }
    if (!is_connected(g)) continue;
    const ResilienceReport r = analyze_resilience(g);
    if (r.bridges > 0) {
      EXPECT_EQ(r.edge_connectivity, 1u);
    } else {
      EXPECT_GE(r.edge_connectivity, 2u);
    }
  }
}

}  // namespace
}  // namespace cold
