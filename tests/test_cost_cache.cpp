#include "cost/cost_cache.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/context.h"
#include "cost/evaluator.h"
#include "ga/genetic.h"
#include "util/rng.h"

namespace cold {
namespace {

CostBreakdown feasible_breakdown(double existence) {
  CostBreakdown b;
  b.feasible = true;
  b.existence = existence;
  return b;
}

Context small_context(std::size_t n, std::uint64_t seed) {
  ContextConfig cfg;
  cfg.num_pops = n;
  Rng rng(seed);
  return generate_context(cfg, rng);
}

const CostParams kCosts{10.0, 1.0, 4e-4, 10.0};

TEST(CostCache, MissThenHitWithCounters) {
  CostCache cache(EvalCacheConfig{true, 64});
  const Topology g = Topology::from_edges(4, {{0, 1}, {1, 2}});
  EXPECT_EQ(cache.find(g), nullptr);
  cache.insert(g, feasible_breakdown(20.0));
  const CostBreakdown* hit = cache.find(g);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->feasible);
  EXPECT_DOUBLE_EQ(hit->existence, 20.0);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().inserts, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CostCache, VerificationRejectsEqualFingerprintDifferentGraph) {
  // Same edge set on different node counts XORs to the same fingerprint;
  // full verification must still reject the lookup.
  CostCache cache(EvalCacheConfig{true, 64});
  const Topology a = Topology::from_edges(4, {{0, 1}});
  const Topology b = Topology::from_edges(5, {{0, 1}});
  ASSERT_EQ(a.fingerprint(), b.fingerprint());
  cache.insert(a, feasible_breakdown(1.0));
  EXPECT_EQ(cache.find(b), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_NE(cache.find(a), nullptr);
}

TEST(CostCache, OverwritesInPlace) {
  CostCache cache(EvalCacheConfig{true, 64});
  const Topology g = Topology::from_edges(3, {{0, 1}});
  cache.insert(g, feasible_breakdown(1.0));
  cache.insert(g, feasible_breakdown(2.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().inserts, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_DOUBLE_EQ(cache.find(g)->existence, 2.0);
}

TEST(CostCache, LruEvictsLeastRecentlyUsed) {
  // Capacity 4 = exactly one 4-way set, so all entries compete and the LRU
  // policy is fully observable.
  CostCache cache(EvalCacheConfig{true, 4});
  ASSERT_EQ(cache.capacity(), 4u);
  std::vector<Topology> graphs;
  for (NodeId v = 1; v <= 5; ++v) {
    graphs.push_back(Topology::from_edges(6, {{0, v}}));
  }
  for (int i = 0; i < 4; ++i) {
    cache.insert(graphs[i], feasible_breakdown(i));
  }
  ASSERT_NE(cache.find(graphs[0]), nullptr);  // freshen graph 0
  cache.insert(graphs[4], feasible_breakdown(4.0));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.find(graphs[1]), nullptr);  // the LRU entry was evicted
  EXPECT_NE(cache.find(graphs[0]), nullptr);
  EXPECT_NE(cache.find(graphs[2]), nullptr);
  EXPECT_NE(cache.find(graphs[3]), nullptr);
  EXPECT_NE(cache.find(graphs[4]), nullptr);
}

TEST(EvaluatorCache, CachedResultsAreBitIdentical) {
  const Context ctx = small_context(12, 1);
  EvalEngineConfig engine;
  engine.cache.enabled = true;
  Evaluator cached(ctx.distances, ctx.traffic, kCosts, engine);
  Evaluator plain(ctx.distances, ctx.traffic, kCosts);

  Rng rng(2);
  Topology g = Topology::complete(12);
  for (int step = 0; step < 30; ++step) {
    // A random walk that revisits topologies: flip one random edge, then
    // flip it back every other step.
    const NodeId u = rng.uniform_index(12);
    const NodeId v = (u + 1 + rng.uniform_index(11)) % 12;
    g.set_edge(u, v, !g.has_edge(u, v));
    const CostBreakdown want = plain.breakdown(g);
    const CostBreakdown got = cached.breakdown(g);
    ASSERT_EQ(got.feasible, want.feasible);
    ASSERT_EQ(got.total(), want.total());  // exact, no tolerance
    ASSERT_EQ(got.existence, want.existence);
    ASSERT_EQ(got.bandwidth, want.bandwidth);
    // Evaluate twice more so later iterations hit the cache.
    ASSERT_EQ(cached.breakdown(g).total(), want.total());
    ASSERT_EQ(cached.breakdown(g).total(), want.total());
  }
  const EvalCacheStats stats = cached.cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.hits + stats.misses, cached.evaluations());
}

TEST(EvaluatorCache, HitsStillCountAsEvaluations) {
  const Context ctx = small_context(8, 3);
  EvalEngineConfig engine;
  engine.cache.enabled = true;
  Evaluator eval(ctx.distances, ctx.traffic, kCosts, engine);
  const Topology g = Topology::complete(8);
  eval.cost(g);
  eval.cost(g);
  eval.cost(g);
  EXPECT_EQ(eval.evaluations(), 3u);  // budgets see hits and misses alike
  EXPECT_EQ(eval.cache_stats().hits, 2u);
  EXPECT_EQ(eval.cache_stats().misses, 1u);
}

TEST(EvaluatorCache, InfeasibleResultsAreCachedToo) {
  const Context ctx = small_context(6, 4);
  EvalEngineConfig engine;
  engine.cache.enabled = true;
  Evaluator eval(ctx.distances, ctx.traffic, kCosts, engine);
  const Topology disconnected = Topology::from_edges(6, {{0, 1}, {2, 3}});
  EXPECT_FALSE(eval.breakdown(disconnected).feasible);
  EXPECT_FALSE(eval.breakdown(disconnected).feasible);
  EXPECT_EQ(eval.cache_stats().hits, 1u);
}

TEST(EvaluatorCache, CloneMergeFoldsCacheStats) {
  const Context ctx = small_context(8, 5);
  EvalEngineConfig engine;
  engine.cache.enabled = true;
  Evaluator eval(ctx.distances, ctx.traffic, kCosts, engine);
  const Topology g = Topology::complete(8);

  Evaluator worker = eval.clone();
  worker.cost(g);  // miss in the worker's private cache
  worker.cost(g);  // hit
  EXPECT_EQ(worker.cache_stats().hits, 1u);

  eval.cost(g);  // the original's own cache is independent: miss
  EXPECT_EQ(eval.cache_stats().misses, 1u);
  EXPECT_EQ(eval.cache_stats().hits, 0u);

  eval.merge_stats(worker);
  EXPECT_EQ(eval.evaluations(), 3u);
  EXPECT_EQ(eval.cache_stats().hits, 1u);
  EXPECT_EQ(eval.cache_stats().misses, 2u);
  // Transfer semantics: merging is idempotent per unit of work.
  EXPECT_EQ(worker.cache_stats(), EvalCacheStats{});
  eval.merge_stats(worker);
  EXPECT_EQ(eval.cache_stats().hits, 1u);
  EXPECT_EQ(eval.evaluations(), 3u);
}

TEST(EvaluatorLoads, LastLoadsRequiresFreshFeasibleRouting) {
  const Context ctx = small_context(6, 6);
  EvalEngineConfig engine;
  engine.cache.enabled = true;
  Evaluator eval(ctx.distances, ctx.traffic, kCosts, engine);
  EXPECT_FALSE(eval.has_last_loads());
  EXPECT_THROW(eval.last_loads(), std::logic_error);  // nothing evaluated yet

  const Topology ring = Topology::from_edges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  ASSERT_TRUE(eval.breakdown(ring).feasible);
  EXPECT_TRUE(eval.has_last_loads());
  EXPECT_EQ(eval.last_loads().rows(), 6u);

  // An infeasible evaluation leaves partial loads: they must not be served.
  const Topology disconnected = Topology::from_edges(6, {{0, 1}});
  ASSERT_FALSE(eval.breakdown(disconnected).feasible);
  EXPECT_FALSE(eval.has_last_loads());
  EXPECT_THROW(eval.last_loads(), std::logic_error);

  ASSERT_TRUE(eval.breakdown(ring).feasible);  // cache hit: routing skipped
  EXPECT_FALSE(eval.has_last_loads());
  EXPECT_THROW(eval.last_loads(), std::logic_error);
}

// The engine's headline guarantee: the GA trajectory is invariant under
// every {cache, thread count, shortest-path solver} combination.
TEST(GaDeterminism, HistoryInvariantAcrossEngineSettings) {
  const Context ctx = small_context(16, 7);
  const auto run = [&ctx](bool cache, std::size_t threads, SpAlgorithm algo) {
    EvalEngineConfig engine;
    engine.cache.enabled = cache;
    engine.sp_algorithm = algo;
    Evaluator eval(ctx.distances, ctx.traffic, kCosts, engine);
    GaRunOptions options;
    options.config.population = 16;
    options.config.generations = 6;
    options.config.parallel.num_threads = threads;
    Rng rng(9);
    return run_ga(eval, rng, options);
  };

  const GaResult reference = run(false, 1, SpAlgorithm::kDense);
  for (const bool cache : {false, true}) {
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      for (const SpAlgorithm algo :
           {SpAlgorithm::kDense, SpAlgorithm::kSparse, SpAlgorithm::kAuto}) {
        const GaResult r = run(cache, threads, algo);
        ASSERT_EQ(r.best_cost_history, reference.best_cost_history);
        ASSERT_EQ(r.best_cost, reference.best_cost);
        ASSERT_TRUE(r.best == reference.best);
        ASSERT_EQ(r.final_costs, reference.final_costs);
        ASSERT_EQ(r.evaluations, reference.evaluations);
      }
    }
  }
}

}  // namespace
}  // namespace cold
