#include "heuristics/local_search.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/context.h"
#include "ga/objective.h"
#include "graph/algorithms.h"
#include "heuristics/brute_force.h"

namespace cold {
namespace {

Evaluator make_evaluator(std::size_t n, CostParams params,
                         std::uint64_t seed = 1) {
  ContextConfig cfg;
  cfg.num_pops = n;
  Rng rng(seed);
  const Context ctx = generate_context(cfg, rng);
  return Evaluator(ctx.distances, ctx.traffic, params);
}

TEST(HillClimb, ReachesLocalOptimum) {
  Evaluator eval = make_evaluator(10, CostParams{10, 1, 4e-4, 0});
  EvaluatorObjective obj(eval);
  const LocalSearchResult r = hill_climb(obj, HillClimbConfig{});
  EXPECT_TRUE(is_connected(r.best));
  EXPECT_TRUE(std::isfinite(r.best_cost));
  // Local optimality: no single flip improves.
  for (NodeId i = 0; i < 10; ++i) {
    for (NodeId j = i + 1; j < 10; ++j) {
      Topology trial = r.best;
      trial.set_edge(i, j, !trial.has_edge(i, j));
      EXPECT_GE(eval.cost(trial), r.best_cost - 1e-9);
    }
  }
}

TEST(HillClimb, NearOptimalOnTinyInstances) {
  // Hill climbing is a single-point search: it lands in a local optimum,
  // which on 5-node instances stays within a modest factor of the global
  // one. (Its regime-dependent gaps vs the GA are exactly what the
  // ablation_optimizers bench quantifies.)
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Evaluator eval = make_evaluator(5, CostParams{10, 1, 1e-3, 5}, seed);
    const BruteForceResult exact = brute_force_optimum(eval);
    EvaluatorObjective obj(eval);
    const LocalSearchResult r = hill_climb(obj, HillClimbConfig{});
    EXPECT_LE(r.best_cost, exact.cost * 1.25) << seed;
    EXPECT_GE(r.best_cost, exact.cost - 1e-9) << seed;
  }
}

TEST(HillClimb, FirstImprovementAlsoTerminates) {
  Evaluator eval = make_evaluator(8, CostParams{10, 1, 1e-3, 0});
  EvaluatorObjective obj(eval);
  HillClimbConfig cfg;
  cfg.steepest = false;
  const LocalSearchResult r = hill_climb(obj, cfg);
  EXPECT_TRUE(is_connected(r.best));
  EXPECT_GT(r.evaluations, 0u);
}

TEST(HillClimb, CustomInitialPoint) {
  Evaluator eval = make_evaluator(8, CostParams{10, 1, 1e-4, 0});
  EvaluatorObjective obj(eval);
  HillClimbConfig cfg;
  cfg.initial = Topology::complete(8);
  const LocalSearchResult r = hill_climb(obj, cfg);
  // From a clique at low k2, search must strip links.
  EXPECT_LT(r.best.num_edges(), 28u);
  HillClimbConfig bad;
  bad.initial = Topology(5);
  EXPECT_THROW(hill_climb(obj, bad), std::invalid_argument);
}

TEST(Annealing, ProducesValidSolution) {
  Evaluator eval = make_evaluator(10, CostParams{10, 1, 4e-4, 10});
  EvaluatorObjective obj(eval);
  Rng rng(1);
  AnnealingConfig cfg;
  cfg.iterations = 4000;
  const LocalSearchResult r = simulated_annealing(obj, cfg, rng);
  EXPECT_TRUE(is_connected(r.best));
  EXPECT_TRUE(std::isfinite(r.best_cost));
  EXPECT_NEAR(r.best_cost, eval.cost(r.best), 1e-9);
}

TEST(Annealing, Deterministic) {
  Evaluator eval1 = make_evaluator(8, CostParams{10, 1, 4e-4, 0});
  Evaluator eval2 = make_evaluator(8, CostParams{10, 1, 4e-4, 0});
  EvaluatorObjective o1(eval1), o2(eval2);
  Rng rng1(9), rng2(9);
  AnnealingConfig cfg;
  cfg.iterations = 1500;
  const LocalSearchResult a = simulated_annealing(o1, cfg, rng1);
  const LocalSearchResult b = simulated_annealing(o2, cfg, rng2);
  EXPECT_TRUE(a.best == b.best);
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
}

TEST(Annealing, NeverWorseThanItsStartingPoint) {
  Evaluator eval = make_evaluator(10, CostParams{10, 1, 4e-4, 10});
  const double mst_cost = eval.cost(minimum_spanning_tree(eval.lengths()));
  EvaluatorObjective obj(eval);
  Rng rng(3);
  AnnealingConfig cfg;
  cfg.iterations = 3000;
  const LocalSearchResult r = simulated_annealing(obj, cfg, rng);
  EXPECT_LE(r.best_cost, mst_cost + 1e-9);
}

TEST(Annealing, BeatsPureHillClimbOnHubInstances) {
  // High-k3 landscapes have deep local optima; annealing should do at
  // least as well as hill climbing given a comparable budget.
  Evaluator eval_hc = make_evaluator(12, CostParams{10, 1, 1e-4, 500}, 4);
  Evaluator eval_sa = make_evaluator(12, CostParams{10, 1, 1e-4, 500}, 4);
  EvaluatorObjective o_hc(eval_hc), o_sa(eval_sa);
  const LocalSearchResult hc = hill_climb(o_hc, HillClimbConfig{});
  Rng rng(4);
  AnnealingConfig cfg;
  cfg.iterations = 8000;
  const LocalSearchResult sa = simulated_annealing(o_sa, cfg, rng);
  EXPECT_LE(sa.best_cost, hc.best_cost * 1.1);
}

TEST(Annealing, MoveAccounting) {
  Evaluator eval = make_evaluator(8, CostParams{10, 1, 4e-4, 0});
  EvaluatorObjective obj(eval);
  Rng rng(5);
  AnnealingConfig cfg;
  cfg.iterations = 1000;
  const LocalSearchResult r = simulated_annealing(obj, cfg, rng);
  EXPECT_GT(r.moves_accepted, 0u);
  EXPECT_GE(r.evaluations, r.moves_accepted);
}

}  // namespace
}  // namespace cold
