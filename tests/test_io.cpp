#include <gtest/gtest.h>

#include <sstream>

#include "io/dot.h"
#include "io/edgelist.h"
#include "io/graphml.h"
#include "io/json.h"
#include "net/network.h"
#include "traffic/gravity.h"

namespace cold {
namespace {

Network make_test_network() {
  const std::vector<Point> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const std::vector<double> pops{10, 20, 30, 40};
  return build_network(g, pts, pops, gravity_matrix(pops), 1.5);
}

TEST(Dot, TopologyExportContainsEdges) {
  Topology g(3);
  g.add_edge(0, 2);
  std::ostringstream os;
  write_dot(os, g);
  EXPECT_NE(os.str().find("n0 -- n2"), std::string::npos);
  EXPECT_NE(os.str().find("graph cold"), std::string::npos);
}

TEST(Dot, NetworkExportHasPositionsAndCapacities) {
  std::ostringstream os;
  write_dot(os, make_test_network());
  const std::string out = os.str();
  EXPECT_NE(out.find("pos=\""), std::string::npos);
  EXPECT_NE(out.find("cap="), std::string::npos);
  EXPECT_NE(out.find("lightblue"), std::string::npos);  // core PoPs coloured
}

TEST(Dot, OptionsSuppressAttributes) {
  DotOptions opt;
  opt.include_positions = false;
  opt.include_capacities = false;
  std::ostringstream os;
  write_dot(os, make_test_network(), opt);
  EXPECT_EQ(os.str().find("pos=\""), std::string::npos);
  EXPECT_EQ(os.str().find("cap="), std::string::npos);
}

TEST(Json, RoundTripPreservesNetwork) {
  const Network net = make_test_network();
  const std::string json = network_to_json(net);
  const Network back = network_from_json(json);
  EXPECT_TRUE(back.topology == net.topology);
  EXPECT_EQ(back.num_links(), net.num_links());
  EXPECT_DOUBLE_EQ(back.overprovision, net.overprovision);
  for (std::size_t i = 0; i < net.links.size(); ++i) {
    EXPECT_NEAR(back.links[i].load, net.links[i].load, 1e-9);
    EXPECT_NEAR(back.links[i].capacity, net.links[i].capacity, 1e-9);
  }
  for (std::size_t v = 0; v < net.num_pops(); ++v) {
    EXPECT_DOUBLE_EQ(back.locations[v].x, net.locations[v].x);
    EXPECT_DOUBLE_EQ(back.populations[v], net.populations[v]);
  }
  EXPECT_NO_THROW(validate_network(back));
}

TEST(Json, StreamRoundTrip) {
  const Network net = make_test_network();
  std::stringstream ss;
  write_network_json(ss, net);
  const Network back = read_network_json(ss);
  EXPECT_TRUE(back.topology == net.topology);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(network_from_json("{"), std::runtime_error);
  EXPECT_THROW(network_from_json("[1, 2"), std::runtime_error);
  EXPECT_THROW(network_from_json("{\"num_pops\": 2}"), std::runtime_error);
  EXPECT_THROW(network_from_json("not json"), std::runtime_error);
  EXPECT_THROW(network_from_json("{} trailing"), std::runtime_error);
}

TEST(Json, RejectsSemanticViolations) {
  // Valid JSON describing a disconnected network must be rejected by
  // build_network's invariants.
  const std::string json = R"({
    "num_pops": 3,
    "overprovision": 1.0,
    "pops": [
      {"id": 0, "x": 0, "y": 0, "population": 1},
      {"id": 1, "x": 1, "y": 0, "population": 1},
      {"id": 2, "x": 2, "y": 0, "population": 1}
    ],
    "links": [ {"u": 0, "v": 1, "length": 1, "load": 0, "capacity": 0} ],
    "traffic": [[0,1,1],[1,0,1],[1,1,0]]
  })";
  EXPECT_THROW(network_from_json(json), std::invalid_argument);
}

TEST(GraphML, ContainsNodesEdgesAndKeys) {
  std::ostringstream os;
  write_graphml(os, make_test_network(), "test");
  const std::string out = os.str();
  EXPECT_NE(out.find("<graphml"), std::string::npos);
  EXPECT_NE(out.find("<node id=\"n3\">"), std::string::npos);
  EXPECT_NE(out.find("source=\"n0\""), std::string::npos);
  EXPECT_NE(out.find("attr.name=\"capacity\""), std::string::npos);
  EXPECT_NE(out.find("graph id=\"test\""), std::string::npos);
}

TEST(EdgeList, ParsesNodesAndEdges) {
  const EdgeListData data = edge_list_from_string(
      "# a comment\n"
      "node 0 0.0 0.0 5.0\n"
      "node 1 1.0 0.0\n"   // population optional
      "node 2 0.5 1.0 2.5\n"
      "edge 0 1\n"
      "edge 1 2 # trailing comment\n");
  EXPECT_EQ(data.topology.num_nodes(), 3u);
  EXPECT_EQ(data.topology.num_edges(), 2u);
  EXPECT_TRUE(data.topology.has_edge(1, 2));
  EXPECT_DOUBLE_EQ(data.populations[0], 5.0);
  EXPECT_DOUBLE_EQ(data.populations[1], 1.0);  // default
  EXPECT_DOUBLE_EQ(data.locations[2].y, 1.0);
}

TEST(EdgeList, RoundTrips) {
  const EdgeListData data = edge_list_from_string(
      "node 0 0 0 3\nnode 1 1 1 4\nedge 0 1\n");
  std::ostringstream os;
  write_edge_list(os, data);
  const EdgeListData back = edge_list_from_string(os.str());
  EXPECT_TRUE(back.topology == data.topology);
  EXPECT_DOUBLE_EQ(back.populations[1], 4.0);
}

TEST(EdgeList, ReportsErrorsWithLineNumbers) {
  try {
    edge_list_from_string("node 0 0 0\nbogus record\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(edge_list_from_string("edge 0 1\n"), std::runtime_error);
  EXPECT_THROW(edge_list_from_string("node 0 0 0\nnode 0 1 1\nedge 0 0\n"),
               std::runtime_error);
  EXPECT_THROW(edge_list_from_string("node 5 0 0\n"), std::runtime_error);
}


TEST(GraphMLRead, RoundTripsOwnOutput) {
  const Network net = make_test_network();
  std::ostringstream os;
  write_graphml(os, net, "rt");
  const GraphMlData back = graphml_from_string(os.str());
  EXPECT_TRUE(back.topology == net.topology);
  EXPECT_TRUE(back.has_locations);
  for (std::size_t v = 0; v < net.num_pops(); ++v) {
    EXPECT_DOUBLE_EQ(back.locations[v].x, net.locations[v].x);
    EXPECT_DOUBLE_EQ(back.populations[v], net.populations[v]);
  }
}

TEST(GraphMLRead, TopologyZooConventions) {
  // Zoo files use string node ids, Longitude/Latitude keys, label data and
  // self-closing tags; all must parse.
  const std::string doc = R"(<?xml version="1.0"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key id="d0" for="node" attr.name="Longitude" attr.type="double"/>
  <key id="d1" for="node" attr.name="Latitude" attr.type="double"/>
  <key id="d2" for="node" attr.name="label" attr.type="string"/>
  <graph edgedefault="undirected">
    <!-- a comment -->
    <node id="Adelaide">
      <data key="d0">138.6</data>
      <data key="d1">-34.9</data>
      <data key="d2">Adelaide &amp; suburbs</data>
    </node>
    <node id="Sydney">
      <data key="d0">151.2</data>
      <data key="d1">-33.9</data>
    </node>
    <node id="Perth"/>
    <edge source="Adelaide" target="Sydney"/>
    <edge source="Sydney" target="Perth"/>
  </graph>
</graphml>)";
  const GraphMlData data = graphml_from_string(doc);
  EXPECT_EQ(data.topology.num_nodes(), 3u);
  EXPECT_EQ(data.topology.num_edges(), 2u);
  EXPECT_TRUE(data.has_locations);
  EXPECT_DOUBLE_EQ(data.locations[0].x, 138.6);
  EXPECT_DOUBLE_EQ(data.locations[0].y, -34.9);
  EXPECT_TRUE(data.topology.has_edge(0, 1));
  EXPECT_TRUE(data.topology.has_edge(1, 2));
}

TEST(GraphMLRead, RejectsMalformedDocuments) {
  EXPECT_THROW(graphml_from_string("<graphml><graph><node/></graph>"),
               std::runtime_error);  // node without id
  EXPECT_THROW(graphml_from_string("just text"), std::runtime_error);
  EXPECT_THROW(graphml_from_string(
                   "<graphml><graph><edge source=\"a\" target=\"b\"/>"
                   "</graph></graphml>"),
               std::runtime_error);  // endpoints not declared
  EXPECT_THROW(
      graphml_from_string("<graphml><graph><node id=\"a\"/><node id=\"a\"/>"
                          "</graph></graphml>"),
      std::runtime_error);  // duplicate id
}

TEST(GraphMLRead, SelfLoopsDroppedDefaultsApplied) {
  const std::string doc =
      "<graphml><graph><node id=\"a\"/><node id=\"b\"/>"
      "<edge source=\"a\" target=\"a\"/><edge source=\"a\" target=\"b\"/>"
      "</graph></graphml>";
  const GraphMlData data = graphml_from_string(doc);
  EXPECT_EQ(data.topology.num_edges(), 1u);
  EXPECT_FALSE(data.has_locations);
  EXPECT_DOUBLE_EQ(data.populations[0], 1.0);
}

}  // namespace
}  // namespace cold
