#include "router/expansion.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.h"
#include "traffic/gravity.h"

namespace cold {
namespace {

Network star_network() {
  // Hub at centre, three leaves.
  const std::vector<Point> pts{{0.5, 0.5}, {0, 0}, {1, 0}, {0.5, 1}};
  Topology g = Topology::star(4, 0);
  const std::vector<double> pops{50, 10, 10, 10};
  return build_network(g, pts, pops, gravity_matrix(pops));
}

TEST(Expansion, CorePopsGetRedundantCores) {
  const Network net = star_network();
  const RouterNetwork rn = expand_to_router_level(net);
  // PoP 0 has degree 3 (core): 2 core routers. Leaves: 1 each.
  int cores_pop0 = 0, cores_pop1 = 0;
  for (const Router& r : rn.routers) {
    if (r.role != RouterRole::kCore) continue;
    if (r.pop == 0) ++cores_pop0;
    if (r.pop == 1) ++cores_pop1;
  }
  EXPECT_EQ(cores_pop0, 2);
  EXPECT_EQ(cores_pop1, 1);
  EXPECT_NO_THROW(validate_router_network(rn, net));
}

TEST(Expansion, AccessRoutersScaleWithTraffic) {
  const Network net = star_network();
  ExpansionConfig big, small;
  big.access_router_capacity = 1e9;   // one access router everywhere
  small.access_router_capacity = 100.0;
  const RouterNetwork rn_big = expand_to_router_level(net, big);
  const RouterNetwork rn_small = expand_to_router_level(net, small);
  EXPECT_GT(rn_small.num_routers(), rn_big.num_routers());
  // PoP 0 carries the most traffic, so it gets the most access routers.
  auto access_count = [](const RouterNetwork& rn, std::size_t pop) {
    int count = 0;
    for (const Router& r : rn.routers) {
      if (r.pop == pop && r.role == RouterRole::kAccess) ++count;
    }
    return count;
  };
  EXPECT_GE(access_count(rn_small, 0), access_count(rn_small, 1));
}

TEST(Expansion, MaxAccessRoutersCaps) {
  const Network net = star_network();
  ExpansionConfig cfg;
  cfg.access_router_capacity = 0.001;  // would demand thousands
  cfg.max_access_routers = 3;
  const RouterNetwork rn = expand_to_router_level(net, cfg);
  for (std::size_t p = 0; p < net.num_pops(); ++p) {
    int access = 0;
    for (const Router& r : rn.routers) {
      if (r.pop == p && r.role == RouterRole::kAccess) ++access;
    }
    EXPECT_LE(access, 3);
  }
}

TEST(Expansion, RouterGraphIsConnected) {
  const Network net = star_network();
  const RouterNetwork rn = expand_to_router_level(net);
  EXPECT_TRUE(is_connected(rn.graph));
}

TEST(Expansion, InterPopLinksInheritCapacity) {
  const Network net = star_network();
  const RouterNetwork rn = expand_to_router_level(net);
  for (const RouterLink& rl : rn.links) {
    if (!rl.inter_pop) continue;
    const std::size_t pa = rn.routers[rl.a].pop;
    const std::size_t pb = rn.routers[rl.b].pop;
    EXPECT_DOUBLE_EQ(rl.capacity, net.link_capacity(pa, pb));
  }
}

TEST(Expansion, DualStarWiring) {
  const Network net = star_network();
  const RouterNetwork rn = expand_to_router_level(net);
  // Every access router connects to all co-located cores.
  for (std::size_t r = 0; r < rn.routers.size(); ++r) {
    if (rn.routers[r].role != RouterRole::kAccess) continue;
    for (std::size_t c = 0; c < rn.routers.size(); ++c) {
      if (rn.routers[c].role == RouterRole::kCore &&
          rn.routers[c].pop == rn.routers[r].pop) {
        EXPECT_TRUE(rn.graph.has_edge(r, c));
      }
    }
  }
}

TEST(Expansion, RoutersOfPop) {
  const Network net = star_network();
  const RouterNetwork rn = expand_to_router_level(net);
  std::size_t total = 0;
  for (std::size_t p = 0; p < net.num_pops(); ++p) {
    total += rn.routers_of_pop(p).size();
  }
  EXPECT_EQ(total, rn.num_routers());
}

TEST(Expansion, NamesAreUnique) {
  const Network net = star_network();
  const RouterNetwork rn = expand_to_router_level(net);
  std::set<std::string> names;
  for (const Router& r : rn.routers) names.insert(r.name);
  EXPECT_EQ(names.size(), rn.num_routers());
}

TEST(Expansion, ValidatesConfig) {
  const Network net = star_network();
  ExpansionConfig bad;
  bad.access_router_capacity = 0.0;
  EXPECT_THROW(expand_to_router_level(net, bad), std::invalid_argument);
  ExpansionConfig bad2;
  bad2.core_routers_per_hub = 0;
  EXPECT_THROW(expand_to_router_level(net, bad2), std::invalid_argument);
}

TEST(ValidateRouterNetwork, DetectsMissingRealization) {
  const Network net = star_network();
  RouterNetwork rn = expand_to_router_level(net);
  // Drop every inter-PoP link flag: validation must notice.
  for (RouterLink& rl : rn.links) rl.inter_pop = false;
  EXPECT_THROW(validate_router_network(rn, net), std::logic_error);
}

}  // namespace
}  // namespace cold
