#include "heuristics/brute_force.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/context.h"
#include "geom/distance.h"
#include "graph/algorithms.h"
#include "traffic/gravity.h"

namespace cold {
namespace {

Evaluator make_evaluator(std::size_t n, CostParams params,
                         std::uint64_t seed = 1) {
  ContextConfig cfg;
  cfg.num_pops = n;
  Rng rng(seed);
  const Context ctx = generate_context(cfg, rng);
  return Evaluator(ctx.distances, ctx.traffic, params);
}

TEST(BruteForce, TwoNodesOnlyOneFeasibleGraph) {
  const std::vector<Point> pts{{0, 0}, {1, 0}};
  Evaluator eval(distance_matrix(pts), gravity_matrix({1.0, 1.0}),
                 CostParams{10, 1, 0.1, 0});
  const BruteForceResult r = brute_force_optimum(eval);
  EXPECT_EQ(r.total, 2u);
  EXPECT_EQ(r.feasible, 1u);
  EXPECT_EQ(r.best.num_edges(), 1u);
  // Cost: k0 + k1*1 + k2*1*2 (two unit demands traverse).
  EXPECT_NEAR(r.cost, 10.0 + 1.0 + 0.1 * 2.0, 1e-12);
}

TEST(BruteForce, DominantLengthCostGivesMst) {
  // With k1 huge and everything else tiny, the optimum is the MST.
  Evaluator eval = make_evaluator(5, CostParams{0.0, 100.0, 1e-9, 0.0}, 3);
  const BruteForceResult r = brute_force_optimum(eval);
  const Topology mst = minimum_spanning_tree(eval.lengths());
  EXPECT_EQ(r.best, mst);
}

TEST(BruteForce, DominantBandwidthCostGivesClique) {
  Evaluator eval = make_evaluator(5, CostParams{1e-9, 1e-9, 100.0, 0.0}, 4);
  const BruteForceResult r = brute_force_optimum(eval);
  EXPECT_EQ(r.best.num_edges(), 10u);  // complete graph on 5 nodes
}

TEST(BruteForce, DominantHubCostGivesStar) {
  Evaluator eval = make_evaluator(5, CostParams{1e-6, 1e-6, 1e-9, 1e6}, 5);
  const BruteForceResult r = brute_force_optimum(eval);
  EXPECT_EQ(r.best.num_core_nodes(), 1u);
  EXPECT_EQ(r.best.num_edges(), 4u);
}

TEST(BruteForce, FeasibleCountMatchesConnectedGraphCount) {
  // The number of connected labeled graphs on 4 nodes is 38 (OEIS A001187).
  Evaluator eval = make_evaluator(4, CostParams{}, 6);
  const BruteForceResult r = brute_force_optimum(eval);
  EXPECT_EQ(r.total, 64u);
  EXPECT_EQ(r.feasible, 38u);
}

TEST(BruteForce, OptimumNeverWorseThanAnyHandTopology) {
  Evaluator eval = make_evaluator(6, CostParams{10, 1, 1e-3, 5}, 7);
  const BruteForceResult r = brute_force_optimum(eval);
  EXPECT_LE(r.cost, eval.cost(minimum_spanning_tree(eval.lengths())) + 1e-12);
  EXPECT_LE(r.cost, eval.cost(Topology::complete(6)) + 1e-12);
  for (NodeId c = 0; c < 6; ++c) {
    EXPECT_LE(r.cost, eval.cost(Topology::star(6, c)) + 1e-12);
  }
  EXPECT_TRUE(std::isfinite(r.cost));
  EXPECT_GE(r.optima, 1u);
}

TEST(BruteForce, GuardsAgainstLargeInstances) {
  Evaluator eval = make_evaluator(9, CostParams{}, 8);
  EXPECT_THROW(brute_force_optimum(eval), std::invalid_argument);
  Evaluator small = make_evaluator(5, CostParams{}, 8);
  EXPECT_THROW(brute_force_optimum(small, /*max_nodes=*/4),
               std::invalid_argument);
}

}  // namespace
}  // namespace cold
