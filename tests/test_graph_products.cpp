#include "router/graph_products.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/metrics.h"

namespace cold {
namespace {

Topology path_graph(std::size_t n) {
  Topology g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(GraphProduct, CartesianOfPathsIsGrid) {
  // P3 box P4 = 3x4 grid: 3*4 nodes, 3*3 + 2*4 = 17 edges.
  const Topology grid =
      graph_product(path_graph(3), path_graph(4), ProductKind::kCartesian);
  EXPECT_EQ(grid.num_nodes(), 12u);
  EXPECT_EQ(grid.num_edges(), 17u);
  EXPECT_TRUE(is_connected(grid));
  // Corner degree 2, centre degree 4.
  EXPECT_EQ(grid.degree(product_node(0, 0, 4)), 2);
  EXPECT_EQ(grid.degree(product_node(1, 1, 4)), 4);
}

TEST(GraphProduct, EdgeCountFormulas) {
  // |E(G x H)|: Cartesian = nG*eH + nH*eG; Tensor = 2*eG*eH;
  // Strong = Cartesian + Tensor; Lexicographic = nH^2*eG + nG*eH.
  const Topology g = path_graph(4);   // nG=4, eG=3
  const Topology h = Topology::complete(3);  // nH=3, eH=3
  EXPECT_EQ(graph_product(g, h, ProductKind::kCartesian).num_edges(),
            4u * 3u + 3u * 3u);
  EXPECT_EQ(graph_product(g, h, ProductKind::kTensor).num_edges(),
            2u * 3u * 3u);
  EXPECT_EQ(graph_product(g, h, ProductKind::kStrong).num_edges(),
            4u * 3u + 3u * 3u + 2u * 3u * 3u);
  EXPECT_EQ(graph_product(g, h, ProductKind::kLexicographic).num_edges(),
            3u * 3u * 3u + 4u * 3u);
}

TEST(GraphProduct, TensorOfBipartiteIsDisconnected) {
  // Tensor product of two bipartite graphs (paths) is disconnected —
  // a classical fact (Weichsel).
  const Topology t =
      graph_product(path_graph(3), path_graph(3), ProductKind::kTensor);
  EXPECT_FALSE(is_connected(t));
}

TEST(GraphProduct, Validates) {
  EXPECT_THROW(graph_product(Topology(0), path_graph(2),
                             ProductKind::kCartesian),
               std::invalid_argument);
}

TEST(GeneralizedProduct, UniformTemplatesMatchStructure) {
  // Backbone P3, every node a 2-node template, gateways = {0}: the product
  // has per-block template edges plus single links between blocks.
  GeneralizedProductSpec spec;
  Topology pair(2);
  pair.add_edge(0, 1);
  spec.templates = {pair, pair, pair};
  spec.gateway = [](NodeId, const Edge&) { return std::vector<NodeId>{0}; };
  const auto r = generalized_product(path_graph(3), spec);
  EXPECT_EQ(r.graph.num_nodes(), 6u);
  EXPECT_EQ(r.graph.num_edges(), 3u + 2u);  // 3 intra + 2 inter
  EXPECT_TRUE(is_connected(r.graph));
  EXPECT_EQ(r.origin[3].first, 1u);   // node 3 = block 1, local 1
  EXPECT_EQ(r.origin[3].second, 1u);
  EXPECT_EQ(r.block_start[2], 4u);
}

TEST(GeneralizedProduct, HeterogeneousTemplates) {
  // The PoP-design use case: a big PoP (triangle) and two small ones
  // (single routers); all gateways are local node 0.
  GeneralizedProductSpec spec;
  spec.templates = {Topology::complete(3), Topology(1), Topology(1)};
  spec.gateway = [](NodeId, const Edge&) { return std::vector<NodeId>{0}; };
  Topology backbone(3);
  backbone.add_edge(0, 1);
  backbone.add_edge(0, 2);
  const auto r = generalized_product(backbone, spec);
  EXPECT_EQ(r.graph.num_nodes(), 5u);
  EXPECT_EQ(r.graph.num_edges(), 3u + 2u);
  EXPECT_TRUE(is_connected(r.graph));
}

TEST(GeneralizedProduct, MultiGatewayMakesParallelPaths) {
  // Dual-gateway blocks: each backbone edge becomes a K2,2 join, giving a
  // 2-edge-connected product from a 1-edge-connected backbone.
  GeneralizedProductSpec spec;
  Topology pair(2);
  pair.add_edge(0, 1);
  spec.templates = {pair, pair};
  spec.gateway = [](NodeId, const Edge&) { return std::vector<NodeId>{0, 1}; };
  Topology backbone(2);
  backbone.add_edge(0, 1);
  const auto r = generalized_product(backbone, spec);
  EXPECT_EQ(r.graph.num_edges(), 2u + 4u);
  // Removing any single inter-block link leaves it connected.
  Topology damaged = r.graph;
  damaged.remove_edge(0, 2);
  EXPECT_TRUE(is_connected(damaged));
}

TEST(GeneralizedProduct, Validates) {
  GeneralizedProductSpec spec;
  spec.templates = {Topology(1)};
  spec.gateway = [](NodeId, const Edge&) { return std::vector<NodeId>{0}; };
  EXPECT_THROW(generalized_product(path_graph(2), spec),
               std::invalid_argument);  // template count mismatch

  GeneralizedProductSpec no_rule;
  no_rule.templates = {Topology(1), Topology(1)};
  EXPECT_THROW(generalized_product(path_graph(2), no_rule),
               std::invalid_argument);

  GeneralizedProductSpec bad_gateway;
  bad_gateway.templates = {Topology(1), Topology(1)};
  bad_gateway.gateway = [](NodeId, const Edge&) {
    return std::vector<NodeId>{5};
  };
  EXPECT_THROW(generalized_product(path_graph(2), bad_gateway),
               std::invalid_argument);
}

}  // namespace
}  // namespace cold
