// Tests for the FKP and transit-stub baseline generators.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/fkp.h"
#include "baselines/transit_stub.h"
#include "graph/algorithms.h"
#include "graph/metrics.h"

namespace cold {
namespace {

TEST(Fkp, ProducesTree) {
  Rng rng(1);
  const FkpResult r = fkp(40, FkpParams{4.0}, rng);
  EXPECT_EQ(r.topology.num_nodes(), 40u);
  EXPECT_EQ(r.topology.num_edges(), 39u);
  EXPECT_TRUE(is_connected(r.topology));
  EXPECT_EQ(r.locations.size(), 40u);
}

TEST(Fkp, AlphaZeroIsStarOnRoot) {
  // With alpha = 0 the score is just hop count: everyone attaches to the
  // root (hop 0).
  Rng rng(2);
  const FkpResult r = fkp(15, FkpParams{0.0}, rng);
  EXPECT_EQ(r.topology.degree(0), 14);
}

TEST(Fkp, LargeAlphaAttachesToNearest) {
  // alpha -> infinity makes distance dominate: each arrival links to its
  // nearest predecessor (the "dynamic MST" regime of [17]).
  const std::vector<Point> pts{{0, 0}, {0.1, 0}, {0.2, 0}, {0.3, 0}};
  const Topology t = fkp_over_locations(pts, FkpParams{1e9});
  EXPECT_TRUE(t.has_edge(0, 1));
  EXPECT_TRUE(t.has_edge(1, 2));
  EXPECT_TRUE(t.has_edge(2, 3));
}

TEST(Fkp, IntermediateAlphaGrowsHubs) {
  // The interesting FKP regime: a few well-placed early nodes become hubs.
  Rng rng(3);
  const FkpResult r = fkp(200, FkpParams{8.0}, rng);
  int max_degree = 0;
  for (NodeId v = 0; v < 200; ++v) {
    max_degree = std::max(max_degree, r.topology.degree(v));
  }
  EXPECT_GT(max_degree, 5);
  EXPECT_GT(degree_cv(r.topology), 0.8);
}

TEST(Fkp, Validates) {
  Rng rng(4);
  EXPECT_THROW(fkp(10, FkpParams{-1.0}, rng), std::invalid_argument);
  EXPECT_EQ(fkp(0, FkpParams{}, rng).topology.num_nodes(), 0u);
  EXPECT_EQ(fkp(1, FkpParams{}, rng).topology.num_edges(), 0u);
}

TEST(TransitStub, NodeCountAndConnectivity) {
  Rng rng(5);
  TransitStubParams p;  // defaults: 2 domains x 4 transit, 2 stubs x 3 nodes
  const TransitStubResult r = transit_stub(p, rng);
  const std::size_t expected = 2 * 4 * (1 + 2 * 3);
  EXPECT_EQ(r.topology.num_nodes(), expected);
  EXPECT_TRUE(is_connected(r.topology));
  EXPECT_EQ(r.kinds.size(), expected);
  EXPECT_EQ(r.domain.size(), expected);
}

TEST(TransitStub, TransitNodesComeFirst) {
  Rng rng(6);
  const TransitStubResult r = transit_stub(TransitStubParams{}, rng);
  for (NodeId v = 0; v < 8; ++v) {
    EXPECT_EQ(r.kinds[v], TsNodeKind::kTransit);
  }
  for (NodeId v = 8; v < r.topology.num_nodes(); ++v) {
    EXPECT_EQ(r.kinds[v], TsNodeKind::kStub);
  }
}

TEST(TransitStub, StubsOnlyTouchTheirTransitOrOwnDomain) {
  Rng rng(7);
  const TransitStubResult r = transit_stub(TransitStubParams{}, rng);
  for (const Edge& e : r.topology.edges()) {
    const bool u_stub = r.kinds[e.u] == TsNodeKind::kStub;
    const bool v_stub = r.kinds[e.v] == TsNodeKind::kStub;
    if (u_stub && v_stub) {
      // Stub-stub links stay within one stub domain.
      EXPECT_EQ(r.domain[e.u], r.domain[e.v]);
    }
  }
}

TEST(TransitStub, HierarchyShowsInBetweenness) {
  // Transit nodes must carry much more betweenness than stub nodes.
  Rng rng(8);
  const TransitStubResult r = transit_stub(TransitStubParams{}, rng);
  const auto nb = node_betweenness(r.topology);
  double transit_mean = 0.0, stub_mean = 0.0;
  std::size_t transit_count = 0, stub_count = 0;
  for (std::size_t v = 0; v < nb.size(); ++v) {
    if (r.kinds[v] == TsNodeKind::kTransit) {
      transit_mean += nb[v];
      ++transit_count;
    } else {
      stub_mean += nb[v];
      ++stub_count;
    }
  }
  transit_mean /= static_cast<double>(transit_count);
  stub_mean /= static_cast<double>(stub_count);
  EXPECT_GT(transit_mean, 5.0 * stub_mean);
}

TEST(TransitStub, SingleDomainDegenerate) {
  Rng rng(9);
  TransitStubParams p;
  p.transit_domains = 1;
  p.transit_size = 3;
  p.stubs_per_transit = 1;
  p.stub_size = 2;
  const TransitStubResult r = transit_stub(p, rng);
  EXPECT_EQ(r.topology.num_nodes(), 3u * (1 + 2));
  EXPECT_TRUE(is_connected(r.topology));
}

TEST(TransitStub, Validates) {
  Rng rng(10);
  TransitStubParams p;
  p.transit_domains = 0;
  EXPECT_THROW(transit_stub(p, rng), std::invalid_argument);
  TransitStubParams q;
  q.transit_edge_prob = 1.5;
  EXPECT_THROW(transit_stub(q, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cold
