// Property-based suites (parameterized sweeps over costs, sizes, seeds)
// checking invariants that must hold everywhere in parameter space.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/erdos_renyi.h"
#include "graph/connectivity.h"
#include "graph/spectral.h"
#include "heuristics/local_search.h"
#include "core/context.h"
#include "core/synthesizer.h"
#include "cost/evaluator.h"
#include "ga/genetic.h"
#include "ga/operators.h"
#include "ga/repair.h"
#include "graph/algorithms.h"
#include "graph/metrics.h"
#include "net/network.h"

namespace cold {
namespace {

// ---------------------------------------------------------------------------
// Invariants over the cost-parameter grid the paper sweeps (Figs 5-9).
// ---------------------------------------------------------------------------

struct CostPoint {
  double k2;
  double k3;
};

class CostGridProperty : public ::testing::TestWithParam<CostPoint> {};

TEST_P(CostGridProperty, SynthesisAlwaysYieldsValidNetwork) {
  const auto [k2, k3] = GetParam();
  SynthesisConfig cfg;
  cfg.context.num_pops = 12;
  cfg.costs = CostParams{10.0, 1.0, k2, k3};
  cfg.ga.population = 20;
  cfg.ga.generations = 15;
  const Synthesizer synth(cfg);
  const SynthesisResult r = synth.synthesize(99);
  EXPECT_NO_THROW(validate_network(r.network));
  EXPECT_TRUE(std::isfinite(r.cost.total()));
  // Tree lower bound / clique upper bound on edges.
  EXPECT_GE(r.network.num_links(), 11u);
  EXPECT_LE(r.network.num_links(), 66u);
}

TEST_P(CostGridProperty, GaNeverLosesToItsSeeds) {
  const auto [k2, k3] = GetParam();
  ContextConfig ctx_cfg;
  ctx_cfg.num_pops = 12;
  Rng ctx_rng(5);
  const Context ctx = generate_context(ctx_cfg, ctx_rng);
  Evaluator eval(ctx.distances, ctx.traffic, CostParams{10.0, 1.0, k2, k3});
  const double mst_cost = eval.cost(minimum_spanning_tree(ctx.distances));
  const double clique_cost = eval.cost(Topology::complete(12));
  GaConfig ga;
  ga.population = 20;
  ga.generations = 15;
  Rng rng(5);
  const GaResult r = run_ga(eval, ga, rng);
  EXPECT_LE(r.best_cost, std::min(mst_cost, clique_cost) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    PaperCostGrid, CostGridProperty,
    ::testing::Values(CostPoint{2.5e-5, 0.0}, CostPoint{1e-4, 0.0},
                      CostPoint{4e-4, 0.0}, CostPoint{1.6e-3, 0.0},
                      CostPoint{2.5e-5, 10.0}, CostPoint{4e-4, 10.0},
                      CostPoint{1e-4, 100.0}, CostPoint{1.6e-3, 100.0},
                      CostPoint{1e-4, 1000.0}, CostPoint{1.6e-3, 1000.0}),
    [](const ::testing::TestParamInfo<CostPoint>& info) {
      std::string name = "k2_" + std::to_string(info.param.k2) + "_k3_" +
                         std::to_string(info.param.k3);
      for (char& c : name) {
        if (c == '.' || c == '-' || c == '+') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Repair invariants across edge densities.
// ---------------------------------------------------------------------------

class RepairProperty : public ::testing::TestWithParam<double> {};

TEST_P(RepairProperty, AlwaysConnectsAndOnlyAddsLinks) {
  const double p = GetParam();
  Rng rng(42);
  ContextConfig cfg;
  cfg.num_pops = 20;
  const Context ctx = generate_context(cfg, rng);
  for (int trial = 0; trial < 10; ++trial) {
    Topology g = erdos_renyi_gnp(20, p, rng);
    const Topology before = g;
    repair_connectivity(g, ctx.distances);
    EXPECT_TRUE(is_connected(g));
    // Repair never removes an edge.
    for (const Edge& e : before.edges()) {
      EXPECT_TRUE(g.has_edge(e.u, e.v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, RepairProperty,
                         ::testing::Values(0.0, 0.02, 0.05, 0.1, 0.3, 0.8));

// ---------------------------------------------------------------------------
// Crossover gene-containment across seeds.
// ---------------------------------------------------------------------------

class CrossoverProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossoverProperty, ChildGenesComeFromParents) {
  Rng rng(GetParam());
  const Topology a = erdos_renyi_gnp(15, 0.3, rng);
  const Topology b = erdos_renyi_gnp(15, 0.3, rng);
  const Topology child = crossover({&a, &b}, {2.0, 3.0}, rng);
  for (NodeId i = 0; i < 15; ++i) {
    for (NodeId j = i + 1; j < 15; ++j) {
      const bool in_a = a.has_edge(i, j);
      const bool in_b = b.has_edge(i, j);
      if (in_a && in_b) {
        EXPECT_TRUE(child.has_edge(i, j));
      }
      if (!in_a && !in_b) {
        EXPECT_FALSE(child.has_edge(i, j));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossoverProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

// ---------------------------------------------------------------------------
// Adding links never lengthens routes (bandwidth cost monotonicity).
// ---------------------------------------------------------------------------

class DensificationProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DensificationProperty, AddingLinksNeverRaisesBandwidthComponent) {
  Rng rng(GetParam());
  ContextConfig cfg;
  cfg.num_pops = 12;
  const Context ctx = generate_context(cfg, rng);
  Evaluator eval(ctx.distances, ctx.traffic, CostParams{0, 0, 1.0, 0});
  Topology g = minimum_spanning_tree(ctx.distances);
  double prev = eval.breakdown(g).bandwidth;
  for (int additions = 0; additions < 15; ++additions) {
    // Add a random missing edge.
    NodeId i = rng.uniform_index(12), j = rng.uniform_index(12);
    if (i == j || g.has_edge(i, j)) continue;
    g.add_edge(i, j);
    const double now = eval.breakdown(g).bandwidth;
    EXPECT_LE(now, prev + 1e-9);
    prev = now;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DensificationProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Whole-pipeline determinism across sizes.
// ---------------------------------------------------------------------------

class DeterminismProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DeterminismProperty, SynthesisIsBitStable) {
  SynthesisConfig cfg;
  cfg.context.num_pops = GetParam();
  cfg.costs = CostParams{10, 1, 4e-4, 10};
  cfg.ga.population = 16;
  cfg.ga.generations = 10;
  const Synthesizer synth(cfg);
  const SynthesisResult a = synth.synthesize(123);
  const SynthesisResult b = synth.synthesize(123);
  EXPECT_TRUE(a.network.topology == b.network.topology);
  ASSERT_EQ(a.network.links.size(), b.network.links.size());
  for (std::size_t i = 0; i < a.network.links.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.network.links[i].capacity, b.network.links[i].capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeterminismProperty,
                         ::testing::Values(5, 8, 12, 20));

// ---------------------------------------------------------------------------
// Mutation preserves node count and simplicity across seeds.
// ---------------------------------------------------------------------------

class MutationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationProperty, GraphStaysSimple) {
  Rng rng(GetParam());
  Topology g = erdos_renyi_gnp(10, 0.4, rng);
  for (int round = 0; round < 30; ++round) {
    link_mutation(g, rng);
    EXPECT_EQ(g.num_nodes(), 10u);
    // Degree sum must equal twice the edge count (no multi-edges possible
    // with the adjacency-matrix representation; this guards the counters).
    int deg_sum = 0;
    for (NodeId v = 0; v < 10; ++v) deg_sum += g.degree(v);
    EXPECT_EQ(static_cast<std::size_t>(deg_sum), 2 * g.num_edges());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationProperty,
                         ::testing::Range<std::uint64_t>(1, 9));


// ---------------------------------------------------------------------------
// Fiedler's inequality ties the spectral and combinatorial robustness views:
// lambda_2 <= vertex connectivity <= edge connectivity <= min degree for
// non-complete graphs. We check the two ends we compute.
// ---------------------------------------------------------------------------

class FiedlerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FiedlerProperty, AlgebraicConnectivityBoundsEdgeConnectivity) {
  Rng rng(GetParam());
  Topology g(14);
  for (NodeId i = 0; i < 14; ++i) {
    for (NodeId j = i + 1; j < 14; ++j) {
      if (rng.bernoulli(0.3)) g.add_edge(i, j);
    }
  }
  ContextConfig cfg;
  cfg.num_pops = 14;
  const Context ctx = generate_context(cfg, rng);
  connect_components(g, ctx.distances);
  if (g.num_edges() == 14 * 13 / 2) return;  // complete graph: bound differs
  const double lambda2 = algebraic_connectivity(g).algebraic_connectivity;
  const std::size_t kappa = edge_connectivity(g);
  int min_degree = 14;
  for (NodeId v = 0; v < 14; ++v) min_degree = std::min(min_degree, g.degree(v));
  EXPECT_LE(lambda2, static_cast<double>(kappa) + 1e-6);
  EXPECT_LE(kappa, static_cast<std::size_t>(min_degree));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FiedlerProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Synthesized networks keep their invariants across the optimizer choice.
// ---------------------------------------------------------------------------

class OptimizerEquivalenceProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizerEquivalenceProperty, AllOptimizersProduceFeasibleNetworks) {
  ContextConfig cfg;
  cfg.num_pops = 10;
  Rng ctx_rng(GetParam());
  const Context ctx = generate_context(cfg, ctx_rng);
  const CostParams costs{10, 1, 4e-4, 10};

  Evaluator eval_ga(ctx.distances, ctx.traffic, costs);
  GaConfig ga_cfg;
  ga_cfg.population = 16;
  ga_cfg.generations = 12;
  Rng ga_rng(GetParam());
  const GaResult ga = run_ga(eval_ga, ga_cfg, ga_rng);
  EXPECT_TRUE(is_connected(ga.best));

  Evaluator eval_hc(ctx.distances, ctx.traffic, costs);
  EvaluatorObjective obj_hc(eval_hc);
  const LocalSearchResult hc = hill_climb(obj_hc, HillClimbConfig{});
  EXPECT_TRUE(is_connected(hc.best));

  Evaluator eval_sa(ctx.distances, ctx.traffic, costs);
  EvaluatorObjective obj_sa(eval_sa);
  Rng sa_rng(GetParam());
  AnnealingConfig sa_cfg;
  sa_cfg.iterations = 800;
  const LocalSearchResult sa = simulated_annealing(obj_sa, sa_cfg, sa_rng);
  EXPECT_TRUE(is_connected(sa.best));

  // All three optimize the same objective; none may return a cost below the
  // exhaustive lower bound implied by k0 alone (n-1 links minimum).
  const double floor = costs.k0 * 9.0;
  for (double c : {ga.best_cost, hc.best_cost, sa.best_cost}) {
    EXPECT_GE(c, floor);
    EXPECT_TRUE(std::isfinite(c));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerEquivalenceProperty,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace cold
