#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cold {
namespace {

TEST(Summarize, BasicMoments) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Summarize, EmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Quantile, InterpolatesBetweenOrderStats) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Quantile, Validates) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.5), std::invalid_argument);
}

TEST(BootstrapCi, ContainsMeanAndOrdersBounds) {
  std::vector<double> xs;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) xs.push_back(rng.uniform(0.0, 10.0));
  const ConfidenceInterval ci = bootstrap_mean_ci(xs, 0.95);
  EXPECT_LE(ci.lo, ci.mean);
  EXPECT_GE(ci.hi, ci.mean);
  EXPECT_LT(ci.hi - ci.lo, 3.0);  // n=100 uniform(0,10): CI width ~ 1.1
}

TEST(BootstrapCi, DegenerateSamples) {
  const ConfidenceInterval empty = bootstrap_mean_ci({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  const ConfidenceInterval one = bootstrap_mean_ci({5.0});
  EXPECT_DOUBLE_EQ(one.lo, 5.0);
  EXPECT_DOUBLE_EQ(one.hi, 5.0);
}

TEST(BootstrapCi, TightensWithSampleSize) {
  Rng rng(2);
  std::vector<double> small, large;
  for (int i = 0; i < 20; ++i) small.push_back(rng.uniform());
  for (int i = 0; i < 2000; ++i) large.push_back(rng.uniform());
  const auto ci_small = bootstrap_mean_ci(small);
  const auto ci_large = bootstrap_mean_ci(large);
  EXPECT_LT(ci_large.hi - ci_large.lo, ci_small.hi - ci_small.lo);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> xs{1, 2, 3, 4}, ys{2, 4, 6, 8}, zs{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(Pearson, DegenerateReturnsZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(pearson({1.0}, {1.0}), 0.0);
}

TEST(CoefficientOfVariation, KnownValue) {
  // stddev of {2,4} = sqrt(2), mean 3.
  EXPECT_NEAR(coefficient_of_variation({2.0, 4.0}), std::sqrt(2.0) / 3.0,
              1e-12);
  EXPECT_DOUBLE_EQ(coefficient_of_variation({0.0, 0.0}), 0.0);
}

TEST(Entropy, UniformIsLogN) {
  EXPECT_NEAR(entropy({1, 1, 1, 1}), std::log(4.0), 1e-12);
  EXPECT_DOUBLE_EQ(entropy({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(entropy({}), 0.0);
  EXPECT_THROW(entropy({1.0, -1.0}), std::invalid_argument);
}

TEST(Histogram, BinsAndClamping) {
  const auto h = histogram({0.1, 0.9, 1.5, -3.0, 10.0}, 0.0, 2.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 3u);  // 0.1, 0.9, and clamped -3.0
  EXPECT_EQ(h[1], 2u);  // 1.5 and clamped 10.0
  EXPECT_THROW(histogram({}, 0.0, 0.0, 2), std::invalid_argument);
}

TEST(LogSpace, EndpointsAndMonotonicity) {
  const auto g = log_space(1e-4, 1e-2, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_NEAR(g.front(), 1e-4, 1e-12);
  EXPECT_NEAR(g.back(), 1e-2, 1e-12);
  for (std::size_t i = 1; i < g.size(); ++i) EXPECT_GT(g[i], g[i - 1]);
  // Log-spaced: constant ratio.
  EXPECT_NEAR(g[1] / g[0], g[2] / g[1], 1e-9);
  EXPECT_THROW(log_space(0.0, 1.0, 3), std::invalid_argument);
}

TEST(LinSpace, EndpointsAndStep) {
  const auto g = lin_space(0.0, 1.0, 3);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_DOUBLE_EQ(g[1], 0.5);
  EXPECT_DOUBLE_EQ(g[2], 1.0);
  EXPECT_TRUE(lin_space(0.0, 1.0, 0).empty());
  EXPECT_EQ(lin_space(2.0, 5.0, 1).size(), 1u);
}

}  // namespace
}  // namespace cold
