#include "traffic/ipf.h"

#include <gtest/gtest.h>

#include "traffic/gravity.h"

namespace cold {
namespace {

TEST(IpfFit, MatchesMarginals) {
  Matrix<double> seed = Matrix<double>::square(3, 0.0);
  seed(0, 1) = seed(1, 0) = 1.0;
  seed(0, 2) = seed(2, 0) = 2.0;
  seed(1, 2) = seed(2, 1) = 3.0;
  // Targets strictly inside the feasible cone (a zero-diagonal matrix needs
  // T_i < sum_{j != i} T_j; boundary targets converge only asymptotically).
  const std::vector<double> targets{10.0, 12.0, 14.0};
  const IpfResult r = ipf_fit(seed, targets, targets);
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < 3; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < 3; ++j) row += r.matrix(i, j);
    EXPECT_NEAR(row, targets[i], 1e-6 * targets[i]);
  }
}

TEST(IpfFit, SymmetricSeedEqualTargetsStaysSymmetric) {
  const TrafficMatrix seed = gravity_matrix({1.0, 2.0, 3.0, 4.0});
  const std::vector<double> targets{5.0, 6.0, 7.0, 8.0};
  const IpfResult r = ipf_fit(seed, targets, targets);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(r.matrix(i, j), r.matrix(j, i), 1e-6);
    }
    EXPECT_DOUBLE_EQ(r.matrix(i, i), 0.0);
  }
}

TEST(IpfFit, PreservesZeros) {
  // IPF scales entries multiplicatively: structural zeros stay zero.
  Matrix<double> seed = Matrix<double>::square(3, 0.0);
  seed(0, 1) = seed(1, 0) = 1.0;
  seed(1, 2) = seed(2, 1) = 1.0;  // (0,2) stays 0
  const std::vector<double> targets{1.0, 2.0, 1.0};
  const IpfResult r = ipf_fit(seed, targets, targets);
  EXPECT_DOUBLE_EQ(r.matrix(0, 2), 0.0);
  EXPECT_TRUE(r.converged);
}

TEST(IpfFit, Validates) {
  Matrix<double> seed = Matrix<double>::square(2, 0.0);
  seed(0, 1) = seed(1, 0) = 1.0;
  EXPECT_THROW(ipf_fit(seed, {1.0}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(ipf_fit(seed, {1.0, -1.0}, {1.0, -1.0}),
               std::invalid_argument);
  EXPECT_THROW(ipf_fit(seed, {1.0, 1.0}, {3.0, 3.0}), std::invalid_argument);

  Matrix<double> diag = seed;
  diag(0, 0) = 1.0;
  EXPECT_THROW(ipf_fit(diag, {1.0, 1.0}, {1.0, 1.0}), std::invalid_argument);

  Matrix<double> zero_row = Matrix<double>::square(2, 0.0);
  EXPECT_THROW(ipf_fit(zero_row, {1.0, 1.0}, {1.0, 1.0}),
               std::invalid_argument);
}

TEST(IpfTrafficMatrix, HitsPerPopTotals) {
  const std::vector<double> totals{100.0, 50.0, 25.0, 75.0, 10.0};
  const IpfResult r = ipf_traffic_matrix(totals);
  ASSERT_TRUE(r.converged);
  const auto per_pop = traffic_per_pop(r.matrix);
  for (std::size_t i = 0; i < totals.size(); ++i) {
    EXPECT_NEAR(per_pop[i], totals[i], 1e-6 * totals[i]);
  }
  EXPECT_NO_THROW(validate_traffic_matrix(r.matrix));
}

TEST(IpfTrafficMatrix, TwoPopExact) {
  // n = 2: whole traffic must flow between the two PoPs.
  const IpfResult r = ipf_traffic_matrix({8.0, 8.0});
  EXPECT_NEAR(r.matrix(0, 1), 8.0, 1e-9);
  EXPECT_THROW(ipf_traffic_matrix({1.0}), std::invalid_argument);
  EXPECT_THROW(ipf_traffic_matrix({1.0, 0.0}), std::invalid_argument);
}

TEST(IpfTrafficMatrix, GravityFixedPointUnchanged) {
  // If totals already come from a gravity matrix, IPF should return (a
  // scaled version of) the same matrix after one pass.
  const TrafficMatrix g = gravity_matrix({2.0, 3.0, 4.0});
  const auto totals = traffic_per_pop(g);
  const IpfResult r = ipf_traffic_matrix(totals);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(r.matrix(i, j), g(i, j), 1e-5 * (g(i, j) + 1.0));
    }
  }
}

}  // namespace
}  // namespace cold
