// End-to-end pipeline tests: context -> optimization -> network -> export ->
// router expansion, checking cross-module invariants the unit tests cannot.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/ensemble.h"
#include "core/synthesizer.h"
#include "graph/metrics.h"
#include "io/json.h"
#include "net/network.h"
#include "router/expansion.h"
#include "traffic/gravity.h"

namespace cold {
namespace {

SynthesisConfig config_for(std::size_t n, CostParams costs) {
  SynthesisConfig cfg;
  cfg.context.num_pops = n;
  cfg.costs = costs;
  cfg.ga.population = 24;
  cfg.ga.generations = 24;
  return cfg;
}

TEST(Integration, EndToEndSynthesisProducesSimulationReadyNetwork) {
  const Synthesizer synth(config_for(16, CostParams{10, 1, 4e-4, 10}));
  const SynthesisResult r = synth.synthesize(2024);
  // A simulation consumer needs: connected topology, capacities on every
  // link, a loop-free routing matrix, distances.
  validate_network(r.network);
  for (const Link& l : r.network.links) {
    EXPECT_GE(l.capacity, l.load);
    EXPECT_GT(l.length, 0.0);
  }
  // All traffic must be carried: utilization of every link is exactly 1
  // under overprovision = 1 where load > 0.
  EXPECT_LE(r.network.max_utilization(), 1.0 + 1e-12);
}

TEST(Integration, CostReportedEqualsIndependentRecomputation) {
  const Synthesizer synth(config_for(12, CostParams{10, 1, 4e-4, 10}));
  const SynthesisResult r = synth.synthesize(7);
  // Recompute the cost from the Network object alone.
  const CostParams& k = synth.config().costs;
  double cost = 0.0;
  for (const Link& l : r.network.links) {
    cost += k.k0 + k.k1 * l.length + k.k2 * l.length * l.load;
  }
  cost += k.k3 * static_cast<double>(r.network.topology.num_core_nodes());
  EXPECT_NEAR(cost, r.cost.total(), 1e-6 * cost);
}

TEST(Integration, JsonRoundTripThenRouterExpansion) {
  const Synthesizer synth(config_for(10, CostParams{10, 1, 1e-4, 0}));
  const SynthesisResult r = synth.synthesize(3);
  const Network back = network_from_json(network_to_json(r.network));
  const RouterNetwork rn = expand_to_router_level(back);
  EXPECT_NO_THROW(validate_router_network(rn, back));
  EXPECT_GE(rn.num_routers(), back.num_pops());
}

TEST(Integration, TunabilityDirectionK2) {
  // Qualitative Fig 5 behaviour, end to end: raising k2 raises avg degree.
  SynthesisConfig lo_cfg = config_for(14, CostParams{10, 1, 2e-5, 0});
  SynthesisConfig hi_cfg = config_for(14, CostParams{10, 1, 5e-3, 0});
  const Synthesizer lo(lo_cfg), hi(hi_cfg);
  double lo_deg = 0.0, hi_deg = 0.0;
  const std::size_t trials = 5;
  for (std::size_t s = 0; s < trials; ++s) {
    lo_deg += average_degree(lo.synthesize(s + 1).network.topology);
    hi_deg += average_degree(hi.synthesize(s + 1).network.topology);
  }
  EXPECT_GT(hi_deg, lo_deg);
}

TEST(Integration, TunabilityDirectionK3) {
  // Fig 9 behaviour: raising k3 cuts the number of hub PoPs.
  SynthesisConfig lo_cfg = config_for(14, CostParams{10, 1, 4e-4, 0});
  SynthesisConfig hi_cfg = config_for(14, CostParams{10, 1, 4e-4, 2000});
  const Synthesizer lo(lo_cfg), hi(hi_cfg);
  double lo_hubs = 0.0, hi_hubs = 0.0;
  for (std::size_t s = 0; s < 5; ++s) {
    lo_hubs += static_cast<double>(
        lo.synthesize(s + 1).network.topology.num_core_nodes());
    hi_hubs += static_cast<double>(
        hi.synthesize(s + 1).network.topology.num_core_nodes());
  }
  EXPECT_LT(hi_hubs, lo_hubs);
}

TEST(Integration, EnsembleVariationIsUsableForStatistics) {
  // Paper challenge 1: ensembles must be varied but controlled — CI widths
  // over an ensemble should be modest relative to the mean.
  // k3 = 0 keeps the ensemble in a regime with genuine topological variety
  // (a large k3 collapses everything onto stars, whose average degree is a
  // constant of n).
  const Synthesizer synth(config_for(12, CostParams{10, 1, 4e-4, 0}));
  const EnsembleResult e = generate_ensemble(synth, 8, 50);
  EXPECT_TRUE(e.all_distinct);
  // At this size/cost point the optimizer returns trees, whose average
  // degree is a constant of n — so measure variability on the diameter,
  // which depends on the drawn geometry.
  const double rel_width =
      (e.stats.diameter.hi - e.stats.diameter.lo) / e.stats.diameter.mean;
  EXPECT_GT(rel_width, 0.0);
  EXPECT_LT(rel_width, 0.8);
}

TEST(Integration, GravityTrafficIsFullyRouted) {
  // Total carried bandwidth-distance equals demand-weighted SP distance.
  const Synthesizer synth(config_for(10, CostParams{10, 1, 4e-4, 10}));
  const SynthesisResult r = synth.synthesize(11);
  double carried = 0.0;
  for (const Link& l : r.network.links) carried += l.load;
  // Each unit of demand contributes at least once per hop traversed; total
  // carried >= total offered (every demand crosses >= 1 link).
  EXPECT_GE(carried + 1e-9, total_traffic(r.network.traffic));
}

TEST(Integration, HeavyTailContextStillSynthesizes) {
  SynthesisConfig cfg = config_for(12, CostParams{10, 1, 4e-4, 10});
  cfg.context.population_model =
      std::make_shared<ParetoPopulation>(10.0 / 9.0, 30.0);
  cfg.context.point_process = std::make_shared<ClusteredProcess>(3, 0.05);
  const Synthesizer synth(cfg);
  const SynthesisResult r = synth.synthesize(5);
  EXPECT_NO_THROW(validate_network(r.network));
}

}  // namespace
}  // namespace cold
