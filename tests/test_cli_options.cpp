// Tests for the strict CLI option parser used by the cold tools.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "util/cli_options.h"

namespace cold {
namespace {

CliOptions demo_options() {
  return {"demo",
          {{"pops", true, "N"},
           {"out", true, "FILE"},
           {"progress", false, "flag"}}};
}

void parse(CliOptions& options, std::vector<const char*> argv) {
  argv.insert(argv.begin(), {"cold", "demo"});
  options.parse(static_cast<int>(argv.size()), argv.data(), 2);
}

TEST(CliOptions, ParsesValuesAndFlags) {
  CliOptions options = demo_options();
  parse(options, {"--pops", "30", "--progress", "--out=x.json"});
  EXPECT_TRUE(options.has("pops"));
  EXPECT_EQ(options.num("pops", 0), 30.0);
  EXPECT_EQ(options.uint("pops", 0), 30u);
  EXPECT_TRUE(options.has("progress"));
  EXPECT_EQ(options.get("out", ""), "x.json");
}

TEST(CliOptions, FallbacksWhenAbsent) {
  CliOptions options = demo_options();
  parse(options, {});
  EXPECT_FALSE(options.has("pops"));
  EXPECT_EQ(options.num("pops", 42.5), 42.5);
  EXPECT_EQ(options.get("out", "fallback"), "fallback");
}

TEST(CliOptions, RejectsUnknownOptionListingValidOnes) {
  CliOptions options = demo_options();
  try {
    parse(options, {"--bogus", "1"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("--bogus"), std::string::npos);
    EXPECT_NE(message.find("'demo'"), std::string::npos);
    EXPECT_NE(message.find("--pops"), std::string::npos);
    EXPECT_NE(message.find("--progress"), std::string::npos);
  }
}

TEST(CliOptions, RejectsMissingValue) {
  CliOptions options = demo_options();
  EXPECT_THROW(parse(options, {"--pops"}), std::invalid_argument);
}

TEST(CliOptions, RejectsValueOnFlag) {
  CliOptions options = demo_options();
  EXPECT_THROW(parse(options, {"--progress=yes"}), std::invalid_argument);
}

TEST(CliOptions, RejectsPositionalArguments) {
  CliOptions options = demo_options();
  EXPECT_THROW(parse(options, {"stray"}), std::invalid_argument);
}

TEST(CliOptions, RejectsMalformedNumbers) {
  CliOptions options = demo_options();
  parse(options, {"--pops", "12abc"});
  EXPECT_THROW(options.num("pops", 0), std::invalid_argument);
  CliOptions negative = demo_options();
  parse(negative, {"--pops", "-3"});
  EXPECT_THROW(negative.uint("pops", 0), std::invalid_argument);
  EXPECT_EQ(negative.num("pops", 0), -3.0);  // num itself allows negatives
}

TEST(CliOptions, ValidOptionsRendersSpecOrder) {
  const CliOptions options = demo_options();
  EXPECT_EQ(options.valid_options(), "--pops, --out, --progress");
}

TEST(CliOptions, ConcatSpecsPreservesOrder) {
  const std::vector<OptionSpec> merged =
      concat_specs({{{"a", true, ""}}, {{"b", false, ""}, {"c", true, ""}}});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].name, "a");
  EXPECT_EQ(merged[1].name, "b");
  EXPECT_EQ(merged[2].name, "c");
  EXPECT_FALSE(merged[1].takes_value);
}

}  // namespace
}  // namespace cold
