#include "ga/genetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/context.h"
#include "ga/repair.h"
#include "graph/algorithms.h"
#include "graph/metrics.h"
#include "heuristics/brute_force.h"
#include "heuristics/hub_heuristics.h"

namespace cold {
namespace {

Evaluator make_evaluator(std::size_t n, CostParams params,
                         std::uint64_t seed = 1) {
  ContextConfig cfg;
  cfg.num_pops = n;
  Rng rng(seed);
  const Context ctx = generate_context(cfg, rng);
  return Evaluator(ctx.distances, ctx.traffic, params);
}

GaConfig small_ga() {
  GaConfig cfg;
  cfg.population = 30;
  cfg.generations = 30;
  return cfg;
}

TEST(GaConfig, DerivesComposition) {
  GaConfig cfg;
  cfg.population = 100;
  const GaConfig r = cfg.resolved();
  EXPECT_EQ(r.num_saved, 10u);
  EXPECT_EQ(r.num_mutation, 30u);
  EXPECT_EQ(r.num_crossover, 60u);
  EXPECT_EQ(r.num_saved + r.num_crossover + r.num_mutation, r.population);
}

TEST(GaConfig, ValidatesComposition) {
  GaConfig cfg;
  cfg.population = 10;
  cfg.num_saved = 5;
  cfg.num_crossover = 3;
  cfg.num_mutation = 3;  // sums to 11 != 10
  EXPECT_THROW(cfg.resolved(), std::invalid_argument);
  cfg.num_mutation = 2;
  EXPECT_NO_THROW(cfg.resolved());
}

TEST(GaConfig, ValidatesRanges) {
  GaConfig cfg;
  cfg.population = 1;
  EXPECT_THROW(cfg.resolved(), std::invalid_argument);
  cfg = GaConfig{};
  cfg.generations = 0;
  EXPECT_THROW(cfg.resolved(), std::invalid_argument);
  cfg = GaConfig{};
  cfg.node_mutation_prob = 1.5;
  EXPECT_THROW(cfg.resolved(), std::invalid_argument);
  cfg = GaConfig{};
  cfg.parents_a = 11;
  cfg.tournament_b = 10;
  EXPECT_THROW(cfg.resolved(), std::invalid_argument);
}

TEST(GaConfig, RejectsParentsBeyondClampedTournament) {
  // tournament_b is clamped to the population before validation, so a
  // parents_a that only fit the pre-clamp tournament is rejected rather
  // than silently shrunk (the old ordering validated first, clamped after).
  GaConfig cfg;
  cfg.population = 8;
  cfg.tournament_b = 20;  // > population: clamped to 8
  cfg.parents_a = 12;     // fits 20, not the clamped 8 -> must throw
  EXPECT_THROW(cfg.resolved(), std::invalid_argument);

  cfg.parents_a = 2;  // fits the clamped tournament: fine
  GaConfig r;
  EXPECT_NO_THROW(r = cfg.resolved());
  EXPECT_EQ(r.tournament_b, 8u);
  EXPECT_EQ(r.parents_a, 2u);
}

TEST(RunGa, ProducesConnectedFiniteBest) {
  Evaluator eval = make_evaluator(15, CostParams{10, 1, 4e-4, 10});
  Rng rng(1);
  const GaResult r = run_ga(eval, small_ga(), rng);
  EXPECT_TRUE(is_connected(r.best));
  EXPECT_TRUE(std::isfinite(r.best_cost));
  EXPECT_NEAR(r.best_cost, eval.cost(r.best), 1e-9);
}

TEST(RunGa, DeterministicGivenSeed) {
  Evaluator eval1 = make_evaluator(12, CostParams{10, 1, 1e-4, 0});
  Evaluator eval2 = make_evaluator(12, CostParams{10, 1, 1e-4, 0});
  Rng rng1(7), rng2(7);
  const GaResult a = run_ga(eval1, small_ga(), rng1);
  const GaResult b = run_ga(eval2, small_ga(), rng2);
  EXPECT_TRUE(a.best == b.best);
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
}

TEST(RunGa, BestCostMonotoneOverGenerations) {
  // Elitism guarantees the running best never regresses.
  Evaluator eval = make_evaluator(15, CostParams{10, 1, 4e-4, 10});
  Rng rng(2);
  const GaResult r = run_ga(eval, small_ga(), rng);
  for (std::size_t g = 1; g < r.best_cost_history.size(); ++g) {
    EXPECT_LE(r.best_cost_history[g], r.best_cost_history[g - 1] + 1e-12);
  }
}

TEST(RunGa, NeverWorseThanSeeds) {
  // The "initialized GA" guarantee (paper §3.3): seeding with heuristic
  // outputs bounds the result by the best seed.
  Evaluator eval = make_evaluator(15, CostParams{10, 1, 4e-4, 10});
  Rng hrng(3);
  const auto heuristics = run_all_heuristics(eval, hrng);
  std::vector<Topology> seeds;
  double best_seed_cost = std::numeric_limits<double>::infinity();
  for (const auto& h : heuristics) {
    seeds.push_back(h.topology);
    best_seed_cost = std::min(best_seed_cost, h.cost);
  }
  Rng rng(3);
  const GaResult r = run_ga(eval, small_ga(), rng, seeds);
  EXPECT_LE(r.best_cost, best_seed_cost + 1e-9);
}

TEST(RunGa, NeverWorseThanMstAndClique) {
  Evaluator eval = make_evaluator(12, CostParams{10, 1, 1e-3, 0});
  Rng rng(4);
  const GaResult r = run_ga(eval, small_ga(), rng);
  EXPECT_LE(r.best_cost,
            eval.cost(minimum_spanning_tree(eval.lengths())) + 1e-9);
  EXPECT_LE(r.best_cost, eval.cost(Topology::complete(12)) + 1e-9);
}

TEST(RunGa, FindsExactOptimumOnSmallInstances) {
  // The paper's §5 check: the (initialized) GA finds the brute-force
  // optimum for small n.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Evaluator eval = make_evaluator(5, CostParams{10, 1, 1e-3, 5}, seed);
    const BruteForceResult exact = brute_force_optimum(eval);
    Rng hrng(seed);
    std::vector<Topology> seeds;
    for (const auto& h : run_all_heuristics(eval, hrng)) {
      seeds.push_back(h.topology);
    }
    Rng rng(seed);
    GaConfig cfg;
    cfg.population = 48;
    cfg.generations = 48;
    const GaResult r = run_ga(eval, cfg, rng, seeds);
    EXPECT_NEAR(r.best_cost, exact.cost, 1e-9) << "seed " << seed;
  }
}

TEST(RunGa, FinalPopulationConsistent) {
  Evaluator eval = make_evaluator(10, CostParams{10, 1, 1e-4, 0});
  Rng rng(5);
  GaConfig cfg = small_ga();
  const GaResult r = run_ga(eval, cfg, rng);
  EXPECT_EQ(r.final_population.size(), cfg.population);
  EXPECT_EQ(r.final_costs.size(), cfg.population);
  for (std::size_t i = 0; i < r.final_population.size(); ++i) {
    EXPECT_TRUE(is_connected(r.final_population[i]));
    EXPECT_GE(r.final_costs[i], r.best_cost - 1e-12);
  }
  // History: one entry per generation plus the final state.
  EXPECT_EQ(r.best_cost_history.size(), cfg.generations + 1);
  EXPECT_GT(r.evaluations, cfg.population);
}

TEST(RunGa, SeedSizeMismatchThrows) {
  Evaluator eval = make_evaluator(10, CostParams{});
  Rng rng(6);
  EXPECT_THROW(run_ga(eval, small_ga(), rng, {Topology(5)}),
               std::invalid_argument);
}

TEST(RunGa, HighHubCostProducesHubbyNetworks) {
  // The plain GA is weak in the hub regime (the paper's Fig 3 observation);
  // seeded with the heuristics — the recommended configuration — it must
  // find a strongly hub-centric network.
  Evaluator eval = make_evaluator(15, CostParams{10, 1, 1e-4, 1000});
  Rng hrng(8);
  std::vector<Topology> seeds;
  for (const auto& h : run_all_heuristics(eval, hrng)) {
    seeds.push_back(h.topology);
  }
  Rng rng(8);
  const GaResult r = run_ga(eval, small_ga(), rng, seeds);
  EXPECT_LE(r.best.num_core_nodes(), 3u);
}

TEST(RunGa, HighBandwidthCostProducesMeshyNetworks) {
  Evaluator eval = make_evaluator(12, CostParams{1, 1, 1.0, 0});
  Rng rng(9);
  const GaResult r = run_ga(eval, small_ga(), rng);
  // k2 dominant: approaching a clique (avg degree near n-1).
  EXPECT_GT(average_degree(r.best), 8.0);
}

// ---------------------------------------------------------------------------
// Generation-level dedup (GaConfig::dedup).
// ---------------------------------------------------------------------------

TEST(DedupRepresentatives, GroupsIdenticalTopologiesInIndexOrder) {
  const Topology a = Topology::from_edges(6, {{0, 1}, {1, 2}});
  const Topology b = Topology::from_edges(6, {{0, 1}, {2, 3}});
  const Topology c = Topology::from_edges(6, {{4, 5}});
  const std::vector<Topology> gs = {a, b, a, c, b, a};
  std::vector<std::uint64_t> fps;
  for (const Topology& g : gs) fps.push_back(g.fingerprint());
  const std::vector<std::size_t> rep =
      dedup_representatives(gs, fps, /*begin=*/0);
  EXPECT_EQ(rep, (std::vector<std::size_t>{0, 1, 0, 3, 1, 0}));
}

TEST(DedupRepresentatives, ElitesSeedGroups) {
  // A candidate equal to an already-scored elite points at the elite, so
  // its stored cost fans out without any new evaluation.
  const Topology a = Topology::from_edges(6, {{0, 1}, {1, 2}});
  const Topology b = Topology::from_edges(6, {{0, 1}, {2, 3}});
  const Topology c = Topology::from_edges(6, {{4, 5}});
  const std::vector<Topology> gs = {a, b, a, c, b};
  std::vector<std::uint64_t> fps;
  for (const Topology& g : gs) fps.push_back(g.fingerprint());
  const std::vector<std::size_t> rep =
      dedup_representatives(gs, fps, /*begin=*/2);
  EXPECT_EQ(rep, (std::vector<std::size_t>{0, 1, 0, 3, 1}));
}

TEST(DedupRepresentatives, EqualFingerprintsDifferentGraphsNotMerged) {
  // Forged fingerprints: two plainly different graphs handed the same hash
  // must stay separate — merging is gated on full topology equality.
  const Topology ring = Topology::from_edges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  const Topology path =
      Topology::from_edges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  const std::vector<Topology> forged = {ring, path};
  EXPECT_EQ(dedup_representatives(forged, {42u, 42u}, 0),
            (std::vector<std::size_t>{0, 1}));

  // And a *real* Zobrist collision: the same edge set on different node
  // counts XORs to the same fingerprint, yet the topologies differ.
  const Topology small = Topology::from_edges(4, {{0, 1}});
  const Topology large = Topology::from_edges(5, {{0, 1}});
  ASSERT_EQ(small.fingerprint(), large.fingerprint());
  const std::vector<Topology> colliding = {small, large};
  EXPECT_EQ(dedup_representatives(
                colliding, {small.fingerprint(), large.fingerprint()}, 0),
            (std::vector<std::size_t>{0, 1}));
}

/// Counts actual cost() calls. Not cloneable, so run_ga scores sequentially
/// — which makes the call count exact and deterministic.
class CountingObjective final : public Objective {
 public:
  explicit CountingObjective(Evaluator eval) : eval_(std::move(eval)) {}
  double cost(const Topology& g) override {
    ++calls_;
    return eval_.cost(g);
  }
  const DistanceProvider& lengths() const override { return eval_.lengths(); }
  void charge_duplicates(std::size_t n) override { charged_ += n; }
  std::size_t calls() const { return calls_; }
  std::size_t charged() const { return charged_; }

 private:
  Evaluator eval_;
  std::size_t calls_ = 0;
  std::size_t charged_ = 0;
};

TEST(RunGaDedup, EachDistinctTopologyScoredOnce) {
  // Seed the initial population with three copies of the MST (plus the
  // built-in MST seed: four identical individuals) so the very first
  // scoring pass contains guaranteed duplicates.
  const CostParams params{10, 1, 4e-4, 10};
  const auto run = [&](bool dedup, CountingObjective& obj) {
    GaRunOptions options;
    options.config.population = 16;
    options.config.generations = 6;
    options.config.dedup = dedup;
    const Topology mst = minimum_spanning_tree(obj.lengths());
    options.seeds = {mst, mst, mst};
    Rng rng(11);
    return run_ga(obj, rng, options);
  };

  CountingObjective with(make_evaluator(12, params));
  const GaResult r = run(true, with);
  EXPECT_GE(r.dedup_skipped, 3u);  // at least the seeded MST copies
  EXPECT_EQ(with.charged(), r.dedup_skipped);
  // Duplicates are charged, not scored: the objective saw one call per
  // distinct topology, while the budget-visible count is unchanged.
  EXPECT_EQ(with.calls(), r.evaluations - r.dedup_skipped);

  CountingObjective without(make_evaluator(12, params));
  const GaResult ref = run(false, without);
  EXPECT_EQ(ref.dedup_skipped, 0u);
  EXPECT_EQ(without.calls(), ref.evaluations);
  // The trajectory is bit-identical with dedup on or off.
  EXPECT_EQ(r.best_cost_history, ref.best_cost_history);
  EXPECT_EQ(r.final_costs, ref.final_costs);
  EXPECT_EQ(r.evaluations, ref.evaluations);
  EXPECT_EQ(r.repairs, ref.repairs);
  EXPECT_EQ(r.links_repaired, ref.links_repaired);
  EXPECT_TRUE(r.best == ref.best);
}

TEST(RunGaDedup, DuplicatesReceiveIdenticalCosts) {
  // Every pair of equal topologies in the final population must carry
  // exactly equal costs — the fan-out copies breakdowns, never recomputes.
  Evaluator eval = make_evaluator(10, CostParams{10, 1, 1e-4, 0});
  GaRunOptions options;
  options.config.population = 16;
  options.config.generations = 8;
  options.config.dedup = true;
  Rng rng(12);
  const GaResult r = run_ga(eval, rng, options);
  for (std::size_t i = 0; i < r.final_population.size(); ++i) {
    for (std::size_t j = i + 1; j < r.final_population.size(); ++j) {
      if (r.final_population[i] == r.final_population[j]) {
        EXPECT_EQ(r.final_costs[i], r.final_costs[j]) << i << " vs " << j;
      }
    }
  }
}

TEST(RunGaDedup, InvariantAcrossThreadCounts) {
  const auto run = [](bool dedup, std::size_t threads) {
    Evaluator eval = make_evaluator(12, CostParams{10, 1, 4e-4, 10}, 2);
    GaRunOptions options;
    options.config.population = 16;
    options.config.generations = 6;
    options.config.dedup = dedup;
    options.config.parallel.num_threads = threads;
    Rng rng(13);
    return run_ga(eval, rng, options);
  };
  const GaResult reference = run(false, 1);
  for (const bool dedup : {false, true}) {
    for (const std::size_t threads : {1u, 4u}) {
      const GaResult r = run(dedup, threads);
      ASSERT_EQ(r.best_cost_history, reference.best_cost_history);
      ASSERT_EQ(r.final_costs, reference.final_costs);
      ASSERT_EQ(r.evaluations, reference.evaluations);
      ASSERT_TRUE(r.best == reference.best);
    }
  }
}

// The evaluation engine's headline guarantee extended to the delta engine:
// the GA trajectory is invariant across every {dsssp, thread count, cache
// mode} combination — enabling --dsssp can never change results.
TEST(RunGa, HistoryInvariantAcrossDeltaEngineSettings) {
  ContextConfig ctx_cfg;
  ctx_cfg.num_pops = 18;
  Rng ctx_rng(9);
  const Context ctx = generate_context(ctx_cfg, ctx_rng);
  enum class Cache { kOff, kPrivate, kShared };
  const auto run = [&ctx](DsspMode dsssp, std::size_t threads, Cache cache) {
    EvalEngineConfig engine;
    engine.delta.mode = dsssp;
    engine.cache.enabled = cache != Cache::kOff;
    engine.cache.shared = cache == Cache::kShared;
    Evaluator eval(ctx.distances, ctx.traffic, CostParams{10, 1, 4e-4, 10},
                   engine);
    GaRunOptions options;
    options.config.population = 16;
    options.config.generations = 8;
    options.config.parallel.num_threads = threads;
    Rng rng(11);
    return run_ga(eval, rng, options);
  };

  const GaResult reference = run(DsspMode::kOff, 1, Cache::kOff);
  for (const DsspMode dsssp : {DsspMode::kOff, DsspMode::kOn}) {
    for (const std::size_t threads : {1u, 4u}) {
      for (const Cache cache :
           {Cache::kOff, Cache::kPrivate, Cache::kShared}) {
        const GaResult r = run(dsssp, threads, cache);
        ASSERT_EQ(r.best_cost_history, reference.best_cost_history);
        ASSERT_EQ(r.best_cost, reference.best_cost);
        ASSERT_TRUE(r.best == reference.best);
        ASSERT_EQ(r.final_costs, reference.final_costs);
        ASSERT_EQ(r.evaluations, reference.evaluations);
      }
    }
  }
}

TEST(RepairConnectivity, CountsAddedLinks) {
  Evaluator eval = make_evaluator(8, CostParams{});
  Topology g(8);  // fully disconnected
  const std::size_t added = repair_connectivity(g, eval.lengths());
  EXPECT_EQ(added, 7u);
  EXPECT_TRUE(is_connected(g));
}

}  // namespace
}  // namespace cold
