#include "ga/genetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/context.h"
#include "ga/repair.h"
#include "graph/algorithms.h"
#include "graph/metrics.h"
#include "heuristics/brute_force.h"
#include "heuristics/hub_heuristics.h"

namespace cold {
namespace {

Evaluator make_evaluator(std::size_t n, CostParams params,
                         std::uint64_t seed = 1) {
  ContextConfig cfg;
  cfg.num_pops = n;
  Rng rng(seed);
  const Context ctx = generate_context(cfg, rng);
  return Evaluator(ctx.distances, ctx.traffic, params);
}

GaConfig small_ga() {
  GaConfig cfg;
  cfg.population = 30;
  cfg.generations = 30;
  return cfg;
}

TEST(GaConfig, DerivesComposition) {
  GaConfig cfg;
  cfg.population = 100;
  const GaConfig r = cfg.resolved();
  EXPECT_EQ(r.num_saved, 10u);
  EXPECT_EQ(r.num_mutation, 30u);
  EXPECT_EQ(r.num_crossover, 60u);
  EXPECT_EQ(r.num_saved + r.num_crossover + r.num_mutation, r.population);
}

TEST(GaConfig, ValidatesComposition) {
  GaConfig cfg;
  cfg.population = 10;
  cfg.num_saved = 5;
  cfg.num_crossover = 3;
  cfg.num_mutation = 3;  // sums to 11 != 10
  EXPECT_THROW(cfg.resolved(), std::invalid_argument);
  cfg.num_mutation = 2;
  EXPECT_NO_THROW(cfg.resolved());
}

TEST(GaConfig, ValidatesRanges) {
  GaConfig cfg;
  cfg.population = 1;
  EXPECT_THROW(cfg.resolved(), std::invalid_argument);
  cfg = GaConfig{};
  cfg.generations = 0;
  EXPECT_THROW(cfg.resolved(), std::invalid_argument);
  cfg = GaConfig{};
  cfg.node_mutation_prob = 1.5;
  EXPECT_THROW(cfg.resolved(), std::invalid_argument);
  cfg = GaConfig{};
  cfg.parents_a = 11;
  cfg.tournament_b = 10;
  EXPECT_THROW(cfg.resolved(), std::invalid_argument);
}

TEST(GaConfig, RejectsParentsBeyondClampedTournament) {
  // tournament_b is clamped to the population before validation, so a
  // parents_a that only fit the pre-clamp tournament is rejected rather
  // than silently shrunk (the old ordering validated first, clamped after).
  GaConfig cfg;
  cfg.population = 8;
  cfg.tournament_b = 20;  // > population: clamped to 8
  cfg.parents_a = 12;     // fits 20, not the clamped 8 -> must throw
  EXPECT_THROW(cfg.resolved(), std::invalid_argument);

  cfg.parents_a = 2;  // fits the clamped tournament: fine
  GaConfig r;
  EXPECT_NO_THROW(r = cfg.resolved());
  EXPECT_EQ(r.tournament_b, 8u);
  EXPECT_EQ(r.parents_a, 2u);
}

TEST(RunGa, ProducesConnectedFiniteBest) {
  Evaluator eval = make_evaluator(15, CostParams{10, 1, 4e-4, 10});
  Rng rng(1);
  const GaResult r = run_ga(eval, small_ga(), rng);
  EXPECT_TRUE(is_connected(r.best));
  EXPECT_TRUE(std::isfinite(r.best_cost));
  EXPECT_NEAR(r.best_cost, eval.cost(r.best), 1e-9);
}

TEST(RunGa, DeterministicGivenSeed) {
  Evaluator eval1 = make_evaluator(12, CostParams{10, 1, 1e-4, 0});
  Evaluator eval2 = make_evaluator(12, CostParams{10, 1, 1e-4, 0});
  Rng rng1(7), rng2(7);
  const GaResult a = run_ga(eval1, small_ga(), rng1);
  const GaResult b = run_ga(eval2, small_ga(), rng2);
  EXPECT_TRUE(a.best == b.best);
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
}

TEST(RunGa, BestCostMonotoneOverGenerations) {
  // Elitism guarantees the running best never regresses.
  Evaluator eval = make_evaluator(15, CostParams{10, 1, 4e-4, 10});
  Rng rng(2);
  const GaResult r = run_ga(eval, small_ga(), rng);
  for (std::size_t g = 1; g < r.best_cost_history.size(); ++g) {
    EXPECT_LE(r.best_cost_history[g], r.best_cost_history[g - 1] + 1e-12);
  }
}

TEST(RunGa, NeverWorseThanSeeds) {
  // The "initialized GA" guarantee (paper §3.3): seeding with heuristic
  // outputs bounds the result by the best seed.
  Evaluator eval = make_evaluator(15, CostParams{10, 1, 4e-4, 10});
  Rng hrng(3);
  const auto heuristics = run_all_heuristics(eval, hrng);
  std::vector<Topology> seeds;
  double best_seed_cost = std::numeric_limits<double>::infinity();
  for (const auto& h : heuristics) {
    seeds.push_back(h.topology);
    best_seed_cost = std::min(best_seed_cost, h.cost);
  }
  Rng rng(3);
  const GaResult r = run_ga(eval, small_ga(), rng, seeds);
  EXPECT_LE(r.best_cost, best_seed_cost + 1e-9);
}

TEST(RunGa, NeverWorseThanMstAndClique) {
  Evaluator eval = make_evaluator(12, CostParams{10, 1, 1e-3, 0});
  Rng rng(4);
  const GaResult r = run_ga(eval, small_ga(), rng);
  EXPECT_LE(r.best_cost,
            eval.cost(minimum_spanning_tree(eval.lengths())) + 1e-9);
  EXPECT_LE(r.best_cost, eval.cost(Topology::complete(12)) + 1e-9);
}

TEST(RunGa, FindsExactOptimumOnSmallInstances) {
  // The paper's §5 check: the (initialized) GA finds the brute-force
  // optimum for small n.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Evaluator eval = make_evaluator(5, CostParams{10, 1, 1e-3, 5}, seed);
    const BruteForceResult exact = brute_force_optimum(eval);
    Rng hrng(seed);
    std::vector<Topology> seeds;
    for (const auto& h : run_all_heuristics(eval, hrng)) {
      seeds.push_back(h.topology);
    }
    Rng rng(seed);
    GaConfig cfg;
    cfg.population = 48;
    cfg.generations = 48;
    const GaResult r = run_ga(eval, cfg, rng, seeds);
    EXPECT_NEAR(r.best_cost, exact.cost, 1e-9) << "seed " << seed;
  }
}

TEST(RunGa, FinalPopulationConsistent) {
  Evaluator eval = make_evaluator(10, CostParams{10, 1, 1e-4, 0});
  Rng rng(5);
  GaConfig cfg = small_ga();
  const GaResult r = run_ga(eval, cfg, rng);
  EXPECT_EQ(r.final_population.size(), cfg.population);
  EXPECT_EQ(r.final_costs.size(), cfg.population);
  for (std::size_t i = 0; i < r.final_population.size(); ++i) {
    EXPECT_TRUE(is_connected(r.final_population[i]));
    EXPECT_GE(r.final_costs[i], r.best_cost - 1e-12);
  }
  // History: one entry per generation plus the final state.
  EXPECT_EQ(r.best_cost_history.size(), cfg.generations + 1);
  EXPECT_GT(r.evaluations, cfg.population);
}

TEST(RunGa, SeedSizeMismatchThrows) {
  Evaluator eval = make_evaluator(10, CostParams{});
  Rng rng(6);
  EXPECT_THROW(run_ga(eval, small_ga(), rng, {Topology(5)}),
               std::invalid_argument);
}

TEST(RunGa, HighHubCostProducesHubbyNetworks) {
  // The plain GA is weak in the hub regime (the paper's Fig 3 observation);
  // seeded with the heuristics — the recommended configuration — it must
  // find a strongly hub-centric network.
  Evaluator eval = make_evaluator(15, CostParams{10, 1, 1e-4, 1000});
  Rng hrng(8);
  std::vector<Topology> seeds;
  for (const auto& h : run_all_heuristics(eval, hrng)) {
    seeds.push_back(h.topology);
  }
  Rng rng(8);
  const GaResult r = run_ga(eval, small_ga(), rng, seeds);
  EXPECT_LE(r.best.num_core_nodes(), 3u);
}

TEST(RunGa, HighBandwidthCostProducesMeshyNetworks) {
  Evaluator eval = make_evaluator(12, CostParams{1, 1, 1.0, 0});
  Rng rng(9);
  const GaResult r = run_ga(eval, small_ga(), rng);
  // k2 dominant: approaching a clique (avg degree near n-1).
  EXPECT_GT(average_degree(r.best), 8.0);
}

TEST(RepairConnectivity, CountsAddedLinks) {
  Evaluator eval = make_evaluator(8, CostParams{});
  Topology g(8);  // fully disconnected
  const std::size_t added = repair_connectivity(g, eval.lengths());
  EXPECT_EQ(added, 7u);
  EXPECT_TRUE(is_connected(g));
}

}  // namespace
}  // namespace cold
