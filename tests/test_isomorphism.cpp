#include "graph/isomorphism.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cold {
namespace {

Topology relabel(const Topology& g, const std::vector<NodeId>& perm) {
  Topology out(g.num_nodes());
  for (const Edge& e : g.edges()) out.add_edge(perm[e.u], perm[e.v]);
  return out;
}

TEST(Isomorphism, IdenticalGraphs) {
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_TRUE(are_isomorphic(g, g));
}

TEST(Isomorphism, RelabeledGraphIsIsomorphic) {
  Rng rng(1);
  Topology g(8);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 6);
  g.add_edge(6, 7);
  g.add_edge(2, 7);
  std::vector<NodeId> perm(8);
  for (NodeId v = 0; v < 8; ++v) perm[v] = v;
  rng.shuffle(perm);
  const Topology h = relabel(g, perm);
  const auto mapping = find_isomorphism(g, h);
  ASSERT_TRUE(mapping.has_value());
  // Verify the mapping is a genuine isomorphism.
  for (NodeId i = 0; i < 8; ++i) {
    for (NodeId j = i + 1; j < 8; ++j) {
      EXPECT_EQ(g.has_edge(i, j), h.has_edge((*mapping)[i], (*mapping)[j]));
    }
  }
}

TEST(Isomorphism, DifferentEdgeCountsRejectedFast) {
  Topology a(3), b(3);
  a.add_edge(0, 1);
  EXPECT_FALSE(are_isomorphic(a, b));
}

TEST(Isomorphism, DifferentDegreeSequences) {
  // Path 0-1-2-3 vs star: same edge count, different degrees.
  Topology path(4), star = Topology::star(4, 0);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  path.add_edge(2, 3);
  EXPECT_FALSE(are_isomorphic(path, star));
}

TEST(Isomorphism, SameDegreeSequenceDifferentStructure) {
  // Classic: C6 vs two triangles — both 2-regular on 6 nodes.
  Topology c6(6);
  for (NodeId v = 0; v < 6; ++v) c6.add_edge(v, (v + 1) % 6);
  Topology triangles(6);
  triangles.add_edge(0, 1);
  triangles.add_edge(1, 2);
  triangles.add_edge(0, 2);
  triangles.add_edge(3, 4);
  triangles.add_edge(4, 5);
  triangles.add_edge(3, 5);
  EXPECT_FALSE(are_isomorphic(c6, triangles));
}

TEST(Isomorphism, SizeMismatch) {
  EXPECT_FALSE(are_isomorphic(Topology(3), Topology(4)));
}

TEST(Isomorphism, EmptyGraphs) {
  EXPECT_TRUE(are_isomorphic(Topology(0), Topology(0)));
  EXPECT_TRUE(are_isomorphic(Topology(5), Topology(5)));
}

TEST(Isomorphism, RegularGraphsNeedBacktracking) {
  // Both 3-regular on 6 nodes: K_{3,3} vs the prism (two triangles joined by
  // a perfect matching). WL colouring cannot separate nodes; structure must.
  Topology k33(6);
  for (NodeId i = 0; i < 3; ++i) {
    for (NodeId j = 3; j < 6; ++j) k33.add_edge(i, j);
  }
  Topology prism(6);
  prism.add_edge(0, 1);
  prism.add_edge(1, 2);
  prism.add_edge(0, 2);
  prism.add_edge(3, 4);
  prism.add_edge(4, 5);
  prism.add_edge(3, 5);
  prism.add_edge(0, 3);
  prism.add_edge(1, 4);
  prism.add_edge(2, 5);
  EXPECT_FALSE(are_isomorphic(k33, prism));  // prism has triangles, K33 none
  // And each is isomorphic to a shuffled copy of itself.
  Rng rng(2);
  std::vector<NodeId> perm(6);
  for (NodeId v = 0; v < 6; ++v) perm[v] = v;
  rng.shuffle(perm);
  EXPECT_TRUE(are_isomorphic(prism, relabel(prism, perm)));
  EXPECT_TRUE(are_isomorphic(k33, relabel(k33, perm)));
}

}  // namespace
}  // namespace cold
