#include "ga/operators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "geom/distance.h"
#include "util/stats.h"

namespace cold {
namespace {

TEST(SelectParents, ReturnsLowestCostOfTournament) {
  // b = M: the tournament sees everyone, so the a cheapest must win.
  const std::vector<double> costs{5.0, 1.0, 3.0, 2.0, 4.0};
  Rng rng(1);
  const auto parents = select_parents(costs, 2, 5, rng);
  ASSERT_EQ(parents.size(), 2u);
  EXPECT_EQ(parents[0], 1u);
  EXPECT_EQ(parents[1], 3u);
}

TEST(SelectParents, DistinctCandidates) {
  const std::vector<double> costs(10, 1.0);
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const auto parents = select_parents(costs, 3, 5, rng);
    ASSERT_EQ(parents.size(), 3u);
    EXPECT_NE(parents[0], parents[1]);
    EXPECT_NE(parents[0], parents[2]);
    EXPECT_NE(parents[1], parents[2]);
  }
}

TEST(SelectParents, BiasTowardsCheap) {
  // Index 0 is far cheaper; with b=3 of 10 it should be picked much more
  // often than 1/10 of the time.
  std::vector<double> costs(10, 10.0);
  costs[0] = 1.0;
  Rng rng(3);
  int wins = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    if (select_parents(costs, 1, 3, rng)[0] == 0) ++wins;
  }
  // P(0 in sample of 3) = 1 - C(9,3)/C(10,3) = 0.3.
  EXPECT_NEAR(static_cast<double>(wins) / trials, 0.3, 0.04);
}

TEST(SelectParents, Validates) {
  const std::vector<double> costs{1.0, 2.0};
  Rng rng(4);
  EXPECT_THROW(select_parents(costs, 0, 2, rng), std::invalid_argument);
  EXPECT_THROW(select_parents(costs, 3, 2, rng), std::invalid_argument);
  EXPECT_THROW(select_parents(costs, 1, 5, rng), std::invalid_argument);
}

TEST(Crossover, AgreementIsPreserved) {
  // Links present (absent) in all parents must be present (absent) in the
  // child — uniform crossover can only choose among parent genes.
  Rng rng(5);
  Topology a(6), b(6);
  a.add_edge(0, 1);
  b.add_edge(0, 1);  // shared
  a.add_edge(2, 3);  // only in a
  b.add_edge(4, 5);  // only in b
  for (int trial = 0; trial < 50; ++trial) {
    const Topology child = crossover({&a, &b}, {1.0, 1.0}, rng);
    EXPECT_TRUE(child.has_edge(0, 1));
    EXPECT_FALSE(child.has_edge(1, 2));
    // Disputed links may go either way but nothing else may appear.
    for (const Edge& e : child.edges()) {
      EXPECT_TRUE(a.has_edge(e.u, e.v) || b.has_edge(e.u, e.v));
    }
  }
}

TEST(Crossover, CheaperParentDonatesMore) {
  // Parent a (cost 1) has a clique, parent b (cost 9) is empty: child edges
  // come from a with probability 0.9 per link.
  Rng rng(6);
  const Topology a = Topology::complete(8);
  const Topology b(8);
  double total_edges = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    total_edges += static_cast<double>(
        crossover({&a, &b}, {1.0, 9.0}, rng).num_edges());
  }
  const double mean_edges = total_edges / trials;
  EXPECT_NEAR(mean_edges, 0.9 * 28.0, 1.0);
}

TEST(Crossover, Validates) {
  Rng rng(7);
  Topology a(3), b(4);
  EXPECT_THROW(crossover({}, {}, rng), std::invalid_argument);
  EXPECT_THROW(crossover({&a, &b}, {1.0, 1.0}, rng), std::invalid_argument);
  EXPECT_THROW(crossover({&a}, {1.0, 2.0}, rng), std::invalid_argument);
}

TEST(Crossover, InfeasibleParentContributesNothing) {
  // A parent with infinite cost gets weight 0.
  Rng rng(8);
  const Topology a(5);
  const Topology b = Topology::complete(5);
  constexpr double inf = std::numeric_limits<double>::infinity();
  for (int t = 0; t < 20; ++t) {
    const Topology child = crossover({&a, &b}, {inf, 2.0}, rng);
    EXPECT_EQ(child.num_edges(), 10u);  // all genes from b
  }
}

TEST(LinkMutation, AverageAboutTwoChanges) {
  Rng rng(9);
  double total = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    Topology g(10);
    // Half-full so both additions and removals are available.
    for (NodeId i = 0; i < 10; ++i) {
      for (NodeId j = i + 1; j < 10; ++j) {
        if ((i + j) % 2 == 0) g.add_edge(i, j);
      }
    }
    total += static_cast<double>(link_mutation(g, rng));
  }
  EXPECT_NEAR(total / trials, 2.0, 0.1);
}

TEST(LinkMutation, RespectsAvailability) {
  Rng rng(10);
  // Empty graph: no removals possible; changes are additions only.
  for (int t = 0; t < 50; ++t) {
    Topology g(5);
    link_mutation(g, rng);
    EXPECT_LE(g.num_edges(), 10u);
  }
  // Full graph: no additions possible.
  for (int t = 0; t < 50; ++t) {
    Topology g = Topology::complete(5);
    link_mutation(g, rng);
    EXPECT_LE(10u - g.num_edges(), 10u);
  }
}

TEST(NodeMutation, VictimBecomesLeafOnClosestNonLeaf) {
  // Path 0-1-2-3 (non-leaves 1, 2) with geometry making 2 closest to 1.
  const std::vector<Point> pts{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  const auto d = distance_matrix(pts);
  Rng rng(11);
  bool saw_mutation = false;
  for (int t = 0; t < 20; ++t) {
    Topology g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    if (node_mutation(g, d, rng)) {
      saw_mutation = true;
      // Victim (1 or 2) now has degree 1, attached to the other.
      EXPECT_TRUE((g.degree(1) == 1 && g.has_edge(1, 2)) ||
                  (g.degree(2) == 1 && g.has_edge(2, 1)));
    }
  }
  EXPECT_TRUE(saw_mutation);
}

TEST(NodeMutation, NoOpWithoutTwoNonLeaves) {
  const auto d = Matrix<double>::square(4, 1.0);
  Rng rng(12);
  Topology star = Topology::star(4, 0);  // one non-leaf
  const Topology before = star;
  EXPECT_FALSE(node_mutation(star, d, rng));
  EXPECT_TRUE(star == before);
}

TEST(InverseCostIndex, PrefersCheap) {
  Rng rng(13);
  const std::vector<double> costs{1.0, 4.0};
  int zero = 0;
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    if (inverse_cost_index(costs, rng) == 0) ++zero;
  }
  // Weights 1 and 0.25 -> P(0) = 0.8.
  EXPECT_NEAR(static_cast<double>(zero) / trials, 0.8, 0.03);
}

TEST(InverseCostIndex, AllInfiniteFallsBackToUniform) {
  Rng rng(14);
  constexpr double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> costs{inf, inf, inf};
  std::vector<int> counts(3, 0);
  for (int t = 0; t < 3000; ++t) ++counts[inverse_cost_index(costs, rng)];
  for (int c : counts) EXPECT_GT(c, 800);
}

}  // namespace
}  // namespace cold
