#include "core/presets.h"

#include <gtest/gtest.h>

#include "core/synthesizer.h"
#include "graph/metrics.h"

namespace cold {
namespace {

TEST(Presets, NamesRoundTrip) {
  for (NetworkStyle style : all_network_styles()) {
    EXPECT_EQ(network_style_from_string(to_string(style)), style);
    EXPECT_NO_THROW(preset_costs(style).validate());
  }
  EXPECT_THROW(network_style_from_string("bogus"), std::invalid_argument);
}

TEST(Presets, AllStylesListed) {
  EXPECT_EQ(all_network_styles().size(), 5u);
}

// Each preset must land in its advertised region of metric space; this is
// the contract users rely on when picking a preset.
struct StyleExpectation {
  NetworkStyle style;
  double min_cvnd, max_cvnd;
  double min_degree, max_degree;
};

class PresetBehaviour : public ::testing::TestWithParam<StyleExpectation> {};

TEST_P(PresetBehaviour, MetricsLandInAdvertisedRegion) {
  const StyleExpectation e = GetParam();
  SynthesisConfig cfg;
  cfg.context.num_pops = 24;
  cfg.costs = preset_costs(e.style);
  cfg.ga.population = 32;
  cfg.ga.generations = 24;
  const Synthesizer synth(cfg);
  double cvnd = 0.0, degree = 0.0;
  const std::size_t seeds = 3;
  for (std::size_t s = 0; s < seeds; ++s) {
    const TopologyMetrics m =
        compute_metrics(synth.synthesize(10 + s).network.topology);
    EXPECT_TRUE(m.connected);
    cvnd += m.degree_cv / seeds;
    degree += m.avg_degree / seeds;
  }
  EXPECT_GE(cvnd, e.min_cvnd) << to_string(e.style);
  EXPECT_LE(cvnd, e.max_cvnd) << to_string(e.style);
  EXPECT_GE(degree, e.min_degree) << to_string(e.style);
  EXPECT_LE(degree, e.max_degree) << to_string(e.style);
}

INSTANTIATE_TEST_SUITE_P(
    Styles, PresetBehaviour,
    ::testing::Values(
        StyleExpectation{NetworkStyle::kTree, 0.0, 1.7, 1.8, 2.05},
        StyleExpectation{NetworkStyle::kHubAndSpoke, 1.8, 3.0, 1.8, 2.1},
        StyleExpectation{NetworkStyle::kRegional, 0.8, 2.2, 1.9, 2.6},
        StyleExpectation{NetworkStyle::kBalanced, 0.6, 1.8, 1.9, 3.0},
        StyleExpectation{NetworkStyle::kMesh, 0.3, 1.2, 2.8, 8.0}),
    [](const ::testing::TestParamInfo<StyleExpectation>& info) {
      std::string name = to_string(info.param.style);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace cold
