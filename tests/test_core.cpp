#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/context.h"
#include "core/ensemble.h"
#include "core/synthesizer.h"
#include "graph/algorithms.h"
#include "graph/metrics.h"
#include "net/network.h"
#include "util/stats.h"

namespace cold {
namespace {

GaConfig small_ga() {
  GaConfig cfg;
  cfg.population = 24;
  cfg.generations = 20;
  return cfg;
}

SynthesisConfig small_config(std::size_t n, CostParams costs) {
  SynthesisConfig cfg;
  cfg.context.num_pops = n;
  cfg.costs = costs;
  cfg.ga = small_ga();
  return cfg;
}

TEST(GenerateContext, ShapesAndDefaults) {
  ContextConfig cfg;
  cfg.num_pops = 25;
  Rng rng(1);
  const Context ctx = generate_context(cfg, rng);
  EXPECT_EQ(ctx.num_pops(), 25u);
  EXPECT_EQ(ctx.traffic.rows(), 25u);
  EXPECT_EQ(ctx.distances.rows(), 25u);
  for (const Point& p : ctx.locations) {
    EXPECT_TRUE(Rectangle().contains(p));
  }
  for (double pop : ctx.populations) EXPECT_GT(pop, 0.0);
  EXPECT_NO_THROW(validate_traffic_matrix(ctx.traffic));
}

TEST(GenerateContext, DifferentSeedsDifferentContexts) {
  ContextConfig cfg;
  cfg.num_pops = 10;
  Rng rng1(1), rng2(2);
  const Context a = generate_context(cfg, rng1);
  const Context b = generate_context(cfg, rng2);
  EXPECT_FALSE(a.locations == b.locations);
}

TEST(GenerateContext, CustomModelsAreUsed) {
  ContextConfig cfg;
  cfg.num_pops = 12;
  cfg.point_process = std::make_shared<ClusteredProcess>(3, 0.02);
  cfg.population_model = std::make_shared<UniformPopulation>(5.0);
  Rng rng(3);
  const Context ctx = generate_context(cfg, rng);
  for (double p : ctx.populations) EXPECT_DOUBLE_EQ(p, 5.0);
}

TEST(GenerateContext, RejectsTinyNetworks) {
  ContextConfig cfg;
  cfg.num_pops = 1;
  Rng rng(4);
  EXPECT_THROW(generate_context(cfg, rng), std::invalid_argument);
}

TEST(MakeContext, ValidatesAndComputesDistances) {
  const std::vector<Point> pts{{0, 0}, {3, 4}};
  const Context ctx =
      make_context(pts, {1.0, 2.0}, gravity_matrix({1.0, 2.0}));
  EXPECT_DOUBLE_EQ(ctx.distances(0, 1), 5.0);
  EXPECT_THROW(make_context(pts, {1.0}, gravity_matrix({1.0, 2.0})),
               std::invalid_argument);
}

TEST(Synthesizer, ProducesValidNetwork) {
  const Synthesizer synth(small_config(12, CostParams{10, 1, 4e-4, 10}));
  const SynthesisResult r = synth.synthesize(1);
  EXPECT_EQ(r.network.num_pops(), 12u);
  EXPECT_NO_THROW(validate_network(r.network));
  EXPECT_TRUE(r.cost.feasible);
  EXPECT_TRUE(std::isfinite(r.cost.total()));
  EXPECT_EQ(r.heuristics.size(), 4u);  // seeded by default
}

TEST(Synthesizer, DeterministicGivenSeed) {
  const Synthesizer synth(small_config(10, CostParams{10, 1, 1e-4, 0}));
  const SynthesisResult a = synth.synthesize(42);
  const SynthesisResult b = synth.synthesize(42);
  EXPECT_TRUE(a.network.topology == b.network.topology);
  EXPECT_DOUBLE_EQ(a.cost.total(), b.cost.total());
  EXPECT_TRUE(a.context.locations == b.context.locations);
}

TEST(Synthesizer, DifferentSeedsProduceDistinctNetworks) {
  const Synthesizer synth(small_config(12, CostParams{10, 1, 4e-4, 10}));
  const SynthesisResult a = synth.synthesize(1);
  const SynthesisResult b = synth.synthesize(2);
  EXPECT_GT(Topology::edge_difference(a.network.topology, b.network.topology),
            0u);
}

TEST(Synthesizer, SeedingNeverHurts) {
  // With heuristic seeding, the result is never worse than the best seed.
  SynthesisConfig cfg = small_config(14, CostParams{10, 1, 4e-4, 10});
  const Synthesizer synth(cfg);
  const SynthesisResult r = synth.synthesize(5);
  double best_seed = std::numeric_limits<double>::infinity();
  for (const auto& h : r.heuristics) best_seed = std::min(best_seed, h.cost);
  EXPECT_LE(r.cost.total(), best_seed + 1e-9);
}

TEST(Synthesizer, FixedContextMultipleTopologies) {
  // Paper §3.3: fixed context + different optimizer seeds -> multiple
  // networks for the same context.
  SynthesisConfig cfg = small_config(12, CostParams{10, 1, 4e-4, 10});
  cfg.seed_with_heuristics = false;  // keep optimizer fully stochastic
  const Synthesizer synth(cfg);
  Rng ctx_rng(9);
  const Context ctx = generate_context(cfg.context, ctx_rng);
  const SynthesisResult a = synth.synthesize_for_context(ctx, 1);
  const SynthesisResult b = synth.synthesize_for_context(ctx, 2);
  EXPECT_TRUE(a.context.locations == b.context.locations);
  EXPECT_NO_THROW(validate_network(a.network));
  EXPECT_NO_THROW(validate_network(b.network));
}

TEST(Synthesizer, OverprovisionPropagates) {
  SynthesisConfig cfg = small_config(8, CostParams{});
  cfg.overprovision = 2.0;
  const Synthesizer synth(cfg);
  const SynthesisResult r = synth.synthesize(1);
  for (const Link& l : r.network.links) {
    EXPECT_DOUBLE_EQ(l.capacity, 2.0 * l.load);
  }
}

TEST(Synthesizer, ValidatesConfig) {
  SynthesisConfig bad = small_config(8, CostParams{});
  bad.overprovision = 0.5;
  EXPECT_THROW(Synthesizer{bad}, std::invalid_argument);
  SynthesisConfig bad_cost = small_config(8, CostParams{});
  bad_cost.costs.k0 = -1.0;
  EXPECT_THROW(Synthesizer{bad_cost}, std::invalid_argument);
}

TEST(Ensemble, StatsAndDistinctness) {
  const Synthesizer synth(small_config(10, CostParams{10, 1, 4e-4, 10}));
  const EnsembleResult e = generate_ensemble(synth, 6, /*base_seed=*/100);
  EXPECT_EQ(e.num_runs(), 6u);
  // Paper criterion 1: networks are distinct by construction (contexts
  // differ even when two hubby topologies repeat a labeled star shape).
  EXPECT_TRUE(e.all_distinct);
  EXPECT_LE(e.stats.avg_degree.lo, e.stats.avg_degree.mean);
  EXPECT_GE(e.stats.avg_degree.hi, e.stats.avg_degree.mean);
  EXPECT_GT(e.stats.avg_degree.mean, 1.0);
}

TEST(SweepMetrics, MatchesEnsembleSize) {
  const Synthesizer synth(small_config(8, CostParams{10, 1, 1e-4, 0}));
  const auto ms = sweep_metrics(synth, 4, 7);
  ASSERT_EQ(ms.size(), 4u);
  for (const TopologyMetrics& m : ms) {
    EXPECT_TRUE(m.connected);
    EXPECT_EQ(m.nodes, 8u);
  }
}

}  // namespace
}  // namespace cold
