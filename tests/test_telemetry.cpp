// Tests for the run telemetry subsystem: the observer event stream and its
// determinism contract (logical traces are byte-identical for any thread
// count), cooperative stop conditions, phase timers, and the JSON run
// report round-trip.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/context.h"
#include "core/ensemble.h"
#include "core/synthesizer.h"
#include "cost/evaluator.h"
#include "ga/genetic.h"
#include "ga/objective.h"
#include "graph/algorithms.h"
#include "io/json_value.h"
#include "telemetry/report.h"
#include "telemetry/report_diff.h"
#include "telemetry/sinks.h"
#include "telemetry/telemetry.h"

namespace cold {
namespace {

SynthesisConfig small_config(std::size_t pops = 10) {
  SynthesisConfig cfg;
  cfg.context.num_pops = pops;
  cfg.ga.population = 16;
  cfg.ga.generations = 8;
  return cfg;
}

Evaluator small_evaluator(std::uint64_t seed, std::size_t pops = 8) {
  ContextConfig cfg;
  cfg.num_pops = pops;
  Rng rng(seed);
  const Context ctx = generate_context(cfg, rng);
  return Evaluator(ctx.distances, ctx.traffic, CostParams{});
}

// ---------------------------------------------------------------------------
// StopCondition unit behavior.
// ---------------------------------------------------------------------------

TEST(StopCondition, DefaultNeverStops) {
  StopCondition stop;
  stop.arm();
  stop.add_evaluations(1'000'000);
  EXPECT_FALSE(stop.should_stop());
  EXPECT_EQ(stop.reason(), StopReason::kNone);
}

TEST(StopCondition, EvalBudgetFires) {
  StopCondition stop = StopCondition::eval_budget(100);
  stop.arm();
  stop.add_evaluations(99);
  EXPECT_FALSE(stop.should_stop());
  stop.add_evaluations(1);
  EXPECT_TRUE(stop.should_stop());
  EXPECT_EQ(stop.reason(), StopReason::kEvalBudget);
  EXPECT_EQ(stop.evaluations(), 100u);
}

TEST(StopCondition, DeadlineFiresOnceArmed) {
  StopCondition stop = StopCondition::wall_clock(1e-9);
  EXPECT_FALSE(stop.should_stop());  // not armed yet: clock hasn't started
  stop.arm();
  EXPECT_TRUE(stop.should_stop());
  EXPECT_EQ(stop.reason(), StopReason::kDeadline);
}

TEST(StopCondition, RequestWinsPrecedence) {
  StopCondition stop = StopCondition::eval_budget(1);
  stop.arm();
  stop.add_evaluations(5);
  stop.request_stop();
  EXPECT_EQ(stop.reason(), StopReason::kRequested);
}

TEST(StopCondition, ToStringCoversReasons) {
  EXPECT_EQ(to_string(StopReason::kNone), "none");
  EXPECT_EQ(to_string(StopReason::kRequested), "requested");
  EXPECT_EQ(to_string(StopReason::kDeadline), "deadline");
  EXPECT_EQ(to_string(StopReason::kEvalBudget), "eval_budget");
}

// ---------------------------------------------------------------------------
// Observer mechanics.
// ---------------------------------------------------------------------------

TEST(MultiObserver, FansOutAndIgnoresNull) {
  TraceSink a, b;
  MultiObserver multi;
  multi.add(&a);
  multi.add(nullptr);
  multi.add(&b);
  multi.on_generation_end({0, 1.0, 2.0, 0, 0, 16, 0, 10});
  RunSummary summary;
  summary.best_cost = 1.0;
  summary.evaluations = 16;
  summary.wall_ns = 10;
  multi.on_run_end(summary);
  EXPECT_EQ(a.count<GenerationEnd>(), 1u);
  EXPECT_EQ(b.count<GenerationEnd>(), 1u);
  EXPECT_EQ(a.canonical(), b.canonical());
}

TEST(PhaseTimer, EmitsPairedEventsWithEvalDelta) {
  TraceSink sink;
  std::size_t evals = 10;
  {
    PhaseTimer timer(&sink, Phase::kGa, [&] { return evals; });
    evals = 42;
  }
  ASSERT_EQ(sink.events().size(), 2u);
  ASSERT_TRUE(std::holds_alternative<Phase>(sink.events()[0].v));
  ASSERT_TRUE(std::holds_alternative<PhaseStats>(sink.events()[1].v));
  const auto& stats = std::get<PhaseStats>(sink.events()[1].v);
  EXPECT_EQ(stats.phase, Phase::kGa);
  EXPECT_EQ(stats.evaluations, 32u);  // delta, not absolute
}

TEST(PhaseTimer, EmitsEngineCounterDeltas) {
  TraceSink sink;
  EngineCounters counters;
  counters.cache_hits = 5;
  counters.cache_misses = 7;
  counters.cache_inserts = 7;
  counters.cache_evictions = 1;
  counters.dedup_skipped = 2;
  {
    PhaseTimer timer(&sink, Phase::kGa, {}, [&] { return counters; });
    counters.cache_hits = 25;
    counters.cache_misses = 10;
    counters.cache_inserts = 9;
    counters.cache_evictions = 1;
    counters.dedup_skipped = 8;
  }
  ASSERT_EQ(sink.events().size(), 2u);
  const auto& stats = std::get<PhaseStats>(sink.events()[1].v);
  EXPECT_EQ(stats.cache_hits, 20u);  // deltas, not absolutes
  EXPECT_EQ(stats.cache_misses, 3u);
  EXPECT_EQ(stats.cache_inserts, 2u);
  EXPECT_EQ(stats.cache_evictions, 0u);
  EXPECT_EQ(stats.dedup_skipped, 6u);
}

TEST(PhaseTimer, NullObserverIsNoop) {
  PhaseTimer timer(nullptr, Phase::kContext);  // must not crash
}

TEST(TraceSink, EngineCountersArePerformanceData) {
  // Cache/dedup counters vary across engine configurations, so canonical()
  // treats them exactly like wall_ns: present with timing, absent without —
  // that is what keeps timing-free traces comparable across configs.
  TraceSink sink;
  PhaseStats phase;
  phase.phase = Phase::kGa;
  phase.cache_hits = 3;
  sink.on_phase_end(phase);
  GenerationEnd gen;
  gen.dedup_skipped = 4;
  sink.on_generation_end(gen);
  RunSummary summary;
  summary.cache_hits = 9;
  summary.dedup_skipped = 4;
  sink.on_run_end(summary);

  const std::string bare = sink.canonical(/*include_timing=*/false);
  EXPECT_EQ(bare.find("cache_"), std::string::npos);
  EXPECT_EQ(bare.find("dedup_"), std::string::npos);
  const std::string timed = sink.canonical(/*include_timing=*/true);
  EXPECT_NE(timed.find("phase_end ga evals=0 cache_hits=3"),
            std::string::npos);
  EXPECT_NE(timed.find("cache_hits=9"), std::string::npos);
  EXPECT_NE(timed.find("dedup_skipped=4"), std::string::npos);
}

// ---------------------------------------------------------------------------
// GA event stream.
// ---------------------------------------------------------------------------

TEST(GaTelemetry, ObserverSeesExactlyOneEventPerGeneration) {
  Evaluator eval = small_evaluator(7);
  TraceSink sink;
  GaRunOptions options;
  options.config.population = 16;
  options.config.generations = 11;
  options.observer = &sink;
  Rng rng(3);
  const GaResult r = run_ga(eval, rng, options);
  EXPECT_EQ(sink.count<GenerationEnd>(), 11u);
  EXPECT_EQ(r.generations_run, 11u);
  EXPECT_FALSE(r.stopped_early);

  // Generation indices are 0..T-1 in order; evaluation deltas sum to the
  // post-initialization total.
  std::size_t expected_gen = 0, evals = 0;
  double last_best = -1.0;
  for (const TraceEvent& e : sink.events()) {
    if (const auto* gen = std::get_if<GenerationEnd>(&e.v)) {
      EXPECT_EQ(gen->gen, expected_gen++);
      EXPECT_GE(gen->mean_cost, gen->best_cost);
      evals += gen->evaluations;
      if (last_best >= 0) {
        EXPECT_LE(gen->best_cost, last_best);
      }
      last_best = gen->best_cost;
    }
  }
  EXPECT_GT(evals, 0u);
  EXPECT_LE(evals, r.evaluations);
}

TEST(GaTelemetry, TraceIsIdenticalAcrossThreadCounts) {
  std::vector<std::string> traces;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    Evaluator eval = small_evaluator(7);
    TraceSink sink;
    GaRunOptions options;
    options.config.population = 16;
    options.config.generations = 10;
    options.config.parallel.num_threads = threads;
    options.observer = &sink;
    Rng rng(5);
    run_ga(eval, rng, options);
    traces.push_back(sink.canonical());
  }
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_EQ(traces[0], traces[2]);
  EXPECT_FALSE(traces[0].empty());
}

TEST(GaTelemetry, EvalBudgetStopsEarlyWithValidResult) {
  Evaluator eval = small_evaluator(7);
  StopCondition stop = StopCondition::eval_budget(120);
  GaRunOptions options;
  options.config.population = 16;
  options.config.generations = 10'000;
  options.stop = &stop;
  Rng rng(3);
  const GaResult r = run_ga(eval, rng, options);
  EXPECT_TRUE(r.stopped_early);
  EXPECT_EQ(r.stop_reason, StopReason::kEvalBudget);
  EXPECT_LT(r.generations_run, 10'000u);
  EXPECT_TRUE(is_connected(r.best));
  EXPECT_GT(r.best_cost, 0.0);
  EXPECT_GE(stop.evaluations(), 120u);
}

TEST(GaTelemetry, ObserverCanRequestStop) {
  class StopAfter final : public RunObserver {
   public:
    StopAfter(StopCondition& stop, std::size_t after)
        : stop_(stop), after_(after) {}
    void on_generation_end(const GenerationEnd& e) override {
      if (e.gen + 1 >= after_) stop_.request_stop();
    }

   private:
    StopCondition& stop_;
    std::size_t after_;
  };

  Evaluator eval = small_evaluator(7);
  StopCondition stop;
  StopAfter observer(stop, 4);
  GaRunOptions options;
  options.config.population = 16;
  options.config.generations = 1000;
  options.observer = &observer;
  options.stop = &stop;
  Rng rng(3);
  const GaResult r = run_ga(eval, rng, options);
  EXPECT_TRUE(r.stopped_early);
  EXPECT_EQ(r.stop_reason, StopReason::kRequested);
  EXPECT_EQ(r.generations_run, 4u);
}

TEST(GaTelemetry, DeprecatedWrappersMatchOptionsApi) {
  Evaluator eval1 = small_evaluator(7);
  Evaluator eval2 = small_evaluator(7);
  GaConfig cfg;
  cfg.population = 16;
  cfg.generations = 6;
  Rng rng1(9), rng2(9);
  const GaResult via_wrapper = run_ga(eval1, cfg, rng1);
  GaRunOptions options;
  options.config = cfg;
  const GaResult via_options = run_ga(eval2, rng2, options);
  EXPECT_EQ(via_wrapper.best_cost, via_options.best_cost);
  EXPECT_EQ(via_wrapper.best, via_options.best);
  EXPECT_EQ(via_wrapper.evaluations, via_options.evaluations);
}

// ---------------------------------------------------------------------------
// Synthesizer phase timeline.
// ---------------------------------------------------------------------------

TEST(SynthesizerTelemetry, EmitsFullPhaseTimeline) {
  SynthesisConfig cfg = small_config();
  TraceSink sink;
  cfg.observer = &sink;
  const Synthesizer synth(cfg);
  const SynthesisResult r = synth.synthesize(1);

  EXPECT_EQ(sink.count<RunStart>(), 1u);
  EXPECT_EQ(sink.count<RunSummary>(), 1u);
  EXPECT_EQ(sink.count<GenerationEnd>(), cfg.ga.generations);
  EXPECT_GT(sink.count<HeuristicDone>(), 0u);
  EXPECT_EQ(sink.count<HeuristicDone>(), r.heuristics.size());

  // Phase end events arrive in pipeline order.
  std::vector<Phase> ended;
  for (const TraceEvent& e : sink.events()) {
    if (const auto* stats = std::get_if<PhaseStats>(&e.v)) {
      ended.push_back(stats->phase);
    }
  }
  const std::vector<Phase> expected{Phase::kContext, Phase::kHeuristics,
                                    Phase::kGa, Phase::kAssembly};
  EXPECT_EQ(ended, expected);

  // The summary matches the result.
  const auto& summary = std::get<RunSummary>(sink.events().back().v);
  EXPECT_EQ(summary.best_cost, r.ga.best_cost);
  EXPECT_FALSE(summary.stopped_early);
}

TEST(SynthesizerTelemetry, TraceIsIdenticalAcrossThreadCounts) {
  std::vector<std::string> traces;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SynthesisConfig cfg = small_config();
    cfg.ga.parallel.num_threads = threads;
    TraceSink sink;
    cfg.observer = &sink;
    Synthesizer(cfg).synthesize(4);
    traces.push_back(sink.canonical());
  }
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_EQ(traces[0], traces[2]);
}

TEST(SynthesizerTelemetry, StopBudgetYieldsValidPartialNetwork) {
  SynthesisConfig cfg = small_config();
  cfg.ga.generations = 10'000;
  StopCondition stop = StopCondition::eval_budget(200);
  cfg.stop = &stop;
  const SynthesisResult r = Synthesizer(cfg).synthesize(1);
  EXPECT_TRUE(r.ga.stopped_early);
  EXPECT_TRUE(is_connected(r.network.topology));
  EXPECT_GT(r.network.num_links(), 0u);
}

// ---------------------------------------------------------------------------
// Ensemble event stream.
// ---------------------------------------------------------------------------

TEST(EnsembleTelemetry, TraceIsIdenticalAcrossThreadCounts) {
  std::vector<std::string> traces;
  for (const std::size_t threads : {1u, 4u}) {
    SynthesisConfig cfg = small_config(8);
    cfg.parallel.num_threads = threads;
    TraceSink sink;
    cfg.observer = &sink;
    const Synthesizer synth(cfg);
    const EnsembleResult e = generate_ensemble(synth, 5, 11);
    EXPECT_EQ(e.num_runs(), 5u);
    EXPECT_EQ(sink.count<EnsembleRunDone>(), 5u);
    // Inner runs never reach the ensemble observer: one kEnsemble phase,
    // no per-run phases or generations.
    EXPECT_EQ(sink.count<GenerationEnd>(), 0u);
    EXPECT_EQ(sink.count<PhaseStats>(), 1u);
    traces.push_back(sink.canonical());
  }
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(EnsembleTelemetry, RunsArriveInSeedOrder) {
  SynthesisConfig cfg = small_config(8);
  cfg.parallel.num_threads = 4;
  TraceSink sink;
  cfg.observer = &sink;
  generate_ensemble(Synthesizer(cfg), 6, 100);
  std::size_t expected = 0;
  for (const TraceEvent& e : sink.events()) {
    if (const auto* run = std::get_if<EnsembleRunDone>(&e.v)) {
      EXPECT_EQ(run->index, expected);
      EXPECT_EQ(run->seed, 100 + expected);
      ++expected;
    }
  }
  EXPECT_EQ(expected, 6u);
}

TEST(EnsembleTelemetry, EvalBudgetTruncatesRunsButKeepsThemValid) {
  SynthesisConfig cfg = small_config(8);
  cfg.parallel.num_threads = 1;
  StopCondition stop = StopCondition::eval_budget(300);
  cfg.stop = &stop;
  const EnsembleResult e = generate_ensemble(Synthesizer(cfg), 50, 1);
  EXPECT_TRUE(e.stopped_early);
  EXPECT_EQ(e.stop_reason, StopReason::kEvalBudget);
  EXPECT_LT(e.num_runs(), 50u);
  for (const SynthesisResult& r : e.runs()) {
    EXPECT_TRUE(is_connected(r.network.topology));
  }
}

// ---------------------------------------------------------------------------
// JSON run reports.
// ---------------------------------------------------------------------------

TEST(RunReport, SinkCapturesSynthesisRun) {
  SynthesisConfig cfg = small_config();
  JsonReportSink sink;
  cfg.observer = &sink;
  const SynthesisResult r = Synthesizer(cfg).synthesize(2);

  const RunReport& report = sink.report();
  EXPECT_EQ(report.seed, 2u);
  EXPECT_EQ(report.num_pops, 10u);
  EXPECT_EQ(report.best_cost, r.ga.best_cost);
  EXPECT_EQ(report.generations.size(), cfg.ga.generations);
  EXPECT_EQ(report.phases.size(), 4u);
  EXPECT_EQ(report.heuristics.size(), r.heuristics.size());
  EXPECT_GT(report.wall_ns, 0u);
}

TEST(RunReport, JsonRoundTripPreservesEverything) {
  SynthesisConfig cfg = small_config();
  cfg.ga.generations = 5;
  JsonReportSink sink;
  cfg.observer = &sink;
  Synthesizer(cfg).synthesize(3);

  for (const bool timing : {true, false}) {
    const std::string json = run_report_to_json(sink.report(), timing);
    const RunReport parsed = run_report_from_json(json);
    // A second serialization of the parsed report must reproduce the first
    // byte-for-byte (canonical writer + sorted keys).
    EXPECT_EQ(run_report_to_json(parsed, timing), json) << "timing=" << timing;
  }

  // Spot-check parsed content.
  const RunReport parsed =
      run_report_from_json(run_report_to_json(sink.report()));
  EXPECT_EQ(parsed.seed, 3u);
  EXPECT_EQ(parsed.generations.size(), 5u);
  EXPECT_EQ(parsed.best_cost, sink.report().best_cost);
  EXPECT_EQ(parsed.stop_reason, StopReason::kNone);
}

TEST(RunReport, TimingFreeReportIsIdenticalAcrossThreadCounts) {
  std::vector<std::string> reports;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SynthesisConfig cfg = small_config();
    cfg.ga.parallel.num_threads = threads;
    JsonReportSink sink;
    cfg.observer = &sink;
    Synthesizer(cfg).synthesize(6);
    reports.push_back(
        run_report_to_json(sink.report(), /*include_timing=*/false));
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
}

TEST(RunReport, StoppedRunProducesValidReport) {
  SynthesisConfig cfg = small_config();
  cfg.ga.generations = 10'000;
  // No heuristic seeding: the budget must land inside the GA so the report
  // captures at least one completed generation.
  cfg.seed_with_heuristics = false;
  StopCondition stop = StopCondition::eval_budget(150);
  cfg.stop = &stop;
  JsonReportSink sink;
  cfg.observer = &sink;
  Synthesizer(cfg).synthesize(1);

  const RunReport parsed =
      run_report_from_json(run_report_to_json(sink.report()));
  EXPECT_TRUE(parsed.stopped_early);
  EXPECT_EQ(parsed.stop_reason, StopReason::kEvalBudget);
  EXPECT_LT(parsed.generations.size(), 10'000u);
  EXPECT_GT(parsed.generations.size(), 0u);
}

TEST(RunReport, EmitsV5WithCacheCountersWhenCacheEnabled) {
  SynthesisConfig cfg = small_config();
  cfg.engine.cache.enabled = true;
  JsonReportSink sink;
  cfg.observer = &sink;
  Synthesizer(cfg).synthesize(5);

  const RunReport& report = sink.report();
  EXPECT_GT(report.cache_hits, 0u);  // elites re-score as hits
  EXPECT_GT(report.cache_inserts, 0u);
  EXPECT_EQ(report.cache_misses, report.cache_inserts);  // every miss inserts

  const std::string json = run_report_to_json(report);
  EXPECT_EQ(parse_json(json).field("version").number(), 9.0);
  const RunReport parsed = run_report_from_json(json);
  EXPECT_EQ(parsed.cache_hits, report.cache_hits);
  EXPECT_EQ(parsed.cache_misses, report.cache_misses);
  EXPECT_EQ(parsed.cache_inserts, report.cache_inserts);
  EXPECT_EQ(parsed.cache_evictions, report.cache_evictions);
}

TEST(RunReport, PerPhaseEngineCountersTrackCacheActivity) {
  SynthesisConfig cfg = small_config();
  cfg.engine.cache.enabled = true;
  JsonReportSink sink;
  cfg.observer = &sink;
  Synthesizer(cfg).synthesize(5);

  // The assembly phase re-scores the GA winner, which the cache already
  // holds — so its delta must show a hit — and the per-phase deltas must
  // add up to the run totals.
  const RunReport& report = sink.report();
  std::uint64_t hits = 0, misses = 0, inserts = 0, evictions = 0;
  bool saw_assembly_hit = false;
  for (const PhaseStats& p : report.phases) {
    hits += p.cache_hits;
    misses += p.cache_misses;
    inserts += p.cache_inserts;
    evictions += p.cache_evictions;
    if (p.phase == Phase::kAssembly) saw_assembly_hit = p.cache_hits > 0;
  }
  EXPECT_TRUE(saw_assembly_hit);
  EXPECT_EQ(hits, report.cache_hits);
  EXPECT_EQ(misses, report.cache_misses);
  EXPECT_EQ(inserts, report.cache_inserts);
  EXPECT_EQ(evictions, report.cache_evictions);

  // Counters survive a timed round trip.
  const RunReport parsed = run_report_from_json(run_report_to_json(report));
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    EXPECT_EQ(parsed.phases[i].cache_hits, report.phases[i].cache_hits);
    EXPECT_EQ(parsed.phases[i].cache_misses, report.phases[i].cache_misses);
  }
}

TEST(RunReport, SharedCachePhaseCountersShowCrossWorkerHits) {
  SynthesisConfig cfg = small_config();
  cfg.engine.cache.enabled = true;
  cfg.engine.cache.shared = true;
  cfg.ga.parallel.num_threads = 4;
  JsonReportSink sink;
  cfg.observer = &sink;
  Synthesizer(cfg).synthesize(5);

  // The assembly re-score runs on the primary evaluator; with a shared
  // cache the entry may have been inserted by any worker clone, yet the
  // hit still lands in the primary's phase delta.
  const RunReport& report = sink.report();
  bool saw_assembly_hit = false;
  for (const PhaseStats& p : report.phases) {
    if (p.phase == Phase::kAssembly && p.cache_hits > 0) {
      saw_assembly_hit = true;
    }
  }
  EXPECT_TRUE(saw_assembly_hit);
  EXPECT_GT(report.cache_hits, 0u);
  EXPECT_EQ(report.cache_misses, report.cache_inserts);
}

TEST(RunReport, DedupCountersRoundTripWhenTimed) {
  RunReport report;
  report.seed = 11;
  report.num_pops = 4;
  report.best_cost = 1.5;
  report.evaluations = 40;
  report.dedup_skipped = 7;
  report.cache_hits = 3;
  PhaseStats ga;
  ga.phase = Phase::kGa;
  ga.evaluations = 40;
  ga.cache_hits = 3;
  ga.dedup_skipped = 7;
  report.phases.push_back(ga);
  GenerationEnd gen;
  gen.gen = 0;
  gen.evaluations = 20;
  gen.dedup_skipped = 4;
  report.generations.push_back(gen);

  const RunReport timed = run_report_from_json(
      run_report_to_json(report, /*include_timing=*/true));
  EXPECT_EQ(timed.dedup_skipped, 7u);
  EXPECT_EQ(timed.phases[0].dedup_skipped, 7u);
  EXPECT_EQ(timed.phases[0].cache_hits, 3u);
  EXPECT_EQ(timed.generations[0].dedup_skipped, 4u);

  // Timing-free reports treat the counters as performance data and drop
  // them — they parse back as zeros.
  const std::string bare = run_report_to_json(report, /*include_timing=*/false);
  EXPECT_EQ(bare.find("dedup_skipped"), std::string::npos);
  EXPECT_EQ(bare.find("cache"), std::string::npos);
  const RunReport parsed = run_report_from_json(bare);
  EXPECT_EQ(parsed.dedup_skipped, 0u);
  EXPECT_EQ(parsed.phases[0].cache_hits, 0u);
  EXPECT_EQ(parsed.generations[0].dedup_skipped, 0u);
}

TEST(RunReport, AcceptsV1ReportsWithoutCacheObject) {
  SynthesisConfig cfg = small_config();
  cfg.ga.generations = 4;
  JsonReportSink sink;
  cfg.observer = &sink;
  Synthesizer(cfg).synthesize(8);

  // Rewrite the emitted document into its v1 form: drop result.cache (the
  // object has no nested braces) and downgrade the version stamp.
  std::string json = run_report_to_json(sink.report());
  const std::size_t cache_pos = json.find("\"cache\": {");
  ASSERT_NE(cache_pos, std::string::npos);
  std::size_t end = json.find('}', cache_pos);
  ASSERT_NE(end, std::string::npos);
  ASSERT_EQ(json[end + 1], ',');
  json.erase(cache_pos, end + 2 - cache_pos);
  const std::size_t ver = json.find("\"version\": 9");
  ASSERT_NE(ver, std::string::npos);
  json[ver + std::string("\"version\": ").size()] = '1';

  const RunReport parsed = run_report_from_json(json);
  EXPECT_EQ(parsed.seed, 8u);
  EXPECT_EQ(parsed.best_cost, sink.report().best_cost);
  EXPECT_EQ(parsed.cache_hits, 0u);
  EXPECT_EQ(parsed.cache_misses, 0u);
  EXPECT_EQ(parsed.cache_inserts, 0u);
  EXPECT_EQ(parsed.cache_evictions, 0u);
  // Re-serializing a v1-sourced report upgrades it to the current schema.
  EXPECT_EQ(parse_json(run_report_to_json(parsed)).field("version").number(),
            9.0);
}

TEST(RunReport, AcceptsV3ReportsWithoutDssspCounters) {
  // Hand-built v3 document: cache + per-phase counters present, but none of
  // the v4 delta-engine fields. They must parse back as zeros.
  const std::string json = R"({"schema": "cold-run-report", "version": 3,
    "run": {"seed": 9, "num_pops": 6},
    "result": {"best_cost": 2.25, "evaluations": 50, "stopped_early": false,
               "stop_reason": "none",
               "cache": {"hits": 12, "misses": 38, "inserts": 38,
                         "evictions": 4},
               "dedup_skipped": 5, "wall_ns": 1000},
    "phases": [{"name": "ga", "evaluations": 50, "cache_hits": 12,
                "cache_misses": 38, "cache_inserts": 38,
                "cache_evictions": 4, "dedup_skipped": 5, "wall_ns": 900}],
    "heuristics": [],
    "generations": [],
    "ensemble_runs": []})";
  const RunReport parsed = run_report_from_json(json);
  EXPECT_EQ(parsed.cache_hits, 12u);
  EXPECT_EQ(parsed.dedup_skipped, 5u);
  EXPECT_EQ(parsed.dsssp_hits, 0u);
  EXPECT_EQ(parsed.dsssp_fallbacks, 0u);
  EXPECT_EQ(parsed.vertices_resettled, 0u);
  ASSERT_EQ(parsed.phases.size(), 1u);
  EXPECT_EQ(parsed.phases[0].cache_hits, 12u);
  EXPECT_EQ(parsed.phases[0].dsssp_hits, 0u);
  EXPECT_EQ(parsed.phases[0].vertices_resettled, 0u);
}

TEST(RunReport, DssspCountersRoundTripWhenTimed) {
  SynthesisConfig cfg = small_config();
  cfg.engine.delta.mode = DsspMode::kOn;
  JsonReportSink sink;
  cfg.observer = &sink;
  Synthesizer(cfg).synthesize(5);

  const RunReport& report = sink.report();
  EXPECT_GT(report.dsssp_hits + report.dsssp_fallbacks, 0u);

  const RunReport timed = run_report_from_json(
      run_report_to_json(report, /*include_timing=*/true));
  EXPECT_EQ(timed.dsssp_hits, report.dsssp_hits);
  EXPECT_EQ(timed.dsssp_fallbacks, report.dsssp_fallbacks);
  EXPECT_EQ(timed.vertices_resettled, report.vertices_resettled);
  std::uint64_t phase_hits = 0;
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    EXPECT_EQ(timed.phases[i].dsssp_hits, report.phases[i].dsssp_hits);
    phase_hits += report.phases[i].dsssp_hits;
  }
  EXPECT_EQ(phase_hits, report.dsssp_hits);  // phase deltas sum to the total

  // Timing-free reports drop the trio like every other perf counter.
  const std::string bare =
      run_report_to_json(report, /*include_timing=*/false);
  EXPECT_EQ(bare.find("dsssp"), std::string::npos);
  const RunReport parsed = run_report_from_json(bare);
  EXPECT_EQ(parsed.dsssp_hits, 0u);
  EXPECT_EQ(parsed.vertices_resettled, 0u);
}

TEST(RunReport, WorkerSplitAndStealsRoundTripWhenTimed) {
  // v5 fields: the per-worker delta split and the affinity steal count
  // travel inside the dsssp object, timing-gated like the aggregate trio.
  SynthesisConfig cfg = small_config();
  cfg.engine.delta.mode = DsspMode::kOn;
  cfg.ga.parallel.num_threads = 4;
  JsonReportSink sink;
  cfg.observer = &sink;
  Synthesizer(cfg).synthesize(5);

  const RunReport& report = sink.report();
  ASSERT_EQ(report.worker_dsssp.size(), 4u);
  std::uint64_t split_hits = 0, split_fallbacks = 0;
  for (const WorkerDeltaStats& w : report.worker_dsssp) {
    split_hits += w.hits;
    split_fallbacks += w.fallbacks;
  }
  // The split is snapshotted when the GA's scoring pool winds down: worker
  // 0 (the primary) includes the heuristics phase, but the assembly phase's
  // single breakdown of the best topology runs after the snapshot and lands
  // only in the aggregate.
  EXPECT_GT(split_hits + split_fallbacks, 0u);
  EXPECT_EQ(split_hits + split_fallbacks + 1,
            report.dsssp_hits + report.dsssp_fallbacks);

  const RunReport timed = run_report_from_json(
      run_report_to_json(report, /*include_timing=*/true));
  ASSERT_EQ(timed.worker_dsssp.size(), report.worker_dsssp.size());
  for (std::size_t w = 0; w < timed.worker_dsssp.size(); ++w) {
    EXPECT_EQ(timed.worker_dsssp[w].hits, report.worker_dsssp[w].hits) << w;
    EXPECT_EQ(timed.worker_dsssp[w].fallbacks,
              report.worker_dsssp[w].fallbacks)
        << w;
    EXPECT_EQ(timed.worker_dsssp[w].vertices_resettled,
              report.worker_dsssp[w].vertices_resettled)
        << w;
  }
  EXPECT_EQ(timed.ga_steals, report.ga_steals);

  // Timing-free reports drop the split with the rest of the dsssp object.
  const RunReport bare = run_report_from_json(
      run_report_to_json(report, /*include_timing=*/false));
  EXPECT_TRUE(bare.worker_dsssp.empty());
  EXPECT_EQ(bare.ga_steals, 0u);
}

TEST(RunReport, AcceptsV4ReportsWithoutWorkerSplit) {
  // Hand-built v4 document: the dsssp object carries only the aggregate
  // trio — no "steals", no "workers" (v5 additions). They must parse back
  // as zero/empty.
  const std::string json = R"({"schema": "cold-run-report", "version": 4,
    "run": {"seed": 9, "num_pops": 6},
    "result": {"best_cost": 2.25, "evaluations": 50, "stopped_early": false,
               "stop_reason": "none",
               "cache": {"hits": 12, "misses": 38, "inserts": 38,
                         "evictions": 4},
               "dedup_skipped": 5,
               "dsssp": {"hits": 30, "fallbacks": 20,
                         "vertices_resettled": 444},
               "wall_ns": 1000},
    "phases": [{"name": "ga", "evaluations": 50, "wall_ns": 900}],
    "heuristics": [],
    "generations": [],
    "ensemble_runs": []})";
  const RunReport parsed = run_report_from_json(json);
  EXPECT_EQ(parsed.dsssp_hits, 30u);
  EXPECT_EQ(parsed.dsssp_fallbacks, 20u);
  EXPECT_EQ(parsed.vertices_resettled, 444u);
  EXPECT_TRUE(parsed.worker_dsssp.empty());
  EXPECT_EQ(parsed.ga_steals, 0u);
  // Re-serializing upgrades to v5 with an explicit (empty) worker split.
  const RunReport round =
      run_report_from_json(run_report_to_json(parsed));
  EXPECT_EQ(round.dsssp_hits, 30u);
  EXPECT_TRUE(round.worker_dsssp.empty());
}

TEST(RunReport, AcceptsV2ReportsWithoutPerPhaseCounters) {
  // Hand-built v2 document: result.cache present, but no per-phase or
  // per-generation engine counters (v3 additions).
  const std::string json = R"({"schema": "cold-run-report", "version": 2,
    "run": {"seed": 9, "num_pops": 6},
    "result": {"best_cost": 2.25, "evaluations": 50, "stopped_early": false,
               "stop_reason": "none",
               "cache": {"hits": 12, "misses": 38, "inserts": 38,
                         "evictions": 4},
               "wall_ns": 1000},
    "phases": [{"name": "ga", "evaluations": 50, "wall_ns": 900}],
    "heuristics": [],
    "generations": [{"gen": 0, "best_cost": 2.25, "mean_cost": 3.0,
                     "repairs": 1, "links_repaired": 2, "evaluations": 25,
                     "wall_ns": 450}],
    "ensemble_runs": []})";
  const RunReport parsed = run_report_from_json(json);
  EXPECT_EQ(parsed.seed, 9u);
  EXPECT_EQ(parsed.cache_hits, 12u);
  EXPECT_EQ(parsed.cache_misses, 38u);
  EXPECT_EQ(parsed.cache_evictions, 4u);
  EXPECT_EQ(parsed.dedup_skipped, 0u);
  ASSERT_EQ(parsed.phases.size(), 1u);
  EXPECT_EQ(parsed.phases[0].evaluations, 50u);
  EXPECT_EQ(parsed.phases[0].cache_hits, 0u);  // absent in v2 → zero
  EXPECT_EQ(parsed.phases[0].dedup_skipped, 0u);
  ASSERT_EQ(parsed.generations.size(), 1u);
  EXPECT_EQ(parsed.generations[0].dedup_skipped, 0u);
}

TEST(RunReport, RejectsMalformedInput) {
  EXPECT_THROW(run_report_from_json("not json"), std::runtime_error);
  EXPECT_THROW(run_report_from_json("{}"), std::runtime_error);
  EXPECT_THROW(run_report_from_json(R"({"schema": "other", "version": 1})"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Generic JSON value layer (io/json_value.h).
// ---------------------------------------------------------------------------

TEST(JsonValueLayer, ParseWriteRoundTrip) {
  const std::string text =
      R"({"a": [1, 2.5, true, null, "s\n"], "b": {"nested": -3e2}})";
  const JsonValue parsed = parse_json(text);
  EXPECT_EQ(parsed.field("a").array().size(), 5u);
  EXPECT_EQ(parsed.field("b").field("nested").number(), -300.0);
  const std::string out = json_to_string(parsed);
  EXPECT_EQ(json_to_string(parse_json(out)), out);
}

TEST(JsonValueLayer, ErrorsAreTyped) {
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("[1,]"), std::runtime_error);
  const JsonValue v = parse_json(R"({"x": 1})");
  EXPECT_THROW(v.field("missing"), std::runtime_error);
  EXPECT_THROW(v.field("x").str(), std::runtime_error);
  EXPECT_TRUE(v.has("x"));
  EXPECT_FALSE(v.has("y"));
}

// ---------------------------------------------------------------------------
// Report diff (telemetry/report_diff.h): logical vs perf bucketing.
// ---------------------------------------------------------------------------

RunReport diff_fixture() {
  RunReport r;
  r.seed = 5;
  r.num_pops = 10;
  r.best_cost = 3.25;
  r.evaluations = 100;
  r.wall_ns = 1000;
  r.cache_hits = 7;
  r.dsssp_hits = 3;
  PhaseStats ga;
  ga.phase = Phase::kGa;
  ga.evaluations = 100;
  ga.wall_ns = 900;
  r.phases.push_back(ga);
  GenerationEnd gen;
  gen.gen = 0;
  gen.best_cost = 3.25;
  gen.mean_cost = 4.0;
  gen.evaluations = 50;
  r.generations.push_back(gen);
  return r;
}

TEST(ReportDiff, IdenticalReportsAreEqual) {
  const RunReport a = diff_fixture();
  const ReportDiff d = diff_run_reports(a, a);
  EXPECT_TRUE(d.logically_equal());
  EXPECT_TRUE(d.logical.empty());
  EXPECT_TRUE(d.perf.empty());
}

TEST(ReportDiff, PerfOnlyDivergenceStaysLogicallyEqual) {
  // Wall clocks and engine counters differ run to run by nature; they land
  // in the perf bucket and never fail an equivalence check.
  const RunReport a = diff_fixture();
  RunReport b = a;
  b.wall_ns = 2000;
  b.cache_hits = 0;
  b.dsssp_hits = 99;
  b.vertices_resettled = 1234;
  b.phases[0].wall_ns = 1800;
  const ReportDiff d = diff_run_reports(a, b);
  EXPECT_TRUE(d.logically_equal());
  EXPECT_TRUE(d.logical.empty());
  EXPECT_GE(d.perf.size(), 4u);
}

TEST(ReportDiff, LogicalDivergenceIsDetected) {
  const RunReport a = diff_fixture();
  RunReport b = a;
  b.best_cost = 3.5;
  b.generations[0].best_cost = 3.5;
  const ReportDiff d = diff_run_reports(a, b);
  EXPECT_FALSE(d.logically_equal());
  ASSERT_EQ(d.logical.size(), 2u);
  EXPECT_EQ(d.logical[0].path, "result.best_cost");
  EXPECT_EQ(d.logical[1].path, "generations[0].best_cost");
}

TEST(ReportDiff, ArrayLengthMismatchIsLogical) {
  const RunReport a = diff_fixture();
  RunReport b = a;
  GenerationEnd extra;
  extra.gen = 1;
  extra.best_cost = 3.0;
  b.generations.push_back(extra);
  const ReportDiff d = diff_run_reports(a, b);
  EXPECT_FALSE(d.logically_equal());
  bool saw_length = false;
  for (const ReportDiffEntry& e : d.logical) {
    if (e.path == "generations.length") saw_length = true;
  }
  EXPECT_TRUE(saw_length);
}

TEST(ReportDiff, RendersTextAndJson) {
  const RunReport a = diff_fixture();
  RunReport b = a;
  b.best_cost = 9.0;
  b.wall_ns = 2000;
  const ReportDiff d = diff_run_reports(a, b);

  std::ostringstream text;
  write_report_diff_text(text, d);
  EXPECT_NE(text.str().find("LOGICAL result.best_cost"), std::string::npos);
  EXPECT_NE(text.str().find("perf"), std::string::npos);

  std::ostringstream json;
  write_report_diff_json(json, d);
  const JsonValue parsed = parse_json(json.str());
  EXPECT_EQ(parsed.field("schema").str(), "cold-report-diff");
  EXPECT_FALSE(parsed.field("logically_equal").boolean());
}

TEST(ReportDiff, SameRunDssspOnVsOffIsLogicallyEqual) {
  // The end-to-end equivalence the nightly workflow enforces: identical
  // seeds with the delta engine on and off may differ only in perf fields.
  std::vector<RunReport> reports;
  for (const DsspMode mode : {DsspMode::kOn, DsspMode::kOff}) {
    SynthesisConfig cfg = small_config();
    cfg.engine.delta.mode = mode;
    JsonReportSink sink;
    cfg.observer = &sink;
    Synthesizer(cfg).synthesize(4);
    reports.push_back(sink.report());
  }
  const ReportDiff d = diff_run_reports(reports[0], reports[1]);
  EXPECT_TRUE(d.logically_equal());
}

// ---------------------------------------------------------------------------
// Schema v8: run.traffic_kept_mass + the result.resilience block.
// ---------------------------------------------------------------------------

TEST(RunReport, TrafficKeptMassRoundTripsAsLogicalContent) {
  SynthesisConfig cfg = small_config();
  cfg.context.gravity.topk = 2;  // coarse truncation: mass must drop
  JsonReportSink sink;
  cfg.observer = &sink;
  Synthesizer(cfg).synthesize(3);

  const RunReport& report = sink.report();
  EXPECT_GT(report.traffic_kept_mass, 0.0);
  EXPECT_LT(report.traffic_kept_mass, 1.0);

  // Logical content: the field survives both timed and timing-free trips.
  for (const bool timing : {true, false}) {
    const RunReport parsed =
        run_report_from_json(run_report_to_json(report, timing));
    EXPECT_EQ(parsed.traffic_kept_mass, report.traffic_kept_mass)
        << "timing=" << timing;
  }

  // An exact-traffic run records the full mass.
  SynthesisConfig exact = small_config();
  JsonReportSink exact_sink;
  exact.observer = &exact_sink;
  Synthesizer(exact).synthesize(3);
  EXPECT_EQ(exact_sink.report().traffic_kept_mass, 1.0);
}

TEST(RunReport, ResilienceBlockRoundTripsWhenTimed) {
  SynthesisConfig cfg = small_config();
  cfg.engine.resilience.enabled = true;
  cfg.engine.resilience.weight = 0.5;
  JsonReportSink sink;
  cfg.observer = &sink;
  Synthesizer(cfg).synthesize(5);

  const RunReport& report = sink.report();
  ASSERT_TRUE(report.has_resilience);
  EXPECT_EQ(report.resilience.weight, 0.5);
  EXPECT_GT(report.resilience.scenarios, 0u);
  EXPECT_GT(report.resilience.sweeps, 0u);

  const RunReport timed = run_report_from_json(
      run_report_to_json(report, /*include_timing=*/true));
  ASSERT_TRUE(timed.has_resilience);
  EXPECT_EQ(timed.resilience.weight, report.resilience.weight);
  EXPECT_EQ(timed.resilience.scenarios, report.resilience.scenarios);
  EXPECT_EQ(timed.resilience.disconnecting, report.resilience.disconnecting);
  EXPECT_EQ(timed.resilience.disconnected_fraction,
            report.resilience.disconnected_fraction);
  EXPECT_EQ(timed.resilience.mean_stretch, report.resilience.mean_stretch);
  EXPECT_EQ(timed.resilience.worst_stretch, report.resilience.worst_stretch);
  EXPECT_EQ(timed.resilience.worst_utilization,
            report.resilience.worst_utilization);
  EXPECT_EQ(timed.resilience.penalty, report.resilience.penalty);
  EXPECT_EQ(timed.resilience.sweeps, report.resilience.sweeps);
  EXPECT_EQ(timed.resilience.delta_repairs, report.resilience.delta_repairs);
  EXPECT_EQ(timed.resilience.fresh_trees, report.resilience.fresh_trees);
  EXPECT_EQ(timed.resilience.vertices_resettled,
            report.resilience.vertices_resettled);

  // Timing-free reports drop the block like every other perf counter.
  const std::string bare =
      run_report_to_json(report, /*include_timing=*/false);
  EXPECT_EQ(bare.find("resilience"), std::string::npos);
  EXPECT_FALSE(run_report_from_json(bare).has_resilience);
}

TEST(RunReport, AcceptsV7ReportsWithoutResilienceFields) {
  // Hand-built v7 document: no run.traffic_kept_mass, no result.resilience
  // (v8 additions). They must parse back as 1.0 / absent.
  const std::string json = R"({"schema": "cold-run-report", "version": 7,
    "run": {"seed": 9, "num_pops": 6, "traffic_topk": 3},
    "result": {"best_cost": 2.25, "evaluations": 50, "stopped_early": false,
               "stop_reason": "none",
               "cache": {"hits": 12, "misses": 38, "inserts": 38,
                         "evictions": 4},
               "dedup_skipped": 5, "wall_ns": 1000},
    "phases": [{"name": "ga", "evaluations": 50, "wall_ns": 900}],
    "heuristics": [],
    "generations": [],
    "ensemble_runs": []})";
  const RunReport parsed = run_report_from_json(json);
  EXPECT_EQ(parsed.traffic_topk, 3u);
  EXPECT_EQ(parsed.traffic_kept_mass, 1.0);
  EXPECT_FALSE(parsed.has_resilience);
  EXPECT_EQ(parsed.resilience.scenarios, 0u);
  // Re-serializing upgrades to v9 with the kept-mass default made explicit.
  const std::string upgraded = run_report_to_json(parsed);
  EXPECT_EQ(parse_json(upgraded).field("version").number(), 9.0);
  EXPECT_EQ(parse_json(upgraded)
                .field("run")
                .field("traffic_kept_mass")
                .number(),
            1.0);
}

TEST(ReportDiff, ResilientAtZeroWeightVsPlainIsLogicallyEqual) {
  // The nightly equivalence: a resilient-objective run with weight 0 adds
  // an exactly-zero penalty to every candidate, so it must follow the
  // plain objective's trajectory — the reports may differ only in perf
  // fields (the resilience block's presence among them).
  std::vector<RunReport> reports;
  for (const bool resilient : {false, true}) {
    SynthesisConfig cfg = small_config();
    cfg.engine.resilience.enabled = resilient;
    cfg.engine.resilience.weight = 0.0;
    JsonReportSink sink;
    cfg.observer = &sink;
    Synthesizer(cfg).synthesize(4);
    reports.push_back(sink.report());
  }
  const ReportDiff d = diff_run_reports(reports[0], reports[1]);
  EXPECT_TRUE(d.logically_equal());
  bool saw_presence = false;
  for (const ReportDiffEntry& e : d.perf) {
    if (e.path == "result.resilience.present") saw_presence = true;
  }
  EXPECT_TRUE(saw_presence);
}

}  // namespace
}  // namespace cold
