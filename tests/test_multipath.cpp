// Equivalence, exactness and determinism suite for the multipath traffic
// engine (net/multipath.h): ECMP/WCMP load splitting over the shortest-path
// DAG, the max-utilization objective terms, and the GA-level contract.
//
// The engine's anchors:
//   * On unique-shortest-path topologies ECMP and WCMP are bit-identical to
//     the single-path engine (the CI smoke step rides on this).
//   * Splits conserve flow bitwise under the engine's own summation order
//     (remainder share = f - fl-sum of the others).
//   * Loads are bit-identical across {dense, sparse} solvers, retained and
//     transient sweeps, and repeated runs — even on tie-storm graphs
//     (equal-cost lattices, zero-length edges from co-located PoPs).
//   * The multipath GA follows one trajectory for every engine
//     configuration and thread count.
#include "net/multipath.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "baselines/erdos_renyi.h"
#include "core/context.h"
#include "core/synthesizer.h"
#include "cost/cost_cache.h"
#include "cost/evaluator.h"
#include "ga/repair.h"
#include "geom/distance.h"
#include "geom/point_process.h"
#include "graph/algorithms.h"
#include "graph/shortest_paths.h"
#include "net/network.h"
#include "net/routing.h"
#include "traffic/gravity.h"
#include "util/rng.h"

namespace cold {
namespace {

Context small_context(std::uint64_t seed, std::size_t pops) {
  ContextConfig cfg;
  cfg.num_pops = pops;
  Rng rng(seed);
  return generate_context(cfg, rng);
}

/// 4x4 unit lattice: every monotone staircase between two corners has the
/// same length, so the shortest-path DAG branches at almost every node.
struct LatticeInstance {
  Topology g;
  std::vector<Point> pts;
  Matrix<double> len;
  TrafficMatrix traffic;
};

LatticeInstance lattice(std::size_t side, Rng& rng) {
  LatticeInstance inst;
  const std::size_t n = side * side;
  inst.g = Topology(n);
  for (std::size_t y = 0; y < side; ++y) {
    for (std::size_t x = 0; x < side; ++x) {
      const NodeId v = static_cast<NodeId>(y * side + x);
      inst.pts.push_back(
          Point{static_cast<double>(x), static_cast<double>(y)});
      if (x + 1 < side) inst.g.add_edge(v, v + 1);
      if (y + 1 < side) inst.g.add_edge(v, static_cast<NodeId>(v + side));
    }
  }
  inst.len = distance_matrix(inst.pts);
  std::vector<double> pops;
  for (std::size_t i = 0; i < n; ++i) pops.push_back(rng.exponential(30.0));
  inst.traffic = gravity_matrix(pops);
  return inst;
}

/// Co-located PoPs: pairs share one coordinate, so the edge inside each
/// pair has length exactly 0 — the zero-length-edge tie storm.
LatticeInstance co_located(std::size_t pairs, Rng& rng) {
  LatticeInstance inst;
  const std::size_t n = 2 * pairs;
  for (std::size_t i = 0; i < pairs; ++i) {
    const Point p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    inst.pts.push_back(p);
    inst.pts.push_back(p);
  }
  inst.len = distance_matrix(inst.pts);
  inst.g = erdos_renyi_gnp(n, 0.4, rng);
  for (std::size_t i = 0; i < pairs; ++i) {
    const NodeId a = static_cast<NodeId>(2 * i);
    if (!inst.g.has_edge(a, a + 1)) inst.g.add_edge(a, a + 1);
  }
  connect_components(inst.g, inst.len);
  std::vector<double> pops;
  for (std::size_t i = 0; i < n; ++i) pops.push_back(rng.exponential(30.0));
  inst.traffic = gravity_matrix(pops);
  return inst;
}

bool key_less(const ShortestPathTree& tree, NodeId a, NodeId b) {
  if (tree.dist[a] != tree.dist[b]) return tree.dist[a] < tree.dist[b];
  if (tree.hops[a] != tree.hops[b]) return tree.hops[a] < tree.hops[b];
  return a < b;
}

// ---------------------------------------------------------------------------
// DAG structure: every reachable non-source node lists exactly its
// equal-cost predecessors, ascending, tree parent always among them.
// ---------------------------------------------------------------------------

void check_dag_invariants(const Topology& g, const DistanceProvider& len,
                          NodeId s, const std::string& what) {
  const ShortestPathTree tree = shortest_path_tree(g, len, s);
  SpDag dag;
  extract_shortest_path_dag(g, len, tree, dag);
  const std::size_t n = g.num_nodes();
  ASSERT_EQ(dag.off.size(), n + 1) << what;
  EXPECT_EQ(dag.off[s + 1], dag.off[s]) << what;  // source has no preds
  for (NodeId v = 0; v < n; ++v) {
    ASSERT_LE(dag.off[v], dag.off[v + 1]) << what;
    const std::size_t k = dag.off[v + 1] - dag.off[v];
    if (v == s) continue;
    ASSERT_GE(k, 1u) << what << " node " << v;
    bool saw_parent = false;
    for (std::size_t j = 0; j < k; ++j) {
      const NodeId u = dag.pred[dag.off[v] + j];
      if (j > 0) {
        EXPECT_LT(dag.pred[dag.off[v] + j - 1], u) << what;
      }
      EXPECT_TRUE(g.has_edge(u, v)) << what;
      EXPECT_EQ(tree.dist[u] + len(u, v), tree.dist[v]) << what;
      EXPECT_TRUE(key_less(tree, u, v)) << what;  // acyclicity
      if (u == tree.parent[v]) saw_parent = true;
    }
    EXPECT_TRUE(saw_parent) << what << " node " << v;
    if (k == 1) {
      EXPECT_EQ(dag.pred[dag.off[v]], tree.parent[v]) << what;
    }
  }
}

TEST(SpDag, StructuralInvariantsOnTieStorms) {
  Rng rng(11);
  const LatticeInstance grid = lattice(4, rng);
  const DistanceProvider grid_len(grid.len);
  for (NodeId s = 0; s < grid.g.num_nodes(); ++s) {
    check_dag_invariants(grid.g, grid_len, s, "lattice s=" + std::to_string(s));
  }
  const LatticeInstance dup = co_located(6, rng);
  const DistanceProvider dup_len(dup.len);
  for (NodeId s = 0; s < dup.g.num_nodes(); ++s) {
    check_dag_invariants(dup.g, dup_len, s,
                         "co-located s=" + std::to_string(s));
  }
}

TEST(SpDag, LatticeInteriorNodesBranch) {
  // From corner 0 of a 4x4 lattice, the opposite corner is reachable by
  // many staircases: its DAG in-degree must be 2 (both grid directions).
  Rng rng(12);
  const LatticeInstance grid = lattice(4, rng);
  const DistanceProvider len(grid.len);
  const ShortestPathTree tree = shortest_path_tree(grid.g, len, 0);
  SpDag dag;
  extract_shortest_path_dag(grid.g, len, tree, dag);
  const NodeId far = static_cast<NodeId>(grid.g.num_nodes() - 1);
  EXPECT_EQ(dag.off[far + 1] - dag.off[far], 2u);
}

// ---------------------------------------------------------------------------
// Load-level exactness.
// ---------------------------------------------------------------------------

TEST(MultipathLoads, OffForwardsToSinglePathVerbatim) {
  const Context ctx = small_context(21, 14);
  Rng rng(21);
  Topology g = erdos_renyi_gnp(14, 0.3, rng);
  repair_connectivity(g, ctx.distances);
  EdgeLoads single, off;
  RoutingWorkspace ws;
  ASSERT_TRUE(route_loads(g, ctx.distances, ctx.traffic, single, ws));
  ASSERT_TRUE(route_loads_multipath(g, ctx.distances, ctx.traffic,
                                    MultipathMode::kOff, off, ws));
  EXPECT_EQ(single.value, off.value);
}

TEST(MultipathLoads, UniqueShortestPathsMatchSinglePathBitwise) {
  // Random double coordinates never produce exact equal-cost alternatives,
  // so every DAG degenerates to the tree and both modes must reproduce the
  // single-path loads bit for bit — the CI smoke step's anchor.
  for (const std::uint64_t seed : {31u, 32u, 33u}) {
    const Context ctx = small_context(seed, 16);
    Rng rng(seed);
    Topology g = erdos_renyi_gnp(16, 0.25, rng);
    repair_connectivity(g, ctx.distances);
    EdgeLoads single;
    RoutingWorkspace ws;
    ASSERT_TRUE(route_loads(g, ctx.distances, ctx.traffic, single, ws));
    for (const MultipathMode mode :
         {MultipathMode::kEcmp, MultipathMode::kWcmp}) {
      EdgeLoads multi;
      MultipathStats stats;
      ASSERT_TRUE(route_loads_multipath(g, ctx.distances, ctx.traffic, mode,
                                        multi, ws, &stats));
      EXPECT_EQ(single.value, multi.value) << "seed " << seed;
      EXPECT_EQ(stats.branch_points, 0u) << "seed " << seed;
      EXPECT_EQ(stats.sweeps, 1u);
      // Degenerate DAG: exactly the n-1 tree edges per source.
      const std::size_t n = g.num_nodes();
      EXPECT_EQ(stats.dag_edges, n * (n - 1)) << "seed " << seed;
    }
  }
}

TEST(MultipathLoads, EcmpDiamondSplitsExactlyInHalf) {
  // Two exactly equal-length two-hop routes 0-1-3 / 0-2-3 and one demand
  // pair (0, 3): each route carries exactly half, bitwise.
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const std::vector<Point> pts = {{0, 0}, {1, 1}, {1, -1}, {2, 0}};
  const Matrix<double> len = distance_matrix(pts);
  TrafficMatrix tm = Matrix<double>::square(4, 0.0);
  tm(0, 3) = tm(3, 0) = 8.0;
  const DistanceProvider lengths(len);
  const CompressedTraffic traffic(tm);

  EdgeLoads loads;
  RoutingWorkspace ws;
  MultipathStats stats;
  ASSERT_TRUE(route_loads_multipath(g, lengths, traffic, MultipathMode::kEcmp,
                                    loads, ws, &stats));
  // 4.0 toward each middle node per direction; both directions sum to 8.
  EXPECT_EQ(loads.at(0, 1), 8.0);
  EXPECT_EQ(loads.at(0, 2), 8.0);
  EXPECT_EQ(loads.at(1, 3), 8.0);
  EXPECT_EQ(loads.at(2, 3), 8.0);
  // Each source sees exactly one 2-pred branch (its antipode), so 4 branch
  // points and 4 DAG edges per source over the 4-source sweep.
  EXPECT_EQ(stats.branch_points, 4u);
  EXPECT_EQ(stats.dag_edges, 16u);

  // All degrees are equal, so WCMP must agree with ECMP here.
  EdgeLoads wcmp;
  ASSERT_TRUE(route_loads_multipath(g, lengths, traffic, MultipathMode::kWcmp,
                                    wcmp, ws));
  EXPECT_EQ(loads.value, wcmp.value);
}

TEST(MultipathLoads, WcmpWeightsBranchesByPredecessorDegree) {
  // Same diamond plus a pendant on node 1: at the (0, 3) branch the
  // predecessor degrees are 3 and 2, so WCMP routes 6/10 of the demand via
  // node 1 and 4/10 via node 2 — all shares exact in double arithmetic.
  Topology g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(1, 4);
  const std::vector<Point> pts = {{0, 0}, {1, 1}, {1, -1}, {2, 0}, {1, 5}};
  const Matrix<double> len = distance_matrix(pts);
  TrafficMatrix tm = Matrix<double>::square(5, 0.0);
  tm(0, 3) = tm(3, 0) = 10.0;
  const DistanceProvider lengths(len);
  const CompressedTraffic traffic(tm);

  EdgeLoads loads;
  RoutingWorkspace ws;
  ASSERT_TRUE(route_loads_multipath(g, lengths, traffic, MultipathMode::kWcmp,
                                    loads, ws));
  EXPECT_EQ(loads.at(0, 1), 12.0);  // 6 per direction
  EXPECT_EQ(loads.at(1, 3), 12.0);
  EXPECT_EQ(loads.at(0, 2), 8.0);   // 4 per direction
  EXPECT_EQ(loads.at(2, 3), 8.0);
  EXPECT_EQ(loads.at(1, 4), 0.0);   // pendant carries no demand

  // ECMP ignores the degrees and still halves the flow.
  EdgeLoads ecmp;
  ASSERT_TRUE(route_loads_multipath(g, lengths, traffic, MultipathMode::kEcmp,
                                    ecmp, ws));
  EXPECT_EQ(ecmp.at(0, 1), 10.0);
  EXPECT_EQ(ecmp.at(0, 2), 10.0);
}

/// Test-side double-entry reference: routes per the documented contract
/// (reverse settle order, ascending predecessors, remainder share to the
/// first minimum-weight predecessor computed as f minus the fl-sum of the
/// others) against a dense canonical-cell accumulator. Bitwise agreement
/// checks the CSR plumbing and the engine's faithfulness to its spec.
Matrix<double> reference_multipath_loads(const Topology& g,
                                         const DistanceProvider& len,
                                         const TrafficMatrix& tm,
                                         MultipathMode mode) {
  const std::size_t n = g.num_nodes();
  Matrix<double> out = Matrix<double>::square(n, 0.0);
  for (NodeId s = 0; s < n; ++s) {
    const ShortestPathTree tree = shortest_path_tree(g, len, s);
    SpDag dag;
    extract_shortest_path_dag(g, len, tree, dag);
    std::vector<double> agg(n, 0.0);
    for (NodeId t = 0; t < n; ++t) {
      if (t != s && tm(s, t) != 0.0) agg[t] = tm(s, t);
    }
    for (std::size_t i = n; i-- > 1;) {
      const NodeId t = tree.order[i];
      const std::size_t lo = dag.off[t];
      const std::size_t k = dag.off[t + 1] - lo;
      const double f = agg[t];
      if (k == 1) {
        const NodeId p = dag.pred[lo];
        out(std::min(p, t), std::max(p, t)) += f;
        agg[p] += f;
        continue;
      }
      std::vector<double> share(k);
      std::size_t r = 0;
      if (mode == MultipathMode::kWcmp) {
        double wsum = 0.0;
        double wmin = std::numeric_limits<double>::infinity();
        for (std::size_t j = 0; j < k; ++j) {
          share[j] = static_cast<double>(g.neighbors(dag.pred[lo + j]).size());
          wsum += share[j];
          if (share[j] < wmin) {
            wmin = share[j];
            r = j;
          }
        }
        for (std::size_t j = 0; j < k; ++j) {
          if (j != r) share[j] = (f * share[j]) / wsum;
        }
      } else {
        const double each = f / static_cast<double>(k);
        for (std::size_t j = 1; j < k; ++j) share[j] = each;
      }
      double partial = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        if (j != r) partial += share[j];
      }
      share[r] = f - partial;
      // The conservation contract itself: fl-summing the shares in the
      // engine's order reconstructs the branch flow bit for bit.
      EXPECT_EQ(partial + share[r], f);
      for (std::size_t j = 0; j < k; ++j) {
        const NodeId p = dag.pred[lo + j];
        out(std::min(p, t), std::max(p, t)) += share[j];
        agg[p] += share[j];
      }
    }
  }
  return out;
}

TEST(MultipathLoads, MatchesReferenceScatterOnTieStorms) {
  Rng rng(41);
  for (int trial = 0; trial < 4; ++trial) {
    for (const bool grid : {true, false}) {
      const LatticeInstance inst =
          grid ? lattice(4, rng) : co_located(6, rng);
      const DistanceProvider lengths(inst.len);
      const CompressedTraffic traffic(inst.traffic);
      for (const MultipathMode mode :
           {MultipathMode::kEcmp, MultipathMode::kWcmp}) {
        EdgeLoads loads;
        RoutingWorkspace ws;
        MultipathStats stats;
        ASSERT_TRUE(route_loads_multipath(inst.g, lengths, traffic, mode,
                                          loads, ws, &stats));
        const Matrix<double> ref =
            reference_multipath_loads(inst.g, lengths, inst.traffic, mode);
        const auto edges = inst.g.edges();
        for (std::size_t e = 0; e < edges.size(); ++e) {
          EXPECT_EQ(loads.value[e], ref(edges[e].u, edges[e].v))
              << "trial " << trial << (grid ? " grid" : " dup") << " edge "
              << e;
        }
        if (grid) {
          EXPECT_GT(stats.branch_points, 0u);
        }
      }
    }
  }
}

TEST(MultipathLoads, DeterministicAcrossSolversAndRetention) {
  Rng rng(51);
  for (const bool grid : {true, false}) {
    const LatticeInstance inst = grid ? lattice(5, rng) : co_located(8, rng);
    const DistanceProvider lengths(inst.len);
    const CompressedTraffic traffic(inst.traffic);
    for (const MultipathMode mode :
         {MultipathMode::kEcmp, MultipathMode::kWcmp}) {
      EdgeLoads dense_loads, sparse_loads, retained_loads;
      RoutingWorkspace ws;
      std::vector<ShortestPathTree> trees;
      ASSERT_TRUE(route_loads_multipath(inst.g, lengths, traffic, mode,
                                        dense_loads, ws, nullptr,
                                        SpAlgorithm::kDense));
      ASSERT_TRUE(route_loads_multipath(inst.g, lengths, traffic, mode,
                                        sparse_loads, ws, nullptr,
                                        SpAlgorithm::kSparse));
      ASSERT_TRUE(route_loads_multipath_retained(inst.g, lengths, traffic,
                                                 mode, retained_loads, trees,
                                                 ws));
      EXPECT_EQ(dense_loads.value, sparse_loads.value);
      EXPECT_EQ(dense_loads.value, retained_loads.value);
      ASSERT_EQ(trees.size(), inst.g.num_nodes());
      for (const double v : dense_loads.value) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_GE(v, 0.0);
      }
    }
  }
}

TEST(MultipathLoads, DisconnectedReturnsFalse) {
  Topology g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const std::vector<Point> pts = {{0, 0}, {1, 0}, {5, 5}, {6, 5}};
  const Matrix<double> len = distance_matrix(pts);
  const TrafficMatrix tm = gravity_matrix({1.0, 1.0, 1.0, 1.0});
  const DistanceProvider lengths(len);
  const CompressedTraffic traffic(tm);
  EdgeLoads loads;
  RoutingWorkspace ws;
  EXPECT_FALSE(route_loads_multipath(g, lengths, traffic,
                                     MultipathMode::kEcmp, loads, ws));
}

// ---------------------------------------------------------------------------
// Evaluator integration: objective terms, summary, cache salting.
// ---------------------------------------------------------------------------

TEST(MultipathObjective, ZeroWeightsReproducePlainCostsOnUniquePaths) {
  const Context ctx = small_context(61, 14);
  Evaluator plain(ctx.distances, ctx.traffic, CostParams{});
  EvalEngineConfig engine;
  engine.multipath.mode = MultipathMode::kEcmp;
  Evaluator ecmp(ctx.distances, ctx.traffic, CostParams{}, engine);

  Rng rng(61);
  for (int trial = 0; trial < 10; ++trial) {
    Topology g = erdos_renyi_gnp(14, 0.25, rng);
    repair_connectivity(g, ctx.distances);
    const CostBreakdown a = plain.evaluate(g).breakdown;
    const CostBreakdown b = ecmp.evaluate(g).breakdown;
    EXPECT_EQ(b.multipath, 0.0);  // 0-weight terms are exactly zero
    EXPECT_EQ(a.total(), b.total());
  }
  EXPECT_GT(ecmp.multipath_stats().sweeps, 0u);
}

TEST(MultipathObjective, WeightedTermsEnterTheTotal) {
  Rng rng(62);
  const LatticeInstance inst = lattice(4, rng);
  const DistanceProvider lengths(inst.len);
  const CompressedTraffic traffic(inst.traffic);
  EvalEngineConfig engine;
  engine.multipath.mode = MultipathMode::kEcmp;
  engine.multipath.max_util_weight = 2.0;
  engine.multipath.oversub_weight = 3.0;
  Evaluator eval(lengths, traffic, CostParams{}, engine);
  const CostBreakdown b = eval.evaluate(inst.g).breakdown;
  const MultipathSummary& s = b.multipath_summary;
  EXPECT_GT(s.reference_capacity, 0.0);
  EXPECT_GE(s.max_utilization, 1.0);  // max load >= mean load
  EXPECT_GE(s.oversubscription, 0.0);
  EXPECT_EQ(b.multipath,
            2.0 * s.max_utilization + 3.0 * s.oversubscription);
  EXPECT_EQ(b.total(), b.existence + b.length + b.bandwidth + b.node +
                           b.resilience + b.multipath);
}

TEST(MultipathCacheSalt, SeparatesModesAndWeights) {
  const Context ctx = small_context(63, 8);
  Evaluator plain(ctx.distances, ctx.traffic, CostParams{});
  EXPECT_EQ(plain.cache_salt(), 0u);

  EvalEngineConfig engine;
  engine.multipath.mode = MultipathMode::kEcmp;
  Evaluator ecmp(ctx.distances, ctx.traffic, CostParams{}, engine);
  EXPECT_NE(ecmp.cache_salt(), 0u);

  engine.multipath.mode = MultipathMode::kWcmp;
  Evaluator wcmp(ctx.distances, ctx.traffic, CostParams{}, engine);
  EXPECT_NE(wcmp.cache_salt(), ecmp.cache_salt());

  engine.multipath.mode = MultipathMode::kEcmp;
  engine.multipath.max_util_weight = 1.0;
  Evaluator weighted(ctx.distances, ctx.traffic, CostParams{}, engine);
  EXPECT_NE(weighted.cache_salt(), ecmp.cache_salt());

  // Perf knobs must NOT move the salt: same objective, same key.
  engine.delta.mode = DsspMode::kOn;
  Evaluator delta(ctx.distances, ctx.traffic, CostParams{}, engine);
  EXPECT_EQ(delta.cache_salt(), weighted.cache_salt());
}

TEST(MultipathConfigValidation, ExclusionsAndWeightDomains) {
  EvalEngineConfig both;
  both.resilience.enabled = true;
  both.multipath.mode = MultipathMode::kEcmp;
  const Context ctx = small_context(64, 8);
  EXPECT_THROW(Evaluator(ctx.distances, ctx.traffic, CostParams{}, both),
               std::invalid_argument);

  SynthesisConfig cfg;
  cfg.context.num_pops = 8;
  cfg.engine = both;
  EXPECT_THROW(Synthesizer{cfg}, std::invalid_argument);

  SynthesisConfig bad;
  bad.context.num_pops = 8;
  bad.engine.multipath.mode = MultipathMode::kEcmp;
  bad.engine.multipath.max_util_weight = -1.0;
  EXPECT_THROW(Synthesizer{bad}, std::invalid_argument);
  bad.engine.multipath.max_util_weight =
      std::numeric_limits<double>::infinity();
  EXPECT_THROW(Synthesizer{bad}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// GA-level contract: one trajectory for every engine configuration, and a
// built network that provisions exactly the optimized loads.
// ---------------------------------------------------------------------------

SynthesisConfig multipath_config(MultipathMode mode) {
  SynthesisConfig cfg;
  cfg.context.num_pops = 10;
  cfg.ga.population = 16;
  cfg.ga.generations = 5;
  cfg.engine.multipath.mode = mode;
  cfg.engine.multipath.max_util_weight = 0.5;
  cfg.engine.multipath.oversub_weight = 0.25;
  return cfg;
}

TEST(MultipathGa, TrajectoryInvariantAcrossEngineConfigs) {
  std::vector<double> reference;
  double reference_cost = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const int cache_mode : {0, 1, 2}) {  // off | private | shared
      for (const bool dsssp : {false, true}) {
        SynthesisConfig cfg = multipath_config(MultipathMode::kEcmp);
        cfg.ga.parallel.num_threads = threads;
        cfg.engine.cache.enabled = cache_mode != 0;
        cfg.engine.cache.shared = cache_mode == 2;
        cfg.engine.delta.mode = dsssp ? DsspMode::kOn : DsspMode::kOff;
        const SynthesisResult r = Synthesizer(cfg).synthesize(7);
        const std::string what = "threads=" + std::to_string(threads) +
                                 " cache=" + std::to_string(cache_mode) +
                                 " dsssp=" + std::to_string(dsssp);
        if (reference.empty()) {
          reference = r.ga.best_cost_history;
          reference_cost = r.ga.best_cost;
          ASSERT_FALSE(reference.empty());
        } else {
          EXPECT_EQ(r.ga.best_cost_history, reference) << what;
          EXPECT_EQ(r.ga.best_cost, reference_cost) << what;
        }
        EXPECT_GT(r.multipath.sweeps, 0u) << what;
      }
    }
  }

  // Solver choice and a higher thread count must not move it either.
  for (const SpAlgorithm algo : {SpAlgorithm::kDense, SpAlgorithm::kSparse}) {
    SynthesisConfig cfg = multipath_config(MultipathMode::kEcmp);
    cfg.ga.parallel.num_threads = 8;
    cfg.engine.cache.enabled = true;
    cfg.engine.cache.shared = true;
    cfg.engine.delta.mode = DsspMode::kOn;
    cfg.engine.sp_algorithm = algo;
    const SynthesisResult r = Synthesizer(cfg).synthesize(7);
    EXPECT_EQ(r.ga.best_cost_history, reference);
    EXPECT_EQ(r.ga.best_cost, reference_cost);
  }
}

TEST(MultipathGa, WcmpSynthesizesAValidProvisionedNetwork) {
  SynthesisConfig cfg = multipath_config(MultipathMode::kWcmp);
  cfg.overprovision = 1.5;
  const SynthesisResult r = Synthesizer(cfg).synthesize(3);
  EXPECT_GT(r.multipath.sweeps, 0u);
  EXPECT_GT(r.cost.multipath_summary.reference_capacity, 0.0);
  validate_network(r.network);  // capacity == overprovision * load per link
  // The network's loads are the winner's evaluation loads bit for bit.
  EdgeLoads loads;
  RoutingWorkspace ws;
  ASSERT_TRUE(route_loads_multipath(r.network.topology, r.network.lengths,
                                    r.network.traffic, MultipathMode::kWcmp,
                                    loads, ws));
  ASSERT_EQ(loads.num_edges(), r.network.links.size());
  for (std::size_t e = 0; e < r.network.links.size(); ++e) {
    EXPECT_EQ(r.network.links[e].load, loads.value[e]);
  }
}

}  // namespace
}  // namespace cold
