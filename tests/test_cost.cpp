#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cost/cost_model.h"
#include "cost/evaluator.h"
#include "geom/distance.h"
#include "graph/algorithms.h"
#include "traffic/gravity.h"

namespace cold {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Three collinear PoPs at unit spacing with unit populations.
Evaluator line_evaluator(CostParams params) {
  const std::vector<Point> pts{{0, 0}, {1, 0}, {2, 0}};
  return Evaluator(distance_matrix(pts), gravity_matrix({1.0, 1.0, 1.0}),
                   params);
}

TEST(CostParams, Validation) {
  CostParams ok;
  EXPECT_NO_THROW(ok.validate());
  CostParams neg;
  neg.k2 = -1.0;
  EXPECT_THROW(neg.validate(), std::invalid_argument);
  CostParams nan;
  nan.k3 = std::nan("");
  EXPECT_THROW(nan.validate(), std::invalid_argument);
}

TEST(CostParams, ToStringMentionsAllCosts) {
  const std::string s = CostParams{1, 2, 3, 4}.to_string();
  EXPECT_NE(s.find("k0=1"), std::string::npos);
  EXPECT_NE(s.find("k3=4"), std::string::npos);
}

TEST(CostBreakdown, InfeasibleIsInfinite) {
  CostBreakdown b;
  b.feasible = false;
  b.existence = 100.0;
  EXPECT_EQ(b.total(), kInf);
  b.feasible = true;
  EXPECT_DOUBLE_EQ(b.total(), 100.0);
}

TEST(Evaluator, HandComputedPathCost) {
  // Path 0-1-2 with k0=10, k1=1, k2=0.1, k3=5.
  // Links: (0,1) len 1, (1,2) len 1. Loads: each link carries 2 demands of
  // 1 in each direction (e.g. (0,1) carries 0<->1 and 0<->2) = 4.
  // existence = 20; length = 2; bandwidth = 0.1 * (1*4 + 1*4) = 0.8;
  // node cost = 5 (only node 1 is core).
  Evaluator eval = line_evaluator(CostParams{10.0, 1.0, 0.1, 5.0});
  Topology path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  const CostBreakdown b = eval.breakdown(path);
  ASSERT_TRUE(b.feasible);
  EXPECT_DOUBLE_EQ(b.existence, 20.0);
  EXPECT_DOUBLE_EQ(b.length, 2.0);
  EXPECT_NEAR(b.bandwidth, 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(b.node, 5.0);
  EXPECT_NEAR(b.total(), 27.8, 1e-12);
}

TEST(Evaluator, TriangleAddsDirectLink) {
  // Full triangle on the line: direct 0-2 link of length 2. Every demand
  // goes direct: loads all 2 (1 each direction).
  Evaluator eval = line_evaluator(CostParams{10.0, 1.0, 0.1, 5.0});
  const Topology tri = Topology::complete(3);
  const CostBreakdown b = eval.breakdown(tri);
  EXPECT_DOUBLE_EQ(b.existence, 30.0);
  EXPECT_DOUBLE_EQ(b.length, 4.0);          // 1 + 1 + 2
  EXPECT_NEAR(b.bandwidth, 0.1 * (2.0 + 2.0 + 4.0), 1e-12);
  EXPECT_DOUBLE_EQ(b.node, 15.0);           // all three nodes core
}

TEST(Evaluator, DisconnectedIsInfeasible) {
  Evaluator eval = line_evaluator(CostParams{});
  Topology g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(eval.cost(g), kInf);
  EXPECT_FALSE(eval.breakdown(g).feasible);
}

TEST(Evaluator, CountsEvaluations) {
  Evaluator eval = line_evaluator(CostParams{});
  EXPECT_EQ(eval.evaluations(), 0u);
  Topology g = Topology::complete(3);
  eval.cost(g);
  eval.breakdown(g);
  EXPECT_EQ(eval.evaluations(), 2u);
}

TEST(Evaluator, ValidatesShapes) {
  const std::vector<Point> pts{{0, 0}, {1, 0}};
  EXPECT_THROW(Evaluator(distance_matrix(pts),
                         gravity_matrix({1.0, 1.0, 1.0}), CostParams{}),
               std::invalid_argument);
  Evaluator eval(distance_matrix(pts), gravity_matrix({1.0, 1.0}),
                 CostParams{});
  EXPECT_THROW(eval.cost(Topology(3)), std::invalid_argument);
}

TEST(Evaluator, K3ChargesOnlyCoreNodes) {
  // Star: 1 core node. Path: 1 core node (middle). Triangle: 3.
  CostParams params{0.0, 0.0, 0.0, 7.0};
  Evaluator eval = line_evaluator(params);
  Topology star(3);
  star.add_edge(1, 0);
  star.add_edge(1, 2);
  EXPECT_DOUBLE_EQ(eval.cost(star), 7.0);
  EXPECT_DOUBLE_EQ(eval.cost(Topology::complete(3)), 21.0);
}

TEST(Evaluator, ZeroCostsGiveZero) {
  Evaluator eval = line_evaluator(CostParams{0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(eval.cost(Topology::complete(3)), 0.0);
}

TEST(Evaluator, LastLoadsExposed) {
  Evaluator eval = line_evaluator(CostParams{});
  Topology path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  eval.cost(path);
  EXPECT_DOUBLE_EQ(eval.last_loads()(0, 1), 4.0);
}

TEST(Evaluator, MoreTrafficNeverCheaper) {
  // Monotonicity: scaling the traffic matrix up cannot reduce cost.
  const std::vector<Point> pts{{0, 0}, {1, 0}, {0.5, 1.0}};
  const auto dist = distance_matrix(pts);
  GravityOptions small_opt, big_opt;
  small_opt.scale = 1.0;
  big_opt.scale = 10.0;
  Evaluator small(dist, gravity_matrix({1, 2, 3}, small_opt), CostParams{});
  Evaluator big(dist, gravity_matrix({1, 2, 3}, big_opt), CostParams{});
  const Topology g = Topology::complete(3);
  Topology path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  for (const Topology& t : {g, path}) {
    EXPECT_GE(big.cost(t), small.cost(t));
  }
}

}  // namespace
}  // namespace cold
