#include <gtest/gtest.h>

#include "baselines/erdos_renyi.h"
#include "dk/dk_rewire.h"
#include "dk/dk_search.h"
#include "dk/dk_series.h"
#include "graph/isomorphism.h"
#include "graph/metrics.h"

namespace cold {
namespace {

Topology path_graph(std::size_t n) {
  Topology g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(DkDistribution, ZeroKIsEdgeCount) {
  const auto d0 = dk_distribution(Topology::complete(5), 0);
  EXPECT_EQ(d0.counts.at({}), 10u);
}

TEST(DkDistribution, OneKIsDegreeDistribution) {
  const auto d1 = dk_distribution(Topology::star(5, 0), 1);
  EXPECT_EQ(d1.counts.at({4}), 1u);
  EXPECT_EQ(d1.counts.at({1}), 4u);
}

TEST(DkDistribution, TwoKIsJointDegrees) {
  const auto d2 = dk_distribution(path_graph(4), 2);
  // Edges: (1,2) degrees, (2,2), (2,1) -> {1,2}: 2, {2,2}: 1.
  EXPECT_EQ(d2.counts.at({1, 2}), 2u);
  EXPECT_EQ(d2.counts.at({2, 2}), 1u);
}

TEST(DkDistribution, ThreeKSeparatesWedgesAndTriangles) {
  const auto d3_tri = dk_distribution(Topology::complete(3), 3);
  EXPECT_EQ(d3_tri.counts.size(), 1u);
  EXPECT_EQ(d3_tri.counts.at({1, 2, 2, 2}), 1u);  // one triangle, degrees 2

  const auto d3_path = dk_distribution(path_graph(3), 3);
  EXPECT_EQ(d3_path.counts.size(), 1u);
  EXPECT_EQ(d3_path.counts.at({0, 1, 2, 1}), 1u);  // one wedge
}

TEST(DkDistribution, WedgeCountMatchesTriples) {
  // Star: C(n-1, 2) wedges through the hub, no triangles.
  const auto d3 = dk_distribution(Topology::star(6, 0), 3);
  std::size_t wedges = 0;
  for (const auto& [sig, count] : d3.counts) {
    ASSERT_EQ(sig[0], 0);  // no triangles in a star
    wedges += count;
  }
  EXPECT_EQ(wedges, 10u);
}

TEST(DkDistribution, RejectsBadLevel) {
  EXPECT_THROW(dk_distribution(Topology(3), 4), std::invalid_argument);
  EXPECT_THROW(dk_distribution(Topology(3), -1), std::invalid_argument);
}

TEST(DkEqual, IsomorphicRelabelingsMatch) {
  Topology g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(1, 3);
  Topology h(5);  // same graph with swapped labels 0<->4
  h.add_edge(4, 1);
  h.add_edge(1, 2);
  h.add_edge(2, 3);
  h.add_edge(3, 0);
  h.add_edge(1, 3);
  for (int d = 0; d <= 3; ++d) EXPECT_TRUE(dk_equal(g, h, d)) << d;
}

TEST(DkEqual, HierarchyIsInclusive) {
  // Two graphs can match at 1K yet differ at 2K: C6 vs two triangles match
  // at d=0,1 (2-regular) but differ at d=3 (triangles).
  Topology c6(6);
  for (NodeId v = 0; v < 6; ++v) c6.add_edge(v, (v + 1) % 6);
  Topology tri2(6);
  tri2.add_edge(0, 1);
  tri2.add_edge(1, 2);
  tri2.add_edge(0, 2);
  tri2.add_edge(3, 4);
  tri2.add_edge(4, 5);
  tri2.add_edge(3, 5);
  EXPECT_TRUE(dk_equal(c6, tri2, 1));
  EXPECT_TRUE(dk_equal(c6, tri2, 2));  // all edges are (2,2)
  EXPECT_FALSE(dk_equal(c6, tri2, 3));
}

TEST(DkParameterCount, SmallKnownCases) {
  // Path on 4 nodes: distinct 2K labels {1,2},{2,2} -> 2 parameters.
  EXPECT_EQ(dk_parameter_count(path_graph(4), 2), 2u);
  // d=1: degrees {1,2} -> 2.
  EXPECT_EQ(dk_parameter_count(path_graph(4), 1), 2u);
  // Complete graph: everything is one class at every d.
  for (int d = 1; d <= 4; ++d) {
    EXPECT_EQ(dk_parameter_count(Topology::complete(6), d), 1u) << d;
  }
  EXPECT_THROW(dk_parameter_count(path_graph(4), 5), std::invalid_argument);
}

TEST(DkParameterCount, GrowsWithD) {
  // Fig 1's message: parameters explode as d increases.
  Rng rng(1);
  const Topology g = erdos_renyi_gnp(25, 0.25, rng);
  const std::size_t p2 = dk_parameter_count(g, 2);
  const std::size_t p3 = dk_parameter_count(g, 3);
  const std::size_t p4 = dk_parameter_count(g, 4);
  EXPECT_LT(p2, p3);
  EXPECT_LT(p3, p4);
  EXPECT_GT(p4, 10 * p2);
}

TEST(Rewire1k, PreservesDegreeSequence) {
  Rng rng(2);
  Topology g = erdos_renyi_gnp(20, 0.3, rng);
  const auto before = dk_distribution(g, 1);
  const std::size_t applied = rewire_preserving_1k(g, 500, rng);
  EXPECT_GT(applied, 0u);
  EXPECT_TRUE(before == dk_distribution(g, 1));
}

TEST(Rewire1k, ActuallyChangesGraph) {
  Rng rng(3);
  Topology g = erdos_renyi_gnp(20, 0.3, rng);
  const Topology before = g;
  rewire_preserving_1k(g, 500, rng);
  EXPECT_GT(Topology::edge_difference(before, g), 0u);
}

TEST(Rewire2k, PreservesJointDegreeDistribution) {
  Rng rng(4);
  Topology g = erdos_renyi_gnp(20, 0.35, rng);
  const auto before = dk_distribution(g, 2);
  rewire_preserving_2k(g, 1000, rng);
  EXPECT_TRUE(before == dk_distribution(g, 2));
}

TEST(SampleHelpers, KeepInvariantsAndMix) {
  Rng rng(5);
  const Topology g = erdos_renyi_gnp(18, 0.3, rng);
  const Topology s1 = sample_1k_random(g, rng);
  EXPECT_TRUE(dk_distribution(g, 1) == dk_distribution(s1, 1));
  const Topology s2 = sample_2k_random(g, rng);
  EXPECT_TRUE(dk_distribution(g, 2) == dk_distribution(s2, 2));
}

TEST(DkSearchExhaustive, RingIsDeterminedByIts3K) {
  // The paper's claim for rings: the 3K census pins the graph up to
  // isomorphism.
  Topology ring(6);
  for (NodeId v = 0; v < 6; ++v) ring.add_edge(v, (v + 1) % 6);
  const DkMatchStats stats = find_dk_matches_exhaustive(ring, 3);
  EXPECT_GT(stats.matches, 0u);
  EXPECT_EQ(stats.matches, stats.isomorphic_matches);
}

TEST(DkSearchExhaustive, LowerLevelsAreLooser) {
  // Spider tree with legs (2,2,1): degree sequence {3,2,2,1,1,1}. The
  // spider with legs (3,1,1) shares the 1K distribution but differs at 2K,
  // so 1K admits strictly more (connected) matches than 2K.
  Topology spider(6);
  spider.add_edge(0, 1);
  spider.add_edge(1, 2);
  spider.add_edge(0, 3);
  spider.add_edge(3, 4);
  spider.add_edge(0, 5);
  const DkMatchStats k1 = find_dk_matches_exhaustive(spider, 1);
  const DkMatchStats k2 = find_dk_matches_exhaustive(spider, 2);
  EXPECT_GT(k1.matches, k2.matches);
  EXPECT_GT(k1.matches, k1.isomorphic_matches);  // non-isomorphic 1K matches
  EXPECT_GE(k2.matches, k2.isomorphic_matches);
}

TEST(DkSearchExhaustive, GuardsSize) {
  EXPECT_THROW(find_dk_matches_exhaustive(Topology(7), 3),
               std::invalid_argument);
}

TEST(DkSearchRewiring, FindsMatchesOnLargerGraphs) {
  Rng rng(6);
  Topology ring(10);
  for (NodeId v = 0; v < 10; ++v) ring.add_edge(v, (v + 1) % 10);
  const DkMatchStats stats = find_dk_matches_rewiring(ring, 3, 50, rng);
  EXPECT_EQ(stats.candidates, 50u);
  // Any sampled graph matching the ring's 3K must be the ring itself.
  EXPECT_EQ(stats.matches, stats.isomorphic_matches);
}

}  // namespace
}  // namespace cold
