#include <gtest/gtest.h>

#include <cmath>

#include "baselines/erdos_renyi.h"
#include "baselines/plrg.h"
#include "baselines/waxman.h"
#include "geom/point_process.h"
#include "graph/algorithms.h"
#include "graph/metrics.h"
#include "util/stats.h"

namespace cold {
namespace {

TEST(ErdosRenyiGnp, EdgeCountMatchesExpectation) {
  Rng rng(1);
  const std::size_t n = 40;
  const double p = 0.2;
  double total = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(erdos_renyi_gnp(n, p, rng).num_edges());
  }
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(total / trials, expected, expected * 0.05);
}

TEST(ErdosRenyiGnp, ExtremesAndValidation) {
  Rng rng(2);
  EXPECT_EQ(erdos_renyi_gnp(10, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi_gnp(10, 1.0, rng).num_edges(), 45u);
  EXPECT_THROW(erdos_renyi_gnp(10, 1.5, rng), std::invalid_argument);
}

TEST(ErdosRenyiGnm, ExactEdgeCount) {
  Rng rng(3);
  for (std::size_t m : {0u, 5u, 20u, 45u}) {
    EXPECT_EQ(erdos_renyi_gnm(10, m, rng).num_edges(), m);
  }
  EXPECT_THROW(erdos_renyi_gnm(10, 46, rng), std::invalid_argument);
}

TEST(ErdosRenyiGnm, UniformOverPairs) {
  // Every pair should appear with roughly equal frequency.
  Rng rng(4);
  Matrix<int> counts = Matrix<int>::square(6, 0);
  const int trials = 6000;
  for (int t = 0; t < trials; ++t) {
    const Topology g = erdos_renyi_gnm(6, 3, rng);
    for (const Edge& e : g.edges()) ++counts(e.u, e.v);
  }
  // 15 pairs, 3 picked per trial -> expected 1200 each.
  for (NodeId i = 0; i < 6; ++i) {
    for (NodeId j = i + 1; j < 6; ++j) {
      EXPECT_NEAR(counts(i, j), 1200, 150);
    }
  }
}

TEST(ErdosRenyi, OftenDisconnectedAtLowDensity) {
  // The paper's Fig 2 complaint: ER graphs with a real network's edge count
  // are frequently disconnected.
  Rng rng(5);
  int disconnected = 0;
  for (int t = 0; t < 100; ++t) {
    if (!is_connected(erdos_renyi_gnm(20, 19, rng))) ++disconnected;
  }
  EXPECT_GT(disconnected, 50);
}

TEST(Waxman, DecaysWithDistance) {
  // Two tight clusters far apart: intra-cluster links should dominate.
  std::vector<Point> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back({0.01 * i, 0.0});
    pts.push_back({0.01 * i + 10.0, 0.0});
  }
  Rng rng(6);
  std::size_t intra = 0, inter = 0;
  for (int t = 0; t < 50; ++t) {
    const Topology g = waxman(pts, WaxmanParams{0.1, 0.9}, rng);
    for (const Edge& e : g.edges()) {
      const bool a_left = pts[e.u].x < 5.0;
      const bool b_left = pts[e.v].x < 5.0;
      if (a_left == b_left) {
        ++intra;
      } else {
        ++inter;
      }
    }
  }
  EXPECT_GT(intra, 20 * inter);
}

TEST(Waxman, BetaScalesDensity) {
  Rng rng1(7), rng2(7);
  const auto pts = UniformProcess().sample(30, Rectangle(), rng1);
  Rng grng1(8), grng2(9);
  std::size_t low = 0, high = 0;
  for (int t = 0; t < 30; ++t) {
    low += waxman(pts, WaxmanParams{0.4, 0.1}, grng1).num_edges();
    high += waxman(pts, WaxmanParams{0.4, 0.8}, grng2).num_edges();
  }
  EXPECT_GT(high, 4 * low);
}

TEST(Waxman, Validates) {
  Rng rng(10);
  const std::vector<Point> pts{{0, 0}, {1, 1}};
  EXPECT_THROW(waxman(pts, WaxmanParams{0.0, 0.5}, rng),
               std::invalid_argument);
  EXPECT_THROW(waxman(pts, WaxmanParams{0.5, 1.5}, rng),
               std::invalid_argument);
}

TEST(Waxman, CoincidentPointsYieldEmptyGraph) {
  Rng rng(11);
  const std::vector<Point> pts{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}};
  EXPECT_EQ(waxman(pts, WaxmanParams{}, rng).num_edges(), 0u);
}

TEST(PlrgDegrees, RespectBoundsAndEvenSum) {
  Rng rng(12);
  const auto degrees = plrg_degrees(100, PlrgParams{2.2, 1, 20}, rng);
  int total = 0;
  for (int d : degrees) {
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 20);
    total += d;
  }
  EXPECT_EQ(total % 2, 0);
}

TEST(PlrgDegrees, HeavyTailPresent) {
  Rng rng(13);
  const auto degrees = plrg_degrees(2000, PlrgParams{2.0, 1, 100}, rng);
  int ones = 0, big = 0;
  for (int d : degrees) {
    if (d == 1) ++ones;
    if (d >= 10) ++big;
  }
  EXPECT_GT(ones, 1000);  // most nodes are degree 1
  EXPECT_GT(big, 5);      // but the tail reaches far
}

TEST(Plrg, GraphIsSimpleAndDegreesBounded) {
  Rng rng(14);
  const Topology g = plrg(200, PlrgParams{2.5, 1, 0}, rng);
  EXPECT_EQ(g.num_nodes(), 200u);
  for (NodeId v = 0; v < 200; ++v) {
    EXPECT_FALSE(g.has_edge(v, v));
    EXPECT_LE(g.degree(v), 199);
  }
}

TEST(Plrg, HigherExponentFewerEdges) {
  Rng rng1(15), rng2(15);
  std::size_t flat = 0, steep = 0;
  for (int t = 0; t < 20; ++t) {
    flat += plrg(150, PlrgParams{1.8, 1, 0}, rng1).num_edges();
    steep += plrg(150, PlrgParams{3.5, 1, 0}, rng2).num_edges();
  }
  EXPECT_GT(flat, steep);
}

TEST(Plrg, Validates) {
  Rng rng(16);
  EXPECT_THROW(plrg(10, PlrgParams{1.0, 1, 0}, rng), std::invalid_argument);
  EXPECT_THROW(plrg(10, PlrgParams{2.5, 0, 0}, rng), std::invalid_argument);
  EXPECT_THROW(plrg(10, PlrgParams{2.5, 5, 3}, rng), std::invalid_argument);
}

TEST(Baselines, NoneProduceCapacitiesButColdDoes) {
  // Structural check behind Table 1's "generates network" row: baselines
  // emit bare topologies; COLD's Network carries link capacities. Here we
  // simply pin the baseline return type contract (a Topology has no
  // capacity information).
  Rng rng(17);
  const Topology g = erdos_renyi_gnp(10, 0.3, rng);
  static_assert(std::is_same_v<decltype(g), const Topology>);
  SUCCEED();
}

}  // namespace
}  // namespace cold
