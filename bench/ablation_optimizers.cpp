// Ablation (§3.3): the choice of a GA over alternative heuristics. The
// paper argues for the GA on flexibility / competitiveness / population
// output; here we measure the competitiveness leg directly: on identical
// contexts, compare the (initialized) GA against steepest-descent hill
// climbing and simulated annealing at a matched evaluation budget.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/context.h"
#include "ga/genetic.h"
#include "ga/objective.h"
#include "heuristics/hub_heuristics.h"
#include "heuristics/local_search.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace cold;

int main() {
  bench::banner("Ablation: GA vs hill climbing vs simulated annealing",
                "the initialized GA is competitive everywhere; single-point "
                "searches fall into regime-dependent local optima");

  const std::size_t n = 30;
  struct Cell {
    double k2;
    double k3;
  };
  const std::vector<Cell> cells{
      {1e-4, 0.0}, {1e-3, 0.0}, {1e-4, 10.0}, {1e-4, 300.0}};
  const std::size_t num_trials = bench::trials(5, 20);

  Table table({"k2", "k3", "optimizer", "rel_cost", "ci_lo", "ci_hi",
               "mean_evals"});
  for (const Cell& cell : cells) {
    std::vector<double> ga_rel, hc_rel, sa_rel;
    std::size_t ga_evals = 0, hc_evals = 0, sa_evals = 0;
    for (std::size_t t = 0; t < num_trials; ++t) {
      ContextConfig ctx_cfg;
      ctx_cfg.num_pops = n;
      Rng ctx_rng(400 + t);
      const Context ctx = generate_context(ctx_cfg, ctx_rng);
      const CostParams costs{10.0, 1.0, cell.k2, cell.k3};

      // Initialized GA (the paper's recommended configuration).
      Evaluator eval_ga(ctx.distances, ctx.traffic, costs);
      Rng hrng(500 + t), garng(600 + t);
      std::vector<Topology> seeds;
      for (const auto& h : run_all_heuristics(eval_ga, hrng)) {
        seeds.push_back(h.topology);
      }
      const GaResult ga = run_ga(eval_ga, bench::default_ga(), garng, seeds);
      ga_evals += ga.evaluations;

      // Hill climbing from the MST.
      Evaluator eval_hc(ctx.distances, ctx.traffic, costs);
      EvaluatorObjective obj_hc(eval_hc);
      const LocalSearchResult hc = hill_climb(obj_hc, HillClimbConfig{});
      hc_evals += hc.evaluations;

      // Annealing at (roughly) the GA's evaluation budget.
      Evaluator eval_sa(ctx.distances, ctx.traffic, costs);
      EvaluatorObjective obj_sa(eval_sa);
      AnnealingConfig sa_cfg;
      sa_cfg.iterations = ga.evaluations;
      Rng sarng(700 + t);
      const LocalSearchResult sa = simulated_annealing(obj_sa, sa_cfg, sarng);
      sa_evals += sa.evaluations;

      const double best =
          std::min({ga.best_cost, hc.best_cost, sa.best_cost});
      ga_rel.push_back(ga.best_cost / best);
      hc_rel.push_back(hc.best_cost / best);
      sa_rel.push_back(sa.best_cost / best);
    }
    auto add = [&](const char* name, const std::vector<double>& rel,
                   std::size_t evals) {
      const ConfidenceInterval ci = bootstrap_mean_ci(rel);
      table.add_row({cell.k2, cell.k3, std::string(name), ci.mean, ci.lo,
                     ci.hi, static_cast<long long>(evals / num_trials)});
    };
    add("initialized GA", ga_rel, ga_evals);
    add("hill climb", hc_rel, hc_evals);
    add("annealing", sa_rel, sa_evals);
    std::cerr << "  k2=" << cell.k2 << " k3=" << cell.k3 << " done\n";
  }
  table.print_both(std::cout, "ablation_optimizers");
  return 0;
}
