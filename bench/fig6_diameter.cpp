// Figure 6: network (hop) diameter versus k2 for k3 in {0, 10, 100, 1000},
// k0 = 10, k1 = 1, n = 30. The paper reports: high k3 -> centralized, low
// diameter; high k2 -> meshy, low diameter; intermediate costs -> the
// highest diameters.
#include <iostream>

#include "bench_common.h"
#include "core/ensemble.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace cold;

int main() {
  bench::banner("Figure 6 (diameter vs k2, by k3)",
                "diameter peaks at intermediate costs; high k2 or high k3 "
                "both shrink it");

  const std::size_t n = 30;
  const auto k2_grid = log_space(2.5e-5, 2e-3, 7);
  const std::vector<double> k3_values{0.0, 10.0, 100.0, 1000.0};
  const std::size_t sims = bench::trials(8, 200);

  Table table({"k3", "k2", "diameter", "ci_lo", "ci_hi"});
  for (double k3 : k3_values) {
    for (double k2 : k2_grid) {
      const Synthesizer synth(
          bench::sweep_config(n, CostParams{10.0, 1.0, k2, k3}));
      std::vector<double> values;
      for (const TopologyMetrics& m : sweep_metrics(synth, sims)) {
        values.push_back(static_cast<double>(m.diameter));
      }
      const ConfidenceInterval ci = bootstrap_mean_ci(values);
      table.add_row({k3, k2, ci.mean, ci.lo, ci.hi});
      std::cerr << "  k3=" << k3 << " k2=" << k2 << " done\n";
    }
  }
  table.print_both(std::cout, "fig6_diameter");
  return 0;
}
