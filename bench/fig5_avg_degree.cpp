// Figure 5: average node degree versus k2, for k3 in {0, 10, 100, 1000},
// with k0 = 10, k1 = 1, n = 30. The paper reports smooth monotone growth in
// k2 (toward cliques) and decline in k3 (toward hub-and-spoke), spanning
// [2 - 2/n, n-1].
#include <iostream>

#include "bench_common.h"
#include "core/ensemble.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace cold;

int main() {
  bench::banner("Figure 5 (avg node degree vs k2, by k3)",
                "avg degree rises with k2, falls with k3; smooth curves, "
                "tight CIs");

  const std::size_t n = 30;
  const auto k2_grid = log_space(2.5e-5, 2e-3, 7);
  const std::vector<double> k3_values{0.0, 10.0, 100.0, 1000.0};
  const std::size_t sims = bench::trials(8, 200);

  Table table({"k3", "k2", "avg_degree", "ci_lo", "ci_hi"});
  for (double k3 : k3_values) {
    for (double k2 : k2_grid) {
      const Synthesizer synth(
          bench::sweep_config(n, CostParams{10.0, 1.0, k2, k3}));
      std::vector<double> values;
      for (const TopologyMetrics& m : sweep_metrics(synth, sims)) {
        values.push_back(m.avg_degree);
      }
      const ConfidenceInterval ci = bootstrap_mean_ci(values);
      table.add_row({k3, k2, ci.mean, ci.lo, ci.hi});
      std::cerr << "  k3=" << k3 << " k2=" << k2 << " done\n";
    }
  }
  table.print_both(std::cout, "fig5_avg_degree");
  return 0;
}
