// Figure 8a: empirical distribution (CDF) of CVND over PoP-level networks.
// The paper uses the Internet Topology Zoo [16]; we substitute the bundled
// synthetic zoo ensemble (see DESIGN.md §3). The paper's reading: about 15%
// of networks have CVND > 1 — values unattainable by COLD without a
// node-based cost — with the tail reaching ~2.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "graph/metrics.h"
#include "util/csv.h"
#include "util/stats.h"
#include "zoo/zoo.h"

using namespace cold;

int main() {
  bench::banner("Figure 8a (CVND distribution of reference zoo)",
                "~15% of reference networks exceed CVND 1; tail reaches ~2");

  std::vector<double> cvnds;
  for (const ZooEntry& z : synthetic_zoo()) {
    cvnds.push_back(degree_cv(z.topology));
  }
  std::sort(cvnds.begin(), cvnds.end());

  Table cdf({"cvnd", "cdf"});
  for (std::size_t i = 0; i < cvnds.size(); ++i) {
    cdf.add_row({cvnds[i], static_cast<double>(i + 1) /
                               static_cast<double>(cvnds.size())});
  }
  cdf.print_both(std::cout, "fig8a_zoo_cvnd_cdf");

  const auto counts = histogram(cvnds, 0.0, 2.0, 8);
  Table hist({"bin_lo", "bin_hi", "count"});
  for (std::size_t b = 0; b < counts.size(); ++b) {
    hist.add_row({0.25 * static_cast<double>(b),
                  0.25 * static_cast<double>(b + 1),
                  static_cast<long long>(counts[b])});
  }
  hist.print_both(std::cout, "fig8a_zoo_cvnd_hist");

  std::size_t over_one = 0;
  for (double cv : cvnds) {
    if (cv > 1.0) ++over_one;
  }
  std::cout << "Networks: " << cvnds.size() << ", CVND > 1: " << over_one
            << " (" << 100.0 * over_one / cvnds.size()
            << "%), max CVND: " << cvnds.back() << "\n";
  return 0;
}
