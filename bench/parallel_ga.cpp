// Parallel evaluation engine benchmark: GA wall-clock vs worker-thread
// count, with a bit-identity check against the sequential engine.
//
// Measures run_ga at population 64, n = 40 PoPs (the acceptance scenario of
// the parallel engine) for num_threads in {1, 2, 4, 8}, verifies that every
// thread count reproduces the 1-thread best_cost_history AND the 1-thread
// telemetry trace exactly, and writes the results to
// BENCH_parallel_ga.json (first argv, default ./). COLD_BENCH_REPORT=FILE
// additionally writes the JSON run report of the last measured run.
//
// Interpretation: speedup_vs_1 should approach min(threads, cores) for the
// scoring-dominated workload; on a 1-core host all settings time alike (the
// pool adds only negligible handoff overhead) but the identity check still
// exercises the full parallel path.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/context.h"
#include "ga/genetic.h"
#include "telemetry/sinks.h"

namespace {

using namespace cold;

struct Sample {
  std::size_t threads = 1;
  double seconds = 0.0;
  bool identical_history = true;
  bool identical_trace = true;
};

GaResult run_once(const Context& ctx, std::size_t threads, std::uint64_t seed,
                  std::size_t generations, TraceSink& trace,
                  cold::bench::BenchTelemetry* telemetry) {
  Evaluator eval(ctx.distances, ctx.traffic, CostParams{10.0, 1.0, 4e-4, 10.0});
  GaRunOptions options;
  options.config.population = 64;
  options.config.generations = generations;
  options.config.parallel.num_threads = threads;
  MultiObserver observer;
  if (telemetry != nullptr) telemetry->attach(options);
  observer.add(options.observer);  // env-driven report sink, if any
  observer.add(&trace);
  options.observer = &observer;
  Rng rng(seed);
  return run_ga(eval, rng, options);
}

}  // namespace

int main(int argc, char** argv) {
  cold::bench::banner(
      "Parallel GA engine (threads vs wall-clock)",
      "N-thread scoring is bit-identical to 1-thread and scales near-"
      "linearly in cores for population >= 32");

  const std::size_t n = 40;
  const std::size_t generations = cold::bench::trials(12, 100);
  const std::uint64_t seed = 1;
  ContextConfig ctx_cfg;
  ctx_cfg.num_pops = n;
  Rng ctx_rng(seed);
  const Context ctx = generate_context(ctx_cfg, ctx_rng);

  TraceSink reference_trace;
  const GaResult reference =
      run_once(ctx, 1, seed, generations, reference_trace, nullptr);

  cold::bench::BenchTelemetry telemetry;
  std::vector<Sample> samples;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    TraceSink trace;
    const auto t0 = std::chrono::steady_clock::now();
    const GaResult r =
        run_once(ctx, threads, seed, generations, trace, &telemetry);
    const auto t1 = std::chrono::steady_clock::now();
    Sample s;
    s.threads = threads;
    s.seconds = std::chrono::duration<double>(t1 - t0).count();
    s.identical_history =
        r.best_cost_history == reference.best_cost_history &&
        r.best_cost == reference.best_cost &&
        r.final_costs == reference.final_costs &&
        r.evaluations == reference.evaluations;
    s.identical_trace = trace.canonical() == reference_trace.canonical();
    samples.push_back(s);
    std::printf(
        "threads=%zu  %8.3f s  speedup %5.2fx  identical=%s  trace=%s\n",
        s.threads, s.seconds, samples.front().seconds / s.seconds,
        s.identical_history ? "yes" : "NO", s.identical_trace ? "yes" : "NO");
  }

  const std::string path =
      (argc > 1 ? std::string(argv[1]) : std::string(".")) +
      "/BENCH_parallel_ga.json";
  if (FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"parallel_ga\",\n"
                 "  \"pops\": %zu,\n"
                 "  \"population\": 64,\n"
                 "  \"generations\": %zu,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"runs\": [\n",
                 n, generations, std::thread::hardware_concurrency());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const Sample& s = samples[i];
      std::fprintf(f,
                   "    {\"threads\": %zu, \"seconds\": %.6f, "
                   "\"speedup_vs_1\": %.3f, \"identical_history\": %s, "
                   "\"identical_trace\": %s}%s\n",
                   s.threads, s.seconds, samples.front().seconds / s.seconds,
                   s.identical_history ? "true" : "false",
                   s.identical_trace ? "true" : "false",
                   i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::printf("\ncould not write %s\n", path.c_str());
    return 1;
  }

  bool all_identical = true;
  for (const Sample& s : samples) {
    all_identical &= s.identical_history && s.identical_trace;
  }
  return all_identical ? 0 : 1;
}
