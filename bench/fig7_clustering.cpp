// Figure 7: global clustering coefficient versus k2 for k3 in
// {0, 10, 100, 1000}, k0 = 10, k1 = 1, n = 30. The paper reports GCC rising
// with k2 from 0 (trees) toward 1 (cliques), finely controlled by k2/k3.
#include <iostream>

#include "bench_common.h"
#include "core/ensemble.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace cold;

int main() {
  bench::banner("Figure 7 (global clustering vs k2, by k3)",
                "GCC grows with k2 across the [16] range (~0 to ~0.2 at "
                "these k2 values); higher k3 suppresses it");

  const std::size_t n = 30;
  const auto k2_grid = log_space(2.5e-5, 2e-3, 7);
  const std::vector<double> k3_values{0.0, 10.0, 100.0, 1000.0};
  const std::size_t sims = bench::trials(8, 200);

  Table table({"k3", "k2", "gcc", "ci_lo", "ci_hi"});
  for (double k3 : k3_values) {
    for (double k2 : k2_grid) {
      const Synthesizer synth(
          bench::sweep_config(n, CostParams{10.0, 1.0, k2, k3}));
      std::vector<double> values;
      for (const TopologyMetrics& m : sweep_metrics(synth, sims)) {
        values.push_back(m.global_clustering);
      }
      const ConfidenceInterval ci = bootstrap_mean_ci(values);
      table.add_row({k3, k2, ci.mean, ci.lo, ci.hi});
      std::cerr << "  k3=" << k3 << " k2=" << k2 << " done\n";
    }
  }
  table.print_both(std::cout, "fig7_clustering");
  return 0;
}
