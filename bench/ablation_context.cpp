// Ablation (§3.1, §7): context-model sensitivity. The paper reports that
// region shape, location burstiness, and traffic heavy-tailedness move the
// PoP-level statistics only slightly — a region must be "quite long and
// thin" before networks change significantly, and even Pareto(10/9) traffic
// raises CVND only a little (which is why the explicit k3 cost is needed).
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/ensemble.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace cold;

namespace {

struct Variant {
  std::string name;
  ContextConfig context;
};

}  // namespace

int main() {
  bench::banner("Ablation: context-model sensitivity",
                "PoP-level stats are nearly invariant to region shape, "
                "burstiness and traffic tail; only extreme shapes matter");

  const std::size_t n = 30;
  // k3 = 0: this is the regime in which the paper probed context
  // sensitivity (§7 introduces k3 precisely because context changes could
  // not raise CVND enough).
  const CostParams costs{10.0, 1.0, 4e-4, 0.0};
  const std::size_t sims = bench::trials(8, 100);

  std::vector<Variant> variants;
  {
    Variant v;
    v.name = "baseline (unit square, uniform, exp traffic)";
    v.context.num_pops = n;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "rectangle 4:1";
    v.context.num_pops = n;
    v.context.region = Rectangle::with_aspect_ratio(4.0);
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "rectangle 16:1 (long+thin)";
    v.context.num_pops = n;
    v.context.region = Rectangle::with_aspect_ratio(16.0);
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "bursty locations (5 clusters)";
    v.context.num_pops = n;
    v.context.point_process = std::make_shared<ClusteredProcess>(5, 0.05);
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "Pareto(1.5) traffic";
    v.context.num_pops = n;
    v.context.population_model = std::make_shared<ParetoPopulation>(1.5, 30.0);
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "Pareto(10/9) traffic (infinite variance)";
    v.context.num_pops = n;
    v.context.population_model =
        std::make_shared<ParetoPopulation>(10.0 / 9.0, 30.0);
    variants.push_back(v);
  }

  Table table({"context", "avg_degree", "diameter", "gcc", "cvnd", "hubs"});
  for (const Variant& v : variants) {
    SynthesisConfig cfg;
    cfg.context = v.context;
    cfg.costs = costs;
    cfg.ga = bench::default_ga();
    const Synthesizer synth(cfg);
    std::vector<double> deg, diam, gcc, cvnd, hubs;
    for (const TopologyMetrics& m : sweep_metrics(synth, sims)) {
      deg.push_back(m.avg_degree);
      diam.push_back(static_cast<double>(m.diameter));
      gcc.push_back(m.global_clustering);
      cvnd.push_back(m.degree_cv);
      hubs.push_back(static_cast<double>(m.hubs));
    }
    table.add_row({v.name, summarize(deg).mean, summarize(diam).mean,
                   summarize(gcc).mean, summarize(cvnd).mean,
                   summarize(hubs).mean});
    std::cerr << "  " << v.name << " done\n";
  }
  table.print_both(std::cout, "ablation_context");
  std::cout << "Reading: rows should be close to the baseline except the "
               "16:1 region; in particular no context variant lifts CVND "
               "anywhere near the k3-driven values of Fig 8b.\n";
  return 0;
}
