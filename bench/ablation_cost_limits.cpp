// Ablation (§3.2.3): single-cost-dominant limiting topologies. The paper
// derives: k0 dominant -> spanning trees; k1 dominant -> the minimum
// spanning tree; k2 dominant -> clique; k3 dominant -> hub-and-spoke. We
// push each cost to dominance and verify the synthesized topology.
#include <iostream>

#include "bench_common.h"
#include "core/context.h"
#include "core/synthesizer.h"
#include "graph/algorithms.h"
#include "graph/metrics.h"
#include "util/csv.h"

using namespace cold;

int main() {
  bench::banner("Ablation: single-cost limiting topologies",
                "k0/k1 -> trees (k1 -> the MST), k2 -> clique, k3 -> "
                "hub-and-spoke");

  const std::size_t n = 12;
  struct Case {
    std::string name;
    CostParams costs;
    std::string expect;
  };
  const std::vector<Case> cases{
      {"k0 dominant", {1e6, 1.0, 1e-9, 0.0}, "spanning tree (n-1 links)"},
      {"k1 dominant", {0.0, 1e6, 1e-9, 0.0}, "the distance MST"},
      {"k2 dominant", {1e-9, 1e-9, 1e6, 0.0}, "clique (n(n-1)/2 links)"},
      {"k3 dominant", {1e-3, 1e-3, 1e-9, 1e9}, "hub-and-spoke (1 core node)"},
  };
  const std::size_t trials_per_case = bench::trials(3, 10);

  Table table({"case", "expected", "trial", "links", "core_nodes",
               "matches_prediction"});
  for (const Case& c : cases) {
    for (std::size_t t = 0; t < trials_per_case; ++t) {
      SynthesisConfig cfg = bench::sweep_config(n, c.costs);
      const Synthesizer synth(cfg);
      const SynthesisResult r = synth.synthesize(t + 1);
      const Topology& g = r.network.topology;
      bool match = false;
      if (c.name == "k0 dominant") {
        match = g.num_edges() == n - 1;
      } else if (c.name == "k1 dominant") {
        match = g == minimum_spanning_tree(r.context.distances);
      } else if (c.name == "k2 dominant") {
        match = g.num_edges() == n * (n - 1) / 2;
      } else {
        match = g.num_core_nodes() == 1;
      }
      table.add_row({c.name, c.expect, static_cast<long long>(t),
                     static_cast<long long>(g.num_edges()),
                     static_cast<long long>(g.num_core_nodes()),
                     std::string(match ? "yes" : "NO")});
    }
    std::cerr << "  " << c.name << " done\n";
  }
  table.print_both(std::cout, "ablation_cost_limits");
  return 0;
}
