// Ablation: redundancy as an emergent property. The paper's cost model
// deliberately omits explicit redundancy constraints (§3.2); this ablation
// measures how much redundancy COLD networks *end up with* anyway as k2/k3
// vary — bridges, edge connectivity, and the traffic impact of worst-case
// single-link failures (via the sim substrate).
#include <iostream>

#include "bench_common.h"
#include "core/synthesizer.h"
#include "graph/connectivity.h"
#include "sim/failure.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace cold;

int main() {
  bench::banner("Ablation: emergent redundancy vs k2/k3",
                "meshier networks (high k2) gain bridge-free cores; hub "
                "networks (high k3) concentrate failure risk");

  const std::size_t n = 20;
  struct Cell {
    double k2;
    double k3;
  };
  const std::vector<Cell> cells{
      {2.5e-5, 0.0}, {4e-4, 0.0},  {2e-3, 0.0},
      {2.5e-5, 10.0}, {4e-4, 10.0}, {4e-4, 1000.0},
  };
  const std::size_t sims = bench::trials(5, 30);

  Table table({"k2", "k3", "bridge_frac", "edge_conn", "disc_scenarios_frac",
               "mean_rerouted", "worst_stretch"});
  for (const Cell& cell : cells) {
    std::vector<double> bridge_frac, edge_conn, disc_frac, rerouted, stretch;
    SynthesisConfig cfg =
        bench::sweep_config(n, CostParams{10.0, 1.0, cell.k2, cell.k3});
    const Synthesizer synth(cfg);
    for (std::size_t s = 0; s < sims; ++s) {
      const Network net = synth.synthesize(300 + s).network;
      const ResilienceReport rep = analyze_resilience(net.topology);
      bridge_frac.push_back(rep.single_link_failure_disconnect_rate);
      edge_conn.push_back(static_cast<double>(rep.edge_connectivity));
      const auto sweep = single_link_failure_sweep(net);
      const FailureSweepSummary sum = summarize_sweep(sweep);
      disc_frac.push_back(static_cast<double>(sum.disconnecting) /
                          static_cast<double>(sum.scenarios));
      rerouted.push_back(sum.mean_rerouted_fraction);
      stretch.push_back(sum.worst_stretch);
    }
    table.add_row({cell.k2, cell.k3, summarize(bridge_frac).mean,
                   summarize(edge_conn).mean, summarize(disc_frac).mean,
                   summarize(rerouted).mean, summarize(stretch).mean});
    std::cerr << "  k2=" << cell.k2 << " k3=" << cell.k3 << " done\n";
  }
  table.print_both(std::cout, "ablation_resilience");
  std::cout << "Reading: pure trees/stars (low k2 or high k3) have bridge "
               "fraction 1 — every link failure strands traffic — while "
               "high-k2 meshes develop 2-edge-connected cores for free.\n";
  return 0;
}
