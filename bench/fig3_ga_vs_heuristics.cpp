// Figure 3: cost of the best solution found by each algorithm versus k2,
// normalized by the initialized GA's result. n = 30, k0 = 10, k1 = 1,
// k3 = 0 (left panel) and k3 = 10 (right panel), bootstrap CIs over trials.
//
// Paper's reading: individual greedy heuristics win in different regimes;
// the plain GA is competitive at k3 = 0 but weaker at k3 = 10; the
// initialized GA (seeded with every heuristic's output) is never worse than
// any competitor — normalized costs are all >= 1.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "core/context.h"
#include "ga/genetic.h"
#include "heuristics/hub_heuristics.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace cold;

int main() {
  bench::banner("Figure 3 (best cost vs k2, normalized by initialized GA)",
                "initialized GA dominates (all ratios >= 1); different "
                "heuristics win in different regimes");

  const std::size_t n = 30;
  const auto k2_grid = log_space(1e-4, 2e-3, 5);
  const std::vector<double> k3_values{0.0, 10.0};
  const std::size_t num_trials = bench::trials(6, 20);

  Table table({"k3", "k2", "algorithm", "rel_cost", "ci_lo", "ci_hi"});
  for (double k3 : k3_values) {
    for (double k2 : k2_grid) {
      const CostParams costs{10.0, 1.0, k2, k3};
      // per-algorithm relative costs across trials
      std::map<std::string, std::vector<double>> rel;
      for (std::size_t trial = 0; trial < num_trials; ++trial) {
        ContextConfig ctx_cfg;
        ctx_cfg.num_pops = n;
        Rng ctx_rng(1000 + trial);
        const Context ctx = generate_context(ctx_cfg, ctx_rng);
        Evaluator eval(ctx.distances, ctx.traffic, costs);

        Rng hrng(2000 + trial);
        const auto heuristics = run_all_heuristics(eval, hrng);
        std::vector<Topology> seeds;
        for (const auto& h : heuristics) seeds.push_back(h.topology);

        Rng ga_rng(3000 + trial), init_rng(3000 + trial);
        const GaConfig ga_cfg = bench::default_ga();
        const GaResult plain = run_ga(eval, ga_cfg, ga_rng);
        const GaResult initialized = run_ga(eval, ga_cfg, init_rng, seeds);

        const double base = initialized.best_cost;
        for (const auto& h : heuristics) rel[h.name].push_back(h.cost / base);
        rel["GA"].push_back(plain.best_cost / base);
        rel["initialized GA"].push_back(1.0);
      }
      for (const auto& [name, values] : rel) {
        const ConfidenceInterval ci = bootstrap_mean_ci(values);
        table.add_row({k3, k2, name, ci.mean, ci.lo, ci.hi});
      }
      std::cerr << "  k3=" << k3 << " k2=" << k2 << " done\n";
    }
  }
  table.print_both(std::cout, "fig3_ga_vs_heuristics");
  std::cout << "Sanity: every rel_cost above should be >= 1 (initialized GA "
               "dominates by construction).\n";
  return 0;
}
