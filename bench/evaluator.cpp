// Memoized + sparse evaluation engine benchmark.
//
// Three measurements, all on GA-shaped inputs:
//
//   1. Cache throughput: record the exact topology sequence a real GA run
//      evaluates (elites, crossover echoes, mutation round-trips make it
//      duplicate-heavy), then replay it several passes through an Evaluator
//      with the cache off vs on. Gate: >= 3x evals/sec with the cache.
//   2. Cache hit rate: the fraction of the recorded workload served from
//      cache on a cold start (single pass) and across all passes.
//   3. Multi-worker replay: partition the trace round-robin over 2 and 4
//      Evaluator clones, comparing private per-clone caches against one
//      SharedCostCache. Gate: the shared hit rate strictly beats the
//      private one at every worker count.
//   4. Sparse vs dense shortest paths: evaluate m ~ n topologies (MST plus
//      a few chords — the shapes synthesis actually produces) at n = 80 and
//      n = 120 with the solver forced dense vs sparse. Gate: sparse wins at
//      both sizes.
//   5. Delta evaluation (dynamic SSSP): replay the recorded trace with the
//      GA's parent hints through a delta-enabled, cache-off Evaluator —
//      every evaluation is a cache miss, so the speedup isolates
//      incremental re-routing against full sweeps. Gate: >= 1.25x evals/sec
//      and per-evaluation bit-identity with the uncached reference. (The
//      floor was 2x against the scalar dense scan; the blocked/batched
//      kernel roughly doubled full-sweep throughput — the denominator of
//      this ratio — while delta throughput held, so the floor was
//      re-baselined. See DESIGN.md §4.6.)
//   6. Blocked dense kernel: full Dijkstra sweeps over every source of an
//      n = 96 near-clique, the blocked/batched dense solver vs the original
//      scalar scan (shortest_path_tree_reference). Gate: >= 2x trees/sec
//      with bit-identical trees (dist, hops, parent, settle order).
//   7. Affinity routing: replay the hinted n = 80 trace over 4 delta-enabled
//      Evaluator clones, routing each child to the worker that retains its
//      parent's routing state (the scorer's affinity policy) vs blind
//      round-robin. Gate: the affinity delta hit rate strictly beats
//      round-robin, with an absolute floor; per-worker hit/fallback splits
//      go into the artifact.
//   8. Multipath (ECMP) throughput: evaluate the n = 80 m ~ n instance with
//      the traffic engine forced single-path vs ECMP DAG splitting, both
//      with zero objective weights. Euclidean instances have unique
//      shortest paths, so the ECMP costs must be bit-identical to the
//      single-path reference; the gate floors the evals/sec ratio (ECMP
//      pays for DAG predecessor enumeration plus the split scatter on top
//      of every sweep).
//
// Every configuration is also checked for bit-identical costs (the engine's
// exactness contract); any mismatch fails the run. Results — including a
// "gates" array of every pass/fail outcome for the CI baseline diff — go to
// BENCH_evaluator.json (first argv, default ./).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "core/context.h"
#include "cost/evaluator.h"
#include "ga/genetic.h"
#include "ga/objective.h"
#include "graph/algorithms.h"
#include "graph/shortest_paths.h"

namespace {

using namespace cold;

/// Records every topology the GA asks to score, together with the parent
/// hint the GA announced for it (0 = none — initial population). clone()
/// returns nullptr so the GA runs sequentially and the trace is the
/// complete evaluation sequence in order.
class RecordingObjective final : public Objective {
 public:
  RecordingObjective(Evaluator& eval, std::vector<Topology>& trace,
                     std::vector<std::uint64_t>& hints)
      : eval_(&eval), trace_(&trace), hints_(&hints) {}

  double cost(const Topology& g) override {
    trace_->push_back(g);
    hints_->push_back(pending_hint_);
    pending_hint_ = 0;
    return eval_->cost(g);
  }
  const DistanceProvider& lengths() const override { return eval_->lengths(); }

  void set_parent_hint(std::uint64_t fingerprint) override {
    pending_hint_ = fingerprint;
  }

 private:
  Evaluator* eval_;
  std::vector<Topology>* trace_;
  std::vector<std::uint64_t>* hints_;
  std::uint64_t pending_hint_ = 0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Replays `trace` `passes` times through `eval`; returns evals/sec and
/// appends every cost to `costs` (for the exactness cross-check).
double replay(const std::vector<Topology>& trace, std::size_t passes,
              Evaluator& eval, std::vector<double>& costs) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t p = 0; p < passes; ++p) {
    for (const Topology& g : trace) costs.push_back(eval.cost(g));
  }
  const double secs = seconds_since(t0);
  return static_cast<double>(passes * trace.size()) / secs;
}

/// An m ~ n topology of the kind synthesis produces: the MST of random
/// PoP locations plus ~n/8 random chords.
Topology sparse_instance(const Context& ctx, std::uint64_t seed) {
  Topology g = minimum_spanning_tree(ctx.distances);
  const std::size_t n = g.num_nodes();
  Rng rng(seed, /*stream=*/7);
  for (std::size_t added = 0; added < n / 8;) {
    const NodeId u = rng.uniform_index(n);
    const NodeId v = rng.uniform_index(n);
    if (u != v && g.add_edge(u, v)) ++added;
  }
  return g;
}

struct ReplaySample {
  std::size_t workers = 0;
  double private_hit_rate = 0.0;  // per-worker private CostCaches
  double shared_hit_rate = 0.0;   // one SharedCostCache across workers
  bool identical = false;
};

/// Replays `trace` round-robin over `workers` Evaluator clones (trace item i
/// goes to clone i % workers — the deterministic analogue of the GA's
/// offspring partition), once with private per-clone caches and once with
/// one shared cache. Workers run on the calling thread: this measures hit
/// rates, not contention, so the comparison is exact and machine-independent.
ReplaySample replay_multi_worker(const Context& ctx, const CostParams& costs,
                                 const std::vector<Topology>& trace,
                                 const std::vector<double>& reference,
                                 std::size_t workers) {
  ReplaySample s;
  s.workers = workers;
  s.identical = true;
  for (const bool shared : {false, true}) {
    EvalEngineConfig engine;
    engine.cache.enabled = true;
    engine.cache.shared = shared;
    Evaluator primary(ctx.distances, ctx.traffic, costs, engine);
    std::vector<Evaluator> clones;
    clones.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      clones.push_back(primary.clone());
    }
    for (std::size_t i = 0; i < trace.size(); ++i) {
      s.identical &= clones[i % workers].cost(trace[i]) == reference[i];
    }
    for (Evaluator& c : clones) primary.merge_stats(c);
    (shared ? s.shared_hit_rate : s.private_hit_rate) =
        primary.cache_stats().hit_rate();
  }
  return s;
}

struct SparseSample {
  std::size_t pops = 0;
  std::size_t edges = 0;
  double dense_eps = 0.0;   // evals/sec, solver forced dense
  double sparse_eps = 0.0;  // evals/sec, solver forced sparse
  bool auto_picks_sparse = false;
  bool identical = false;
};

SparseSample measure_sparse_vs_dense(std::size_t n, std::size_t reps) {
  ContextConfig ctx_cfg;
  ctx_cfg.num_pops = n;
  Rng ctx_rng(2 + n);
  const Context ctx = generate_context(ctx_cfg, ctx_rng);
  const Topology g = sparse_instance(ctx, 2 + n);

  SparseSample s;
  s.pops = n;
  s.edges = g.num_edges();
  s.auto_picks_sparse =
      select_sp_algorithm(n, g.num_edges()) == SpAlgorithm::kSparse;

  const CostParams costs{10.0, 1.0, 4e-4, 10.0};
  double dense_cost = 0.0, sparse_cost = 0.0;
  for (const SpAlgorithm algo : {SpAlgorithm::kDense, SpAlgorithm::kSparse}) {
    EvalEngineConfig engine;
    engine.sp_algorithm = algo;
    Evaluator eval(ctx.distances, ctx.traffic, costs, engine);
    eval.cost(g);  // warm the workspace outside the timed region
    double last = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r) last = eval.cost(g);
    const double eps = static_cast<double>(reps) / seconds_since(t0);
    if (algo == SpAlgorithm::kDense) {
      s.dense_eps = eps;
      dense_cost = last;
    } else {
      s.sparse_eps = eps;
      sparse_cost = last;
    }
  }
  s.identical = dense_cost == sparse_cost;
  return s;
}

struct MultipathSample {
  std::size_t pops = 0;
  std::size_t edges = 0;
  double single_eps = 0.0;  // evals/sec, multipath off
  double ecmp_eps = 0.0;    // evals/sec, ECMP DAG splitting
  bool identical = false;   // zero-weight ECMP cost == single-path cost
};

/// Times single-path vs ECMP evaluation on an m ~ n instance with zero
/// objective weights. Random euclidean point sets make every shortest path
/// unique, so the engine's equivalence contract applies: the ECMP sweep must
/// reproduce the single-path costs bit for bit, and the ratio isolates the
/// DAG-extraction + split-scatter overhead.
MultipathSample measure_multipath(std::size_t n, std::size_t reps) {
  ContextConfig ctx_cfg;
  ctx_cfg.num_pops = n;
  Rng ctx_rng(2 + n);  // same instance the sparse-vs-dense section times
  const Context ctx = generate_context(ctx_cfg, ctx_rng);
  const Topology g = sparse_instance(ctx, 2 + n);

  MultipathSample s;
  s.pops = n;
  s.edges = g.num_edges();

  const CostParams costs{10.0, 1.0, 4e-4, 10.0};
  double single_cost = 0.0, ecmp_cost = 0.0;
  for (const MultipathMode mode : {MultipathMode::kOff, MultipathMode::kEcmp}) {
    EvalEngineConfig engine;
    engine.multipath.mode = mode;
    Evaluator eval(ctx.distances, ctx.traffic, costs, engine);
    eval.cost(g);  // warm the workspace outside the timed region
    double last = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r) last = eval.cost(g);
    const double eps = static_cast<double>(reps) / seconds_since(t0);
    if (mode == MultipathMode::kOff) {
      s.single_eps = eps;
      single_cost = last;
    } else {
      s.ecmp_eps = eps;
      ecmp_cost = last;
    }
  }
  s.identical = single_cost == ecmp_cost;
  return s;
}

struct KernelSample {
  std::size_t pops = 0;
  std::size_t edges = 0;
  double reference_tps = 0.0;  // trees/sec, scalar reference scan
  double blocked_tps = 0.0;    // trees/sec, blocked dense kernel
  bool identical = false;      // dist/hops/parent/order all bit-equal
};

/// Times full all-source sweeps of the blocked dense kernel against the
/// scalar reference scan on an n-PoP near-clique (the dense solver's home
/// regime: the per-round min reduction dominates). Trees are cross-checked
/// for bit-identity on an untimed pass first.
KernelSample measure_blocked_kernel(std::size_t n, std::size_t reps) {
  ContextConfig ctx_cfg;
  ctx_cfg.num_pops = n;
  Rng ctx_rng(5 + n);
  const Context ctx = generate_context(ctx_cfg, ctx_rng);
  Topology g = Topology::complete(n);
  Rng rng(5 + n, /*stream=*/9);
  for (std::size_t removed = 0; removed < n / 8;) {
    const NodeId u = rng.uniform_index(n);
    const NodeId v = rng.uniform_index(n);
    if (u != v && g.remove_edge(u, v)) ++removed;
  }

  KernelSample s;
  s.pops = n;
  s.edges = g.num_edges();

  ShortestPathTree blocked, reference;
  s.identical = true;
  for (NodeId src = 0; src < n; ++src) {
    shortest_path_tree(g, ctx.distances, src, blocked, SpAlgorithm::kDense);
    shortest_path_tree_reference(g, ctx.distances, src, reference);
    s.identical &= blocked.dist == reference.dist &&
                   blocked.hops == reference.hops &&
                   blocked.parent == reference.parent &&
                   blocked.order == reference.order;
  }

  const auto t_blocked = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (NodeId src = 0; src < n; ++src) {
      shortest_path_tree(g, ctx.distances, src, blocked, SpAlgorithm::kDense);
    }
  }
  s.blocked_tps =
      static_cast<double>(reps * n) / seconds_since(t_blocked);

  const auto t_reference = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (NodeId src = 0; src < n; ++src) {
      shortest_path_tree_reference(g, ctx.distances, src, reference);
    }
  }
  s.reference_tps =
      static_cast<double>(reps * n) / seconds_since(t_reference);
  return s;
}

struct AffinitySample {
  bool affinity = false;   // routing policy: affinity vs blind round-robin
  double hit_rate = 0.0;   // delta hits / (hits + fallbacks), all workers
  bool identical = false;  // costs match the full-sweep reference
  std::vector<DeltaStats> workers;  // per-worker split, worker order
};

/// Replays the hinted trace over `workers` delta-enabled Evaluator clones on
/// the calling thread — the sequential analogue of ParallelScorer's routed
/// scoring pass, so the hit-rate comparison is exact and machine-independent.
/// With `affinity` set, a hinted child goes to the worker whose store
/// retains the parent fingerprint (unhinted/unknown falls back to
/// round-robin, without consuming a round-robin slot — exactly the scorer's
/// build_queues policy); otherwise every item is dealt round-robin.
AffinitySample replay_affinity(const Context& ctx, const CostParams& costs,
                               const std::vector<Topology>& trace,
                               const std::vector<std::uint64_t>& hints,
                               const std::vector<double>& reference,
                               std::size_t workers, bool affinity) {
  EvalEngineConfig engine;
  engine.delta.mode = DsspMode::kOn;  // production cutoffs: only a genuinely
                                      // near parent matches, so routing is
                                      // what decides hit vs fallback
  engine.delta.retained_states = 64;  // per worker
  Evaluator primary(ctx.distances, ctx.traffic, costs, engine);
  std::vector<Evaluator> clones;
  clones.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) clones.push_back(primary.clone());

  AffinitySample s;
  s.affinity = affinity;
  s.identical = true;
  std::unordered_map<std::uint64_t, std::size_t> retained_on;
  std::size_t rr = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    std::size_t w = rr % workers;
    bool routed = false;
    if (affinity && hints[i] != 0) {
      const auto it = retained_on.find(hints[i]);
      if (it != retained_on.end()) {
        w = it->second;
        routed = true;  // does not consume a round-robin slot
      }
    }
    if (!routed) ++rr;
    EvalRequest req;
    req.parent_hint = hints[i];
    const double c = clones[w].evaluate(trace[i], req).total();
    s.identical &= c == reference[i];
    if (!std::isinf(c)) retained_on[trace[i].fingerprint()] = w;
  }

  std::uint64_t hits = 0, fallbacks = 0;
  for (Evaluator& c : clones) {
    s.workers.push_back(c.delta_stats());
    hits += c.delta_stats().hits;
    fallbacks += c.delta_stats().fallbacks;
  }
  s.hit_rate =
      static_cast<double>(hits) / static_cast<double>(hits + fallbacks);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  cold::bench::banner(
      "Memoized + sparse evaluation engine",
      ">= 3x evals/sec on a duplicate-heavy GA workload with the cache on; "
      "heap Dijkstra beats the dense scan on m ~ n graphs from n = 80");

  // --- Record a GA-shaped evaluation workload. -----------------------------
  const std::size_t n = 40;
  const std::size_t generations = cold::bench::trials(12, 60);
  ContextConfig ctx_cfg;
  ctx_cfg.num_pops = n;
  Rng ctx_rng(1);
  const Context ctx = generate_context(ctx_cfg, ctx_rng);

  std::vector<Topology> trace;
  std::vector<std::uint64_t> trace_hints;
  const CostParams costs{10.0, 1.0, 4e-4, 10.0};
  {
    Evaluator eval(ctx.distances, ctx.traffic, costs);
    RecordingObjective recorder(eval, trace, trace_hints);
    GaRunOptions options;
    options.config.population = 64;
    options.config.generations = generations;
    Rng rng(1);
    run_ga(recorder, rng, options);
  }
  std::printf("recorded %zu evaluations from a %zu-generation GA run\n",
              trace.size(), generations);

  // --- Cache off vs on over the recorded trace. ----------------------------
  const std::size_t passes = 5;
  std::vector<double> costs_off, costs_on;
  costs_off.reserve(passes * trace.size());
  costs_on.reserve(passes * trace.size());

  Evaluator eval_off(ctx.distances, ctx.traffic, costs);
  const double eps_off = replay(trace, passes, eval_off, costs_off);

  EvalEngineConfig cached_engine;
  cached_engine.cache.enabled = true;
  Evaluator eval_on(ctx.distances, ctx.traffic, costs, cached_engine);
  std::vector<double> first_pass;
  const double first_eps = replay(trace, 1, eval_on, first_pass);
  const double cold_hit_rate = eval_on.cache_stats().hit_rate();
  (void)first_eps;
  const double eps_on = replay(trace, passes, eval_on, costs_on);
  const double overall_hit_rate = eval_on.cache_stats().hit_rate();
  const double speedup = eps_on / eps_off;

  // Exactness: the cached replay must reproduce the uncached costs bit for
  // bit (the first cached pass is checked against one uncached pass).
  bool cache_identical = true;
  for (std::size_t i = 0; i < first_pass.size(); ++i) {
    cache_identical &= first_pass[i] == costs_off[i];
  }
  for (std::size_t i = 0; i < costs_on.size(); ++i) {
    cache_identical &= costs_on[i] == costs_off[i % costs_off.size()];
  }

  std::printf(
      "cache off %10.0f evals/s | on %10.0f evals/s | speedup %.2fx\n"
      "hit rate: %.1f%% cold pass, %.1f%% over %zu passes | identical=%s\n",
      eps_off, eps_on, speedup, 100.0 * cold_hit_rate,
      100.0 * overall_hit_rate, passes + 1, cache_identical ? "yes" : "NO");

  // --- Multi-worker replay: shared vs private caches. ----------------------
  // A duplicate lands on a different worker than its first evaluation did,
  // so private caches miss where the shared cache hits. Gate: the shared
  // hit rate strictly beats the private one at every worker count.
  const std::vector<double> reference(costs_off.begin(),
                                      costs_off.begin() + trace.size());
  std::vector<ReplaySample> replay_samples;
  for (const std::size_t workers : {2u, 4u}) {
    const ReplaySample s =
        replay_multi_worker(ctx, costs, trace, reference, workers);
    replay_samples.push_back(s);
    std::printf(
        "workers=%zu  hit rate: private %.1f%% | shared %.1f%% | "
        "identical=%s\n",
        s.workers, 100.0 * s.private_hit_rate, 100.0 * s.shared_hit_rate,
        s.identical ? "yes" : "NO");
  }

  // --- Sparse vs dense on m ~ n instances. ---------------------------------
  std::vector<SparseSample> sparse_samples;
  for (const std::size_t size : {80u, 120u}) {
    const std::size_t reps = cold::bench::trials(60, 300);
    const SparseSample s = measure_sparse_vs_dense(size, reps);
    sparse_samples.push_back(s);
    std::printf(
        "n=%3zu m=%3zu  dense %8.1f evals/s | sparse %8.1f evals/s | "
        "%.2fx  auto=%s identical=%s\n",
        s.pops, s.edges, s.dense_eps, s.sparse_eps,
        s.sparse_eps / s.dense_eps, s.auto_picks_sparse ? "sparse" : "dense",
        s.identical ? "yes" : "NO");
  }

  // --- Delta evaluation: hinted replay vs full sweeps, both uncached. ------
  // Recorded at n = 80 with its own GA run: the delta advantage grows with
  // problem size (a full sweep re-settles all n labels per source, a
  // near-parent repair touches a handful), so the gate measures the regime
  // synthesis cares about. Retention and the diff bound are generous (4x
  // the population; any parent accepted, cutoff off): measured on GA
  // traces, even distant-parent repairs beat the per-source sweeps a
  // tighter cutoff triggers.
  const std::size_t delta_n = 80;
  ContextConfig delta_ctx_cfg;
  delta_ctx_cfg.num_pops = delta_n;
  Rng delta_ctx_rng(3);
  const Context delta_ctx = generate_context(delta_ctx_cfg, delta_ctx_rng);
  std::vector<Topology> delta_trace;
  std::vector<std::uint64_t> delta_hints;
  {
    Evaluator eval(delta_ctx.distances, delta_ctx.traffic, costs);
    RecordingObjective recorder(eval, delta_trace, delta_hints);
    GaRunOptions options;
    options.config.population = 64;
    options.config.generations = generations;
    Rng rng(3);
    run_ga(recorder, rng, options);
  }

  std::vector<double> delta_ref;
  delta_ref.reserve(delta_trace.size());
  Evaluator eval_full(delta_ctx.distances, delta_ctx.traffic, costs);
  const auto t_full = std::chrono::steady_clock::now();
  for (const Topology& g : delta_trace) delta_ref.push_back(eval_full.cost(g));
  const double eps_full =
      static_cast<double>(delta_trace.size()) / seconds_since(t_full);

  EvalEngineConfig delta_engine;
  delta_engine.delta.mode = DsspMode::kOn;
  delta_engine.delta.max_diff_edges = delta_n * delta_n;  // accept any parent
  delta_engine.delta.max_resettle_ratio = 1.0;            // never abandon
  delta_engine.delta.retained_states = 256;
  Evaluator eval_delta(delta_ctx.distances, delta_ctx.traffic, costs,
                       delta_engine);
  bool delta_identical = true;
  const auto t_delta = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < delta_trace.size(); ++i) {
    EvalRequest req;
    req.parent_hint = delta_hints[i];
    delta_identical &=
        eval_delta.evaluate(delta_trace[i], req).total() == delta_ref[i];
  }
  const double eps_delta =
      static_cast<double>(delta_trace.size()) / seconds_since(t_delta);
  const double delta_speedup = eps_delta / eps_full;
  const DeltaStats& dstats = eval_delta.delta_stats();
  const double delta_hit_rate =
      static_cast<double>(dstats.hits) /
      static_cast<double>(dstats.hits + dstats.fallbacks);
  std::printf(
      "dsssp n=%zu off %8.0f evals/s | on %8.0f evals/s | speedup %.2fx\n"
      "delta served %.1f%% of evals (%llu resettled labels) | identical=%s\n",
      delta_n, eps_full, eps_delta, delta_speedup, 100.0 * delta_hit_rate,
      static_cast<unsigned long long>(dstats.vertices_resettled),
      delta_identical ? "yes" : "NO");

  // --- Blocked dense kernel vs the scalar reference scan. ------------------
  const KernelSample kernel =
      measure_blocked_kernel(96, cold::bench::trials(20, 100));
  const double kernel_speedup = kernel.blocked_tps / kernel.reference_tps;
  std::printf(
      "dense kernel n=%zu m=%zu  reference %8.0f trees/s | blocked %8.0f "
      "trees/s | %.2fx  identical=%s\n",
      kernel.pops, kernel.edges, kernel.reference_tps, kernel.blocked_tps,
      kernel_speedup, kernel.identical ? "yes" : "NO");

  // --- Affinity routing vs round-robin over delta-enabled workers. ---------
  // Same hinted n = 80 trace as the dsssp section. Round-robin lands a
  // child on the worker holding its parent's routing state only by luck
  // (~1/workers); affinity routes it there, so nearly every hinted child is
  // served by the delta engine.
  const std::size_t aff_workers = 4;
  const AffinitySample aff_rr = replay_affinity(
      delta_ctx, costs, delta_trace, delta_hints, delta_ref, aff_workers,
      /*affinity=*/false);
  const AffinitySample aff_on = replay_affinity(
      delta_ctx, costs, delta_trace, delta_hints, delta_ref, aff_workers,
      /*affinity=*/true);
  std::printf(
      "affinity workers=%zu  delta hit rate: round-robin %.1f%% | "
      "affinity %.1f%% | identical=%s\n",
      aff_workers, 100.0 * aff_rr.hit_rate, 100.0 * aff_on.hit_rate,
      aff_rr.identical && aff_on.identical ? "yes" : "NO");

  // --- Multipath (ECMP) vs single-path throughput. -------------------------
  const MultipathSample mp =
      measure_multipath(80, cold::bench::trials(60, 300));
  const double mp_ratio = mp.ecmp_eps / mp.single_eps;
  std::printf(
      "multipath n=%zu m=%zu  single %8.1f evals/s | ecmp %8.1f evals/s | "
      "%.2fx  identical=%s\n",
      mp.pops, mp.edges, mp.single_eps, mp.ecmp_eps, mp_ratio,
      mp.identical ? "yes" : "NO");

  // --- Gates. --------------------------------------------------------------
  cold::bench::GateSet gates;
  gates.require_at_least("cache_speedup", speedup, 3.0);
  gates.require("cache_identical_costs", cache_identical);
  for (const ReplaySample& s : replay_samples) {
    const std::string w = std::to_string(s.workers);
    gates.require("replay_w" + w + "_identical", s.identical);
    gates.require("replay_w" + w + "_shared_beats_private",
                  s.shared_hit_rate > s.private_hit_rate);
  }
  for (const SparseSample& s : sparse_samples) {
    const std::string p = std::to_string(s.pops);
    gates.require_at_least("sparse_n" + p + "_speedup",
                           s.sparse_eps / s.dense_eps, 1.0);
    gates.require("sparse_n" + p + "_auto_picks_sparse", s.auto_picks_sparse);
    gates.require("sparse_n" + p + "_identical", s.identical);
  }
  gates.require_at_least("dsssp_speedup", delta_speedup, 1.25);
  gates.require("dsssp_identical_costs", delta_identical);
  gates.require_at_least("dense_blocked_speedup", kernel_speedup, 2.0);
  gates.require("dense_blocked_identical", kernel.identical);
  gates.require("affinity_identical_costs",
                aff_rr.identical && aff_on.identical);
  gates.require("affinity_beats_round_robin",
                aff_on.hit_rate > aff_rr.hit_rate);
  gates.require_at_least("affinity_hit_rate", aff_on.hit_rate, 0.1);
  gates.require_at_least("affinity_hit_rate_gain",
                         aff_on.hit_rate / aff_rr.hit_rate, 1.2);
  gates.require_at_least("multipath_n80_ratio", mp_ratio, 0.35);
  gates.require("multipath_n80_identical", mp.identical);
  std::printf("\n");
  gates.print();

  // --- JSON artifact. ------------------------------------------------------
  const std::string path =
      (argc > 1 ? std::string(argv[1]) : std::string(".")) +
      "/BENCH_evaluator.json";
  if (FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"evaluator\",\n"
                 "  \"pops\": %zu,\n"
                 "  \"trace_evaluations\": %zu,\n"
                 "  \"replay_passes\": %zu,\n"
                 "  \"cache\": {\"evals_per_sec_off\": %.1f, "
                 "\"evals_per_sec_on\": %.1f, \"speedup\": %.3f, "
                 "\"cold_hit_rate\": %.4f, \"overall_hit_rate\": %.4f, "
                 "\"identical_costs\": %s},\n"
                 "  \"parallel_replay\": [\n",
                 n, trace.size(), passes, eps_off, eps_on, speedup,
                 cold_hit_rate, overall_hit_rate,
                 cache_identical ? "true" : "false");
    for (std::size_t i = 0; i < replay_samples.size(); ++i) {
      const ReplaySample& s = replay_samples[i];
      std::fprintf(f,
                   "    {\"workers\": %zu, \"private_hit_rate\": %.4f, "
                   "\"shared_hit_rate\": %.4f, \"identical_costs\": %s}%s\n",
                   s.workers, s.private_hit_rate, s.shared_hit_rate,
                   s.identical ? "true" : "false",
                   i + 1 < replay_samples.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"sparse_vs_dense\": [\n");
    for (std::size_t i = 0; i < sparse_samples.size(); ++i) {
      const SparseSample& s = sparse_samples[i];
      std::fprintf(f,
                   "    {\"pops\": %zu, \"edges\": %zu, "
                   "\"evals_per_sec_dense\": %.1f, "
                   "\"evals_per_sec_sparse\": %.1f, \"speedup\": %.3f, "
                   "\"auto_picks_sparse\": %s, \"identical_costs\": %s}%s\n",
                   s.pops, s.edges, s.dense_eps, s.sparse_eps,
                   s.sparse_eps / s.dense_eps,
                   s.auto_picks_sparse ? "true" : "false",
                   s.identical ? "true" : "false",
                   i + 1 < sparse_samples.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"dsssp\": {\"pops\": %zu, \"evals_per_sec_off\": %.1f, "
                 "\"evals_per_sec_on\": %.1f, \"speedup\": %.3f, "
                 "\"delta_hit_rate\": %.4f, \"vertices_resettled\": %llu, "
                 "\"identical_costs\": %s},\n",
                 delta_n, eps_full, eps_delta, delta_speedup, delta_hit_rate,
                 static_cast<unsigned long long>(dstats.vertices_resettled),
                 delta_identical ? "true" : "false");
    std::fprintf(f,
                 "  \"dense_kernel\": {\"pops\": %zu, \"edges\": %zu, "
                 "\"trees_per_sec_reference\": %.1f, "
                 "\"trees_per_sec_blocked\": %.1f, \"speedup\": %.3f, "
                 "\"identical_trees\": %s},\n",
                 kernel.pops, kernel.edges, kernel.reference_tps,
                 kernel.blocked_tps, kernel_speedup,
                 kernel.identical ? "true" : "false");
    std::fprintf(f,
                 "  \"affinity_replay\": {\"workers\": %zu, "
                 "\"round_robin_hit_rate\": %.4f, "
                 "\"affinity_hit_rate\": %.4f, \"identical_costs\": %s,\n",
                 aff_workers, aff_rr.hit_rate, aff_on.hit_rate,
                 aff_rr.identical && aff_on.identical ? "true" : "false");
    for (const AffinitySample* s : {&aff_rr, &aff_on}) {
      std::fprintf(f, "    \"%s_workers\": [",
                   s->affinity ? "affinity" : "round_robin");
      for (std::size_t w = 0; w < s->workers.size(); ++w) {
        std::fprintf(f, "{\"hits\": %llu, \"fallbacks\": %llu}%s",
                     static_cast<unsigned long long>(s->workers[w].hits),
                     static_cast<unsigned long long>(s->workers[w].fallbacks),
                     w + 1 < s->workers.size() ? ", " : "");
      }
      std::fprintf(f, "]%s\n", s->affinity ? "},"  : ",");
    }
    std::fprintf(f,
                 "  \"multipath\": {\"pops\": %zu, \"edges\": %zu, "
                 "\"evals_per_sec_single\": %.1f, "
                 "\"evals_per_sec_ecmp\": %.1f, \"ratio\": %.3f, "
                 "\"identical_costs\": %s},\n",
                 mp.pops, mp.edges, mp.single_eps, mp.ecmp_eps, mp_ratio,
                 mp.identical ? "true" : "false");
    std::fprintf(f, "  \"gates\": %s\n}\n", gates.json().c_str());
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::printf("\ncould not write %s\n", path.c_str());
    return 1;
  }

  return gates.all_pass() ? 0 : 1;
}
