// Figure 9: number of core (hub) PoPs versus k3 for k2 in
// {2.5e-5, 1e-4, 4e-4, 1.6e-3}, n = 30. For small k3 the hub count stays
// large (~10-25); as k3 grows it collapses toward 1 (hub-and-spoke).
#include <iostream>

#include "bench_common.h"
#include "core/ensemble.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace cold;

int main() {
  bench::banner("Figure 9 (number of hub PoPs vs k3, by k2)",
                "hub count is large for small k3 and collapses toward 1 as "
                "k3 dominates");

  const std::size_t n = 30;
  const std::vector<double> k2_values{2.5e-5, 1e-4, 4e-4, 1.6e-3};
  const auto k3_grid = log_space(0.1, 1000.0, 8);
  const std::size_t sims = bench::trials(8, 200);

  Table table({"k2", "k3", "hubs", "ci_lo", "ci_hi"});
  for (double k2 : k2_values) {
    for (double k3 : k3_grid) {
      const Synthesizer synth(
          bench::sweep_config(n, CostParams{10.0, 1.0, k2, k3}));
      std::vector<double> values;
      for (const TopologyMetrics& m : sweep_metrics(synth, sims)) {
        values.push_back(static_cast<double>(m.hubs));
      }
      const ConfidenceInterval ci = bootstrap_mean_ci(values);
      table.add_row({k2, k3, ci.mean, ci.lo, ci.hi});
      std::cerr << "  k2=" << k2 << " k3=" << k3 << " done\n";
    }
  }
  table.print_both(std::cout, "fig9_hubs");
  return 0;
}
