// Memory-ceiling gates for the sparse-first engine.
//
// Two guarantees, both measured through getrusage peak RSS (ru_maxrss is
// the process-lifetime high-water mark, so measurements run small-to-large
// and each gate compares against the peak recorded *before* its workload):
//
//   1. Streamed ensembles are memory-flat in the run count: a 10x larger
//      streamed ensemble (10,000 runs vs 1,000) may not move peak RSS by
//      more than a small tolerance. Retaining runs instead would grow the
//      footprint linearly (~10x the per-run state), so this gate fails
//      loudly if streaming ever silently re-retains.
//   2. City-scale synthesis fits in a bounded footprint: one n = 2000
//      synthesis (far above the dense-view auto threshold, so no n^2 byte
//      matrix ever exists) must complete connected inside an absolute RSS
//      ceiling.
//
// Results — including the "gates" array for the CI baseline diff — go to
// BENCH_memory.json (first argv, default ./).
#include <sys/resource.h>

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/ensemble.h"
#include "core/synthesizer.h"
#include "graph/algorithms.h"

namespace {

using namespace cold;

/// Process-lifetime peak RSS in MiB (ru_maxrss is KiB on Linux).
double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

SynthesisConfig ensemble_config() {
  SynthesisConfig cfg;
  cfg.context.num_pops = 24;
  cfg.costs = CostParams{10.0, 1.0, 4e-4, 10.0};
  cfg.ga.population = 12;
  cfg.ga.generations = 6;
  cfg.seed_with_heuristics = false;
  cfg.parallel.num_threads = cold::bench::bench_threads();
  return cfg;
}

EnsembleResult run_streamed(const Synthesizer& synth, std::size_t count) {
  EnsembleOptions opts;
  opts.count = count;
  opts.base_seed = 1;
  opts.retain = RetainMode::kStreamed;
  return generate_ensemble(synth, opts);
}

}  // namespace

int main(int argc, char** argv) {
  cold::bench::banner(
      "Sparse-first memory ceilings",
      "streamed 10k-run ensemble peak RSS flat vs 1k; one n = 2000 "
      "synthesis completes sparse inside an absolute RSS ceiling");

  cold::bench::GateSet gates;

  // --- Streamed ensemble: 10x the runs, flat peak RSS. ---------------------
  const std::size_t count_small = 1000;
  const std::size_t count_large = 10000;
  const Synthesizer synth(ensemble_config());

  const EnsembleResult small = run_streamed(synth, count_small);
  const double rss_small = peak_rss_mib();
  std::printf("streamed ensemble %zu runs: peak RSS %.1f MiB\n", count_small,
              rss_small);

  const EnsembleResult large = run_streamed(synth, count_large);
  const double rss_large = peak_rss_mib();
  std::printf("streamed ensemble %zu runs: peak RSS %.1f MiB\n", count_large,
              rss_large);

  const double ratio = rss_large / rss_small;
  const double growth_mib = rss_large - rss_small;
  std::printf("peak RSS ratio (10x runs): %.3f (growth %.1f MiB)\n", ratio,
              growth_mib);
  gates.require("streamed_counts_complete",
                small.num_runs() == count_small &&
                    large.num_runs() == count_large);
  gates.require("streamed_retains_nothing", !small.acc.retains_runs() &&
                                                !large.acc.retains_runs());
  // Absolute slack, not a ratio: the legitimate O(count) state (the
  // distinctness hash set, 8 bytes a run) plus allocator noise is well
  // under 16 MiB, while *retaining* the 9000 extra runs would add
  // hundreds — a ratio gate at this tiny baseline would flap on noise.
  gates.require("streamed_rss_flat_within_16mib", growth_mib <= 16.0);

  // --- n = 2000 synthesis inside an absolute ceiling. ----------------------
  const double rss_before_city = peak_rss_mib();
  SynthesisConfig city;
  city.context.num_pops = 2000;
  city.costs = CostParams{10.0, 1.0, 4e-4, 10.0};
  city.ga.population = 6;
  city.ga.generations = 2;
  city.ga.include_clique_seed = false;  // the full mesh is 2M edges
  city.seed_with_heuristics = false;
  const SynthesisResult r = Synthesizer(city).synthesize(1);
  const double rss_city = peak_rss_mib();
  std::printf("n = 2000 synthesis: peak RSS %.1f MiB (was %.1f before)\n",
              rss_city, rss_before_city);

  gates.require("city_synthesis_sparse_backend",
                !r.network.topology.has_dense_view());
  gates.require("city_synthesis_connected",
                is_connected(r.network.topology));
  // The context's n^2 double matrices (distances, traffic ~ 32 MiB each)
  // dominate the legitimate footprint; 1 GiB leaves room for workspaces
  // and copies while catching any resurrected n^2-per-candidate storage
  // (even one byte-matrix per GA individual would blow past it at scale).
  gates.require_at_least("city_synthesis_rss_headroom", 1024.0 / rss_city,
                         1.0);

  std::printf("\n");
  gates.print();

  // --- JSON artifact. ------------------------------------------------------
  const std::string path = (argc > 1 ? std::string(argv[1]) : std::string(".")) +
                           "/BENCH_memory.json";
  if (FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"memory\",\n"
                 "  \"streamed_runs_small\": %zu,\n"
                 "  \"streamed_runs_large\": %zu,\n"
                 "  \"peak_rss_mib_small\": %.1f,\n"
                 "  \"peak_rss_mib_large\": %.1f,\n"
                 "  \"peak_rss_ratio\": %.4f,\n"
                 "  \"peak_rss_growth_mib\": %.1f,\n"
                 "  \"city_pops\": 2000,\n"
                 "  \"city_peak_rss_mib\": %.1f,\n"
                 "  \"gates\": %s\n"
                 "}\n",
                 count_small, count_large, rss_small, rss_large, ratio,
                 growth_mib, rss_city, gates.json().c_str());
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 2;
  }
  return gates.all_pass() ? 0 : 1;
}
