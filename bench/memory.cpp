// Memory-ceiling gates for the sparse-first engine.
//
// Two guarantees, both measured through getrusage peak RSS (ru_maxrss is
// the process-lifetime high-water mark, so measurements run small-to-large
// and each gate compares against the peak recorded *before* its workload):
//
//   1. Streamed ensembles are memory-flat in the run count: a 10x larger
//      streamed ensemble (10,000 runs vs 1,000) may not move peak RSS by
//      more than a small tolerance. Retaining runs instead would grow the
//      footprint linearly (~10x the per-run state), so this gate fails
//      loudly if streaming ever silently re-retains.
//   2. City-scale synthesis fits in a bounded footprint: one n = 2000
//      synthesis (far above the dense-view auto threshold, so no n^2 byte
//      matrix ever exists) must complete connected inside an absolute RSS
//      ceiling.
//   3. Matrix-free distances are not a throughput cliff: evaluating the
//      same m ~ n topology at n = 200 with the distance matrix forced
//      dense vs forced on-demand (recompute + LRU row tiles) must keep
//      >= 0.9x of the dense evals/sec, with bit-identical costs. Guards
//      the DistanceProvider recompute path against regressions.
//   4. Metro-scale synthesis: one n = 10000 synthesis (matrix-free
//      distances, CSR traffic, byte-bounded routing workspaces — the only
//      remaining O(n^2) object is the ~1.1 GiB traffic CSR itself) must
//      complete sparse and connected under an absolute 2 GiB RSS ceiling.
//
// Results — including the "gates" array for the CI baseline diff — go to
// BENCH_memory.json (first argv, default ./).
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/context.h"
#include "core/ensemble.h"
#include "core/synthesizer.h"
#include "cost/evaluator.h"
#include "geom/distance.h"
#include "graph/algorithms.h"

namespace {

using namespace cold;

/// Process-lifetime peak RSS in MiB (ru_maxrss is KiB on Linux).
double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

SynthesisConfig ensemble_config() {
  SynthesisConfig cfg;
  cfg.context.num_pops = 24;
  cfg.costs = CostParams{10.0, 1.0, 4e-4, 10.0};
  cfg.ga.population = 12;
  cfg.ga.generations = 6;
  cfg.seed_with_heuristics = false;
  cfg.parallel.num_threads = cold::bench::bench_threads();
  return cfg;
}

EnsembleResult run_streamed(const Synthesizer& synth, std::size_t count) {
  EnsembleOptions opts;
  opts.count = count;
  opts.base_seed = 1;
  opts.retain = RetainMode::kStreamed;
  return generate_ensemble(synth, opts);
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// An m ~ n topology of the kind synthesis produces: the MST of the
/// context's PoPs plus ~n/8 random chords (same shape bench/evaluator.cpp
/// measures).
Topology sparse_instance(const Context& ctx, std::uint64_t seed) {
  Topology g = minimum_spanning_tree(ctx.distances);
  const std::size_t n = g.num_nodes();
  Rng rng(seed, /*stream=*/7);
  for (std::size_t added = 0; added < n / 8;) {
    const NodeId u = rng.uniform_index(n);
    const NodeId v = rng.uniform_index(n);
    if (u != v && g.add_edge(u, v)) ++added;
  }
  return g;
}

struct ThroughputSample {
  std::size_t pops = 0;
  double dense_eps = 0.0;        // evals/sec, distance matrix materialized
  double matrix_free_eps = 0.0;  // evals/sec, on-demand recompute + LRU tiles
  bool identical = false;        // costs bit-equal across the two providers
};

/// Evaluates the same topology `reps` times with the distance provider
/// forced dense vs forced matrix-free. Both contexts are drawn from the
/// same seed, so coordinates, populations, and traffic are identical; only
/// the distance representation differs — and the engine's contract is that
/// the costs are bit-identical either way.
ThroughputSample measure_matrix_free_throughput(std::size_t n,
                                                std::size_t reps) {
  ThroughputSample s;
  s.pops = n;
  const CostParams costs{10.0, 1.0, 4e-4, 10.0};
  const std::size_t saved = DistanceProvider::dense_auto_threshold();
  double dense_cost = 0.0, free_cost = 0.0;
  for (const bool dense : {true, false}) {
    DistanceProvider::set_dense_auto_threshold(dense ? 4096 : 0);
    ContextConfig ctx_cfg;
    ctx_cfg.num_pops = n;
    Rng ctx_rng(11 + n);
    const Context ctx = generate_context(ctx_cfg, ctx_rng);
    const Topology g = sparse_instance(ctx, 11 + n);
    Evaluator eval(ctx.distances, ctx.traffic, costs);
    eval.cost(g);  // warm the workspace outside the timed region
    double last = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r) last = eval.cost(g);
    const double eps = static_cast<double>(reps) / seconds_since(t0);
    (dense ? s.dense_eps : s.matrix_free_eps) = eps;
    (dense ? dense_cost : free_cost) = last;
  }
  DistanceProvider::set_dense_auto_threshold(saved);
  s.identical = dense_cost == free_cost;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  cold::bench::banner(
      "Sparse-first memory ceilings",
      "streamed 10k-run ensemble peak RSS flat vs 1k; n = 2000 and "
      "n = 10000 syntheses complete sparse inside absolute RSS ceilings; "
      "matrix-free distances keep >= 0.9x dense evals/sec at n = 200");

  cold::bench::GateSet gates;

  // --- Streamed ensemble: 10x the runs, flat peak RSS. ---------------------
  const std::size_t count_small = 1000;
  const std::size_t count_large = 10000;
  const Synthesizer synth(ensemble_config());

  const EnsembleResult small = run_streamed(synth, count_small);
  const double rss_small = peak_rss_mib();
  std::printf("streamed ensemble %zu runs: peak RSS %.1f MiB\n", count_small,
              rss_small);

  const EnsembleResult large = run_streamed(synth, count_large);
  const double rss_large = peak_rss_mib();
  std::printf("streamed ensemble %zu runs: peak RSS %.1f MiB\n", count_large,
              rss_large);

  const double ratio = rss_large / rss_small;
  const double growth_mib = rss_large - rss_small;
  std::printf("peak RSS ratio (10x runs): %.3f (growth %.1f MiB)\n", ratio,
              growth_mib);
  gates.require("streamed_counts_complete",
                small.num_runs() == count_small &&
                    large.num_runs() == count_large);
  gates.require("streamed_retains_nothing", !small.acc.retains_runs() &&
                                                !large.acc.retains_runs());
  // Absolute slack, not a ratio: the legitimate O(count) state (the
  // distinctness hash set, 8 bytes a run) plus allocator noise is well
  // under 16 MiB, while *retaining* the 9000 extra runs would add
  // hundreds — a ratio gate at this tiny baseline would flap on noise.
  gates.require("streamed_rss_flat_within_16mib", growth_mib <= 16.0);

  // --- n = 2000 synthesis inside an absolute ceiling. ----------------------
  const double rss_before_city = peak_rss_mib();
  SynthesisConfig city;
  city.context.num_pops = 2000;
  city.costs = CostParams{10.0, 1.0, 4e-4, 10.0};
  city.ga.population = 6;
  city.ga.generations = 2;
  city.ga.include_clique_seed = false;  // the full mesh is 2M edges
  city.seed_with_heuristics = false;
  const SynthesisResult r = Synthesizer(city).synthesize(1);
  const double rss_city = peak_rss_mib();
  std::printf("n = 2000 synthesis: peak RSS %.1f MiB (was %.1f before)\n",
              rss_city, rss_before_city);

  gates.require("city_synthesis_sparse_backend",
                !r.network.topology.has_dense_view());
  gates.require("city_synthesis_connected",
                is_connected(r.network.topology));
  // The context's n^2 double matrices (distances, traffic ~ 32 MiB each)
  // dominate the legitimate footprint; 1 GiB leaves room for workspaces
  // and copies while catching any resurrected n^2-per-candidate storage
  // (even one byte-matrix per GA individual would blow past it at scale).
  gates.require_at_least("city_synthesis_rss_headroom", 1024.0 / rss_city,
                         1.0);

  // --- Matrix-free distance throughput at n = 200. -------------------------
  const ThroughputSample tp =
      measure_matrix_free_throughput(200, cold::bench::trials(40, 200));
  const double tp_ratio = tp.matrix_free_eps / tp.dense_eps;
  std::printf(
      "n=%zu  dense %8.1f evals/s | matrix-free %8.1f evals/s | "
      "%.2fx  identical=%s\n",
      tp.pops, tp.dense_eps, tp.matrix_free_eps, tp_ratio,
      tp.identical ? "yes" : "NO");
  gates.require_at_least("matrix_free_n200_throughput_ratio", tp_ratio, 0.9);
  gates.require("matrix_free_n200_identical", tp.identical);

  // --- n = 10000 synthesis inside the 2 GiB ceiling. -----------------------
  // The full evaluation context is matrix-free: distances recompute from
  // coordinates (no 800 MiB matrix), loads are EdgeLoads, per-worker
  // routing scratch is byte-capped. The one legitimately quadratic object
  // left is the exact gravity CSR itself (~n^2 nonzeros, ~1.1 GiB at this
  // n), which is shared immutably across all workers — so the ceiling
  // catches any resurrected per-candidate or per-worker n^2 state.
  const double rss_before_metro = peak_rss_mib();
  SynthesisConfig metro;
  metro.context.num_pops = 10000;
  metro.costs = CostParams{10.0, 1.0, 4e-4, 10.0};
  metro.ga.population = 4;
  metro.ga.generations = 1;
  metro.ga.include_clique_seed = false;  // the full mesh is 50M edges
  metro.seed_with_heuristics = false;
  metro.parallel.num_threads = cold::bench::bench_threads();
  const auto t_metro = std::chrono::steady_clock::now();
  const SynthesisResult m = Synthesizer(metro).synthesize(1);
  const double metro_secs = seconds_since(t_metro);
  const double rss_metro = peak_rss_mib();
  std::printf(
      "n = 10000 synthesis: peak RSS %.1f MiB (was %.1f before), %.1f s\n",
      rss_metro, rss_before_metro, metro_secs);

  gates.require("metro_synthesis_sparse_backend",
                !m.network.topology.has_dense_view());
  gates.require("metro_synthesis_connected",
                is_connected(m.network.topology));
  gates.require_at_least("metro_synthesis_rss_headroom", 2048.0 / rss_metro,
                         1.0);

  std::printf("\n");
  gates.print();

  // --- JSON artifact. ------------------------------------------------------
  const std::string path = (argc > 1 ? std::string(argv[1]) : std::string(".")) +
                           "/BENCH_memory.json";
  if (FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"memory\",\n"
                 "  \"streamed_runs_small\": %zu,\n"
                 "  \"streamed_runs_large\": %zu,\n"
                 "  \"peak_rss_mib_small\": %.1f,\n"
                 "  \"peak_rss_mib_large\": %.1f,\n"
                 "  \"peak_rss_ratio\": %.4f,\n"
                 "  \"peak_rss_growth_mib\": %.1f,\n"
                 "  \"city_pops\": 2000,\n"
                 "  \"city_peak_rss_mib\": %.1f,\n"
                 "  \"matrix_free_throughput\": {\"pops\": %zu, "
                 "\"evals_per_sec_dense\": %.1f, "
                 "\"evals_per_sec_matrix_free\": %.1f, \"ratio\": %.3f, "
                 "\"identical_costs\": %s},\n"
                 "  \"metro_pops\": 10000,\n"
                 "  \"metro_peak_rss_mib\": %.1f,\n"
                 "  \"metro_seconds\": %.1f,\n"
                 "  \"gates\": %s\n"
                 "}\n",
                 count_small, count_large, rss_small, rss_large, ratio,
                 growth_mib, rss_city, tp.pops, tp.dense_eps,
                 tp.matrix_free_eps, tp_ratio,
                 tp.identical ? "true" : "false", rss_metro, metro_secs,
                 gates.json().c_str());
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 2;
  }
  return gates.all_pass() ? 0 : 1;
}
