// Figure 4: GA runtime versus number of PoPs, T = M = 100 (paper settings).
// The paper reports O(n^3 M T) scaling — cubic in n, dominated by the
// all-pairs shortest-path work inside cost evaluation — and fits
// runtime ~ 2.3e-5 * n^3 seconds on 2014 hardware.
//
// Uses google-benchmark for the timing machinery, then prints the fitted
// cubic coefficient in the same form as the paper.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/context.h"
#include "ga/genetic.h"

namespace {

using namespace cold;

void run_one_ga(std::size_t n, std::uint64_t seed) {
  ContextConfig ctx_cfg;
  ctx_cfg.num_pops = n;
  Rng ctx_rng(seed);
  const Context ctx = generate_context(ctx_cfg, ctx_rng);
  Evaluator eval(ctx.distances, ctx.traffic, CostParams{10.0, 1.0, 4e-4, 10.0});
  GaConfig cfg = cold::bench::default_ga();
  Rng rng(seed);
  benchmark::DoNotOptimize(run_ga(eval, cfg, rng).best_cost);
}

void BM_GaRuntime(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    run_one_ga(n, seed++);
  }
  state.counters["pops"] = static_cast<double>(n);
  // Normalized cubic coefficient: seconds / n^3 (paper: ~2.3e-5 with
  // T = M = 100 on 2014 hardware).
  state.counters["sec_per_n3"] = benchmark::Counter(
      static_cast<double>(n) * n * n, benchmark::Counter::kIsIterationInvariantRate |
                                          benchmark::Counter::kInvert);
}

BENCHMARK(BM_GaRuntime)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Arg(80)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.02);

}  // namespace

int main(int argc, char** argv) {
  cold::bench::banner("Figure 4 (GA runtime vs n)",
                      "runtime grows ~cubically in n (APSP per evaluation); "
                      "paper fit 2.3e-5 * n^3 s at T=M=100");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::puts(
      "\nInterpretation: time(n)/n^3 (the sec_per_n3 counter) should be "
      "roughly constant across n, confirming the cubic scaling of Fig 4.");
  return 0;
}
