// Table 1: the six synthesis methods scored against the paper's six
// criteria. Qualitative rows reproduce the paper's assessment; wherever a
// criterion is mechanically checkable we *measure* it here:
//
//   statistical variation  -> min pairwise edge distance over an ensemble
//   meets constraints      -> fraction of generated instances connected
//                             (plus: does the method emit capacities at all)
//   generates network      -> capacities/routing present in the output type
//   simple model           -> number of free parameters (dK measured via the
//                             Fig 1 machinery on a reference graph)
//
// HOT [1] is scored qualitatively only (its router-level generator is out of
// scope for a PoP-level reproduction; the paper's own row is reproduced).
#include <functional>
#include <iostream>

#include "baselines/erdos_renyi.h"
#include "baselines/plrg.h"
#include "baselines/waxman.h"
#include "bench_common.h"
#include "core/ensemble.h"
#include "dk/dk_rewire.h"
#include "dk/dk_series.h"
#include "geom/point_process.h"
#include "graph/algorithms.h"
#include "util/csv.h"

using namespace cold;

namespace {

struct GeneratorProbe {
  std::string name;
  std::function<Topology(Rng&)> generate;
  bool emits_capacities;
  std::string parameter_count;  // displayed
};

}  // namespace

int main() {
  bench::banner("Table 1 (criteria vs methods)",
                "only COLD meets all six criteria; random models miss "
                "constraints/capacities, dK-series is not simple");

  const std::size_t n = 30;
  const std::size_t samples = bench::trials(10, 40);

  // Reference COLD network for the dK rewiring generator and parameter
  // counting.
  const Synthesizer synth(
      bench::sweep_config(n, CostParams{10.0, 1.0, 4e-4, 10.0}));
  const Topology reference = synth.synthesize(1).network.topology;
  const std::size_t dk2_params = dk_parameter_count(reference, 2);

  Rng loc_rng(3);
  const auto locations = UniformProcess().sample(n, Rectangle(), loc_rng);
  const double target_p =
      2.0 * static_cast<double>(reference.num_edges()) /
      static_cast<double>(n * (n - 1));

  std::vector<GeneratorProbe> probes;
  probes.push_back({"ER",
                    [&](Rng& rng) { return erdos_renyi_gnp(n, target_p, rng); },
                    false, "1 (p)"});
  probes.push_back({"Waxman",
                    [&](Rng& rng) {
                      return waxman(locations, WaxmanParams{0.4, 0.4}, rng);
                    },
                    false, "2 (alpha, beta)"});
  probes.push_back({"PLRG",
                    [&](Rng& rng) { return plrg(n, PlrgParams{2.3, 1, 0}, rng); },
                    false, "1-3 (exponent, bounds)"});
  probes.push_back({"dK(2K)",
                    [&](Rng& rng) { return sample_2k_random(reference, rng); },
                    false,
                    std::to_string(dk2_params) + " (measured 2K classes)"});
  probes.push_back({"COLD",
                    [&](Rng& rng) {
                      return synth.synthesize(rng.next_u64()).network.topology;
                    },
                    true, "4 (k0..k3; 3 free)"});

  Table measured({"method", "min_pairwise_edge_diff", "connected_frac",
                  "emits_capacities", "free_parameters"});
  for (const GeneratorProbe& probe : probes) {
    Rng rng(11);
    std::vector<Topology> instances;
    std::size_t connected = 0;
    for (std::size_t s = 0; s < samples; ++s) {
      instances.push_back(probe.generate(rng));
      if (is_connected(instances.back())) ++connected;
    }
    std::size_t min_diff = n * n;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      for (std::size_t j = i + 1; j < instances.size(); ++j) {
        min_diff = std::min(
            min_diff, Topology::edge_difference(instances[i], instances[j]));
      }
    }
    measured.add_row({probe.name, static_cast<long long>(min_diff),
                      static_cast<double>(connected) /
                          static_cast<double>(samples),
                      std::string(probe.emits_capacities ? "yes" : "no"),
                      probe.parameter_count});
    std::cerr << "  " << probe.name << " done\n";
  }
  measured.print_both(std::cout, "table1_measured");

  // The paper's qualitative scoring, reproduced for reference
  // (X = satisfied, P = partial, - = not satisfied).
  Table paper({"criterion", "ER", "Waxman", "PLRG", "HOT", "dK", "COLD"});
  paper.add_row({std::string("1. statistical variation"), std::string("X"),
                 std::string("X"), std::string("X"), std::string("X"),
                 std::string("-"), std::string("X")});
  paper.add_row({std::string("2. meets constraints"), std::string("-"),
                 std::string("-"), std::string("-"), std::string("X"),
                 std::string("P"), std::string("X")});
  paper.add_row({std::string("3. meaningful parameters"), std::string("-"),
                 std::string("-"), std::string("-"), std::string("P"),
                 std::string("-"), std::string("X")});
  paper.add_row({std::string("4. tunable"), std::string("P"), std::string("P"),
                 std::string("P"), std::string("P"), std::string("-"),
                 std::string("X")});
  paper.add_row({std::string("5. generates network"), std::string("-"),
                 std::string("-"), std::string("-"), std::string("X"),
                 std::string("-"), std::string("X")});
  paper.add_row({std::string("6. simple model"), std::string("X"),
                 std::string("X"), std::string("X"), std::string("X"),
                 std::string("-"), std::string("X")});
  paper.print_both(std::cout, "table1_paper_scoring");
  return 0;
}
