// Figure 1: the number of distinct dK-series parameters (degree-labeled
// connected subgraph classes) versus network size, for d = 2, 3, 4. The
// paper's message: the count grows rapidly with both n and d — by d = 3 it
// can exceed the number of nodes or even edges, so the dK-series is a longer
// description than the graph itself.
//
// Graph family: COLD-synthesized networks (mid-range costs), averaged over a
// few seeds per size.
#include <iostream>

#include "bench_common.h"
#include "core/synthesizer.h"
#include "dk/dk_series.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace cold;

int main() {
  bench::banner("Figure 1 (dK parameter count vs n, d = 2, 3, 4)",
                "parameter count explodes with n and d; by d=3 it rivals "
                "the edge count itself");

  const std::vector<std::size_t> sizes{10, 20, 30, 40, 50};
  const std::size_t reps = bench::trials(3, 10);

  Table table(
      {"n", "edges", "d2_params", "d3_params", "d4_params", "d3_over_edges"});
  for (std::size_t n : sizes) {
    SynthesisConfig cfg =
        bench::sweep_config(n, CostParams{10.0, 1.0, 4e-4, 0.0});
    const Synthesizer synth(cfg);
    double edges = 0.0, p2 = 0.0, p3 = 0.0, p4 = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
      const Topology g = synth.synthesize(100 + r).network.topology;
      edges += static_cast<double>(g.num_edges());
      p2 += static_cast<double>(dk_parameter_count(g, 2));
      p3 += static_cast<double>(dk_parameter_count(g, 3));
      p4 += static_cast<double>(dk_parameter_count(g, 4));
    }
    const auto d = static_cast<double>(reps);
    table.add_row({static_cast<long long>(n), edges / d, p2 / d, p3 / d,
                   p4 / d, (p3 / d) / (edges / d)});
    std::cerr << "  n=" << n << " done\n";
  }
  table.print_both(std::cout, "fig1_dk_params");
  return 0;
}
