#!/usr/bin/env python3
"""Compare a bench JSON artifact against the checked-in gate expectations.

Usage:
    check_regression.py BENCH_evaluator.json [--expectations FILE] [--out FILE]

Reads the "gates" array a bench binary embeds in its BENCH_*.json artifact
(see bench/bench_common.h, GateSet) and checks it against
bench/baselines/expectations.json:

  * every expected gate must be present in the artifact,
  * every expected gate must pass,
  * the threshold the binary enforced ("min") must not have drifted below
    the checked-in floor — a silently loosened gate is itself a regression,
  * any gate the binary reports as failing counts, even if it is new and
    not yet listed in the expectations.

Exit 0 when everything holds, 1 on any regression (2 on bad input). The
full comparison is written as JSON (--out, default
bench-regression-report.json next to the artifact) so CI can upload it as
an artifact even on failure. Pure stdlib; no third-party imports.
"""

import argparse
import json
import os
import sys


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def check(artifact, expectations):
    """Returns (regressions, checks): lists of per-gate result dicts."""
    bench = artifact.get("bench")
    expected = expectations.get("benches", {}).get(bench)
    if expected is None:
        return (
            [{"gate": "<bench>", "problem": f"no expectations for bench {bench!r}"}],
            [],
        )

    reported = {g["name"]: g for g in artifact.get("gates", [])}
    regressions = []
    checks = []

    for exp in expected["gates"]:
        name = exp["name"]
        got = reported.get(name)
        entry = {"gate": name, "expected_min": exp["min"]}
        if got is None:
            entry["problem"] = "gate missing from artifact"
            regressions.append(entry)
            continue
        entry.update({"value": got["value"], "min": got["min"], "pass": got["pass"]})
        if got["min"] < exp["min"]:
            entry["problem"] = (
                f"threshold loosened: binary enforces min {got['min']}, "
                f"expectations require {exp['min']}"
            )
            regressions.append(entry)
        elif not got["pass"]:
            entry["problem"] = f"gate failed: {got['value']} < {got['min']}"
            regressions.append(entry)
        else:
            checks.append(entry)

    known = {exp["name"] for exp in expected["gates"]}
    for name, got in reported.items():
        if name in known:
            continue
        entry = {"gate": name, "value": got["value"], "min": got["min"],
                 "pass": got["pass"], "new": True}
        if got["pass"]:
            checks.append(entry)  # new passing gate: fine, list it for adoption
        else:
            entry["problem"] = "new gate failing (add to expectations once green)"
            regressions.append(entry)

    return regressions, checks


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact", help="BENCH_*.json produced by a bench binary")
    parser.add_argument(
        "--expectations",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "expectations.json"),
        help="gate floors file (default: expectations.json beside this script)")
    parser.add_argument(
        "--out", default=None,
        help="comparison report path (default: bench-regression-report.json "
             "beside the artifact)")
    args = parser.parse_args()

    artifact = load_json(args.artifact)
    expectations = load_json(args.expectations)
    regressions, checks = check(artifact, expectations)

    report = {
        "schema": "cold-bench-regression-report",
        "version": 1,
        "bench": artifact.get("bench"),
        "artifact": os.path.basename(args.artifact),
        "ok": not regressions,
        "regressions": regressions,
        "passed": checks,
    }
    out = args.out or os.path.join(
        os.path.dirname(os.path.abspath(args.artifact)),
        "bench-regression-report.json")
    with open(out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    for entry in regressions:
        print(f"REGRESSION {entry['gate']}: {entry['problem']}")
    print(f"{len(checks)} gate(s) ok, {len(regressions)} regression(s); "
          f"report: {out}")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
