// Figure 2: (a) a small example network, (b) Erdős–Rényi graphs with the
// same number of links — often disconnected, with long shortest paths —
// and (c) graphs matching the example's 3K-distribution, every one of which
// is isomorphic to the input: the 3K census over-constrains the graph.
//
// Part (c) is demonstrated two ways: exhaustively on a 6-node example
// (every one of the 32768 graphs checked) and by randomized degree-
// preserving rewiring on an 8-node example.
#include <iostream>

#include "baselines/erdos_renyi.h"
#include "bench_common.h"
#include "dk/dk_search.h"
#include "graph/algorithms.h"
#include "graph/metrics.h"
#include "util/csv.h"

using namespace cold;

namespace {

void print_edges(const Topology& g, const std::string& label) {
  std::cout << label << ": ";
  for (const Edge& e : g.edges()) {
    std::cout << "(" << e.u << "," << e.v << ") ";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::banner("Figure 2 (ER pathologies; 3K over-constrains)",
                "ER copies of a real network are often disconnected or "
                "stretched; all 3K matches are isomorphic to the input");

  // (a) The example input: a 6-node dual-hub network (two hubs bridged,
  // leaves split between them, one redundant cross link).
  Topology example(6);
  example.add_edge(0, 1);  // hub-hub bridge
  example.add_edge(0, 2);
  example.add_edge(0, 3);
  example.add_edge(1, 4);
  example.add_edge(1, 5);
  example.add_edge(2, 3);  // local redundancy
  print_edges(example, "(a) example network");
  std::cout << "    connected=" << is_connected(example)
            << " diameter=" << diameter(example) << "\n\n";

  // (b) ER graphs with the same number of links.
  Rng rng(7);
  Table er_table({"sample", "connected", "diameter", "max_pairwise_hops"});
  const std::size_t er_samples = bench::trials(8, 20);
  std::size_t disconnected = 0;
  for (std::size_t s = 0; s < er_samples; ++s) {
    const Topology g = erdos_renyi_gnm(6, example.num_edges(), rng);
    const bool conn = is_connected(g);
    if (!conn) ++disconnected;
    er_table.add_row({static_cast<long long>(s),
                      std::string(conn ? "yes" : "NO"),
                      static_cast<long long>(conn ? diameter(g) : -1),
                      static_cast<long long>(conn ? diameter(g) : -1)});
  }
  er_table.print_both(std::cout, "fig2b_er_same_links");
  std::cout << "(b) " << disconnected << "/" << er_samples
            << " ER samples are disconnected (broken as data networks)\n\n";

  // (c) Exhaustive 3K-matching on the 6-node example.
  const DkMatchStats exact = find_dk_matches_exhaustive(example, 3);
  std::cout << "(c) exhaustive search over " << exact.candidates
            << " graphs on 6 nodes:\n"
            << "    3K matches: " << exact.matches
            << ", isomorphic to input: " << exact.isomorphic_matches << "\n"
            << "    => every 3K match is isomorphic: "
            << (exact.matches == exact.isomorphic_matches ? "YES" : "no")
            << "\n\n";

  // (c') Randomized check on a larger (8-node) input via 1K-preserving
  // rewiring: any sampled graph matching the full 3K census must again be
  // isomorphic to the input.
  Topology larger(8);
  larger.add_edge(0, 1);
  larger.add_edge(0, 2);
  larger.add_edge(0, 3);
  larger.add_edge(1, 4);
  larger.add_edge(1, 5);
  larger.add_edge(2, 6);
  larger.add_edge(3, 7);
  larger.add_edge(2, 3);
  Rng rng2(8);
  const DkMatchStats sampled = find_dk_matches_rewiring(
      larger, 3, bench::trials(300, 3000), rng2);
  std::cout << "(c') rewiring search on an 8-node example: "
            << sampled.candidates << " samples, " << sampled.matches
            << " matched 3K, " << sampled.isomorphic_matches
            << " isomorphic to input => "
            << (sampled.matches == sampled.isomorphic_matches
                    ? "all matches isomorphic (consistent with the paper)"
                    : "found a non-isomorphic 3K match")
            << "\n";
  return 0;
}
