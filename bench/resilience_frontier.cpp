// Resilience frontier + delta-sweep throughput gate.
//
// Two measurements:
//
//   1. Cost-vs-resilience frontier (Fig 3 style): synthesize with the
//      resilient objective at weights λ ∈ {0, 0.5, 2, 8} on one context and
//      seed, and print the winning topology's base cost against its
//      survivability aggregates. Raising λ buys failure tolerance with
//      construction cost; λ = 0 reproduces the plain-objective winner
//      exactly (the weighted term is exactly zero).
//
//   2. Delta-repair throughput at n = 80: assess one GA-shaped candidate
//      (MST plus chords) over every single-link failure scenario with the
//      engine repairing the candidate's retained trees
//      (update_shortest_path_tree deletion path) vs recomputing every tree
//      fresh. Gates: >= 2x scenarios/sec with delta repairs, and per-
//      scenario bit-identity between the two modes AND sim/failure's
//      from-scratch recomputation (the exactness contract).
//
// Results — including the "gates" array for the CI baseline diff — go to
// BENCH_resilience_frontier.json (first argv, default ./).
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/context.h"
#include "core/synthesizer.h"
#include "cost/resilience.h"
#include "ga/repair.h"
#include "graph/algorithms.h"
#include "net/network.h"
#include "net/routing.h"
#include "sim/failure.h"
#include "util/csv.h"

namespace {

using namespace cold;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool impacts_identical(const FailureImpact& a, const FailureImpact& b) {
  return a.disconnected == b.disconnected &&
         a.traffic_disconnected == b.traffic_disconnected &&
         a.traffic_rerouted == b.traffic_rerouted &&
         a.total_traffic == b.total_traffic &&
         a.mean_stretch == b.mean_stretch &&
         a.worst_stretch == b.worst_stretch &&
         a.max_utilization == b.max_utilization &&
         a.overloaded_links == b.overloaded_links;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Resilience frontier + delta-sweep throughput",
                "survivability is purchasable through the weighted-sum "
                "objective; delta-repaired failure sweeps keep it affordable");

  // --- 1. Cost-vs-resilience frontier. -------------------------------------
  const std::size_t frontier_n = 16;
  const std::vector<double> lambdas{0.0, 0.5, 2.0, 8.0};
  bench::BenchTelemetry telemetry;

  struct FrontierPoint {
    double lambda;
    double base_cost;
    double penalty;
    double disconnected_fraction;
    double worst_utilization;
    std::size_t links;
  };
  std::vector<FrontierPoint> frontier;

  Table table({"lambda", "base_cost", "penalty", "disc_frac", "worst_util",
               "links"});
  for (const double lambda : lambdas) {
    SynthesisConfig cfg =
        bench::sweep_config(frontier_n, CostParams{10.0, 1.0, 4e-4, 0.0});
    cfg.ga.population = bench::trials(24, 48);
    cfg.ga.generations = bench::trials(12, 40);
    cfg.ga.parallel.num_threads = bench::bench_threads();
    cfg.engine.resilience.enabled = true;
    cfg.engine.resilience.weight = lambda;
    if (lambda == 2.0) telemetry.attach(cfg);  // headline run
    const SynthesisResult r = Synthesizer(cfg).synthesize(17);
    const ResilienceSummary& s = r.cost.resilience_summary;
    const FrontierPoint p{lambda,
                          r.cost.total() - r.cost.resilience,
                          s.penalty(),
                          s.disconnected_fraction,
                          s.worst_utilization,
                          r.network.num_links()};
    frontier.push_back(p);
    table.add_row({p.lambda, p.base_cost, p.penalty, p.disconnected_fraction,
                   p.worst_utilization, static_cast<double>(p.links)});
    std::fprintf(stderr, "  lambda=%g done (%llu scenarios swept)\n", lambda,
                 static_cast<unsigned long long>(r.resilience.scenarios));
  }
  table.print_both(std::cout, "resilience_frontier");

  // --- 2. Delta-repair throughput at n = 80. -------------------------------
  const std::size_t n = 80;
  ContextConfig ctx_cfg;
  ctx_cfg.num_pops = n;
  Rng ctx_rng(7);
  const Context ctx = generate_context(ctx_cfg, ctx_rng);

  // GA-shaped candidate: the MST plus a sprinkle of chords.
  Topology g = minimum_spanning_tree(ctx.distances);
  Rng chord_rng(8);
  for (std::size_t i = 0; i < n / 4; ++i) {
    const NodeId u = chord_rng.next_u64() % n;
    const NodeId v = chord_rng.next_u64() % n;
    if (u != v && !g.has_edge(u, v)) g.add_edge(u, v);
  }

  ResilienceConfig rcfg;
  rcfg.enabled = true;
  rcfg.overprovision = 1.25;

  EdgeLoads base_loads;
  RoutingWorkspace ws;
  std::vector<ShortestPathTree> base_trees;
  if (!route_loads_retained(g, ctx.distances, ctx.traffic, base_loads,
                            base_trees, ws)) {
    std::fprintf(stderr, "candidate unroutable — bench bug\n");
    return 1;
  }
  const auto scenarios = enumerate_failure_scenarios(g, rcfg);

  const std::size_t reps = bench::trials(5, 20);
  double delta_secs = 0.0, fresh_secs = 0.0;
  std::vector<FailureImpact> delta_impacts, fresh_impacts;
  for (const bool use_delta : {true, false}) {
    rcfg.use_delta = use_delta;
    ResilienceEngine engine(ctx.distances, ctx.traffic, rcfg);
    std::vector<FailureImpact>& out = use_delta ? delta_impacts
                                                : fresh_impacts;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      engine.assess(g, use_delta ? &base_trees : nullptr, base_loads, &out);
    }
    (use_delta ? delta_secs : fresh_secs) = seconds_since(t0);
  }
  const double swept = static_cast<double>(scenarios.size() * reps);
  const double delta_sps = swept / delta_secs;
  const double fresh_sps = swept / fresh_secs;
  const double speedup = delta_sps / fresh_sps;

  // Exactness, per scenario: delta == fresh == sim/failure from scratch.
  const Network net = build_network(g, ctx.locations, ctx.populations,
                                    ctx.traffic, rcfg.overprovision);
  bool identical = delta_impacts.size() == scenarios.size() &&
                   fresh_impacts.size() == scenarios.size();
  for (std::size_t i = 0; identical && i < scenarios.size(); ++i) {
    identical = impacts_identical(delta_impacts[i], fresh_impacts[i]) &&
                impacts_identical(delta_impacts[i],
                                  simulate_multi_link_failure(net,
                                                              scenarios[i]));
  }

  std::printf("\nn=%zu, %zu scenarios, %zu reps\n", n, scenarios.size(),
              reps);
  std::printf("fresh sweep:  %.1f scenarios/sec\n", fresh_sps);
  std::printf("delta repair: %.1f scenarios/sec (%.2fx)\n\n", delta_sps,
              speedup);

  bench::GateSet gates;
  gates.require_at_least("delta_sweep_speedup", speedup, 2.0);
  gates.require("sweep_identical", identical);
  gates.print();

  // --- JSON artifact. ------------------------------------------------------
  const std::string path =
      (argc > 1 ? std::string(argv[1]) : std::string(".")) +
      "/BENCH_resilience_frontier.json";
  if (FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"resilience_frontier\",\n"
                 "  \"frontier_pops\": %zu,\n"
                 "  \"frontier\": [\n",
                 frontier_n);
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const FrontierPoint& p = frontier[i];
      std::fprintf(f,
                   "    {\"lambda\": %g, \"base_cost\": %.6f, "
                   "\"penalty\": %.6f, \"disconnected_fraction\": %.6f, "
                   "\"worst_utilization\": %.6f, \"links\": %zu}%s\n",
                   p.lambda, p.base_cost, p.penalty, p.disconnected_fraction,
                   p.worst_utilization, p.links,
                   i + 1 < frontier.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"sweep\": {\"pops\": %zu, \"scenarios\": %zu, "
                 "\"reps\": %zu, \"scenarios_per_sec_fresh\": %.1f, "
                 "\"scenarios_per_sec_delta\": %.1f, \"speedup\": %.3f, "
                 "\"identical\": %s},\n",
                 n, scenarios.size(), reps, fresh_sps, delta_sps, speedup,
                 identical ? "true" : "false");
    std::fprintf(f, "  \"gates\": %s\n}\n", gates.json().c_str());
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::printf("\ncould not write %s\n", path.c_str());
    return 1;
  }

  return gates.all_pass() ? 0 : 1;
}
