// Figure 8b: coefficient of variation of node degree (CVND) versus k3, for
// k2 in {2.5e-5, 1e-4, 4e-4, 1.6e-3}, n = 30. The paper's key §7 result:
// without a hub cost (small k3) CVND stays well below 1; raising k3 pushes
// CVND through 1 toward the ~2 regime observed in [16].
#include <iostream>

#include "bench_common.h"
#include "core/ensemble.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace cold;

int main() {
  bench::banner("Figure 8b (CVND vs k3, by k2)",
                "CVND < 1 for small k3 at every k2; grows past 1 toward ~2 "
                "as k3 rises — the node cost is necessary");

  const std::size_t n = 30;
  const std::vector<double> k2_values{2.5e-5, 1e-4, 4e-4, 1.6e-3};
  const auto k3_grid = log_space(0.1, 1000.0, 8);
  const std::size_t sims = bench::trials(8, 200);

  Table table({"k2", "k3", "cvnd", "ci_lo", "ci_hi"});
  for (double k2 : k2_values) {
    for (double k3 : k3_grid) {
      const Synthesizer synth(
          bench::sweep_config(n, CostParams{10.0, 1.0, k2, k3}));
      std::vector<double> values;
      for (const TopologyMetrics& m : sweep_metrics(synth, sims)) {
        values.push_back(m.degree_cv);
      }
      const ConfidenceInterval ci = bootstrap_mean_ci(values);
      table.add_row({k2, k3, ci.mean, ci.lo, ci.hi});
      std::cerr << "  k2=" << k2 << " k3=" << k3 << " done\n";
    }
  }
  table.print_both(std::cout, "fig8b_cvnd");
  return 0;
}
