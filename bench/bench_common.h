// Shared plumbing for the paper-reproduction bench binaries.
//
// Every binary prints the table/series of one paper figure or table. By
// default the trial counts are reduced to keep a full `for b in bench/*`
// sweep tractable on one core; set COLD_BENCH_FULL=1 to run at paper scale
// (T = M = 100, paper trial counts). The curve *shapes* are stable across
// both settings; EXPERIMENTS.md records both.
// Telemetry: COLD_BENCH_REPORT=FILE attaches a JsonReportSink to runs that
// go through BenchTelemetry::attach and writes the JSON run report on exit;
// COLD_BENCH_MAX_SECONDS=T puts a wall-clock budget on those runs (partial
// results stay valid, the report records the stop reason).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/synthesizer.h"
#include "cost/cost_model.h"
#include "ga/genetic.h"
#include "telemetry/report.h"

namespace cold::bench {

/// One named pass/fail gate with its measured value and threshold, so the
/// CI baseline-diff step (bench/baselines/check_regression.py) can compare
/// outcomes across runs without parsing bench-specific fields.
struct GateOutcome {
  std::string name;
  double value = 0.0;  ///< the measurement
  double min = 0.0;    ///< threshold: value >= min passes (1.0 for booleans)
  bool pass = false;
};

/// Collects a bench binary's gates; renders them as the "gates" array of
/// its BENCH_*.json artifact and as per-gate stdout lines.
class GateSet {
 public:
  /// Records `value >= min` under `name`; returns whether it passed.
  bool require_at_least(const std::string& name, double value, double min);

  /// Boolean gate: records `ok` as value 1/0 against min 1.
  bool require(const std::string& name, bool ok);

  bool all_pass() const;
  const std::vector<GateOutcome>& outcomes() const { return outcomes_; }

  /// JSON array literal (no trailing newline), e.g.
  /// [{"name": "cache_speedup", "value": 4.2, "min": 3.0, "pass": true}].
  std::string json() const;

  /// One "gate <name>: <value> (min <min>) PASS|FAIL" line per gate.
  void print() const;

 private:
  std::vector<GateOutcome> outcomes_;
};

/// True when COLD_BENCH_FULL=1 is set in the environment.
bool full_mode();

/// Worker-thread count for GA scoring and ensemble fan-out, from
/// COLD_BENCH_THREADS; default 0 = all hardware threads. Results are
/// bit-identical across settings — this knob trades wall-clock only.
std::size_t bench_threads();

/// Picks the trial count for the current mode.
std::size_t trials(std::size_t fast, std::size_t full);

/// GA settings: (M=48, T=40) fast, (M=100, T=100) full — the paper's §5
/// defaults.
GaConfig default_ga();

/// Standard sweep synthesizer config: n PoPs on the unit square,
/// exponential populations, given costs, default GA for the current mode.
SynthesisConfig sweep_config(std::size_t n, CostParams costs);

/// Prints the bench banner: figure id, the paper's claim, current mode.
void banner(const std::string& figure, const std::string& claim);

/// Wall-clock budget from COLD_BENCH_MAX_SECONDS; 0 = unlimited.
double bench_max_seconds();

/// Report path from COLD_BENCH_REPORT; empty = no report.
std::string bench_report_path();

/// Env-driven run telemetry for bench binaries. attach() wires the sink
/// and/or stop condition (when the corresponding env var is set) into a
/// config; the destructor writes the report file. With several attached
/// runs the report holds the last one (the sink resets per run), so attach
/// to the headline measurement of the binary.
class BenchTelemetry {
 public:
  BenchTelemetry() = default;
  ~BenchTelemetry();
  BenchTelemetry(const BenchTelemetry&) = delete;
  BenchTelemetry& operator=(const BenchTelemetry&) = delete;

  void attach(SynthesisConfig& cfg);
  void attach(GaRunOptions& options);

 private:
  JsonReportSink sink_;
  StopCondition stop_;
  bool report_attached_ = false;
};

}  // namespace cold::bench
