// Ablation (§5): "for networks of up to 8 PoPs the GA always finds the real
// optimal solution". We enumerate every topology on small node sets and
// compare the GA (and the initialized GA) against the exact optimum across
// random contexts and cost settings.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/context.h"
#include "ga/genetic.h"
#include "heuristics/brute_force.h"
#include "heuristics/hub_heuristics.h"
#include "util/csv.h"

using namespace cold;

int main() {
  bench::banner("Ablation: GA vs brute-force optimum (small n)",
                "the GA finds the exact optimum on every small instance");

  const std::vector<std::size_t> sizes{4, 5, 6};
  const std::vector<CostParams> cost_settings{
      {10.0, 1.0, 1e-4, 0.0},
      {10.0, 1.0, 1e-3, 0.0},
      {10.0, 1.0, 1e-4, 10.0},
      {10.0, 1.0, 1e-3, 100.0},
  };
  const std::size_t trials_per_cell = bench::trials(3, 10);

  Table table({"n", "costs", "trials", "ga_optimal", "init_ga_optimal",
               "max_rel_gap"});
  for (std::size_t n : sizes) {
    for (const CostParams& costs : cost_settings) {
      std::size_t ga_hits = 0, init_hits = 0;
      double worst_gap = 0.0;
      for (std::size_t t = 0; t < trials_per_cell; ++t) {
        ContextConfig ctx_cfg;
        ctx_cfg.num_pops = n;
        Rng ctx_rng(500 + t);
        const Context ctx = generate_context(ctx_cfg, ctx_rng);
        Evaluator eval(ctx.distances, ctx.traffic, costs);

        const BruteForceResult exact = brute_force_optimum(eval);

        GaConfig ga_cfg = bench::default_ga();
        Rng ga_rng(600 + t);
        const GaResult plain = run_ga(eval, ga_cfg, ga_rng);

        Rng hrng(700 + t), init_rng(600 + t);
        std::vector<Topology> seeds;
        for (const auto& h : run_all_heuristics(eval, hrng)) {
          seeds.push_back(h.topology);
        }
        const GaResult init = run_ga(eval, ga_cfg, init_rng, seeds);

        const double tol = 1e-9 * std::max(1.0, exact.cost);
        if (plain.best_cost <= exact.cost + tol) ++ga_hits;
        if (init.best_cost <= exact.cost + tol) ++init_hits;
        worst_gap = std::max(
            worst_gap, (std::min(plain.best_cost, init.best_cost) - exact.cost) /
                           exact.cost);
      }
      table.add_row({static_cast<long long>(n), costs.to_string(),
                     static_cast<long long>(trials_per_cell),
                     static_cast<long long>(ga_hits),
                     static_cast<long long>(init_hits), worst_gap});
      std::cerr << "  n=" << n << " " << costs.to_string() << " done\n";
    }
  }
  table.print_both(std::cout, "ablation_bruteforce");
  return 0;
}
