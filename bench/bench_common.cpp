#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

namespace cold::bench {

bool GateSet::require_at_least(const std::string& name, double value,
                               double min) {
  const bool pass = value >= min;
  outcomes_.push_back({name, value, min, pass});
  return pass;
}

bool GateSet::require(const std::string& name, bool ok) {
  outcomes_.push_back({name, ok ? 1.0 : 0.0, 1.0, ok});
  return ok;
}

bool GateSet::all_pass() const {
  for (const GateOutcome& g : outcomes_) {
    if (!g.pass) return false;
  }
  return true;
}

std::string GateSet::json() const {
  std::ostringstream os;
  os.precision(6);
  os << "[";
  for (std::size_t i = 0; i < outcomes_.size(); ++i) {
    const GateOutcome& g = outcomes_[i];
    if (i > 0) os << ", ";
    os << "{\"name\": \"" << g.name << "\", \"value\": " << g.value
       << ", \"min\": " << g.min << ", \"pass\": "
       << (g.pass ? "true" : "false") << "}";
  }
  os << "]";
  return os.str();
}

void GateSet::print() const {
  for (const GateOutcome& g : outcomes_) {
    std::printf("gate %-28s %10.3f (min %.3f) %s\n", g.name.c_str(), g.value,
                g.min, g.pass ? "PASS" : "FAIL");
  }
}

bool full_mode() {
  const char* v = std::getenv("COLD_BENCH_FULL");
  return v != nullptr && std::string(v) == "1";
}

std::size_t trials(std::size_t fast, std::size_t full) {
  return full_mode() ? full : fast;
}

std::size_t bench_threads() {
  const char* v = std::getenv("COLD_BENCH_THREADS");
  if (v == nullptr) return 0;  // 0 = all hardware threads
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

GaConfig default_ga() {
  GaConfig cfg;
  if (full_mode()) {
    cfg.population = 100;
    cfg.generations = 100;
  } else {
    cfg.population = 48;
    cfg.generations = 40;
  }
  cfg.parallel.num_threads = bench_threads();
  return cfg;
}

SynthesisConfig sweep_config(std::size_t n, CostParams costs) {
  SynthesisConfig cfg;
  cfg.context.num_pops = n;
  cfg.costs = costs;
  cfg.ga = default_ga();
  cfg.parallel.num_threads = bench_threads();
  return cfg;
}

void banner(const std::string& figure, const std::string& claim) {
  std::cout << "==============================================================\n";
  std::cout << "COLD reproduction — " << figure << "\n";
  std::cout << "Paper claim: " << claim << "\n";
  std::cout << "Mode: " << (full_mode() ? "FULL (paper-scale)" : "fast")
            << "  (set COLD_BENCH_FULL=1 for paper-scale runs)\n";
  std::cout << "==============================================================\n\n";
}

double bench_max_seconds() {
  const char* v = std::getenv("COLD_BENCH_MAX_SECONDS");
  return v == nullptr ? 0.0 : std::strtod(v, nullptr);
}

std::string bench_report_path() {
  const char* v = std::getenv("COLD_BENCH_REPORT");
  return v == nullptr ? std::string() : std::string(v);
}

BenchTelemetry::~BenchTelemetry() {
  if (!report_attached_) return;
  const std::string path = bench_report_path();
  std::ofstream file(path);
  if (!file) {
    std::cerr << "could not write report " << path << "\n";
    return;
  }
  sink_.write(file);
  std::cout << "wrote report " << path << "\n";
}

void BenchTelemetry::attach(SynthesisConfig& cfg) {
  if (!bench_report_path().empty()) {
    // Raw run_ga emits no RunStart (the sink's usual reset trigger), so
    // reset here to keep the "report holds the last attached run" promise.
    sink_.report() = RunReport{};
    cfg.observer = &sink_;
    report_attached_ = true;
  }
  stop_.max_seconds = bench_max_seconds();
  if (stop_.max_seconds > 0) cfg.stop = &stop_;
}

void BenchTelemetry::attach(GaRunOptions& options) {
  if (!bench_report_path().empty()) {
    sink_.report() = RunReport{};
    options.observer = &sink_;
    report_attached_ = true;
  }
  stop_.max_seconds = bench_max_seconds();
  if (stop_.max_seconds > 0) options.stop = &stop_;
}

}  // namespace cold::bench
