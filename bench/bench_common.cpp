#include "bench_common.h"

#include <cstdlib>
#include <iostream>

namespace cold::bench {

bool full_mode() {
  const char* v = std::getenv("COLD_BENCH_FULL");
  return v != nullptr && std::string(v) == "1";
}

std::size_t trials(std::size_t fast, std::size_t full) {
  return full_mode() ? full : fast;
}

std::size_t bench_threads() {
  const char* v = std::getenv("COLD_BENCH_THREADS");
  if (v == nullptr) return 0;  // 0 = all hardware threads
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

GaConfig default_ga() {
  GaConfig cfg;
  if (full_mode()) {
    cfg.population = 100;
    cfg.generations = 100;
  } else {
    cfg.population = 48;
    cfg.generations = 40;
  }
  cfg.parallel.num_threads = bench_threads();
  return cfg;
}

SynthesisConfig sweep_config(std::size_t n, CostParams costs) {
  SynthesisConfig cfg;
  cfg.context.num_pops = n;
  cfg.costs = costs;
  cfg.ga = default_ga();
  cfg.parallel.num_threads = bench_threads();
  return cfg;
}

void banner(const std::string& figure, const std::string& claim) {
  std::cout << "==============================================================\n";
  std::cout << "COLD reproduction — " << figure << "\n";
  std::cout << "Paper claim: " << claim << "\n";
  std::cout << "Mode: " << (full_mode() ? "FULL (paper-scale)" : "fast")
            << "  (set COLD_BENCH_FULL=1 for paper-scale runs)\n";
  std::cout << "==============================================================\n\n";
}

}  // namespace cold::bench
