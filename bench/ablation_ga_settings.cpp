// Ablation (§5): sensitivity to the GA budget. The paper fixes T = M = 100
// and reports that quadrupling both changes best cost by at most ~10%. We
// sweep (M, T) and report the mean best cost relative to the largest budget.
#include <iostream>

#include "bench_common.h"
#include "core/context.h"
#include "ga/genetic.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace cold;

int main() {
  bench::banner("Ablation: GA budget (M, T) sensitivity",
                "quadrupling the budget beyond T=M=100 improves cost <= ~10%");

  const std::size_t n = 30;
  const CostParams costs{10.0, 1.0, 4e-4, 10.0};
  struct Budget {
    std::size_t m, t;
  };
  const std::vector<Budget> budgets = bench::full_mode()
      ? std::vector<Budget>{{25, 25}, {50, 50}, {100, 100}, {200, 200}}
      : std::vector<Budget>{{12, 12}, {24, 24}, {48, 48}, {96, 96}};
  const std::size_t num_trials = bench::trials(5, 20);

  // Per-trial contexts shared across budgets so the comparison is paired.
  std::vector<Context> contexts;
  for (std::size_t t = 0; t < num_trials; ++t) {
    ContextConfig cfg;
    cfg.num_pops = n;
    Rng rng(900 + t);
    contexts.push_back(generate_context(cfg, rng));
  }

  // Reference: the largest budget.
  std::vector<double> reference(num_trials);
  {
    const Budget& big = budgets.back();
    for (std::size_t t = 0; t < num_trials; ++t) {
      Evaluator eval(contexts[t].distances, contexts[t].traffic, costs);
      GaConfig cfg;
      cfg.population = big.m;
      cfg.generations = big.t;
      Rng rng(42 + t);
      reference[t] = run_ga(eval, cfg, rng).best_cost;
    }
  }

  Table table({"M", "T", "mean_rel_cost", "ci_lo", "ci_hi", "evals"});
  for (const Budget& b : budgets) {
    std::vector<double> rel;
    std::size_t evals = 0;
    for (std::size_t t = 0; t < num_trials; ++t) {
      Evaluator eval(contexts[t].distances, contexts[t].traffic, costs);
      GaConfig cfg;
      cfg.population = b.m;
      cfg.generations = b.t;
      Rng rng(42 + t);
      const GaResult r = run_ga(eval, cfg, rng);
      rel.push_back(r.best_cost / reference[t]);
      evals += r.evaluations;
    }
    const ConfidenceInterval ci = bootstrap_mean_ci(rel);
    table.add_row({static_cast<long long>(b.m), static_cast<long long>(b.t),
                   ci.mean, ci.lo, ci.hi,
                   static_cast<long long>(evals / num_trials)});
    std::cerr << "  M=" << b.m << " T=" << b.t << " done\n";
  }
  table.print_both(std::cout, "ablation_ga_settings");
  std::cout << "Reading: mean_rel_cost is relative to the largest budget; "
               "the paper's claim corresponds to the second-largest budget "
               "sitting within ~1.10 of 1.0.\n";
  return 0;
}
