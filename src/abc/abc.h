// Approximate Bayesian Computation for COLD's cost parameters (paper §8:
// "we also plan to use ... ABC ... to map real networks to parameters ki").
//
// Rejection-ABC: draw (k0, k2, k3) from log-uniform priors (k1 is fixed at 1
// — costs are relative), synthesize a network per draw, and accept the draw
// when the synthetic network's summary statistics land within `epsilon` of
// the target's. The accepted draws approximate the posterior over cost
// parameters given the observed topology.
#pragma once

#include <vector>

#include "core/synthesizer.h"
#include "graph/metrics.h"

namespace cold {

/// Summary statistics compared by the ABC distance. Scales chosen so each
/// component contributes comparably (see abc.cpp).
struct AbcSummary {
  double avg_degree = 0.0;
  double diameter = 0.0;
  double clustering = 0.0;
  double degree_cv = 0.0;

  static AbcSummary of(const TopologyMetrics& m);
};

/// Normalized Euclidean distance between two summaries.
double abc_distance(const AbcSummary& a, const AbcSummary& b);

struct AbcPrior {
  double k0_lo = 1.0, k0_hi = 100.0;
  double k2_lo = 1e-5, k2_hi = 1e-2;
  double k3_lo = 0.1, k3_hi = 1000.0;  ///< a draw <= k3_floor is treated as 0
  double k3_floor = 0.2;
};

struct AbcConfig {
  AbcPrior prior;
  std::size_t num_draws = 200;    ///< prior draws (simulations)
  double epsilon = 0.35;          ///< acceptance threshold on abc_distance
  std::size_t networks_per_draw = 1;  ///< synthetic replicates averaged per draw
  GaConfig ga;                    ///< GA settings per simulation (keep small)
};

struct AbcDraw {
  CostParams params;
  AbcSummary summary;
  double distance = 0.0;
  bool accepted = false;
};

struct AbcResult {
  std::vector<AbcDraw> draws;      ///< all draws, in order
  std::vector<AbcDraw> accepted;   ///< the posterior sample
  CostParams posterior_mean;       ///< mean of accepted draws (log-space for k's)
  double acceptance_rate = 0.0;
};

/// Estimates cost parameters for an observed topology. The target's node
/// count sets the synthesis size. Deterministic given `seed`.
AbcResult abc_estimate(const Topology& target, const AbcConfig& config,
                       std::uint64_t seed);

}  // namespace cold
