#include "abc/abc.h"

#include <cmath>
#include <stdexcept>

#include "core/ensemble.h"

namespace cold {

AbcSummary AbcSummary::of(const TopologyMetrics& m) {
  AbcSummary s;
  s.avg_degree = m.avg_degree;
  s.diameter = static_cast<double>(m.diameter);
  s.clustering = m.global_clustering;
  s.degree_cv = m.degree_cv;
  return s;
}

double abc_distance(const AbcSummary& a, const AbcSummary& b) {
  // Per-component scales: typical dynamic ranges over the paper's sweeps
  // (avg degree ~2-3.2, diameter ~2-12, GCC ~0-0.2, CVND ~0.5-3).
  const double d0 = (a.avg_degree - b.avg_degree) / 1.0;
  const double d1 = (a.diameter - b.diameter) / 5.0;
  const double d2 = (a.clustering - b.clustering) / 0.1;
  const double d3 = (a.degree_cv - b.degree_cv) / 1.0;
  return std::sqrt((d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3) / 4.0);
}

namespace {

double log_uniform(Rng& rng, double lo, double hi) {
  return std::exp(rng.uniform(std::log(lo), std::log(hi)));
}

}  // namespace

AbcResult abc_estimate(const Topology& target, const AbcConfig& config,
                       std::uint64_t seed) {
  if (target.num_nodes() < 3) {
    throw std::invalid_argument("abc_estimate: target too small");
  }
  if (config.num_draws == 0 || config.networks_per_draw == 0) {
    throw std::invalid_argument("abc_estimate: need draws >= 1");
  }
  const AbcSummary observed = AbcSummary::of(compute_metrics(target));
  const AbcPrior& prior = config.prior;

  Rng rng(seed, /*stream=*/0xabc);
  AbcResult result;
  for (std::size_t draw = 0; draw < config.num_draws; ++draw) {
    AbcDraw d;
    d.params.k0 = log_uniform(rng, prior.k0_lo, prior.k0_hi);
    d.params.k1 = 1.0;
    d.params.k2 = log_uniform(rng, prior.k2_lo, prior.k2_hi);
    d.params.k3 = log_uniform(rng, prior.k3_lo, prior.k3_hi);
    if (d.params.k3 <= prior.k3_floor) d.params.k3 = 0.0;

    SynthesisConfig scfg;
    scfg.context.num_pops = target.num_nodes();
    scfg.costs = d.params;
    scfg.ga = config.ga;
    const Synthesizer synth(scfg);

    // Average the summary over replicates to damp context noise.
    AbcSummary mean;
    for (std::size_t r = 0; r < config.networks_per_draw; ++r) {
      const SynthesisResult run = synth.synthesize(rng.next_u64());
      const AbcSummary s =
          AbcSummary::of(compute_metrics(run.network.topology));
      mean.avg_degree += s.avg_degree;
      mean.diameter += s.diameter;
      mean.clustering += s.clustering;
      mean.degree_cv += s.degree_cv;
    }
    const auto reps = static_cast<double>(config.networks_per_draw);
    mean.avg_degree /= reps;
    mean.diameter /= reps;
    mean.clustering /= reps;
    mean.degree_cv /= reps;

    d.summary = mean;
    d.distance = abc_distance(observed, mean);
    d.accepted = d.distance <= config.epsilon;
    if (d.accepted) result.accepted.push_back(d);
    result.draws.push_back(std::move(d));
  }

  result.acceptance_rate =
      static_cast<double>(result.accepted.size()) /
      static_cast<double>(result.draws.size());

  // Posterior point estimate: geometric mean for the multiplicative k's
  // (k3 = 0 draws participate via the floor value to keep the mean defined).
  if (!result.accepted.empty()) {
    double lk0 = 0.0, lk2 = 0.0, lk3 = 0.0;
    for (const AbcDraw& d : result.accepted) {
      lk0 += std::log(d.params.k0);
      lk2 += std::log(d.params.k2);
      lk3 += std::log(std::max(d.params.k3, prior.k3_floor));
    }
    const auto m = static_cast<double>(result.accepted.size());
    result.posterior_mean.k0 = std::exp(lk0 / m);
    result.posterior_mean.k1 = 1.0;
    result.posterior_mean.k2 = std::exp(lk2 / m);
    const double k3 = std::exp(lk3 / m);
    result.posterior_mean.k3 = k3 <= prior.k3_floor ? 0.0 : k3;
  }
  return result;
}

}  // namespace cold
