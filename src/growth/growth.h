// Brownfield network evolution (paper §3: "networks are rarely designed
// from scratch — they evolve"; §3.2.3: meaningful costs make it easy to
// "extrapolate a network to examine what it might look like as it grows").
//
// Given an existing network, grow it: add new PoPs (new market cities),
// scale the traffic, and re-optimize — but as an operator would, not from
// scratch. Installed links represent sunk cost, so the optimizer keeps them
// (optionally paying a decommission charge to remove one) and decides only
// how to attach the new PoPs and which new links to add.
#pragma once

#include <vector>

#include "core/synthesizer.h"
#include "net/network.h"

namespace cold {

struct GrowthConfig {
  /// New PoPs to add (placed by the context's point process).
  std::size_t new_pops = 5;
  /// Multiplier applied to the existing populations (market growth); new
  /// PoPs draw fresh populations from the model.
  double population_growth = 1.2;
  /// Cost charged for removing an installed link, per unit of its original
  /// build cost (k0 + k1*l). Infinity freezes the installed plant entirely;
  /// 0 makes growth equivalent to greenfield re-optimization.
  double decommission_factor = 1.0;
  CostParams costs;
  GaConfig ga;

  /// Evaluation-engine settings for the inner Evaluator (cache and
  /// shortest-path solver); exact, performance-only — see cost/evaluator.h.
  EvalEngineConfig engine;

  /// Borrowed, may be null: telemetry observer and cooperative stop for
  /// the re-optimization GA (same semantics as SynthesisConfig's fields).
  RunObserver* observer = nullptr;
  StopCondition* stop = nullptr;
};

struct GrowthResult {
  Network network;        ///< the evolved network
  Context context;        ///< grown context (old locations preserved)
  std::size_t links_kept = 0;     ///< installed links surviving
  std::size_t links_removed = 0;  ///< installed links decommissioned
  std::size_t links_added = 0;    ///< new links built
  double cost = 0.0;              ///< objective value (incl. decommission)
};

/// Evolves `base` under the growth recipe. Node ids 0..base.num_pops()-1 in
/// the result are the original PoPs (same coordinates); the rest are new.
/// Deterministic given `seed`.
GrowthResult grow_network(const Network& base, const GrowthConfig& config,
                          std::uint64_t seed);

/// The evaluator used by grow_network: base cost model plus the
/// decommission charge for installed links that are absent from the
/// candidate. Exposed for testing.
class GrowthEvaluator {
 public:
  /// Compat form: dense matrices, wrapped exactly like Evaluator's matrix
  /// constructor (always-dense provider, CSR traffic).
  GrowthEvaluator(Matrix<double> lengths, Matrix<double> traffic,
                  CostParams params, std::vector<Edge> installed,
                  double decommission_factor, EvalEngineConfig engine = {});

  /// Matrix-free form: shares the provider/CSR cores with the caller.
  GrowthEvaluator(DistanceProvider lengths, CompressedTraffic traffic,
                  CostParams params, std::vector<Edge> installed,
                  double decommission_factor, EvalEngineConfig engine = {});

  /// Inner cost plus decommission charges. `parent_hint` is forwarded to
  /// the inner evaluation's EvalRequest (0 = none).
  double cost(const Topology& g, std::uint64_t parent_hint = 0);
  Evaluator& inner() { return inner_; }

  /// Thread-private copy (shares the context matrices via the inner
  /// Evaluator's clone; see Evaluator::clone()).
  GrowthEvaluator clone() const;

 private:
  GrowthEvaluator(Evaluator inner, std::vector<Edge> installed,
                  double decommission_factor);

  Evaluator inner_;
  std::vector<Edge> installed_;
  double decommission_factor_;
};

}  // namespace cold
