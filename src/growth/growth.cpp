#include "growth/growth.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "geom/distance.h"
#include "geom/point_process.h"
#include "ga/genetic.h"
#include "ga/objective.h"
#include "graph/algorithms.h"
#include "traffic/gravity.h"

namespace cold {

GrowthEvaluator::GrowthEvaluator(Matrix<double> lengths,
                                 Matrix<double> traffic, CostParams params,
                                 std::vector<Edge> installed,
                                 double decommission_factor,
                                 EvalEngineConfig engine)
    : GrowthEvaluator(DistanceProvider::from_matrix(std::move(lengths)),
                      CompressedTraffic(traffic), params, std::move(installed),
                      decommission_factor, engine) {}

GrowthEvaluator::GrowthEvaluator(DistanceProvider lengths,
                                 CompressedTraffic traffic, CostParams params,
                                 std::vector<Edge> installed,
                                 double decommission_factor,
                                 EvalEngineConfig engine)
    : inner_(std::move(lengths), std::move(traffic), params, engine),
      installed_(std::move(installed)),
      decommission_factor_(decommission_factor) {
  if (decommission_factor < 0) {
    throw std::invalid_argument(
        "GrowthEvaluator: decommission_factor must be >= 0");
  }
}

GrowthEvaluator::GrowthEvaluator(Evaluator inner, std::vector<Edge> installed,
                                 double decommission_factor)
    : inner_(std::move(inner)),
      installed_(std::move(installed)),
      decommission_factor_(decommission_factor) {}

GrowthEvaluator GrowthEvaluator::clone() const {
  return GrowthEvaluator(inner_.clone(), installed_, decommission_factor_);
}

double GrowthEvaluator::cost(const Topology& g, std::uint64_t parent_hint) {
  EvalRequest req;
  req.parent_hint = parent_hint;
  double total = inner_.evaluate(g, req).total();
  if (!std::isfinite(total)) return total;
  const CostParams& k = inner_.params();
  for (const Edge& e : installed_) {
    if (!g.has_edge(e.u, e.v)) {
      // Decommission charge: proportional to the sunk build cost.
      total +=
          decommission_factor_ * (k.k0 + k.k1 * inner_.lengths()(e.u, e.v));
    }
  }
  return total;
}

namespace {

class GrowthObjective final : public Objective {
 public:
  explicit GrowthObjective(GrowthEvaluator& eval) : eval_(&eval) {}
  explicit GrowthObjective(GrowthEvaluator&& owned)
      : owned_(std::make_unique<GrowthEvaluator>(std::move(owned))),
        eval_(owned_.get()) {}

  double cost(const Topology& g) override {
    return eval_->cost(g, std::exchange(hint_, 0));
  }
  const DistanceProvider& lengths() const override {
    return eval_->inner().lengths();
  }

  std::unique_ptr<Objective> clone() const override {
    return std::make_unique<GrowthObjective>(eval_->clone());
  }

  void merge_from(Objective& worker) override {
    if (auto* w = dynamic_cast<GrowthObjective*>(&worker)) {
      eval_->inner().merge_stats(w->eval_->inner());
    }
  }

  void charge_duplicates(std::size_t n) override {
    eval_->inner().charge_duplicates(n);
  }

  void set_parent_hint(std::uint64_t fingerprint) override {
    hint_ = fingerprint;
  }

 private:
  std::unique_ptr<GrowthEvaluator> owned_;  ///< set only for clones
  GrowthEvaluator* eval_;
  std::uint64_t hint_ = 0;  ///< buffered parent hint for the next cost()
};

}  // namespace

GrowthResult grow_network(const Network& base, const GrowthConfig& config,
                          std::uint64_t seed) {
  if (config.population_growth <= 0) {
    throw std::invalid_argument("grow_network: population_growth must be > 0");
  }
  config.costs.validate();
  const std::size_t old_n = base.num_pops();
  const std::size_t n = old_n + config.new_pops;
  const auto started = std::chrono::steady_clock::now();
  if (config.stop != nullptr) config.stop->arm();
  if (config.observer != nullptr) config.observer->on_run_start({seed, n});

  // Grown context: keep old PoPs in place; new ones drawn uniformly (new
  // markets appear wherever demand does).
  Rng rng(seed, /*stream=*/0x960);
  GrowthResult result;
  std::vector<Point> locations = base.locations;
  const UniformProcess uniform;
  const Rectangle region;  // unit square, like the default context
  for (const Point& p : uniform.sample(config.new_pops, region, rng)) {
    locations.push_back(p);
  }
  std::vector<double> populations = base.populations;
  for (double& p : populations) p *= config.population_growth;
  const ExponentialPopulation new_pops_model(30.0);
  for (double p : new_pops_model.sample(config.new_pops, rng)) {
    populations.push_back(p);
  }
  // Same calibrated traffic units as ContextConfig's default.
  GravityOptions gravity;
  gravity.scale = 10.0;
  result.context.locations = locations;
  result.context.populations = populations;
  result.context.traffic = gravity_traffic(populations, gravity);
  result.context.distances = DistanceProvider::from_points(locations);

  // Installed plant.
  std::vector<Edge> installed = base.topology.edges();
  GrowthEvaluator eval(result.context.distances, result.context.traffic,
                       config.costs, installed, config.decommission_factor,
                       config.engine);
  GrowthObjective objective(eval);

  // Seeds: (a) the brownfield seed — existing network plus each new PoP
  // attached to its nearest existing PoP; (b) the full MST, so greenfield
  // structure also competes when decommissioning is cheap.
  Topology brownfield(n);
  for (const Edge& e : installed) brownfield.add_edge(e.u, e.v);
  for (NodeId v = old_n; v < n; ++v) {
    NodeId best = 0;
    for (NodeId u = 0; u < v; ++u) {
      if (result.context.distances(v, u) < result.context.distances(v, best)) {
        best = u;
      }
    }
    brownfield.add_edge(v, best);
  }
  const std::vector<Topology> seeds{
      brownfield, minimum_spanning_tree(result.context.distances)};

  GaRunOptions ga_options;
  ga_options.config = config.ga;
  ga_options.seeds = seeds;
  ga_options.observer = config.observer;
  ga_options.stop = config.stop;
  GaResult ga = run_ga(objective, rng, ga_options);

  // Account the plant changes.
  for (const Edge& e : installed) {
    if (ga.best.has_edge(e.u, e.v)) {
      ++result.links_kept;
    } else {
      ++result.links_removed;
    }
  }
  result.links_added = ga.best.num_edges() - result.links_kept;
  result.cost = ga.best_cost;
  result.network =
      build_network(ga.best, locations, populations, result.context.traffic,
                    base.overprovision);
  if (config.observer != nullptr) {
    RunSummary summary;
    summary.best_cost = ga.best_cost;
    summary.evaluations = ga.evaluations;
    summary.wall_ns = elapsed_ns(started);
    summary.stopped_early = ga.stopped_early;
    summary.stop_reason = ga.stop_reason;
    const EvalCacheStats cache = eval.inner().cache_stats();
    summary.cache_hits = cache.hits;
    summary.cache_misses = cache.misses;
    summary.cache_inserts = cache.inserts;
    summary.cache_evictions = cache.evictions;
    const DeltaStats& delta = eval.inner().delta_stats();
    summary.dsssp_hits = delta.hits;
    summary.dsssp_fallbacks = delta.fallbacks;
    summary.vertices_resettled = delta.vertices_resettled;
    config.observer->on_run_end(summary);
  }
  return result;
}

}  // namespace cold
