#include "geom/distance.h"

#include <stdexcept>
#include <utility>

namespace cold {

Matrix<double> distance_matrix(const std::vector<Point>& points) {
  const std::size_t n = points.size();
  Matrix<double> d = Matrix<double>::square(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dist = distance(points[i], points[j]);
      d(i, j) = dist;
      d(j, i) = dist;
    }
  }
  return d;
}

std::size_t nearest_point(const std::vector<Point>& points, const Point& from,
                          const std::vector<bool>& excluded) {
  if (excluded.size() != points.size()) {
    throw std::invalid_argument("nearest_point: excluded mask size mismatch");
  }
  std::size_t best = points.size();
  double best_dist = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (excluded[i]) continue;
    const double d = distance(points[i], from);
    if (best == points.size() || d < best_dist) {
      best = i;
      best_dist = d;
    }
  }
  return best;
}

namespace {

std::size_t& provider_dense_threshold() {
  static std::size_t threshold = 512;
  return threshold;
}

}  // namespace

std::size_t DistanceProvider::dense_auto_threshold() {
  return provider_dense_threshold();
}

void DistanceProvider::set_dense_auto_threshold(std::size_t n) {
  provider_dense_threshold() = n;
}

DistanceProvider::DistanceProvider(const Matrix<double>& dense)
    // Aliasing shared_ptr with an empty control block: a view, no ownership.
    : dense_(std::shared_ptr<const Matrix<double>>(
          std::shared_ptr<const Matrix<double>>(), &dense)),
      n_(dense.rows()) {
  if (dense.rows() != dense.cols()) {
    throw std::invalid_argument("DistanceProvider: matrix must be square");
  }
}

DistanceProvider::DistanceProvider(std::shared_ptr<const Matrix<double>> dense)
    : dense_(std::move(dense)), n_(dense_ != nullptr ? dense_->rows() : 0) {
  if (dense_ != nullptr && dense_->rows() != dense_->cols()) {
    throw std::invalid_argument("DistanceProvider: matrix must be square");
  }
}

DistanceProvider DistanceProvider::from_matrix(Matrix<double> dense) {
  return DistanceProvider(
      std::make_shared<const Matrix<double>>(std::move(dense)));
}

DistanceProvider DistanceProvider::from_points(std::vector<Point> points) {
  DistanceProvider p;
  p.n_ = points.size();
  if (p.n_ <= dense_auto_threshold()) {
    p.dense_ = std::make_shared<const Matrix<double>>(distance_matrix(points));
  }
  p.points_ =
      std::make_shared<const std::vector<Point>>(std::move(points));
  return p;
}

DistanceProvider::DistanceProvider(const DistanceProvider& other)
    : dense_(other.dense_), points_(other.points_), n_(other.n_) {}

DistanceProvider& DistanceProvider::operator=(const DistanceProvider& other) {
  dense_ = other.dense_;
  points_ = other.points_;
  n_ = other.n_;
  tiles_.clear();
  tile_clock_ = 0;
  return *this;
}

const double* DistanceProvider::row_view(std::size_t u) const {
  if (dense_ != nullptr) return dense_->data().data() + u * n_;
  // Matrix-free: serve from the LRU row tiles, recomputing on miss.
  Tile* victim = nullptr;
  for (Tile& t : tiles_) {
    if (t.stamp != 0 && t.row == u) {
      t.stamp = ++tile_clock_;
      return t.values.data();
    }
    if (victim == nullptr || t.stamp < victim->stamp) victim = &t;
  }
  if (tiles_.size() < kRowTiles) {
    tiles_.emplace_back();
    victim = &tiles_.back();
  }
  victim->row = u;
  victim->stamp = ++tile_clock_;
  victim->values.resize(n_);
  const std::vector<Point>& p = *points_;
  for (std::size_t j = 0; j < n_; ++j) {
    victim->values[j] = distance(p[u], p[j]);
  }
  return victim->values.data();
}

}  // namespace cold
