#include "geom/distance.h"

#include <stdexcept>

namespace cold {

Matrix<double> distance_matrix(const std::vector<Point>& points) {
  const std::size_t n = points.size();
  Matrix<double> d = Matrix<double>::square(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dist = distance(points[i], points[j]);
      d(i, j) = dist;
      d(j, i) = dist;
    }
  }
  return d;
}

std::size_t nearest_point(const std::vector<Point>& points, const Point& from,
                          const std::vector<bool>& excluded) {
  if (excluded.size() != points.size()) {
    throw std::invalid_argument("nearest_point: excluded mask size mismatch");
  }
  std::size_t best = points.size();
  double best_dist = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (excluded[i]) continue;
    const double d = distance(points[i], from);
    if (best == points.size() || d < best_dist) {
      best = i;
      best_dist = d;
    }
  }
  return best;
}

}  // namespace cold
