#include "geom/region.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cold {

Rectangle::Rectangle(double width, double height)
    : width_(width), height_(height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Rectangle: dimensions must be > 0");
  }
}

Rectangle Rectangle::with_aspect_ratio(double aspect) {
  if (aspect <= 0) {
    throw std::invalid_argument("Rectangle: aspect ratio must be > 0");
  }
  // width / height == aspect, width * height == 1.
  const double height = 1.0 / std::sqrt(aspect);
  return Rectangle(aspect * height, height);
}

bool Rectangle::contains(const Point& p) const {
  return p.x >= 0 && p.x <= width_ && p.y >= 0 && p.y <= height_;
}

Point Rectangle::clamp(const Point& p) const {
  return Point{std::clamp(p.x, 0.0, width_), std::clamp(p.y, 0.0, height_)};
}

double Rectangle::diameter() const { return std::hypot(width_, height_); }

}  // namespace cold
