// 2D points for PoP locations.
#pragma once

#include <cmath>

namespace cold {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Euclidean distance between two PoP locations.
inline double distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

}  // namespace cold
