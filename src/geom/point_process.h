// Spatial point processes for PoP locations (paper §3.1).
//
// The default model is n i.i.d. uniform points on the unit square (a 2D
// Poisson process conditioned on the count). The paper also experimented
// with "bursty" (clustered) locations; ClusteredProcess implements a
// Matérn-style cluster process conditioned on the total count, used by the
// context-sensitivity ablation (§7).
#pragma once

#include <memory>
#include <vector>

#include "geom/point.h"
#include "geom/region.h"
#include "util/rng.h"

namespace cold {

/// Interface for PoP location models. Implementations must place exactly
/// `n` points inside `region`.
class PointProcess {
 public:
  virtual ~PointProcess() = default;
  virtual std::vector<Point> sample(std::size_t n, const Rectangle& region,
                                    Rng& rng) const = 0;
};

/// n i.i.d. uniform points — the paper's default context model.
class UniformProcess final : public PointProcess {
 public:
  std::vector<Point> sample(std::size_t n, const Rectangle& region,
                            Rng& rng) const override;
};

/// Matérn-style cluster process conditioned on the total point count:
/// cluster centres are uniform, each point picks a centre (weighted by a
/// Poisson-drawn size) and is offset by an isotropic Gaussian with the
/// given spread. Larger `burstiness` (smaller spread, fewer clusters) makes
/// locations more clumped.
class ClusteredProcess final : public PointProcess {
 public:
  /// `clusters`: number of cluster centres (>= 1).
  /// `spread`: std-dev of the Gaussian offset, in region units (> 0).
  ClusteredProcess(std::size_t clusters, double spread);

  std::vector<Point> sample(std::size_t n, const Rectangle& region,
                            Rng& rng) const override;

 private:
  std::size_t clusters_;
  double spread_;
};

/// Fixed, user-supplied locations (e.g. real city coordinates). Sampling
/// returns the first n stored points; throws if fewer are available.
class FixedLocations final : public PointProcess {
 public:
  explicit FixedLocations(std::vector<Point> points);

  std::vector<Point> sample(std::size_t n, const Rectangle& region,
                            Rng& rng) const override;

 private:
  std::vector<Point> points_;
};

}  // namespace cold
