#include "geom/point_process.h"

#include <stdexcept>

namespace cold {

std::vector<Point> UniformProcess::sample(std::size_t n,
                                          const Rectangle& region,
                                          Rng& rng) const {
  std::vector<Point> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(Point{rng.uniform(0.0, region.width()),
                           rng.uniform(0.0, region.height())});
  }
  return points;
}

ClusteredProcess::ClusteredProcess(std::size_t clusters, double spread)
    : clusters_(clusters), spread_(spread) {
  if (clusters == 0) {
    throw std::invalid_argument("ClusteredProcess: need >= 1 cluster");
  }
  if (spread <= 0) {
    throw std::invalid_argument("ClusteredProcess: spread must be > 0");
  }
}

std::vector<Point> ClusteredProcess::sample(std::size_t n,
                                            const Rectangle& region,
                                            Rng& rng) const {
  // Cluster centres, uniform over the region.
  std::vector<Point> centres;
  centres.reserve(clusters_);
  for (std::size_t c = 0; c < clusters_; ++c) {
    centres.push_back(Point{rng.uniform(0.0, region.width()),
                            rng.uniform(0.0, region.height())});
  }
  // Random cluster weights (Poisson sizes, floored at 1 so every centre is
  // reachable) make cluster occupancy itself bursty.
  std::vector<double> weights(clusters_);
  for (auto& w : weights) {
    w = static_cast<double>(std::max(1, rng.poisson(3.0)));
  }
  std::vector<Point> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point& centre = centres[rng.weighted_index(weights)];
    const Point raw{centre.x + spread_ * rng.normal(),
                    centre.y + spread_ * rng.normal()};
    points.push_back(region.clamp(raw));
  }
  return points;
}

FixedLocations::FixedLocations(std::vector<Point> points)
    : points_(std::move(points)) {}

std::vector<Point> FixedLocations::sample(std::size_t n,
                                          const Rectangle& region, Rng&) const {
  if (n > points_.size()) {
    throw std::invalid_argument(
        "FixedLocations: fewer stored points than requested");
  }
  std::vector<Point> out(points_.begin(),
                         points_.begin() + static_cast<std::ptrdiff_t>(n));
  for (const Point& p : out) {
    if (!region.contains(p)) {
      throw std::invalid_argument("FixedLocations: point outside region");
    }
  }
  return out;
}

}  // namespace cold
