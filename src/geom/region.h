// Regions on which PoP locations are placed.
//
// The paper's default is the unit square (§3.1), but it also reports
// experiments with rectangles of different aspect ratios; Rectangle supports
// both. Area is normalized so that cost parameters stay comparable across
// aspect ratios.
#pragma once

#include "geom/point.h"

namespace cold {

/// An axis-aligned rectangle [0,w] x [0,h].
class Rectangle {
 public:
  /// Unit square.
  Rectangle() : width_(1.0), height_(1.0) {}

  /// Rectangle of the given dimensions; both must be > 0.
  Rectangle(double width, double height);

  /// Rectangle with the given aspect ratio (width : height) and unit area,
  /// so networks over different shapes have comparable link lengths.
  static Rectangle with_aspect_ratio(double aspect);

  double width() const { return width_; }
  double height() const { return height_; }
  double area() const { return width_ * height_; }

  bool contains(const Point& p) const;

  /// Clamps a point into the region (used by the bursty process, whose
  /// cluster offsets can fall outside).
  Point clamp(const Point& p) const;

  /// Length of the diagonal — the maximum possible link length, used by the
  /// Waxman baseline.
  double diameter() const;

 private:
  double width_;
  double height_;
};

}  // namespace cold
