// Pairwise Euclidean distance matrices for PoP locations.
#pragma once

#include <vector>

#include "geom/point.h"
#include "util/matrix.h"

namespace cold {

/// Symmetric n x n matrix of Euclidean distances; zero diagonal.
Matrix<double> distance_matrix(const std::vector<Point>& points);

/// Index of the point in `points` closest to `from`, excluding indices for
/// which `excluded[i]` is true. Returns points.size() if all are excluded.
/// Deterministic tie-break: lowest index wins.
std::size_t nearest_point(const std::vector<Point>& points, const Point& from,
                          const std::vector<bool>& excluded);

}  // namespace cold
