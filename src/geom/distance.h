// Pairwise Euclidean distances for PoP locations — dense matrices for small
// instances and an on-demand provider for matrix-free evaluation at scale.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "geom/point.h"
#include "util/matrix.h"

namespace cold {

/// Symmetric n x n matrix of Euclidean distances; zero diagonal.
Matrix<double> distance_matrix(const std::vector<Point>& points);

/// Index of the point in `points` closest to `from`, excluding indices for
/// which `excluded[i]` is true. Returns points.size() if all are excluded.
/// Deterministic tie-break: lowest index wins.
std::size_t nearest_point(const std::vector<Point>& points, const Point& from,
                          const std::vector<bool>& excluded);

/// The evaluation engine's distance oracle: answers lengths(i, j) either
/// from a materialized dense matrix or on demand from PoP coordinates.
///
/// Exactness: the dense matrix is itself built entry-by-entry from
/// distance(points[i], points[j]) (std::hypot, exactly symmetric under
/// argument swap), so on-demand recomputation returns the *bit-identical*
/// double a stored matrix would — switching representations can never move
/// a routing tie-break or a cost.
///
/// Construction modes:
///   - from_points(pts): coordinate-backed. Auto-materializes the dense
///     matrix only when n <= dense_auto_threshold() (mirroring
///     Topology::dense_auto_threshold), so small instances keep the dense
///     fast path and every existing bit-identity gate, while large n stays
///     O(n) resident.
///   - from a Matrix<double>: dense, always. The implicit lvalue-reference
///     form is a non-owning view (the caller's matrix must outlive the
///     provider) so legacy call sites passing a bare matrix keep working;
///     the owning forms share the matrix across copies.
///
/// Copies share the immutable core (points / dense matrix) but never a
/// mutable cache, so cloned Evaluators can use their copies from distinct
/// threads. One instance is single-threaded, like Evaluator: row_view() serves
/// whole rows from a small LRU tile cache of recomputed rows, which mutates
/// internal state.
class DistanceProvider {
 public:
  DistanceProvider() = default;

  /// Non-owning dense view (implicit, for legacy Matrix call sites). The
  /// referenced matrix must outlive every copy of this provider.
  DistanceProvider(const Matrix<double>& dense);  // NOLINT(runtime/explicit)

  /// Owning dense provider (shared across copies).
  explicit DistanceProvider(std::shared_ptr<const Matrix<double>> dense);

  /// Coordinate-backed provider; materializes the dense matrix only when
  /// points.size() <= dense_auto_threshold().
  static DistanceProvider from_points(std::vector<Point> points);

  /// Owning dense provider from a matrix rvalue/copy.
  static DistanceProvider from_matrix(Matrix<double> dense);

  // Copies share the immutable core; tile caches are never shared.
  DistanceProvider(const DistanceProvider& other);
  DistanceProvider& operator=(const DistanceProvider& other);
  DistanceProvider(DistanceProvider&&) = default;
  DistanceProvider& operator=(DistanceProvider&&) = default;

  /// Distance between PoPs i and j. Dense lookup when materialized, else
  /// one hypot from coordinates — bit-identical either way.
  double operator()(std::size_t i, std::size_t j) const {
    if (dense_ != nullptr) return (*dense_)(i, j);
    const std::vector<Point>& p = *points_;
    return distance(p[i], p[j]);
  }

  std::size_t rows() const { return n_; }
  std::size_t cols() const { return n_; }
  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// True when a dense n^2 matrix is resident (small n, or matrix-built).
  bool has_dense() const { return dense_ != nullptr; }

  /// The materialized matrix; requires has_dense().
  const Matrix<double>& dense() const { return *dense_; }

  /// Contiguous row for the dense blocked kernel; requires has_dense().
  const double* dense_row(std::size_t u) const {
    return dense_->data().data() + u * n_;
  }

  /// Contiguous row u, always available: the dense row when materialized,
  /// otherwise a recomputed row served from a small LRU tile cache (for
  /// whole-row consumers: MST seeding, component stitching, hub
  /// heuristics). Mutates the cache — single-threaded per instance.
  const double* row_view(std::size_t u) const;

  /// Backing coordinates, or nullptr for matrix-built providers.
  const std::vector<Point>* points() const { return points_.get(); }

  /// True iff both providers alias the same immutable core (how clones
  /// share the context without a deep copy). Exposed for tests.
  bool shares_core_with(const DistanceProvider& other) const {
    return (dense_ != nullptr && dense_ == other.dense_) ||
           (points_ != nullptr && points_ == other.points_);
  }

  /// Largest n for which from_points materializes the dense matrix
  /// (default 512, mirroring Topology::dense_auto_threshold; 0 keeps every
  /// coordinate-backed provider matrix-free, which tests use to exercise
  /// the on-demand path at small n).
  static std::size_t dense_auto_threshold();
  static void set_dense_auto_threshold(std::size_t n);

 private:
  struct Tile {
    std::size_t row = 0;
    std::uint64_t stamp = 0;  ///< LRU clock; 0 marks an empty tile
    std::vector<double> values;
  };

  static constexpr std::size_t kRowTiles = 8;  ///< cached rows per instance

  std::shared_ptr<const Matrix<double>> dense_;   ///< null when matrix-free
  std::shared_ptr<const std::vector<Point>> points_;  ///< null for dense views
  std::size_t n_ = 0;

  mutable std::vector<Tile> tiles_;  ///< row cache (matrix-free mode only)
  mutable std::uint64_t tile_clock_ = 0;
};

}  // namespace cold
