// The Genetic Algorithm that solves COLD's topology optimization (paper §4).
//
// Each candidate topology is an adjacency matrix. A generation is built from
// (a) the best `num_saved` survivors, (b) `num_crossover` children of
// tournament-selected parents, and (c) `num_mutation` mutants of
// inverse-cost-selected individuals. Offspring are repaired to connectivity
// before scoring. The initial population contains the distance-MST, the full
// mesh, any caller-provided seed topologies (this is the "initialized GA" of
// Fig 3 when seeded with the greedy heuristics' outputs), and Erdős–Rényi
// fillers.
#pragma once

#include <cstdint>
#include <vector>

#include "cost/evaluator.h"
#include "ga/objective.h"
#include "graph/topology.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cold {

struct GaConfig {
  std::size_t population = 100;   ///< M (paper default 100)
  std::size_t generations = 100;  ///< T (paper default 100)

  /// Per-generation composition. If all three are zero they are derived as
  /// saved = max(1, M/10), mutation = 3M/10, crossover = the remainder.
  std::size_t num_saved = 0;
  std::size_t num_crossover = 0;
  std::size_t num_mutation = 0;

  std::size_t parents_a = 2;      ///< parents kept per crossover (paper: 2)
  std::size_t tournament_b = 10;  ///< candidates per tournament (paper: 10)

  /// Probability that a mutation is the node->leaf kind (vs link mutation).
  double node_mutation_prob = 0.5;

  /// Link probability for the random initial topologies; 0 picks
  /// ~2.5/(n-1), aiming p*C(n,2) at the typical optimal link count (§4.1).
  double init_link_prob = 0.0;

  bool include_mst_seed = true;
  bool include_clique_seed = true;

  /// Worker threads for offspring repair + scoring (the hot path: one
  /// Dijkstra sweep per candidate). 0 = all hardware threads, 1 = fully
  /// sequential. Every setting yields bit-identical results: variation
  /// decisions are drawn sequentially from the single Rng, and scoring is
  /// RNG-free with results written to per-offspring slots.
  ParallelConfig parallel;

  /// Score each distinct topology once per scoring pass: candidates are
  /// grouped by Zobrist fingerprint — merged only after full adjacency
  /// equality confirms the edge sets match, so colliding fingerprints never
  /// conflate two topologies — with the already-scored elites seeding the
  /// groups; one representative per group is repaired and scored and its
  /// result fanned out to the duplicates. Exact: identical pre-repair
  /// topologies repair and score identically, and duplicates are still
  /// charged as evaluations, so trajectories, budgets and logical traces
  /// are bit-identical with dedup on or off (--dedup on the CLI).
  bool dedup = false;

  /// Route each offspring to the worker whose delta-engine state store
  /// retains its parent's routing state (ThreadPool::parallel_for_assigned;
  /// idle workers steal, so a skewed assignment never serializes). Exact:
  /// every worker clone returns bit-identical costs, so routing — and any
  /// steal interleaving — changes which clone evaluates an item and the
  /// delta hit rate, never trajectories. Ignored (plain dynamic scheduling)
  /// when the objective reports no delta engine. --affinity on the CLI.
  bool affinity = true;

  /// Returns a copy with derived fields resolved and validated; throws
  /// std::invalid_argument on inconsistent settings.
  GaConfig resolved() const;
};

struct GaResult {
  Topology best;                         ///< lowest-cost topology found
  double best_cost = 0.0;
  std::vector<double> best_cost_history; ///< best cost after each generation
  std::vector<Topology> final_population;
  std::vector<double> final_costs;       ///< aligned with final_population
  std::size_t repairs = 0;               ///< offspring needing connectivity repair
  std::size_t links_repaired = 0;        ///< links added by repairs
  std::size_t evaluations = 0;           ///< objective evaluations consumed
  std::size_t dedup_skipped = 0;         ///< of those, served by dedup fan-out
  std::size_t generations_run = 0;       ///< completed generations
  bool stopped_early = false;            ///< a StopCondition fired
  StopReason stop_reason = StopReason::kNone;

  /// Per-scorer-worker delta-engine counters, snapshotted before the clone
  /// merge (worker 0 = the primary objective). Empty when the objective has
  /// no delta engine. Scheduling-dependent — which worker serves a hit can
  /// vary with steal timing — so these are reported like timing data; the
  /// aggregate telemetry counters remain exact sums.
  std::vector<DeltaStats> worker_delta;
  /// Scoring items executed off their preferred worker's queue (0 when
  /// affinity scheduling never engaged). Scheduling-dependent, like
  /// worker_delta.
  std::uint64_t steals = 0;
};

/// Everything one GA invocation needs beyond the objective and the RNG —
/// the single entry point that replaced the growing positional-argument
/// overload set.
struct GaRunOptions {
  GaConfig config;

  /// Injected into the initial population (truncated if more than
  /// `config.population`); the result is never worse than the best seed.
  std::vector<Topology> seeds;

  /// Borrowed; may be null. Receives one GenerationEnd per generation,
  /// emitted from the sequential section after the parallel scoring join —
  /// the logical event stream is identical for any `config.parallel`.
  RunObserver* observer = nullptr;

  /// Borrowed; may be null. Checked at generation boundaries: when it
  /// fires, the run stops and returns a valid partial result (the counters
  /// and population of the generations that did complete). Evaluations are
  /// charged to the condition as they happen.
  StopCondition* stop = nullptr;
};

/// Runs the GA against an arbitrary objective. Deterministic given `rng`,
/// independent of `options.config.parallel`: offspring are generated
/// sequentially from the Rng, then repaired and scored in parallel on
/// per-thread objective clones (sequentially if the objective is not
/// cloneable).
GaResult run_ga(Objective& objective, Rng& rng, const GaRunOptions& options);

/// Convenience overload for the standard cost model (paper eq. (2)).
GaResult run_ga(Evaluator& eval, Rng& rng, const GaRunOptions& options);

/// The grouping pass behind GaConfig::dedup, exposed for testing. Returns
/// `rep_of` where rep_of[i] == i for group representatives (and for every
/// i < begin — the already-scored elites that seed the groups) and
/// rep_of[i] == j < i when gs[i] has the same edge set as gs[j].
/// `fingerprints[i]` must describe gs[i] (taking them as a parameter lets
/// tests forge colliding fingerprints); candidates whose fingerprints match
/// are merged only after gs[i] == gs[j] confirms the topologies are equal.
/// Deterministic: groups form in index order, independent of threads.
std::vector<std::size_t> dedup_representatives(
    const std::vector<Topology>& gs,
    const std::vector<std::uint64_t>& fingerprints, std::size_t begin);

/// Deprecated positional-argument wrappers (pre-telemetry API). They
/// forward to the GaRunOptions entry point with no observer and no stop
/// condition; prefer run_ga(objective, rng, {.config = ..., .seeds = ...}).
GaResult run_ga(Objective& objective, const GaConfig& config, Rng& rng,
                const std::vector<Topology>& seeds = {});
GaResult run_ga(Evaluator& eval, const GaConfig& config, Rng& rng,
                const std::vector<Topology>& seeds = {});

}  // namespace cold
