#include "ga/operators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace cold {

namespace {

// Inverse-cost weights; infeasible (infinite-cost) entries get weight 0.
// If every entry is infeasible, fall back to uniform weights.
std::vector<double> inverse_cost_weights(const std::vector<double>& costs) {
  std::vector<double> w(costs.size(), 0.0);
  bool any = false;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    if (std::isfinite(costs[i]) && costs[i] > 0.0) {
      w[i] = 1.0 / costs[i];
      any = true;
    }
  }
  if (!any) std::fill(w.begin(), w.end(), 1.0);
  return w;
}

}  // namespace

std::vector<std::size_t> select_parents(const std::vector<double>& costs,
                                        std::size_t a, std::size_t b,
                                        Rng& rng) {
  const std::size_t m = costs.size();
  if (a < 1 || a > b || b > m) {
    throw std::invalid_argument("select_parents: need 1 <= a <= b <= M");
  }
  // Draw b distinct candidates (partial Fisher-Yates over indices).
  std::vector<std::size_t> idx(m);
  for (std::size_t i = 0; i < m; ++i) idx[i] = i;
  for (std::size_t i = 0; i < b; ++i) {
    std::swap(idx[i], idx[i + rng.uniform_index(m - i)]);
  }
  idx.resize(b);
  // Keep the a lowest-cost candidates (stable for determinism).
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t x, std::size_t y) {
    return costs[x] < costs[y];
  });
  idx.resize(a);
  return idx;
}

Topology crossover(const std::vector<const Topology*>& parents,
                   const std::vector<double>& parent_costs, Rng& rng) {
  if (parents.empty() || parents.size() != parent_costs.size()) {
    throw std::invalid_argument("crossover: bad parent set");
  }
  const std::size_t n = parents.front()->num_nodes();
  for (const Topology* p : parents) {
    if (p == nullptr || p->num_nodes() != n) {
      throw std::invalid_argument("crossover: parent size mismatch");
    }
  }
  const std::vector<double> weights = inverse_cost_weights(parent_costs);
  Topology child(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      const Topology& donor = *parents[rng.weighted_index(weights)];
      if (donor.has_edge(i, j)) child.add_edge(i, j);
    }
  }
  return child;
}

std::size_t link_mutation(Topology& g, Rng& rng) {
  const std::size_t n = g.num_nodes();
  const std::size_t max_links = n * (n - 1) / 2;
  const auto want_remove = static_cast<std::size_t>(rng.geometric(0.5));
  const auto want_add = static_cast<std::size_t>(rng.geometric(0.5));

  std::size_t changed = 0;
  // Removals: sample uniformly among existing links.
  const std::size_t removals = std::min(want_remove, g.num_edges());
  for (std::size_t r = 0; r < removals; ++r) {
    const auto edges = g.edges();
    const Edge e = edges[rng.uniform_index(edges.size())];
    g.remove_edge(e.u, e.v);
    ++changed;
  }
  // Additions: sample uniformly among absent links by index into the
  // complement (rejection sampling is fine; the complement is never small
  // in practice, but fall back to full enumeration if it is).
  std::size_t additions = std::min(want_add, max_links - g.num_edges());
  while (additions > 0) {
    const std::size_t absent = max_links - g.num_edges();
    if (absent == 0) break;
    if (absent * 4 >= max_links) {  // plenty of room: rejection-sample
      const NodeId i = rng.uniform_index(n);
      const NodeId j = rng.uniform_index(n);
      if (i == j || g.has_edge(i, j)) continue;
      g.add_edge(i, j);
    } else {  // dense graph: enumerate the complement
      std::vector<Edge> missing;
      missing.reserve(absent);
      for (NodeId i = 0; i < n; ++i) {
        for (NodeId j = i + 1; j < n; ++j) {
          if (!g.has_edge(i, j)) missing.push_back(Edge{i, j});
        }
      }
      const Edge e = missing[rng.uniform_index(missing.size())];
      g.add_edge(e.u, e.v);
    }
    --additions;
    ++changed;
  }
  return changed;
}

bool node_mutation(Topology& g, const DistanceProvider& lengths, Rng& rng) {
  const std::size_t n = g.num_nodes();
  std::vector<NodeId> non_leaves;
  for (NodeId v = 0; v < n; ++v) {
    if (g.degree(v) > 1) non_leaves.push_back(v);
  }
  if (non_leaves.size() < 2) return false;  // need a target hub to attach to
  const NodeId victim = non_leaves[rng.uniform_index(non_leaves.size())];
  // Closest *other* non-leaf node becomes the new single attachment point.
  NodeId target = n;
  for (NodeId h : non_leaves) {
    if (h == victim) continue;
    if (target == n || lengths(victim, h) < lengths(victim, target)) target = h;
  }
  // neighbors() is a live view: detach via front() so the span is re-fetched
  // after each mutation.
  while (g.degree(victim) > 0) {
    g.remove_edge(victim, g.neighbors(victim).front());
  }
  g.add_edge(victim, target);
  return true;
}

std::size_t inverse_cost_index(const std::vector<double>& costs, Rng& rng) {
  return rng.weighted_index(inverse_cost_weights(costs));
}

}  // namespace cold
