// Connectedness repair for GA offspring (paper §4.1.3).
//
// Crossover and mutation can disconnect a candidate. COLD finds the
// connected components, the shortest physical link between each pair of
// components, and adds the minimum (distance) spanning tree over components.
#pragma once

#include "geom/distance.h"
#include "graph/topology.h"
#include "util/matrix.h"

namespace cold {

/// Makes `g` connected by the paper's component-MST rule. Returns the number
/// of links added (0 when already connected).
std::size_t repair_connectivity(Topology& g, const DistanceProvider& lengths);

}  // namespace cold
