// Objective abstraction for the GA.
//
// The standard objective is cost/Evaluator (the paper's eq. (2)), but
// extensions add terms — e.g. the growth module charges for decommissioning
// installed links. run_ga() optimizes any Objective.
#pragma once

#include "cost/evaluator.h"
#include "graph/topology.h"
#include "util/matrix.h"

namespace cold {

class Objective {
 public:
  virtual ~Objective() = default;

  /// Cost of a candidate; +infinity when infeasible.
  virtual double cost(const Topology& g) = 0;

  /// Physical PoP distances (used for repair, MST seeding, node mutation).
  virtual const Matrix<double>& lengths() const = 0;

  std::size_t num_nodes() const { return lengths().rows(); }
};

/// Adapts the standard Evaluator (does not own it).
class EvaluatorObjective final : public Objective {
 public:
  explicit EvaluatorObjective(Evaluator& eval) : eval_(&eval) {}
  double cost(const Topology& g) override { return eval_->cost(g); }
  const Matrix<double>& lengths() const override { return eval_->lengths(); }

 private:
  Evaluator* eval_;
};

}  // namespace cold
