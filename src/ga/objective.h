// Objective abstraction for the GA.
//
// The standard objective is cost/Evaluator (the paper's eq. (2)), but
// extensions add terms — e.g. the growth module charges for decommissioning
// installed links. run_ga() optimizes any Objective.
//
// Objectives that support clone() participate in the parallel evaluation
// engine: run_ga makes one clone per worker thread and scores offspring
// concurrently (clones must be safe to call from distinct threads while the
// original is used on the calling thread). Objectives that return nullptr
// from clone() are simply scored sequentially — parallelism is an
// optimization, never a requirement.
#pragma once

#include <memory>
#include <utility>

#include "cost/evaluator.h"
#include "graph/topology.h"
#include "util/matrix.h"

namespace cold {

class Objective {
 public:
  virtual ~Objective() = default;

  /// Cost of a candidate; +infinity when infeasible.
  virtual double cost(const Topology& g) = 0;

  /// Physical PoP distances (used for repair, MST seeding, node mutation).
  /// A DistanceProvider: dense-backed at small n, matrix-free at scale.
  virtual const DistanceProvider& lengths() const = 0;

  /// A thread-private copy for parallel scoring, or nullptr if this
  /// objective cannot be cloned (the caller then falls back to sequential
  /// evaluation).
  virtual std::unique_ptr<Objective> clone() const { return nullptr; }

  /// Folds a clone's statistics (e.g. evaluation counts) back into this
  /// objective after a parallel phase. No-op by default.
  virtual void merge_from(Objective& /*worker*/) {}

  /// Charges `n` evaluations that the GA's generation-level dedup served by
  /// fanning out an already-computed cost instead of calling cost(). Keeps
  /// evaluation counters — and therefore budgets and traces — identical
  /// whether dedup is on or off. No-op by default (objectives that don't
  /// count evaluations have nothing to charge).
  virtual void charge_duplicates(std::size_t /*n*/) {}

  /// Fingerprint of the topology the next cost() argument was derived from
  /// (the GA records each offspring's parent during variation). Purely a
  /// performance hint for the delta evaluation engine; see
  /// Evaluator::set_parent_hint. No-op by default.
  virtual void set_parent_hint(std::uint64_t /*fingerprint*/) {}

  /// This objective's delta-engine counters, or nullptr when it has no
  /// active delta engine. Non-null tells the GA scorer that parent-state
  /// affinity routing can pay off on this objective, and lets it report
  /// per-worker hit/fallback counts. Counters accumulate until the next
  /// merge_from() folds them away.
  virtual const DeltaStats* delta_stats() const { return nullptr; }

  std::size_t num_nodes() const { return lengths().rows(); }
};

/// Adapts the standard Evaluator. Borrows the caller's evaluator by
/// default; clones own a private Evaluator (sharing the context matrices)
/// whose evaluation count merge_from() folds back into the original.
class EvaluatorObjective final : public Objective {
 public:
  explicit EvaluatorObjective(Evaluator& eval) : eval_(&eval) {}
  explicit EvaluatorObjective(Evaluator&& owned)
      : owned_(std::make_unique<Evaluator>(std::move(owned))),
        eval_(owned_.get()) {}

  double cost(const Topology& g) override {
    // The hint buffered by set_parent_hint() rides along in the request —
    // the adapter owns the one-shot semantics, not the evaluator.
    EvalRequest req;
    req.parent_hint = std::exchange(hint_, 0);
    return eval_->evaluate(g, req).total();
  }
  const DistanceProvider& lengths() const override {
    return eval_->lengths();
  }

  std::unique_ptr<Objective> clone() const override {
    return std::make_unique<EvaluatorObjective>(eval_->clone());
  }

  void merge_from(Objective& worker) override {
    if (auto* w = dynamic_cast<EvaluatorObjective*>(&worker)) {
      eval_->merge_stats(*w->eval_);
    }
  }

  void charge_duplicates(std::size_t n) override {
    eval_->charge_duplicates(n);
  }

  void set_parent_hint(std::uint64_t fingerprint) override {
    hint_ = fingerprint;
  }

  const DeltaStats* delta_stats() const override {
    return eval_->delta_store() != nullptr ? &eval_->delta_stats() : nullptr;
  }

  Evaluator& evaluator() { return *eval_; }

 private:
  std::unique_ptr<Evaluator> owned_;  ///< set only for clones
  Evaluator* eval_;
  std::uint64_t hint_ = 0;  ///< buffered parent hint for the next cost()
};

}  // namespace cold
