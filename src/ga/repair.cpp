#include "ga/repair.h"

#include "graph/algorithms.h"

namespace cold {

std::size_t repair_connectivity(Topology& g, const Matrix<double>& lengths) {
  return connect_components(g, lengths);
}

}  // namespace cold
