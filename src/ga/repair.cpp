#include "ga/repair.h"

#include "graph/algorithms.h"

namespace cold {

std::size_t repair_connectivity(Topology& g, const DistanceProvider& lengths) {
  return connect_components(g, lengths);
}

}  // namespace cold
