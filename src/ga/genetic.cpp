#include "ga/genetic.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "ga/operators.h"
#include "ga/repair.h"
#include "graph/algorithms.h"
#include "util/thread_pool.h"

namespace cold {

GaConfig GaConfig::resolved() const {
  GaConfig c = *this;
  if (c.population < 2) {
    throw std::invalid_argument("GaConfig: population must be >= 2");
  }
  if (c.generations == 0) {
    throw std::invalid_argument("GaConfig: generations must be >= 1");
  }
  if (c.num_saved == 0 && c.num_crossover == 0 && c.num_mutation == 0) {
    c.num_saved = std::max<std::size_t>(1, c.population / 10);
    c.num_mutation = 3 * c.population / 10;
    c.num_crossover = c.population - c.num_saved - c.num_mutation;
  }
  if (c.num_saved + c.num_crossover + c.num_mutation != c.population) {
    throw std::invalid_argument(
        "GaConfig: saved + crossover + mutation must equal population");
  }
  if (c.num_saved == 0) {
    throw std::invalid_argument("GaConfig: need num_saved >= 1 (elitism)");
  }
  // Clamp the tournament to the population *before* validating parents_a:
  // a tournament can never inspect more individuals than exist, but a
  // parents_a that exceeds the clamped tournament is a configuration error,
  // not something to silently shrink.
  c.tournament_b = std::min(c.tournament_b, c.population);
  if (c.parents_a < 1 || c.parents_a > c.tournament_b) {
    throw std::invalid_argument(
        "GaConfig: need 1 <= parents_a <= tournament_b (after clamping "
        "tournament_b to population)");
  }
  if (c.node_mutation_prob < 0.0 || c.node_mutation_prob > 1.0) {
    throw std::invalid_argument("GaConfig: node_mutation_prob outside [0,1]");
  }
  if (c.init_link_prob < 0.0 || c.init_link_prob > 1.0) {
    throw std::invalid_argument("GaConfig: init_link_prob outside [0,1]");
  }
  return c;
}

namespace {

std::vector<Topology> initial_population(Objective& eval, const GaConfig& cfg,
                                         Rng& rng,
                                         const std::vector<Topology>& seeds) {
  const std::size_t n = eval.num_nodes();
  std::vector<Topology> pop;
  pop.reserve(cfg.population);
  if (cfg.include_mst_seed) {
    pop.push_back(minimum_spanning_tree(eval.lengths()));
  }
  if (cfg.include_clique_seed && pop.size() < cfg.population) {
    pop.push_back(Topology::complete(n));
  }
  for (const Topology& s : seeds) {
    if (pop.size() >= cfg.population) break;
    if (s.num_nodes() != n) {
      throw std::invalid_argument("run_ga: seed topology size mismatch");
    }
    pop.push_back(s);
  }
  const double p = cfg.init_link_prob > 0.0
                       ? cfg.init_link_prob
                       : std::min(1.0, 2.5 / static_cast<double>(n - 1));
  while (pop.size() < cfg.population) {
    Topology g(n);
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        if (rng.bernoulli(p)) g.add_edge(i, j);
      }
    }
    pop.push_back(std::move(g));
  }
  return pop;
}

/// The parallel scoring stage of the generate-then-score pipeline. Owns the
/// pool and the per-worker objective clones; worker 0 is the calling thread
/// using the primary objective, so one configured thread reproduces the
/// sequential engine exactly (same objects, same call order).
class ParallelScorer {
 public:
  ParallelScorer(Objective& primary, std::size_t num_threads, bool dedup,
                 bool affinity)
      : primary_(primary), dedup_(dedup), affinity_(affinity) {
    objectives_.push_back(&primary);
    for (std::size_t w = 1; w < num_threads; ++w) {
      std::unique_ptr<Objective> c = primary.clone();
      if (!c) {  // not cloneable: fall back to sequential scoring
        clones_.clear();
        objectives_.resize(1);
        break;
      }
      objectives_.push_back(c.get());
      clones_.push_back(std::move(c));
    }
    pool_ = std::make_unique<ThreadPool>(objectives_.size());
  }

  ~ParallelScorer() {
    // Fold clone statistics (evaluation counts) back into the primary.
    for (auto& c : clones_) primary_.merge_from(*c);
  }

  /// Snapshots the per-worker delta-engine counters into `result` — must
  /// run before destruction folds the clones' counters into the primary.
  void finalize(GaResult& result) const {
    result.worker_delta.clear();
    if (objectives_[0]->delta_stats() == nullptr) return;
    result.worker_delta.reserve(objectives_.size());
    for (const Objective* o : objectives_) {
      const DeltaStats* s = o->delta_stats();
      result.worker_delta.push_back(s != nullptr ? *s : DeltaStats{});
    }
  }

  /// Repairs and scores items [begin, size) of `gs` into `costs`, updating
  /// the result's repair/evaluation counters. Deterministic: each slot is
  /// written by exactly one task and counters are summed after the join.
  /// `hints` (nullable, aligned with `gs`) carries each offspring's parent
  /// fingerprint to the worker's objective — the delta evaluation engine's
  /// probe hint; exactness never depends on it. Repair reads distances
  /// through the *worker's* provider (each clone owns a private row-tile
  /// cache; a shared matrix-free provider would race in row_view) — same
  /// core, bit-identical doubles, so results are unaffected.
  void score(std::vector<Topology>& gs, std::vector<double>& costs,
             std::size_t begin, GaResult& result,
             const std::vector<std::uint64_t>* hints = nullptr) {
    if (dedup_) {
      score_dedup(gs, costs, begin, result, hints);
      return;
    }
    struct Counters {
      std::size_t repairs = 0;
      std::size_t links_repaired = 0;
      std::size_t evaluations = 0;
    };
    std::vector<Counters> per_worker(objectives_.size());
    const auto body = [&](std::size_t i, std::size_t w) {
      const std::size_t added =
          repair_connectivity(gs[i], objectives_[w]->lengths());
      if (added > 0) {
        ++per_worker[w].repairs;
        per_worker[w].links_repaired += added;
      }
      ++per_worker[w].evaluations;
      if (hints != nullptr) objectives_[w]->set_parent_hint((*hints)[i]);
      costs[i] = objectives_[w]->cost(gs[i]);
      executor_[i] = static_cast<std::uint32_t>(w);  // slot-owned
    };
    if (affinity_active()) {
      executor_.assign(gs.size(), 0);
      build_queues(gs.size(), begin,
                   [&](std::size_t i) {
                     return hints != nullptr ? (*hints)[i] : 0;
                   });
      pool_->parallel_for_assigned(queues_, body, &steal_stats_);
      result.steals += steal_stats_.total_stolen();
      for (std::size_t i = begin; i < gs.size(); ++i) {
        record_executor(gs[i], costs[i], executor_[i]);
      }
    } else {
      executor_.assign(gs.size(), 0);
      pool_->parallel_for(begin, gs.size(), body);
    }
    for (const Counters& c : per_worker) {
      result.repairs += c.repairs;
      result.links_repaired += c.links_repaired;
      result.evaluations += c.evaluations;
    }
    clear_hints();
  }

 private:
  /// Affinity pays off only when there is retained state to hit and more
  /// than one worker to route between.
  bool affinity_active() const {
    return affinity_ && objectives_.size() > 1 &&
           objectives_[0]->delta_stats() != nullptr;
  }

  /// Builds queues_ for `count` items starting at `begin`: each item goes
  /// to the worker whose store last scored (and therefore retains) its
  /// hinted parent, unhinted/unknown items round-robin for balance. The
  /// assignment is deterministic; only wall-clock depends on it.
  template <typename HintOf>
  void build_queues(std::size_t count, std::size_t begin, HintOf hint_of) {
    queues_.assign(objectives_.size(), {});
    std::size_t rr = 0;
    for (std::size_t i = begin; i < count; ++i) {
      const std::uint64_t hint = hint_of(i);
      std::size_t w = rr++ % objectives_.size();
      if (hint != 0) {
        if (const auto it = retained_on_.find(hint);
            it != retained_on_.end()) {
          w = it->second;
          --rr;  // hinted items don't consume round-robin slots
        }
      }
      queues_[w].push_back(i);
    }
  }

  /// Remembers which worker's RoutingStateStore now retains `g`'s routing
  /// state, so `g`'s children can be routed there next pass. Infeasible
  /// topologies commit no state; skip them.
  void record_executor(const Topology& g, double cost, std::size_t worker) {
    if (std::isinf(cost)) return;
    retained_on_[g.fingerprint()] = worker;
    // The stores retain a bounded number of states; a bounded map with
    // occasional full resets (stale entries only cost a fallback) keeps
    // lookups O(1) without LRU bookkeeping.
    if (retained_on_.size() > kAffinityMapCap) retained_on_.clear();
  }

  /// End-of-pass hygiene: a hint is one-shot, but if a worker's last
  /// set_parent_hint was never consumed (an objective threw, or a dedup
  /// group emptied), it must not bias the first unhinted evaluation of the
  /// next pass.
  void clear_hints() {
    for (Objective* o : objectives_) o->set_parent_hint(0);
  }

  static constexpr std::size_t kAffinityMapCap = 1 << 14;
  /// The GaConfig::dedup variant of score(): group [begin, size) by
  /// fingerprint (elites [0, begin) seed the groups), repair + score one
  /// representative per group in parallel, then fan the results out
  /// sequentially. Bit-identical to score(): identical pre-repair
  /// topologies repair identically (repair_connectivity is deterministic
  /// and elites are always connected, so their representatives add no
  /// links), duplicates take the representative's exact topology and cost,
  /// and every candidate is still charged as a repair/evaluation.
  void score_dedup(std::vector<Topology>& gs, std::vector<double>& costs,
                   std::size_t begin, GaResult& result,
                   const std::vector<std::uint64_t>* hints = nullptr) {
    std::vector<std::uint64_t> fps(gs.size());
    for (std::size_t i = 0; i < gs.size(); ++i) fps[i] = gs[i].fingerprint();
    const std::vector<std::size_t> rep_of =
        dedup_representatives(gs, fps, begin);
    std::vector<std::size_t> uniques;
    uniques.reserve(gs.size() - begin);
    for (std::size_t i = begin; i < gs.size(); ++i) {
      if (rep_of[i] == i) uniques.push_back(i);
    }
    std::vector<std::size_t> added(gs.size(), 0);
    executor_.assign(gs.size(), 0);
    const auto body = [&](std::size_t k, std::size_t w) {
      const std::size_t i = uniques[k];
      added[i] = repair_connectivity(gs[i], objectives_[w]->lengths());
      if (hints != nullptr) objectives_[w]->set_parent_hint((*hints)[i]);
      costs[i] = objectives_[w]->cost(gs[i]);
      executor_[i] = static_cast<std::uint32_t>(w);  // slot-owned
    };
    if (affinity_active()) {
      build_queues(uniques.size(), 0,
                   [&](std::size_t k) {
                     return hints != nullptr ? (*hints)[uniques[k]] : 0;
                   });
      pool_->parallel_for_assigned(queues_, body, &steal_stats_);
      result.steals += steal_stats_.total_stolen();
      for (const std::size_t i : uniques) {
        record_executor(gs[i], costs[i], executor_[i]);
      }
    } else {
      pool_->parallel_for(0, uniques.size(), body);
    }
    clear_hints();
    // Sequential fan-out after the join. Counters are charged per candidate
    // using its representative's repair work, exactly what scoring the
    // duplicate itself would have recorded.
    std::size_t duplicates = 0;
    for (std::size_t i = begin; i < gs.size(); ++i) {
      const std::size_t rep = rep_of[i];
      if (rep != i) {
        gs[i] = gs[rep];
        costs[i] = costs[rep];
        ++duplicates;
      }
      if (const std::size_t a = rep < begin ? 0 : added[rep]; a > 0) {
        ++result.repairs;
        result.links_repaired += a;
      }
      ++result.evaluations;
    }
    result.dedup_skipped += duplicates;
    primary_.charge_duplicates(duplicates);
  }

  Objective& primary_;
  bool dedup_;
  bool affinity_;
  std::vector<std::unique_ptr<Objective>> clones_;
  std::vector<Objective*> objectives_;  ///< [0] = primary, then clones
  std::unique_ptr<ThreadPool> pool_;

  // Affinity scheduling state. retained_on_ maps a topology fingerprint to
  // the worker whose RoutingStateStore scored it most recently (and so
  // likely retains its trees); executor_ records, slot-owned, which worker
  // ran each item of the current pass. All reads and writes of retained_on_
  // happen in the sequential sections before/after the parallel join.
  std::unordered_map<std::uint64_t, std::size_t> retained_on_;
  std::vector<std::uint32_t> executor_;
  std::vector<std::vector<std::size_t>> queues_;
  StealStats steal_stats_;
};

}  // namespace

std::vector<std::size_t> dedup_representatives(
    const std::vector<Topology>& gs,
    const std::vector<std::uint64_t>& fingerprints, std::size_t begin) {
  // Buckets map fingerprint -> indices of group representatives seen so
  // far. Candidates are processed in index order and only ever compare
  // against earlier representatives, so the result is deterministic no
  // matter how the hash table iterates internally.
  std::vector<std::size_t> rep_of(gs.size());
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  buckets.reserve(gs.size());
  for (std::size_t i = 0; i < begin; ++i) {
    rep_of[i] = i;
    buckets[fingerprints[i]].push_back(i);
  }
  for (std::size_t i = begin; i < gs.size(); ++i) {
    std::vector<std::size_t>& bucket = buckets[fingerprints[i]];
    rep_of[i] = i;
    for (const std::size_t j : bucket) {
      // Colliding fingerprints are only merged when the topologies really
      // are equal — the same defense the cost caches apply on lookup.
      if (gs[j] == gs[i]) {
        rep_of[i] = j;
        break;
      }
    }
    if (rep_of[i] == i) bucket.push_back(i);
  }
  return rep_of;
}

GaResult run_ga(Objective& eval, Rng& rng, const GaRunOptions& options) {
  const GaConfig cfg = options.config.resolved();
  const std::size_t n = eval.num_nodes();
  if (n < 2) throw std::invalid_argument("run_ga: need at least 2 PoPs");
  RunObserver* observer = options.observer;
  StopCondition* stop = options.stop;
  if (stop != nullptr) stop->arm();

  GaResult result;
  const DistanceProvider& lengths = eval.lengths();
  ParallelScorer scorer(
      eval, std::min(cfg.parallel.resolved_threads(), cfg.population),
      cfg.dedup, cfg.affinity);

  std::vector<Topology> pop = initial_population(eval, cfg, rng, options.seeds);
  std::vector<double> costs(pop.size(), 0.0);
  scorer.score(pop, costs, 0, result);
  if (stop != nullptr) stop->add_evaluations(result.evaluations);

  std::vector<Topology> next;
  std::vector<double> next_costs;
  next.reserve(cfg.population);
  next_costs.reserve(cfg.population);
  // Parent fingerprint per offspring slot, recorded during variation and
  // handed to the scorer so the delta evaluation engine knows which
  // retained routing state each child likely descends from. 0 = no parent
  // (elite slots — never re-scored anyway).
  std::vector<std::uint64_t> parent_hints(cfg.population, 0);

  // Counter snapshots for per-generation telemetry deltas.
  std::size_t prev_repairs = result.repairs;
  std::size_t prev_links_repaired = result.links_repaired;
  std::size_t prev_evaluations = result.evaluations;
  std::size_t prev_dedup_skipped = result.dedup_skipped;

  for (std::size_t gen = 0; gen < cfg.generations; ++gen) {
    // Cooperative cancellation: checked at the generation boundary, so a
    // stopped run still returns a fully consistent partial result.
    if (stop != nullptr && stop->should_stop()) {
      result.stopped_early = true;
      result.stop_reason = stop->reason();
      break;
    }
    const auto gen_started = std::chrono::steady_clock::now();
    // Rank current population by cost (stable: ties keep insertion order).
    std::vector<std::size_t> rank(pop.size());
    std::iota(rank.begin(), rank.end(), 0);
    std::stable_sort(rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) {
      return costs[a] < costs[b];
    });
    result.best_cost_history.push_back(costs[rank.front()]);

    next.clear();
    next_costs.clear();
    // 1. Elites survive unchanged.
    for (std::size_t i = 0; i < cfg.num_saved; ++i) {
      next.push_back(pop[rank[i]]);
      next_costs.push_back(costs[rank[i]]);
    }
    // 2. Generate all offspring sequentially from the single Rng: variation
    // decisions consume randomness in exactly the order the sequential
    // engine did (repair and scoring are RNG-free, so deferring them does
    // not perturb the stream).
    // 2a. Crossover children.
    for (std::size_t i = 0; i < cfg.num_crossover; ++i) {
      const auto parent_idx =
          select_parents(costs, cfg.parents_a, cfg.tournament_b, rng);
      std::vector<const Topology*> parents;
      std::vector<double> parent_costs;
      for (std::size_t pi : parent_idx) {
        parents.push_back(&pop[pi]);
        parent_costs.push_back(costs[pi]);
      }
      // select_parents ranks by cost, so [0] is the fittest parent — the
      // one uniform per-link crossover biases the child toward.
      parent_hints[next.size()] = pop[parent_idx[0]].fingerprint();
      next.push_back(crossover(parents, parent_costs, rng));
      next_costs.push_back(0.0);
    }
    // 2b. Mutants.
    for (std::size_t i = 0; i < cfg.num_mutation; ++i) {
      Topology mutant = pop[inverse_cost_index(costs, rng)];
      parent_hints[next.size()] = mutant.fingerprint();
      if (rng.bernoulli(cfg.node_mutation_prob)) {
        if (!node_mutation(mutant, lengths, rng)) {
          link_mutation(mutant, rng);
        }
      } else {
        link_mutation(mutant, rng);
      }
      next.push_back(std::move(mutant));
      next_costs.push_back(0.0);
    }
    // 3. Repair + score every non-elite in parallel.
    scorer.score(next, next_costs, cfg.num_saved, result, &parent_hints);
    pop.swap(next);
    costs.swap(next_costs);
    ++result.generations_run;

    // Telemetry + budget accounting, from the sequential section after the
    // join: per-generation deltas of the merged counters, so the logical
    // event stream is identical for any thread count.
    const std::size_t gen_evaluations = result.evaluations - prev_evaluations;
    if (stop != nullptr) stop->add_evaluations(gen_evaluations);
    if (observer != nullptr) {
      GenerationEnd event;
      event.gen = gen;
      event.best_cost = *std::min_element(costs.begin(), costs.end());
      event.mean_cost =
          std::accumulate(costs.begin(), costs.end(), 0.0) /
          static_cast<double>(costs.size());
      event.repairs = result.repairs - prev_repairs;
      event.links_repaired = result.links_repaired - prev_links_repaired;
      event.evaluations = gen_evaluations;
      event.dedup_skipped = result.dedup_skipped - prev_dedup_skipped;
      event.wall_ns = elapsed_ns(gen_started);
      observer->on_generation_end(event);
    }
    prev_repairs = result.repairs;
    prev_links_repaired = result.links_repaired;
    prev_evaluations = result.evaluations;
    prev_dedup_skipped = result.dedup_skipped;
  }

  // Final ranking; report best and the whole final generation.
  std::size_t best = 0;
  for (std::size_t i = 1; i < pop.size(); ++i) {
    if (costs[i] < costs[best]) best = i;
  }
  result.best = pop[best];
  result.best_cost = costs[best];
  result.best_cost_history.push_back(costs[best]);
  result.final_population = std::move(pop);
  result.final_costs = std::move(costs);
  scorer.finalize(result);  // before ~ParallelScorer merges the clones
  return result;
}

GaResult run_ga(Evaluator& eval, Rng& rng, const GaRunOptions& options) {
  EvaluatorObjective objective(eval);
  return run_ga(objective, rng, options);
}

GaResult run_ga(Objective& objective, const GaConfig& config, Rng& rng,
                const std::vector<Topology>& seeds) {
  GaRunOptions options;
  options.config = config;
  options.seeds = seeds;
  return run_ga(objective, rng, options);
}

GaResult run_ga(Evaluator& eval, const GaConfig& config, Rng& rng,
                const std::vector<Topology>& seeds) {
  EvaluatorObjective objective(eval);
  GaRunOptions options;
  options.config = config;
  options.seeds = seeds;
  return run_ga(objective, rng, options);
}

}  // namespace cold
