// GA variation operators (paper §4.1.1-§4.1.2).
#pragma once

#include <vector>

#include "geom/distance.h"
#include "graph/topology.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace cold {

/// Tournament parent choice (paper §4.1.1): pick `b` population indices
/// uniformly at random (with replacement across picks but distinct in the
/// candidate set), keep the `a` with lowest cost. Requires
/// 1 <= a <= b <= costs.size().
std::vector<std::size_t> select_parents(const std::vector<double>& costs,
                                        std::size_t a, std::size_t b,
                                        Rng& rng);

/// Uniform crossover: for each of the C(n,2) possible links, copy
/// presence/absence from one parent chosen with probability inversely
/// proportional to its cost. All parents must have the same node count and
/// strictly positive finite costs.
Topology crossover(const std::vector<const Topology*>& parents,
                   const std::vector<double>& parent_costs, Rng& rng);

/// Link mutation: removes m+ random existing links and adds m- random
/// absent links, with m+, m- ~ Geometric(0.5) (mean 1 each — on average two
/// link changes per mutation, §4.1.2). Counts are capped by availability.
/// Returns the number of links actually changed.
std::size_t link_mutation(Topology& g, Rng& rng);

/// Node mutation: picks a non-leaf node uniformly at random and turns it
/// into a leaf whose single link runs to the closest remaining non-leaf
/// node (§4.1.2). Returns false (leaving g untouched) when fewer than two
/// non-leaf nodes exist.
bool node_mutation(Topology& g, const DistanceProvider& lengths, Rng& rng);

/// Samples a population index with probability inversely proportional to
/// cost (used to pick mutation victims and crossover gene donors).
std::size_t inverse_cost_index(const std::vector<double>& costs, Rng& rng);

}  // namespace cold
