#include "dk/dk_series.h"

#include <algorithm>
#include <stdexcept>

namespace cold {

namespace {

// Canonical signature of the induced subgraph on `subset`: the
// lexicographically smallest encoding of (global degree labels, adjacency
// bits) over all permutations of the subset. d <= 4 so the d! scan is cheap.
std::vector<int> canonical_signature(const Topology& g,
                                     std::vector<NodeId> subset) {
  std::sort(subset.begin(), subset.end());
  std::vector<int> best;
  std::vector<std::size_t> perm(subset.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  do {
    std::vector<int> sig;
    sig.reserve(perm.size() + perm.size() * perm.size() / 2);
    for (std::size_t i : perm) {
      sig.push_back(g.degree(subset[i]));
    }
    for (std::size_t i = 0; i < perm.size(); ++i) {
      for (std::size_t j = i + 1; j < perm.size(); ++j) {
        sig.push_back(g.has_edge(subset[perm[i]], subset[perm[j]]) ? 1 : 0);
      }
    }
    if (best.empty() || sig < best) best = std::move(sig);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

bool subset_connected(const Topology& g, const std::vector<NodeId>& subset) {
  const std::size_t d = subset.size();
  if (d == 0) return false;
  std::vector<bool> seen(d, false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    for (std::size_t u = 0; u < d; ++u) {
      if (!seen[u] && g.has_edge(subset[v], subset[u])) {
        seen[u] = true;
        ++visited;
        stack.push_back(u);
      }
    }
  }
  return visited == d;
}

// Visits all size-d node subsets whose induced subgraph is connected.
template <typename Fn>
void for_each_connected_subset(const Topology& g, std::size_t d, Fn&& fn) {
  const std::size_t n = g.num_nodes();
  if (d > n) return;
  std::vector<NodeId> subset(d);
  // Iterative combinations.
  std::vector<std::size_t> idx(d);
  for (std::size_t i = 0; i < d; ++i) idx[i] = i;
  while (true) {
    for (std::size_t i = 0; i < d; ++i) subset[i] = idx[i];
    if (subset_connected(g, subset)) fn(subset);
    // Advance combination.
    std::size_t i = d;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - d) {
        ++idx[i];
        for (std::size_t j = i + 1; j < d; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
    if (d == 0) return;
  }
}

}  // namespace

DkDistribution dk_distribution(const Topology& g, int d) {
  DkDistribution dist;
  dist.d = d;
  const std::size_t n = g.num_nodes();
  switch (d) {
    case 0:
      dist.counts[{}] = g.num_edges();
      return dist;
    case 1:
      for (NodeId v = 0; v < n; ++v) ++dist.counts[{g.degree(v)}];
      return dist;
    case 2:
      for (const Edge& e : g.edges()) {
        int a = g.degree(e.u), b = g.degree(e.v);
        if (a > b) std::swap(a, b);
        ++dist.counts[{a, b}];
      }
      return dist;
    case 3: {
      // Wedges: for every centre c, every unordered neighbour pair.
      for (NodeId c = 0; c < n; ++c) {
        const auto nbrs = g.neighbors(c);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
            const NodeId a = nbrs[i], b = nbrs[j];
            if (g.has_edge(a, b)) continue;  // triangles counted separately
            int ka = g.degree(a), kb = g.degree(b);
            if (ka > kb) std::swap(ka, kb);
            ++dist.counts[{0, ka, g.degree(c), kb}];
          }
        }
      }
      // Triangles.
      for (NodeId i = 0; i < n; ++i) {
        for (NodeId j = i + 1; j < n; ++j) {
          if (!g.has_edge(i, j)) continue;
          for (NodeId k = j + 1; k < n; ++k) {
            if (g.has_edge(i, k) && g.has_edge(j, k)) {
              std::vector<int> label{1, g.degree(i), g.degree(j), g.degree(k)};
              std::sort(label.begin() + 1, label.end());
              ++dist.counts[label];
            }
          }
        }
      }
      return dist;
    }
    default:
      throw std::invalid_argument("dk_distribution: d must be in {0,1,2,3}");
  }
}

bool dk_equal(const Topology& a, const Topology& b, int d) {
  if (d < 0 || d > 3) throw std::invalid_argument("dk_equal: d in {0,..,3}");
  if (a.num_nodes() != b.num_nodes()) return false;
  for (int level = 0; level <= d; ++level) {
    if (!(dk_distribution(a, level) == dk_distribution(b, level))) return false;
  }
  return true;
}

std::size_t dk_parameter_count(const Topology& g, int d) {
  if (d < 1 || d > 4) {
    throw std::invalid_argument("dk_parameter_count: d must be in {1,..,4}");
  }
  if (d == 1) {
    // Distinct degrees present.
    return dk_distribution(g, 1).counts.size();
  }
  std::map<std::vector<int>, std::size_t> classes;
  for_each_connected_subset(
      g, static_cast<std::size_t>(d),
      [&](const std::vector<NodeId>& subset) {
        ++classes[canonical_signature(g, subset)];
      });
  return classes.size();
}

}  // namespace cold
