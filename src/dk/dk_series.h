// dK-series machinery (Mahadevan et al. [14,15]; paper §2, Figs 1-2).
//
// The dK-distribution of a graph G is the census of degree-labeled connected
// subgraphs of size d:
//   d=0  average degree (encoded here as the edge count, with n known)
//   d=1  degree distribution
//   d=2  joint degree distribution over edges
//   d=3  wedge/triangle census labeled by degrees
//
// The paper uses this machinery to argue that dK is not "simple": the number
// of distinct parameters grows rapidly with n and d (Fig 1), and the series
// can over-constrain a graph to the point of uniqueness (Fig 2).
#pragma once

#include <map>
#include <vector>

#include "graph/topology.h"

namespace cold {

/// A dK-distribution: canonical signature -> occurrence count.
/// Signatures: d=0: {}; d=1: {k}; d=2: {k_u, k_v} sorted;
/// d=3: {shape, ...} with shape 0 = wedge (label {0, k_end, k_centre, k_end}
/// with ends sorted) and shape 1 = triangle (label {1, k, k, k} sorted).
struct DkDistribution {
  int d = 0;
  std::map<std::vector<int>, std::size_t> counts;

  friend bool operator==(const DkDistribution&, const DkDistribution&) = default;
};

/// Computes the dK-distribution for d in {0, 1, 2, 3}.
DkDistribution dk_distribution(const Topology& g, int d);

/// True iff the graphs agree on *all* dK-distributions for d' <= d (the
/// series is inclusive: matching at d implies matching below, but comparing
/// all levels is cheap and robust for graphs with tiny components).
bool dk_equal(const Topology& a, const Topology& b, int d);

/// Number of distinct parameters in the dK-distribution for d in {1,..,4}:
/// the count of distinct degree-labeled isomorphism classes of connected
/// induced subgraphs on d nodes (Fig 1's y-axis). d=4 enumerates all C(n,4)
/// subsets; fine for n <= ~60.
std::size_t dk_parameter_count(const Topology& g, int d);

}  // namespace cold
