// Degree-sequence (1K) graph construction: Erdős–Gallai feasibility,
// Havel–Hakimi realization, and uniform-ish sampling via rewiring.
//
// This completes the dK toolchain: given any 1K distribution — e.g. one
// measured from a real network — construct a realization and randomize it,
// which is exactly the "1K-random graph" generation step of Mahadevan et
// al. that the paper compares against.
#pragma once

#include <vector>

#include "graph/topology.h"
#include "util/rng.h"

namespace cold {

/// Erdős–Gallai test: can the sequence be realized by a simple graph?
bool is_graphical(std::vector<int> degrees);

/// Deterministic Havel–Hakimi realization. Throws std::invalid_argument if
/// the sequence is not graphical.
Topology havel_hakimi(const std::vector<int>& degrees);

/// A randomized realization: Havel–Hakimi followed by ~10|E| accepted
/// degree-preserving double edge swaps.
Topology sample_with_degrees(const std::vector<int>& degrees, Rng& rng);

}  // namespace cold
