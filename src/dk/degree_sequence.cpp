#include "dk/degree_sequence.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "dk/dk_rewire.h"

namespace cold {

bool is_graphical(std::vector<int> degrees) {
  const std::size_t n = degrees.size();
  for (int d : degrees) {
    if (d < 0 || static_cast<std::size_t>(d) >= std::max<std::size_t>(n, 1)) {
      return false;
    }
  }
  const long long sum = std::accumulate(degrees.begin(), degrees.end(), 0LL);
  if (sum % 2 != 0) return false;
  std::sort(degrees.begin(), degrees.end(), std::greater<int>());
  // Erdős–Gallai: for each k, sum of the k largest degrees is bounded.
  std::vector<long long> prefix(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + degrees[i];
  for (std::size_t k = 1; k <= n; ++k) {
    long long rhs = static_cast<long long>(k) * (k - 1);
    for (std::size_t i = k; i < n; ++i) {
      rhs += std::min<long long>(degrees[i], static_cast<long long>(k));
    }
    if (prefix[k] > rhs) return false;
  }
  return true;
}

Topology havel_hakimi(const std::vector<int>& degrees) {
  if (!is_graphical(degrees)) {
    throw std::invalid_argument("havel_hakimi: sequence is not graphical");
  }
  const std::size_t n = degrees.size();
  Topology g(n);
  // Residual degrees with node ids; repeatedly satisfy the largest.
  std::vector<std::pair<int, NodeId>> residual;
  for (NodeId v = 0; v < n; ++v) residual.push_back({degrees[v], v});
  while (true) {
    std::sort(residual.begin(), residual.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;  // deterministic tie-break
              });
    if (residual.front().first == 0) break;
    auto [d, v] = residual.front();
    residual.front().first = 0;
    if (static_cast<std::size_t>(d) >= residual.size()) {
      throw std::logic_error("havel_hakimi: internal inconsistency");
    }
    for (int i = 1; i <= d; ++i) {
      auto& [rd, u] = residual[static_cast<std::size_t>(i)];
      if (rd <= 0) {
        throw std::logic_error("havel_hakimi: sequence became infeasible");
      }
      --rd;
      g.add_edge(v, u);
    }
  }
  return g;
}

Topology sample_with_degrees(const std::vector<int>& degrees, Rng& rng) {
  Topology g = havel_hakimi(degrees);
  return sample_1k_random(g, rng);
}

}  // namespace cold
