#include "dk/dk_search.h"

#include <bit>
#include <stdexcept>

#include "dk/dk_rewire.h"
#include "graph/algorithms.h"
#include "graph/isomorphism.h"

namespace cold {

DkMatchStats find_dk_matches_exhaustive(const Topology& g, int d,
                                        std::size_t max_examples) {
  const std::size_t n = g.num_nodes();
  if (n > 6) {
    throw std::invalid_argument(
        "find_dk_matches_exhaustive: n > 6 is infeasible; use the rewiring "
        "search");
  }
  std::vector<Edge> pairs;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) pairs.push_back(Edge{i, j});
  }
  DkMatchStats stats;
  const std::uint64_t limit = 1ULL << pairs.size();
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    ++stats.candidates;
    if (static_cast<std::size_t>(std::popcount(mask)) != g.num_edges()) {
      continue;  // 0K mismatch
    }
    Topology cand(n);
    for (std::size_t b = 0; b < pairs.size(); ++b) {
      if ((mask >> b) & 1ULL) cand.add_edge(pairs[b].u, pairs[b].v);
    }
    if (!is_connected(cand) || !dk_equal(g, cand, d)) continue;
    ++stats.matches;
    if (are_isomorphic(g, cand)) ++stats.isomorphic_matches;
    if (stats.examples.size() < max_examples) {
      stats.examples.push_back(std::move(cand));
    }
  }
  return stats;
}

DkMatchStats find_dk_matches_rewiring(const Topology& g, int d,
                                      std::size_t samples, Rng& rng,
                                      std::size_t max_examples) {
  DkMatchStats stats;
  for (std::size_t s = 0; s < samples; ++s) {
    ++stats.candidates;
    const Topology cand = sample_1k_random(g, rng);
    if (!is_connected(cand) || !dk_equal(g, cand, d)) continue;
    ++stats.matches;
    if (are_isomorphic(g, cand)) ++stats.isomorphic_matches;
    if (stats.examples.size() < max_examples) stats.examples.push_back(cand);
  }
  return stats;
}

}  // namespace cold
