// Searching for dK-matching graphs (Fig 2's experiment).
//
// The paper's Fig 2 argues that the 3K-distribution can over-constrain a
// graph: every graph matching the example's 3K-distribution is isomorphic to
// it. This module provides (a) an exhaustive search over all graphs on small
// node sets, and (b) a randomized rewiring-based search for larger graphs,
// each reporting how many matches exist and how many are isomorphic to the
// input.
#pragma once

#include <vector>

#include "dk/dk_series.h"
#include "graph/topology.h"
#include "util/rng.h"

namespace cold {

struct DkMatchStats {
  std::size_t candidates = 0;          ///< graphs examined
  std::size_t matches = 0;             ///< connected, equal dK(<= d) distributions
  std::size_t isomorphic_matches = 0;  ///< matches isomorphic to the input
  std::vector<Topology> examples;      ///< up to `max_examples` matches
};

// Note: both searches count only *connected* candidates as matches. The
// dK-series is defined for connected graphs, and data networks must be
// connected — without this filter e.g. C4 + C6 would "match" C10's 3K
// census while being a broken network.

/// Exhaustively enumerates all 2^(n(n-1)/2) graphs on g's node set and
/// reports those matching g's dK-distributions up to level d. Gated to
/// n <= 6 (32768 graphs at n = 6). Prunes by edge count (a dK(>=0) match
/// must have the same number of edges).
DkMatchStats find_dk_matches_exhaustive(const Topology& g, int d,
                                        std::size_t max_examples = 8);

/// Randomized search: samples `samples` 1K-preserving rewirings of g and
/// reports how many match the full dK(<= d) distribution, and how many of
/// those are isomorphic to g. (1K-preserving sampling explores the whole
/// fixed-degree-sequence space; matches are then filtered by the stronger
/// d-level census.)
DkMatchStats find_dk_matches_rewiring(const Topology& g, int d,
                                      std::size_t samples, Rng& rng,
                                      std::size_t max_examples = 8);

}  // namespace cold
