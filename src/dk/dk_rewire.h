// dK-preserving random rewiring (Mahadevan et al.'s generation approach).
//
// 1K-preserving: classic double edge swap {a,b},{c,d} -> {a,d},{c,b}, which
// keeps every node's degree. 2K-preserving: the same swap restricted to
// pairs with deg(a) == deg(c), which additionally keeps the joint degree
// distribution. These are the standard MCMC samplers for dK-random graphs,
// and are what Fig 2's "graphs with the same 3K-distribution" exploration
// builds on.
#pragma once

#include "graph/topology.h"
#include "util/rng.h"

namespace cold {

/// Attempts `attempts` random double edge swaps, applying those that keep
/// the graph simple. Preserves the degree sequence (1K). Returns the number
/// of applied swaps.
std::size_t rewire_preserving_1k(Topology& g, std::size_t attempts, Rng& rng);

/// Like rewire_preserving_1k, but only applies swaps that also preserve the
/// joint degree distribution (2K).
std::size_t rewire_preserving_2k(Topology& g, std::size_t attempts, Rng& rng);

/// Convenience: a fresh 1K-random (resp. 2K-random) sample: copies g and
/// applies ~10 * |E| accepted swaps (a common mixing heuristic).
Topology sample_1k_random(const Topology& g, Rng& rng);
Topology sample_2k_random(const Topology& g, Rng& rng);

}  // namespace cold
