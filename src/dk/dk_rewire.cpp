#include "dk/dk_rewire.h"

namespace cold {

namespace {

// One random double-edge-swap attempt; `require_2k` additionally demands
// deg(a) == deg(c) so the joint degree distribution is untouched.
bool try_swap(Topology& g, Rng& rng, bool require_2k) {
  const auto edges = g.edges();
  if (edges.size() < 2) return false;
  const Edge e1 = edges[rng.uniform_index(edges.size())];
  const Edge e2 = edges[rng.uniform_index(edges.size())];
  if (e1 == e2) return false;
  // Random orientation of each edge.
  NodeId a = e1.u, b = e1.v;
  if (rng.bernoulli(0.5)) std::swap(a, b);
  NodeId c = e2.u, d = e2.v;
  if (rng.bernoulli(0.5)) std::swap(c, d);
  // Swap {a,b},{c,d} -> {a,d},{c,b}.
  if (a == d || c == b || a == c || b == d) return false;  // degenerate
  if (g.has_edge(a, d) || g.has_edge(c, b)) return false;  // keep simple
  if (require_2k && g.degree(a) != g.degree(c)) return false;
  g.remove_edge(a, b);
  g.remove_edge(c, d);
  g.add_edge(a, d);
  g.add_edge(c, b);
  return true;
}

std::size_t rewire(Topology& g, std::size_t attempts, Rng& rng,
                   bool require_2k) {
  std::size_t applied = 0;
  for (std::size_t i = 0; i < attempts; ++i) {
    if (try_swap(g, rng, require_2k)) ++applied;
  }
  return applied;
}

Topology sample(const Topology& g, Rng& rng, bool require_2k) {
  Topology out = g;
  const std::size_t target = 10 * g.num_edges();
  std::size_t applied = 0;
  // Cap total attempts so graphs with few admissible swaps still terminate.
  for (std::size_t i = 0; i < 100 * target + 100 && applied < target; ++i) {
    if (try_swap(out, rng, require_2k)) ++applied;
  }
  return out;
}

}  // namespace

std::size_t rewire_preserving_1k(Topology& g, std::size_t attempts, Rng& rng) {
  return rewire(g, attempts, rng, /*require_2k=*/false);
}

std::size_t rewire_preserving_2k(Topology& g, std::size_t attempts, Rng& rng) {
  return rewire(g, attempts, rng, /*require_2k=*/true);
}

Topology sample_1k_random(const Topology& g, Rng& rng) {
  return sample(g, rng, /*require_2k=*/false);
}

Topology sample_2k_random(const Topology& g, Rng& rng) {
  return sample(g, rng, /*require_2k=*/true);
}

}  // namespace cold
