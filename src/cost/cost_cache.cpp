#include "cost/cost_cache.h"

#include <algorithm>
#include <bit>

namespace cold {

namespace cache_detail {

std::size_t sets_for_capacity(std::size_t capacity, std::size_t ways) {
  // Round capacity / ways up to a power of two so the set index is a mask.
  const std::size_t want =
      std::max<std::size_t>(1, (capacity + ways - 1) / ways);
  return std::bit_ceil(want);
}

void pack_edges(const Topology& g, std::vector<std::uint64_t>& out) {
  out.clear();
  out.reserve(g.num_edges());
  const std::size_t n = g.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (v > u) {
        out.push_back(static_cast<std::uint64_t>(u) << 32 | v);
      }
    }
  }
}

bool matches(const Entry& e, const Topology& g) {
  if (e.n != g.num_nodes() || e.m != g.num_edges()) return false;
  // Equal edge counts make one-sided containment a full equality check.
  for (const std::uint64_t packed : e.edges) {
    const NodeId u = static_cast<NodeId>(packed >> 32);
    const NodeId v = static_cast<NodeId>(packed & 0xffffffffULL);
    if (!g.has_edge(u, v)) return false;
  }
  return true;
}

}  // namespace cache_detail

CostCache::CostCache(const EvalCacheConfig& config)
    : num_sets_(cache_detail::sets_for_capacity(config.capacity, kWays)),
      table_(num_sets_ * kWays) {}

std::size_t CostCache::set_base(std::uint64_t key) const {
  // The key is an already avalanched fingerprint (SplitMix64-mixed edge
  // keys) XOR an avalanched salt, so the low bits index well.
  return (key & (num_sets_ - 1)) * kWays;
}

CostCache::Entry* CostCache::find_entry(const Topology& g,
                                        std::uint64_t key) {
  Entry* base = table_.data() + set_base(key);
  for (std::size_t w = 0; w < kWays; ++w) {
    Entry& e = base[w];
    if (e.stamp != 0 && e.fingerprint == key && cache_detail::matches(e, g)) {
      return &e;
    }
  }
  return nullptr;
}

const CostBreakdown* CostCache::find(const Topology& g, std::uint64_t salt) {
  Entry* e = find_entry(g, g.fingerprint() ^ salt);
  if (e == nullptr) {
    ++stats_.misses;
    return nullptr;
  }
  e->stamp = ++clock_;
  ++stats_.hits;
  return &e->value;
}

void CostCache::insert(const Topology& g, const CostBreakdown& b,
                       std::uint64_t salt) {
  const std::uint64_t key = g.fingerprint() ^ salt;
  Entry* victim = find_entry(g, key);
  if (victim == nullptr) {
    // Prefer an empty way; otherwise evict the set's LRU entry.
    Entry* base = table_.data() + set_base(key);
    victim = base;
    for (std::size_t w = 0; w < kWays; ++w) {
      Entry& e = base[w];
      if (e.stamp == 0) {
        victim = &e;
        break;
      }
      if (e.stamp < victim->stamp) victim = &e;
    }
    if (victim->stamp != 0) {
      ++stats_.evictions;
    } else {
      ++live_;
    }
    victim->fingerprint = key;
    victim->n = static_cast<std::uint32_t>(g.num_nodes());
    victim->m = static_cast<std::uint32_t>(g.num_edges());
    cache_detail::pack_edges(g, victim->edges);
  }
  victim->value = b;
  victim->stamp = ++clock_;
  ++stats_.inserts;
}

}  // namespace cold
