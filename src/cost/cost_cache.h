// Memoized cost evaluation — the cache behind the evaluation engine.
//
// GA populations revisit topologies constantly (elites survive unchanged,
// crossover recreates parents, mutation round-trips), so a large fraction of
// cost evaluations are exact repeats. CostCache memoizes CostBreakdown
// results keyed by the topology's Zobrist fingerprint (graph/topology.h)
// plus (n, m), turning a repeat from an O(n * (n+m) log n) routing sweep
// into an O(m) verification.
//
// Organisation: a set-associative, open-addressed table. The fingerprint
// selects a power-of-two set; each set holds kWays entries managed LRU by a
// global access stamp. Eviction replaces the least-recently-used way of the
// full set, which bounds memory at ~capacity entries with no rehashing and
// no tombstones.
//
// Collision policy: fingerprints are 64-bit XORs of per-edge keys, so
// distinct edge sets *can* collide. A hit is therefore only reported after
// full-adjacency verification — the entry stores its packed edge list and
// every stored edge is checked against the queried topology (equal edge
// counts make one-sided containment sufficient). A verification failure
// counts as a miss; correctness never rests on hash uniqueness.
//
// Determinism: the cache stores exact breakdowns, so cached and recomputed
// results are bit-identical and enabling the cache cannot change any
// optimization trajectory. One CostCache belongs to one Evaluator (no
// internal locking); parallel engines give each worker clone its own.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "cost/cost_model.h"
#include "graph/shortest_paths.h"
#include "graph/topology.h"
#include "net/multipath.h"

namespace cold {

/// Tuning for an Evaluator's memoization cache.
struct EvalCacheConfig {
  bool enabled = false;        ///< off by default; --eval-cache turns it on
  std::size_t capacity = 1 << 14;  ///< max resident entries (LRU-bounded)

  /// Share one lock-striped cache (cost/shared_cost_cache.h) across every
  /// worker clone of the run instead of giving each clone a private
  /// CostCache: an elite scored on worker 0 then hits on worker 3.
  /// Exact either way — hits return stored breakdowns bit-for-bit, so the
  /// setting changes hit rates, never results. --shared-cache on the CLI.
  bool shared = false;

  friend bool operator==(const EvalCacheConfig&,
                         const EvalCacheConfig&) = default;
};

/// When the delta evaluation engine (incremental re-routing against a
/// retained parent's shortest-path trees) is active. --dsssp on the CLI.
enum class DsspMode {
  kOff,   ///< always run full sweeps
  kOn,    ///< always attempt parent-delta evaluation
  kAuto,  ///< on from delta_auto_threshold nodes up (below it, state copies
          ///< cost more than the sweeps they save)
};

/// Tuning for the delta evaluation engine. Every setting is exact: the
/// incremental update is bit-identical to the full sweep, so these knobs
/// move time and memory, never results.
struct DeltaConfig {
  DsspMode mode = DsspMode::kOff;

  /// Max edge-set diff against a retained parent to delta from (K). Beyond
  /// it the affected regions approach the whole graph and full sweeps win.
  /// 32 covers most GA crossover children, not just mutants: on recorded
  /// GA traces, repairs stay far cheaper than a fresh sweep even at this
  /// distance, and a tighter bound mostly converts hits into fallbacks.
  std::size_t max_diff_edges = 32;

  /// Per-source fallback: abandon the incremental update and run a full
  /// sweep for that source once more than max_resettle_ratio * n vertices
  /// needed recomputation. Incremental resettles are much cheaper per label
  /// than a sweep's, so the cutoff pays only when repairs approach the
  /// whole graph.
  double max_resettle_ratio = 0.75;

  /// Parent routing states retained (LRU ring). Each state holds n trees +
  /// a topology copy, ~29 n^2 bytes; sized so the previous GA generation's
  /// offspring are still resident when their mutants are scored.
  std::size_t retained_states = 24;

  /// Byte budget for the whole retained-state ring. The effective capacity
  /// is resolved_states(n) — retained_states shrunk until the ring fits —
  /// so the delta engine's memory is bounded in bytes, not state count: at
  /// n <= ~600 the default budget holds all 24 states (existing behaviour),
  /// while at city scale the quadratic states stop fitting and the engine
  /// degrades to fewer states and finally (capacity 0) switches itself off.
  /// Like every delta knob this moves time and memory, never results.
  std::size_t max_state_bytes = std::size_t{256} << 20;  ///< 256 MiB

  /// Estimated resident bytes of one retained state at n nodes (n trees at
  /// ~29 bytes per node: dist 8 + parent 8 + order 8 + hops 4 + settled 1).
  static std::size_t state_bytes(std::size_t n) { return 29 * n * n; }

  /// Ring capacity at n nodes under the byte budget (possibly 0).
  std::size_t resolved_states(std::size_t n) const {
    const std::size_t per = state_bytes(n);
    if (per == 0) return retained_states;
    return std::min(retained_states, max_state_bytes / per);
  }

  /// kAuto switches the engine on at this node count.
  std::size_t auto_threshold = 16;

  /// True iff the engine runs for n-node topologies (the mode says on AND
  /// at least one retained state fits the byte budget).
  bool enabled(std::size_t n) const {
    if (resolved_states(n) == 0) return false;
    if (mode == DsspMode::kOn) return true;
    if (mode == DsspMode::kAuto) return n >= auto_threshold;
    return false;
  }

  friend bool operator==(const DeltaConfig&, const DeltaConfig&) = default;
};

/// Counters for the delta evaluation engine; merged across worker clones
/// like EvalCacheStats (merge_stats transfers and resets).
struct DeltaStats {
  std::uint64_t hits = 0;       ///< evaluations served by incremental updates
  std::uint64_t fallbacks = 0;  ///< dsssp-enabled evaluations that needed a
                                ///< full sweep (no parent within K edges)
  std::uint64_t vertices_resettled = 0;  ///< labels recomputed incrementally

  DeltaStats& operator+=(const DeltaStats& other) {
    hits += other.hits;
    fallbacks += other.fallbacks;
    vertices_resettled += other.vertices_resettled;
    return *this;
  }

  friend bool operator==(const DeltaStats&, const DeltaStats&) = default;
};

/// Counters for the resilience engine (cost/resilience.h); merged across
/// worker clones like DeltaStats (merge_stats transfers and resets).
struct ResilienceStats {
  std::uint64_t sweeps = 0;         ///< candidate assessments run
  std::uint64_t scenarios = 0;      ///< failure scenarios swept
  std::uint64_t delta_repairs = 0;  ///< per-source trees repaired incrementally
  std::uint64_t fresh_trees = 0;    ///< per-source trees needing a full sweep
  std::uint64_t vertices_resettled = 0;  ///< labels recomputed incrementally

  ResilienceStats& operator+=(const ResilienceStats& other) {
    sweeps += other.sweeps;
    scenarios += other.scenarios;
    delta_repairs += other.delta_repairs;
    fresh_trees += other.fresh_trees;
    vertices_resettled += other.vertices_resettled;
    return *this;
  }

  friend bool operator==(const ResilienceStats&,
                         const ResilienceStats&) = default;
};

/// Multipath routing settings for the evaluation engine
/// (`cold synth --multipath off|ecmp|wcmp`). The mode changes how loads are
/// computed (net/multipath.h), and the weights add utilization terms to the
/// objective — so, like ResilienceConfig, an active config salts the cache
/// key (see Evaluator::cache_salt). On unique-shortest-path topologies ECMP
/// loads — and therefore costs at zero weights — are bit-identical to the
/// single-path engine's.
struct MultipathConfig {
  MultipathMode mode = MultipathMode::kOff;
  /// Objective weight on max_e load_e / reference_capacity. 0.0 adds an
  /// exact 0.0 term (0.0 * finite == 0.0) — totals match the plain
  /// objective bit for bit.
  double max_util_weight = 0.0;
  /// Objective weight on sum_e max(0, load_e / reference_capacity - 1).
  double oversub_weight = 0.0;

  /// True iff the engine routes over the shortest-path DAG (the weights
  /// alone do nothing without a mode: single-path loads feed no
  /// MultipathSummary).
  bool enabled() const { return mode != MultipathMode::kOff; }

  friend bool operator==(const MultipathConfig&,
                         const MultipathConfig&) = default;
};

/// Evaluation-engine knobs threaded from config/CLI down to the Evaluator.
struct EvalEngineConfig {
  EvalCacheConfig cache;
  SpAlgorithm sp_algorithm = SpAlgorithm::kAuto;
  DeltaConfig delta;
  /// Survivability term of the objective (cost/resilience.h evaluates it).
  /// Unlike the other engine knobs this one changes costs — resilient and
  /// plain evaluations are therefore cached under different key salts so
  /// the two objectives can never conflate (see Evaluator::cache_salt).
  ResilienceConfig resilience;
  /// Multipath routing mode + utilization objective terms. Mutually
  /// exclusive with the resilient objective for now (the failure sweeps
  /// assess single-path routing; the Evaluator rejects the combination).
  MultipathConfig multipath;

  friend bool operator==(const EvalEngineConfig&,
                         const EvalEngineConfig&) = default;
};

/// Monotonic cache counters. Aggregates across worker clones the same way
/// evaluation counts do (merge_stats transfers and resets).
struct EvalCacheStats {
  std::uint64_t hits = 0;       ///< verified fingerprint matches
  std::uint64_t misses = 0;     ///< lookups that fell through to routing
  std::uint64_t inserts = 0;    ///< entries written
  std::uint64_t evictions = 0;  ///< LRU replacements of live entries

  std::uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    const std::uint64_t total = lookups();
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }

  EvalCacheStats& operator+=(const EvalCacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    inserts += other.inserts;
    evictions += other.evictions;
    return *this;
  }

  friend bool operator==(const EvalCacheStats&,
                         const EvalCacheStats&) = default;
};

/// Internals shared between CostCache (per-worker, unlocked) and
/// SharedCostCache (cross-worker, lock-striped): the stored-entry layout and
/// the full edge-set verification that makes fingerprint collisions harmless.
namespace cache_detail {

struct Entry {
  std::uint64_t fingerprint = 0;
  std::uint64_t stamp = 0;  ///< LRU access clock; 0 marks an empty way
  std::uint32_t n = 0;
  std::uint32_t m = 0;
  std::vector<std::uint64_t> edges;  ///< packed (u << 32 | v), u < v
  CostBreakdown value;
};

/// True iff `e` stores exactly `g`'s topology: fingerprint, n and m match
/// and every stored edge exists in `g` (equal edge counts make one-sided
/// containment a full equality check).
bool matches(const Entry& e, const Topology& g);

/// Packs `g`'s edge set as sorted-within-pair (u << 32 | v), u < v.
void pack_edges(const Topology& g, std::vector<std::uint64_t>& out);

/// Smallest power-of-two set count holding `capacity` entries at kWays ways.
std::size_t sets_for_capacity(std::size_t capacity, std::size_t ways);

}  // namespace cache_detail

/// Fingerprint-keyed memo table for CostBreakdown results. Not thread-safe;
/// see file comment for sharing rules.
class CostCache {
 public:
  explicit CostCache(const EvalCacheConfig& config);

  /// Looks up `g`. Returns the cached breakdown after full-adjacency
  /// verification, or nullptr (counting a miss, including on fingerprint
  /// collisions that fail verification). `salt` is XORed into the lookup
  /// key so evaluators scoring the same topologies under different
  /// objectives (plain vs resilient) index disjoint entries: equal
  /// topologies have equal fingerprints, so their keys differ unless the
  /// salts match too.
  const CostBreakdown* find(const Topology& g, std::uint64_t salt = 0);

  /// Stores `b` as the breakdown for `g` under `salt`, evicting the set's
  /// LRU way if needed. Overwrites in place if `g` is already resident
  /// under the same salt.
  void insert(const Topology& g, const CostBreakdown& b,
              std::uint64_t salt = 0);

  const EvalCacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = EvalCacheStats{}; }

  std::size_t size() const { return live_; }
  std::size_t capacity() const { return num_sets_ * kWays; }

  static constexpr std::size_t kWays = 4;  ///< associativity per set

 private:
  using Entry = cache_detail::Entry;

  std::size_t set_base(std::uint64_t key) const;
  Entry* find_entry(const Topology& g, std::uint64_t key);

  std::size_t num_sets_;
  std::vector<Entry> table_;  ///< num_sets_ * kWays ways, set-major
  std::uint64_t clock_ = 0;
  std::size_t live_ = 0;
  EvalCacheStats stats_;
};

}  // namespace cold
