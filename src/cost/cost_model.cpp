#include "cost/cost_model.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace cold {

void CostParams::validate() const {
  for (double k : {k0, k1, k2, k3}) {
    if (!(k >= 0.0) || !std::isfinite(k)) {
      throw std::invalid_argument(
          "CostParams: costs must be finite and non-negative");
    }
  }
}

std::string CostParams::to_string() const {
  std::ostringstream os;
  os << "k0=" << k0 << " k1=" << k1 << " k2=" << k2 << " k3=" << k3;
  return os.str();
}

double CostBreakdown::total() const {
  if (!feasible) return std::numeric_limits<double>::infinity();
  return existence + length + bandwidth + node;
}

}  // namespace cold
