#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace cold {

void CostParams::validate() const {
  for (double k : {k0, k1, k2, k3}) {
    if (!(k >= 0.0) || !std::isfinite(k)) {
      throw std::invalid_argument(
          "CostParams: costs must be finite and non-negative");
    }
  }
}

std::string CostParams::to_string() const {
  std::ostringstream os;
  os << "k0=" << k0 << " k1=" << k1 << " k2=" << k2 << " k3=" << k3;
  return os.str();
}

double ResilienceSummary::penalty() const {
  const double overload =
      std::min(std::max(worst_utilization - 1.0, 0.0), 10.0);
  return disconnected_fraction + (mean_stretch - 1.0) + overload;
}

double CostBreakdown::total() const {
  if (!feasible) return std::numeric_limits<double>::infinity();
  return existence + length + bandwidth + node + resilience + multipath;
}

}  // namespace cold
