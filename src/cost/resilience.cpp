#include "cost/resilience.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace cold {

namespace {

// SplitMix64 stream for the double-failure sampler: tiny, stateless beyond
// one word, and identical on every platform — the sampled scenarios must be
// a pure function of the topology fingerprint.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

const std::vector<Edge> kNoEdges;

}  // namespace

std::vector<std::vector<Edge>> enumerate_failure_scenarios(
    const Topology& g, const ResilienceConfig& config) {
  const std::vector<Edge> edges = g.edges();
  const std::size_t m = edges.size();
  std::vector<std::vector<Edge>> scenarios;
  const bool doubles =
      config.scenarios == FailureScenarioSet::kDoubleSampled && m >= 2;
  scenarios.reserve(m + (doubles ? config.double_samples : 0));
  for (const Edge& e : edges) {
    scenarios.push_back({e});
  }
  if (doubles) {
    SplitMix64 rng{g.fingerprint()};
    for (std::size_t i = 0; i < config.double_samples; ++i) {
      // Uniform unordered pair of distinct edge indices, no rejection:
      // draw a, then b from the remaining m-1 slots and shift past a.
      std::size_t a = static_cast<std::size_t>(rng.next() % m);
      std::size_t b = static_cast<std::size_t>(rng.next() % (m - 1));
      if (b >= a) ++b;
      if (b < a) std::swap(a, b);
      scenarios.push_back({edges[a], edges[b]});
    }
  }
  return scenarios;
}

ResilienceEngine::ResilienceEngine(DistanceProvider lengths,
                                   CompressedTraffic traffic,
                                   ResilienceConfig config)
    : lengths_(std::move(lengths)),
      traffic_(std::move(traffic)),
      config_(config) {}

ResilienceSummary ResilienceEngine::assess(
    const Topology& g, const std::vector<ShortestPathTree>* base_trees,
    const EdgeLoads& base_loads, std::vector<FailureImpact>* per_scenario) {
  const std::size_t n = g.num_nodes();
  const std::vector<std::vector<Edge>> scenarios =
      enumerate_failure_scenarios(g, config_);

  if (base_trees == nullptr) {
    // No retained trees handed in (e.g. the evaluation was a cache hit with
    // the delta engine off): compute the candidate's own. Fresh per-source
    // sweeps, bit-identical to whatever the caller would have retained.
    own_trees_.resize(n);
    for (NodeId s = 0; s < n; ++s) {
      shortest_path_tree(g, lengths_, s, own_trees_[s]);
    }
    base_trees = &own_trees_;
  }

  edges_ = g.edges();
  damaged_ = g;

  ResilienceSummary summary;
  summary.scenarios = scenarios.size();
  if (per_scenario != nullptr) {
    per_scenario->clear();
    per_scenario->reserve(scenarios.size());
  }
  double disconnected_sum = 0.0;
  double stretch_sum = 0.0;
  for (const std::vector<Edge>& removed : scenarios) {
    for (const Edge& e : removed) damaged_.remove_edge(e.u, e.v);
    const FailureImpact impact =
        sweep_scenario(g, damaged_, removed, *base_trees, base_loads);
    // add_edge XORs the same per-edge keys back in, so the fingerprint (and
    // the sorted adjacency) are restored exactly for the next scenario.
    for (const Edge& e : removed) damaged_.add_edge(e.u, e.v);

    if (impact.disconnected) ++summary.disconnecting;
    disconnected_sum += impact.total_traffic > 0
                            ? impact.traffic_disconnected / impact.total_traffic
                            : 0.0;
    stretch_sum += impact.mean_stretch;
    summary.worst_stretch = std::max(summary.worst_stretch, impact.worst_stretch);
    summary.worst_utilization =
        std::max(summary.worst_utilization, impact.max_utilization);
    if (per_scenario != nullptr) per_scenario->push_back(impact);
  }
  if (!scenarios.empty()) {
    const double count = static_cast<double>(scenarios.size());
    summary.disconnected_fraction = disconnected_sum / count;
    summary.mean_stretch = stretch_sum / count;
  }

  ++stats_.sweeps;
  stats_.scenarios += scenarios.size();
  return summary;
}

FailureImpact ResilienceEngine::sweep_scenario(
    const Topology& g, const Topology& damaged,
    const std::vector<Edge>& removed,
    const std::vector<ShortestPathTree>& base_trees,
    const EdgeLoads& base_loads) {
  // Mirrors sim/failure's assess() term for term: same demand visit order
  // (ascending source, CSR row), same 1e-12 reroute threshold, same 1e-9
  // overload threshold, same capacity conventions — with the one structural
  // change that the damaged tree comes from repairing the candidate's base
  // tree (deletion-path dynamic SSSP) instead of a fresh Dijkstra. The
  // repair is bit-identical by contract, so every accumulated double is the
  // same double.
  const std::size_t n = damaged.num_nodes();
  FailureImpact impact;
  double stretch_weight = 0.0, stretch_sum = 0.0;

  loads_.build(damaged);
  // In an undirected graph one non-spanning tree means the damaged graph is
  // disconnected and no tree spans; route_loads' contract (loads partial,
  // unusable) maps to skipping the utilization block entirely.
  bool spanning = true;

  for (NodeId s = 0; s < n; ++s) {
    bool repaired = false;
    if (config_.use_delta) {
      dam_tree_ = base_trees[s];
      // The tree is valid for (damaged + removed) == the candidate, so the
      // deletion path repairs it into damaged's tree. max_resettled = n can
      // never trigger the cutoff; the fallback stays for safety.
      const SpUpdateResult r = update_shortest_path_tree(
          damaged, lengths_, kNoEdges, removed, dam_tree_, update_ws_, n);
      stats_.vertices_resettled += r.resettled;
      if (r.applied) {
        repaired = true;
        ++stats_.delta_repairs;
      }
    }
    if (!repaired) {
      shortest_path_tree(damaged, lengths_, s, dam_tree_);
      ++stats_.fresh_trees;
    }

    const ShortestPathTree& base = base_trees[s];
    const CompressedTraffic::RowSpan row = traffic_.row_span(s);
    for (std::size_t k = 0; k < row.len; ++k) {
      const NodeId t = row.col[k];
      const double demand = row.val[k];
      if (demand <= 0.0) continue;
      impact.total_traffic += demand;
      if (dam_tree_.hops[t] < 0) {
        impact.disconnected = true;
        impact.traffic_disconnected += demand;
        continue;
      }
      const double before = base.dist[t];
      const double after = dam_tree_.dist[t];
      if (after > before + 1e-12) {
        impact.traffic_rerouted += demand;
        const double stretch = before > 0 ? after / before : 1.0;
        stretch_sum += stretch * demand;
        stretch_weight += demand;
        impact.worst_stretch = std::max(impact.worst_stretch, stretch);
      }
    }

    if (dam_tree_.order.size() != n) spanning = false;
    if (spanning) {
      // Same per-source aggregation code path as route_loads, in the same
      // increasing-source order — loads bit-identical to a fresh sweep.
      accumulate_tree_loads(dam_tree_, traffic_, s, loads_, aggregate_);
    }
  }
  impact.mean_stretch = stretch_weight > 0 ? stretch_sum / stretch_weight : 1.0;

  if (spanning) {
    // Post-failure loads vs the candidate's provisioned capacities
    // (overprovision * base load — exactly how net/network.h builds
    // Link::capacity, in the same lexicographic link order).
    for (std::size_t k = 0; k < edges_.size(); ++k) {
      const Edge& e = edges_[k];
      if (!damaged.has_edge(e.u, e.v)) continue;
      const double capacity = config_.overprovision * base_loads.value[k];
      const double load = loads_.at(e.u, e.v);
      if (capacity > 0) {
        const double util = load / capacity;
        impact.max_utilization = std::max(impact.max_utilization, util);
        if (util > 1.0 + 1e-9) ++impact.overloaded_links;
      } else if (load > 0) {
        ++impact.overloaded_links;  // load appeared on an unprovisioned link
        impact.max_utilization = std::numeric_limits<double>::infinity();
      }
    }
  }
  return impact;
}

}  // namespace cold
