// Topology cost evaluation — the objective function minimized by the GA and
// the greedy heuristics (paper §3.2.3, eq. (2)).
//
// An Evaluator binds the optimization context (PoP distance matrix + traffic
// matrix) and the cost parameters, and scores candidate topologies. It owns
// reusable workspace, so repeated evaluation performs no allocation; one
// Evaluator must not be shared across threads (clone per thread instead).
#pragma once

#include "cost/cost_model.h"
#include "net/routing.h"
#include "util/matrix.h"

namespace cold {

class Evaluator {
 public:
  /// `lengths`: symmetric PoP distance matrix. `traffic`: demand matrix
  /// (ordered pairs, symmetric under the gravity model). Both n x n.
  Evaluator(Matrix<double> lengths, Matrix<double> traffic, CostParams params);

  /// Total cost of the topology; +infinity if it cannot carry the traffic
  /// (i.e. is disconnected). The hot path of the whole system.
  double cost(const Topology& g);

  /// Full per-component breakdown (same feasibility semantics).
  CostBreakdown breakdown(const Topology& g);

  /// Link loads from the most recent cost()/breakdown() call on a feasible
  /// topology; invalidated by subsequent calls.
  const Matrix<double>& last_loads() const { return loads_; }

  std::size_t num_nodes() const { return lengths_.rows(); }
  const Matrix<double>& lengths() const { return lengths_; }
  const Matrix<double>& traffic() const { return traffic_; }
  const CostParams& params() const { return params_; }

  /// Number of cost evaluations performed (for performance reporting).
  std::size_t evaluations() const { return evaluations_; }

 private:
  Matrix<double> lengths_;
  Matrix<double> traffic_;
  CostParams params_;
  Matrix<double> loads_;
  RoutingWorkspace ws_;
  std::size_t evaluations_ = 0;
};

}  // namespace cold
