// Topology cost evaluation — the objective function minimized by the GA and
// the greedy heuristics (paper §3.2.3, eq. (2)).
//
// An Evaluator binds the optimization context (PoP distance matrix + traffic
// matrix) and the cost parameters, and scores candidate topologies. It owns
// reusable workspace, so repeated evaluation performs no allocation; one
// Evaluator must not be shared across threads. For parallel scoring, make a
// clone() per thread: clones share the immutable context matrices (cheap,
// read-only) and own private scratch.
//
// The evaluation engine (EvalEngineConfig) adds two orthogonal levers:
//   * a memoization cache (cost/cost_cache.h) that short-circuits repeat
//     evaluations by Zobrist fingerprint with full-adjacency verification;
//   * the shortest-path solver choice (graph/shortest_paths.h).
// Both are exact: every configuration yields bit-identical costs, so GA
// trajectories do not depend on engine settings. Cache hits still count as
// evaluations() — budgets and traces agree whether or not the cache is on.
#pragma once

#include <cstddef>
#include <memory>

#include "cost/cost_cache.h"
#include "cost/cost_model.h"
#include "net/routing.h"
#include "util/matrix.h"

namespace cold {

class Evaluator {
 public:
  /// `lengths`: symmetric PoP distance matrix. `traffic`: demand matrix
  /// (ordered pairs, symmetric under the gravity model). Both n x n.
  Evaluator(Matrix<double> lengths, Matrix<double> traffic, CostParams params,
            EvalEngineConfig engine = {});

  /// A thread-private copy: shares `lengths`/`traffic` with this evaluator
  /// (immutable, so concurrent reads are safe) but owns fresh `loads`/
  /// routing scratch, a private cache (same engine config), and zeroed
  /// statistics. The clone and the original may then be used concurrently
  /// from different threads.
  Evaluator clone() const;

  /// Folds a clone's statistics (evaluation count and cache counters) into
  /// this evaluator and resets the clone's, so merging is idempotent per
  /// unit of work. After merging every clone, evaluations() and
  /// cache_stats() report exact totals across all threads.
  void merge_stats(Evaluator& worker);

  /// Total cost of the topology; +infinity if it cannot carry the traffic
  /// (i.e. is disconnected). The hot path of the whole system.
  double cost(const Topology& g);

  /// Full per-component breakdown (same feasibility semantics).
  CostBreakdown breakdown(const Topology& g);

  /// Link loads from the most recent breakdown that actually routed a
  /// feasible topology. Throws std::logic_error when no such loads are
  /// available: before the first evaluation, after an infeasible one, and
  /// after a cache hit (which skips routing entirely).
  const Matrix<double>& last_loads() const;

  /// Whether last_loads() is currently backed by a fresh feasible routing.
  bool has_last_loads() const { return loads_valid_; }

  std::size_t num_nodes() const { return lengths_->rows(); }
  const Matrix<double>& lengths() const { return *lengths_; }
  const Matrix<double>& traffic() const { return *traffic_; }
  const CostParams& params() const { return params_; }
  const EvalEngineConfig& engine() const { return engine_; }

  /// Number of cost evaluations performed by *this* instance (clones count
  /// separately until merge_stats() folds them back in). Cache hits are
  /// included — the counter tracks requested evaluations, not routings.
  std::size_t evaluations() const { return evaluations_; }

  /// Cache counters: this instance's live cache plus everything folded in
  /// via merge_stats(). All zeros when the cache is disabled.
  EvalCacheStats cache_stats() const;

 private:
  Evaluator(std::shared_ptr<const Matrix<double>> lengths,
            std::shared_ptr<const Matrix<double>> traffic, CostParams params,
            EvalEngineConfig engine);

  /// Returns this instance's cache counters and zeroes them (both the live
  /// cache's and the merged accumulator's).
  EvalCacheStats take_cache_stats();

  // The context is shared across clones and never mutated after
  // construction; scratch, cache and counters are per-instance.
  std::shared_ptr<const Matrix<double>> lengths_;
  std::shared_ptr<const Matrix<double>> traffic_;
  CostParams params_;
  EvalEngineConfig engine_;
  std::unique_ptr<CostCache> cache_;  ///< null when disabled
  EvalCacheStats merged_cache_stats_;  ///< folded in from workers
  Matrix<double> loads_;
  bool loads_valid_ = false;
  RoutingWorkspace ws_;
  std::size_t evaluations_ = 0;
};

}  // namespace cold
