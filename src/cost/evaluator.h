// Topology cost evaluation — the objective function minimized by the GA and
// the greedy heuristics (paper §3.2.3, eq. (2)).
//
// An Evaluator binds the optimization context (PoP distance matrix + traffic
// matrix) and the cost parameters, and scores candidate topologies. It owns
// reusable workspace, so repeated evaluation performs no allocation; one
// Evaluator must not be shared across threads. For parallel scoring, make a
// clone() per thread: clones share the immutable context matrices (cheap,
// read-only) and own private scratch.
//
// The evaluation engine (EvalEngineConfig) adds three orthogonal levers:
//   * a memoization cache (cost/cost_cache.h) that short-circuits repeat
//     evaluations by Zobrist fingerprint with full-adjacency verification;
//   * the shortest-path solver choice (graph/shortest_paths.h);
//   * the delta engine (cost/delta_state.h): retained parent routing states
//     repaired incrementally for children within a few edge flips
//     (--dsssp), fed by parent-fingerprint hints from the GA.
// All are exact: every configuration yields bit-identical costs, so GA
// trajectories do not depend on engine settings. Cache hits still count as
// evaluations() — budgets and traces agree whether or not the cache is on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "cost/cost_cache.h"
#include "cost/cost_model.h"
#include "cost/delta_state.h"
#include "cost/resilience.h"
#include "net/routing.h"
#include "util/matrix.h"

namespace cold {

class SharedCostCache;

/// Inputs of one evaluation beyond the topology itself. The request carries
/// everything the old stateful surface smuggled through the evaluator
/// (set_parent_hint) plus which outputs the caller wants, so one call site
/// reads as one evaluation.
struct EvalRequest {
  /// Zobrist fingerprint of the topology this candidate was derived from —
  /// the delta engine's parent probe (purely a performance hint; matches
  /// are verified by a real adjacency diff). 0 means "no hint", in which
  /// case any hint planted via the deprecated set_parent_hint() is used.
  std::uint64_t parent_hint = 0;
  /// Copy the per-link loads into the result when the routing is feasible
  /// and actually ran (cache hits skip routing and cannot produce loads).
  bool want_loads = false;
};

/// Outcome of one evaluation. Owns its outputs: unlike the deprecated
/// last_loads() accessor, the loads here cannot be invalidated by a later
/// evaluation on the same evaluator.
struct EvalResult {
  CostBreakdown breakdown;
  /// True iff `loads` is populated (requested + feasible + freshly routed).
  bool loads_valid = false;
  EdgeLoads loads;

  double total() const { return breakdown.total(); }
  bool feasible() const { return breakdown.feasible; }
};

class Evaluator {
 public:
  /// `lengths`: symmetric PoP distance matrix. `traffic`: demand matrix
  /// (ordered pairs, symmetric under the gravity model). Both n x n.
  /// Compat form: wraps the matrices in an always-dense DistanceProvider
  /// and a CompressedTraffic, so this path is bit-for-bit the historical
  /// dense evaluator at any n.
  Evaluator(Matrix<double> lengths, Matrix<double> traffic, CostParams params,
            EvalEngineConfig engine = {});

  /// Matrix-free form: the provider may be coordinate-backed (no n^2
  /// matrix) and the traffic is CSR. Both share their immutable cores
  /// across clones. Costs are bit-identical to the dense form.
  Evaluator(DistanceProvider lengths, CompressedTraffic traffic,
            CostParams params, EvalEngineConfig engine = {});

  /// A thread-private copy: shares `lengths`/`traffic` with this evaluator
  /// (immutable, so concurrent reads are safe) but owns fresh `loads`/
  /// routing scratch and zeroed statistics. With a private cache the clone
  /// gets its own empty cache (same engine config); with
  /// EvalCacheConfig::shared it shares this evaluator's SharedCostCache, so
  /// an entry filled on any worker hits on every other. The clone and the
  /// original may then be used concurrently from different threads.
  Evaluator clone() const;

  /// Folds a clone's statistics (evaluation count and cache counters) into
  /// this evaluator and resets the clone's, so merging is idempotent per
  /// unit of work. After merging every clone, evaluations() and
  /// cache_stats() report exact totals across all threads.
  void merge_stats(Evaluator& worker);

  /// The evaluation entry point: scores `g` under the cost model, routing
  /// it if no cache entry matches. `req` carries the delta-engine parent
  /// hint and selects outputs; the result owns everything it returns.
  /// Feasibility semantics: an unroutable (disconnected) topology yields
  /// breakdown.feasible == false and total() == +infinity.
  EvalResult evaluate(const Topology& g, const EvalRequest& req = {});

  /// Total cost of the topology; +infinity if it cannot carry the traffic
  /// (i.e. is disconnected). The hot path of the whole system — sugar for
  /// evaluate(g).total().
  double cost(const Topology& g);

  /// DEPRECATED(PR7): use evaluate(g).breakdown. Thin wrapper kept so
  /// pre-sparse call sites compile; consumes any planted parent hint, like
  /// evaluate().
  CostBreakdown breakdown(const Topology& g);

  /// DEPRECATED(PR7): use evaluate(g, {.want_loads = true}).loads, which the
  /// caller owns. This accessor scatters the sparse loads into a dense
  /// matrix view that is invalidated by the next evaluation. Throws
  /// std::logic_error when no feasible routing backs the loads: before the
  /// first evaluation, after an infeasible one, and after a cache hit
  /// (which skips routing entirely).
  const Matrix<double>& last_loads() const;

  /// DEPRECATED(PR7): query evaluate()'s EvalResult::loads_valid instead.
  /// Whether last_loads() is currently backed by a fresh feasible routing.
  bool has_last_loads() const { return loads_valid_; }

  std::size_t num_nodes() const { return lengths_.rows(); }
  const DistanceProvider& lengths() const { return lengths_; }
  const CompressedTraffic& traffic() const { return traffic_; }
  const CostParams& params() const { return params_; }
  const EvalEngineConfig& engine() const { return engine_; }

  /// Number of cost evaluations performed by *this* instance (clones count
  /// separately until merge_stats() folds them back in). Cache hits are
  /// included — the counter tracks requested evaluations, not routings.
  std::size_t evaluations() const { return evaluations_; }

  /// Cache counters: this instance's live cache (private or its own view of
  /// the shared one) plus everything folded in via merge_stats(). All zeros
  /// when the cache is disabled. With a shared cache each instance counts
  /// its *own* lookups/inserts, so clone totals still sum without double
  /// counting and conservation (hits + misses == lookups, inserts <= misses)
  /// holds per instance and after every merge.
  EvalCacheStats cache_stats() const;

  /// Charges `n` evaluations that the GA's generation-level dedup served by
  /// fanning out an already-computed result (no routing, no cache lookup).
  /// Keeps evaluations() — and therefore budgets and traces — identical
  /// whether dedup is on or off.
  void charge_duplicates(std::size_t n) {
    evaluations_ += n;
    dedup_skipped_ += n;
  }

  /// Evaluations served by dedup fan-out (merged like evaluations()).
  std::size_t dedup_skipped() const { return dedup_skipped_; }

  /// DEPRECATED(PR7): pass the hint in EvalRequest::parent_hint instead.
  /// Plants the Zobrist fingerprint of the topology the *next* evaluation's
  /// argument was derived from (the GA records it during variation). Purely
  /// a performance hint for the delta engine's parent probe — matches are
  /// verified by a real adjacency diff, and a wrong or missing hint can
  /// only cost probe time, never exactness. Consumed by one evaluation;
  /// 0 means "no hint"; a nonzero EvalRequest::parent_hint wins over a
  /// planted one. Ignored when the delta engine is off.
  void set_parent_hint(std::uint64_t fingerprint) {
    parent_hint_ = fingerprint;
  }

  /// Delta-engine counters (merged across clones like evaluations()):
  /// hits = evaluations served by incremental tree repair, fallbacks =
  /// delta-enabled evaluations that ran full sweeps (no retained parent
  /// within max_diff_edges), vertices_resettled = labels recomputed
  /// incrementally. All zeros when the engine is off.
  const DeltaStats& delta_stats() const { return delta_stats_; }

  /// The retained-state ring, or nullptr when the delta engine is off for
  /// this instance's node count. Exposed for tests.
  const RoutingStateStore* delta_store() const { return delta_store_.get(); }

  /// Resilience-engine counters (merged across clones like delta_stats()):
  /// failure-sweep assessments, scenarios swept, trees repaired vs computed
  /// fresh. All zeros when the resilient objective is off.
  ResilienceStats resilience_stats() const {
    ResilienceStats s = resilience_stats_;
    if (resilience_) s += resilience_->stats();
    return s;
  }

  /// The resilience engine, or nullptr when the resilient objective is off.
  /// Exposed for tests.
  const ResilienceEngine* resilience_engine() const {
    return resilience_.get();
  }

  /// Multipath-engine counters (merged across clones like delta_stats()):
  /// full multipath sweeps, branch points split, DAG predecessor links
  /// extracted. All zeros when multipath routing is off.
  const MultipathStats& multipath_stats() const { return multipath_stats_; }

  /// The key salt this instance's cache operations use: 0 for the plain
  /// objective, a hash of the resilience or multipath config otherwise — so
  /// evaluations under different objectives/routing modes of the same
  /// topology can never conflate in a (possibly shared) cache. use_delta is
  /// excluded: it changes timing, never values. Exposed for tests.
  std::uint64_t cache_salt() const { return cache_salt_; }

  /// The cross-worker cache, or nullptr when not in shared mode. Exposed so
  /// tests can assert clones share one instance and inspect its totals.
  const SharedCostCache* shared_cache() const { return shared_cache_.get(); }

 private:
  /// Clone construction: shares the parent's context (provider cores, CSR,
  /// shared cache) with fresh scratch, caches and counters.
  struct CloneTag {};
  Evaluator(CloneTag, const Evaluator& parent);

  /// Creates the per-instance engine state (private cache, delta store)
  /// from engine_; shared by both public ctors and the clone ctor.
  void init_engine_state();

  /// Returns this instance's cache counters and zeroes them (the live
  /// cache's, this instance's shared-cache view, and the merged
  /// accumulator's).
  EvalCacheStats take_cache_stats();

  /// Stores `b` for `g` in whichever cache (shared or private) is active.
  void insert_in_cache(const Topology& g, const CostBreakdown& b);

  /// evaluate()'s core: cache probe, then routing (delta or full sweep).
  /// `hint` is already resolved; does not touch parent_hint_.
  CostBreakdown breakdown_impl(const Topology& g, std::uint64_t hint);

  /// Routes `g` via the delta engine: incremental repair of a retained
  /// parent's trees when one matches, full (retained) sweep otherwise.
  CostBreakdown breakdown_delta(const Topology& g, std::uint64_t hint);

  /// The infeasible-result tail shared by every routing path.
  CostBreakdown infeasible_breakdown(const Topology& g);

  /// Full-sweep routing dispatch: single-path or multipath per
  /// engine_.multipath (kOff forwards verbatim, so the dispatch is free).
  bool route_candidate(const Topology& g);
  bool route_candidate_retained(const Topology& g,
                                std::vector<ShortestPathTree>& trees);

  /// Per-source aggregation dispatch for the delta path: tree push when
  /// multipath is off, DAG extraction + split scatter when on. Repaired
  /// trees are bit-identical to fresh ones, so both modes compose with the
  /// delta engine exactly.
  void accumulate_candidate(const Topology& g, const ShortestPathTree& tree,
                            NodeId s);

  /// Cost terms from `loads_` for a feasibly-routed `g` + cache insert.
  /// `base_trees` are the candidate's retained per-source trees when the
  /// routing path kept them (delta slots, or resilience_trees_ on the plain
  /// path) — the resilience engine repairs per-scenario trees from them;
  /// nullptr makes it compute its own.
  CostBreakdown finish_breakdown(const Topology& g,
                                 const std::vector<ShortestPathTree>* base_trees);

  // The context is shared across clones and never mutated after
  // construction; scratch, cache and counters are per-instance. Both
  // members are value types over shared immutable cores, so copies cost
  // O(1) memory regardless of n.
  DistanceProvider lengths_;
  CompressedTraffic traffic_;
  CostParams params_;
  EvalEngineConfig engine_;
  std::unique_ptr<CostCache> cache_;  ///< null when disabled or shared
  std::shared_ptr<SharedCostCache> shared_cache_;  ///< null unless shared
  EvalCacheStats shared_stats_;  ///< *this* instance's shared-cache ops
  EvalCacheStats merged_cache_stats_;  ///< folded in from workers
  EdgeLoads loads_;  ///< O(n + m) per-link loads of the last feasible routing
  bool loads_valid_ = false;
  /// Dense scatter backing the deprecated last_loads() accessor only;
  /// empty until that accessor is used.
  mutable Matrix<double> legacy_loads_;
  RoutingWorkspace ws_;
  std::size_t evaluations_ = 0;
  std::size_t dedup_skipped_ = 0;

  // Delta engine: per-instance like the routing workspace (see
  // delta_state.h for why states are not shared across clones).
  std::unique_ptr<RoutingStateStore> delta_store_;  ///< null when off
  DeltaStats delta_stats_;
  std::uint64_t parent_hint_ = 0;
  SpUpdateWorkspace sp_ws_;
  std::vector<Edge> diff_added_;
  std::vector<Edge> diff_removed_;

  // Resilience engine: per-instance scratch like the delta engine; the
  // merged accumulator collects worker stats on merge_stats().
  std::unique_ptr<ResilienceEngine> resilience_;  ///< null when off
  ResilienceStats resilience_stats_;  ///< folded in from workers
  // Multipath routing counters (scratch lives in ws_.dag / ws_.split).
  MultipathStats multipath_stats_;
  std::uint64_t cache_salt_ = 0;
  /// Plain-path (no delta store) retained trees when resilience is on:
  /// route_loads_retained keeps the per-source trees here so the failure
  /// sweep repairs them instead of recomputing the candidate's routing.
  std::vector<ShortestPathTree> resilience_trees_;
};

}  // namespace cold
