// Topology cost evaluation — the objective function minimized by the GA and
// the greedy heuristics (paper §3.2.3, eq. (2)).
//
// An Evaluator binds the optimization context (PoP distance matrix + traffic
// matrix) and the cost parameters, and scores candidate topologies. It owns
// reusable workspace, so repeated evaluation performs no allocation; one
// Evaluator must not be shared across threads. For parallel scoring, make a
// clone() per thread: clones share the immutable context matrices (cheap,
// read-only) and own private scratch.
#pragma once

#include <cstddef>
#include <memory>

#include "cost/cost_model.h"
#include "net/routing.h"
#include "util/matrix.h"

namespace cold {

class Evaluator {
 public:
  /// `lengths`: symmetric PoP distance matrix. `traffic`: demand matrix
  /// (ordered pairs, symmetric under the gravity model). Both n x n.
  Evaluator(Matrix<double> lengths, Matrix<double> traffic, CostParams params);

  /// A thread-private copy: shares `lengths`/`traffic` with this evaluator
  /// (immutable, so concurrent reads are safe) but owns fresh `loads`/
  /// routing scratch and starts with an evaluation count of zero. The clone
  /// and the original may then be used concurrently from different threads.
  Evaluator clone() const;

  /// Folds a clone's statistics into this evaluator and resets the clone's,
  /// so merging is idempotent per unit of work. After merging every clone,
  /// evaluations() reports the exact total across all threads.
  void merge_stats(Evaluator& worker);

  /// Total cost of the topology; +infinity if it cannot carry the traffic
  /// (i.e. is disconnected). The hot path of the whole system.
  double cost(const Topology& g);

  /// Full per-component breakdown (same feasibility semantics).
  CostBreakdown breakdown(const Topology& g);

  /// Link loads from the most recent cost()/breakdown() call on a feasible
  /// topology; invalidated by subsequent calls.
  const Matrix<double>& last_loads() const { return loads_; }

  std::size_t num_nodes() const { return lengths_->rows(); }
  const Matrix<double>& lengths() const { return *lengths_; }
  const Matrix<double>& traffic() const { return *traffic_; }
  const CostParams& params() const { return params_; }

  /// Number of cost evaluations performed by *this* instance (clones count
  /// separately until merge_stats() folds them back in).
  std::size_t evaluations() const { return evaluations_; }

 private:
  Evaluator(std::shared_ptr<const Matrix<double>> lengths,
            std::shared_ptr<const Matrix<double>> traffic, CostParams params);

  // The context is shared across clones and never mutated after
  // construction; scratch and counters are per-instance.
  std::shared_ptr<const Matrix<double>> lengths_;
  std::shared_ptr<const Matrix<double>> traffic_;
  CostParams params_;
  Matrix<double> loads_;
  RoutingWorkspace ws_;
  std::size_t evaluations_ = 0;
};

}  // namespace cold
