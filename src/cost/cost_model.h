// COLD's cost model (paper §3.2):
//
//   cost(G) = sum_{i in E} (k0 + k1*l_i + k2*l_i*w_i) + sum_{j: deg(j)>1} k3
//
// k0: per-link existence cost; k1: per-unit-length cost (trenching/conduit);
// k2: bandwidth-distance cost; k3: complexity cost per core (non-leaf) PoP.
// Costs are relative — the paper fixes k1 = 1 — leaving three degrees of
// freedom that tune the output from trees (k0/k1 dominant) through
// hub-and-spoke (k3 dominant) to cliques (k2 dominant).
#pragma once

#include <string>

namespace cold {

struct CostParams {
  double k0 = 10.0;  ///< link existence cost
  double k1 = 1.0;   ///< per-length cost (fixed to 1 in the paper)
  double k2 = 1e-4;  ///< per-length-per-bandwidth cost
  double k3 = 0.0;   ///< hub (core node) complexity cost

  /// Throws std::invalid_argument if any cost is negative or non-finite.
  void validate() const;

  std::string to_string() const;

  friend bool operator==(const CostParams&, const CostParams&) = default;
};

/// Per-component decomposition of a topology's cost.
struct CostBreakdown {
  double existence = 0.0;  ///< k0 * |E|
  double length = 0.0;     ///< k1 * sum l_i
  double bandwidth = 0.0;  ///< k2 * sum l_i w_i
  double node = 0.0;       ///< k3 * #core nodes
  bool feasible = false;   ///< false when the topology cannot carry traffic

  /// Total cost; +infinity when infeasible.
  double total() const;
};

}  // namespace cold
