// COLD's cost model (paper §3.2):
//
//   cost(G) = sum_{i in E} (k0 + k1*l_i + k2*l_i*w_i) + sum_{j: deg(j)>1} k3
//
// k0: per-link existence cost; k1: per-unit-length cost (trenching/conduit);
// k2: bandwidth-distance cost; k3: complexity cost per core (non-leaf) PoP.
// Costs are relative — the paper fixes k1 = 1 — leaving three degrees of
// freedom that tune the output from trees (k0/k1 dominant) through
// hub-and-spoke (k3 dominant) to cliques (k2 dominant).
#pragma once

#include <cstddef>
#include <string>

namespace cold {

struct CostParams {
  double k0 = 10.0;  ///< link existence cost
  double k1 = 1.0;   ///< per-length cost (fixed to 1 in the paper)
  double k2 = 1e-4;  ///< per-length-per-bandwidth cost
  double k3 = 0.0;   ///< hub (core node) complexity cost

  /// Throws std::invalid_argument if any cost is negative or non-finite.
  void validate() const;

  std::string to_string() const;

  friend bool operator==(const CostParams&, const CostParams&) = default;
};

/// Which failure scenarios the resilience objective sweeps.
enum class FailureScenarioSet {
  kSingleLink,     ///< every single-link failure, lexicographic edge order
  kDoubleSampled,  ///< all single links plus deterministically sampled
                   ///< two-link failures (seeded by topology fingerprint)
};

/// Settings for the survivability term of the objective
/// (`cold synth --objective resilient`). All exact: for a fixed config the
/// resilience score of a topology is a pure function of the topology, so GA
/// trajectories stay bit-identical across thread counts and engine knobs.
struct ResilienceConfig {
  bool enabled = false;  ///< off: plain cost objective, zero overhead
  /// λ in cost + λ * penalty. weight == 0.0 with enabled == true yields
  /// exactly the plain objective's totals (0.0 * finite penalty == 0.0).
  double weight = 0.0;
  FailureScenarioSet scenarios = FailureScenarioSet::kSingleLink;
  /// Two-link scenarios drawn per candidate under kDoubleSampled (sampled
  /// with replacement from the unordered edge pairs, SplitMix64-seeded by
  /// the topology fingerprint — deterministic, evaluation-order-free).
  std::size_t double_samples = 8;
  /// Capacity factor used to provision the hypothetical links the sweep
  /// stresses (mirrors SynthesisConfig::overprovision; the Synthesizer
  /// keeps them in sync so post-failure utilization matches sim/failure
  /// on the built network bit-for-bit).
  double overprovision = 1.0;
  /// Repair retained routing states via the delta engine instead of
  /// running fresh per-scenario sweeps. Exact either way (the repair is
  /// bit-identical to a fresh sweep); off exists as the bench baseline.
  bool use_delta = true;

  friend bool operator==(const ResilienceConfig&,
                         const ResilienceConfig&) = default;
};

/// Aggregated survivability of one candidate over its failure-scenario
/// sweep. All aggregates fold per-scenario FailureImpact values that are
/// bit-identical to sim/failure's fresh recomputation.
struct ResilienceSummary {
  std::size_t scenarios = 0;     ///< scenarios swept
  std::size_t disconnecting = 0; ///< scenarios that strand traffic
  /// Mean over scenarios of (disconnected demand / offered demand).
  double disconnected_fraction = 0.0;
  /// Mean over scenarios of the demand-weighted mean stretch.
  double mean_stretch = 1.0;
  double worst_stretch = 1.0;      ///< max stretch over all scenarios
  /// Max post-failure load/capacity over all scenarios; +infinity when load
  /// appears on an unprovisioned (zero-capacity) link.
  double worst_utilization = 0.0;

  /// The scalar the weighted-sum objective charges: disconnection dominates,
  /// stretch and overload add pressure. The utilization term is clamped to
  /// [0, 10] so an infinite utilization (zero-capacity link carrying load)
  /// cannot poison the objective with non-finite totals; the raw value
  /// stays readable in worst_utilization. Always finite.
  double penalty() const;

  friend bool operator==(const ResilienceSummary&,
                         const ResilienceSummary&) = default;
};

/// Utilization aggregates of one candidate's routed loads, computed by the
/// evaluator when a multipath objective term is active (net/multipath.h).
/// Pure functions of the topology for a fixed engine config, so caching and
/// threading never change them.
struct MultipathSummary {
  /// Mean per-link load — the reference capacity the utilization terms are
  /// normalized by (a topology-relative yardstick needing no absolute
  /// capacity input). 0.0 on edgeless or zero-traffic inputs.
  double reference_capacity = 0.0;
  /// max_e load_e / reference_capacity (0.0 when reference_capacity is 0).
  double max_utilization = 0.0;
  /// sum_e max(0, load_e / reference_capacity - 1): total fractional
  /// overload above the reference, lexicographic edge order.
  double oversubscription = 0.0;

  friend bool operator==(const MultipathSummary&,
                         const MultipathSummary&) = default;
};

/// Per-component decomposition of a topology's cost.
struct CostBreakdown {
  double existence = 0.0;  ///< k0 * |E|
  double length = 0.0;     ///< k1 * sum l_i
  double bandwidth = 0.0;  ///< k2 * sum l_i w_i
  double node = 0.0;       ///< k3 * #core nodes
  /// λ * resilience penalty (0.0 unless the resilient objective is on).
  double resilience = 0.0;
  /// Weighted max-utilization + oversubscription terms (0.0 unless a
  /// multipath objective weight is set).
  double multipath = 0.0;
  bool feasible = false;   ///< false when the topology cannot carry traffic

  /// The sweep aggregates behind `resilience`, embedded so cache hits (which
  /// skip routing) still return the winner's survivability figures.
  ResilienceSummary resilience_summary;

  /// The utilization aggregates behind `multipath`, embedded for the same
  /// cache-hit reason.
  MultipathSummary multipath_summary;

  /// Total cost; +infinity when infeasible.
  double total() const;
};

}  // namespace cold
