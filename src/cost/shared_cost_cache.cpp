#include "cost/shared_cost_cache.h"

namespace cold {

SharedCostCache::SharedCostCache(const EvalCacheConfig& config)
    : sets_per_shard_(cache_detail::sets_for_capacity(
          (config.capacity + kShards - 1) / kShards, kWays)),
      shards_(std::make_unique<Shard[]>(kShards)) {
  // Total capacity rounds up to at least kShards * kWays entries so every
  // shard keeps at least one full set.
  for (std::size_t s = 0; s < kShards; ++s) {
    shards_[s].table.resize(sets_per_shard_ * kWays);
  }
}

cache_detail::Entry* SharedCostCache::find_entry(Shard& shard,
                                                 const Topology& g,
                                                 std::uint64_t key) {
  cache_detail::Entry* base = shard.table.data() + set_base(key);
  for (std::size_t w = 0; w < kWays; ++w) {
    cache_detail::Entry& e = base[w];
    if (e.stamp != 0 && e.fingerprint == key &&
        cache_detail::matches(e, g)) {
      return &e;
    }
  }
  return nullptr;
}

bool SharedCostCache::find(const Topology& g, CostBreakdown& out,
                           std::uint64_t salt) {
  const std::uint64_t key = g.fingerprint() ^ salt;
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  cache_detail::Entry* e = find_entry(shard, g, key);
  if (e == nullptr) {
    ++shard.stats.misses;
    return false;
  }
  e->stamp = ++shard.clock;
  ++shard.stats.hits;
  out = e->value;
  return true;
}

bool SharedCostCache::insert(const Topology& g, const CostBreakdown& b,
                             std::uint64_t salt) {
  const std::uint64_t key = g.fingerprint() ^ salt;
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  bool evicted = false;
  cache_detail::Entry* victim = find_entry(shard, g, key);
  if (victim == nullptr) {
    // Prefer an empty way; otherwise evict the set's LRU entry.
    cache_detail::Entry* base = shard.table.data() + set_base(key);
    victim = base;
    for (std::size_t w = 0; w < kWays; ++w) {
      cache_detail::Entry& e = base[w];
      if (e.stamp == 0) {
        victim = &e;
        break;
      }
      if (e.stamp < victim->stamp) victim = &e;
    }
    if (victim->stamp != 0) {
      ++shard.stats.evictions;
      evicted = true;
    } else {
      ++shard.live;
    }
    victim->fingerprint = key;
    victim->n = static_cast<std::uint32_t>(g.num_nodes());
    victim->m = static_cast<std::uint32_t>(g.num_edges());
    cache_detail::pack_edges(g, victim->edges);
  }
  victim->value = b;
  victim->stamp = ++shard.clock;
  ++shard.stats.inserts;
  return evicted;
}

EvalCacheStats SharedCostCache::stats() const {
  EvalCacheStats total;
  for (std::size_t s = 0; s < kShards; ++s) {
    const std::lock_guard<std::mutex> lock(shards_[s].mu);
    total += shards_[s].stats;
  }
  return total;
}

std::size_t SharedCostCache::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    const std::lock_guard<std::mutex> lock(shards_[s].mu);
    total += shards_[s].live;
  }
  return total;
}

}  // namespace cold
