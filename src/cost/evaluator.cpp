#include "cost/evaluator.h"

#include <bit>
#include <stdexcept>
#include <utility>

#include "cost/shared_cost_cache.h"
#include "traffic/gravity.h"

namespace cold {

namespace {

// SplitMix64 finalizer for chaining the resilience config into a cache-key
// salt: equal configs hash equally (clones and re-runs agree), and any
// value-affecting difference yields an unrelated salt.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// The salt covers every config field that changes breakdown *values*;
// use_delta is excluded on purpose — it moves time, never results, so both
// settings may share entries.
std::uint64_t resilience_salt(const ResilienceConfig& c) {
  if (!c.enabled) return 0;
  std::uint64_t s = mix64(0x52e5111e9ce0b5a7ULL);
  s = mix64(s ^ std::bit_cast<std::uint64_t>(c.weight));
  s = mix64(s ^ static_cast<std::uint64_t>(c.scenarios));
  s = mix64(s ^ static_cast<std::uint64_t>(c.double_samples));
  s = mix64(s ^ std::bit_cast<std::uint64_t>(c.overprovision));
  return s;
}

// Same contract for the multipath config: an active mode changes loads (and
// the weights change totals), so it must index disjoint cache entries. Off
// salts to 0 — plain evaluations keep their historical keys.
std::uint64_t multipath_salt(const MultipathConfig& c) {
  if (!c.enabled()) return 0;
  std::uint64_t s = mix64(0x9e6b1a8fd2c45e13ULL);
  s = mix64(s ^ static_cast<std::uint64_t>(c.mode));
  s = mix64(s ^ std::bit_cast<std::uint64_t>(c.max_util_weight));
  s = mix64(s ^ std::bit_cast<std::uint64_t>(c.oversub_weight));
  return s;
}

}  // namespace

Evaluator::Evaluator(Matrix<double> lengths, Matrix<double> traffic,
                     CostParams params, EvalEngineConfig engine)
    : Evaluator(DistanceProvider::from_matrix(std::move(lengths)),
                CompressedTraffic(traffic), params, engine) {}

Evaluator::Evaluator(DistanceProvider lengths, CompressedTraffic traffic,
                     CostParams params, EvalEngineConfig engine)
    : lengths_(std::move(lengths)),
      traffic_(std::move(traffic)),
      params_(params),
      engine_(engine) {
  params_.validate();
  const std::size_t n = lengths_.rows();
  if (traffic_.rows() != n) {
    throw std::invalid_argument("Evaluator: traffic/lengths size mismatch");
  }
  init_engine_state();
  // Only root evaluators create the shared cache; clones receive the same
  // instance in clone() so every worker sees every entry.
  if (engine_.cache.enabled && engine_.cache.shared) {
    shared_cache_ = std::make_shared<SharedCostCache>(engine_.cache);
  }
}

Evaluator::Evaluator(CloneTag, const Evaluator& parent)
    : lengths_(parent.lengths_),  // shares the core; fresh row-tile cache
      traffic_(parent.traffic_),
      params_(parent.params_),
      engine_(parent.engine_) {
  init_engine_state();
  shared_cache_ = parent.shared_cache_;
}

void Evaluator::init_engine_state() {
  const std::size_t n = lengths_.rows();
  if (engine_.cache.enabled && !engine_.cache.shared) {
    cache_ = std::make_unique<CostCache>(engine_.cache);
  }
  if (engine_.delta.enabled(n)) {
    delta_store_ = std::make_unique<RoutingStateStore>(
        engine_.delta.resolved_states(n));
  }
  if (engine_.resilience.enabled && engine_.multipath.enabled()) {
    // The failure sweeps assess single-path routing; charging a multipath
    // objective on top would mix models. Lift when the resilience engine
    // learns to repair DAG loads (see ROADMAP follow-ons).
    throw std::invalid_argument(
        "Evaluator: the resilient objective and multipath routing are "
        "mutually exclusive");
  }
  if (engine_.resilience.enabled) {
    resilience_ = std::make_unique<ResilienceEngine>(lengths_, traffic_,
                                                     engine_.resilience);
  }
  // At most one of the two salts is nonzero (mutual exclusion above), so
  // the XOR is a plain selection, never a mix of both.
  cache_salt_ =
      resilience_salt(engine_.resilience) ^ multipath_salt(engine_.multipath);
}

Evaluator Evaluator::clone() const { return Evaluator(CloneTag{}, *this); }

EvalCacheStats Evaluator::take_cache_stats() {
  EvalCacheStats s = merged_cache_stats_;
  merged_cache_stats_ = EvalCacheStats{};
  if (cache_) {
    s += cache_->stats();
    cache_->reset_stats();
  }
  s += shared_stats_;
  shared_stats_ = EvalCacheStats{};
  return s;
}

void Evaluator::merge_stats(Evaluator& worker) {
  evaluations_ += worker.evaluations_;
  worker.evaluations_ = 0;
  dedup_skipped_ += worker.dedup_skipped_;
  worker.dedup_skipped_ = 0;
  delta_stats_ += worker.delta_stats_;
  worker.delta_stats_ = DeltaStats{};
  merged_cache_stats_ += worker.take_cache_stats();
  resilience_stats_ += std::exchange(worker.resilience_stats_, {});
  if (worker.resilience_) resilience_stats_ += worker.resilience_->take_stats();
  multipath_stats_ += std::exchange(worker.multipath_stats_, {});
}

EvalCacheStats Evaluator::cache_stats() const {
  EvalCacheStats s = merged_cache_stats_;
  if (cache_) s += cache_->stats();
  s += shared_stats_;
  return s;
}

const Matrix<double>& Evaluator::last_loads() const {
  if (!loads_valid_) {
    throw std::logic_error(
        "Evaluator::last_loads: no feasible routing backs the loads (the "
        "last evaluation was infeasible, served from cache, or never ran)");
  }
  loads_.scatter(legacy_loads_);
  return legacy_loads_;
}

EvalResult Evaluator::evaluate(const Topology& g, const EvalRequest& req) {
  // An explicit request hint wins; otherwise consume (one-shot) whatever
  // the deprecated set_parent_hint() planted, so legacy flows behave
  // exactly as before.
  const std::uint64_t hint =
      req.parent_hint != 0 ? req.parent_hint : std::exchange(parent_hint_, 0);
  EvalResult r;
  r.breakdown = breakdown_impl(g, hint);
  if (req.want_loads && loads_valid_) {
    r.loads = loads_;
    r.loads_valid = true;
  }
  return r;
}

double Evaluator::cost(const Topology& g) { return evaluate(g).total(); }

CostBreakdown Evaluator::breakdown(const Topology& g) {
  return evaluate(g).breakdown;
}

CostBreakdown Evaluator::breakdown_impl(const Topology& g,
                                        std::uint64_t hint) {
  if (g.num_nodes() != num_nodes()) {
    throw std::invalid_argument("Evaluator: topology size mismatch");
  }
  // Cache hits count: evaluations_ tracks requested evaluations so budgets
  // and traces are identical whether or not the cache is enabled.
  ++evaluations_;
  if (shared_cache_ != nullptr) {
    CostBreakdown hit;
    if (shared_cache_->find(g, hit, cache_salt_)) {
      ++shared_stats_.hits;
      loads_valid_ = false;  // hit skips routing; loads_ is stale
      // The cache stores no routing state; keep any retained state for this
      // topology warm so its children can still delta from it.
      if (delta_store_) delta_store_->touch(g, g.fingerprint());
      return hit;
    }
    ++shared_stats_.misses;
  } else if (cache_ != nullptr) {
    if (const CostBreakdown* hit = cache_->find(g, cache_salt_)) {
      loads_valid_ = false;  // hit skips routing; loads_ is stale
      if (delta_store_) delta_store_->touch(g, g.fingerprint());
      return *hit;
    }
  }
  if (delta_store_) return breakdown_delta(g, hint);
  if (resilience_ != nullptr) {
    // Keep the per-source trees: the failure sweep repairs them per
    // scenario instead of recomputing the candidate's routing n times.
    // Loads (and trees) are bit-identical to plain route_loads by contract.
    // (Multipath is mutually exclusive with resilience, so this path is
    // always single-path routing.)
    if (!route_loads_retained(g, lengths_, traffic_, loads_,
                              resilience_trees_, ws_, engine_.sp_algorithm)) {
      return infeasible_breakdown(g);
    }
    return finish_breakdown(g, &resilience_trees_);
  }
  if (!route_candidate(g)) {
    return infeasible_breakdown(g);  // disconnected: cannot carry traffic
  }
  return finish_breakdown(g, nullptr);
}

bool Evaluator::route_candidate(const Topology& g) {
  // kOff forwards to route_loads verbatim, so plain runs take the exact
  // historical path.
  return route_loads_multipath(g, lengths_, traffic_, engine_.multipath.mode,
                               loads_, ws_, &multipath_stats_,
                               engine_.sp_algorithm);
}

bool Evaluator::route_candidate_retained(const Topology& g,
                                         std::vector<ShortestPathTree>& trees) {
  return route_loads_multipath_retained(
      g, lengths_, traffic_, engine_.multipath.mode, loads_, trees, ws_,
      &multipath_stats_, engine_.sp_algorithm);
}

void Evaluator::accumulate_candidate(const Topology& g,
                                     const ShortestPathTree& tree, NodeId s) {
  if (!engine_.multipath.enabled()) {
    accumulate_tree_loads(tree, traffic_, s, loads_, ws_.aggregate);
    return;
  }
  extract_shortest_path_dag(g, lengths_, tree, ws_.dag);
  multipath_stats_.dag_edges += ws_.dag.pred.size();
  accumulate_dag_loads(g, tree, ws_.dag, traffic_, s, engine_.multipath.mode,
                       loads_, ws_.aggregate, ws_.split, &multipath_stats_);
}

CostBreakdown Evaluator::breakdown_delta(const Topology& g,
                                         std::uint64_t hint) {
  const std::size_t n = g.num_nodes();
  RoutingState* parent = delta_store_->match(
      g, hint, engine_.delta.max_diff_edges, diff_added_, diff_removed_);
  if (parent == nullptr) {
    // No retained parent within K edges: full sweep, but keep the trees so
    // this topology can serve as a parent later.
    ++delta_stats_.fallbacks;
    RoutingState& slot = delta_store_->begin_fill(nullptr);
    if (!route_candidate_retained(g, slot.trees)) {
      return infeasible_breakdown(g);  // slot stays free
    }
    slot.topology = g;
    delta_store_->commit(slot, g);
    return finish_breakdown(g, &slot.trees);
  }
  ++delta_stats_.hits;
  const SpAlgorithm algo =
      resolve_sp_algorithm(g, lengths_, engine_.sp_algorithm);
  const std::size_t max_resettled = static_cast<std::size_t>(
      engine_.delta.max_resettle_ratio * static_cast<double>(n));
  RoutingState& slot = delta_store_->begin_fill(parent);
  slot.trees.resize(n);
  loads_.build(g);
  // Block-batched resettle: per source block (byte-capped like
  // route_loads'), (1) copy the parent trees and run the incremental
  // updates, collecting the sources whose affected region blew the cutoff,
  // (2) recompute those in one batched sweep (identical result by the
  // solvers' exactness contract), (3) accumulate the block in increasing
  // source order — the same accumulation order as the scalar loop, so
  // loads stay bit-identical.
  const std::size_t bw = ws_.block_width(n);
  NodeId fallback_sources[kSpSourceBlock];
  ShortestPathTree* fallback_trees[kSpSourceBlock];
  for (NodeId base = 0; base < n; base += bw) {
    const std::size_t width = std::min<std::size_t>(bw, n - base);
    std::size_t num_fallback = 0;
    for (std::size_t b = 0; b < width; ++b) {
      const NodeId s = base + b;
      ShortestPathTree& tree = slot.trees[s];
      tree = parent->trees[s];
      const SpUpdateResult r = update_shortest_path_tree(
          g, lengths_, diff_added_, diff_removed_, tree, sp_ws_,
          max_resettled);
      if (r.applied) {
        delta_stats_.vertices_resettled += r.resettled;
      } else {
        fallback_sources[num_fallback] = s;
        fallback_trees[num_fallback] = &tree;
        ++num_fallback;
      }
    }
    for (std::size_t f = 0; f < num_fallback; ++f) {
      // Dense fallbacks within one block could share a lockstep pass, but
      // they rarely co-occur; per-source keeps the pointer plumbing simple.
      shortest_path_tree_batch(g, lengths_, &fallback_sources[f], 1,
                               fallback_trees[f], algo);
    }
    for (std::size_t b = 0; b < width; ++b) {
      const NodeId s = base + b;
      ShortestPathTree& tree = slot.trees[s];
      if (tree.order.size() != n) {
        return infeasible_breakdown(g);  // disconnected; slot stays free
      }
      // Aggregation is the exact route_loads[_multipath] code path in the
      // exact source order, so the loads are bit-identical to a full
      // sweep's (repaired trees are bit-identical to fresh ones).
      accumulate_candidate(g, tree, s);
    }
  }
  if (engine_.multipath.enabled()) ++multipath_stats_.sweeps;
  slot.topology = g;
  delta_store_->commit(slot, g);
  return finish_breakdown(g, &slot.trees);
}

CostBreakdown Evaluator::infeasible_breakdown(const Topology& g) {
  CostBreakdown b;
  b.feasible = false;
  loads_valid_ = false;
  insert_in_cache(g, b);
  return b;
}

CostBreakdown Evaluator::finish_breakdown(
    const Topology& g, const std::vector<ShortestPathTree>* base_trees) {
  CostBreakdown b;
  b.feasible = true;
  loads_valid_ = true;
  const DistanceProvider& lengths = lengths_;
  const std::size_t n = g.num_nodes();
  double sum_len = 0.0, sum_bw_len = 0.0;
  // EdgeLoads values are stored in lexicographic (i < j) edge order — the
  // exact order the old dense row scan visited canonical cells — so a
  // running index walks them with the identical FP summation order.
  std::size_t idx = 0;
  for (NodeId i = 0; i < n; ++i) {
    for (const NodeId j : g.neighbors(i)) {
      if (j <= i) continue;
      sum_len += lengths(i, j);
      sum_bw_len += lengths(i, j) * loads_.value[idx++];
    }
  }
  b.existence = params_.k0 * static_cast<double>(g.num_edges());
  b.length = params_.k1 * sum_len;
  b.bandwidth = params_.k2 * sum_bw_len;
  b.node = params_.k3 * static_cast<double>(g.num_core_nodes());
  if (resilience_ != nullptr) {
    // Sweep before the cache insert so hits return the winner's
    // survivability figures along with its weighted term. With weight 0 the
    // term is exactly 0.0 (the penalty is always finite), so totals — and
    // therefore GA trajectories — match the plain objective bit-for-bit.
    b.resilience_summary = resilience_->assess(g, base_trees, loads_);
    b.resilience =
        engine_.resilience.weight * b.resilience_summary.penalty();
  }
  if (engine_.multipath.enabled()) {
    // Utilization aggregates over the (already-final) per-link loads, in
    // lexicographic edge order — deterministic left-to-right sums. With
    // both weights 0 the term is exactly 0.0 (every aggregate is finite),
    // so totals match a zero-weight run bit for bit.
    MultipathSummary& s = b.multipath_summary;
    const std::size_t m = loads_.value.size();
    double sum = 0.0, max_load = 0.0;
    for (std::size_t e = 0; e < m; ++e) {
      sum += loads_.value[e];
      max_load = std::max(max_load, loads_.value[e]);
    }
    if (m > 0 && sum > 0.0) {
      s.reference_capacity = sum / static_cast<double>(m);
      s.max_utilization = max_load / s.reference_capacity;
      double oversub = 0.0;
      for (std::size_t e = 0; e < m; ++e) {
        const double u = loads_.value[e] / s.reference_capacity;
        if (u > 1.0) oversub += u - 1.0;
      }
      s.oversubscription = oversub;
    }
    b.multipath = engine_.multipath.max_util_weight * s.max_utilization +
                  engine_.multipath.oversub_weight * s.oversubscription;
  }
  insert_in_cache(g, b);
  return b;
}

void Evaluator::insert_in_cache(const Topology& g, const CostBreakdown& b) {
  if (shared_cache_ != nullptr) {
    if (shared_cache_->insert(g, b, cache_salt_)) ++shared_stats_.evictions;
    ++shared_stats_.inserts;
  } else if (cache_ != nullptr) {
    cache_->insert(g, b, cache_salt_);
  }
}

}  // namespace cold
