#include "cost/evaluator.h"

#include <stdexcept>
#include <utility>

#include "traffic/gravity.h"

namespace cold {

Evaluator::Evaluator(Matrix<double> lengths, Matrix<double> traffic,
                     CostParams params)
    : Evaluator(std::make_shared<const Matrix<double>>(std::move(lengths)),
                std::make_shared<const Matrix<double>>(std::move(traffic)),
                params) {}

Evaluator::Evaluator(std::shared_ptr<const Matrix<double>> lengths,
                     std::shared_ptr<const Matrix<double>> traffic,
                     CostParams params)
    : lengths_(std::move(lengths)),
      traffic_(std::move(traffic)),
      params_(params) {
  params_.validate();
  const std::size_t n = lengths_->rows();
  if (lengths_->cols() != n) {
    throw std::invalid_argument("Evaluator: lengths must be square");
  }
  validate_traffic_matrix(*traffic_);
  if (traffic_->rows() != n) {
    throw std::invalid_argument("Evaluator: traffic/lengths size mismatch");
  }
  loads_ = Matrix<double>::square(n, 0.0);
}

Evaluator Evaluator::clone() const {
  return Evaluator(lengths_, traffic_, params_);
}

void Evaluator::merge_stats(Evaluator& worker) {
  evaluations_ += worker.evaluations_;
  worker.evaluations_ = 0;
}

CostBreakdown Evaluator::breakdown(const Topology& g) {
  if (g.num_nodes() != num_nodes()) {
    throw std::invalid_argument("Evaluator: topology size mismatch");
  }
  ++evaluations_;
  const Matrix<double>& lengths = *lengths_;
  CostBreakdown b;
  if (!route_loads(g, lengths, *traffic_, loads_, ws_)) {
    b.feasible = false;  // disconnected: cannot carry the traffic
    return b;
  }
  b.feasible = true;
  const std::size_t n = g.num_nodes();
  double sum_len = 0.0, sum_bw_len = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    const std::uint8_t* r = g.row(i);
    for (NodeId j = i + 1; j < n; ++j) {
      if (!r[j]) continue;
      sum_len += lengths(i, j);
      sum_bw_len += lengths(i, j) * loads_(i, j);
    }
  }
  b.existence = params_.k0 * static_cast<double>(g.num_edges());
  b.length = params_.k1 * sum_len;
  b.bandwidth = params_.k2 * sum_bw_len;
  b.node = params_.k3 * static_cast<double>(g.num_core_nodes());
  return b;
}

double Evaluator::cost(const Topology& g) { return breakdown(g).total(); }

}  // namespace cold
