// Retained routing state for the delta evaluation engine.
//
// Most GA offspring differ from a population member by one or two links
// (link mutation flips ~2 edges, converged crossover even fewer), so the
// evaluator can repair the parent's n shortest-path trees incrementally
// (graph/shortest_paths.h, update_shortest_path_tree) instead of rerunning
// n full Dijkstra sweeps. RoutingStateStore is the per-Evaluator LRU ring
// of candidate parents: each slot keeps a topology copy plus its n trees.
//
// Matching is exact by construction: a candidate qualifies by computing the
// real edge-set diff from the sorted adjacency lists (Topology::diff_edges,
// bounded by max_diff_edges), so fingerprints are never trusted — they only
// order the probe sequence (the GA threads each offspring's parent
// fingerprint down as a hint; hinted slot first, then most-recent-first).
//
// The store is deliberately *not* shared across worker clones: a state is
// ~29 n^2 bytes, so copying trees under a shard lock (shared_cost_cache.h
// style) would serialize the workers on exactly the data the delta path
// needs fastest. Each clone retains the parents it scored, and the GA's
// scorer routes each offspring to the worker that retains its parent's
// state (GaConfig::affinity + ThreadPool::parallel_for_assigned), stealing
// only when idle — so cross-worker misses happen only on steals and map
// churn, and simply fall back to a full sweep, costing time, never
// exactness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/shortest_paths.h"
#include "graph/topology.h"

namespace cold {

/// One retained parent: a topology and its n shortest-path trees.
struct RoutingState {
  std::uint64_t fingerprint = 0;
  std::uint64_t stamp = 0;  ///< LRU access clock; 0 marks a free slot
  Topology topology;
  std::vector<ShortestPathTree> trees;
};

/// Fixed-capacity LRU ring of RoutingStates. Single-threaded, owned by one
/// Evaluator (clones build their own, like CostCache).
class RoutingStateStore {
 public:
  explicit RoutingStateStore(std::size_t capacity);

  /// Finds a retained parent whose edge-set diff against `child` is at most
  /// `max_diff` edges. Probes the slot whose fingerprint equals `hint`
  /// first, then the remaining live slots most-recent-first, computing at
  /// most kMaxProbes real diffs. On a match, `added`/`removed` hold the
  /// diff (parent -> child) and the slot is stamped most-recent. Returns
  /// nullptr when nothing qualifies.
  RoutingState* match(const Topology& child, std::uint64_t hint,
                      std::size_t max_diff, std::vector<Edge>& added,
                      std::vector<Edge>& removed);

  /// The slot to fill for a new state: a free slot if any, else the
  /// least-recently-used one — never `keep` (the parent currently being
  /// read). The slot is marked free until commit().
  RoutingState& begin_fill(const RoutingState* keep);

  /// Publishes a filled slot as the state for `g`.
  void commit(RoutingState& slot, const Topology& g);

  /// Re-stamps the state for `fingerprint` (full equality against `g`
  /// checked), keeping states warm when the cost cache — which stores no
  /// routing state — absorbs the evaluation. No-op when absent.
  void touch(const Topology& g, std::uint64_t fingerprint);

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const;

  static constexpr std::size_t kMaxProbes = 4;  ///< diffs per match() call

 private:
  std::vector<RoutingState> slots_;
  std::uint64_t clock_ = 0;
};

}  // namespace cold
