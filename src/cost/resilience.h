// Survivability scoring for candidate topologies — the engine behind
// `cold synth --objective resilient` (DESIGN.md §4.9).
//
// COLD's cost model deliberately omits redundancy (paper §3.2), yet real
// PoP networks are provisioned against failures. This layer turns the
// offline sim/failure substrate into a synthesis objective: every candidate
// is scored under all single-link failures (plus, optionally, a
// deterministic sample of two-link failures), and the weighted-sum
// objective charges cost + λ * ResilienceSummary::penalty().
//
// The expensive part of a failure sweep is recomputing n shortest-path
// trees per scenario. The engine instead *repairs* the candidate's own
// trees through update_shortest_path_tree's deletion path (the scenario's
// failed edges are the `removed` set), which is bit-identical to a fresh
// sweep by the delta contract (graph/shortest_paths.h) — so every
// per-scenario FailureImpact here equals sim/failure's fresh recomputation
// bit-for-bit, and `use_delta` is a pure performance knob. Scenario
// enumeration, double-failure sampling and all accounting are pure
// functions of (topology, config): no evaluation-order, thread-count or
// engine-knob dependence, which is what keeps resilient GA trajectories
// bit-identical across parallel configurations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cost/cost_cache.h"
#include "cost/cost_model.h"
#include "geom/distance.h"
#include "graph/shortest_paths.h"
#include "graph/topology.h"
#include "net/routing.h"
#include "sim/failure.h"
#include "traffic/gravity.h"

namespace cold {

/// The deterministic failure-scenario list for `g` under `config`: every
/// single link as a one-edge scenario in lexicographic edge order, then
/// (kDoubleSampled) config.double_samples two-link scenarios sampled with
/// replacement from the unordered edge pairs by a SplitMix64 stream seeded
/// with g.fingerprint(). A pure function of (g, config) — no evaluation
/// order, RNG state or thread identity enters. Topologies with fewer than
/// two edges get no double scenarios. Exposed for tests.
std::vector<std::vector<Edge>> enumerate_failure_scenarios(
    const Topology& g, const ResilienceConfig& config);

/// Scores topologies under failure scenarios. Owns reusable scratch (trees,
/// loads, update workspace) so steady-state assessments allocate nothing
/// beyond first use; one engine must not be shared across threads — the
/// Evaluator gives each clone its own.
class ResilienceEngine {
 public:
  /// Both context arguments are value types over shared immutable cores
  /// (the Evaluator passes its own).
  ResilienceEngine(DistanceProvider lengths, CompressedTraffic traffic,
                   ResilienceConfig config);

  /// Sweeps `g` (which must be connected — the Evaluator only scores
  /// feasible candidates) over enumerate_failure_scenarios(g, config).
  ///
  /// `base_trees`, when non-null, must hold the candidate's n shortest-path
  /// trees indexed by source (bit-identical to fresh sweeps — which the
  /// delta/batch contracts guarantee for every tree the Evaluator retains);
  /// null makes the engine compute its own. `base_loads` must be the
  /// candidate's feasible per-link loads in lexicographic edge order (the
  /// Evaluator's post-routing loads): scenario capacities are
  /// config.overprovision * base load per link, bit-for-bit the capacities
  /// net/network.h provisions, so post-failure utilization matches
  /// sim/failure on the built network exactly.
  ///
  /// `per_scenario`, when non-null, is filled with one FailureImpact per
  /// scenario (aligned with enumerate_failure_scenarios order), each
  /// bit-identical to sim/failure's fresh recomputation.
  ResilienceSummary assess(const Topology& g,
                           const std::vector<ShortestPathTree>* base_trees,
                           const EdgeLoads& base_loads,
                           std::vector<FailureImpact>* per_scenario = nullptr);

  const ResilienceConfig& config() const { return config_; }
  const ResilienceStats& stats() const { return stats_; }

  /// Returns the counters and zeroes them (merge_stats protocol).
  ResilienceStats take_stats() {
    const ResilienceStats s = stats_;
    stats_ = ResilienceStats{};
    return s;
  }

 private:
  /// One scenario: `damaged` is `g` minus `removed`. Replicates
  /// sim/failure's assess() accounting exactly (same thresholds, same
  /// accumulation order); see resilience.cpp.
  FailureImpact sweep_scenario(const Topology& g, const Topology& damaged,
                               const std::vector<Edge>& removed,
                               const std::vector<ShortestPathTree>& base_trees,
                               const EdgeLoads& base_loads);

  DistanceProvider lengths_;
  CompressedTraffic traffic_;
  ResilienceConfig config_;
  ResilienceStats stats_;

  // Reusable scratch (capacity persists across assessments).
  std::vector<ShortestPathTree> own_trees_;  ///< base trees when none passed
  ShortestPathTree dam_tree_;                ///< per-source damaged tree
  SpUpdateWorkspace update_ws_;
  EdgeLoads loads_;                          ///< post-failure loads
  std::vector<double> aggregate_;
  std::vector<Edge> edges_;                  ///< candidate edge list
  Topology damaged_;                         ///< mutated copy of the candidate
};

}  // namespace cold
