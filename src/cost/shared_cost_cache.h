// Cross-worker memoized cost evaluation — the shared sibling of CostCache.
//
// The parallel GA scores offspring on Evaluator clones, and with private
// per-clone caches an elite evaluated on worker 0 misses on worker 3.
// SharedCostCache is one cache all clones of a run share: the same
// set-associative LRU organisation as CostCache, but partitioned into
// kShards independent shards, each guarded by its own mutex (lock
// striping). A lookup or insert locks exactly one shard, so workers touch
// disjoint shards concurrently and colliding workers serialize only
// per-shard.
//
// Placement: the shard comes from the *high* fingerprint bits, the set
// within the shard from the *low* bits — independent slices of an already
// avalanched 64-bit Zobrist fingerprint (graph/topology.h).
//
// Collision policy is identical to CostCache and non-negotiable: a hit is
// reported only after full edge-set verification (cache_detail::matches),
// so fingerprint collisions can never corrupt a result. find() copies the
// stored breakdown out under the shard lock — returning a pointer would
// race with a concurrent eviction.
//
// Determinism: hits return exact stored breakdowns, so sharing the cache
// changes hit rates and wall-clock only, never any cost, trajectory or
// trace. Per-shard counters are updated under the shard lock, which makes
// the aggregate stats() conservation exact: hits + misses == find calls,
// regardless of interleaving.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cost/cost_cache.h"
#include "cost/cost_model.h"
#include "graph/topology.h"

namespace cold {

/// Sharded, lock-striped, fingerprint-keyed memo table for CostBreakdown
/// results. Thread-safe; one instance is shared by every Evaluator clone of
/// a run (see EvalCacheConfig::shared).
class SharedCostCache {
 public:
  explicit SharedCostCache(const EvalCacheConfig& config);

  /// Looks up `g`; on a verified hit copies the stored breakdown into `out`
  /// and returns true. Counts one hit or one miss on the shard. `salt` is
  /// XORed into the lookup key (same contract as CostCache::find) so plain
  /// and resilient evaluations of identical topologies never conflate.
  bool find(const Topology& g, CostBreakdown& out, std::uint64_t salt = 0);

  /// Stores `b` as the breakdown for `g` under `salt`, evicting the set's
  /// LRU way if needed (overwriting in place if `g` is already resident
  /// under the same salt, e.g. when two workers missed on the same topology
  /// concurrently). Returns true iff a live entry was evicted.
  bool insert(const Topology& g, const CostBreakdown& b,
              std::uint64_t salt = 0);

  /// Sums the per-shard counters (locks each shard once).
  EvalCacheStats stats() const;

  /// Live entries across all shards (locks each shard once).
  std::size_t size() const;

  std::size_t capacity() const { return kShards * sets_per_shard_ * kWays; }

  static constexpr std::size_t kWays = CostCache::kWays;
  static constexpr std::size_t kShards = 64;  ///< power of two (mask index)

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<cache_detail::Entry> table;  ///< sets_per_shard_*kWays ways
    std::uint64_t clock = 0;  ///< per-shard LRU stamp source
    std::size_t live = 0;
    EvalCacheStats stats;
  };

  Shard& shard_for(std::uint64_t key) {
    // High bits pick the shard; set_base() below uses the low bits, so the
    // two indices never alias.
    return shards_[(key >> 48) & (kShards - 1)];
  }
  std::size_t set_base(std::uint64_t key) const {
    return (key & (sets_per_shard_ - 1)) * kWays;
  }
  /// Returns the way storing `g` under `key` in (locked) `shard`, or nullptr.
  cache_detail::Entry* find_entry(Shard& shard, const Topology& g,
                                  std::uint64_t key);

  std::size_t sets_per_shard_;
  std::unique_ptr<Shard[]> shards_;  ///< mutexes make Shard non-movable
};

}  // namespace cold
