#include "cost/delta_state.h"

#include <algorithm>

namespace cold {

RoutingStateStore::RoutingStateStore(std::size_t capacity)
    : slots_(std::max<std::size_t>(capacity, 2)) {}

std::size_t RoutingStateStore::size() const {
  std::size_t live = 0;
  for (const RoutingState& s : slots_) {
    if (s.stamp != 0) ++live;
  }
  return live;
}

RoutingState* RoutingStateStore::match(const Topology& child,
                                       std::uint64_t hint,
                                       std::size_t max_diff,
                                       std::vector<Edge>& added,
                                       std::vector<Edge>& removed) {
  // Probe order: the hinted slot, then live slots most-recent-first. Each
  // probe computes the real bounded diff, so a match is always genuine.
  RoutingState* probes[kMaxProbes];
  std::size_t num_probes = 0;
  if (hint != 0) {
    for (RoutingState& s : slots_) {
      if (s.stamp != 0 && s.fingerprint == hint) {
        probes[num_probes++] = &s;
        break;
      }
    }
  }
  while (num_probes < kMaxProbes) {
    RoutingState* best = nullptr;
    for (RoutingState& s : slots_) {
      if (s.stamp == 0) continue;
      bool taken = false;
      for (std::size_t i = 0; i < num_probes; ++i) {
        if (probes[i] == &s) taken = true;
      }
      if (taken) continue;
      if (best == nullptr || s.stamp > best->stamp) best = &s;
    }
    if (best == nullptr) break;
    probes[num_probes++] = best;
  }
  for (std::size_t i = 0; i < num_probes; ++i) {
    RoutingState* s = probes[i];
    if (s->topology.num_nodes() != child.num_nodes()) continue;
    if (Topology::diff_edges(s->topology, child, added, removed, max_diff)) {
      s->stamp = ++clock_;
      return s;
    }
  }
  return nullptr;
}

RoutingState& RoutingStateStore::begin_fill(const RoutingState* keep) {
  RoutingState* victim = nullptr;
  for (RoutingState& s : slots_) {
    if (&s == keep) continue;
    if (victim == nullptr || s.stamp < victim->stamp) victim = &s;
  }
  victim->stamp = 0;  // free until commit(); a failed fill stays free
  return *victim;
}

void RoutingStateStore::commit(RoutingState& slot, const Topology& g) {
  slot.fingerprint = g.fingerprint();
  slot.stamp = ++clock_;
}

void RoutingStateStore::touch(const Topology& g, std::uint64_t fingerprint) {
  for (RoutingState& s : slots_) {
    if (s.stamp != 0 && s.fingerprint == fingerprint && s.topology == g) {
      s.stamp = ++clock_;
      return;
    }
  }
}

}  // namespace cold
