// Power-Law Random Graphs (Aiello–Chung–Lu [11]; paper §2, Table 1).
//
// Degrees are drawn from a discrete power law P(d) ∝ d^(-exponent); nodes
// are expanded into as many stubs as their degree and stubs are paired
// uniformly at random (configuration model). Self-loops and multi-edges are
// discarded, as is conventional when a simple graph is required — one of the
// ways these models violate the constraints real networks satisfy.
#pragma once

#include "graph/topology.h"
#include "util/rng.h"

namespace cold {

struct PlrgParams {
  double exponent = 2.5;  ///< power-law exponent (> 1)
  int min_degree = 1;
  int max_degree = 0;  ///< 0 means n - 1
};

Topology plrg(std::size_t n, const PlrgParams& params, Rng& rng);

/// The degree sequence sampler, exposed for testing the distribution.
std::vector<int> plrg_degrees(std::size_t n, const PlrgParams& params,
                              Rng& rng);

}  // namespace cold
