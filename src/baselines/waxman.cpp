#include "baselines/waxman.h"

#include <cmath>
#include <stdexcept>

namespace cold {

Topology waxman(const std::vector<Point>& locations, const WaxmanParams& params,
                Rng& rng) {
  if (params.alpha <= 0.0 || params.alpha > 1.0 || params.beta <= 0.0 ||
      params.beta > 1.0) {
    throw std::invalid_argument("waxman: alpha, beta must be in (0, 1]");
  }
  const std::size_t n = locations.size();
  double max_dist = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      max_dist = std::max(max_dist, distance(locations[i], locations[j]));
    }
  }
  Topology g(n);
  if (max_dist == 0.0) return g;  // coincident points: no meaningful decay
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      const double d = distance(locations[i], locations[j]);
      const double p = params.beta * std::exp(-d / (params.alpha * max_dist));
      if (rng.bernoulli(p)) g.add_edge(i, j);
    }
  }
  return g;
}

}  // namespace cold
