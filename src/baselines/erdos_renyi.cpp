#include "baselines/erdos_renyi.h"

#include <stdexcept>

namespace cold {

Topology erdos_renyi_gnp(std::size_t n, double p, Rng& rng) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("erdos_renyi_gnp: p outside [0,1]");
  }
  Topology g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.bernoulli(p)) g.add_edge(i, j);
    }
  }
  return g;
}

Topology erdos_renyi_gnm(std::size_t n, std::size_t m, Rng& rng) {
  const std::size_t max_links = n * (n - 1) / 2;
  if (m > max_links) {
    throw std::invalid_argument("erdos_renyi_gnm: too many links requested");
  }
  // Partial Fisher-Yates over the flat pair index.
  std::vector<std::size_t> idx(max_links);
  for (std::size_t i = 0; i < max_links; ++i) idx[i] = i;
  Topology g(n);
  for (std::size_t k = 0; k < m; ++k) {
    std::swap(idx[k], idx[k + rng.uniform_index(max_links - k)]);
    // Decode flat index -> (i, j), i < j.
    std::size_t flat = idx[k];
    NodeId i = 0;
    std::size_t row_len = n - 1;
    while (flat >= row_len) {
      flat -= row_len;
      --row_len;
      ++i;
    }
    const NodeId j = i + 1 + flat;
    g.add_edge(i, j);
  }
  return g;
}

}  // namespace cold
