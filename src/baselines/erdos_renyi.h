// Erdős–Rényi random graphs — the classical baseline the paper compares
// against (§2, Table 1, Fig 2b). Provided in both the G(n,p) and G(n,m)
// forms; the latter is what Fig 2b uses ("the same number of links ... in
// random places").
#pragma once

#include "graph/topology.h"
#include "util/rng.h"

namespace cold {

/// G(n, p): each of the C(n,2) links present independently with prob. p.
Topology erdos_renyi_gnp(std::size_t n, double p, Rng& rng);

/// G(n, m): exactly m links, uniform over all C(C(n,2), m) link sets.
/// Throws if m exceeds C(n,2).
Topology erdos_renyi_gnm(std::size_t n, std::size_t m, Rng& rng);

}  // namespace cold
