// Waxman random graphs (§2, Table 1): Erdős–Rényi with geographic decay.
// Link {u,v} exists with probability beta * exp(-d(u,v) / (alpha * L)),
// where L is the maximum node distance. Adds a notion of distance but, as
// the paper notes, still guarantees neither connectivity nor capacities.
#pragma once

#include <vector>

#include "geom/point.h"
#include "graph/topology.h"
#include "util/rng.h"

namespace cold {

struct WaxmanParams {
  double alpha = 0.4;  ///< distance-decay scale, in (0, 1]
  double beta = 0.4;   ///< overall link density, in (0, 1]
};

/// Samples a Waxman graph over the given node locations.
Topology waxman(const std::vector<Point>& locations, const WaxmanParams& params,
                Rng& rng);

}  // namespace cold
