#include "baselines/fkp.h"

#include <limits>
#include <stdexcept>

#include "geom/point_process.h"
#include "geom/region.h"

namespace cold {

Topology fkp_over_locations(const std::vector<Point>& locations,
                            const FkpParams& params) {
  if (params.alpha < 0) {
    throw std::invalid_argument("fkp: alpha must be >= 0");
  }
  const std::size_t n = locations.size();
  if (n == 0) return Topology(0);
  Topology g(n);
  std::vector<int> hops(n, 0);  // hop distance to the root (node 0)
  for (NodeId i = 1; i < n; ++i) {
    NodeId best = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (NodeId j = 0; j < i; ++j) {
      const double score =
          params.alpha * distance(locations[i], locations[j]) + hops[j];
      if (score < best_score) {
        best_score = score;
        best = j;
      }
    }
    g.add_edge(i, best);
    hops[i] = hops[best] + 1;
  }
  return g;
}

FkpResult fkp(std::size_t n, const FkpParams& params, Rng& rng) {
  FkpResult result;
  result.locations = UniformProcess().sample(n, Rectangle(), rng);
  result.topology = fkp_over_locations(result.locations, params);
  return result;
}

}  // namespace cold
