// The FKP "heuristically optimized trade-offs" model (Fabrikant,
// Koutsoupias, Papadimitriou [17]; paper §3).
//
// Nodes arrive sequentially at random positions; each attaches to the
// existing node minimizing  alpha * d(i, j) + h(j),  where d is Euclidean
// distance and h(j) is j's hop count to the root. Tuning alpha sweeps the
// output from a star (alpha ~ 0) through power-law-ish trees to dynamic
// MST-like trees (alpha large). The paper cites this as a precedent for
// optimization-driven synthesis whose cost function, unlike COLD's, has no
// direct operational meaning — which is why it appears here as a baseline,
// not a recommendation.
#pragma once

#include <vector>

#include "geom/point.h"
#include "graph/topology.h"
#include "util/rng.h"

namespace cold {

struct FkpParams {
  double alpha = 4.0;  ///< distance-vs-centrality trade-off (>= 0)
};

struct FkpResult {
  Topology topology;            ///< always a tree rooted at node 0
  std::vector<Point> locations; ///< arrival positions (node 0 first)
};

/// Grows an n-node FKP tree on the unit square. Deterministic given `rng`.
FkpResult fkp(std::size_t n, const FkpParams& params, Rng& rng);

/// Variant over fixed, caller-supplied positions (first point is the root).
Topology fkp_over_locations(const std::vector<Point>& locations,
                            const FkpParams& params);

}  // namespace cold
