#include "baselines/plrg.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cold {

std::vector<int> plrg_degrees(std::size_t n, const PlrgParams& params,
                              Rng& rng) {
  if (params.exponent <= 1.0) {
    throw std::invalid_argument("plrg: exponent must be > 1");
  }
  const int max_degree =
      params.max_degree > 0 ? params.max_degree : static_cast<int>(n) - 1;
  if (params.min_degree < 1 || params.min_degree > max_degree) {
    throw std::invalid_argument("plrg: bad degree bounds");
  }
  // Discrete power-law pmf over [min_degree, max_degree].
  std::vector<double> pmf;
  for (int d = params.min_degree; d <= max_degree; ++d) {
    pmf.push_back(std::pow(static_cast<double>(d), -params.exponent));
  }
  std::vector<int> degrees(n);
  for (std::size_t i = 0; i < n; ++i) {
    degrees[i] = params.min_degree + static_cast<int>(rng.weighted_index(pmf));
  }
  // The configuration model needs an even stub count; bump one node.
  int total = std::accumulate(degrees.begin(), degrees.end(), 0);
  if (total % 2 != 0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (degrees[i] < max_degree) {
        ++degrees[i];
        break;
      }
    }
  }
  return degrees;
}

Topology plrg(std::size_t n, const PlrgParams& params, Rng& rng) {
  const std::vector<int> degrees = plrg_degrees(n, params, rng);
  // Expand into stubs and pair uniformly.
  std::vector<NodeId> stubs;
  for (NodeId v = 0; v < n; ++v) {
    for (int s = 0; s < degrees[v]; ++s) stubs.push_back(v);
  }
  rng.shuffle(stubs);
  Topology g(n);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const NodeId a = stubs[i];
    const NodeId b = stubs[i + 1];
    if (a == b) continue;         // drop self-loops
    g.add_edge(a, b);             // idempotent: drops multi-edges
  }
  return g;
}

}  // namespace cold
