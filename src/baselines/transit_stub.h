// GT-ITM-style transit-stub topologies (Zegura et al. [5]; paper §1 cites
// this family as the classical structural generator for router-level
// expansion). A two-level hierarchy:
//
//   * a transit backbone: `transit_domains` domains, each a connected random
//     graph of `transit_size` nodes; domains interconnected by random links;
//   * stub domains: each transit node sponsors `stubs_per_transit` stub
//     domains, each a connected random graph of `stub_size` nodes attached
//     to its transit node.
//
// Included as the structural baseline COLD's design-driven approach is an
// alternative to: transit-stub imposes hierarchy by construction rather
// than deriving it from costs.
#pragma once

#include <vector>

#include "graph/topology.h"
#include "util/rng.h"

namespace cold {

struct TransitStubParams {
  std::size_t transit_domains = 2;
  std::size_t transit_size = 4;       ///< nodes per transit domain
  double transit_edge_prob = 0.6;     ///< intra-transit-domain density
  std::size_t inter_transit_links = 2;///< extra links between domain pairs
  std::size_t stubs_per_transit = 2;  ///< stub domains per transit node
  std::size_t stub_size = 3;          ///< nodes per stub domain
  double stub_edge_prob = 0.4;        ///< intra-stub density
};

enum class TsNodeKind { kTransit, kStub };

struct TransitStubResult {
  Topology topology;               ///< always connected
  std::vector<TsNodeKind> kinds;   ///< per node
  std::vector<std::size_t> domain; ///< domain id per node (transit domains
                                   ///< first, then stub domains)
};

/// Generates a transit-stub topology. Node count is
/// transit_domains*transit_size * (1 + stubs_per_transit*stub_size).
TransitStubResult transit_stub(const TransitStubParams& params, Rng& rng);

}  // namespace cold
