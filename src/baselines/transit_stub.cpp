#include "baselines/transit_stub.h"

#include <stdexcept>

#include "graph/algorithms.h"

namespace cold {

namespace {

// Adds a connected ER subgraph over the given node ids: random links at
// probability p, then a random spanning chain over any leftover components.
void add_connected_er(Topology& g, const std::vector<NodeId>& nodes, double p,
                      Rng& rng) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (rng.bernoulli(p)) g.add_edge(nodes[i], nodes[j]);
    }
  }
  // Connect leftover pieces: union-find over the subgraph's own edges.
  UnionFind uf(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (g.has_edge(nodes[i], nodes[j])) uf.unite(i, j);
    }
  }
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (uf.unite(0, i)) g.add_edge(nodes[0], nodes[i]);
  }
}

}  // namespace

TransitStubResult transit_stub(const TransitStubParams& params, Rng& rng) {
  if (params.transit_domains == 0 || params.transit_size == 0) {
    throw std::invalid_argument("transit_stub: need >= 1 transit domain/node");
  }
  if (params.transit_edge_prob < 0 || params.transit_edge_prob > 1 ||
      params.stub_edge_prob < 0 || params.stub_edge_prob > 1) {
    throw std::invalid_argument("transit_stub: probabilities outside [0,1]");
  }
  const std::size_t transit_total =
      params.transit_domains * params.transit_size;
  const std::size_t stubs_total = transit_total * params.stubs_per_transit;
  const std::size_t n = transit_total + stubs_total * params.stub_size;

  TransitStubResult result;
  result.topology = Topology(n);
  result.kinds.assign(n, TsNodeKind::kStub);
  result.domain.assign(n, 0);

  // Transit domains occupy ids [0, transit_total).
  std::vector<std::vector<NodeId>> transit(params.transit_domains);
  for (std::size_t d = 0; d < params.transit_domains; ++d) {
    for (std::size_t k = 0; k < params.transit_size; ++k) {
      const NodeId v = d * params.transit_size + k;
      transit[d].push_back(v);
      result.kinds[v] = TsNodeKind::kTransit;
      result.domain[v] = d;
    }
    add_connected_er(result.topology, transit[d], params.transit_edge_prob,
                     rng);
  }
  // Inter-transit links: every domain pair gets `inter_transit_links`
  // random links (at least one, so the backbone is connected).
  for (std::size_t a = 0; a < params.transit_domains; ++a) {
    for (std::size_t b = a + 1; b < params.transit_domains; ++b) {
      const std::size_t want = std::max<std::size_t>(1, params.inter_transit_links);
      for (std::size_t l = 0; l < want; ++l) {
        const NodeId u = transit[a][rng.uniform_index(transit[a].size())];
        const NodeId v = transit[b][rng.uniform_index(transit[b].size())];
        result.topology.add_edge(u, v);
      }
    }
  }
  // Stub domains.
  NodeId next = transit_total;
  std::size_t stub_domain_id = params.transit_domains;
  for (NodeId t = 0; t < transit_total; ++t) {
    for (std::size_t s = 0; s < params.stubs_per_transit; ++s) {
      std::vector<NodeId> stub;
      for (std::size_t k = 0; k < params.stub_size; ++k) {
        stub.push_back(next);
        result.domain[next] = stub_domain_id;
        ++next;
      }
      if (!stub.empty()) {
        add_connected_er(result.topology, stub, params.stub_edge_prob, rng);
        // Home the stub on its transit node through a random member.
        result.topology.add_edge(t, stub[rng.uniform_index(stub.size())]);
      }
      ++stub_domain_id;
    }
  }
  return result;
}

}  // namespace cold
