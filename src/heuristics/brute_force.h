// Exhaustive enumeration of all topologies on small node sets (paper §5).
//
// The paper validates the GA by checking that "for networks of up to 8 PoPs
// the GA always finds the real optimal solution". This module provides the
// ground truth: enumerate every graph on n nodes, score the feasible
// (connected) ones, return the optimum. The count is 2^(n(n-1)/2), so this
// is gated to n <= 8 (and even that takes a while; tests use n <= 6).
#pragma once

#include "cost/evaluator.h"
#include "graph/topology.h"

namespace cold {

struct BruteForceResult {
  Topology best;                   ///< a minimum-cost topology
  double cost = 0.0;               ///< its cost
  std::size_t total = 0;           ///< topologies enumerated
  std::size_t feasible = 0;        ///< connected (finite-cost) topologies
  std::size_t optima = 1;          ///< number of topologies attaining the optimum
};

/// Enumerates all 2^(n(n-1)/2) graphs and returns the global optimum.
/// Throws std::invalid_argument for n < 2 or n > max_nodes (default 8).
BruteForceResult brute_force_optimum(Evaluator& eval,
                                     std::size_t max_nodes = 8);

}  // namespace cold
