// Greedy hub-growth heuristics (paper §5).
//
// Each heuristic starts from the best single-hub star (every other PoP a
// leaf of the hub) and converts leaves to hubs one at a time while doing so
// reduces network cost; remaining leaves always attach to their closest hub.
// The variants differ in how a new hub is wired to the existing hubs:
//
//   RandomGreedy      iterate PoPs in random permutations; greedy links
//   Complete          try every candidate; hubs form a clique
//   Mst               try every candidate; hubs connected by an MST
//   GreedyAttachment  try every candidate; greedy links per new hub
//
// These serve two roles, exactly as in the paper: (a) competitors used to
// validate the GA (Fig 3), and (b) seed topologies for the "initialized GA",
// which is then guaranteed to be at least as good as every heuristic.
#pragma once

#include <string>
#include <vector>

#include "cost/evaluator.h"
#include "graph/topology.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"

namespace cold {

enum class HubStrategy {
  kRandomGreedy,
  kComplete,
  kMst,
  kGreedyAttachment,
};

/// All strategies, in a stable order (for sweeps and reporting).
std::vector<HubStrategy> all_hub_strategies();

std::string to_string(HubStrategy s);

struct HubHeuristicOptions {
  /// Number of random permutations tried by RandomGreedy.
  std::size_t num_permutations = 10;
};

struct HeuristicResult {
  Topology topology;
  double cost = 0.0;
  std::string name;
  std::uint64_t wall_ns = 0;  ///< wall-clock spent computing this result
};

/// Runs one heuristic against the evaluator's context. The returned
/// topology is always connected; its cost is finite.
HeuristicResult run_hub_heuristic(Evaluator& eval, HubStrategy strategy,
                                  Rng& rng,
                                  const HubHeuristicOptions& options = {});

/// Runs every heuristic; results are in all_hub_strategies() order. The
/// optional observer receives one HeuristicDone per heuristic; the optional
/// stop condition is checked between heuristics (a stopped sweep returns
/// the results computed so far) and charged with their evaluations.
std::vector<HeuristicResult> run_all_heuristics(
    Evaluator& eval, Rng& rng, const HubHeuristicOptions& options = {},
    RunObserver* observer = nullptr, StopCondition* stop = nullptr);

/// Builds the "hub set" topology used by all heuristics: the given hubs are
/// wired with `hub_edges` (edges between hub node ids) and every non-hub
/// attaches to its closest hub by distance. Exposed for testing.
Topology build_hub_topology(std::size_t n, const std::vector<NodeId>& hubs,
                            const std::vector<Edge>& hub_edges,
                            const DistanceProvider& lengths);

}  // namespace cold
