// Alternative optimization heuristics: hill climbing and simulated
// annealing over the link-flip neighbourhood.
//
// The paper chooses a GA (§3.3) for flexibility, competitiveness, and its
// population output, but explicitly frames it as one heuristic among many —
// "network engineers ... do so heuristically". These optimizers provide the
// comparison points: the ablation bench (ablation_optimizers) measures how
// the GA's solution quality and evaluation budget compare against plain
// local search and annealing on identical contexts, which is precisely the
// kind of evidence §3.3's choice rests on.
//
// Both optimizers work on any Objective and preserve connectivity through
// the same repair rule as the GA.
#pragma once

#include "ga/objective.h"
#include "graph/topology.h"
#include "util/rng.h"

namespace cold {

struct LocalSearchResult {
  Topology best;
  double best_cost = 0.0;
  std::size_t evaluations = 0;
  std::size_t moves_accepted = 0;
};

struct HillClimbConfig {
  /// Starting point; if empty (0 nodes), the distance-MST is used.
  Topology initial;
  /// Maximum full neighbourhood passes (each pass evaluates every possible
  /// link flip once).
  std::size_t max_passes = 50;
  /// Steepest-descent (scan all flips, take the best) vs first-improvement.
  bool steepest = true;
};

/// Deterministic hill climbing over single link flips. Terminates at a local
/// optimum or after max_passes.
LocalSearchResult hill_climb(Objective& objective,
                             const HillClimbConfig& config);

struct AnnealingConfig {
  Topology initial;           ///< empty -> distance-MST
  std::size_t iterations = 20000;
  double initial_temperature = 0.0;  ///< 0 -> auto-calibrated from sampling
  double cooling = 0.9995;           ///< geometric cooling per iteration
  /// Probability a move is a node-to-leaf collapse rather than a link flip
  /// (mirrors the GA's node mutation; helps in high-k3 regimes).
  double node_move_prob = 0.2;
};

/// Simulated annealing with link-flip and node-collapse moves. Infeasible
/// (disconnected) proposals are repaired before evaluation, exactly like GA
/// offspring. Deterministic given `rng`.
LocalSearchResult simulated_annealing(Objective& objective,
                                      const AnnealingConfig& config, Rng& rng);

}  // namespace cold
