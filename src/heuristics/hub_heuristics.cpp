#include "heuristics/hub_heuristics.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "graph/algorithms.h"

namespace cold {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Growing hub set plus the explicit links among hubs.
struct HubState {
  std::vector<NodeId> hubs;
  std::vector<Edge> hub_links;

  bool is_hub(NodeId v) const {
    return std::find(hubs.begin(), hubs.end(), v) != hubs.end();
  }
};

Topology realize(const HubState& state, std::size_t n,
                 const DistanceProvider& lengths) {
  return build_hub_topology(n, state.hubs, state.hub_links, lengths);
}

// Cheapest-by-distance existing hub for a new node.
NodeId nearest_hub(const HubState& state, NodeId v,
                   const DistanceProvider& lengths) {
  NodeId best = state.hubs.front();
  for (NodeId h : state.hubs) {
    if (lengths(v, h) < lengths(v, best)) best = h;
  }
  return best;
}

// Best single-hub star: try every centre, keep the cheapest.
std::pair<HubState, double> best_star(Evaluator& eval) {
  const std::size_t n = eval.num_nodes();
  HubState best_state;
  double best_cost = kInf;
  for (NodeId centre = 0; centre < n; ++centre) {
    HubState state{{centre}, {}};
    const double c = eval.cost(realize(state, n, eval.lengths()));
    if (c < best_cost) {
      best_cost = c;
      best_state = state;
    }
  }
  return {best_state, best_cost};
}

// Rewires the hub links according to the strategy's fixed policy
// (clique for Complete, MST for Mst). GreedyAttachment/RandomGreedy keep
// explicit incremental links and do not use this.
void rewire_fixed(HubState& state, HubStrategy strategy,
                  const DistanceProvider& lengths) {
  state.hub_links.clear();
  const std::size_t h = state.hubs.size();
  if (h < 2) return;
  if (strategy == HubStrategy::kComplete) {
    for (std::size_t i = 0; i < h; ++i) {
      for (std::size_t j = i + 1; j < h; ++j) {
        state.hub_links.push_back(make_edge(state.hubs[i], state.hubs[j]));
      }
    }
    return;
  }
  // MST over hub-to-hub distances.
  Matrix<double> hub_dist = Matrix<double>::square(h, 0.0);
  for (std::size_t i = 0; i < h; ++i) {
    for (std::size_t j = 0; j < h; ++j) {
      hub_dist(i, j) = lengths(state.hubs[i], state.hubs[j]);
    }
  }
  for (const Edge& e : minimum_spanning_tree(hub_dist).edges()) {
    state.hub_links.push_back(make_edge(state.hubs[e.u], state.hubs[e.v]));
  }
}

// Greedy link expansion for a newly accepted hub `c` (paper: "picking the
// lowest cost connecting link, etc., until there are no more cost
// reductions"): starting from c's single nearest-hub link, keep adding the
// (c, hub) link that lowers total cost the most.
double greedy_expand_links(Evaluator& eval, HubState& state, NodeId c,
                           double current_cost) {
  const std::size_t n = eval.num_nodes();
  bool improved = true;
  while (improved) {
    improved = false;
    Edge best_link{};
    double best_cost = current_cost;
    for (NodeId h : state.hubs) {
      if (h == c) continue;
      const Edge cand = make_edge(c, h);
      if (std::find(state.hub_links.begin(), state.hub_links.end(), cand) !=
          state.hub_links.end()) {
        continue;
      }
      state.hub_links.push_back(cand);
      const double cost = eval.cost(realize(state, n, eval.lengths()));
      state.hub_links.pop_back();
      if (cost < best_cost) {
        best_cost = cost;
        best_link = cand;
        improved = true;
      }
    }
    if (improved) {
      state.hub_links.push_back(best_link);
      current_cost = best_cost;
    }
  }
  return current_cost;
}

// Tentatively adds `c` as a hub under the given strategy; returns the
// candidate cost (state is left modified; callers copy before trying).
double add_hub(Evaluator& eval, HubState& state, NodeId c,
               HubStrategy strategy) {
  const std::size_t n = eval.num_nodes();
  if (strategy == HubStrategy::kComplete || strategy == HubStrategy::kMst) {
    state.hubs.push_back(c);
    rewire_fixed(state, strategy, eval.lengths());
    return eval.cost(realize(state, n, eval.lengths()));
  }
  // Greedy strategies: candidate wired only to its nearest hub; the full
  // greedy expansion happens once the candidate is accepted.
  const NodeId h = nearest_hub(state, c, eval.lengths());
  state.hubs.push_back(c);
  state.hub_links.push_back(make_edge(c, h));
  return eval.cost(realize(state, n, eval.lengths()));
}

HeuristicResult finish(Evaluator& eval, const HubState& state, double cost,
                       HubStrategy strategy) {
  HeuristicResult r;
  r.topology = realize(state, eval.num_nodes(), eval.lengths());
  r.cost = cost;
  r.name = to_string(strategy);
  return r;
}

HeuristicResult run_candidate_loop(Evaluator& eval, HubStrategy strategy) {
  const std::size_t n = eval.num_nodes();
  auto [state, cost] = best_star(eval);
  while (state.hubs.size() < n) {
    HubState best_state;
    double best_cost = cost;
    bool improved = false;
    for (NodeId c = 0; c < n; ++c) {
      if (state.is_hub(c)) continue;
      HubState trial = state;
      const double trial_cost = add_hub(eval, trial, c, strategy);
      if (trial_cost < best_cost) {
        best_cost = trial_cost;
        best_state = std::move(trial);
        improved = true;
      }
    }
    if (!improved) break;
    state = std::move(best_state);
    cost = best_cost;
    if (strategy == HubStrategy::kGreedyAttachment) {
      cost = greedy_expand_links(eval, state, state.hubs.back(), cost);
    }
  }
  return finish(eval, state, cost, strategy);
}

HeuristicResult run_random_greedy(Evaluator& eval, Rng& rng,
                                  const HubHeuristicOptions& options) {
  const std::size_t n = eval.num_nodes();
  HeuristicResult best;
  best.cost = kInf;
  const std::size_t perms = std::max<std::size_t>(1, options.num_permutations);
  for (std::size_t p = 0; p < perms; ++p) {
    auto [state, cost] = best_star(eval);
    for (std::size_t idx : rng.permutation(n)) {
      const NodeId c = idx;
      if (state.is_hub(c)) continue;
      HubState trial = state;
      double trial_cost = add_hub(eval, trial, c, HubStrategy::kRandomGreedy);
      if (trial_cost < cost) {
        trial_cost = greedy_expand_links(eval, trial, c, trial_cost);
        state = std::move(trial);
        cost = trial_cost;
      }
    }
    if (cost < best.cost) {
      best = finish(eval, state, cost, HubStrategy::kRandomGreedy);
    }
  }
  return best;
}

}  // namespace

std::vector<HubStrategy> all_hub_strategies() {
  return {HubStrategy::kRandomGreedy, HubStrategy::kComplete, HubStrategy::kMst,
          HubStrategy::kGreedyAttachment};
}

std::string to_string(HubStrategy s) {
  switch (s) {
    case HubStrategy::kRandomGreedy:
      return "random greedy";
    case HubStrategy::kComplete:
      return "complete";
    case HubStrategy::kMst:
      return "mst";
    case HubStrategy::kGreedyAttachment:
      return "greedy attachment";
  }
  throw std::invalid_argument("unknown HubStrategy");
}

Topology build_hub_topology(std::size_t n, const std::vector<NodeId>& hubs,
                            const std::vector<Edge>& hub_edges,
                            const DistanceProvider& lengths) {
  if (hubs.empty()) throw std::invalid_argument("build_hub_topology: no hubs");
  Topology g(n);
  std::vector<bool> is_hub(n, false);
  for (NodeId h : hubs) {
    if (h >= n) throw std::invalid_argument("build_hub_topology: bad hub id");
    is_hub[h] = true;
  }
  for (const Edge& e : hub_edges) {
    if (!is_hub[e.u] || !is_hub[e.v]) {
      throw std::invalid_argument("build_hub_topology: hub edge on non-hub");
    }
    g.add_edge(e.u, e.v);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (is_hub[v]) continue;
    NodeId best = hubs.front();
    for (NodeId h : hubs) {
      if (lengths(v, h) < lengths(v, best)) best = h;
    }
    g.add_edge(v, best);
  }
  return g;
}

HeuristicResult run_hub_heuristic(Evaluator& eval, HubStrategy strategy,
                                  Rng& rng,
                                  const HubHeuristicOptions& options) {
  if (eval.num_nodes() < 2) {
    throw std::invalid_argument("run_hub_heuristic: need at least 2 PoPs");
  }
  if (strategy == HubStrategy::kRandomGreedy) {
    return run_random_greedy(eval, rng, options);
  }
  return run_candidate_loop(eval, strategy);
}

std::vector<HeuristicResult> run_all_heuristics(
    Evaluator& eval, Rng& rng, const HubHeuristicOptions& options,
    RunObserver* observer, StopCondition* stop) {
  if (stop != nullptr) stop->arm();
  std::vector<HeuristicResult> out;
  for (HubStrategy s : all_hub_strategies()) {
    if (stop != nullptr && stop->should_stop()) break;
    const auto started = std::chrono::steady_clock::now();
    const std::size_t evals_before = eval.evaluations();
    HeuristicResult r = run_hub_heuristic(eval, s, rng, options);
    r.wall_ns = elapsed_ns(started);
    if (stop != nullptr) {
      stop->add_evaluations(eval.evaluations() - evals_before);
    }
    if (observer != nullptr) {
      observer->on_heuristic_done({r.name, r.cost, r.wall_ns});
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace cold
