#include "heuristics/local_search.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ga/operators.h"
#include "ga/repair.h"
#include "graph/algorithms.h"

namespace cold {

namespace {

Topology starting_point(Objective& objective, const Topology& initial) {
  if (initial.num_nodes() == 0) {
    return minimum_spanning_tree(objective.lengths());
  }
  if (initial.num_nodes() != objective.num_nodes()) {
    throw std::invalid_argument("local search: initial topology size mismatch");
  }
  Topology g = initial;
  repair_connectivity(g, objective.lengths());
  return g;
}

}  // namespace

LocalSearchResult hill_climb(Objective& objective,
                             const HillClimbConfig& config) {
  const std::size_t n = objective.num_nodes();
  LocalSearchResult result;
  result.best = starting_point(objective, config.initial);
  result.best_cost = objective.cost(result.best);
  ++result.evaluations;

  for (std::size_t pass = 0; pass < config.max_passes; ++pass) {
    bool improved = false;
    NodeId best_i = 0, best_j = 0;
    double best_cost = result.best_cost;
    for (NodeId i = 0; i < n && !(improved && !config.steepest); ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        Topology trial = result.best;
        trial.set_edge(i, j, !trial.has_edge(i, j));
        const double cost = objective.cost(trial);
        ++result.evaluations;
        if (cost < best_cost - 1e-12) {
          best_cost = cost;
          best_i = i;
          best_j = j;
          improved = true;
          if (!config.steepest) break;
        }
      }
    }
    if (!improved) break;
    result.best.set_edge(best_i, best_j, !result.best.has_edge(best_i, best_j));
    result.best_cost = best_cost;
    ++result.moves_accepted;
  }
  return result;
}

LocalSearchResult simulated_annealing(Objective& objective,
                                      const AnnealingConfig& config,
                                      Rng& rng) {
  const std::size_t n = objective.num_nodes();
  LocalSearchResult result;
  Topology current = starting_point(objective, config.initial);
  double current_cost = objective.cost(current);
  ++result.evaluations;
  result.best = current;
  result.best_cost = current_cost;

  // Auto-calibrate T0 so a median-size uphill move is accepted ~60% of the
  // time initially: sample some random flips and use their mean |delta|.
  double temperature = config.initial_temperature;
  if (temperature <= 0.0) {
    double total_delta = 0.0;
    int samples = 0;
    for (int s = 0; s < 20; ++s) {
      Topology trial = current;
      const NodeId i = rng.uniform_index(n);
      const NodeId j = rng.uniform_index(n);
      if (i == j) continue;
      trial.set_edge(i, j, !trial.has_edge(i, j));
      repair_connectivity(trial, objective.lengths());
      const double c = objective.cost(trial);
      ++result.evaluations;
      if (std::isfinite(c)) {
        total_delta += std::abs(c - current_cost);
        ++samples;
      }
    }
    const double mean_delta = samples > 0 ? total_delta / samples : 1.0;
    temperature = std::max(1e-9, mean_delta / std::log(1.0 / 0.6));
  }

  for (std::size_t it = 0; it < config.iterations; ++it) {
    Topology trial = current;
    if (rng.bernoulli(config.node_move_prob)) {
      if (!node_mutation(trial, objective.lengths(), rng)) {
        link_mutation(trial, rng);
      }
    } else {
      const NodeId i = rng.uniform_index(n);
      const NodeId j = rng.uniform_index(n);
      if (i == j) continue;
      trial.set_edge(i, j, !trial.has_edge(i, j));
    }
    repair_connectivity(trial, objective.lengths());
    const double cost = objective.cost(trial);
    ++result.evaluations;
    const double delta = cost - current_cost;
    if (delta <= 0.0 ||
        (std::isfinite(cost) && rng.uniform() < std::exp(-delta / temperature))) {
      current = std::move(trial);
      current_cost = cost;
      ++result.moves_accepted;
      if (current_cost < result.best_cost) {
        result.best = current;
        result.best_cost = current_cost;
      }
    }
    temperature *= config.cooling;
  }
  return result;
}

}  // namespace cold
