#include "heuristics/brute_force.h"

#include <bit>
#include <limits>
#include <stdexcept>

namespace cold {

BruteForceResult brute_force_optimum(Evaluator& eval, std::size_t max_nodes) {
  const std::size_t n = eval.num_nodes();
  if (n < 2) throw std::invalid_argument("brute_force_optimum: n must be >= 2");
  if (n > max_nodes || max_nodes > 8) {
    throw std::invalid_argument(
        "brute_force_optimum: n too large for exhaustive enumeration");
  }
  // Enumerate edge subsets as bitmasks over the n(n-1)/2 node pairs.
  std::vector<Edge> pairs;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) pairs.push_back(Edge{i, j});
  }
  const std::size_t bits = pairs.size();
  const std::uint64_t limit = 1ULL << bits;

  BruteForceResult result;
  result.cost = std::numeric_limits<double>::infinity();
  Topology g(n);
  std::uint64_t prev = 0;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    ++result.total;
    // Flip only the bits that changed vs the previous mask (Gray-style
    // incremental update keeps enumeration O(popcount of delta)).
    std::uint64_t delta = mask ^ prev;
    while (delta != 0) {
      const int b = std::countr_zero(delta);
      delta &= delta - 1;
      const Edge& e = pairs[static_cast<std::size_t>(b)];
      g.set_edge(e.u, e.v, (mask >> b) & 1ULL);
    }
    prev = mask;
    // A connected graph needs at least n-1 edges.
    if (static_cast<std::size_t>(std::popcount(mask)) + 1 < n) continue;
    const double cost = eval.cost(g);
    if (cost == std::numeric_limits<double>::infinity()) continue;
    ++result.feasible;
    if (cost < result.cost) {
      result.cost = cost;
      result.best = g;
      result.optima = 1;
    } else if (cost == result.cost) {
      ++result.optima;
    }
  }
  return result;
}

}  // namespace cold
