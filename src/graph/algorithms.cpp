#include "graph/algorithms.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace cold {

std::vector<std::size_t> connected_components(const Topology& g) {
  const std::size_t n = g.num_nodes();
  constexpr std::size_t kUnvisited = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> label(n, kUnvisited);
  std::size_t next_label = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (label[start] != kUnvisited) continue;
    label[start] = next_label;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId u : g.neighbors(v)) {
        if (label[u] == kUnvisited) {
          label[u] = next_label;
          stack.push_back(u);
        }
      }
    }
    ++next_label;
  }
  return label;
}

std::size_t num_components(const Topology& g) {
  if (g.num_nodes() == 0) return 0;
  const auto labels = connected_components(g);
  return 1 + *std::max_element(labels.begin(), labels.end());
}

bool is_connected(const Topology& g) {
  return g.num_nodes() <= 1 || num_components(g) == 1;
}

Topology minimum_spanning_tree(const DistanceProvider& weights) {
  const std::size_t n = weights.rows();
  if (n == 0 || weights.cols() != n) {
    throw std::invalid_argument("minimum_spanning_tree: need square n>=1 matrix");
  }
  Topology tree(n);
  if (n == 1) return tree;
  // Prim from node 0 in O(n^2): best[v] = cheapest connection into the tree.
  std::vector<bool> in_tree(n, false);
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<NodeId> parent(n, 0);
  in_tree[0] = true;
  // Whole-row scans go through the provider's row() so matrix-free
  // instances recompute each row once (LRU row tiles), not per entry.
  const double* row0 = weights.row_view(0);
  for (NodeId v = 1; v < n; ++v) best[v] = row0[v];
  for (std::size_t added = 1; added < n; ++added) {
    NodeId pick = n;
    for (NodeId v = 0; v < n; ++v) {
      if (!in_tree[v] && (pick == n || best[v] < best[pick])) pick = v;
    }
    in_tree[pick] = true;
    tree.add_edge(parent[pick], pick);
    const double* row = weights.row_view(pick);
    for (NodeId v = 0; v < n; ++v) {
      if (!in_tree[v] && row[v] < best[v]) {
        best[v] = row[v];
        parent[v] = pick;
      }
    }
  }
  return tree;
}

std::vector<Edge> minimum_spanning_forest(const Topology& g,
                                          const DistanceProvider& weights) {
  const std::size_t n = g.num_nodes();
  if (weights.rows() != n || weights.cols() != n) {
    throw std::invalid_argument("minimum_spanning_forest: weight shape mismatch");
  }
  std::vector<Edge> edges = g.edges();
  std::stable_sort(edges.begin(), edges.end(),
                   [&](const Edge& a, const Edge& b) {
                     return weights(a.u, a.v) < weights(b.u, b.v);
                   });
  UnionFind uf(n);
  std::vector<Edge> out;
  for (const Edge& e : edges) {
    if (uf.unite(e.u, e.v)) out.push_back(e);
  }
  return out;
}

std::size_t connect_components(Topology& g, const DistanceProvider& distances) {
  const std::size_t n = g.num_nodes();
  if (distances.rows() != n || distances.cols() != n) {
    throw std::invalid_argument("connect_components: distance shape mismatch");
  }
  if (n == 0) return 0;
  const auto label = connected_components(g);
  const std::size_t k = 1 + *std::max_element(label.begin(), label.end());
  if (k <= 1) return 0;

  // Shortest physical link between each component pair.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  Matrix<double> comp_dist = Matrix<double>::square(k, kInf);
  Matrix<Edge> comp_edge = Matrix<Edge>::square(k);
  for (NodeId i = 0; i < n; ++i) {
    const double* row = distances.row_view(i);  // one recompute per row, tiled
    for (NodeId j = i + 1; j < n; ++j) {
      const std::size_t a = label[i], b = label[j];
      if (a == b) continue;
      if (row[j] < comp_dist(a, b)) {
        comp_dist(a, b) = row[j];
        comp_dist(b, a) = row[j];
        comp_edge(a, b) = Edge{i, j};
        comp_edge(b, a) = Edge{i, j};
      }
    }
  }
  // MST over the component graph (paper §4.1.3: minimum in physical link
  // distance), then add the corresponding real links.
  const Topology comp_tree = minimum_spanning_tree(comp_dist);
  std::size_t added = 0;
  for (const Edge& ce : comp_tree.edges()) {
    const Edge real = comp_edge(ce.u, ce.v);
    if (g.add_edge(real.u, real.v)) ++added;
  }
  return added;
}

std::vector<int> bfs_hops(const Topology& g, NodeId source) {
  const std::size_t n = g.num_nodes();
  if (source >= n) throw std::out_of_range("bfs_hops: source out of range");
  std::vector<int> hops(n, -1);
  std::queue<NodeId> q;
  hops[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const NodeId u : g.neighbors(v)) {
      if (hops[u] < 0) {
        hops[u] = hops[v] + 1;
        q.push(u);
      }
    }
  }
  return hops;
}

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), num_sets_(n) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
}

std::size_t UnionFind::find(std::size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
  --num_sets_;
  return true;
}

}  // namespace cold
