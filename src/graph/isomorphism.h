// Graph isomorphism testing for small graphs.
//
// Needed by the dK-series analysis (Fig 2): the paper's point is that the
// 3K-distribution can constrain a graph so tightly that every matching graph
// is isomorphic to the input — something you can only demonstrate with an
// isomorphism test. Backtracking with degree-based pruning; intended for
// n <= ~16 (the Fig 2 example has 8 nodes).
#pragma once

#include <optional>
#include <vector>

#include "graph/topology.h"

namespace cold {

/// True iff the graphs are isomorphic. Both must have the same node count;
/// different counts return false.
bool are_isomorphic(const Topology& a, const Topology& b);

/// If isomorphic, returns a mapping m with m[node of a] = node of b.
std::optional<std::vector<NodeId>> find_isomorphism(const Topology& a,
                                                    const Topology& b);

}  // namespace cold
