// Undirected simple graph over a fixed node set.
//
// This is the GA chromosome (paper §4: "each candidate topology ... is
// stored as an n by n adjacency matrix"). PoP-level networks are small
// (n rarely exceeds ~100, §5), so a dense symmetric byte matrix gives O(1)
// edge tests and O(n^2) crossover with tiny constants. Alongside the matrix
// the graph keeps two structures in sync on every edge flip:
//
//   * sorted per-node adjacency lists, so sparse algorithms (heap Dijkstra,
//     m ≈ n on PoP graphs) can iterate neighbours in O(deg) instead of O(n);
//   * a 64-bit Zobrist fingerprint — the XOR of a fixed per-edge key over
//     the present edges — updated in O(1) per flip. Equal graphs always have
//     equal fingerprints, so the fingerprint is a cheap cache/dedup key
//     (collisions are possible and must be verified against the adjacency).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace cold {

/// Node index type. Nodes are 0..n-1.
using NodeId = std::size_t;

/// An undirected edge as an ordered pair (u < v).
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Canonicalizes an edge so u < v. Throws on self-loops.
Edge make_edge(NodeId a, NodeId b);

class Topology {
 public:
  Topology() = default;

  /// Graph with n nodes and no edges.
  explicit Topology(std::size_t n);

  /// Complete graph on n nodes.
  static Topology complete(std::size_t n);

  /// Graph from an explicit edge list (duplicates are idempotent).
  static Topology from_edges(std::size_t n, const std::vector<Edge>& edges);

  /// Star with the given centre (every other node is a leaf of it).
  static Topology star(std::size_t n, NodeId centre);

  std::size_t num_nodes() const { return n_; }
  std::size_t num_edges() const { return num_edges_; }

  bool has_edge(NodeId a, NodeId b) const { return adj_[a * n_ + b] != 0; }

  /// Adds the edge if absent; returns true if the graph changed.
  bool add_edge(NodeId a, NodeId b);

  /// Removes the edge if present; returns true if the graph changed.
  bool remove_edge(NodeId a, NodeId b);

  void set_edge(NodeId a, NodeId b, bool present);

  int degree(NodeId v) const { return degree_[v]; }

  /// Degrees of all nodes.
  const std::vector<int>& degrees() const { return degree_; }

  /// All edges as canonical (u < v) pairs in lexicographic order.
  std::vector<Edge> edges() const;

  /// Neighbours of v in increasing id order (a copy; see adjacency()).
  std::vector<NodeId> neighbors(NodeId v) const;

  /// Neighbours of v in increasing id order, by reference — the sparse hot
  /// path. Valid until the next edge mutation.
  const std::vector<NodeId>& adjacency(NodeId v) const { return nbrs_[v]; }

  /// Nodes with degree > 1 — the paper's "core" PoPs, which pay the k3 cost.
  std::size_t num_core_nodes() const;

  /// Nodes with degree exactly 1 — leaf PoPs.
  std::size_t num_leaf_nodes() const;

  /// Removes all edges.
  void clear_edges();

  /// Raw row for hot loops: row(v)[u] != 0 iff edge (v,u) exists.
  const std::uint8_t* row(NodeId v) const { return adj_.data() + v * n_; }

  /// Zobrist hash of the edge set: XOR of edge_key(u, v) over all present
  /// edges, maintained incrementally (O(1) per edge flip). Two graphs with
  /// the same node count and the same edge set always have the same
  /// fingerprint, regardless of construction order; differing fingerprints
  /// imply differing edge sets. The converse can fail (64-bit collisions),
  /// so consumers keying on the fingerprint must verify the adjacency.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// The fixed Zobrist key of an (unordered) node pair. Deterministic across
  /// runs and platforms: a SplitMix64-style mix of the canonical (u, v).
  static std::uint64_t edge_key(NodeId a, NodeId b);

  /// Number of edges differing between two same-size graphs (graph edit
  /// distance restricted to edge flips).
  static std::size_t edge_difference(const Topology& a, const Topology& b);

  /// Edge-set diff `from` -> `to` as explicit lists: `added` holds the edges
  /// of `to` absent from `from`, `removed` the edges of `from` absent from
  /// `to` (both canonical u < v, lexicographic). Walks the sorted adjacency
  /// lists, O(n + m_from + m_to), and gives up early once the total diff
  /// exceeds `max_edges`: returns false with the lists truncated. This is
  /// the delta evaluation engine's parent-match test, so the early exit —
  /// not the full diff — is the common path.
  static bool diff_edges(const Topology& from, const Topology& to,
                         std::vector<Edge>& added, std::vector<Edge>& removed,
                         std::size_t max_edges);

  friend bool operator==(const Topology& a, const Topology& b) {
    return a.n_ == b.n_ && a.adj_ == b.adj_;
  }

 private:
  std::size_t n_ = 0;
  std::size_t num_edges_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::vector<std::uint8_t> adj_;  // n*n symmetric, zero diagonal
  std::vector<int> degree_;
  std::vector<std::vector<NodeId>> nbrs_;  // sorted, mirrors adj_
};

}  // namespace cold
