// Undirected simple graph over a fixed node set.
//
// This is the GA chromosome (paper §4: "each candidate topology ... is
// stored as an n by n adjacency matrix"). The *primary* representation is
// sparse — per-node sorted adjacency lists plus degrees and an incremental
// fingerprint — so a topology costs O(n + m) bytes and synthesis scales to
// city-size node counts (n ≈ 2000+, where an n² byte matrix per candidate
// would dominate memory). Three structures stay in sync on every edge flip:
//
//   * sorted per-node adjacency lists — the canonical edge set. Sparse
//     algorithms (heap Dijkstra, BFS, Tarjan) iterate neighbours in O(deg);
//     neighbors(v) exposes a list as a std::span.
//   * a 64-bit Zobrist fingerprint — the XOR of a fixed per-edge key over
//     the present edges — updated in O(1) per flip. Equal graphs always have
//     equal fingerprints, so the fingerprint is a cheap cache/dedup key
//     (collisions are possible and must be verified against the adjacency).
//   * optionally, a dense n² byte matrix (the *dense view*): a derived
//     backend for the blocked dense Dijkstra kernel and O(1) edge tests,
//     auto-materialized at construction while n <= dense_auto_threshold()
//     (PoP-scale graphs, where n² is trivia and the dense kernel wins on
//     near-cliques). Above the threshold no quadratic object ever exists
//     and dense-only consumers fall back to their sparse twins — which are
//     bit-identical by the solvers' exactness contract, so the backend
//     choice can never change a cost, a trajectory, or a report.
//
// Lifetime rules: neighbors(v) and dense_row(v) return views into the
// topology's internal storage. They are valid until the next mutating call
// (add_edge / remove_edge / set_edge / clear_edges / materialize or drop of
// the dense view / assignment / destruction). Do not hold a view across a
// mutation — copy first (e.g. when removing a node's edges, pop
// neighbors(v).front() until the degree is 0).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace cold {

/// Node index type. Nodes are 0..n-1.
using NodeId = std::size_t;

/// An undirected edge as an ordered pair (u < v).
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Canonicalizes an edge so u < v. Throws on self-loops.
Edge make_edge(NodeId a, NodeId b);

class Topology {
 public:
  Topology() = default;

  /// Graph with n nodes and no edges. The dense view is materialized here
  /// iff n <= dense_auto_threshold().
  explicit Topology(std::size_t n);

  /// Complete graph on n nodes.
  static Topology complete(std::size_t n);

  /// Graph from an explicit edge list (duplicates are idempotent).
  static Topology from_edges(std::size_t n, const std::vector<Edge>& edges);

  /// Star with the given centre (every other node is a leaf of it).
  static Topology star(std::size_t n, NodeId centre);

  std::size_t num_nodes() const { return n_; }
  std::size_t num_edges() const { return num_edges_; }

  /// O(1) against the dense view when present, O(log min(deg)) by binary
  /// search in the sorted adjacency lists otherwise.
  bool has_edge(NodeId a, NodeId b) const {
    if (dense_view_) return dense_[a * n_ + b] != 0;
    return has_edge_sparse(a, b);
  }

  /// Adds the edge if absent; returns true if the graph changed.
  bool add_edge(NodeId a, NodeId b);

  /// Removes the edge if present; returns true if the graph changed.
  bool remove_edge(NodeId a, NodeId b);

  void set_edge(NodeId a, NodeId b, bool present);

  int degree(NodeId v) const { return degree_[v]; }

  /// Degrees of all nodes.
  const std::vector<int>& degrees() const { return degree_; }

  /// All edges as canonical (u < v) pairs in lexicographic order.
  std::vector<Edge> edges() const;

  /// Neighbours of v in increasing id order, as a view into the internal
  /// sorted adjacency list. Valid until the next mutation (see the lifetime
  /// rules in the header comment); copy before mutating.
  std::span<const NodeId> neighbors(NodeId v) const {
    const std::vector<NodeId>& list = nbrs_.at(v);  // throws std::out_of_range
    return {list.data(), list.size()};
  }

  /// DEPRECATED: use neighbors() (same data, same lifetime, as a span).
  /// Kept so pre-sparse-era call sites compile unchanged for one release;
  /// new in-tree calls fail the deprecated-API lint.
  const std::vector<NodeId>& adjacency(NodeId v) const { return nbrs_[v]; }

  /// Nodes with degree > 1 — the paper's "core" PoPs, which pay the k3 cost.
  std::size_t num_core_nodes() const;

  /// Nodes with degree exactly 1 — leaf PoPs.
  std::size_t num_leaf_nodes() const;

  /// Removes all edges.
  void clear_edges();

  // -------------------------------------------------------------------------
  // Dense view (optional small-n backend).
  // -------------------------------------------------------------------------

  /// Whether the n² byte matrix backend exists for this instance. Copies
  /// inherit the source's backend state; the auto threshold is consulted
  /// only at construction.
  bool has_dense_view() const { return dense_view_; }

  /// Raw dense row: dense_row(v)[u] != 0 iff edge (v, u) exists. Requires
  /// has_dense_view() — throws std::logic_error otherwise. This is the
  /// blocked dense kernel's backend accessor; general consumers should
  /// iterate neighbors(v) instead. Valid until the next mutation.
  const std::uint8_t* dense_row(NodeId v) const;

  /// DEPRECATED: use neighbors() for iteration or dense_row() inside a
  /// dense-backend kernel. Same contract as dense_row(). New in-tree calls
  /// fail the deprecated-API lint.
  const std::uint8_t* row(NodeId v) const { return dense_row(v); }

  /// Builds the dense view from the adjacency lists (no-op when present).
  void materialize_dense_view();

  /// Releases the dense view (no-op when absent). Edge data is unaffected.
  void drop_dense_view();

  /// Node-count ceiling for auto-materializing the dense view at
  /// construction (default 512 — covers every PoP-scale workload while
  /// keeping city-scale topologies allocation-linear). Settable by tests
  /// and benchmarks to force either backend; applies to topologies
  /// constructed after the call. 0 disables auto-materialization entirely.
  static std::size_t dense_auto_threshold();
  static void set_dense_auto_threshold(std::size_t n);

  /// Zobrist hash of the edge set: XOR of edge_key(u, v) over all present
  /// edges, maintained incrementally (O(1) per edge flip). Two graphs with
  /// the same node count and the same edge set always have the same
  /// fingerprint, regardless of construction order; differing fingerprints
  /// imply differing edge sets. The converse can fail (64-bit collisions),
  /// so consumers keying on the fingerprint must verify the adjacency.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// The fixed Zobrist key of an (unordered) node pair. Deterministic across
  /// runs and platforms: a SplitMix64-style mix of the canonical (u, v).
  static std::uint64_t edge_key(NodeId a, NodeId b);

  /// Number of edges differing between two same-size graphs (graph edit
  /// distance restricted to edge flips). Walks the sorted adjacency lists,
  /// O(n + m_a + m_b) — independent of the backend.
  static std::size_t edge_difference(const Topology& a, const Topology& b);

  /// Edge-set diff `from` -> `to` as explicit lists: `added` holds the edges
  /// of `to` absent from `from`, `removed` the edges of `from` absent from
  /// `to` (both canonical u < v, lexicographic). Walks the sorted adjacency
  /// lists, O(n + m_from + m_to), and gives up early once the total diff
  /// exceeds `max_edges`: returns false with the lists truncated. This is
  /// the delta evaluation engine's parent-match test, so the early exit —
  /// not the full diff — is the common path.
  static bool diff_edges(const Topology& from, const Topology& to,
                         std::vector<Edge>& added, std::vector<Edge>& removed,
                         std::size_t max_edges);

  /// Structural equality: same node count and edge set. The dense view is a
  /// derived cache, not identity — a sparse-primary and a dense-backed copy
  /// of the same graph compare equal.
  friend bool operator==(const Topology& a, const Topology& b) {
    return a.n_ == b.n_ && a.nbrs_ == b.nbrs_;
  }

 private:
  bool has_edge_sparse(NodeId a, NodeId b) const;

  std::size_t n_ = 0;
  std::size_t num_edges_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::vector<int> degree_;
  std::vector<std::vector<NodeId>> nbrs_;  ///< sorted; the primary edge set
  bool dense_view_ = false;
  std::vector<std::uint8_t> dense_;  ///< n*n symmetric, zero diagonal;
                                     ///< empty unless dense_view_
};

}  // namespace cold
