// Shortest paths by physical length — the evaluator's hot path.
//
// COLD routes all traffic on shortest (physical-length) paths (§3.2.1), so
// each cost evaluation runs one single-source shortest-path computation per
// node. PoP graphs are small and dense-ish, so we use the O(n^2) Dijkstra
// variant: no heap, no allocation (with a reused tree object), and fully
// deterministic tie-breaking.
#pragma once

#include <vector>

#include "graph/topology.h"
#include "util/matrix.h"

namespace cold {

/// Single-source shortest-path tree.
struct ShortestPathTree {
  NodeId source = 0;
  std::vector<double> dist;    ///< physical length; +inf if unreachable
  std::vector<int> hops;       ///< hop count along the chosen path; -1 unreachable
  std::vector<NodeId> parent;  ///< predecessor; parent[source] == source
  std::vector<NodeId> order;   ///< reachable nodes in settling (increasing dist) order

  void resize(std::size_t n);

  /// Reconstructs the path source -> target (inclusive). Empty if unreachable.
  std::vector<NodeId> path_to(NodeId target) const;
};

/// Dijkstra from `source` over the edges of `g` weighted by `lengths`.
/// Ties are broken deterministically by (distance, hops, predecessor id),
/// which makes routing — and therefore link loads and cost — reproducible.
/// `out` is reused across calls to avoid allocation.
void shortest_path_tree(const Topology& g, const Matrix<double>& lengths,
                        NodeId source, ShortestPathTree& out);

/// Convenience allocating wrapper.
ShortestPathTree shortest_path_tree(const Topology& g,
                                    const Matrix<double>& lengths,
                                    NodeId source);

/// All-pairs shortest path lengths via Floyd–Warshall. O(n^3); used for
/// cross-checking Dijkstra and for small-instance analysis.
Matrix<double> floyd_warshall(const Topology& g, const Matrix<double>& lengths);

/// All-pairs hop counts via BFS; -1 where unreachable.
Matrix<int> all_pairs_hops(const Topology& g);

}  // namespace cold
