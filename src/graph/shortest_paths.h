// Shortest paths by physical length — the evaluator's hot path.
//
// COLD routes all traffic on shortest (physical-length) paths (§3.2.1), so
// each cost evaluation runs one single-source shortest-path computation per
// node. Two interchangeable solvers share one deterministic contract:
//
//   * dense: a blocked O(n^2) kernel — SoA frontier keys, a vectorizable
//     per-block min reduction and a branch-light relax pass over contiguous
//     adjacency/length rows; great constants on dense-ish graphs;
//   * sparse: binary-heap Dijkstra over the adjacency lists, O((n+m) log n)
//     — the winner on the m ≈ n graphs PoP synthesis actually produces.
//
// Both settle nodes in exactly the same order — smallest composite
// (dist, hops, id) key first — and apply the same relaxation tie-break, so
// dist/hops/parent/order are bit-identical between them on every input
// (shortest_path_tree_reference keeps the original scalar dense scan as the
// exactness yardstick). select_sp_algorithm() picks by density; SpAlgorithm
// overrides. shortest_path_tree_batch() computes whole source blocks over
// one topology in lockstep, sharing the cache-resident frontier state —
// the evaluator's full sweeps go through it.
#pragma once

#include <vector>

#include "geom/distance.h"
#include "graph/topology.h"
#include "util/matrix.h"

namespace cold {

/// Which single-source shortest-path solver to run.
enum class SpAlgorithm {
  kAuto,    ///< choose by density (select_sp_algorithm)
  kDense,   ///< O(n^2) scan
  kSparse,  ///< binary-heap over adjacency lists, O((n+m) log n)
};

/// Density heuristic behind SpAlgorithm::kAuto: sparse once the heap's
/// log-factor is paid for, i.e. on all but small or near-dense graphs.
/// Deterministic — depends only on (n, m).
SpAlgorithm select_sp_algorithm(std::size_t n, std::size_t m);

/// Backend-aware resolution used by every sweep entry point: kAuto resolves
/// by density, then any dense choice is forced to kSparse when `g` carries
/// no dense view (the dense kernels read dense_row(), which only exists on
/// dense-backed topologies). Never changes a result — the solvers are
/// bit-identical — only which kernel runs.
SpAlgorithm resolve_sp_algorithm(const Topology& g, SpAlgorithm algo);

/// Provider-aware form: additionally forces kSparse when `lengths` carries
/// no materialized matrix (the dense kernel streams contiguous length rows,
/// which a matrix-free provider cannot serve; the heap solver reads edge
/// lengths from an SpLengthCache built once per sweep set, or one hypot on
/// demand without one). Same bit-identity guarantee: only the kernel
/// changes, never the tree.
SpAlgorithm resolve_sp_algorithm(const Topology& g,
                                 const DistanceProvider& lengths,
                                 SpAlgorithm algo);

/// Single-source shortest-path tree.
struct ShortestPathTree {
  NodeId source = 0;
  std::vector<double> dist;    ///< physical length; +inf if unreachable
  std::vector<int> hops;       ///< hop count along the chosen path; -1 unreachable
  std::vector<NodeId> parent;  ///< predecessor; parent[source] == source
  std::vector<NodeId> order;   ///< reachable nodes in settling (increasing dist) order

  void resize(std::size_t n);

  /// Reconstructs the path source -> target (inclusive). Empty if unreachable.
  std::vector<NodeId> path_to(NodeId target) const;

  /// Solver scratch, reused across calls so the steady state allocates
  /// nothing. Not part of the tree's logical state.
  struct HeapItem {
    double dist;
    int hops;
    NodeId id;
  };
  std::vector<std::uint8_t> settled;
  std::vector<HeapItem> heap;
  /// Blocked dense kernel scratch: per-node frontier key (the node's dist
  /// while unsettled and reachable, +inf otherwise — one contiguous double
  /// array the min reduction scans without branches) and the per-block mins
  /// that let the tie-break pass skip every block above the minimum.
  std::vector<double> frontier_key;
  std::vector<double> block_min;
};

/// Per-topology cache of edge lengths, CSR-parallel to the topology's
/// sorted adjacency: len[off[v] + i] is lengths(v, neighbors(v)[i]). Built
/// once per sweep set (O(n + m) lookups) so the heap solver's relaxations
/// read one array slot instead of recomputing a hypot per scanned edge —
/// the entries are the very doubles lengths() returns, so cached and
/// uncached sweeps are bit-identical. Only worth building for matrix-free
/// providers (dense lookups are already one load); the routing entry
/// points do exactly that. The caller must rebuild after any topology
/// mutation — the cache carries no validity tracking (hot path).
struct SpLengthCache {
  std::size_t n = 0;
  std::vector<std::size_t> off;  ///< n+1 offsets, mirroring the adjacency
  std::vector<double> len;       ///< 2m lengths, adjacency slot order

  void build(const Topology& g, const DistanceProvider& lengths);

  /// Lengths of v's incident edges, in neighbors(v) order.
  const double* row(NodeId v) const { return len.data() + off[v]; }
};

/// Dijkstra from `source` over the edges of `g` weighted by `lengths`.
/// Ties are broken deterministically by (distance, hops, predecessor id),
/// which makes routing — and therefore link loads and cost — reproducible.
/// `out` is reused across calls to avoid allocation. `algo` selects the
/// solver; every choice produces bit-identical trees. `lengths` may be a
/// dense matrix (implicitly wrapped) or a matrix-free coordinate-backed
/// provider — the trees are bit-identical either way. `cache`, when
/// non-null, must have been built from this exact `g` and `lengths`; the
/// sparse solver then reads edge lengths from it instead of recomputing.
void shortest_path_tree(const Topology& g, const DistanceProvider& lengths,
                        NodeId source, ShortestPathTree& out,
                        SpAlgorithm algo = SpAlgorithm::kAuto,
                        const SpLengthCache* cache = nullptr);

/// Convenience allocating wrapper.
ShortestPathTree shortest_path_tree(const Topology& g,
                                    const DistanceProvider& lengths,
                                    NodeId source,
                                    SpAlgorithm algo = SpAlgorithm::kAuto);

/// The original scalar dense scan, kept verbatim as the exactness yardstick
/// for the blocked kernel: tests cross-check bit-identity against it and
/// bench/evaluator measures the blocked kernel's speedup over it. Not a
/// production path; requires `g` to carry the dense view (it reads dense
/// rows) and throws std::logic_error otherwise.
void shortest_path_tree_reference(const Topology& g,
                                  const DistanceProvider& lengths,
                                  NodeId source, ShortestPathTree& out);

/// Batched multi-source sweep: computes trees[i] from sources[i] for every
/// i < count over one (g, lengths), bit-identical to per-source
/// shortest_path_tree calls. The dense solver runs the block in lockstep —
/// one settle + relax round per live source per cycle — so the block's SoA
/// frontier state (a few KB regardless of n) stays cache-resident across
/// the whole pass instead of n independent traversals each re-warming it;
/// the sparse solver runs per source (its working set is the heap, already
/// tiny). `algo` is resolved once for the batch.
void shortest_path_tree_batch(const Topology& g,
                              const DistanceProvider& lengths,
                              const NodeId* sources, std::size_t count,
                              ShortestPathTree* trees,
                              SpAlgorithm algo = SpAlgorithm::kAuto,
                              const SpLengthCache* cache = nullptr);

/// Source-block width used by the batched sweeps (route_loads and the delta
/// engine's resettle passes share it so their pass structure matches).
inline constexpr std::size_t kSpSourceBlock = 4;

/// Shortest-path DAG of one source: for every node, all equal-cost
/// predecessors, CSR-packed in ascending node-id order. pred[off[v]..
/// off[v+1]) are the neighbours u of v that lie on *some* shortest path
/// from the source to v. The tree's parent[v] is always among them; nodes
/// with a single predecessor have exactly {parent[v]}; the source and
/// unreachable nodes have none.
struct SpDag {
  std::vector<std::uint32_t> off;  ///< n+1 CSR offsets
  std::vector<NodeId> pred;        ///< predecessors, ascending id per node
};

/// Extracts the shortest-path DAG from a settled tree. The tie rule is
/// epsilon-free and purely bitwise: u is an equal-cost predecessor of v iff
/// u is adjacent to v, `tree.dist[u] + lengths(u, v) == tree.dist[v]`
/// exactly (the very comparison the solvers' relaxation performed, operands
/// in the same order), and u precedes v under the composite
/// (dist, hops, id) settle key. The key condition keeps the DAG acyclic
/// even across zero-length edges: every solver relaxation strictly
/// increases the composite key (a zero-length edge still adds a hop), so
/// edges only ever point from smaller to larger keys. `lengths` must be the
/// provider the tree was computed with — the equality then holds for
/// exactly the relaxations the solver saw, with no epsilon.
void extract_shortest_path_dag(const Topology& g,
                               const DistanceProvider& lengths,
                               const ShortestPathTree& tree, SpDag& out);

/// Reusable scratch for update_shortest_path_tree. One workspace serves any
/// number of sources/graphs; steady state allocates nothing.
struct SpUpdateWorkspace {
  std::vector<std::uint32_t> child_off;   ///< CSR offsets into child_buf
  std::vector<NodeId> child_buf;          ///< children by parent pointer
  std::vector<std::uint8_t> dirty;        ///< label (dist, hops) touched
  std::vector<NodeId> dirty_list;         ///< dirty vertices, discovery order
  std::vector<NodeId> stack;              ///< subtree DFS scratch
  std::vector<ShortestPathTree::HeapItem> heap;  ///< label-correcting frontier
  std::vector<NodeId> changed;            ///< dirty & reachable, sorted by key
  std::vector<NodeId> merged;             ///< rebuilt settle order
};

/// Outcome of an incremental tree update.
struct SpUpdateResult {
  bool applied = false;       ///< false: cutoff hit; `tree` is unspecified
  std::size_t resettled = 0;  ///< vertices whose label was recomputed
};

/// Incrementally repairs `tree` — a valid shortest-path tree of the graph
/// `g` *minus* `inserted` *plus* `removed` — into the tree of `g` itself,
/// bit-identical (dist, hops, parent, order) to a fresh dense or sparse
/// sweep. Dynamic-SSSP, Ramalingam–Reps style:
///
///   * edge delete: only a *tree* edge matters — the orphaned subtree is
///     invalidated and re-settled from its frontier of intact neighbours;
///   * edge insert: relax across the new edge and ripple only the vertices
///     it improves.
///
/// Exactness rests on two properties of the composite (dist, hops, id) key
/// (see DESIGN.md §4.5): the final labels are a canonical fixpoint of the
/// solvers' relaxation rule (order-independent, so label-correcting
/// propagation reaches exactly the fresh-sweep labels), and the fresh settle
/// order equals the reachable vertices sorted by final key (every relaxation
/// strictly increases the key — zero-length edges still add a hop), so the
/// order is rebuilt by merging unchanged vertices with the re-sorted changed
/// ones.
///
/// Stops and returns applied == false once more than `max_resettled`
/// vertices needed recomputation (the caller then runs a full sweep; `tree`
/// is left in an unspecified state). Cost: O(A log A + n) where A is the
/// affected region, versus O(n^2) / O((n+m) log n) for a sweep.
SpUpdateResult update_shortest_path_tree(const Topology& g,
                                         const DistanceProvider& lengths,
                                         const std::vector<Edge>& inserted,
                                         const std::vector<Edge>& removed,
                                         ShortestPathTree& tree,
                                         SpUpdateWorkspace& ws,
                                         std::size_t max_resettled);

/// All-pairs shortest path lengths via Floyd–Warshall. O(n^3); used for
/// cross-checking Dijkstra and for small-instance analysis.
Matrix<double> floyd_warshall(const Topology& g,
                              const DistanceProvider& lengths);

/// All-pairs hop counts via BFS; -1 where unreachable.
Matrix<int> all_pairs_hops(const Topology& g);

}  // namespace cold
