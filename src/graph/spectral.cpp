#include "graph/spectral.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/algorithms.h"
#include "util/rng.h"

namespace cold {

namespace {

// y = (c*I - L) x  where L = D - A is the Laplacian. All eigenvalues of
// c*I - L are in [c - lambda_max, c]; with c >= lambda_max they are
// non-negative, so power iteration converges to the top of the shifted
// spectrum. Deflating the constant vector (the lambda = 0 eigenvector)
// makes that top c - lambda_2.
void apply_shifted(const Topology& g, double c, const std::vector<double>& x,
                   std::vector<double>& y) {
  const std::size_t n = g.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    double acc = (c - g.degree(v)) * x[v];
    // Sorted neighbour lists: same ascending-id accumulation order as the
    // old full-row scan, so the FP result is bit-identical.
    for (const NodeId u : g.neighbors(v)) acc += x[u];
    y[v] = acc;
  }
}

void remove_constant_component(std::vector<double>& x) {
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  for (double& v : x) v -= mean;
}

double norm(const std::vector<double>& x) {
  double ss = 0.0;
  for (double v : x) ss += v * v;
  return std::sqrt(ss);
}

}  // namespace

SpectralResult algebraic_connectivity(const Topology& g,
                                      const SpectralOptions& options) {
  SpectralResult result;
  const std::size_t n = g.num_nodes();
  if (n < 2 || !is_connected(g)) {
    result.fiedler.assign(n, 0.0);
    result.converged = true;  // lambda_2 = 0 is exact here
    return result;
  }
  int max_degree = 0;
  for (NodeId v = 0; v < n; ++v) max_degree = std::max(max_degree, g.degree(v));
  const double c = 2.0 * max_degree + 1.0;  // >= lambda_max(L) + margin

  Rng rng(options.seed, 0x57ec);  // fixed stream
  std::vector<double> x(n), y(n);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  remove_constant_component(x);
  double x_norm = norm(x);
  if (x_norm == 0.0) {
    x[0] = 1.0;
    remove_constant_component(x);
    x_norm = norm(x);
  }
  for (double& v : x) v /= x_norm;

  double prev_mu = 0.0;
  for (result.iterations = 0; result.iterations < options.max_iterations;
       ++result.iterations) {
    apply_shifted(g, c, x, y);
    remove_constant_component(y);
    const double mu = norm(y);  // Rayleigh-ish estimate of c - lambda_2
    if (mu == 0.0) break;       // x in the nullspace; lambda_2 = c
    for (std::size_t i = 0; i < n; ++i) x[i] = y[i] / mu;
    if (result.iterations > 0 &&
        std::abs(mu - prev_mu) <= options.tolerance * std::max(1.0, mu)) {
      result.converged = true;
      prev_mu = mu;
      ++result.iterations;
      break;
    }
    prev_mu = mu;
  }
  result.algebraic_connectivity = std::max(0.0, c - prev_mu);
  result.fiedler = x;
  return result;
}

std::vector<bool> spectral_partition(const Topology& g,
                                     const SpectralOptions& options) {
  if (!is_connected(g) || g.num_nodes() < 2) {
    throw std::invalid_argument("spectral_partition: need a connected graph");
  }
  const SpectralResult r = algebraic_connectivity(g, options);
  std::vector<bool> side(g.num_nodes());
  for (std::size_t v = 0; v < side.size(); ++v) side[v] = r.fiedler[v] >= 0.0;
  return side;
}

}  // namespace cold
