// Topology statistics used throughout the paper's evaluation (§6, §7):
// average node degree (Fig 5), diameter (Fig 6), global clustering
// coefficient (Fig 7), coefficient of variation of node degree (Fig 8),
// number of hub/core PoPs (Fig 9), plus the supporting statistics mentioned
// in §6 (assortativity, average shortest-path length, betweenness, and the
// Li et al. degree entropy).
#pragma once

#include <vector>

#include "graph/topology.h"

namespace cold {

/// Mean node degree, 2|E|/n. 0 for the empty graph.
double average_degree(const Topology& g);

/// Coefficient of variation of node degree: stddev(degree)/mean(degree)
/// (population stddev, matching [16]'s usage). 0 when degenerate.
double degree_cv(const Topology& g);

/// Hop diameter: max over reachable pairs of BFS hop distance. Returns -1
/// for a disconnected graph (the paper's networks are always connected).
int diameter(const Topology& g);

/// Average shortest-path length in hops over all connected ordered pairs;
/// 0 if there are none.
double average_path_length(const Topology& g);

/// Global clustering coefficient: 3 * (#triangles) / (#connected triples).
/// 0 when there are no triples.
double global_clustering(const Topology& g);

/// Mean of per-node local clustering coefficients (nodes with degree < 2
/// contribute 0, as is conventional).
double average_local_clustering(const Topology& g);

/// Number of triangles in the graph.
std::size_t count_triangles(const Topology& g);

/// Degree assortativity (Pearson correlation of degrees across edges).
/// 0 when degenerate (e.g. regular graphs).
double assortativity(const Topology& g);

/// Normalized degree-weighted edge entropy in the spirit of Li et al. [1]:
/// S(g) = sum over edges of d_u * d_v, normalized by the maximum achievable
/// over graphs with the same degree sequence (s_max computed greedily).
/// Values near 1 indicate hub-hub attachment (high assortativity of big
/// nodes); HOT-style networks sit low.
double smax_ratio(const Topology& g);

/// Node betweenness centrality (Brandes, unweighted). Returns one value per
/// node; counts are not normalized.
std::vector<double> node_betweenness(const Topology& g);

/// Edge betweenness centrality (Brandes, unweighted), aligned with g.edges().
std::vector<double> edge_betweenness(const Topology& g);

/// Degree histogram: index d -> number of nodes of degree d.
std::vector<std::size_t> degree_histogram(const Topology& g);

/// One-stop summary used by the bench harnesses.
struct TopologyMetrics {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  double avg_degree = 0.0;
  double degree_cv = 0.0;
  int diameter = -1;
  double avg_path_length = 0.0;
  double global_clustering = 0.0;
  double assortativity = 0.0;
  std::size_t hubs = 0;    ///< nodes with degree > 1 (core PoPs)
  std::size_t leaves = 0;  ///< nodes with degree == 1
  bool connected = false;
};

TopologyMetrics compute_metrics(const Topology& g);

}  // namespace cold
