#include "graph/shortest_paths.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

#include "graph/algorithms.h"

namespace cold {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Strict-weak order on the composite settle key. The heap pops the
/// smallest (dist, hops, id) — exactly the node the dense scan selects.
struct HeapGreater {
  bool operator()(const ShortestPathTree::HeapItem& a,
                  const ShortestPathTree::HeapItem& b) const {
    if (a.dist != b.dist) return a.dist > b.dist;
    if (a.hops != b.hops) return a.hops > b.hops;
    return a.id > b.id;
  }
};

// ---------------------------------------------------------------------------
// Blocked dense kernel.
//
// The production dense solver. Instead of the scalar scan's branchy 3-way
// compare per node per round (kept verbatim in shortest_path_tree_reference),
// the frontier lives in a contiguous SoA key array: frontier_key[v] is
// dist[v] while v is unsettled and reachable, +inf otherwise. Each round is
//
//   1. a blocked min reduction over the keys — four independent
//      accumulators per 64-entry block, a shape compilers vectorize —
//      recording each block's min so that
//   2. the composite tie-break pass (smallest hops, then id, among nodes at
//      the min dist) touches only the blocks that attain the minimum, and
//   3. a relax pass over the settled node's contiguous adjacency/length
//      rows with a single fast-reject compare (cand > dist[u]) in front of
//      the full composite rule.
//
// Exactness: the key array equals dist on exactly the nodes the scalar
// scan's selection considers, and the relax rule is the same composite
// (dist, hops, parent-id) tie-break. The scalar scan's settled-skip in the
// relax loop is provably redundant — a settled label is final under the
// composite key (every candidate through a later-settled node has a
// strictly larger key; zero-length edges still add a hop) — so dropping it
// changes no label, no parent and no settle order: the two kernels are
// bit-identical on every input.
// ---------------------------------------------------------------------------

constexpr std::size_t kMinBlock = 64;  ///< keys per min-reduction block

void dense_blocked_init(ShortestPathTree& out, std::size_t n, NodeId source) {
  out.frontier_key.assign(n, kInf);
  out.frontier_key[source] = 0.0;
  out.block_min.assign((n + kMinBlock - 1) / kMinBlock, kInf);
}

/// One settle + relax round. Returns false when no reachable unsettled node
/// remains (the tree is complete for its component).
bool dense_blocked_step(const Topology& g, const DistanceProvider& lengths,
                        ShortestPathTree& out) {
  const std::size_t n = out.dist.size();
  const double* key = out.frontier_key.data();

  // 1. Blocked min reduction over the frontier keys.
  double m = kInf;
  const std::size_t num_blocks = out.block_min.size();
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t base = b * kMinBlock;
    const std::size_t len = std::min(kMinBlock, n - base);
    double m0 = kInf, m1 = kInf, m2 = kInf, m3 = kInf;
    std::size_t i = 0;
    for (; i + 4 <= len; i += 4) {
      m0 = std::min(m0, key[base + i]);
      m1 = std::min(m1, key[base + i + 1]);
      m2 = std::min(m2, key[base + i + 2]);
      m3 = std::min(m3, key[base + i + 3]);
    }
    double bm = std::min(std::min(m0, m1), std::min(m2, m3));
    for (; i < len; ++i) bm = std::min(bm, key[base + i]);
    out.block_min[b] = bm;
    m = std::min(m, bm);
  }
  if (m == kInf) return false;  // remaining nodes unreachable

  // 2. Composite tie-break among the nodes at the min, only in blocks that
  // attain it. Ascending scan with a strict < on hops picks the smallest id
  // among the minimal hop count — the scalar scan's exact selection.
  NodeId best = 0;
  int best_hops = std::numeric_limits<int>::max();
  for (std::size_t b = 0; b < num_blocks; ++b) {
    if (out.block_min[b] != m) continue;
    const std::size_t base = b * kMinBlock;
    const std::size_t end = std::min(base + kMinBlock, n);
    for (std::size_t v = base; v < end; ++v) {
      if (key[v] == m && out.hops[v] < best_hops) {
        best = static_cast<NodeId>(v);
        best_hops = out.hops[v];
      }
    }
  }
  out.settled[best] = 1;
  out.frontier_key[best] = kInf;
  out.order.push_back(best);

  // 3. Relax over contiguous rows. cand is always finite (dist[best] and
  // every length are), so cand == dist[u] implies dist[u] is finite and the
  // scalar rule's explicit infinity guard is subsumed by the fast reject.
  const std::uint8_t* r = g.dense_row(best);
  const double* len_row = lengths.dense_row(best);
  const double dist_best = out.dist[best];
  const int cand_hops = out.hops[best] + 1;
  for (NodeId u = 0; u < n; ++u) {
    if (!r[u]) continue;
    const double cand = dist_best + len_row[u];
    if (cand > out.dist[u]) continue;  // the overwhelmingly common reject
    if (cand < out.dist[u]) {
      out.dist[u] = cand;
      out.hops[u] = cand_hops;
      out.parent[u] = best;
      out.frontier_key[u] = cand;  // u cannot be settled: settled is final
    } else if (cand_hops < out.hops[u] ||
               (cand_hops == out.hops[u] && best < out.parent[u])) {
      out.hops[u] = cand_hops;  // equal dist: (hops, parent-id) tie-break
      out.parent[u] = best;
    }
  }
  return true;
}

void shortest_path_tree_dense(const Topology& g, const DistanceProvider& lengths,
                              ShortestPathTree& out) {
  dense_blocked_init(out, g.num_nodes(), out.source);
  while (dense_blocked_step(g, lengths, out)) {
  }
}

void shortest_path_tree_sparse(const Topology& g, const DistanceProvider& lengths,
                               NodeId source, ShortestPathTree& out,
                               const SpLengthCache* cache) {
  // Heap Dijkstra with lazy deletion. Entries carry the full composite
  // (dist, hops, id) key, so the valid heap minimum coincides with the
  // dense scan's selection at every step; stale entries (superseded by a
  // strictly better label) are recognised by key mismatch and skipped.
  // The relaxation rule — including the equal-(dist, hops) smallest-parent
  // tie-break — is byte-for-byte the dense one, so the two solvers return
  // identical trees.
  auto& heap = out.heap;
  heap.clear();
  heap.push_back({0.0, 0, source});
  const HeapGreater greater;
  while (!heap.empty()) {
    const ShortestPathTree::HeapItem top = heap.front();
    std::pop_heap(heap.begin(), heap.end(), greater);
    heap.pop_back();
    const NodeId v = top.id;
    if (out.settled[v] || top.dist != out.dist[v] || top.hops != out.hops[v]) {
      continue;  // settled or stale
    }
    out.settled[v] = 1;
    out.order.push_back(v);
    const std::span<const NodeId> nbrs = g.neighbors(v);
    // Cached row: the identical doubles lengths(v, u) would return, read
    // from one contiguous array instead of a recompute per scanned edge.
    const double* row = cache != nullptr ? cache->row(v) : nullptr;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId u = nbrs[i];
      if (out.settled[u]) continue;
      const double cand =
          out.dist[v] + (row != nullptr ? row[i] : lengths(v, u));
      const int cand_hops = out.hops[v] + 1;
      const bool better =
          cand < out.dist[u] ||
          (cand == out.dist[u] &&
           (cand_hops < out.hops[u] ||
            (cand_hops == out.hops[u] && out.dist[u] != kInf &&
             v < out.parent[u])));
      if (better) {
        // A parent-only improvement keeps (dist, hops): the entry already
        // in the heap stays valid, so only key changes need a push.
        const bool key_changed =
            cand != out.dist[u] || cand_hops != out.hops[u];
        out.dist[u] = cand;
        out.hops[u] = cand_hops;
        out.parent[u] = v;
        if (key_changed) {
          heap.push_back({cand, cand_hops, u});
          std::push_heap(heap.begin(), heap.end(), greater);
        }
      }
    }
  }
}

}  // namespace

void shortest_path_tree_reference(const Topology& g,
                                  const DistanceProvider& lengths,
                                  NodeId source, ShortestPathTree& out) {
  const std::size_t n = g.num_nodes();
  if (lengths.rows() != n || lengths.cols() != n) {
    throw std::invalid_argument(
        "shortest_path_tree_reference: length shape mismatch");
  }
  if (source >= n) {
    throw std::out_of_range("shortest_path_tree_reference: source range");
  }
  out.source = source;
  out.resize(n);
  out.dist[source] = 0.0;
  out.hops[source] = 0;
  out.parent[source] = source;
  // The pre-blocked O(n^2) scan, byte-for-byte: repeatedly settle the
  // unsettled node with the smallest (dist, hops, id) key. A yardstick, not
  // a production path — it reads dense rows, so it requires the dense view.
  for (std::size_t round = 0; round < n; ++round) {
    NodeId best = n;
    for (NodeId v = 0; v < n; ++v) {
      if (out.settled[v] || out.dist[v] == kInf) continue;
      if (best == n || out.dist[v] < out.dist[best] ||
          (out.dist[v] == out.dist[best] &&
           (out.hops[v] < out.hops[best] ||
            (out.hops[v] == out.hops[best] && v < best)))) {
        best = v;
      }
    }
    if (best == n) break;  // remaining nodes unreachable
    out.settled[best] = 1;
    out.order.push_back(best);
    const std::uint8_t* r = g.dense_row(best);
    for (NodeId u = 0; u < n; ++u) {
      if (!r[u] || out.settled[u]) continue;
      const double cand = out.dist[best] + lengths(best, u);
      const int cand_hops = out.hops[best] + 1;
      const bool better =
          cand < out.dist[u] ||
          (cand == out.dist[u] &&
           (cand_hops < out.hops[u] ||
            (cand_hops == out.hops[u] && out.dist[u] != kInf &&
             best < out.parent[u])));
      if (better) {
        out.dist[u] = cand;
        out.hops[u] = cand_hops;
        out.parent[u] = best;
      }
    }
  }
}

void shortest_path_tree_batch(const Topology& g, const DistanceProvider& lengths,
                              const NodeId* sources, std::size_t count,
                              ShortestPathTree* trees, SpAlgorithm algo,
                              const SpLengthCache* cache) {
  const std::size_t n = g.num_nodes();
  if (lengths.rows() != n || lengths.cols() != n) {
    throw std::invalid_argument(
        "shortest_path_tree_batch: length shape mismatch");
  }
  algo = resolve_sp_algorithm(g, lengths, algo);
  if (algo == SpAlgorithm::kSparse) {
    // The heap solver's working set is already tiny; per-source is optimal.
    for (std::size_t i = 0; i < count; ++i) {
      shortest_path_tree(g, lengths, sources[i], trees[i], SpAlgorithm::kSparse,
                         cache);
    }
    return;
  }
  for (std::size_t base = 0; base < count; base += kSpSourceBlock) {
    const std::size_t width = std::min(kSpSourceBlock, count - base);
    bool done[kSpSourceBlock] = {};
    std::size_t live = width;
    for (std::size_t b = 0; b < width; ++b) {
      ShortestPathTree& t = trees[base + b];
      const NodeId source = sources[base + b];
      if (source >= n) {
        throw std::out_of_range("shortest_path_tree_batch: source range");
      }
      t.source = source;
      t.resize(n);
      t.dist[source] = 0.0;
      t.hops[source] = 0;
      t.parent[source] = source;
      dense_blocked_init(t, n, source);
    }
    // Lockstep: one settle + relax round per live source per cycle. Each
    // tree's rounds are exactly the single-source kernel's, so the result
    // is bit-identical; interleaving only keeps the block's frontier state
    // resident while the lengths rows stream through once per round-set.
    while (live > 0) {
      for (std::size_t b = 0; b < width; ++b) {
        if (done[b]) continue;
        if (!dense_blocked_step(g, lengths, trees[base + b])) {
          done[b] = true;
          --live;
        }
      }
    }
  }
}

SpUpdateResult update_shortest_path_tree(const Topology& g,
                                         const DistanceProvider& lengths,
                                         const std::vector<Edge>& inserted,
                                         const std::vector<Edge>& removed,
                                         ShortestPathTree& tree,
                                         SpUpdateWorkspace& ws,
                                         std::size_t max_resettled) {
  const std::size_t n = g.num_nodes();
  if (tree.dist.size() != n || lengths.rows() != n) {
    throw std::invalid_argument("update_shortest_path_tree: size mismatch");
  }
  const NodeId source = tree.source;

  ws.dirty.assign(n, 0);
  ws.dirty_list.clear();
  bool overflow = false;
  auto mark_dirty = [&](NodeId v) {
    if (ws.dirty[v]) return;
    ws.dirty[v] = 1;
    ws.dirty_list.push_back(v);
    if (ws.dirty_list.size() > max_resettled) overflow = true;
  };

  // A removed edge only matters when it is a *tree* edge: every other
  // vertex's tree path is intact, so its label — already the canonical
  // minimum, which deletions cannot improve — stays final.
  auto orphan_child = [&](const Edge& e) -> NodeId {
    if (e.v != source && tree.dist[e.v] != kInf && tree.parent[e.v] == e.u) {
      return e.v;
    }
    if (e.u != source && tree.dist[e.u] != kInf && tree.parent[e.u] == e.v) {
      return e.u;
    }
    return n;
  };
  bool any_tree_edge = false;
  for (const Edge& e : removed) {
    if (orphan_child(e) != n) {
      any_tree_edge = true;
      break;
    }
  }

  if (any_tree_edge) {
    // Children lists (CSR) from the current parent pointers, then mark each
    // orphaned subtree and reset it to the unreachable state a fresh sweep
    // starts from. Nested orphan subtrees dedup via the dirty flags.
    ws.child_off.assign(n + 1, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (v != source && tree.dist[v] != kInf) {
        ++ws.child_off[tree.parent[v] + 1];
      }
    }
    for (NodeId v = 0; v < n; ++v) ws.child_off[v + 1] += ws.child_off[v];
    ws.child_buf.resize(ws.child_off[n]);
    {
      std::vector<std::uint32_t>& cursor = ws.child_off;  // consumed below
      for (NodeId v = 0; v < n; ++v) {
        if (v != source && tree.dist[v] != kInf) {
          ws.child_buf[cursor[tree.parent[v]]++] = v;
        }
      }
      // cursor[p] advanced to child_off[p + 1]; restore by shifting back.
      for (NodeId v = n; v-- > 0;) cursor[v + 1] = cursor[v];
      cursor[0] = 0;
    }
    ws.stack.clear();
    for (const Edge& e : removed) {
      const NodeId c = orphan_child(e);
      if (c != n && !ws.dirty[c]) {
        mark_dirty(c);
        ws.stack.push_back(c);
      }
    }
    while (!ws.stack.empty()) {
      const NodeId x = ws.stack.back();
      ws.stack.pop_back();
      for (std::uint32_t i = ws.child_off[x]; i < ws.child_off[x + 1]; ++i) {
        const NodeId c = ws.child_buf[i];
        if (!ws.dirty[c]) {
          mark_dirty(c);
          ws.stack.push_back(c);
        }
      }
    }
    if (overflow) return {false, ws.dirty_list.size()};
    for (const NodeId x : ws.dirty_list) {
      tree.dist[x] = kInf;
      tree.hops[x] = -1;
      tree.parent[x] = 0;
    }
  }
  const std::size_t num_invalidated = ws.dirty_list.size();

  auto& heap = ws.heap;
  heap.clear();
  const HeapGreater greater;
  // The relaxation rule is byte-for-byte the solvers' — including the
  // equal-(dist, hops) smallest-parent tie-break — so the fixpoint it
  // reaches is exactly the fresh-sweep labels. Parent-only improvements
  // never propagate (children depend only on the parent's key), so they
  // update in place without a push.
  auto relax = [&](NodeId from, NodeId to) {
    const double cand = tree.dist[from] + lengths(from, to);
    const int cand_hops = tree.hops[from] + 1;
    const bool better =
        cand < tree.dist[to] ||
        (cand == tree.dist[to] &&
         (cand_hops < tree.hops[to] ||
          (cand_hops == tree.hops[to] && tree.dist[to] != kInf &&
           from < tree.parent[to])));
    if (!better) return;
    const bool key_changed =
        cand != tree.dist[to] || cand_hops != tree.hops[to];
    tree.dist[to] = cand;
    tree.hops[to] = cand_hops;
    tree.parent[to] = from;
    if (key_changed) {
      mark_dirty(to);
      heap.push_back({cand, cand_hops, to});
      std::push_heap(heap.begin(), heap.end(), greater);
    }
  };

  // Seed the frontier: each orphan from its surviving neighbours, each
  // inserted edge from whichever endpoint is reachable.
  for (std::size_t i = 0; i < num_invalidated; ++i) {
    const NodeId x = ws.dirty_list[i];
    for (const NodeId y : g.neighbors(x)) {
      if (tree.dist[y] != kInf) relax(y, x);
    }
  }
  for (const Edge& e : inserted) {
    if (tree.dist[e.u] != kInf) relax(e.u, e.v);
    if (tree.dist[e.v] != kInf) relax(e.v, e.u);
  }

  // Label-correcting propagation. Pops come off in nondecreasing key order
  // and every relaxation produces a key strictly above its source's, so each
  // vertex is re-settled at most once; stale entries skip by key mismatch.
  while (!heap.empty() && !overflow) {
    const ShortestPathTree::HeapItem top = heap.front();
    std::pop_heap(heap.begin(), heap.end(), greater);
    heap.pop_back();
    const NodeId v = top.id;
    if (top.dist != tree.dist[v] || top.hops != tree.hops[v]) continue;
    for (const NodeId u : g.neighbors(v)) relax(v, u);
  }
  if (overflow) return {false, ws.dirty_list.size()};
  if (ws.dirty_list.empty()) return {true, 0};  // labels untouched

  // Rebuild the settle order. The fresh-sweep order is the reachable
  // vertices sorted by final (dist, hops, id); unchanged vertices are
  // already in that order, so merge them with the re-sorted changed set.
  auto key_less = [&](NodeId a, NodeId b) {
    if (tree.dist[a] != tree.dist[b]) return tree.dist[a] < tree.dist[b];
    if (tree.hops[a] != tree.hops[b]) return tree.hops[a] < tree.hops[b];
    return a < b;
  };
  ws.changed.clear();
  for (const NodeId x : ws.dirty_list) {
    if (tree.dist[x] != kInf) ws.changed.push_back(x);
    tree.settled[x] = tree.dist[x] != kInf ? 1 : 0;
  }
  std::sort(ws.changed.begin(), ws.changed.end(), key_less);
  ws.merged.clear();
  std::size_t ci = 0;
  for (const NodeId v : tree.order) {
    if (ws.dirty[v]) continue;
    while (ci < ws.changed.size() && key_less(ws.changed[ci], v)) {
      ws.merged.push_back(ws.changed[ci++]);
    }
    ws.merged.push_back(v);
  }
  while (ci < ws.changed.size()) ws.merged.push_back(ws.changed[ci++]);
  tree.order.assign(ws.merged.begin(), ws.merged.end());
  return {true, ws.dirty_list.size()};
}

void extract_shortest_path_dag(const Topology& g,
                               const DistanceProvider& lengths,
                               const ShortestPathTree& tree, SpDag& out) {
  const std::size_t n = g.num_nodes();
  if (tree.dist.size() != n) {
    throw std::invalid_argument("extract_shortest_path_dag: size mismatch");
  }
  // u strictly precedes v under the composite settle key. Equal keys are
  // impossible between distinct nodes (the id breaks every tie), so this is
  // a total order on the reachable set.
  auto key_less = [&](NodeId a, NodeId b) {
    if (tree.dist[a] != tree.dist[b]) return tree.dist[a] < tree.dist[b];
    if (tree.hops[a] != tree.hops[b]) return tree.hops[a] < tree.hops[b];
    return a < b;
  };
  out.off.assign(n + 1, 0);
  out.pred.clear();
  for (NodeId v = 0; v < n; ++v) {
    out.off[v] = static_cast<std::uint32_t>(out.pred.size());
    if (v == tree.source || tree.dist[v] == kInf) continue;
    // neighbors(v) is sorted, so predecessors land in ascending id order.
    for (const NodeId u : g.neighbors(v)) {
      if (tree.dist[u] == kInf) continue;
      // Bitwise membership test: the exact relaxation the solver performed,
      // operands in the same order (predecessor first).
      if (tree.dist[u] + lengths(u, v) == tree.dist[v] && key_less(u, v)) {
        out.pred.push_back(u);
      }
    }
  }
  out.off[n] = static_cast<std::uint32_t>(out.pred.size());
}

SpAlgorithm resolve_sp_algorithm(const Topology& g, SpAlgorithm algo) {
  if (algo == SpAlgorithm::kAuto) {
    algo = select_sp_algorithm(g.num_nodes(), g.num_edges());
  }
  // The dense kernels read dense_row(); without the view the heap solver is
  // the only backend — and it returns bit-identical trees, so the fallback
  // is invisible to every consumer.
  if (algo == SpAlgorithm::kDense && !g.has_dense_view()) {
    algo = SpAlgorithm::kSparse;
  }
  return algo;
}

SpAlgorithm resolve_sp_algorithm(const Topology& g,
                                 const DistanceProvider& lengths,
                                 SpAlgorithm algo) {
  algo = resolve_sp_algorithm(g, algo);
  // The dense kernel also streams contiguous length rows; a matrix-free
  // provider has none, so only the heap solver (one on-demand lookup per
  // relaxation) can run. Bit-identical trees either way.
  if (algo == SpAlgorithm::kDense && !lengths.has_dense()) {
    algo = SpAlgorithm::kSparse;
  }
  return algo;
}

SpAlgorithm select_sp_algorithm(std::size_t n, std::size_t m) {
  // Dense does ~n^2 cheap scan steps per source; the heap does ~(n + m)
  // pushes/pops, each costing a log n sift of a 16-byte entry (~4x a scan
  // step). Cross-over: sparse once 4 (n + m) log2 n < n^2 — i.e. on the
  // m ≈ n graphs synthesis produces from n ≈ 70 up, never on near-cliques.
  if (n < 2) return SpAlgorithm::kDense;
  const std::size_t log2n = std::bit_width(n);
  return 4 * (n + m) * log2n < n * n ? SpAlgorithm::kSparse
                                     : SpAlgorithm::kDense;
}

void ShortestPathTree::resize(std::size_t n) {
  dist.assign(n, kInf);
  hops.assign(n, -1);
  parent.assign(n, 0);
  order.clear();
  order.reserve(n);
  settled.assign(n, 0);
}

std::vector<NodeId> ShortestPathTree::path_to(NodeId target) const {
  if (target >= dist.size() || dist[target] == kInf) return {};
  std::vector<NodeId> path;
  NodeId v = target;
  path.push_back(v);
  while (v != source) {
    v = parent[v];
    path.push_back(v);
    if (path.size() > dist.size()) {
      throw std::logic_error("path_to: parent cycle");  // defensive
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void SpLengthCache::build(const Topology& g, const DistanceProvider& lengths) {
  n = g.num_nodes();
  off.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    off[v + 1] = off[v] + g.neighbors(v).size();
  }
  len.resize(off[n]);
  for (NodeId v = 0; v < n; ++v) {
    std::size_t slot = off[v];
    for (const NodeId u : g.neighbors(v)) {
      len[slot++] = lengths(v, u);  // the exact doubles the solver would see
    }
  }
}

void shortest_path_tree(const Topology& g, const DistanceProvider& lengths,
                        NodeId source, ShortestPathTree& out,
                        SpAlgorithm algo, const SpLengthCache* cache) {
  const std::size_t n = g.num_nodes();
  if (lengths.rows() != n || lengths.cols() != n) {
    throw std::invalid_argument("shortest_path_tree: length shape mismatch");
  }
  if (source >= n) {
    throw std::out_of_range("shortest_path_tree: source out of range");
  }
  out.source = source;
  out.resize(n);
  out.dist[source] = 0.0;
  out.hops[source] = 0;
  out.parent[source] = source;

  algo = resolve_sp_algorithm(g, lengths, algo);
  if (algo == SpAlgorithm::kSparse) {
    shortest_path_tree_sparse(g, lengths, source, out, cache);
  } else {
    shortest_path_tree_dense(g, lengths, out);
  }
}

ShortestPathTree shortest_path_tree(const Topology& g,
                                    const DistanceProvider& lengths,
                                    NodeId source, SpAlgorithm algo) {
  ShortestPathTree tree;
  shortest_path_tree(g, lengths, source, tree, algo);
  return tree;
}

Matrix<double> floyd_warshall(const Topology& g, const DistanceProvider& lengths) {
  const std::size_t n = g.num_nodes();
  if (lengths.rows() != n || lengths.cols() != n) {
    throw std::invalid_argument("floyd_warshall: length shape mismatch");
  }
  Matrix<double> d = Matrix<double>::square(n, kInf);
  for (NodeId i = 0; i < n; ++i) {
    d(i, i) = 0.0;
    for (const NodeId j : g.neighbors(i)) d(i, j) = lengths(i, j);
  }
  for (NodeId k = 0; k < n; ++k) {
    for (NodeId i = 0; i < n; ++i) {
      if (d(i, k) == kInf) continue;
      for (NodeId j = 0; j < n; ++j) {
        const double via = d(i, k) + d(k, j);
        if (via < d(i, j)) d(i, j) = via;
      }
    }
  }
  return d;
}

Matrix<int> all_pairs_hops(const Topology& g) {
  const std::size_t n = g.num_nodes();
  Matrix<int> hops(n, n, -1);
  for (NodeId s = 0; s < n; ++s) {
    const std::vector<int> h = bfs_hops(g, s);
    for (NodeId t = 0; t < n; ++t) hops(s, t) = h[t];
  }
  return hops;
}

}  // namespace cold
