#include "graph/shortest_paths.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "graph/algorithms.h"

namespace cold {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

void ShortestPathTree::resize(std::size_t n) {
  dist.assign(n, kInf);
  hops.assign(n, -1);
  parent.assign(n, 0);
  order.clear();
  order.reserve(n);
}

std::vector<NodeId> ShortestPathTree::path_to(NodeId target) const {
  if (target >= dist.size() || dist[target] == kInf) return {};
  std::vector<NodeId> path;
  NodeId v = target;
  path.push_back(v);
  while (v != source) {
    v = parent[v];
    path.push_back(v);
    if (path.size() > dist.size()) {
      throw std::logic_error("path_to: parent cycle");  // defensive
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void shortest_path_tree(const Topology& g, const Matrix<double>& lengths,
                        NodeId source, ShortestPathTree& out) {
  const std::size_t n = g.num_nodes();
  if (lengths.rows() != n || lengths.cols() != n) {
    throw std::invalid_argument("shortest_path_tree: length shape mismatch");
  }
  if (source >= n) {
    throw std::out_of_range("shortest_path_tree: source out of range");
  }
  out.source = source;
  out.resize(n);
  out.dist[source] = 0.0;
  out.hops[source] = 0;
  out.parent[source] = source;

  // O(n^2) Dijkstra: repeatedly settle the unsettled node with the smallest
  // (dist, hops, parent) key. The composite key is the deterministic
  // tie-break documented in DESIGN.md.
  std::vector<std::uint8_t> settled(n, 0);
  for (std::size_t round = 0; round < n; ++round) {
    NodeId best = n;
    for (NodeId v = 0; v < n; ++v) {
      if (settled[v] || out.dist[v] == kInf) continue;
      if (best == n || out.dist[v] < out.dist[best] ||
          (out.dist[v] == out.dist[best] &&
           (out.hops[v] < out.hops[best] ||
            (out.hops[v] == out.hops[best] && v < best)))) {
        best = v;
      }
    }
    if (best == n) break;  // remaining nodes unreachable
    settled[best] = 1;
    out.order.push_back(best);
    const std::uint8_t* r = g.row(best);
    for (NodeId u = 0; u < n; ++u) {
      if (!r[u] || settled[u]) continue;
      const double cand = out.dist[best] + lengths(best, u);
      const int cand_hops = out.hops[best] + 1;
      const bool better =
          cand < out.dist[u] ||
          (cand == out.dist[u] &&
           (cand_hops < out.hops[u] ||
            (cand_hops == out.hops[u] && out.dist[u] != kInf &&
             best < out.parent[u])));
      if (better) {
        out.dist[u] = cand;
        out.hops[u] = cand_hops;
        out.parent[u] = best;
      }
    }
  }
}

ShortestPathTree shortest_path_tree(const Topology& g,
                                    const Matrix<double>& lengths,
                                    NodeId source) {
  ShortestPathTree tree;
  shortest_path_tree(g, lengths, source, tree);
  return tree;
}

Matrix<double> floyd_warshall(const Topology& g, const Matrix<double>& lengths) {
  const std::size_t n = g.num_nodes();
  if (lengths.rows() != n || lengths.cols() != n) {
    throw std::invalid_argument("floyd_warshall: length shape mismatch");
  }
  Matrix<double> d = Matrix<double>::square(n, kInf);
  for (NodeId i = 0; i < n; ++i) {
    d(i, i) = 0.0;
    const std::uint8_t* r = g.row(i);
    for (NodeId j = 0; j < n; ++j) {
      if (r[j]) d(i, j) = lengths(i, j);
    }
  }
  for (NodeId k = 0; k < n; ++k) {
    for (NodeId i = 0; i < n; ++i) {
      if (d(i, k) == kInf) continue;
      for (NodeId j = 0; j < n; ++j) {
        const double via = d(i, k) + d(k, j);
        if (via < d(i, j)) d(i, j) = via;
      }
    }
  }
  return d;
}

Matrix<int> all_pairs_hops(const Topology& g) {
  const std::size_t n = g.num_nodes();
  Matrix<int> hops(n, n, -1);
  for (NodeId s = 0; s < n; ++s) {
    const std::vector<int> h = bfs_hops(g, s);
    for (NodeId t = 0; t < n; ++t) hops(s, t) = h[t];
  }
  return hops;
}

}  // namespace cold
