#include "graph/shortest_paths.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

#include "graph/algorithms.h"

namespace cold {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Strict-weak order on the composite settle key. The heap pops the
/// smallest (dist, hops, id) — exactly the node the dense scan selects.
struct HeapGreater {
  bool operator()(const ShortestPathTree::HeapItem& a,
                  const ShortestPathTree::HeapItem& b) const {
    if (a.dist != b.dist) return a.dist > b.dist;
    if (a.hops != b.hops) return a.hops > b.hops;
    return a.id > b.id;
  }
};

void shortest_path_tree_dense(const Topology& g, const Matrix<double>& lengths,
                              ShortestPathTree& out) {
  const std::size_t n = g.num_nodes();
  // O(n^2) Dijkstra: repeatedly settle the unsettled node with the smallest
  // (dist, hops, id) key. The composite key is the deterministic tie-break
  // documented in DESIGN.md.
  for (std::size_t round = 0; round < n; ++round) {
    NodeId best = n;
    for (NodeId v = 0; v < n; ++v) {
      if (out.settled[v] || out.dist[v] == kInf) continue;
      if (best == n || out.dist[v] < out.dist[best] ||
          (out.dist[v] == out.dist[best] &&
           (out.hops[v] < out.hops[best] ||
            (out.hops[v] == out.hops[best] && v < best)))) {
        best = v;
      }
    }
    if (best == n) break;  // remaining nodes unreachable
    out.settled[best] = 1;
    out.order.push_back(best);
    const std::uint8_t* r = g.row(best);
    for (NodeId u = 0; u < n; ++u) {
      if (!r[u] || out.settled[u]) continue;
      const double cand = out.dist[best] + lengths(best, u);
      const int cand_hops = out.hops[best] + 1;
      const bool better =
          cand < out.dist[u] ||
          (cand == out.dist[u] &&
           (cand_hops < out.hops[u] ||
            (cand_hops == out.hops[u] && out.dist[u] != kInf &&
             best < out.parent[u])));
      if (better) {
        out.dist[u] = cand;
        out.hops[u] = cand_hops;
        out.parent[u] = best;
      }
    }
  }
}

void shortest_path_tree_sparse(const Topology& g, const Matrix<double>& lengths,
                               NodeId source, ShortestPathTree& out) {
  // Heap Dijkstra with lazy deletion. Entries carry the full composite
  // (dist, hops, id) key, so the valid heap minimum coincides with the
  // dense scan's selection at every step; stale entries (superseded by a
  // strictly better label) are recognised by key mismatch and skipped.
  // The relaxation rule — including the equal-(dist, hops) smallest-parent
  // tie-break — is byte-for-byte the dense one, so the two solvers return
  // identical trees.
  auto& heap = out.heap;
  heap.clear();
  heap.push_back({0.0, 0, source});
  const HeapGreater greater;
  while (!heap.empty()) {
    const ShortestPathTree::HeapItem top = heap.front();
    std::pop_heap(heap.begin(), heap.end(), greater);
    heap.pop_back();
    const NodeId v = top.id;
    if (out.settled[v] || top.dist != out.dist[v] || top.hops != out.hops[v]) {
      continue;  // settled or stale
    }
    out.settled[v] = 1;
    out.order.push_back(v);
    for (const NodeId u : g.adjacency(v)) {
      if (out.settled[u]) continue;
      const double cand = out.dist[v] + lengths(v, u);
      const int cand_hops = out.hops[v] + 1;
      const bool better =
          cand < out.dist[u] ||
          (cand == out.dist[u] &&
           (cand_hops < out.hops[u] ||
            (cand_hops == out.hops[u] && out.dist[u] != kInf &&
             v < out.parent[u])));
      if (better) {
        // A parent-only improvement keeps (dist, hops): the entry already
        // in the heap stays valid, so only key changes need a push.
        const bool key_changed =
            cand != out.dist[u] || cand_hops != out.hops[u];
        out.dist[u] = cand;
        out.hops[u] = cand_hops;
        out.parent[u] = v;
        if (key_changed) {
          heap.push_back({cand, cand_hops, u});
          std::push_heap(heap.begin(), heap.end(), greater);
        }
      }
    }
  }
}

}  // namespace

SpAlgorithm select_sp_algorithm(std::size_t n, std::size_t m) {
  // Dense does ~n^2 cheap scan steps per source; the heap does ~(n + m)
  // pushes/pops, each costing a log n sift of a 16-byte entry (~4x a scan
  // step). Cross-over: sparse once 4 (n + m) log2 n < n^2 — i.e. on the
  // m ≈ n graphs synthesis produces from n ≈ 70 up, never on near-cliques.
  if (n < 2) return SpAlgorithm::kDense;
  const std::size_t log2n = std::bit_width(n);
  return 4 * (n + m) * log2n < n * n ? SpAlgorithm::kSparse
                                     : SpAlgorithm::kDense;
}

void ShortestPathTree::resize(std::size_t n) {
  dist.assign(n, kInf);
  hops.assign(n, -1);
  parent.assign(n, 0);
  order.clear();
  order.reserve(n);
  settled.assign(n, 0);
}

std::vector<NodeId> ShortestPathTree::path_to(NodeId target) const {
  if (target >= dist.size() || dist[target] == kInf) return {};
  std::vector<NodeId> path;
  NodeId v = target;
  path.push_back(v);
  while (v != source) {
    v = parent[v];
    path.push_back(v);
    if (path.size() > dist.size()) {
      throw std::logic_error("path_to: parent cycle");  // defensive
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void shortest_path_tree(const Topology& g, const Matrix<double>& lengths,
                        NodeId source, ShortestPathTree& out,
                        SpAlgorithm algo) {
  const std::size_t n = g.num_nodes();
  if (lengths.rows() != n || lengths.cols() != n) {
    throw std::invalid_argument("shortest_path_tree: length shape mismatch");
  }
  if (source >= n) {
    throw std::out_of_range("shortest_path_tree: source out of range");
  }
  out.source = source;
  out.resize(n);
  out.dist[source] = 0.0;
  out.hops[source] = 0;
  out.parent[source] = source;

  if (algo == SpAlgorithm::kAuto) {
    algo = select_sp_algorithm(n, g.num_edges());
  }
  if (algo == SpAlgorithm::kSparse) {
    shortest_path_tree_sparse(g, lengths, source, out);
  } else {
    shortest_path_tree_dense(g, lengths, out);
  }
}

ShortestPathTree shortest_path_tree(const Topology& g,
                                    const Matrix<double>& lengths,
                                    NodeId source, SpAlgorithm algo) {
  ShortestPathTree tree;
  shortest_path_tree(g, lengths, source, tree, algo);
  return tree;
}

Matrix<double> floyd_warshall(const Topology& g, const Matrix<double>& lengths) {
  const std::size_t n = g.num_nodes();
  if (lengths.rows() != n || lengths.cols() != n) {
    throw std::invalid_argument("floyd_warshall: length shape mismatch");
  }
  Matrix<double> d = Matrix<double>::square(n, kInf);
  for (NodeId i = 0; i < n; ++i) {
    d(i, i) = 0.0;
    const std::uint8_t* r = g.row(i);
    for (NodeId j = 0; j < n; ++j) {
      if (r[j]) d(i, j) = lengths(i, j);
    }
  }
  for (NodeId k = 0; k < n; ++k) {
    for (NodeId i = 0; i < n; ++i) {
      if (d(i, k) == kInf) continue;
      for (NodeId j = 0; j < n; ++j) {
        const double via = d(i, k) + d(k, j);
        if (via < d(i, j)) d(i, j) = via;
      }
    }
  }
  return d;
}

Matrix<int> all_pairs_hops(const Topology& g) {
  const std::size_t n = g.num_nodes();
  Matrix<int> hops(n, n, -1);
  for (NodeId s = 0; s < n; ++s) {
    const std::vector<int> h = bfs_hops(g, s);
    for (NodeId t = 0; t < n; ++t) hops(s, t) = h[t];
  }
  return hops;
}

}  // namespace cold
