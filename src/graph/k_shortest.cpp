#include "graph/k_shortest.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "graph/shortest_paths.h"

namespace cold {

namespace {

double path_length(const std::vector<NodeId>& nodes,
                   const DistanceProvider& lengths) {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    total += lengths(nodes[i], nodes[i + 1]);
  }
  return total;
}

// Deterministic ordering for candidate paths.
bool path_less(const WeightedPath& a, const WeightedPath& b) {
  if (a.length != b.length) return a.length < b.length;
  if (a.nodes.size() != b.nodes.size()) return a.nodes.size() < b.nodes.size();
  return a.nodes < b.nodes;
}

// Shortest path with some edges/nodes masked out; empty if unreachable.
std::vector<NodeId> masked_shortest_path(const Topology& g,
                                         const DistanceProvider& lengths,
                                         NodeId s, NodeId t,
                                         const std::set<Edge>& banned_edges,
                                         const std::set<NodeId>& banned_nodes) {
  Topology masked = g;
  for (const Edge& e : banned_edges) masked.remove_edge(e.u, e.v);
  for (NodeId v : banned_nodes) {
    // neighbors() is a live view: detach via front() so the span is
    // re-fetched after each mutation.
    while (masked.degree(v) > 0) {
      masked.remove_edge(v, masked.neighbors(v).front());
    }
  }
  const ShortestPathTree tree = shortest_path_tree(masked, lengths, s);
  if (tree.hops[t] < 0) return {};
  return tree.path_to(t);
}

}  // namespace

std::vector<WeightedPath> k_shortest_paths(const Topology& g,
                                           const DistanceProvider& lengths,
                                           NodeId s, NodeId t, std::size_t k) {
  const std::size_t n = g.num_nodes();
  if (s >= n || t >= n) {
    throw std::out_of_range("k_shortest_paths: endpoint out of range");
  }
  if (s == t) throw std::invalid_argument("k_shortest_paths: s == t");
  if (k == 0) throw std::invalid_argument("k_shortest_paths: k must be >= 1");

  std::vector<WeightedPath> found;
  const auto first =
      masked_shortest_path(g, lengths, s, t, {}, {});
  if (first.empty()) return found;
  found.push_back(WeightedPath{first, path_length(first, lengths)});

  // Candidate pool ordered deterministically; set-based for dedup.
  auto cmp = [](const WeightedPath& a, const WeightedPath& b) {
    return path_less(a, b);
  };
  std::set<WeightedPath, decltype(cmp)> candidates(cmp);

  while (found.size() < k) {
    const std::vector<NodeId>& prev = found.back().nodes;
    // For each spur node on the previous path...
    for (std::size_t i = 0; i + 1 < prev.size(); ++i) {
      const NodeId spur = prev[i];
      const std::vector<NodeId> root(prev.begin(),
                                     prev.begin() + static_cast<long>(i) + 1);
      // Ban edges that would reproduce an already-found path with this root.
      std::set<Edge> banned_edges;
      for (const WeightedPath& p : found) {
        if (p.nodes.size() > i &&
            std::equal(root.begin(), root.end(), p.nodes.begin())) {
          if (p.nodes.size() > i + 1) {
            banned_edges.insert(make_edge(p.nodes[i], p.nodes[i + 1]));
          }
        }
      }
      // Ban the root's interior nodes so spur paths stay simple.
      std::set<NodeId> banned_nodes(root.begin(), root.end() - 1);

      const auto spur_path =
          masked_shortest_path(g, lengths, spur, t, banned_edges, banned_nodes);
      if (spur_path.empty()) continue;
      std::vector<NodeId> total = root;
      total.insert(total.end(), spur_path.begin() + 1, spur_path.end());
      WeightedPath cand{total, path_length(total, lengths)};
      // Skip anything already found.
      const bool dup = std::any_of(found.begin(), found.end(),
                                   [&](const WeightedPath& p) {
                                     return p.nodes == cand.nodes;
                                   });
      if (!dup) candidates.insert(std::move(cand));
    }
    if (candidates.empty()) break;
    found.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return found;
}

std::vector<WeightedPath> disjoint_path_pair(const Topology& g,
                                             const DistanceProvider& lengths,
                                             NodeId s, NodeId t) {
  std::vector<WeightedPath> out;
  const auto first = masked_shortest_path(g, lengths, s, t, {}, {});
  if (first.empty()) return out;
  out.push_back(WeightedPath{first, path_length(first, lengths)});
  std::set<Edge> used;
  for (std::size_t i = 0; i + 1 < first.size(); ++i) {
    used.insert(make_edge(first[i], first[i + 1]));
  }
  const auto second = masked_shortest_path(g, lengths, s, t, used, {});
  if (!second.empty()) {
    out.push_back(WeightedPath{second, path_length(second, lengths)});
  }
  return out;
}

}  // namespace cold
