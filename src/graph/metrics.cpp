#include "graph/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stack>

#include "graph/algorithms.h"
#include "graph/shortest_paths.h"

namespace cold {

double average_degree(const Topology& g) {
  if (g.num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(g.num_edges()) /
         static_cast<double>(g.num_nodes());
}

double degree_cv(const Topology& g) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return 0.0;
  double mean = 0.0;
  for (NodeId v = 0; v < n; ++v) mean += g.degree(v);
  mean /= static_cast<double>(n);
  if (mean == 0.0) return 0.0;
  double ss = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    const double d = g.degree(v) - mean;
    ss += d * d;
  }
  // Population standard deviation, as used for CVND in [16].
  return std::sqrt(ss / static_cast<double>(n)) / mean;
}

int diameter(const Topology& g) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return -1;
  int diam = 0;
  for (NodeId s = 0; s < n; ++s) {
    for (int h : bfs_hops(g, s)) {
      if (h < 0) return -1;  // disconnected
      diam = std::max(diam, h);
    }
  }
  return diam;
}

double average_path_length(const Topology& g) {
  const std::size_t n = g.num_nodes();
  double total = 0.0;
  std::size_t pairs = 0;
  for (NodeId s = 0; s < n; ++s) {
    for (int h : bfs_hops(g, s)) {
      if (h > 0) {
        total += h;
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

std::size_t count_triangles(const Topology& g) {
  // Each triangle i < j < k is counted once at its smallest vertex: for
  // every edge (i, j), intersect the sorted neighbour lists above j.
  const std::size_t n = g.num_nodes();
  std::size_t triangles = 0;
  for (NodeId i = 0; i < n; ++i) {
    const std::span<const NodeId> ni = g.neighbors(i);
    for (const NodeId j : ni) {
      if (j <= i) continue;
      const std::span<const NodeId> nj = g.neighbors(j);
      std::size_t a = ni.size(), b = nj.size();
      // Walk both sorted lists from the first entry above j.
      std::size_t pa = static_cast<std::size_t>(
          std::upper_bound(ni.begin(), ni.end(), j) - ni.begin());
      std::size_t pb = static_cast<std::size_t>(
          std::upper_bound(nj.begin(), nj.end(), j) - nj.begin());
      while (pa < a && pb < b) {
        if (ni[pa] == nj[pb]) {
          ++triangles;
          ++pa;
          ++pb;
        } else if (ni[pa] < nj[pb]) {
          ++pa;
        } else {
          ++pb;
        }
      }
    }
  }
  return triangles;
}

double global_clustering(const Topology& g) {
  // #connected triples (paths of length 2, centre counted) = sum_v C(d_v, 2).
  double triples = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const double d = g.degree(v);
    triples += d * (d - 1) / 2.0;
  }
  if (triples == 0.0) return 0.0;
  return 3.0 * static_cast<double>(count_triangles(g)) / triples;
}

double average_local_clustering(const Topology& g) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return 0.0;
  double total = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    const int d = g.degree(v);
    if (d < 2) continue;
    const auto nbrs = g.neighbors(v);
    std::size_t links = 0;
    for (std::size_t a = 0; a < nbrs.size(); ++a) {
      for (std::size_t b = a + 1; b < nbrs.size(); ++b) {
        if (g.has_edge(nbrs[a], nbrs[b])) ++links;
      }
    }
    total += 2.0 * static_cast<double>(links) /
             (static_cast<double>(d) * (d - 1));
  }
  return total / static_cast<double>(n);
}

double assortativity(const Topology& g) {
  // Newman's formula via sums over edges.
  const auto edges = g.edges();
  if (edges.empty()) return 0.0;
  const double m = static_cast<double>(edges.size());
  double s_prod = 0.0, s_sum = 0.0, s_sq = 0.0;
  for (const Edge& e : edges) {
    const double du = g.degree(e.u);
    const double dv = g.degree(e.v);
    s_prod += du * dv;
    s_sum += 0.5 * (du + dv);
    s_sq += 0.5 * (du * du + dv * dv);
  }
  const double num = s_prod / m - (s_sum / m) * (s_sum / m);
  const double den = s_sq / m - (s_sum / m) * (s_sum / m);
  if (den == 0.0) return 0.0;
  return num / den;
}

double smax_ratio(const Topology& g) {
  const auto edges = g.edges();
  if (edges.empty()) return 0.0;
  double s = 0.0;
  for (const Edge& e : edges) {
    s += static_cast<double>(g.degree(e.u)) * g.degree(e.v);
  }
  // Greedy upper bound on s_max: pair the largest degree products first.
  // (Exact s_max requires searching graphs with the same degree sequence;
  // the standard greedy bound is tight enough to order graphs, which is all
  // the entropy comparison in [1] needs.)
  std::vector<int> deg(g.degrees());
  std::sort(deg.begin(), deg.end(), std::greater<int>());
  // Build the multiset of the |E| largest degree-pair products d_i * d_j
  // over i < j (greedy): iterate pairs in decreasing product order via a
  // priority queue.
  using Item = std::pair<double, std::pair<std::size_t, std::size_t>>;
  std::priority_queue<Item> pq;
  const std::size_t n = deg.size();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    pq.push({static_cast<double>(deg[i]) * deg[i + 1], {i, i + 1}});
  }
  double smax = 0.0;
  std::size_t taken = 0;
  while (taken < edges.size() && !pq.empty()) {
    const auto [prod, ij] = pq.top();
    pq.pop();
    smax += prod;
    ++taken;
    const auto [i, j] = ij;
    if (j + 1 < n) {
      pq.push({static_cast<double>(deg[i]) * deg[j + 1], {i, j + 1}});
    }
  }
  return smax == 0.0 ? 0.0 : s / smax;
}

namespace {

// Brandes' betweenness; accumulates node and/or edge scores.
void brandes(const Topology& g, std::vector<double>* node_score,
             std::vector<double>* edge_score,
             const std::vector<Edge>* edges) {
  const std::size_t n = g.num_nodes();
  // Edge scores are indexed into the caller's lexicographically sorted edge
  // list (Topology::edges() order), so a canonical pair resolves to its
  // index by binary search — no n² lookup table.
  const auto edge_at = [edges](NodeId a, NodeId b) {
    const Edge e = make_edge(a, b);
    return static_cast<std::size_t>(
        std::lower_bound(edges->begin(), edges->end(), e) - edges->begin());
  };
  std::vector<double> sigma(n), delta(n);
  std::vector<int> dist(n);
  std::vector<std::vector<NodeId>> preds(n);
  for (NodeId s = 0; s < n; ++s) {
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    std::fill(dist.begin(), dist.end(), -1);
    for (auto& p : preds) p.clear();
    std::vector<NodeId> stack;
    std::queue<NodeId> q;
    sigma[s] = 1.0;
    dist[s] = 0;
    q.push(s);
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      stack.push_back(v);
      for (const NodeId w : g.neighbors(v)) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          q.push(w);
        }
        if (dist[w] == dist[v] + 1) {
          sigma[w] += sigma[v];
          preds[w].push_back(v);
        }
      }
    }
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      const NodeId w = *it;
      for (NodeId v : preds[w]) {
        const double share = sigma[v] / sigma[w] * (1.0 + delta[w]);
        delta[v] += share;
        if (edge_score != nullptr) {
          (*edge_score)[edge_at(v, w)] += share;
        }
      }
      if (w != s && node_score != nullptr) (*node_score)[w] += delta[w];
    }
  }
  // Each undirected pair was counted from both endpoints; halve.
  if (node_score != nullptr) {
    for (double& x : *node_score) x /= 2.0;
  }
  if (edge_score != nullptr) {
    for (double& x : *edge_score) x /= 2.0;
  }
}

}  // namespace

std::vector<double> node_betweenness(const Topology& g) {
  std::vector<double> score(g.num_nodes(), 0.0);
  brandes(g, &score, nullptr, nullptr);
  return score;
}

std::vector<double> edge_betweenness(const Topology& g) {
  const auto edges = g.edges();
  std::vector<double> score(edges.size(), 0.0);
  brandes(g, nullptr, &score, &edges);
  return score;
}

std::vector<std::size_t> degree_histogram(const Topology& g) {
  int max_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
  }
  std::vector<std::size_t> hist(static_cast<std::size_t>(max_deg) + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ++hist[static_cast<std::size_t>(g.degree(v))];
  }
  return hist;
}

TopologyMetrics compute_metrics(const Topology& g) {
  TopologyMetrics m;
  m.nodes = g.num_nodes();
  m.edges = g.num_edges();
  m.avg_degree = average_degree(g);
  m.degree_cv = degree_cv(g);
  m.connected = is_connected(g);
  m.diameter = m.connected ? diameter(g) : -1;
  m.avg_path_length = average_path_length(g);
  m.global_clustering = global_clustering(g);
  m.assortativity = assortativity(g);
  m.hubs = g.num_core_nodes();
  m.leaves = g.num_leaf_nodes();
  return m;
}

}  // namespace cold
