// Spectral graph measures: algebraic connectivity (Fiedler value) and the
// Fiedler vector, via deflated power iteration on the Laplacian.
//
// Algebraic connectivity is a continuous robustness/partitionability score
// that complements the combinatorial resilience metrics: lambda_2 = 0 iff
// disconnected, small lambda_2 means a sparse cut exists (the Fiedler vector
// signs expose it). Used by the resilience tooling and available to bench
// consumers.
#pragma once

#include <vector>

#include "graph/topology.h"

namespace cold {

struct SpectralResult {
  double algebraic_connectivity = 0.0;  ///< lambda_2 of the Laplacian
  std::vector<double> fiedler;          ///< corresponding eigenvector
  std::size_t iterations = 0;
  bool converged = false;
};

struct SpectralOptions {
  std::size_t max_iterations = 5000;
  double tolerance = 1e-9;
  std::uint64_t seed = 1;  ///< start-vector randomization (deterministic)
};

/// Computes lambda_2 and the Fiedler vector. Returns
/// algebraic_connectivity == 0 (exactly) for disconnected or trivial graphs.
SpectralResult algebraic_connectivity(const Topology& g,
                                      const SpectralOptions& options = {});

/// The spectral bisection implied by the Fiedler vector's signs: nodes with
/// non-negative entries on one side. Throws for disconnected input.
std::vector<bool> spectral_partition(const Topology& g,
                                     const SpectralOptions& options = {});

}  // namespace cold
