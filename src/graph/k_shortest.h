// K shortest loopless paths (Yen's algorithm) by physical length.
//
// Simulation consumers of COLD networks routinely need backup paths —
// protection routing, multipath spreading, what-if rerouting. Yen's
// algorithm on top of the deterministic Dijkstra gives the K shortest
// simple paths between a PoP pair, ordered by length with the same
// tie-breaking as the router.
#pragma once

#include <vector>

#include "geom/distance.h"
#include "graph/topology.h"
#include "util/matrix.h"

namespace cold {

struct WeightedPath {
  std::vector<NodeId> nodes;  ///< s..t inclusive
  double length = 0.0;
};

/// Up to k shortest simple paths from s to t (fewer if the graph has
/// fewer). Paths are ordered by (length, hop count, lexicographic nodes).
/// Throws on invalid endpoints or k == 0. O(k * n * n^2) with the dense
/// Dijkstra — fine at PoP scale.
std::vector<WeightedPath> k_shortest_paths(const Topology& g,
                                           const DistanceProvider& lengths,
                                           NodeId s, NodeId t, std::size_t k);

/// Two link-disjoint paths s->t if they exist (shortest pair by total
/// length, via successive Dijkstra with edge removal — a simple 2-disjoint
/// heuristic adequate for protection-path studies; empty second path if the
/// graph has no disjoint pair). First element is always the shortest path.
std::vector<WeightedPath> disjoint_path_pair(const Topology& g,
                                             const DistanceProvider& lengths,
                                             NodeId s, NodeId t);

}  // namespace cold
