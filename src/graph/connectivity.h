// Resilience-oriented connectivity analysis.
//
// The paper deliberately excludes redundancy from the PoP-level objective
// ("we do not include redundancy ... at this level", §3.2) but notes that a
// degree-1 PoP-level node is not necessarily unprotected. These analyses let
// a user *measure* the redundancy a synthesized network ends up with:
// bridges (links whose failure disconnects), articulation PoPs, and the
// global edge connectivity.
#pragma once

#include <vector>

#include "graph/topology.h"

namespace cold {

/// Bridge edges: links whose removal disconnects their component. Tarjan's
/// low-link algorithm, O(n^2) on the dense representation.
std::vector<Edge> find_bridges(const Topology& g);

/// Articulation (cut) nodes: PoPs whose removal disconnects their component.
std::vector<NodeId> find_articulation_points(const Topology& g);

/// Global edge connectivity: the minimum number of links whose removal
/// disconnects the graph (0 if already disconnected or n < 2). Computed via
/// max-flow (Edmonds–Karp on unit capacities) from a fixed source to every
/// other node — O(n) flow computations; fine for PoP-scale graphs.
std::size_t edge_connectivity(const Topology& g);

/// True iff the graph remains connected after removing every one of `fail`
/// simultaneously (links absent from g are ignored).
bool survives_failures(const Topology& g, const std::vector<Edge>& fail);

/// Resilience summary used by reports and benches.
struct ResilienceReport {
  std::size_t bridges = 0;
  std::size_t articulation_points = 0;
  std::size_t edge_connectivity = 0;
  /// Fraction of single-link failures that disconnect the network.
  double single_link_failure_disconnect_rate = 0.0;
};

ResilienceReport analyze_resilience(const Topology& g);

}  // namespace cold
