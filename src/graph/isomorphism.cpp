#include "graph/isomorphism.h"

#include <algorithm>

namespace cold {

namespace {

// Iterative-refinement colouring (1-WL): start from degrees, refine by
// multiset of neighbour colours until stable. Nodes mapped to each other
// must share a colour, which prunes the backtracking search hard.
std::vector<int> wl_colours(const Topology& g) {
  const std::size_t n = g.num_nodes();
  std::vector<int> colour(n);
  for (NodeId v = 0; v < n; ++v) colour[v] = g.degree(v);
  for (std::size_t round = 0; round < n; ++round) {
    // signature = (colour, sorted neighbour colours)
    std::vector<std::pair<std::vector<int>, NodeId>> sigs(n);
    for (NodeId v = 0; v < n; ++v) {
      std::vector<int> sig{colour[v]};
      for (NodeId u : g.neighbors(v)) sig.push_back(colour[u]);
      std::sort(sig.begin() + 1, sig.end());
      sigs[v] = {std::move(sig), v};
    }
    auto sorted = sigs;
    std::sort(sorted.begin(), sorted.end());
    std::vector<int> next(n);
    int c = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0 && sorted[i].first != sorted[i - 1].first) ++c;
      next[sorted[i].second] = c;
    }
    if (next == colour) break;
    colour = std::move(next);
  }
  return colour;
}

struct Search {
  const Topology& a;
  const Topology& b;
  std::vector<int> colour_a;
  std::vector<int> colour_b;
  std::vector<NodeId> map;      // a -> b
  std::vector<bool> used;       // b-node already used

  bool backtrack(std::size_t idx, const std::vector<NodeId>& order) {
    if (idx == order.size()) return true;
    const NodeId va = order[idx];
    for (NodeId vb = 0; vb < b.num_nodes(); ++vb) {
      if (used[vb] || colour_a[va] != colour_b[vb]) continue;
      // Consistency with already-mapped nodes.
      bool ok = true;
      for (std::size_t k = 0; k < idx; ++k) {
        const NodeId ua = order[k];
        if (a.has_edge(va, ua) != b.has_edge(vb, map[ua])) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      map[va] = vb;
      used[vb] = true;
      if (backtrack(idx + 1, order)) return true;
      used[vb] = false;
    }
    return false;
  }
};

}  // namespace

std::optional<std::vector<NodeId>> find_isomorphism(const Topology& a,
                                                    const Topology& b) {
  const std::size_t n = a.num_nodes();
  if (n != b.num_nodes() || a.num_edges() != b.num_edges()) return std::nullopt;
  if (n == 0) return std::vector<NodeId>{};

  std::vector<int> ca = wl_colours(a);
  std::vector<int> cb = wl_colours(b);
  // Colour class sizes must agree.
  {
    std::vector<int> sa = ca, sb = cb;
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    if (sa != sb) return std::nullopt;
  }

  // Map rarest-colour nodes first to cut the branching factor.
  std::vector<std::size_t> colour_count(n + 1, 0);
  for (int c : ca) ++colour_count[static_cast<std::size_t>(c)];
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](NodeId x, NodeId y) {
    const auto cx = colour_count[static_cast<std::size_t>(ca[x])];
    const auto cy = colour_count[static_cast<std::size_t>(ca[y])];
    if (cx != cy) return cx < cy;
    return x < y;
  });

  Search s{a, b, std::move(ca), std::move(cb),
           std::vector<NodeId>(n, 0), std::vector<bool>(n, false)};
  if (s.backtrack(0, order)) return s.map;
  return std::nullopt;
}

bool are_isomorphic(const Topology& a, const Topology& b) {
  return find_isomorphism(a, b).has_value();
}

}  // namespace cold
