// Fundamental graph algorithms: connectivity, components, spanning trees.
//
// These back the GA's connectedness repair (§4.1.3), the MST seed topology
// and heuristic (§4.1, §5), and the metrics module.
#pragma once

#include <vector>

#include "geom/distance.h"
#include "graph/topology.h"
#include "util/matrix.h"

namespace cold {

/// Component label (0-based, dense) per node, via BFS. Empty graph -> {}.
std::vector<std::size_t> connected_components(const Topology& g);

/// Number of connected components.
std::size_t num_components(const Topology& g);

/// True iff the graph is connected (vacuously true for n <= 1).
bool is_connected(const Topology& g);

/// Minimum spanning tree under the given symmetric weight matrix (Prim,
/// O(n^2) — ideal for dense geometric instances). The graph is implicitly
/// complete: any node pair may become a tree edge. Requires n >= 1.
Topology minimum_spanning_tree(const DistanceProvider& weights);

/// Minimum spanning forest restricted to edges of `g` (Kruskal). Each
/// component of `g` yields its own tree. Used to cross-check Prim and to
/// extract tree skeletons from existing networks.
std::vector<Edge> minimum_spanning_forest(const Topology& g,
                                          const DistanceProvider& weights);

/// The paper's connectedness repair (§4.1.3): find connected components,
/// compute the shortest inter-component link for each component pair, and
/// add the minimum spanning tree over components (weights = physical link
/// distance). Returns the number of links added. No-op on connected input.
std::size_t connect_components(Topology& g, const DistanceProvider& distances);

/// Hop distances from `source` by BFS; unreachable nodes get -1.
std::vector<int> bfs_hops(const Topology& g, NodeId source);

/// Disjoint-set (union-find) helper, exposed for reuse and testing.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  std::size_t find(std::size_t x);
  /// Returns true if the two sets were merged (i.e. were distinct).
  bool unite(std::size_t a, std::size_t b);
  std::size_t num_sets() const { return num_sets_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> rank_;
  std::size_t num_sets_;
};

}  // namespace cold
