#include "graph/connectivity.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <span>

#include "graph/algorithms.h"

namespace cold {

namespace {

// Shared DFS state for Tarjan bridge/articulation discovery. Iterative
// implementation (explicit stack) so deep trees cannot overflow the call
// stack.
struct LowLink {
  std::vector<int> disc;
  std::vector<int> low;
  std::vector<NodeId> parent;
  std::vector<Edge> bridges;
  std::vector<bool> articulation;

  explicit LowLink(const Topology& g)
      : disc(g.num_nodes(), -1),
        low(g.num_nodes(), 0),
        parent(g.num_nodes(), g.num_nodes()),
        articulation(g.num_nodes(), false) {
    int timer = 0;
    const std::size_t n = g.num_nodes();
    for (NodeId root = 0; root < n; ++root) {
      if (disc[root] != -1) continue;
      // Frame: (node, next index into its sorted neighbour list) — same
      // ascending-id visit order as the old full-row scan, in O(deg).
      std::vector<std::pair<NodeId, std::size_t>> stack{{root, 0}};
      disc[root] = low[root] = timer++;
      std::size_t root_children = 0;
      while (!stack.empty()) {
        auto& [v, next] = stack.back();
        const std::span<const NodeId> nbrs = g.neighbors(v);
        if (next < nbrs.size()) {
          const NodeId u = nbrs[next++];
          if (disc[u] == -1) {
            parent[u] = v;
            if (v == root) ++root_children;
            disc[u] = low[u] = timer++;
            stack.push_back({u, 0});
          } else if (u != parent[v]) {
            low[v] = std::min(low[v], disc[u]);
          }
        } else {
          stack.pop_back();
          if (!stack.empty()) {
            const NodeId p = stack.back().first;
            low[p] = std::min(low[p], low[v]);
            if (low[v] > disc[p]) bridges.push_back(make_edge(p, v));
            if (p != root && low[v] >= disc[p]) articulation[p] = true;
          }
        }
      }
      if (root_children > 1) articulation[root] = true;
    }
  }
};

// Unit-capacity max flow (Edmonds–Karp) between s and t over g's edges.
// Residual capacity only ever lives on directed adjacency pairs (both
// directions of an undirected link are adjacency slots), so the residual is
// a per-directed-slot CSR array — O(n + m) instead of an n² matrix.
std::size_t unit_max_flow(const Topology& g, NodeId s, NodeId t) {
  const std::size_t n = g.num_nodes();
  std::vector<std::size_t> off(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    off[v + 1] = off[v] + g.neighbors(v).size();
  }
  std::vector<int> residual(off[n], 1);
  // Directed slot (v -> u): off[v] + rank of u in v's sorted neighbours.
  const auto slot = [&](NodeId v, NodeId u) {
    const std::span<const NodeId> nbrs = g.neighbors(v);
    return off[v] + static_cast<std::size_t>(
                        std::lower_bound(nbrs.begin(), nbrs.end(), u) -
                        nbrs.begin());
  };
  std::size_t flow = 0;
  while (true) {
    // BFS for an augmenting path. Neighbour lists are sorted, so the visit
    // order matches the old ascending full-row scan.
    std::vector<NodeId> pred(n, n);
    std::queue<NodeId> q;
    q.push(s);
    pred[s] = s;
    while (!q.empty() && pred[t] == n) {
      const NodeId v = q.front();
      q.pop();
      const std::span<const NodeId> nbrs = g.neighbors(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const NodeId u = nbrs[i];
        if (pred[u] == n && residual[off[v] + i] > 0) {
          pred[u] = v;
          q.push(u);
        }
      }
    }
    if (pred[t] == n) break;
    for (NodeId v = t; v != s; v = pred[v]) {
      --residual[slot(pred[v], v)];
      ++residual[slot(v, pred[v])];
    }
    ++flow;
  }
  return flow;
}

}  // namespace

std::vector<Edge> find_bridges(const Topology& g) {
  LowLink ll(g);
  std::sort(ll.bridges.begin(), ll.bridges.end());
  return ll.bridges;
}

std::vector<NodeId> find_articulation_points(const Topology& g) {
  LowLink ll(g);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (ll.articulation[v]) out.push_back(v);
  }
  return out;
}

std::size_t edge_connectivity(const Topology& g) {
  const std::size_t n = g.num_nodes();
  if (n < 2 || !is_connected(g)) return 0;
  // Menger: global edge connectivity = min over t != s of maxflow(s, t).
  std::size_t best = g.num_edges();
  for (NodeId t = 1; t < n; ++t) {
    best = std::min(best, unit_max_flow(g, 0, t));
    if (best == 1) break;  // cannot get lower for a connected graph
  }
  return best;
}

bool survives_failures(const Topology& g, const std::vector<Edge>& fail) {
  Topology damaged = g;
  for (const Edge& e : fail) damaged.remove_edge(e.u, e.v);
  return is_connected(damaged);
}

ResilienceReport analyze_resilience(const Topology& g) {
  ResilienceReport report;
  const auto bridges = find_bridges(g);
  report.bridges = bridges.size();
  report.articulation_points = find_articulation_points(g).size();
  report.edge_connectivity = edge_connectivity(g);
  report.single_link_failure_disconnect_rate =
      g.num_edges() == 0 ? 0.0
                         : static_cast<double>(bridges.size()) /
                               static_cast<double>(g.num_edges());
  return report;
}

}  // namespace cold
