#include "graph/connectivity.h"

#include <algorithm>
#include <functional>
#include <queue>

#include "graph/algorithms.h"

namespace cold {

namespace {

// Shared DFS state for Tarjan bridge/articulation discovery. Iterative
// implementation (explicit stack) so deep trees cannot overflow the call
// stack.
struct LowLink {
  std::vector<int> disc;
  std::vector<int> low;
  std::vector<NodeId> parent;
  std::vector<Edge> bridges;
  std::vector<bool> articulation;

  explicit LowLink(const Topology& g)
      : disc(g.num_nodes(), -1),
        low(g.num_nodes(), 0),
        parent(g.num_nodes(), g.num_nodes()),
        articulation(g.num_nodes(), false) {
    int timer = 0;
    const std::size_t n = g.num_nodes();
    for (NodeId root = 0; root < n; ++root) {
      if (disc[root] != -1) continue;
      // Frame: (node, next neighbour to scan).
      std::vector<std::pair<NodeId, NodeId>> stack{{root, 0}};
      disc[root] = low[root] = timer++;
      std::size_t root_children = 0;
      while (!stack.empty()) {
        auto& [v, next] = stack.back();
        if (next < n) {
          const NodeId u = next++;
          if (!g.has_edge(v, u)) continue;
          if (disc[u] == -1) {
            parent[u] = v;
            if (v == root) ++root_children;
            disc[u] = low[u] = timer++;
            stack.push_back({u, 0});
          } else if (u != parent[v]) {
            low[v] = std::min(low[v], disc[u]);
          }
        } else {
          stack.pop_back();
          if (!stack.empty()) {
            const NodeId p = stack.back().first;
            low[p] = std::min(low[p], low[v]);
            if (low[v] > disc[p]) bridges.push_back(make_edge(p, v));
            if (p != root && low[v] >= disc[p]) articulation[p] = true;
          }
        }
      }
      if (root_children > 1) articulation[root] = true;
    }
  }
};

// Unit-capacity max flow (Edmonds–Karp) between s and t over g's edges.
std::size_t unit_max_flow(const Topology& g, NodeId s, NodeId t) {
  const std::size_t n = g.num_nodes();
  // Residual capacities; each undirected link is 1 in both directions.
  Matrix<int> residual = Matrix<int>::square(n, 0);
  for (const Edge& e : g.edges()) {
    residual(e.u, e.v) = 1;
    residual(e.v, e.u) = 1;
  }
  std::size_t flow = 0;
  while (true) {
    // BFS for an augmenting path.
    std::vector<NodeId> pred(n, n);
    std::queue<NodeId> q;
    q.push(s);
    pred[s] = s;
    while (!q.empty() && pred[t] == n) {
      const NodeId v = q.front();
      q.pop();
      for (NodeId u = 0; u < n; ++u) {
        if (pred[u] == n && residual(v, u) > 0) {
          pred[u] = v;
          q.push(u);
        }
      }
    }
    if (pred[t] == n) break;
    for (NodeId v = t; v != s; v = pred[v]) {
      --residual(pred[v], v);
      ++residual(v, pred[v]);
    }
    ++flow;
  }
  return flow;
}

}  // namespace

std::vector<Edge> find_bridges(const Topology& g) {
  LowLink ll(g);
  std::sort(ll.bridges.begin(), ll.bridges.end());
  return ll.bridges;
}

std::vector<NodeId> find_articulation_points(const Topology& g) {
  LowLink ll(g);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (ll.articulation[v]) out.push_back(v);
  }
  return out;
}

std::size_t edge_connectivity(const Topology& g) {
  const std::size_t n = g.num_nodes();
  if (n < 2 || !is_connected(g)) return 0;
  // Menger: global edge connectivity = min over t != s of maxflow(s, t).
  std::size_t best = g.num_edges();
  for (NodeId t = 1; t < n; ++t) {
    best = std::min(best, unit_max_flow(g, 0, t));
    if (best == 1) break;  // cannot get lower for a connected graph
  }
  return best;
}

bool survives_failures(const Topology& g, const std::vector<Edge>& fail) {
  Topology damaged = g;
  for (const Edge& e : fail) damaged.remove_edge(e.u, e.v);
  return is_connected(damaged);
}

ResilienceReport analyze_resilience(const Topology& g) {
  ResilienceReport report;
  const auto bridges = find_bridges(g);
  report.bridges = bridges.size();
  report.articulation_points = find_articulation_points(g).size();
  report.edge_connectivity = edge_connectivity(g);
  report.single_link_failure_disconnect_rate =
      g.num_edges() == 0 ? 0.0
                         : static_cast<double>(bridges.size()) /
                               static_cast<double>(g.num_edges());
  return report;
}

}  // namespace cold
