#include "graph/topology.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace cold {

namespace {
// Consulted only at construction; a plain atomic keeps concurrent test
// fixtures and the CLI safe without ordering requirements.
std::atomic<std::size_t> g_dense_auto_threshold{512};
}  // namespace

std::size_t Topology::dense_auto_threshold() {
  return g_dense_auto_threshold.load(std::memory_order_relaxed);
}

void Topology::set_dense_auto_threshold(std::size_t n) {
  g_dense_auto_threshold.store(n, std::memory_order_relaxed);
}

Edge make_edge(NodeId a, NodeId b) {
  if (a == b) throw std::invalid_argument("make_edge: self-loop");
  return a < b ? Edge{a, b} : Edge{b, a};
}

std::uint64_t Topology::edge_key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  // SplitMix64 finalizer over the packed canonical pair. Stateless (no key
  // table), so fingerprints agree across Topology instances, runs and
  // processes — a requirement for cross-evaluator cache reuse.
  std::uint64_t z = (static_cast<std::uint64_t>(a) << 32) ^
                    static_cast<std::uint64_t>(b);
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Topology::Topology(std::size_t n) : n_(n), degree_(n, 0), nbrs_(n) {
  if (n <= dense_auto_threshold()) materialize_dense_view();
}

Topology Topology::complete(std::size_t n) {
  Topology t(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) t.add_edge(i, j);
  }
  return t;
}

Topology Topology::from_edges(std::size_t n, const std::vector<Edge>& edges) {
  Topology t(n);
  for (const Edge& e : edges) {
    if (e.u >= n || e.v >= n) {
      throw std::invalid_argument("Topology::from_edges: node out of range");
    }
    t.add_edge(e.u, e.v);
  }
  return t;
}

Topology Topology::star(std::size_t n, NodeId centre) {
  if (centre >= n) throw std::invalid_argument("Topology::star: bad centre");
  Topology t(n);
  for (NodeId i = 0; i < n; ++i) {
    if (i != centre) t.add_edge(centre, i);
  }
  return t;
}

bool Topology::has_edge_sparse(NodeId a, NodeId b) const {
  const std::vector<NodeId>& na = nbrs_[a];
  const std::vector<NodeId>& nb = nbrs_[b];
  // Search the shorter list; both are sorted.
  if (na.size() <= nb.size()) {
    return std::binary_search(na.begin(), na.end(), b);
  }
  return std::binary_search(nb.begin(), nb.end(), a);
}

const std::uint8_t* Topology::dense_row(NodeId v) const {
  if (!dense_view_) {
    throw std::logic_error(
        "Topology::dense_row: no dense view (n exceeds the auto threshold "
        "and materialize_dense_view() was not called); iterate neighbors() "
        "instead");
  }
  return dense_.data() + v * n_;
}

void Topology::materialize_dense_view() {
  if (dense_view_) return;
  dense_.assign(n_ * n_, 0);
  for (NodeId v = 0; v < n_; ++v) {
    for (const NodeId u : nbrs_[v]) dense_[v * n_ + u] = 1;
  }
  dense_view_ = true;
}

void Topology::drop_dense_view() {
  dense_view_ = false;
  dense_.clear();
  dense_.shrink_to_fit();
}

bool Topology::add_edge(NodeId a, NodeId b) {
  if (a >= n_ || b >= n_) throw std::out_of_range("add_edge: node out of range");
  if (a == b) throw std::invalid_argument("add_edge: self-loop");
  auto& na = nbrs_[a];
  const auto pos = std::lower_bound(na.begin(), na.end(), b);
  if (pos != na.end() && *pos == b) return false;
  na.insert(pos, b);
  auto& nb = nbrs_[b];
  nb.insert(std::lower_bound(nb.begin(), nb.end(), a), a);
  if (dense_view_) {
    dense_[a * n_ + b] = 1;
    dense_[b * n_ + a] = 1;
  }
  ++degree_[a];
  ++degree_[b];
  ++num_edges_;
  fingerprint_ ^= edge_key(a, b);
  return true;
}

bool Topology::remove_edge(NodeId a, NodeId b) {
  if (a >= n_ || b >= n_) {
    throw std::out_of_range("remove_edge: node out of range");
  }
  if (a == b) return false;
  auto& na = nbrs_[a];
  const auto pos = std::lower_bound(na.begin(), na.end(), b);
  if (pos == na.end() || *pos != b) return false;
  na.erase(pos);
  auto& nb = nbrs_[b];
  nb.erase(std::lower_bound(nb.begin(), nb.end(), a));
  if (dense_view_) {
    dense_[a * n_ + b] = 0;
    dense_[b * n_ + a] = 0;
  }
  --degree_[a];
  --degree_[b];
  --num_edges_;
  fingerprint_ ^= edge_key(a, b);
  return true;
}

void Topology::set_edge(NodeId a, NodeId b, bool present) {
  if (present) {
    add_edge(a, b);
  } else {
    remove_edge(a, b);
  }
}

std::vector<Edge> Topology::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  for (NodeId i = 0; i < n_; ++i) {
    for (NodeId j : nbrs_[i]) {
      if (j > i) out.push_back(Edge{i, j});
    }
  }
  return out;
}

std::size_t Topology::num_core_nodes() const {
  std::size_t count = 0;
  for (int d : degree_) {
    if (d > 1) ++count;
  }
  return count;
}

std::size_t Topology::num_leaf_nodes() const {
  std::size_t count = 0;
  for (int d : degree_) {
    if (d == 1) ++count;
  }
  return count;
}

void Topology::clear_edges() {
  std::fill(dense_.begin(), dense_.end(), 0);
  std::fill(degree_.begin(), degree_.end(), 0);
  for (auto& list : nbrs_) list.clear();
  num_edges_ = 0;
  fingerprint_ = 0;
}

std::size_t Topology::edge_difference(const Topology& a, const Topology& b) {
  if (a.n_ != b.n_) {
    throw std::invalid_argument("edge_difference: size mismatch");
  }
  // Sorted-list symmetric difference per node; each unordered pair is seen
  // from both endpoints, so halve. O(n + m_a + m_b), backend-independent.
  std::size_t directed_diff = 0;
  for (NodeId u = 0; u < a.n_; ++u) {
    const std::vector<NodeId>& la = a.nbrs_[u];
    const std::vector<NodeId>& lb = b.nbrs_[u];
    std::size_t i = 0, j = 0;
    while (i < la.size() && j < lb.size()) {
      if (la[i] == lb[j]) {
        ++i;
        ++j;
      } else if (la[i] < lb[j]) {
        ++directed_diff;
        ++i;
      } else {
        ++directed_diff;
        ++j;
      }
    }
    directed_diff += (la.size() - i) + (lb.size() - j);
  }
  return directed_diff / 2;
}

bool Topology::diff_edges(const Topology& from, const Topology& to,
                          std::vector<Edge>& added, std::vector<Edge>& removed,
                          std::size_t max_edges) {
  if (from.n_ != to.n_) {
    throw std::invalid_argument("diff_edges: size mismatch");
  }
  added.clear();
  removed.clear();
  for (NodeId u = 0; u < from.n_; ++u) {
    const std::vector<NodeId>& a = from.nbrs_[u];
    const std::vector<NodeId>& b = to.nbrs_[u];
    std::size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
      const NodeId av = i < a.size() ? a[i] : from.n_;
      const NodeId bv = j < b.size() ? b[j] : to.n_;
      if (av == bv) {
        ++i;
        ++j;
        continue;
      }
      if (av < bv) {
        if (u < av) {  // each unordered pair reported once, from its low end
          removed.push_back({u, av});
          if (added.size() + removed.size() > max_edges) return false;
        }
        ++i;
      } else {
        if (u < bv) {
          added.push_back({u, bv});
          if (added.size() + removed.size() > max_edges) return false;
        }
        ++j;
      }
    }
  }
  return true;
}

}  // namespace cold
