#include "telemetry/report_diff.h"

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>

#include "io/json_value.h"

namespace cold {

namespace {

std::string num(double x) {
  std::ostringstream os;
  os.precision(17);
  os << x;
  return os.str();
}

/// Collects divergences for one bucket (logical or perf) under a path
/// prefix, so per-element comparisons read like field assignments.
class Differ {
 public:
  explicit Differ(std::vector<ReportDiffEntry>& out) : out_(&out) {}

  void field(const std::string& path, const std::string& a,
             const std::string& b) {
    if (a != b) out_->push_back({path, a, b});
  }
  void field(const std::string& path, double a, double b) {
    // Compare the exact renderings: NaN != NaN under operator!= would
    // report forever-diffs, and -0.0 == 0.0 would hide a bit difference.
    field(path, num(a), num(b));
  }
  // size_t and uint64_t are the same type on LP64, so one overload
  // covers every counter field.
  void field(const std::string& path, std::uint64_t a, std::uint64_t b) {
    if (a != b) {
      out_->push_back({path, std::to_string(a), std::to_string(b)});
    }
  }
  void field(const std::string& path, bool a, bool b) {
    if (a != b) {
      out_->push_back({path, a ? "true" : "false", b ? "true" : "false"});
    }
  }

 private:
  std::vector<ReportDiffEntry>* out_;
};

std::string idx(const std::string& array, std::size_t i) {
  return array + "[" + std::to_string(i) + "]";
}

/// Diffs two arrays element-wise; a length mismatch yields one entry plus
/// "<absent>" markers for the tail of the longer side.
template <typename T, typename Fn>
void diff_array(Differ& d, std::vector<ReportDiffEntry>& bucket,
                const std::string& name, const std::vector<T>& a,
                const std::vector<T>& b, Fn&& diff_element) {
  d.field(name + ".length", a.size(), b.size());
  const std::size_t common = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < common; ++i) {
    diff_element(idx(name, i), a[i], b[i]);
  }
  const std::vector<T>& longer = a.size() > b.size() ? a : b;
  for (std::size_t i = common; i < longer.size(); ++i) {
    if (a.size() > b.size()) {
      bucket.push_back({idx(name, i), "<present>", "<absent>"});
    } else {
      bucket.push_back({idx(name, i), "<absent>", "<present>"});
    }
  }
}

}  // namespace

ReportDiff diff_run_reports(const RunReport& a, const RunReport& b) {
  ReportDiff out;
  Differ logical(out.logical);
  Differ perf(out.perf);

  logical.field("run.seed", a.seed, b.seed);
  logical.field("run.num_pops", a.num_pops, b.num_pops);
  logical.field("run.traffic_topk", a.traffic_topk, b.traffic_topk);
  logical.field("run.traffic_kept_mass", a.traffic_kept_mass,
                b.traffic_kept_mass);
  logical.field("result.best_cost", a.best_cost, b.best_cost);
  logical.field("result.evaluations", a.evaluations, b.evaluations);
  logical.field("result.stopped_early", a.stopped_early, b.stopped_early);
  logical.field("result.stop_reason", to_string(a.stop_reason),
                to_string(b.stop_reason));

  perf.field("result.wall_ns", a.wall_ns, b.wall_ns);
  perf.field("result.cache.hits", a.cache_hits, b.cache_hits);
  perf.field("result.cache.misses", a.cache_misses, b.cache_misses);
  perf.field("result.cache.inserts", a.cache_inserts, b.cache_inserts);
  perf.field("result.cache.evictions", a.cache_evictions, b.cache_evictions);
  perf.field("result.dedup_skipped", a.dedup_skipped, b.dedup_skipped);
  perf.field("result.dsssp.hits", a.dsssp_hits, b.dsssp_hits);
  perf.field("result.dsssp.fallbacks", a.dsssp_fallbacks, b.dsssp_fallbacks);
  perf.field("result.dsssp.vertices_resettled", a.vertices_resettled,
             b.vertices_resettled);

  // The resilience block is perf data end to end: a resilient-vs-plain pair
  // at weight 0 must stay logically equal (identical costs), so even the
  // block's presence only counts as perf drift.
  perf.field("result.resilience.present", a.has_resilience, b.has_resilience);
  if (a.has_resilience && b.has_resilience) {
    const ResilienceTelemetry& x = a.resilience;
    const ResilienceTelemetry& y = b.resilience;
    perf.field("result.resilience.weight", x.weight, y.weight);
    perf.field("result.resilience.scenarios", x.scenarios, y.scenarios);
    perf.field("result.resilience.disconnecting", x.disconnecting,
               y.disconnecting);
    perf.field("result.resilience.disconnected_fraction",
               x.disconnected_fraction, y.disconnected_fraction);
    perf.field("result.resilience.mean_stretch", x.mean_stretch,
               y.mean_stretch);
    perf.field("result.resilience.worst_stretch", x.worst_stretch,
               y.worst_stretch);
    perf.field("result.resilience.worst_utilization", x.worst_utilization,
               y.worst_utilization);
    perf.field("result.resilience.penalty", x.penalty, y.penalty);
    perf.field("result.resilience.sweeps", x.sweeps, y.sweeps);
    perf.field("result.resilience.delta_repairs", x.delta_repairs,
               y.delta_repairs);
    perf.field("result.resilience.fresh_trees", x.fresh_trees, y.fresh_trees);
    perf.field("result.resilience.vertices_resettled", x.vertices_resettled,
               y.vertices_resettled);
  }

  // Same rule for the multipath block: an ECMP-vs-single-path pair on a
  // unique-shortest-path topology must stay logically equal (identical
  // costs and loads), so its presence and counters are all perf drift.
  perf.field("result.multipath.present", a.has_multipath, b.has_multipath);
  if (a.has_multipath && b.has_multipath) {
    const MultipathTelemetry& x = a.multipath;
    const MultipathTelemetry& y = b.multipath;
    perf.field("result.multipath.mode", x.mode, y.mode);
    perf.field("result.multipath.max_util_weight", x.max_util_weight,
               y.max_util_weight);
    perf.field("result.multipath.oversub_weight", x.oversub_weight,
               y.oversub_weight);
    perf.field("result.multipath.reference_capacity", x.reference_capacity,
               y.reference_capacity);
    perf.field("result.multipath.max_utilization", x.max_utilization,
               y.max_utilization);
    perf.field("result.multipath.oversubscription", x.oversubscription,
               y.oversubscription);
    perf.field("result.multipath.sweeps", x.sweeps, y.sweeps);
    perf.field("result.multipath.branch_points", x.branch_points,
               y.branch_points);
    perf.field("result.multipath.dag_edges", x.dag_edges, y.dag_edges);
  }

  diff_array(logical, out.logical, "phases", a.phases, b.phases,
             [&](const std::string& p, const PhaseStats& x,
                 const PhaseStats& y) {
               logical.field(p + ".name", to_string(x.phase),
                             to_string(y.phase));
               logical.field(p + ".evaluations", x.evaluations,
                             y.evaluations);
               perf.field(p + ".wall_ns", x.wall_ns, y.wall_ns);
               perf.field(p + ".cache_hits", x.cache_hits, y.cache_hits);
               perf.field(p + ".cache_misses", x.cache_misses,
                          y.cache_misses);
               perf.field(p + ".cache_inserts", x.cache_inserts,
                          y.cache_inserts);
               perf.field(p + ".cache_evictions", x.cache_evictions,
                          y.cache_evictions);
               perf.field(p + ".dedup_skipped", x.dedup_skipped,
                          y.dedup_skipped);
               perf.field(p + ".dsssp_hits", x.dsssp_hits, y.dsssp_hits);
               perf.field(p + ".dsssp_fallbacks", x.dsssp_fallbacks,
                          y.dsssp_fallbacks);
               perf.field(p + ".vertices_resettled", x.vertices_resettled,
                          y.vertices_resettled);
             });

  diff_array(logical, out.logical, "heuristics", a.heuristics, b.heuristics,
             [&](const std::string& p, const HeuristicDone& x,
                 const HeuristicDone& y) {
               logical.field(p + ".name", x.name, y.name);
               logical.field(p + ".cost", x.cost, y.cost);
               perf.field(p + ".wall_ns", x.wall_ns, y.wall_ns);
             });

  diff_array(logical, out.logical, "generations", a.generations,
             b.generations,
             [&](const std::string& p, const GenerationEnd& x,
                 const GenerationEnd& y) {
               logical.field(p + ".gen", x.gen, y.gen);
               logical.field(p + ".best_cost", x.best_cost, y.best_cost);
               logical.field(p + ".mean_cost", x.mean_cost, y.mean_cost);
               logical.field(p + ".repairs", x.repairs, y.repairs);
               logical.field(p + ".links_repaired", x.links_repaired,
                             y.links_repaired);
               logical.field(p + ".evaluations", x.evaluations,
                             y.evaluations);
               perf.field(p + ".dedup_skipped", x.dedup_skipped,
                          y.dedup_skipped);
               perf.field(p + ".wall_ns", x.wall_ns, y.wall_ns);
             });

  diff_array(logical, out.logical, "ensemble_runs", a.ensemble_runs,
             b.ensemble_runs,
             [&](const std::string& p, const EnsembleRunDone& x,
                 const EnsembleRunDone& y) {
               logical.field(p + ".index", x.index, y.index);
               logical.field(p + ".seed", x.seed, y.seed);
               logical.field(p + ".best_cost", x.best_cost, y.best_cost);
               perf.field(p + ".wall_ns", x.wall_ns, y.wall_ns);
             });

  // Streamed aggregates are logical content: folded in seed order on the
  // coordinating thread, they are bit-identical for any thread count.
  logical.field("ensemble_aggregates.present", a.has_ensemble_aggregates,
                b.has_ensemble_aggregates);
  if (a.has_ensemble_aggregates && b.has_ensemble_aggregates) {
    const auto diff_agg = [&](const std::string& p, const MetricAggregate& x,
                              const MetricAggregate& y) {
      logical.field(p + ".count", x.count, y.count);
      logical.field(p + ".mean", x.mean, y.mean);
      logical.field(p + ".m2", x.m2, y.m2);
      logical.field(p + ".min", x.min, y.min);
      logical.field(p + ".max", x.max, y.max);
    };
    const EnsembleAggregates& x = a.ensemble_aggregates;
    const EnsembleAggregates& y = b.ensemble_aggregates;
    logical.field("ensemble_aggregates.runs", x.runs, y.runs);
    logical.field("ensemble_aggregates.streamed", x.streamed, y.streamed);
    diff_agg("ensemble_aggregates.avg_degree", x.avg_degree, y.avg_degree);
    diff_agg("ensemble_aggregates.diameter", x.diameter, y.diameter);
    diff_agg("ensemble_aggregates.clustering", x.clustering, y.clustering);
    diff_agg("ensemble_aggregates.degree_cv", x.degree_cv, y.degree_cv);
    diff_agg("ensemble_aggregates.hubs", x.hubs, y.hubs);
    diff_agg("ensemble_aggregates.assortativity", x.assortativity,
             y.assortativity);
    diff_agg("ensemble_aggregates.best_cost", x.best_cost, y.best_cost);
  }

  // The reservoir sample is logical too: Algorithm R's choices depend only
  // on (base_seed, fold order).
  logical.field("ensemble_exemplars.present", a.has_ensemble_exemplars,
                b.has_ensemble_exemplars);
  if (a.has_ensemble_exemplars && b.has_ensemble_exemplars) {
    logical.field("ensemble_exemplars.reservoir",
                  a.ensemble_exemplars.reservoir,
                  b.ensemble_exemplars.reservoir);
    diff_array(logical, out.logical, "ensemble_exemplars.exemplars",
               a.ensemble_exemplars.exemplars, b.ensemble_exemplars.exemplars,
               [&](const std::string& p, const EnsembleExemplar& x,
                   const EnsembleExemplar& y) {
                 logical.field(p + ".index", x.index, y.index);
                 logical.field(p + ".seed", x.seed, y.seed);
                 logical.field(p + ".best_cost", x.best_cost, y.best_cost);
                 logical.field(p + ".num_pops", x.num_pops, y.num_pops);
                 logical.field(p + ".num_links", x.num_links, y.num_links);
               });
  }

  return out;
}

void write_report_diff_text(std::ostream& os, const ReportDiff& diff) {
  if (diff.logical.empty() && diff.perf.empty()) {
    os << "reports identical\n";
    return;
  }
  for (const ReportDiffEntry& e : diff.logical) {
    os << "LOGICAL " << e.path << ": " << e.a << " != " << e.b << "\n";
  }
  for (const ReportDiffEntry& e : diff.perf) {
    os << "perf    " << e.path << ": " << e.a << " != " << e.b << "\n";
  }
  os << (diff.logical.empty() ? "logically equal" : "LOGICAL DIVERGENCE")
     << " (" << diff.logical.size() << " logical, " << diff.perf.size()
     << " perf)\n";
}

namespace {

JsonArray entries_to_json(const std::vector<ReportDiffEntry>& entries) {
  JsonArray arr;
  for (const ReportDiffEntry& e : entries) {
    JsonObject obj;
    obj["path"] = e.path;
    obj["a"] = e.a;
    obj["b"] = e.b;
    arr.push_back(std::move(obj));
  }
  return arr;
}

}  // namespace

void write_report_diff_json(std::ostream& os, const ReportDiff& diff) {
  JsonObject root;
  root["schema"] = "cold-report-diff";
  root["version"] = 1;
  root["logically_equal"] = diff.logically_equal();
  root["logical"] = entries_to_json(diff.logical);
  root["perf"] = entries_to_json(diff.perf);
  write_json(os, JsonValue{std::move(root)});
  os << "\n";
}

}  // namespace cold
