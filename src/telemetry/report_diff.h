// Structural comparison of two run reports (telemetry/report.h) for CI.
//
// The nightly workflow runs the same synthesis under different engine
// configurations ({--dsssp on,off}, thread counts, cache modes) and diffs
// the reports: the *logical* content — costs, trajectories, evaluation
// counts, stop reasons — must be bit-identical (the engine's exactness
// contract), while *performance* data (wall-clock, cache/dedup/dsssp
// counters) legitimately varies. diff_run_reports() therefore buckets every
// divergence into `logical` (a real regression: exit 1 in the CLI) or
// `perf` (informational only).
//
// Field paths use a compact dotted notation, e.g. "result.best_cost",
// "phases[2].evaluations", "generations[17].best_cost". Doubles are
// rendered round-trip-exact so a diff of "same-looking" values cannot
// hide a bit-level divergence.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/report.h"

namespace cold {

/// One diverging field: its path and both rendered values (`a` from the
/// first report, `b` from the second).
struct ReportDiffEntry {
  std::string path;
  std::string a;
  std::string b;
};

struct ReportDiff {
  std::vector<ReportDiffEntry> logical;  ///< timing-free divergences
  std::vector<ReportDiffEntry> perf;     ///< performance-data divergences

  /// True when the logical run content matches (perf may still differ).
  bool logically_equal() const { return logical.empty(); }
};

/// Compares two reports field by field. Array length mismatches produce one
/// entry for the length plus entries for the missing tail elements'
/// positions (rendered as "<absent>").
ReportDiff diff_run_reports(const RunReport& a, const RunReport& b);

/// Human-readable rendering: one line per divergence, logical first.
void write_report_diff_text(std::ostream& os, const ReportDiff& diff);

/// Machine-readable rendering:
///   {"schema": "cold-report-diff", "version": 1,
///    "logically_equal": bool,
///    "logical": [{"path": str, "a": str, "b": str}, ...],
///    "perf": [...]}
void write_report_diff_json(std::ostream& os, const ReportDiff& diff);

}  // namespace cold
