#include "telemetry/sinks.h"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace cold {

void TraceSink::on_run_start(const RunStart& e) { events_.push_back({e}); }
void TraceSink::on_phase_start(Phase phase) { events_.push_back({phase}); }
void TraceSink::on_phase_end(const PhaseStats& e) { events_.push_back({e}); }
void TraceSink::on_heuristic_done(const HeuristicDone& e) {
  events_.push_back({e});
}
void TraceSink::on_generation_end(const GenerationEnd& e) {
  events_.push_back({e});
}
void TraceSink::on_ensemble_run_done(const EnsembleRunDone& e) {
  events_.push_back({e});
}
void TraceSink::on_run_end(const RunSummary& e) { events_.push_back({e}); }

namespace {

/// Round-trip-exact, locale-independent double rendering so canonical
/// traces compare byte-for-byte.
std::string num(double x) {
  std::ostringstream os;
  os.precision(17);
  os << x;
  return os.str();
}

// Cache and dedup counters are performance data like wall_ns: their values
// depend on the engine configuration (and, for private caches, the thread
// partition), so they ride behind the same `timing` switch to keep
// timing-free output invariant across engine configs.
struct CanonicalPrinter {
  std::ostream& os;
  bool timing;

  void operator()(const RunStart& e) const {
    os << "run_start seed=" << e.seed << " pops=" << e.num_pops << "\n";
  }
  void operator()(const Phase& phase) const {
    os << "phase_start " << to_string(phase) << "\n";
  }
  void operator()(const PhaseStats& e) const {
    os << "phase_end " << to_string(e.phase) << " evals=" << e.evaluations;
    if (timing) {
      os << " cache_hits=" << e.cache_hits
         << " cache_misses=" << e.cache_misses
         << " cache_inserts=" << e.cache_inserts
         << " cache_evictions=" << e.cache_evictions
         << " dedup_skipped=" << e.dedup_skipped
         << " dsssp_hits=" << e.dsssp_hits
         << " dsssp_fallbacks=" << e.dsssp_fallbacks
         << " vertices_resettled=" << e.vertices_resettled
         << " wall_ns=" << e.wall_ns;
    }
    os << "\n";
  }
  void operator()(const HeuristicDone& e) const {
    os << "heuristic name=\"" << e.name << "\" cost=" << num(e.cost);
    if (timing) os << " wall_ns=" << e.wall_ns;
    os << "\n";
  }
  void operator()(const GenerationEnd& e) const {
    os << "generation gen=" << e.gen << " best=" << num(e.best_cost)
       << " mean=" << num(e.mean_cost) << " repairs=" << e.repairs
       << " links_repaired=" << e.links_repaired
       << " evals=" << e.evaluations;
    if (timing) {
      os << " dedup_skipped=" << e.dedup_skipped << " wall_ns=" << e.wall_ns;
    }
    os << "\n";
  }
  void operator()(const EnsembleRunDone& e) const {
    os << "ensemble_run index=" << e.index << " seed=" << e.seed
       << " best=" << num(e.best_cost);
    if (timing) os << " wall_ns=" << e.wall_ns;
    os << "\n";
  }
  void operator()(const RunSummary& e) const {
    os << "run_end best=" << num(e.best_cost) << " evals=" << e.evaluations
       << " stopped_early=" << (e.stopped_early ? 1 : 0)
       << " stop_reason=" << to_string(e.stop_reason);
    if (timing) {
      os << " cache_hits=" << e.cache_hits
         << " cache_misses=" << e.cache_misses
         << " cache_inserts=" << e.cache_inserts
         << " cache_evictions=" << e.cache_evictions
         << " dedup_skipped=" << e.dedup_skipped
         << " dsssp_hits=" << e.dsssp_hits
         << " dsssp_fallbacks=" << e.dsssp_fallbacks
         << " vertices_resettled=" << e.vertices_resettled
         << " wall_ns=" << e.wall_ns;
    }
    os << "\n";
  }
};

double ms(std::uint64_t wall_ns) {
  return static_cast<double>(wall_ns) / 1e6;
}

}  // namespace

std::string TraceSink::canonical(bool include_timing) const {
  std::ostringstream os;
  const CanonicalPrinter printer{os, include_timing};
  for (const TraceEvent& e : events_) std::visit(printer, e.v);
  return os.str();
}

void ProgressSink::on_run_start(const RunStart& e) {
  os_ << "[cold] run seed=" << e.seed << " pops=" << e.num_pops << "\n";
}

void ProgressSink::on_phase_start(Phase phase) {
  os_ << "[cold] " << to_string(phase) << "...\n";
}

void ProgressSink::on_phase_end(const PhaseStats& e) {
  os_ << "[cold] " << to_string(e.phase) << " done in " << std::fixed
      << std::setprecision(1) << ms(e.wall_ns) << " ms";
  os_.unsetf(std::ios::fixed);
  if (e.evaluations > 0) os_ << " (" << e.evaluations << " evaluations)";
  if (e.cache_hits + e.cache_misses > 0) {
    os_ << ", cache " << e.cache_hits << "/"
        << (e.cache_hits + e.cache_misses) << " hits";
  }
  if (e.dedup_skipped > 0) os_ << ", dedup skipped " << e.dedup_skipped;
  if (e.dsssp_hits + e.dsssp_fallbacks > 0) {
    os_ << ", dsssp " << e.dsssp_hits << "/"
        << (e.dsssp_hits + e.dsssp_fallbacks) << " delta";
  }
  os_ << "\n";
}

void ProgressSink::on_heuristic_done(const HeuristicDone& e) {
  os_ << "[cold]   heuristic " << e.name << ": cost " << e.cost << " ("
      << std::fixed << std::setprecision(1) << ms(e.wall_ns) << " ms)\n";
  os_.unsetf(std::ios::fixed);
}

void ProgressSink::on_generation_end(const GenerationEnd& e) {
  if (e.gen % stride_ != 0) return;
  os_ << "[cold]   gen " << e.gen << ": best " << e.best_cost << ", mean "
      << e.mean_cost << ", " << e.evaluations << " evals\n";
}

void ProgressSink::on_ensemble_run_done(const EnsembleRunDone& e) {
  os_ << "[cold]   run " << e.index << " (seed " << e.seed << "): best "
      << e.best_cost << "\n";
}

void ProgressSink::on_run_end(const RunSummary& e) {
  os_ << "[cold] done: best " << e.best_cost << ", " << e.evaluations
      << " evaluations, " << std::fixed << std::setprecision(1)
      << ms(e.wall_ns) << " ms";
  os_.unsetf(std::ios::fixed);
  if (e.cache_hits + e.cache_misses > 0) {
    os_ << ", cache " << e.cache_hits << "/"
        << (e.cache_hits + e.cache_misses) << " hits";
  }
  if (e.dedup_skipped > 0) os_ << ", dedup skipped " << e.dedup_skipped;
  if (e.dsssp_hits + e.dsssp_fallbacks > 0) {
    os_ << ", dsssp " << e.dsssp_hits << "/"
        << (e.dsssp_hits + e.dsssp_fallbacks) << " delta";
  }
  if (e.stopped_early) {
    os_ << " — stopped early (" << to_string(e.stop_reason) << ")";
  }
  os_ << "\n";
  if (e.traffic_kept_mass < 1.0) {
    os_ << "[cold]   traffic top-k kept " << std::fixed
        << std::setprecision(3) << (e.traffic_kept_mass * 100.0)
        << "% of demand mass\n";
    os_.unsetf(std::ios::fixed);
  }
  if (e.has_resilience) {
    const ResilienceTelemetry& r = e.resilience;
    os_ << "[cold]   resilience: penalty " << r.penalty << " over "
        << r.scenarios << " scenarios (" << r.disconnecting
        << " disconnecting), sweeps " << r.sweeps << ", delta repairs "
        << r.delta_repairs << "/" << (r.delta_repairs + r.fresh_trees)
        << "\n";
  }
}

}  // namespace cold
