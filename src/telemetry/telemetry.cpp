#include "telemetry/telemetry.h"

#include <stdexcept>

namespace cold {

std::string to_string(Phase phase) {
  switch (phase) {
    case Phase::kContext:
      return "context";
    case Phase::kHeuristics:
      return "heuristics";
    case Phase::kGa:
      return "ga";
    case Phase::kAssembly:
      return "assembly";
    case Phase::kEnsemble:
      return "ensemble";
  }
  throw std::invalid_argument("unknown Phase");
}

std::string to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kRequested:
      return "requested";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kEvalBudget:
      return "eval_budget";
  }
  throw std::invalid_argument("unknown StopReason");
}

StopCondition StopCondition::wall_clock(double seconds) {
  StopCondition c;
  c.max_seconds = seconds;
  return c;
}

StopCondition StopCondition::eval_budget(std::size_t evaluations) {
  StopCondition c;
  c.max_evaluations = evaluations;
  return c;
}

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void StopCondition::arm() {
  if (max_seconds <= 0.0) return;
  std::int64_t expected = 0;
  const auto deadline =
      now_ns() + static_cast<std::int64_t>(max_seconds * 1e9);
  // First caller wins; one condition can span several entry points.
  deadline_ns_.compare_exchange_strong(expected, deadline,
                                       std::memory_order_relaxed);
}

StopReason StopCondition::reason() const {
  if (requested_.load(std::memory_order_relaxed)) {
    return StopReason::kRequested;
  }
  const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != 0 && now_ns() >= deadline) return StopReason::kDeadline;
  if (max_evaluations > 0 &&
      evaluations_.load(std::memory_order_relaxed) >= max_evaluations) {
    return StopReason::kEvalBudget;
  }
  return StopReason::kNone;
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

PhaseTimer::PhaseTimer(RunObserver* observer, Phase phase,
                       std::function<std::size_t()> eval_counter,
                       std::function<EngineCounters()> engine_counter)
    : observer_(observer),
      phase_(phase),
      eval_counter_(std::move(eval_counter)),
      engine_counter_(std::move(engine_counter)) {
  if (observer_ == nullptr) return;
  if (eval_counter_) evals_at_start_ = eval_counter_();
  if (engine_counter_) engine_at_start_ = engine_counter_();
  start_ = std::chrono::steady_clock::now();
  observer_->on_phase_start(phase_);
}

PhaseTimer::~PhaseTimer() {
  if (observer_ == nullptr) return;
  PhaseStats stats;
  stats.phase = phase_;
  stats.wall_ns = elapsed_ns(start_);
  if (eval_counter_) stats.evaluations = eval_counter_() - evals_at_start_;
  if (engine_counter_) {
    const EngineCounters now = engine_counter_();
    stats.cache_hits = now.cache_hits - engine_at_start_.cache_hits;
    stats.cache_misses = now.cache_misses - engine_at_start_.cache_misses;
    stats.cache_inserts = now.cache_inserts - engine_at_start_.cache_inserts;
    stats.cache_evictions =
        now.cache_evictions - engine_at_start_.cache_evictions;
    stats.dedup_skipped = now.dedup_skipped - engine_at_start_.dedup_skipped;
    stats.dsssp_hits = now.dsssp_hits - engine_at_start_.dsssp_hits;
    stats.dsssp_fallbacks =
        now.dsssp_fallbacks - engine_at_start_.dsssp_fallbacks;
    stats.vertices_resettled =
        now.vertices_resettled - engine_at_start_.vertices_resettled;
  }
  observer_->on_phase_end(stats);
}

}  // namespace cold
