// Structured run reports — one self-describing JSON artifact per synthesis
// run (`cold synth --report run.json`), in the spirit of topology-benchmark
// tooling: everything needed to audit a run without rerunning it (where the
// wall-time went, how the GA converged, what stopped the run).
//
// The schema (fields in [brackets] are performance data — wall-clock plus
// the evaluation engine's cache/dedup counters — and are omitted when a
// report is written with include_timing == false, which makes reports
// byte-identical across thread counts and engine configurations):
//
//   {
//     "schema": "cold-run-report",
//     "version": 9,
//     "run": {"seed": u64, "num_pops": n, "traffic_topk": n,
//             "traffic_kept_mass": x},
//     "result": {"best_cost": x, "evaluations": n,
//                "stopped_early": bool, "stop_reason": str,
//                ["cache": {"hits": n, "misses": n,
//                           "inserts": n, "evictions": n}],
//                ["dedup_skipped": n],
//                ["dsssp": {"hits": n, "fallbacks": n,
//                           "vertices_resettled": n,
//                           "steals": n,
//                           "workers": [{"hits": n, "fallbacks": n,
//                                        "vertices_resettled": n}, ...]}],
//                ["resilience": {"weight": x, "scenarios": n,
//                                "disconnecting": n,
//                                "disconnected_fraction": x,
//                                "mean_stretch": x, "worst_stretch": x,
//                                "worst_utilization": x, "penalty": x,
//                                "sweeps": n, "delta_repairs": n,
//                                "fresh_trees": n,
//                                "vertices_resettled": n}],
//                ["multipath": {"mode": str, "max_util_weight": x,
//                               "oversub_weight": x,
//                               "reference_capacity": x,
//                               "max_utilization": x,
//                               "oversubscription": x, "sweeps": n,
//                               "branch_points": n, "dag_edges": n}],
//                ["wall_ns": n]},
//     "phases": [{"name": str, "evaluations": n,
//                 ["cache_hits": n, "cache_misses": n, "cache_inserts": n,
//                  "cache_evictions": n, "dedup_skipped": n],
//                 ["dsssp_hits": n, "dsssp_fallbacks": n,
//                  "vertices_resettled": n],
//                 ["wall_ns": n]}, ...],
//     "heuristics": [{"name": str, "cost": x, ["wall_ns": n]}, ...],
//     "generations": [{"gen": n, "best_cost": x, "mean_cost": x,
//                      "repairs": n, "links_repaired": n,
//                      "evaluations": n, ["dedup_skipped": n],
//                      ["wall_ns": n]}, ...],
//     "ensemble_runs": [{"index": n, "seed": u64, "best_cost": x,
//                        ["wall_ns": n]}, ...],
//     "ensemble_aggregates": {"runs": n, "streamed": bool,
//                             "<metric>": {"count": n, "mean": x, "m2": x,
//                                          "min": x, "max": x}, ...},
//     "ensemble_exemplars": {"reservoir": n,
//                            "exemplars": [{"index": n, "seed": u64,
//                                           "best_cost": x, "num_pops": n,
//                                           "num_links": n}, ...]}
//   }
//
// Version history: v1 had no "cache" object; v2 added it (emitted
// unconditionally); v3 added per-phase engine-counter deltas and the dedup
// counters, and reclassified all engine counters as performance data (only
// emitted with timing); v4 added the delta-evaluation (dynamic SSSP)
// counters, timing-gated like the rest; v5 added the per-worker split and
// the affinity-scheduler steal count inside the dsssp object ("workers" /
// "steals"), so the affinity effect is directly observable per worker;
// v6 added "ensemble_aggregates" — the streamed Welford moments of every
// ensemble metric (avg_degree, diameter, clustering, degree_cv, hubs,
// assortativity, best_cost). The aggregates are logical content, not
// performance data: they depend only on the folded runs (bit-identical for
// any thread count), so they are emitted even timing-free — they are what
// a streamed ensemble retains instead of per-run results; v7 added
// "run.traffic_topk" (the gravity top-K truncation in effect, 0 = exact)
// and the "ensemble_exemplars" block — the streamed ensemble's
// deterministic reservoir sample (run index, seed, best cost, network
// size per exemplar, sorted by index), present only when a reservoir was
// configured and populated. Both are logical content, emitted even
// timing-free; v8 added "run.traffic_kept_mass" (the demand-mass fraction
// the top-K truncation kept, 1.0 = exact — logical content, always
// emitted) and the "result.resilience" block for resilient-objective runs
// (the winner's survivability aggregates plus the run's sweep counters —
// timing-gated like the other engine counters, since the delta/fresh split
// varies with engine knobs while costs do not); v9 added the
// "result.multipath" block for ECMP/WCMP runs (the winner's utilization
// aggregates plus the run's routing counters — timing-gated for the same
// reason). The parser accepts all nine versions — missing counters/objects
// read back as zero/empty/1.0; the writer always emits v9.
//
// Round-trips through io/json: run_report_from_json(run_report_to_json(r))
// reproduces every field (wall times included when serialized with timing).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace cold {

struct RunReport {
  std::uint64_t seed = 0;
  std::size_t num_pops = 0;
  std::size_t traffic_topk = 0;  ///< gravity top-K, 0 = exact (schema v7)
  double traffic_kept_mass = 1.0;  ///< kept demand-mass fraction (schema v8)

  double best_cost = 0.0;
  std::size_t evaluations = 0;
  std::uint64_t wall_ns = 0;
  bool stopped_early = false;
  StopReason stop_reason = StopReason::kNone;
  std::uint64_t cache_hits = 0;  ///< evaluation-cache counters (schema v2+)
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_inserts = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t dedup_skipped = 0;  ///< GA dedup fan-out total (schema v3)
  std::uint64_t dsssp_hits = 0;   ///< delta-engine counters (schema v4)
  std::uint64_t dsssp_fallbacks = 0;
  std::uint64_t vertices_resettled = 0;
  std::vector<WorkerDeltaStats> worker_dsssp;  ///< per-worker split (v5)
  std::uint64_t ga_steals = 0;  ///< affinity-scheduler steals (v5)
  bool has_resilience = false;  ///< resilience block present (v8)
  ResilienceTelemetry resilience;
  bool has_multipath = false;   ///< multipath block present (v9)
  MultipathTelemetry multipath;

  std::vector<PhaseStats> phases;           ///< in completion order
  std::vector<HeuristicDone> heuristics;    ///< in run order
  std::vector<GenerationEnd> generations;   ///< per GA generation
  std::vector<EnsembleRunDone> ensemble_runs;
  bool has_ensemble_aggregates = false;  ///< aggregates block present (v6)
  EnsembleAggregates ensemble_aggregates;
  bool has_ensemble_exemplars = false;  ///< exemplars block present (v7)
  EnsembleExemplars ensemble_exemplars;
};

/// Serializes a report. With `include_timing == false` every performance
/// field (wall_ns plus the engine's cache/dedup counters) is omitted and
/// the output depends only on the logical run content.
void write_run_report_json(std::ostream& os, const RunReport& report,
                           bool include_timing = true);
std::string run_report_to_json(const RunReport& report,
                               bool include_timing = true);

/// Parses a report written by write_run_report_json. Throws
/// std::runtime_error on malformed or schema-mismatched input.
RunReport run_report_from_json(const std::string& json);

/// Observer that accumulates the full event stream into a RunReport.
/// Attach to any entry point, then write() or read report() when the run
/// returns. A second run on the same sink resets the report first.
class JsonReportSink final : public RunObserver {
 public:
  void on_run_start(const RunStart& e) override;
  void on_phase_end(const PhaseStats& e) override;
  void on_heuristic_done(const HeuristicDone& e) override;
  void on_generation_end(const GenerationEnd& e) override;
  void on_ensemble_run_done(const EnsembleRunDone& e) override;
  void on_ensemble_aggregates(const EnsembleAggregates& e) override;
  void on_ensemble_exemplars(const EnsembleExemplars& e) override;
  void on_run_end(const RunSummary& e) override;

  const RunReport& report() const { return report_; }
  RunReport& report() { return report_; }

  void write(std::ostream& os, bool include_timing = true) const {
    write_run_report_json(os, report_, include_timing);
  }

 private:
  RunReport report_;
};

}  // namespace cold
