// Ready-made RunObserver sinks: an in-memory trace recorder (for tests and
// programmatic consumers) and a human-readable progress printer.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "telemetry/telemetry.h"

namespace cold {

/// One recorded event. PhaseStart carries only the phase; everything else
/// is the event payload verbatim.
struct TraceEvent {
  std::variant<RunStart, Phase /*phase start*/, PhaseStats, HeuristicDone,
               GenerationEnd, EnsembleRunDone, RunSummary>
      v;
};

/// Records every event in arrival order. canonical() renders the stream as
/// one line per event; with `include_timing == false` (the default) all
/// performance fields — wall-clock plus the engine's cache/dedup counters —
/// are omitted, so the output is byte-identical across thread counts,
/// machines and engine configurations — the determinism contract the tests
/// pin.
class TraceSink final : public RunObserver {
 public:
  void on_run_start(const RunStart& e) override;
  void on_phase_start(Phase phase) override;
  void on_phase_end(const PhaseStats& e) override;
  void on_heuristic_done(const HeuristicDone& e) override;
  void on_generation_end(const GenerationEnd& e) override;
  void on_ensemble_run_done(const EnsembleRunDone& e) override;
  void on_run_end(const RunSummary& e) override;

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Count of recorded events of one kind (e.g. GenerationEnd).
  template <typename Event>
  std::size_t count() const {
    std::size_t n = 0;
    for (const TraceEvent& e : events_) {
      if (std::holds_alternative<Event>(e.v)) ++n;
    }
    return n;
  }

  std::string canonical(bool include_timing = false) const;

 private:
  std::vector<TraceEvent> events_;
};

/// Streams one-line progress updates (phases, heuristics, GA generations,
/// ensemble runs) to an ostream — `cold synth --progress` wires this to
/// stderr. Generation lines are throttled to every `generation_stride`-th
/// generation (plus the first); 1 prints all of them.
class ProgressSink final : public RunObserver {
 public:
  explicit ProgressSink(std::ostream& os, std::size_t generation_stride = 1)
      : os_(os), stride_(generation_stride == 0 ? 1 : generation_stride) {}

  void on_run_start(const RunStart& e) override;
  void on_phase_start(Phase phase) override;
  void on_phase_end(const PhaseStats& e) override;
  void on_heuristic_done(const HeuristicDone& e) override;
  void on_generation_end(const GenerationEnd& e) override;
  void on_ensemble_run_done(const EnsembleRunDone& e) override;
  void on_run_end(const RunSummary& e) override;

 private:
  std::ostream& os_;
  std::size_t stride_;
};

}  // namespace cold
