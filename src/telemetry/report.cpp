#include "telemetry/report.h"

#include <ostream>
#include <sstream>
#include <stdexcept>

#include "io/json_value.h"

namespace cold {

namespace {

StopReason stop_reason_from_string(const std::string& s) {
  if (s == "none") return StopReason::kNone;
  if (s == "requested") return StopReason::kRequested;
  if (s == "deadline") return StopReason::kDeadline;
  if (s == "eval_budget") return StopReason::kEvalBudget;
  throw std::runtime_error("run report: unknown stop_reason '" + s + "'");
}

Phase phase_from_string(const std::string& s) {
  if (s == "context") return Phase::kContext;
  if (s == "heuristics") return Phase::kHeuristics;
  if (s == "ga") return Phase::kGa;
  if (s == "assembly") return Phase::kAssembly;
  if (s == "ensemble") return Phase::kEnsemble;
  throw std::runtime_error("run report: unknown phase '" + s + "'");
}

void put_wall(JsonObject& obj, std::uint64_t wall_ns, bool include_timing) {
  if (include_timing) obj["wall_ns"] = static_cast<double>(wall_ns);
}

std::uint64_t get_wall(const JsonValue& obj) {
  return obj.has("wall_ns")
             ? static_cast<std::uint64_t>(obj.field("wall_ns").number())
             : 0;
}

JsonValue aggregate_to_json(const MetricAggregate& agg) {
  JsonObject obj;
  obj["count"] = agg.count;
  obj["mean"] = agg.mean;
  obj["m2"] = agg.m2;
  obj["min"] = agg.min;
  obj["max"] = agg.max;
  return JsonValue{std::move(obj)};
}

MetricAggregate aggregate_from_json(const JsonValue& obj) {
  MetricAggregate agg;
  agg.count = static_cast<std::size_t>(obj.field("count").number());
  agg.mean = obj.field("mean").number();
  agg.m2 = obj.field("m2").number();
  agg.min = obj.field("min").number();
  agg.max = obj.field("max").number();
  return agg;
}

}  // namespace

void write_run_report_json(std::ostream& os, const RunReport& report,
                           bool include_timing) {
  JsonObject root;
  root["schema"] = "cold-run-report";
  // v2 added result.cache; v3 added per-phase/per-generation engine
  // counters and gates all of them (result.cache included) behind
  // include_timing; v4 added the delta-evaluation counters; v5 added the
  // per-worker dsssp split and the affinity steal count; v6 added the
  // streamed ensemble_aggregates block; v7 added run.traffic_topk and the
  // ensemble_exemplars reservoir block; v8 added run.traffic_kept_mass
  // (logical) and the timing-gated result.resilience block; v9 added the
  // timing-gated result.multipath block; see report.h.
  root["version"] = 9;

  JsonObject run;
  run["seed"] = static_cast<double>(report.seed);
  run["num_pops"] = report.num_pops;
  run["traffic_topk"] = report.traffic_topk;
  run["traffic_kept_mass"] = report.traffic_kept_mass;
  root["run"] = std::move(run);

  JsonObject result;
  result["best_cost"] = report.best_cost;
  result["evaluations"] = report.evaluations;
  result["stopped_early"] = report.stopped_early;
  result["stop_reason"] = to_string(report.stop_reason);
  if (include_timing) {
    JsonObject cache;
    cache["hits"] = static_cast<double>(report.cache_hits);
    cache["misses"] = static_cast<double>(report.cache_misses);
    cache["inserts"] = static_cast<double>(report.cache_inserts);
    cache["evictions"] = static_cast<double>(report.cache_evictions);
    result["cache"] = std::move(cache);
    result["dedup_skipped"] = report.dedup_skipped;
    JsonObject dsssp;
    dsssp["hits"] = static_cast<double>(report.dsssp_hits);
    dsssp["fallbacks"] = static_cast<double>(report.dsssp_fallbacks);
    dsssp["vertices_resettled"] =
        static_cast<double>(report.vertices_resettled);
    dsssp["steals"] = static_cast<double>(report.ga_steals);
    JsonArray workers;
    for (const WorkerDeltaStats& w : report.worker_dsssp) {
      JsonObject obj;
      obj["hits"] = static_cast<double>(w.hits);
      obj["fallbacks"] = static_cast<double>(w.fallbacks);
      obj["vertices_resettled"] = static_cast<double>(w.vertices_resettled);
      workers.push_back(std::move(obj));
    }
    dsssp["workers"] = std::move(workers);
    result["dsssp"] = std::move(dsssp);
    if (report.has_resilience) {
      const ResilienceTelemetry& r = report.resilience;
      JsonObject res;
      res["weight"] = r.weight;
      res["scenarios"] = r.scenarios;
      res["disconnecting"] = r.disconnecting;
      res["disconnected_fraction"] = r.disconnected_fraction;
      res["mean_stretch"] = r.mean_stretch;
      res["worst_stretch"] = r.worst_stretch;
      res["worst_utilization"] = r.worst_utilization;
      res["penalty"] = r.penalty;
      res["sweeps"] = static_cast<double>(r.sweeps);
      res["delta_repairs"] = static_cast<double>(r.delta_repairs);
      res["fresh_trees"] = static_cast<double>(r.fresh_trees);
      res["vertices_resettled"] =
          static_cast<double>(r.vertices_resettled);
      result["resilience"] = std::move(res);
    }
    if (report.has_multipath) {
      const MultipathTelemetry& m = report.multipath;
      JsonObject mp;
      mp["mode"] = m.mode;
      mp["max_util_weight"] = m.max_util_weight;
      mp["oversub_weight"] = m.oversub_weight;
      mp["reference_capacity"] = m.reference_capacity;
      mp["max_utilization"] = m.max_utilization;
      mp["oversubscription"] = m.oversubscription;
      mp["sweeps"] = static_cast<double>(m.sweeps);
      mp["branch_points"] = static_cast<double>(m.branch_points);
      mp["dag_edges"] = static_cast<double>(m.dag_edges);
      result["multipath"] = std::move(mp);
    }
  }
  put_wall(result, report.wall_ns, include_timing);
  root["result"] = std::move(result);

  JsonArray phases;
  for (const PhaseStats& p : report.phases) {
    JsonObject obj;
    obj["name"] = to_string(p.phase);
    obj["evaluations"] = p.evaluations;
    if (include_timing) {
      obj["cache_hits"] = static_cast<double>(p.cache_hits);
      obj["cache_misses"] = static_cast<double>(p.cache_misses);
      obj["cache_inserts"] = static_cast<double>(p.cache_inserts);
      obj["cache_evictions"] = static_cast<double>(p.cache_evictions);
      obj["dedup_skipped"] = p.dedup_skipped;
      obj["dsssp_hits"] = static_cast<double>(p.dsssp_hits);
      obj["dsssp_fallbacks"] = static_cast<double>(p.dsssp_fallbacks);
      obj["vertices_resettled"] =
          static_cast<double>(p.vertices_resettled);
    }
    put_wall(obj, p.wall_ns, include_timing);
    phases.push_back(std::move(obj));
  }
  root["phases"] = std::move(phases);

  JsonArray heuristics;
  for (const HeuristicDone& h : report.heuristics) {
    JsonObject obj;
    obj["name"] = h.name;
    obj["cost"] = h.cost;
    put_wall(obj, h.wall_ns, include_timing);
    heuristics.push_back(std::move(obj));
  }
  root["heuristics"] = std::move(heuristics);

  JsonArray generations;
  for (const GenerationEnd& g : report.generations) {
    JsonObject obj;
    obj["gen"] = g.gen;
    obj["best_cost"] = g.best_cost;
    obj["mean_cost"] = g.mean_cost;
    obj["repairs"] = g.repairs;
    obj["links_repaired"] = g.links_repaired;
    obj["evaluations"] = g.evaluations;
    if (include_timing) obj["dedup_skipped"] = g.dedup_skipped;
    put_wall(obj, g.wall_ns, include_timing);
    generations.push_back(std::move(obj));
  }
  root["generations"] = std::move(generations);

  JsonArray ensemble_runs;
  for (const EnsembleRunDone& r : report.ensemble_runs) {
    JsonObject obj;
    obj["index"] = r.index;
    obj["seed"] = static_cast<double>(r.seed);
    obj["best_cost"] = r.best_cost;
    put_wall(obj, r.wall_ns, include_timing);
    ensemble_runs.push_back(std::move(obj));
  }
  root["ensemble_runs"] = std::move(ensemble_runs);

  // Logical content, not performance data: the aggregates depend only on
  // the folded runs, so timing-free reports keep them (a streamed ensemble
  // retains them *instead of* per-run results).
  if (report.has_ensemble_aggregates) {
    const EnsembleAggregates& a = report.ensemble_aggregates;
    JsonObject agg;
    agg["runs"] = a.runs;
    agg["streamed"] = a.streamed;
    agg["avg_degree"] = aggregate_to_json(a.avg_degree);
    agg["diameter"] = aggregate_to_json(a.diameter);
    agg["clustering"] = aggregate_to_json(a.clustering);
    agg["degree_cv"] = aggregate_to_json(a.degree_cv);
    agg["hubs"] = aggregate_to_json(a.hubs);
    agg["assortativity"] = aggregate_to_json(a.assortativity);
    agg["best_cost"] = aggregate_to_json(a.best_cost);
    root["ensemble_aggregates"] = std::move(agg);
  }

  // Logical content too: the reservoir's replacement choices depend only on
  // (base_seed, fold order), never on timing or thread count.
  if (report.has_ensemble_exemplars) {
    const EnsembleExemplars& ex = report.ensemble_exemplars;
    JsonObject block;
    block["reservoir"] = ex.reservoir;
    JsonArray exemplars;
    for (const EnsembleExemplar& e : ex.exemplars) {
      JsonObject obj;
      obj["index"] = e.index;
      obj["seed"] = static_cast<double>(e.seed);
      obj["best_cost"] = e.best_cost;
      obj["num_pops"] = e.num_pops;
      obj["num_links"] = e.num_links;
      exemplars.push_back(std::move(obj));
    }
    block["exemplars"] = std::move(exemplars);
    root["ensemble_exemplars"] = std::move(block);
  }

  write_json(os, JsonValue{std::move(root)});
  os << "\n";
}

std::string run_report_to_json(const RunReport& report, bool include_timing) {
  std::ostringstream os;
  write_run_report_json(os, report, include_timing);
  return os.str();
}

RunReport run_report_from_json(const std::string& json) {
  const JsonValue doc = parse_json(json);
  if (doc.field("schema").str() != "cold-run-report") {
    throw std::runtime_error("run report: unexpected schema '" +
                             doc.field("schema").str() + "'");
  }

  RunReport report;
  const JsonValue& run = doc.field("run");
  report.seed = static_cast<std::uint64_t>(run.field("seed").number());
  report.num_pops = static_cast<std::size_t>(run.field("num_pops").number());
  if (run.has("traffic_topk")) {  // absent before v7
    report.traffic_topk =
        static_cast<std::size_t>(run.field("traffic_topk").number());
  }
  if (run.has("traffic_kept_mass")) {  // absent before v8
    report.traffic_kept_mass = run.field("traffic_kept_mass").number();
  }

  const JsonValue& result = doc.field("result");
  report.best_cost = result.field("best_cost").number();
  report.evaluations =
      static_cast<std::size_t>(result.field("evaluations").number());
  report.stopped_early = result.field("stopped_early").boolean();
  report.stop_reason = stop_reason_from_string(result.field("stop_reason").str());
  // Engine counters are optional everywhere: absent in v1 (no cache
  // object), absent per-phase/per-generation in v2, and absent in any
  // version when the report was written timing-free.
  if (result.has("cache")) {
    const JsonValue& cache = result.field("cache");
    report.cache_hits =
        static_cast<std::uint64_t>(cache.field("hits").number());
    report.cache_misses =
        static_cast<std::uint64_t>(cache.field("misses").number());
    report.cache_inserts =
        static_cast<std::uint64_t>(cache.field("inserts").number());
    report.cache_evictions =
        static_cast<std::uint64_t>(cache.field("evictions").number());
  }
  if (result.has("dedup_skipped")) {
    report.dedup_skipped =
        static_cast<std::size_t>(result.field("dedup_skipped").number());
  }
  if (result.has("dsssp")) {  // absent before v4 and in timing-free reports
    const JsonValue& dsssp = result.field("dsssp");
    report.dsssp_hits =
        static_cast<std::uint64_t>(dsssp.field("hits").number());
    report.dsssp_fallbacks =
        static_cast<std::uint64_t>(dsssp.field("fallbacks").number());
    report.vertices_resettled = static_cast<std::uint64_t>(
        dsssp.field("vertices_resettled").number());
    if (dsssp.has("steals")) {  // the v5 additions travel together
      report.ga_steals =
          static_cast<std::uint64_t>(dsssp.field("steals").number());
      for (const JsonValue& w : dsssp.field("workers").array()) {
        WorkerDeltaStats stats;
        stats.hits = static_cast<std::uint64_t>(w.field("hits").number());
        stats.fallbacks =
            static_cast<std::uint64_t>(w.field("fallbacks").number());
        stats.vertices_resettled = static_cast<std::uint64_t>(
            w.field("vertices_resettled").number());
        report.worker_dsssp.push_back(stats);
      }
    }
  }
  if (result.has("resilience")) {  // v8, resilient-objective timed reports
    const JsonValue& res = result.field("resilience");
    ResilienceTelemetry r;
    r.weight = res.field("weight").number();
    r.scenarios = static_cast<std::size_t>(res.field("scenarios").number());
    r.disconnecting =
        static_cast<std::size_t>(res.field("disconnecting").number());
    r.disconnected_fraction = res.field("disconnected_fraction").number();
    r.mean_stretch = res.field("mean_stretch").number();
    r.worst_stretch = res.field("worst_stretch").number();
    r.worst_utilization = res.field("worst_utilization").number();
    r.penalty = res.field("penalty").number();
    r.sweeps = static_cast<std::uint64_t>(res.field("sweeps").number());
    r.delta_repairs =
        static_cast<std::uint64_t>(res.field("delta_repairs").number());
    r.fresh_trees =
        static_cast<std::uint64_t>(res.field("fresh_trees").number());
    r.vertices_resettled = static_cast<std::uint64_t>(
        res.field("vertices_resettled").number());
    report.resilience = r;
    report.has_resilience = true;
  }
  if (result.has("multipath")) {  // v9, ECMP/WCMP timed reports
    const JsonValue& mp = result.field("multipath");
    MultipathTelemetry m;
    m.mode = mp.field("mode").str();
    m.max_util_weight = mp.field("max_util_weight").number();
    m.oversub_weight = mp.field("oversub_weight").number();
    m.reference_capacity = mp.field("reference_capacity").number();
    m.max_utilization = mp.field("max_utilization").number();
    m.oversubscription = mp.field("oversubscription").number();
    m.sweeps = static_cast<std::uint64_t>(mp.field("sweeps").number());
    m.branch_points =
        static_cast<std::uint64_t>(mp.field("branch_points").number());
    m.dag_edges = static_cast<std::uint64_t>(mp.field("dag_edges").number());
    report.multipath = std::move(m);
    report.has_multipath = true;
  }
  report.wall_ns = get_wall(result);

  for (const JsonValue& p : doc.field("phases").array()) {
    PhaseStats stats;
    stats.phase = phase_from_string(p.field("name").str());
    stats.evaluations =
        static_cast<std::size_t>(p.field("evaluations").number());
    if (p.has("cache_hits")) {  // the v3 counters travel together
      stats.cache_hits =
          static_cast<std::uint64_t>(p.field("cache_hits").number());
      stats.cache_misses =
          static_cast<std::uint64_t>(p.field("cache_misses").number());
      stats.cache_inserts =
          static_cast<std::uint64_t>(p.field("cache_inserts").number());
      stats.cache_evictions =
          static_cast<std::uint64_t>(p.field("cache_evictions").number());
      stats.dedup_skipped =
          static_cast<std::size_t>(p.field("dedup_skipped").number());
    }
    if (p.has("dsssp_hits")) {  // the v4 trio travels together
      stats.dsssp_hits =
          static_cast<std::uint64_t>(p.field("dsssp_hits").number());
      stats.dsssp_fallbacks =
          static_cast<std::uint64_t>(p.field("dsssp_fallbacks").number());
      stats.vertices_resettled = static_cast<std::uint64_t>(
          p.field("vertices_resettled").number());
    }
    stats.wall_ns = get_wall(p);
    report.phases.push_back(stats);
  }

  for (const JsonValue& h : doc.field("heuristics").array()) {
    HeuristicDone done;
    done.name = h.field("name").str();
    done.cost = h.field("cost").number();
    done.wall_ns = get_wall(h);
    report.heuristics.push_back(done);
  }

  for (const JsonValue& g : doc.field("generations").array()) {
    GenerationEnd gen;
    gen.gen = static_cast<std::size_t>(g.field("gen").number());
    gen.best_cost = g.field("best_cost").number();
    gen.mean_cost = g.field("mean_cost").number();
    gen.repairs = static_cast<std::size_t>(g.field("repairs").number());
    gen.links_repaired =
        static_cast<std::size_t>(g.field("links_repaired").number());
    gen.evaluations =
        static_cast<std::size_t>(g.field("evaluations").number());
    if (g.has("dedup_skipped")) {
      gen.dedup_skipped =
          static_cast<std::size_t>(g.field("dedup_skipped").number());
    }
    gen.wall_ns = get_wall(g);
    report.generations.push_back(gen);
  }

  for (const JsonValue& r : doc.field("ensemble_runs").array()) {
    EnsembleRunDone run_done;
    run_done.index = static_cast<std::size_t>(r.field("index").number());
    run_done.seed = static_cast<std::uint64_t>(r.field("seed").number());
    run_done.best_cost = r.field("best_cost").number();
    run_done.wall_ns = get_wall(r);
    report.ensemble_runs.push_back(run_done);
  }

  if (doc.has("ensemble_aggregates")) {  // absent before v6
    const JsonValue& agg = doc.field("ensemble_aggregates");
    EnsembleAggregates a;
    a.runs = static_cast<std::size_t>(agg.field("runs").number());
    a.streamed = agg.field("streamed").boolean();
    a.avg_degree = aggregate_from_json(agg.field("avg_degree"));
    a.diameter = aggregate_from_json(agg.field("diameter"));
    a.clustering = aggregate_from_json(agg.field("clustering"));
    a.degree_cv = aggregate_from_json(agg.field("degree_cv"));
    a.hubs = aggregate_from_json(agg.field("hubs"));
    a.assortativity = aggregate_from_json(agg.field("assortativity"));
    a.best_cost = aggregate_from_json(agg.field("best_cost"));
    report.ensemble_aggregates = a;
    report.has_ensemble_aggregates = true;
  }

  if (doc.has("ensemble_exemplars")) {  // absent before v7
    const JsonValue& block = doc.field("ensemble_exemplars");
    EnsembleExemplars ex;
    ex.reservoir = static_cast<std::size_t>(block.field("reservoir").number());
    for (const JsonValue& e : block.field("exemplars").array()) {
      EnsembleExemplar exemplar;
      exemplar.index = static_cast<std::size_t>(e.field("index").number());
      exemplar.seed = static_cast<std::uint64_t>(e.field("seed").number());
      exemplar.best_cost = e.field("best_cost").number();
      exemplar.num_pops =
          static_cast<std::size_t>(e.field("num_pops").number());
      exemplar.num_links =
          static_cast<std::size_t>(e.field("num_links").number());
      ex.exemplars.push_back(exemplar);
    }
    report.ensemble_exemplars = std::move(ex);
    report.has_ensemble_exemplars = true;
  }
  return report;
}

void JsonReportSink::on_run_start(const RunStart& e) {
  report_ = RunReport{};
  report_.seed = e.seed;
  report_.num_pops = e.num_pops;
  report_.traffic_topk = e.traffic_topk;
}

void JsonReportSink::on_phase_end(const PhaseStats& e) {
  report_.phases.push_back(e);
}

void JsonReportSink::on_heuristic_done(const HeuristicDone& e) {
  report_.heuristics.push_back(e);
}

void JsonReportSink::on_generation_end(const GenerationEnd& e) {
  report_.generations.push_back(e);
}

void JsonReportSink::on_ensemble_run_done(const EnsembleRunDone& e) {
  report_.ensemble_runs.push_back(e);
}

void JsonReportSink::on_ensemble_aggregates(const EnsembleAggregates& e) {
  report_.ensemble_aggregates = e;
  report_.has_ensemble_aggregates = true;
}

void JsonReportSink::on_ensemble_exemplars(const EnsembleExemplars& e) {
  report_.ensemble_exemplars = e;
  report_.has_ensemble_exemplars = true;
}

void JsonReportSink::on_run_end(const RunSummary& e) {
  report_.best_cost = e.best_cost;
  report_.evaluations = e.evaluations;
  report_.wall_ns = e.wall_ns;
  report_.stopped_early = e.stopped_early;
  report_.stop_reason = e.stop_reason;
  report_.cache_hits = e.cache_hits;
  report_.cache_misses = e.cache_misses;
  report_.cache_inserts = e.cache_inserts;
  report_.cache_evictions = e.cache_evictions;
  report_.dedup_skipped = e.dedup_skipped;
  report_.dsssp_hits = e.dsssp_hits;
  report_.dsssp_fallbacks = e.dsssp_fallbacks;
  report_.vertices_resettled = e.vertices_resettled;
  report_.worker_dsssp = e.worker_dsssp;
  report_.ga_steals = e.ga_steals;
  report_.traffic_kept_mass = e.traffic_kept_mass;
  report_.has_resilience = e.has_resilience;
  report_.resilience = e.resilience;
  report_.has_multipath = e.has_multipath;
  report_.multipath = e.multipath;
}

}  // namespace cold
