// Run telemetry — the observability layer of the synthesis pipeline.
//
// Every long-running entry point (run_ga, Synthesizer::synthesize*,
// generate_ensemble, grow_network) accepts an optional RunObserver and an
// optional StopCondition:
//
//   * The observer receives typed events — phase boundaries with wall-clock
//     and evaluator counters, one GenerationEnd per GA generation, one
//     HeuristicDone per greedy heuristic, per-run ensemble progress — from
//     which sinks build progress output (ProgressSink), canonical traces
//     (TraceSink) or machine-readable run reports (JsonReportSink).
//   * The stop condition is a cooperative cancellation token: a wall-clock
//     deadline, an evaluation budget, or an explicit request_stop() (e.g.
//     from an observer or a signal handler). It is checked at generation
//     boundaries, so a stopped run still returns a valid partial result.
//
// Determinism contract: events are emitted from the sequential sections of
// the pipeline, after any parallel join, so the *logical* event stream
// (everything except performance data: wall-clock durations and the
// engine's cache/dedup counters, whose splits depend on work partitioning
// and engine configuration) is bit-identical for any ParallelConfig and any
// EvalEngineConfig. Serializers therefore take an `include_timing` switch
// covering all performance data; with it off, traces and reports are
// byte-identical across thread counts and engine configurations.
//
// Observers must not throw: events are delivered from destructors and from
// hot loops. All pointers handed to configs are borrowed, never owned; the
// caller keeps the observer and stop condition alive for the whole run.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/stats.h"

namespace cold {

/// Pipeline phases, in the order Synthesizer emits them. kEnsemble wraps
/// the run-level fan-out of generate_ensemble / sweep_metrics.
enum class Phase {
  kContext,
  kHeuristics,
  kGa,
  kAssembly,
  kEnsemble,
};

std::string to_string(Phase phase);

/// Why a run ended before completing its configured work.
enum class StopReason {
  kNone,        ///< ran to completion
  kRequested,   ///< StopCondition::request_stop() was called
  kDeadline,    ///< wall-clock deadline exceeded
  kEvalBudget,  ///< evaluation budget exhausted
};

std::string to_string(StopReason reason);

// ---------------------------------------------------------------------------
// Typed events.
// ---------------------------------------------------------------------------

/// A run begins (one synthesize* call, or one GA invocation via the
/// Synthesizer). `seed` is the run seed; `num_pops` the problem size.
struct RunStart {
  std::uint64_t seed = 0;
  std::size_t num_pops = 0;
  /// Gravity top-K truncation in effect for the run's traffic (0 = exact
  /// matrix). Logical content: it changes demands, so reports record it.
  std::size_t traffic_topk = 0;
};

/// A phase finished. `evaluations` counts objective evaluations consumed by
/// the phase (0 where no evaluator is involved, e.g. context generation).
/// The cache_*/dedup counters are per-phase deltas of the evaluation
/// engine's counters (see EngineCounters below); all zeros when no engine
/// counter source was wired to the phase's PhaseTimer.
struct PhaseStats {
  Phase phase = Phase::kContext;
  std::uint64_t wall_ns = 0;
  std::size_t evaluations = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_inserts = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t dedup_skipped = 0;
  std::uint64_t dsssp_hits = 0;       ///< delta-engine incremental evals
  std::uint64_t dsssp_fallbacks = 0;  ///< delta-enabled evals swept fully
  std::uint64_t vertices_resettled = 0;  ///< labels repaired incrementally
};

/// One greedy hub heuristic finished.
struct HeuristicDone {
  std::string name;
  double cost = 0.0;
  std::uint64_t wall_ns = 0;
};

/// One GA generation finished (emitted after the parallel scoring join).
/// Counters are per-generation deltas, not cumulative totals.
struct GenerationEnd {
  std::size_t gen = 0;        ///< 0-based generation index
  double best_cost = 0.0;     ///< best cost in the new population
  double mean_cost = 0.0;     ///< mean cost of the new population
  std::size_t repairs = 0;          ///< offspring needing connectivity repair
  std::size_t links_repaired = 0;   ///< links added by those repairs
  std::size_t evaluations = 0;      ///< objective evaluations this generation
  std::size_t dedup_skipped = 0;    ///< of those, served by dedup fan-out
  std::uint64_t wall_ns = 0;
};

/// One run of an ensemble finished (emitted sequentially, in seed order,
/// after the fan-out join).
struct EnsembleRunDone {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  double best_cost = 0.0;
  std::uint64_t wall_ns = 0;
};

/// Ensemble-level metric aggregates (emitted once, after the fan-out join
/// and the per-run EnsembleRunDone events, before RunSummary). Carries the
/// streamed count/mean/M2/min/max state per topology metric, so the full
/// statistical picture survives even when the ensemble retains no per-run
/// results (streamed mode). Part of the logical event stream — aggregates
/// fold in seed order and are bit-identical for any thread count.
struct EnsembleAggregates {
  std::size_t runs = 0;     ///< runs folded into the aggregates
  bool streamed = false;    ///< true when per-run results were not retained
  MetricAggregate avg_degree;
  MetricAggregate diameter;
  MetricAggregate clustering;
  MetricAggregate degree_cv;
  MetricAggregate hubs;
  MetricAggregate assortativity;
  MetricAggregate best_cost;
};

/// One run of a streamed ensemble's deterministic reservoir sample — the
/// uniform exemplars a streamed ensemble keeps instead of every result.
struct EnsembleExemplar {
  std::size_t index = 0;    ///< 0-based run index within the ensemble
  std::uint64_t seed = 0;   ///< the run's synthesis seed (replayable)
  double best_cost = 0.0;
  std::size_t num_pops = 0;
  std::size_t num_links = 0;
};

/// The reservoir sample, emitted once after EnsembleAggregates (streamed
/// ensembles with a configured reservoir only), sorted by run index. Part
/// of the logical event stream: Algorithm R's replacement choices depend
/// only on (base_seed, fold order), so the sample is bit-identical for any
/// thread count.
struct EnsembleExemplars {
  std::size_t reservoir = 0;  ///< configured sample capacity
  std::vector<EnsembleExemplar> exemplars;
};

/// A run ended (normally or via the stop condition).
///
/// The cache_* counters aggregate the evaluation cache (cost/cost_cache.h
/// private per worker, or cost/shared_cost_cache.h shared across workers)
/// over every evaluator clone of the run; all zeros when the cache is
/// disabled. Note they are part of the *performance* data, not the logical
/// event stream: with private caches the hit/miss split depends on how
/// offspring were partitioned across threads (hits + misses stays
/// deterministic), and all of the counters naturally vary with the engine
/// configuration. Costs and trajectories are unaffected either way.
/// Per-worker delta-engine counters (one per GA scorer worker, worker 0 =
/// the primary evaluator). Like the cache counters, part of the
/// performance data: with affinity scheduling the per-worker split depends
/// on steal timing, while the aggregate dsssp_* sums stay exact.
struct WorkerDeltaStats {
  std::uint64_t hits = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t vertices_resettled = 0;
};

/// Survivability aggregates of a resilient-objective run: the winning
/// topology's ResilienceSummary plus the run's sweep counters. Mirrors the
/// cost/resilience.h types as plain fields so the telemetry layer stays
/// independent of cost/ headers (like EngineCounters). Performance data:
/// which candidate wins is logical (it shows in best_cost), but the sweep
/// counters vary with engine knobs, so the whole block is timing-gated.
struct ResilienceTelemetry {
  double weight = 0.0;       ///< λ of the weighted-sum objective
  std::size_t scenarios = 0; ///< failure scenarios of the winner's sweep
  std::size_t disconnecting = 0;
  double disconnected_fraction = 0.0;
  double mean_stretch = 1.0;
  double worst_stretch = 1.0;
  double worst_utilization = 0.0;
  double penalty = 0.0;      ///< the winner's unweighted penalty
  std::uint64_t sweeps = 0;        ///< candidate assessments run
  std::uint64_t delta_repairs = 0; ///< per-source trees repaired in place
  std::uint64_t fresh_trees = 0;   ///< per-source trees swept fully
  std::uint64_t vertices_resettled = 0;
};

/// Multipath-routing aggregates of an ECMP/WCMP run: the winning
/// topology's MultipathSummary plus the run's sweep counters, mirrored as
/// plain fields like ResilienceTelemetry. Performance data for the same
/// reason: the winner is logical (visible in best_cost), but the counters
/// vary with engine knobs, so the whole block is timing-gated.
struct MultipathTelemetry {
  std::string mode;                ///< "ecmp" or "wcmp"
  double max_util_weight = 0.0;    ///< objective weight on max utilization
  double oversub_weight = 0.0;     ///< objective weight on oversubscription
  double reference_capacity = 0.0; ///< mean link load of the winner
  double max_utilization = 0.0;    ///< winner's max load / reference
  double oversubscription = 0.0;   ///< winner's summed excess utilization
  std::uint64_t sweeps = 0;        ///< multipath routing sweeps run
  std::uint64_t branch_points = 0; ///< DAG nodes where flow split
  std::uint64_t dag_edges = 0;     ///< predecessor edges across all DAGs
};

struct RunSummary {
  double best_cost = 0.0;
  std::size_t evaluations = 0;  ///< total objective evaluations in the run
  std::uint64_t wall_ns = 0;
  bool stopped_early = false;
  StopReason stop_reason = StopReason::kNone;
  std::uint64_t cache_hits = 0;       ///< verified evaluation-cache hits
  std::uint64_t cache_misses = 0;     ///< lookups that recomputed
  std::uint64_t cache_inserts = 0;    ///< cache entries written
  std::uint64_t cache_evictions = 0;  ///< LRU replacements
  std::size_t dedup_skipped = 0;  ///< evaluations served by GA dedup fan-out
  std::uint64_t dsssp_hits = 0;       ///< delta-engine incremental evals
  std::uint64_t dsssp_fallbacks = 0;  ///< delta-enabled evals swept fully
  std::uint64_t vertices_resettled = 0;  ///< labels repaired incrementally
  /// Per-worker split of the dsssp_* counters from the final GA's scoring
  /// pool (empty when the delta engine is off). Performance data, like the
  /// per-worker cache splits.
  std::vector<WorkerDeltaStats> worker_dsssp;
  /// Scoring items run off their preferred worker under affinity
  /// scheduling (0 when affinity never engaged). Performance data.
  std::uint64_t ga_steals = 0;
  /// Fraction of the exact gravity demand mass the run's --traffic-topk
  /// truncation kept (1.0 exact / no truncation). Logical content like
  /// traffic_topk: it pins down which demands the run optimized against.
  double traffic_kept_mass = 1.0;
  /// Resilient-objective aggregates; meaningful only when has_resilience.
  bool has_resilience = false;
  ResilienceTelemetry resilience;
  /// Multipath-routing aggregates; meaningful only when has_multipath.
  bool has_multipath = false;
  MultipathTelemetry multipath;
};

// ---------------------------------------------------------------------------
// Observer interface.
// ---------------------------------------------------------------------------

/// Receives the event stream of a run. All methods default to no-ops, so a
/// sink overrides only what it needs. Events arrive on the calling thread
/// of the observed entry point, strictly sequenced; implementations need no
/// internal locking unless they are shared across concurrent runs.
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  virtual void on_run_start(const RunStart& /*event*/) {}
  virtual void on_phase_start(Phase /*phase*/) {}
  virtual void on_phase_end(const PhaseStats& /*event*/) {}
  virtual void on_heuristic_done(const HeuristicDone& /*event*/) {}
  virtual void on_generation_end(const GenerationEnd& /*event*/) {}
  virtual void on_ensemble_run_done(const EnsembleRunDone& /*event*/) {}
  virtual void on_ensemble_aggregates(const EnsembleAggregates& /*event*/) {}
  virtual void on_ensemble_exemplars(const EnsembleExemplars& /*event*/) {}
  virtual void on_run_end(const RunSummary& /*event*/) {}
};

/// Fans every event out to a list of borrowed child observers, in order.
class MultiObserver final : public RunObserver {
 public:
  MultiObserver() = default;
  explicit MultiObserver(std::vector<RunObserver*> children)
      : children_(std::move(children)) {}

  /// Ignores nullptr, so optional sinks can be added unconditionally.
  void add(RunObserver* child) {
    if (child != nullptr) children_.push_back(child);
  }

  void on_run_start(const RunStart& e) override {
    for (auto* c : children_) c->on_run_start(e);
  }
  void on_phase_start(Phase p) override {
    for (auto* c : children_) c->on_phase_start(p);
  }
  void on_phase_end(const PhaseStats& e) override {
    for (auto* c : children_) c->on_phase_end(e);
  }
  void on_heuristic_done(const HeuristicDone& e) override {
    for (auto* c : children_) c->on_heuristic_done(e);
  }
  void on_generation_end(const GenerationEnd& e) override {
    for (auto* c : children_) c->on_generation_end(e);
  }
  void on_ensemble_run_done(const EnsembleRunDone& e) override {
    for (auto* c : children_) c->on_ensemble_run_done(e);
  }
  void on_ensemble_aggregates(const EnsembleAggregates& e) override {
    for (auto* c : children_) c->on_ensemble_aggregates(e);
  }
  void on_ensemble_exemplars(const EnsembleExemplars& e) override {
    for (auto* c : children_) c->on_ensemble_exemplars(e);
  }
  void on_run_end(const RunSummary& e) override {
    for (auto* c : children_) c->on_run_end(e);
  }

 private:
  std::vector<RunObserver*> children_;
};

// ---------------------------------------------------------------------------
// Cooperative cancellation.
// ---------------------------------------------------------------------------

/// A shared, thread-safe stop token checked at generation (and run)
/// boundaries. Configure any combination of limits before the run; arm() is
/// called by the observed entry point and latches the wall-clock deadline
/// on first use, so one StopCondition can span heuristics + GA + ensemble
/// fan-out (evaluations accumulate across all of them).
class StopCondition {
 public:
  StopCondition() = default;

  /// Copies transfer the configured limits and a snapshot of the runtime
  /// state (atomics forbid default copies). Entry points always take the
  /// condition by pointer; copying mid-run forks the accounting.
  StopCondition(const StopCondition& other)
      : max_seconds(other.max_seconds),
        max_evaluations(other.max_evaluations),
        requested_(other.requested_.load(std::memory_order_relaxed)),
        evaluations_(other.evaluations_.load(std::memory_order_relaxed)),
        deadline_ns_(other.deadline_ns_.load(std::memory_order_relaxed)) {}
  StopCondition& operator=(const StopCondition& other) {
    max_seconds = other.max_seconds;
    max_evaluations = other.max_evaluations;
    requested_.store(other.requested_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    evaluations_.store(other.evaluations_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    deadline_ns_.store(other.deadline_ns_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }

  /// Convenience factories for the two budget kinds.
  static StopCondition wall_clock(double seconds);
  static StopCondition eval_budget(std::size_t evaluations);

  /// 0 = unlimited. Set before the run starts.
  double max_seconds = 0.0;
  std::size_t max_evaluations = 0;

  /// Latches the deadline at now + max_seconds (first caller wins; later
  /// calls are no-ops). Entry points call this; callers may pre-arm to
  /// start the clock before the run is dispatched.
  void arm();

  /// Requests a stop from anywhere (observer callback, signal handler,
  /// another thread). Takes effect at the next boundary check.
  void request_stop() { requested_.store(true, std::memory_order_relaxed); }

  /// Charges `n` objective evaluations against the budget.
  void add_evaluations(std::size_t n) {
    evaluations_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Evaluations charged so far (across every run sharing this condition).
  std::size_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

  /// True once any limit is hit or a stop was requested. Cheap enough for
  /// per-generation checks.
  bool should_stop() const { return reason() != StopReason::kNone; }

  /// Which limit fired (kRequested > kDeadline > kEvalBudget precedence).
  StopReason reason() const;

 private:
  std::atomic<bool> requested_{false};
  std::atomic<std::size_t> evaluations_{0};
  /// steady_clock deadline in ns since epoch; 0 = not armed or unlimited.
  std::atomic<std::int64_t> deadline_ns_{0};
};

// ---------------------------------------------------------------------------
// Phase-scoped RAII timer.
// ---------------------------------------------------------------------------

/// A snapshot of the evaluation engine's monotonic counters, sampled by
/// PhaseTimer to report per-phase deltas in PhaseStats. Mirrors
/// EvalCacheStats plus the dedup counter as plain integers so the telemetry
/// layer stays independent of cost/ headers.
struct EngineCounters {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_inserts = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t dedup_skipped = 0;
  std::uint64_t dsssp_hits = 0;
  std::uint64_t dsssp_fallbacks = 0;
  std::uint64_t vertices_resettled = 0;
};

/// Emits on_phase_start on construction and on_phase_end (with wall-clock
/// and the deltas of optional evaluation / engine counters) on destruction.
/// A null observer makes the timer a no-op, so call sites stay
/// unconditional. Counter callbacks are invoked from the constructing
/// thread only, at construction and destruction — both outside any parallel
/// section of the observed phase.
class PhaseTimer {
 public:
  PhaseTimer(RunObserver* observer, Phase phase,
             std::function<std::size_t()> eval_counter = {},
             std::function<EngineCounters()> engine_counter = {});
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  RunObserver* observer_;
  Phase phase_;
  std::function<std::size_t()> eval_counter_;
  std::function<EngineCounters()> engine_counter_;
  std::size_t evals_at_start_ = 0;
  EngineCounters engine_at_start_;
  std::chrono::steady_clock::time_point start_;
};

/// Nanoseconds elapsed since `start` on the steady clock.
std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start);

}  // namespace cold
