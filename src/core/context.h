// The randomized context that drives COLD's synthesis (paper §3.1).
//
// COLD's optimization is deterministic; statistical variety comes from
// randomizing the *context*: PoP locations (a point process on a region)
// and the traffic matrix (gravity model over random populations).
#pragma once

#include <memory>
#include <vector>

#include "geom/distance.h"
#include "geom/point.h"
#include "geom/point_process.h"
#include "geom/region.h"
#include "traffic/gravity.h"
#include "traffic/population.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace cold {

/// A fully instantiated synthesis context.
///
/// Matrix-free currencies: `traffic` is CSR over nonzero demands and
/// `distances` is a DistanceProvider (dense-backed only at small n, else
/// recomputed from `locations` on demand), so a context is O(n + nnz)
/// resident rather than O(n^2). Both are value types over shared immutable
/// cores — copying a Context is cheap and copies share the same data.
struct Context {
  std::vector<Point> locations;
  std::vector<double> populations;
  CompressedTraffic traffic;    ///< gravity demand matrix (CSR)
  DistanceProvider distances;   ///< pairwise PoP distances (on demand)

  std::size_t num_pops() const { return locations.size(); }
};

/// Declarative recipe for generating contexts. Defaults mirror the paper:
/// uniform locations on the unit square, exponential populations (mean 30),
/// gravity traffic.
struct ContextConfig {
  std::size_t num_pops = 30;
  Rectangle region;  ///< default: unit square

  /// Location model; null means UniformProcess.
  std::shared_ptr<const PointProcess> point_process;

  /// Population model; null means ExponentialPopulation(30).
  std::shared_ptr<const PopulationModel> population_model;

  /// Traffic options. The default scale (10) calibrates the traffic units so
  /// the paper's k2 axis (Figs 5-9, k2 in [2.5e-5, 2e-3] with k0 = 10,
  /// k1 = 1, n = 30) reproduces the published metric ranges — e.g. average
  /// degree rising from ~1.9 to ~3.2. The absolute unit is arbitrary (k2
  /// multiplies traffic, so scale and k2 trade off exactly); see
  /// EXPERIMENTS.md "Traffic-unit calibration".
  GravityOptions gravity{.scale = 10.0};
};

/// Draws one context. Deterministic given `rng`.
Context generate_context(const ContextConfig& config, Rng& rng);

/// Builds a context from fixed user data (e.g. real PoP coordinates and a
/// measured traffic matrix). Validates shapes and traffic invariants.
Context make_context(std::vector<Point> locations,
                     std::vector<double> populations, Matrix<double> traffic);

}  // namespace cold
