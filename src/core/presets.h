// Named cost presets.
//
// The paper's parameters are meaningful but continuous; users usually want
// a starting point ("give me a hubby network"). These presets are derived
// from the calibration sweeps in EXPERIMENTS.md (n ~= 30, k1 = 1, unit
// square, default traffic units) and are the documented entry points the
// examples and CLI defaults are built around. Each maps to a region of
// Fig 5/8b/9's parameter space.
#pragma once

#include <string>
#include <vector>

#include "cost/cost_model.h"

namespace cold {

enum class NetworkStyle {
  kTree,         ///< minimal connectivity (k0/k1 dominate): MST-like
  kHubAndSpoke,  ///< strong hub cost: 1-3 core PoPs, CVND ~2
  kRegional,     ///< a few hubs with local meshing (the "typical ISP" look)
  kBalanced,     ///< moderate everything: degree ~2.3, diameter ~5
  kMesh,         ///< bandwidth-dominant: dense, low diameter, clustered
};

/// Cost parameters realizing the style at PoP counts around 20-50.
CostParams preset_costs(NetworkStyle style);

/// Stable identifier (for CLIs / serialization), e.g. "hub-and-spoke".
std::string to_string(NetworkStyle style);

/// Parses the identifier produced by to_string; throws std::invalid_argument
/// on unknown names.
NetworkStyle network_style_from_string(const std::string& name);

/// All styles in declaration order.
std::vector<NetworkStyle> all_network_styles();

}  // namespace cold
