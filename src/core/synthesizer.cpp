#include "core/synthesizer.h"

#include <stdexcept>

#include "cost/evaluator.h"

namespace cold {

Synthesizer::Synthesizer(SynthesisConfig config) : config_(std::move(config)) {
  config_.costs.validate();
  config_.ga = config_.ga.resolved();  // fail fast on bad GA settings
  if (config_.overprovision < 1.0) {
    throw std::invalid_argument("Synthesizer: overprovision must be >= 1");
  }
}

SynthesisResult Synthesizer::synthesize(std::uint64_t seed) const {
  Rng context_rng(seed, /*stream=*/0);
  const Context ctx = generate_context(config_.context, context_rng);
  return synthesize_for_context(ctx, seed);
}

SynthesisResult Synthesizer::synthesize_for_context(const Context& context,
                                                    std::uint64_t seed) const {
  Evaluator eval(context.distances, context.traffic, config_.costs);

  SynthesisResult result;
  result.context = context;

  Rng opt_rng(seed, /*stream=*/1);
  std::vector<Topology> seeds;
  if (config_.seed_with_heuristics) {
    result.heuristics =
        run_all_heuristics(eval, opt_rng, config_.heuristic_options);
    for (const HeuristicResult& h : result.heuristics) {
      seeds.push_back(h.topology);
    }
  }
  result.ga = run_ga(eval, config_.ga, opt_rng, seeds);
  result.cost = eval.breakdown(result.ga.best);
  result.network =
      build_network(result.ga.best, context.locations, context.populations,
                    context.traffic, config_.overprovision);
  return result;
}

}  // namespace cold
