#include "core/synthesizer.h"

#include <cmath>
#include <stdexcept>

#include "cost/evaluator.h"

namespace cold {

Synthesizer::Synthesizer(SynthesisConfig config) : config_(std::move(config)) {
  config_.costs.validate();
  config_.ga = config_.ga.resolved();  // fail fast on bad GA settings
  if (config_.overprovision < 1.0) {
    throw std::invalid_argument("Synthesizer: overprovision must be >= 1");
  }
  ResilienceConfig& res = config_.engine.resilience;
  if (res.enabled) {
    if (!std::isfinite(res.weight) || res.weight < 0.0) {
      throw std::invalid_argument(
          "Synthesizer: resilience weight must be finite and >= 0");
    }
    if (res.scenarios == FailureScenarioSet::kDoubleSampled &&
        res.double_samples == 0) {
      throw std::invalid_argument(
          "Synthesizer: double-sampled scenarios need double_samples >= 1");
    }
    // The failure sweep compares post-failure loads against the capacities
    // the final Network would be provisioned with.
    res.overprovision = config_.overprovision;
  }
  const MultipathConfig& mp = config_.engine.multipath;
  if (res.enabled && mp.enabled()) {
    throw std::invalid_argument(
        "Synthesizer: the resilient objective and multipath routing are "
        "mutually exclusive (the failure sweeps assess single-path routing)");
  }
  for (const double w : {mp.max_util_weight, mp.oversub_weight}) {
    if (!std::isfinite(w) || w < 0.0) {
      throw std::invalid_argument(
          "Synthesizer: multipath objective weights must be finite and >= 0");
    }
  }
}

SynthesisResult Synthesizer::synthesize(std::uint64_t seed) const {
  const auto started = std::chrono::steady_clock::now();
  if (config_.stop != nullptr) config_.stop->arm();
  if (config_.observer != nullptr) {
    config_.observer->on_run_start(
        {seed, config_.context.num_pops, config_.context.gravity.topk});
  }
  Rng context_rng(seed, /*stream=*/0);
  Context ctx;
  {
    PhaseTimer timer(config_.observer, Phase::kContext);
    ctx = generate_context(config_.context, context_rng);
  }
  return optimize(ctx, seed, started);
}

SynthesisResult Synthesizer::synthesize_for_context(const Context& context,
                                                    std::uint64_t seed) const {
  const auto started = std::chrono::steady_clock::now();
  if (config_.stop != nullptr) config_.stop->arm();
  if (config_.observer != nullptr) {
    config_.observer->on_run_start(
        {seed, context.num_pops(), context.traffic.topk()});
  }
  return optimize(context, seed, started);
}

SynthesisResult Synthesizer::optimize(
    const Context& context, std::uint64_t seed,
    std::chrono::steady_clock::time_point started) const {
  RunObserver* observer = config_.observer;
  Evaluator eval(context.distances, context.traffic, config_.costs,
                 config_.engine);
  const auto eval_count = [&eval] { return eval.evaluations(); };
  // Per-phase engine-counter deltas (report schema v3). Sampled by the
  // PhaseTimers on this thread, outside any parallel section — worker-clone
  // counters are merged before the GA phase ends.
  const auto engine_count = [&eval] {
    EngineCounters c;
    const EvalCacheStats s = eval.cache_stats();
    c.cache_hits = s.hits;
    c.cache_misses = s.misses;
    c.cache_inserts = s.inserts;
    c.cache_evictions = s.evictions;
    c.dedup_skipped = eval.dedup_skipped();
    const DeltaStats& d = eval.delta_stats();
    c.dsssp_hits = d.hits;
    c.dsssp_fallbacks = d.fallbacks;
    c.vertices_resettled = d.vertices_resettled;
    return c;
  };

  SynthesisResult result;
  result.context = context;

  Rng opt_rng(seed, /*stream=*/1);
  std::vector<Topology> seeds;
  if (config_.seed_with_heuristics) {
    PhaseTimer timer(observer, Phase::kHeuristics, eval_count, engine_count);
    result.heuristics = run_all_heuristics(
        eval, opt_rng, config_.heuristic_options, observer, config_.stop);
    for (const HeuristicResult& h : result.heuristics) {
      seeds.push_back(h.topology);
    }
  }
  {
    PhaseTimer timer(observer, Phase::kGa, eval_count, engine_count);
    GaRunOptions ga_options;
    ga_options.config = config_.ga;
    ga_options.seeds = std::move(seeds);
    ga_options.observer = observer;
    ga_options.stop = config_.stop;
    result.ga = run_ga(eval, opt_rng, ga_options);
  }
  {
    PhaseTimer timer(observer, Phase::kAssembly, eval_count, engine_count);
    result.cost = eval.evaluate(result.ga.best).breakdown;
    NetworkBuildOptions build_options;
    build_options.overprovision = config_.overprovision;
    // Provision capacities for the loads the objective optimized: the built
    // network's link loads are the winner's evaluation loads bit for bit.
    build_options.multipath = config_.engine.multipath.mode;
    result.network =
        build_network(result.ga.best, context.locations, context.populations,
                      context.traffic, build_options);
  }
  result.cache = eval.cache_stats();  // includes merged GA worker caches
  result.delta = eval.delta_stats();
  result.resilience = eval.resilience_stats();
  result.multipath = eval.multipath_stats();
  if (observer != nullptr) {
    RunSummary summary;
    summary.best_cost = result.ga.best_cost;
    summary.evaluations = eval.evaluations();
    summary.wall_ns = elapsed_ns(started);
    summary.stopped_early = result.ga.stopped_early;
    summary.stop_reason = result.ga.stop_reason;
    summary.cache_hits = result.cache.hits;
    summary.cache_misses = result.cache.misses;
    summary.cache_inserts = result.cache.inserts;
    summary.cache_evictions = result.cache.evictions;
    summary.dedup_skipped = eval.dedup_skipped();
    const DeltaStats& delta = eval.delta_stats();
    summary.dsssp_hits = delta.hits;
    summary.dsssp_fallbacks = delta.fallbacks;
    summary.vertices_resettled = delta.vertices_resettled;
    // Per-worker split from the GA's scoring pool, snapshotted before the
    // clone merge (which folds workers into the aggregate above).
    summary.worker_dsssp.reserve(result.ga.worker_delta.size());
    for (const DeltaStats& w : result.ga.worker_delta) {
      summary.worker_dsssp.push_back({w.hits, w.fallbacks,
                                      w.vertices_resettled});
    }
    summary.ga_steals = result.ga.steals;
    summary.traffic_kept_mass = context.traffic.kept_mass();
    if (config_.engine.resilience.enabled) {
      summary.has_resilience = true;
      const ResilienceSummary& rs = result.cost.resilience_summary;
      summary.resilience.weight = config_.engine.resilience.weight;
      summary.resilience.scenarios = rs.scenarios;
      summary.resilience.disconnecting = rs.disconnecting;
      summary.resilience.disconnected_fraction = rs.disconnected_fraction;
      summary.resilience.mean_stretch = rs.mean_stretch;
      summary.resilience.worst_stretch = rs.worst_stretch;
      summary.resilience.worst_utilization = rs.worst_utilization;
      summary.resilience.penalty = rs.penalty();
      summary.resilience.sweeps = result.resilience.sweeps;
      summary.resilience.delta_repairs = result.resilience.delta_repairs;
      summary.resilience.fresh_trees = result.resilience.fresh_trees;
      summary.resilience.vertices_resettled =
          result.resilience.vertices_resettled;
    }
    if (config_.engine.multipath.enabled()) {
      summary.has_multipath = true;
      const MultipathConfig& mp = config_.engine.multipath;
      const MultipathSummary& ms = result.cost.multipath_summary;
      summary.multipath.mode = multipath_mode_name(mp.mode);
      summary.multipath.max_util_weight = mp.max_util_weight;
      summary.multipath.oversub_weight = mp.oversub_weight;
      summary.multipath.reference_capacity = ms.reference_capacity;
      summary.multipath.max_utilization = ms.max_utilization;
      summary.multipath.oversubscription = ms.oversubscription;
      summary.multipath.sweeps = result.multipath.sweeps;
      summary.multipath.branch_points = result.multipath.branch_points;
      summary.multipath.dag_edges = result.multipath.dag_edges;
    }
    observer->on_run_end(summary);
  }
  return result;
}

}  // namespace cold
