#include "core/presets.h"

#include <stdexcept>

namespace cold {

CostParams preset_costs(NetworkStyle style) {
  switch (style) {
    case NetworkStyle::kTree:
      return CostParams{10.0, 1.0, 2.5e-5, 0.0};
    case NetworkStyle::kHubAndSpoke:
      return CostParams{10.0, 1.0, 1e-4, 300.0};
    case NetworkStyle::kRegional:
      return CostParams{10.0, 1.0, 4e-4, 10.0};
    case NetworkStyle::kBalanced:
      return CostParams{5.0, 1.0, 6e-4, 1.0};
    case NetworkStyle::kMesh:
      return CostParams{2.0, 1.0, 2e-3, 0.0};
  }
  throw std::invalid_argument("preset_costs: unknown style");
}

std::string to_string(NetworkStyle style) {
  switch (style) {
    case NetworkStyle::kTree:
      return "tree";
    case NetworkStyle::kHubAndSpoke:
      return "hub-and-spoke";
    case NetworkStyle::kRegional:
      return "regional";
    case NetworkStyle::kBalanced:
      return "balanced";
    case NetworkStyle::kMesh:
      return "mesh";
  }
  throw std::invalid_argument("to_string: unknown NetworkStyle");
}

NetworkStyle network_style_from_string(const std::string& name) {
  for (NetworkStyle style : all_network_styles()) {
    if (to_string(style) == name) return style;
  }
  throw std::invalid_argument("unknown network style: " + name);
}

std::vector<NetworkStyle> all_network_styles() {
  return {NetworkStyle::kTree, NetworkStyle::kHubAndSpoke,
          NetworkStyle::kRegional, NetworkStyle::kBalanced,
          NetworkStyle::kMesh};
}

}  // namespace cold
