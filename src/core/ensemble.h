// Ensemble generation — the simulation use case the paper is built for:
// "generate a potentially large number of network topologies that are
// similar, but varied enough to perform statistical analysis of results"
// (§1, challenge 1). Also provides the per-parameter-point sweep helper the
// evaluation figures are built on (Figs 5-9).
//
// Aggregation is streamed: generate_ensemble folds each finished run into
// an EnsembleAccumulator (count/mean/M2/min/max per metric, running engine
// totals, optional reservoir sample) instead of necessarily retaining every
// SynthesisResult. Below kRetainAutoThreshold runs the accumulator also
// keeps the full per-run results (today's behavior: bootstrap CIs, exact
// pairwise distinctness); above it — or with RetainMode::kStreamed — memory
// stays flat in the run count and CIs come from the streamed moments.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/synthesizer.h"
#include "graph/metrics.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cold {

/// Whether generate_ensemble keeps every per-run SynthesisResult.
enum class RetainMode {
  kAuto,       ///< retain up to kRetainAutoThreshold runs, stream above
  kRetainAll,  ///< always retain (memory grows linearly with count)
  kStreamed,   ///< never retain; aggregates (+ optional reservoir) only
};

/// RetainMode::kAuto cutover: the largest count that still retains runs.
inline constexpr std::size_t kRetainAutoThreshold = 1024;

struct EnsembleOptions {
  std::size_t count = 1;
  std::uint64_t base_seed = 1;
  double ci_level = 0.95;
  RetainMode retain = RetainMode::kAuto;
  /// Streamed mode only: keep a uniform reservoir sample of this many full
  /// SynthesisResults (0 = none). Deterministic in (base_seed, fold order).
  std::size_t reservoir = 0;
};

/// Folds SynthesisResults into running ensemble state. One fold is O(cost
/// of hashing the network); total state is O(1) in the run count in
/// streamed mode (plus the bounded reservoir). Folding happens in seed
/// order on the coordinating thread, so every derived quantity is
/// bit-identical for any thread count.
class EnsembleAccumulator {
 public:
  EnsembleAccumulator() : EnsembleAccumulator(true, 0, 1) {}

  /// `retain_all`: keep every folded run (and its TopologyMetrics).
  /// `reservoir`: streamed-mode sample size. `seed` drives the reservoir's
  /// deterministic replacement choices.
  EnsembleAccumulator(bool retain_all, std::size_t reservoir,
                      std::uint64_t seed);

  /// Folds one finished run (takes ownership; in streamed mode the run is
  /// dropped after the aggregates, totals, distinctness hash and reservoir
  /// are updated). `seed` is the run's synthesis seed, recorded alongside
  /// any reservoir slot the run lands in so exemplars stay replayable.
  void fold(SynthesisResult&& run, const TopologyMetrics& metrics,
            std::uint64_t seed = 0);

  /// Runs folded so far.
  std::size_t count() const { return agg_.runs; }

  /// True when every folded SynthesisResult is retained in runs().
  bool retains_runs() const { return retain_all_; }

  /// The retained per-run results, in seed order. Throws std::logic_error
  /// in streamed mode — check retains_runs() (or use sample()).
  const std::vector<SynthesisResult>& runs() const;

  /// Per-run metrics matching runs() (same retention rule).
  const std::vector<TopologyMetrics>& metrics() const;

  /// Streamed-mode reservoir sample (empty when retaining, or reservoir=0).
  /// A uniform sample of the folded runs, not in seed order.
  const std::vector<SynthesisResult>& sample() const { return sample_; }

  /// Compact records of the reservoir sample (run index, seed, best cost,
  /// network size), sorted by run index — what the telemetry stream and
  /// the run report surface as `ensemble_exemplars`. Empty whenever
  /// sample() is.
  std::vector<EnsembleExemplar> exemplars() const;

  /// Streamed metric aggregates (always maintained, also when retaining).
  const EnsembleAggregates& aggregates() const { return agg_; }

  /// Whole-network distinctness of everything folded so far. Retained mode
  /// should prefer the exact pairwise check in EnsembleResult; this one is
  /// hash-based (64-bit, collisions can only produce a false "not
  /// distinct", never a false "distinct").
  bool all_distinct_hashed() const { return all_distinct_; }

  /// Running engine totals across folded runs, for telemetry.
  std::size_t evaluations() const { return evaluations_; }
  std::size_t dedup_skipped() const { return dedup_skipped_; }
  const EvalCacheStats& cache() const { return cache_; }
  const DeltaStats& delta() const { return delta_; }
  double best_cost() const { return best_cost_; }

 private:
  bool retain_all_ = true;
  std::size_t reservoir_cap_ = 0;
  Rng rng_;
  EnsembleAggregates agg_;
  std::vector<SynthesisResult> runs_;
  std::vector<TopologyMetrics> metrics_;
  std::vector<SynthesisResult> sample_;
  /// (run index, seed) per reservoir slot, maintained in lockstep with
  /// sample_ — SynthesisResult does not carry its own seed.
  struct SampleMeta {
    std::size_t index = 0;
    std::uint64_t seed = 0;
  };
  std::vector<SampleMeta> sample_meta_;
  std::unordered_set<std::uint64_t> seen_;
  bool all_distinct_ = true;
  std::size_t evaluations_ = 0;
  std::size_t dedup_skipped_ = 0;
  EvalCacheStats cache_;
  DeltaStats delta_;
  double best_cost_;
};

/// Statistics of one topology metric across an ensemble.
struct MetricStats {
  ConfidenceInterval avg_degree;
  ConfidenceInterval diameter;
  ConfidenceInterval clustering;
  ConfidenceInterval degree_cv;
  ConfidenceInterval hubs;
  ConfidenceInterval assortativity;
};

struct EnsembleResult {
  /// All per-run state: retained results (retain mode), streamed
  /// aggregates, engine totals, optional reservoir.
  EnsembleAccumulator acc;
  /// CIs per metric: percentile bootstrap when runs are retained (legacy
  /// behavior, bit-identical), normal approximation from the streamed
  /// moments otherwise.
  MetricStats stats;
  /// Minimum pairwise edge difference between generated topologies; only
  /// meaningful when pairwise_checked. Note a 0 here does not mean two
  /// networks are identical: strongly hub-priced ensembles can repeat a
  /// labeled star shape while differing in locations and traffic.
  std::size_t min_pairwise_edge_difference = 0;
  /// True when the O(count^2) pairwise scan ran (retained mode). Streamed
  /// ensembles cannot afford it; all_distinct then comes from the
  /// accumulator's hash set and min_pairwise_edge_difference stays 0.
  bool pairwise_checked = false;
  /// The paper's "distinct by construction" claim, checked across the full
  /// network (topology, PoP locations, traffic): true iff every pair of
  /// generated networks differs somewhere (exact when pairwise_checked,
  /// hash-based otherwise).
  bool all_distinct = false;
  /// Set when the synthesizer's StopCondition ended the ensemble before
  /// every requested run completed; the accumulator then holds the
  /// completed prefix (statistics cover only those runs).
  bool stopped_early = false;
  StopReason stop_reason = StopReason::kNone;

  /// Convenience forwarders to the accumulator.
  std::size_t num_runs() const { return acc.count(); }
  const std::vector<SynthesisResult>& runs() const { return acc.runs(); }
  const EnsembleAggregates& aggregates() const { return acc.aggregates(); }
};

/// Synthesizes options.count networks with seeds base_seed, base_seed+1,
/// ... (each seed yields a fresh random context) and folds them into an
/// EnsembleAccumulator as runs complete — memory is O(threads + retained
/// state), so streamed ensembles of any count run flat.
///
/// Telemetry: when the synthesizer config carries an observer, the
/// ensemble emits its own deterministic stream — RunStart, an `ensemble`
/// phase, one EnsembleRunDone per run in seed order (after the fan-out
/// join), one EnsembleAggregates, RunSummary. Per-run inner events are
/// suppressed: with a parallel fan-out they would interleave
/// nondeterministically across threads, so suppressing them always keeps
/// the stream identical for any thread count. The stop condition (if any)
/// is honored at run-wave boundaries and inside every inner GA, and a
/// stopped ensemble returns the completed prefix as a valid partial result.
EnsembleResult generate_ensemble(const Synthesizer& synth,
                                 const EnsembleOptions& options);

/// Legacy signature: count/seed/level with RetainMode::kAuto.
EnsembleResult generate_ensemble(const Synthesizer& synth, std::size_t count,
                                 std::uint64_t base_seed = 1,
                                 double ci_level = 0.95);

/// Lightweight sweep record used by the figure benches: synthesizes `count`
/// networks and returns just their TopologyMetrics (no Network retained —
/// sweeping hundreds of runs would otherwise hold a lot of memory).
std::vector<TopologyMetrics> sweep_metrics(const Synthesizer& synth,
                                           std::size_t count,
                                           std::uint64_t base_seed = 1);

}  // namespace cold
