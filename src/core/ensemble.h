// Ensemble generation — the simulation use case the paper is built for:
// "generate a potentially large number of network topologies that are
// similar, but varied enough to perform statistical analysis of results"
// (§1, challenge 1). Also provides the per-parameter-point sweep helper the
// evaluation figures are built on (Figs 5-9).
#pragma once

#include <vector>

#include "core/synthesizer.h"
#include "graph/metrics.h"
#include "util/stats.h"

namespace cold {

/// Statistics of one topology metric across an ensemble.
struct MetricStats {
  ConfidenceInterval avg_degree;
  ConfidenceInterval diameter;
  ConfidenceInterval clustering;
  ConfidenceInterval degree_cv;
  ConfidenceInterval hubs;
  ConfidenceInterval assortativity;
};

struct EnsembleResult {
  std::vector<SynthesisResult> runs;
  MetricStats stats;
  /// Minimum pairwise edge difference between generated topologies. Note a
  /// 0 here does not mean two networks are identical: strongly hub-priced
  /// ensembles can repeat a labeled star shape while differing in locations
  /// and traffic.
  std::size_t min_pairwise_edge_difference = 0;
  /// The paper's "distinct by construction" claim, checked across the full
  /// network (topology, PoP locations, traffic): true iff every pair of
  /// generated networks differs somewhere.
  bool all_distinct = false;
  /// Set when the synthesizer's StopCondition ended the ensemble before
  /// every requested run completed; `runs` then holds the completed prefix
  /// (statistics cover only those runs).
  bool stopped_early = false;
  StopReason stop_reason = StopReason::kNone;
};

/// Synthesizes `count` networks with seeds base_seed, base_seed+1, ...
/// (each seed yields a fresh random context) and aggregates their metrics
/// with bootstrap CIs at the given level.
///
/// Telemetry: when the synthesizer config carries an observer, the
/// ensemble emits its own deterministic stream — RunStart, an `ensemble`
/// phase, one EnsembleRunDone per run in seed order (after the fan-out
/// join), RunSummary. Per-run inner events are suppressed: with a parallel
/// fan-out they would interleave nondeterministically across threads, so
/// suppressing them always keeps the stream identical for any thread
/// count. The stop condition (if any) is honored at run-wave boundaries
/// and inside every inner GA, and a stopped ensemble returns the completed
/// prefix as a valid partial result.
EnsembleResult generate_ensemble(const Synthesizer& synth, std::size_t count,
                                 std::uint64_t base_seed = 1,
                                 double ci_level = 0.95);

/// Lightweight sweep record used by the figure benches: synthesizes `count`
/// networks and returns just their TopologyMetrics (no Network retained —
/// sweeping hundreds of runs would otherwise hold a lot of memory).
std::vector<TopologyMetrics> sweep_metrics(const Synthesizer& synth,
                                           std::size_t count,
                                           std::uint64_t base_seed = 1);

}  // namespace cold
