// cold::Synthesizer — the library's main entry point.
//
// Wires the whole pipeline together: generate a random context (or accept a
// fixed one), optionally run the greedy hub heuristics, run the GA seeded
// with their outputs (the paper's best-performing "initialized GA", Fig 3),
// and assemble the winning topology into a full Network with capacities and
// routing.
//
// Typical use:
//   cold::SynthesisConfig cfg;
//   cfg.context.num_pops = 30;
//   cfg.costs = {.k0 = 10, .k1 = 1, .k2 = 4e-4, .k3 = 10};
//   cold::Synthesizer synth(cfg);
//   cold::Network net = synth.synthesize(/*seed=*/1).network;
#pragma once

#include <chrono>
#include <optional>
#include <vector>

#include "core/context.h"
#include "cost/cost_cache.h"
#include "cost/cost_model.h"
#include "ga/genetic.h"
#include "heuristics/hub_heuristics.h"
#include "net/network.h"

namespace cold {

struct SynthesisConfig {
  ContextConfig context;
  CostParams costs;
  GaConfig ga;

  /// Evaluation-engine settings: the memoization cache and the
  /// shortest-path solver. Every setting is exact (bit-identical costs), so
  /// this is purely a performance knob — see cost/evaluator.h.
  EvalEngineConfig engine;

  /// Seed the GA with the greedy heuristics' solutions ("initialized GA").
  /// On by default: it dominates both plain GA and every heuristic (§5).
  bool seed_with_heuristics = true;

  HubHeuristicOptions heuristic_options;

  /// Capacity overprovisioning factor O (>= 1) applied when building the
  /// final Network (paper eq. (1) discussion).
  double overprovision = 1.0;

  /// Run-level parallelism for ensemble generation (generate_ensemble /
  /// sweep_metrics): independent seeds are distributed across this many
  /// threads. 0 = all hardware threads, 1 = sequential. Within a single
  /// synthesize() call the GA's own knob (`ga.parallel`) applies; when the
  /// ensemble layer fans out runs it forces the inner GA sequential to
  /// avoid oversubscription. Results are bit-identical either way.
  ParallelConfig parallel;

  /// Borrowed, may be null; the caller keeps it alive for every
  /// synthesize* call. Receives the run's event stream: RunStart, the
  /// phase timeline (context | heuristics | ga | assembly) with per-phase
  /// evaluator counters, one HeuristicDone per seed heuristic, one
  /// GenerationEnd per GA generation, and a RunSummary. All events are
  /// emitted from sequential code, so the logical stream is bit-identical
  /// for any parallel setting. Inside ensemble fan-out this observer is
  /// NOT invoked per run (events would interleave across threads);
  /// generate_ensemble emits its own deterministic summary stream instead.
  RunObserver* observer = nullptr;

  /// Borrowed, may be null. Cooperative cancellation: checked between
  /// heuristics and at GA generation boundaries, charged with every
  /// objective evaluation. A stopped run still returns a valid network
  /// (built from the best topology found so far).
  StopCondition* stop = nullptr;
};

struct SynthesisResult {
  Network network;       ///< the synthesized PoP-level network
  Context context;       ///< the context it was optimized for
  CostBreakdown cost;    ///< cost decomposition of the winning topology
  GaResult ga;           ///< GA diagnostics (history, final population, ...)
  std::vector<HeuristicResult> heuristics;  ///< seeds, if enabled
  EvalCacheStats cache;  ///< evaluation-cache counters (zeros when disabled)
  DeltaStats delta;      ///< delta-engine counters (zeros when disabled)
  ResilienceStats resilience;  ///< failure-sweep counters (zeros when off)
  MultipathStats multipath;    ///< multipath-routing counters (zeros when off)
};

class Synthesizer {
 public:
  explicit Synthesizer(SynthesisConfig config);

  const SynthesisConfig& config() const { return config_; }

  /// Generates a random context from `seed` and optimizes a network for it.
  SynthesisResult synthesize(std::uint64_t seed) const;

  /// Optimizes a network for a caller-supplied context. `seed` drives only
  /// the GA/heuristic randomness, enabling the paper's "multiple topologies,
  /// one context" simulation mode (§3.3 point 3).
  SynthesisResult synthesize_for_context(const Context& context,
                                         std::uint64_t seed) const;

 private:
  SynthesisResult optimize(const Context& context, std::uint64_t seed,
                           std::chrono::steady_clock::time_point started) const;

  SynthesisConfig config_;
};

}  // namespace cold
