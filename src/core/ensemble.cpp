#include "core/ensemble.h"

#include <limits>

namespace cold {

namespace {

ConfidenceInterval ci_of(const std::vector<double>& xs, double level) {
  return bootstrap_mean_ci(xs, level);
}

}  // namespace

EnsembleResult generate_ensemble(const Synthesizer& synth, std::size_t count,
                                 std::uint64_t base_seed, double ci_level) {
  EnsembleResult result;
  result.runs.reserve(count);
  std::vector<double> deg, diam, clus, cv, hubs, assort;
  for (std::size_t i = 0; i < count; ++i) {
    result.runs.push_back(synth.synthesize(base_seed + i));
    const TopologyMetrics m =
        compute_metrics(result.runs.back().network.topology);
    deg.push_back(m.avg_degree);
    diam.push_back(static_cast<double>(m.diameter));
    clus.push_back(m.global_clustering);
    cv.push_back(m.degree_cv);
    hubs.push_back(static_cast<double>(m.hubs));
    assort.push_back(m.assortativity);
  }
  result.stats.avg_degree = ci_of(deg, ci_level);
  result.stats.diameter = ci_of(diam, ci_level);
  result.stats.clustering = ci_of(clus, ci_level);
  result.stats.degree_cv = ci_of(cv, ci_level);
  result.stats.hubs = ci_of(hubs, ci_level);
  result.stats.assortativity = ci_of(assort, ci_level);

  // Distinctness check (paper criterion 1): smallest pairwise edit distance
  // plus a whole-network comparison (topology, locations, traffic).
  std::size_t min_diff = std::numeric_limits<std::size_t>::max();
  result.all_distinct = true;
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    for (std::size_t j = i + 1; j < result.runs.size(); ++j) {
      const Network& a = result.runs[i].network;
      const Network& b = result.runs[j].network;
      const std::size_t diff =
          Topology::edge_difference(a.topology, b.topology);
      min_diff = std::min(min_diff, diff);
      if (diff == 0 && a.locations == b.locations && a.traffic == b.traffic) {
        result.all_distinct = false;
      }
    }
  }
  result.min_pairwise_edge_difference =
      result.runs.size() < 2 ? 0 : min_diff;
  return result;
}

std::vector<TopologyMetrics> sweep_metrics(const Synthesizer& synth,
                                           std::size_t count,
                                           std::uint64_t base_seed) {
  std::vector<TopologyMetrics> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const SynthesisResult run = synth.synthesize(base_seed + i);
    out.push_back(compute_metrics(run.network.topology));
  }
  return out;
}

}  // namespace cold
