#include "core/ensemble.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "util/thread_pool.h"

namespace cold {

namespace {

ConfidenceInterval ci_of(const std::vector<double>& xs, double level) {
  return bootstrap_mean_ci(xs, level);
}

/// Ensemble runs are embarrassingly parallel: run i depends only on seed
/// base_seed + i. When the run-level fan-out is active, the inner GA is
/// forced sequential (one core per run already saturates the pool); the
/// per-run results are bit-identical either way, so the thread count only
/// changes wall-clock. Returns the worker count and, when > 1 worker is
/// used, the sequential-GA synthesizer the workers must share.
std::size_t plan_runs(const Synthesizer& synth, std::size_t count,
                      std::optional<Synthesizer>& inner,
                      const Synthesizer*& runner) {
  runner = &synth;
  const std::size_t threads =
      std::min(synth.config().parallel.resolved_threads(),
               std::max<std::size_t>(count, 1));
  if (threads > 1) {
    SynthesisConfig cfg = synth.config();
    cfg.ga.parallel.num_threads = 1;
    inner.emplace(std::move(cfg));
    runner = &*inner;
  }
  return threads;
}

}  // namespace

EnsembleResult generate_ensemble(const Synthesizer& synth, std::size_t count,
                                 std::uint64_t base_seed, double ci_level) {
  EnsembleResult result;
  std::optional<Synthesizer> inner;
  const Synthesizer* runner = nullptr;
  ThreadPool pool(plan_runs(synth, count, inner, runner));

  result.runs.resize(count);
  std::vector<TopologyMetrics> metrics(count);
  pool.parallel_for(0, count, [&](std::size_t i, std::size_t) {
    result.runs[i] = runner->synthesize(base_seed + i);
    metrics[i] = compute_metrics(result.runs[i].network.topology);
  });

  // Aggregation happens after the join, in seed order: statistics and CIs
  // are independent of the thread count.
  std::vector<double> deg, diam, clus, cv, hubs, assort;
  for (const TopologyMetrics& m : metrics) {
    deg.push_back(m.avg_degree);
    diam.push_back(static_cast<double>(m.diameter));
    clus.push_back(m.global_clustering);
    cv.push_back(m.degree_cv);
    hubs.push_back(static_cast<double>(m.hubs));
    assort.push_back(m.assortativity);
  }
  result.stats.avg_degree = ci_of(deg, ci_level);
  result.stats.diameter = ci_of(diam, ci_level);
  result.stats.clustering = ci_of(clus, ci_level);
  result.stats.degree_cv = ci_of(cv, ci_level);
  result.stats.hubs = ci_of(hubs, ci_level);
  result.stats.assortativity = ci_of(assort, ci_level);

  // Distinctness check (paper criterion 1): smallest pairwise edit distance
  // plus a whole-network comparison (topology, locations, traffic).
  std::size_t min_diff = std::numeric_limits<std::size_t>::max();
  result.all_distinct = true;
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    for (std::size_t j = i + 1; j < result.runs.size(); ++j) {
      const Network& a = result.runs[i].network;
      const Network& b = result.runs[j].network;
      const std::size_t diff =
          Topology::edge_difference(a.topology, b.topology);
      min_diff = std::min(min_diff, diff);
      if (diff == 0 && a.locations == b.locations && a.traffic == b.traffic) {
        result.all_distinct = false;
      }
    }
  }
  result.min_pairwise_edge_difference =
      result.runs.size() < 2 ? 0 : min_diff;
  return result;
}

std::vector<TopologyMetrics> sweep_metrics(const Synthesizer& synth,
                                           std::size_t count,
                                           std::uint64_t base_seed) {
  std::optional<Synthesizer> inner;
  const Synthesizer* runner = nullptr;
  ThreadPool pool(plan_runs(synth, count, inner, runner));

  std::vector<TopologyMetrics> out(count);
  pool.parallel_for(0, count, [&](std::size_t i, std::size_t) {
    // No Network retained — sweeping hundreds of runs would otherwise hold
    // a lot of memory.
    out[i] = compute_metrics(runner->synthesize(base_seed + i).network.topology);
  });
  return out;
}

}  // namespace cold
