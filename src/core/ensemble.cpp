#include "core/ensemble.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.h"

namespace cold {

namespace {

ConfidenceInterval ci_of(const std::vector<double>& xs, double level) {
  return bootstrap_mean_ci(xs, level);
}

// SplitMix64 finalizer for combining hash words.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fold_hash(std::uint64_t h, std::uint64_t w) {
  return mix64(h ^ w);
}

std::uint64_t fold_hash(std::uint64_t h, double v) {
  return fold_hash(h, std::bit_cast<std::uint64_t>(v));
}

// 64-bit digest of the whole network — topology, PoP locations, traffic —
// the streamed stand-in for the exact pairwise distinctness comparison.
// Distinct digests imply distinct networks; equal digests of distinct
// networks (a 2^-64-ish collision) can only flip all_distinct to a false
// "not distinct".
std::uint64_t network_hash(const Network& net) {
  std::uint64_t h = net.topology.fingerprint();
  h = fold_hash(h, static_cast<std::uint64_t>(net.topology.num_nodes()));
  for (const Point& p : net.locations) {
    h = fold_hash(h, p.x);
    h = fold_hash(h, p.y);
  }
  const std::size_t n = net.traffic.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      h = fold_hash(h, net.traffic(i, j));
    }
  }
  return h;
}

/// Ensemble runs are embarrassingly parallel: run i depends only on seed
/// base_seed + i. When the run-level fan-out is active, the inner GA is
/// forced sequential (one core per run already saturates the pool). The
/// inner runs never see the caller's observer — per-run event streams
/// would interleave nondeterministically across worker threads — but they
/// do keep the stop condition, which is thread-safe and makes long inner
/// GAs stop at generation boundaries. Per-run results are bit-identical
/// for any thread count. Returns the worker count and, when an adjusted
/// config is needed, the synthesizer the workers must share.
std::size_t plan_runs(const Synthesizer& synth, std::size_t count,
                      std::optional<Synthesizer>& inner,
                      const Synthesizer*& runner) {
  runner = &synth;
  const std::size_t threads =
      std::min(synth.config().parallel.resolved_threads(),
               std::max<std::size_t>(count, 1));
  if (threads > 1 || synth.config().observer != nullptr) {
    SynthesisConfig cfg = synth.config();
    if (threads > 1) cfg.ga.parallel.num_threads = 1;
    cfg.observer = nullptr;
    inner.emplace(std::move(cfg));
    runner = &*inner;
  }
  return threads;
}

}  // namespace

EnsembleAccumulator::EnsembleAccumulator(bool retain_all,
                                         std::size_t reservoir,
                                         std::uint64_t seed)
    : retain_all_(retain_all),
      reservoir_cap_(retain_all ? 0 : reservoir),
      rng_(seed, /*stream=*/0xE25Eu),
      best_cost_(std::numeric_limits<double>::infinity()) {
  agg_.streamed = !retain_all;
}

void EnsembleAccumulator::fold(SynthesisResult&& run,
                               const TopologyMetrics& metrics,
                               std::uint64_t seed) {
  ++agg_.runs;
  agg_.avg_degree.fold(metrics.avg_degree);
  agg_.diameter.fold(static_cast<double>(metrics.diameter));
  agg_.clustering.fold(metrics.global_clustering);
  agg_.degree_cv.fold(metrics.degree_cv);
  agg_.hubs.fold(static_cast<double>(metrics.hubs));
  agg_.assortativity.fold(metrics.assortativity);
  agg_.best_cost.fold(run.ga.best_cost);

  evaluations_ += run.ga.evaluations;
  dedup_skipped_ += run.ga.dedup_skipped;
  cache_ += run.cache;
  delta_ += run.delta;
  best_cost_ = std::min(best_cost_, run.ga.best_cost);

  if (!seen_.insert(network_hash(run.network)).second) {
    all_distinct_ = false;
  }

  if (retain_all_) {
    metrics_.push_back(metrics);
    runs_.push_back(std::move(run));
    return;
  }
  if (reservoir_cap_ > 0) {
    // Algorithm R: item i (0-based) replaces a reservoir slot with
    // probability cap / (i + 1). Deterministic in (seed, fold order).
    const std::size_t i = agg_.runs - 1;
    if (sample_.size() < reservoir_cap_) {
      sample_.push_back(std::move(run));
      sample_meta_.push_back({i, seed});
    } else {
      const std::size_t j = rng_.uniform_index(i + 1);
      if (j < reservoir_cap_) {
        sample_[j] = std::move(run);
        sample_meta_[j] = {i, seed};
      }
    }
  }
}

std::vector<EnsembleExemplar> EnsembleAccumulator::exemplars() const {
  std::vector<EnsembleExemplar> out;
  out.reserve(sample_.size());
  for (std::size_t k = 0; k < sample_.size(); ++k) {
    EnsembleExemplar e;
    e.index = sample_meta_[k].index;
    e.seed = sample_meta_[k].seed;
    e.best_cost = sample_[k].ga.best_cost;
    e.num_pops = sample_[k].network.num_pops();
    e.num_links = sample_[k].network.links.size();
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const EnsembleExemplar& a, const EnsembleExemplar& b) {
              return a.index < b.index;
            });
  return out;
}

const std::vector<SynthesisResult>& EnsembleAccumulator::runs() const {
  if (!retain_all_) {
    throw std::logic_error(
        "EnsembleAccumulator::runs: streamed ensemble retains no per-run "
        "results (use aggregates()/sample(), or RetainMode::kRetainAll)");
  }
  return runs_;
}

const std::vector<TopologyMetrics>& EnsembleAccumulator::metrics() const {
  if (!retain_all_) {
    throw std::logic_error(
        "EnsembleAccumulator::metrics: streamed ensemble retains no per-run "
        "metrics (use aggregates())");
  }
  return metrics_;
}

EnsembleResult generate_ensemble(const Synthesizer& synth,
                                 const EnsembleOptions& options) {
  const std::size_t count = options.count;
  const std::uint64_t base_seed = options.base_seed;
  const bool retain_all =
      options.retain == RetainMode::kRetainAll ||
      (options.retain == RetainMode::kAuto && count <= kRetainAutoThreshold);

  EnsembleResult result;
  result.acc = EnsembleAccumulator(retain_all, options.reservoir, base_seed);

  std::optional<Synthesizer> inner;
  const Synthesizer* runner = nullptr;
  const std::size_t threads = plan_runs(synth, count, inner, runner);
  ThreadPool pool(threads);

  RunObserver* observer = synth.config().observer;
  StopCondition* stop = synth.config().stop;
  const auto started = std::chrono::steady_clock::now();
  if (stop != nullptr) stop->arm();
  if (observer != nullptr) {
    observer->on_run_start({base_seed, synth.config().context.num_pops,
                            synth.config().context.gravity.topk});
  }

  // Wave buffers: the only place whole SynthesisResults wait, O(threads) of
  // them. Per-run telemetry keeps one small record per run so the
  // EnsembleRunDone stream can still be emitted after the phase, in seed
  // order, exactly as before.
  std::vector<SynthesisResult> wave_runs(threads);
  std::vector<TopologyMetrics> wave_metrics(threads);
  std::vector<std::uint64_t> wave_wall(threads);
  struct RunRecord {
    double best_cost;
    std::uint64_t wall_ns;
  };
  std::vector<RunRecord> records;
  if (observer != nullptr) records.reserve(count);

  std::size_t completed = 0;
  {
    // Phase counters read the accumulator's running totals. Safe: the timer
    // samples at construction (nothing folded) and destruction (after the
    // last fold, on this thread).
    const auto eval_count = [&result] { return result.acc.evaluations(); };
    const auto engine_count = [&result] {
      EngineCounters c;
      const EvalCacheStats& cache = result.acc.cache();
      const DeltaStats& delta = result.acc.delta();
      c.cache_hits = cache.hits;
      c.cache_misses = cache.misses;
      c.cache_inserts = cache.inserts;
      c.cache_evictions = cache.evictions;
      c.dedup_skipped = result.acc.dedup_skipped();
      c.dsssp_hits = delta.hits;
      c.dsssp_fallbacks = delta.fallbacks;
      c.vertices_resettled = delta.vertices_resettled;
      return c;
    };
    PhaseTimer phase(observer, Phase::kEnsemble, eval_count, engine_count);
    // Dispatch in waves of one index per worker so the stop condition gets
    // a run-granular checkpoint; inside a wave each run also honors the
    // condition at its own generation boundaries. Each wave's results are
    // folded (and freed) before the next wave starts.
    while (completed < count) {
      if (stop != nullptr && stop->should_stop()) {
        result.stopped_early = true;
        result.stop_reason = stop->reason();
        break;
      }
      const std::size_t wave_end = std::min(count, completed + threads);
      pool.parallel_for(completed, wave_end, [&](std::size_t i, std::size_t) {
        const auto run_started = std::chrono::steady_clock::now();
        const std::size_t slot = i - completed;
        wave_runs[slot] = runner->synthesize(base_seed + i);
        wave_metrics[slot] = compute_metrics(wave_runs[slot].network.topology);
        wave_wall[slot] = elapsed_ns(run_started);
      });
      // Fold after the join, in seed order: aggregates are independent of
      // the thread count.
      for (std::size_t i = completed; i < wave_end; ++i) {
        const std::size_t slot = i - completed;
        if (observer != nullptr) {
          records.push_back(
              {wave_runs[slot].ga.best_cost, wave_wall[slot]});
        }
        result.acc.fold(std::move(wave_runs[slot]), wave_metrics[slot],
                        base_seed + i);
        wave_runs[slot] = SynthesisResult{};  // release moved-from storage
      }
      completed = wave_end;
    }
  }

  // Telemetry after the phase, in seed order — the stream is identical to
  // the retained-era one, plus the aggregate event.
  if (observer != nullptr) {
    for (std::size_t i = 0; i < records.size(); ++i) {
      observer->on_ensemble_run_done(
          {i, base_seed + i, records[i].best_cost, records[i].wall_ns});
    }
    observer->on_ensemble_aggregates(result.acc.aggregates());
    const std::vector<EnsembleExemplar> exemplars = result.acc.exemplars();
    if (!exemplars.empty()) {
      observer->on_ensemble_exemplars({options.reservoir, exemplars});
    }
  }

  if (retain_all) {
    // Bootstrap CIs from the retained per-run metrics (legacy behavior,
    // bit-identical to the pre-streaming implementation).
    const std::vector<TopologyMetrics>& metrics = result.acc.metrics();
    std::vector<double> deg, diam, clus, cv, hubs, assort;
    for (const TopologyMetrics& m : metrics) {
      deg.push_back(m.avg_degree);
      diam.push_back(static_cast<double>(m.diameter));
      clus.push_back(m.global_clustering);
      cv.push_back(m.degree_cv);
      hubs.push_back(static_cast<double>(m.hubs));
      assort.push_back(m.assortativity);
    }
    result.stats.avg_degree = ci_of(deg, options.ci_level);
    result.stats.diameter = ci_of(diam, options.ci_level);
    result.stats.clustering = ci_of(clus, options.ci_level);
    result.stats.degree_cv = ci_of(cv, options.ci_level);
    result.stats.hubs = ci_of(hubs, options.ci_level);
    result.stats.assortativity = ci_of(assort, options.ci_level);
  } else {
    const EnsembleAggregates& a = result.acc.aggregates();
    result.stats.avg_degree = normal_mean_ci(a.avg_degree, options.ci_level);
    result.stats.diameter = normal_mean_ci(a.diameter, options.ci_level);
    result.stats.clustering = normal_mean_ci(a.clustering, options.ci_level);
    result.stats.degree_cv = normal_mean_ci(a.degree_cv, options.ci_level);
    result.stats.hubs = normal_mean_ci(a.hubs, options.ci_level);
    result.stats.assortativity =
        normal_mean_ci(a.assortativity, options.ci_level);
  }

  // Distinctness (paper criterion 1). Retained: exact O(count^2) pairwise
  // scan — smallest edit distance plus a whole-network comparison.
  // Streamed: the accumulator's hash set (no pairwise distances).
  if (retain_all) {
    const std::vector<SynthesisResult>& runs = result.acc.runs();
    std::size_t min_diff = std::numeric_limits<std::size_t>::max();
    result.all_distinct = true;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      for (std::size_t j = i + 1; j < runs.size(); ++j) {
        const Network& a = runs[i].network;
        const Network& b = runs[j].network;
        const std::size_t diff =
            Topology::edge_difference(a.topology, b.topology);
        min_diff = std::min(min_diff, diff);
        if (diff == 0 && a.locations == b.locations &&
            a.traffic == b.traffic) {
          result.all_distinct = false;
        }
      }
    }
    result.min_pairwise_edge_difference = runs.size() < 2 ? 0 : min_diff;
    result.pairwise_checked = true;
  } else {
    result.all_distinct = result.acc.all_distinct_hashed();
    result.min_pairwise_edge_difference = 0;
    result.pairwise_checked = false;
  }

  if (observer != nullptr) {
    RunSummary summary;
    const EvalCacheStats& cache = result.acc.cache();
    const DeltaStats& delta = result.acc.delta();
    summary.best_cost =
        result.acc.count() == 0 ? 0.0 : result.acc.best_cost();
    summary.evaluations = result.acc.evaluations();
    summary.cache_hits = cache.hits;
    summary.cache_misses = cache.misses;
    summary.cache_inserts = cache.inserts;
    summary.cache_evictions = cache.evictions;
    summary.dedup_skipped = result.acc.dedup_skipped();
    summary.dsssp_hits = delta.hits;
    summary.dsssp_fallbacks = delta.fallbacks;
    summary.vertices_resettled = delta.vertices_resettled;
    summary.wall_ns = elapsed_ns(started);
    summary.stopped_early = result.stopped_early;
    summary.stop_reason = result.stop_reason;
    observer->on_run_end(summary);
  }
  return result;
}

EnsembleResult generate_ensemble(const Synthesizer& synth, std::size_t count,
                                 std::uint64_t base_seed, double ci_level) {
  EnsembleOptions options;
  options.count = count;
  options.base_seed = base_seed;
  options.ci_level = ci_level;
  return generate_ensemble(synth, options);
}

std::vector<TopologyMetrics> sweep_metrics(const Synthesizer& synth,
                                           std::size_t count,
                                           std::uint64_t base_seed) {
  std::optional<Synthesizer> inner;
  const Synthesizer* runner = nullptr;
  ThreadPool pool(plan_runs(synth, count, inner, runner));

  std::vector<TopologyMetrics> out(count);
  pool.parallel_for(0, count, [&](std::size_t i, std::size_t) {
    // No Network retained — sweeping hundreds of runs would otherwise hold
    // a lot of memory.
    out[i] = compute_metrics(runner->synthesize(base_seed + i).network.topology);
  });
  return out;
}

}  // namespace cold
